// Command chatserver runs the supervised e-learning chat room: a TCP
// server whose rooms are watched by the Learning_Angel Agent, the
// Semantic Agent and the QA system (the paper's Figure 3 deployed as a
// service).
//
// Usage:
//
//	chatserver -addr :7788
//	chatserver -addr :7788 -data ./classdata           # persist corpus/FAQ/profiles
//	chatserver -addr :7788 -data ./classdata -journal  # crash-safe write-ahead log
//	chatserver -addr :7788 -async                      # sidecar supervision
//	chatserver -addr :7788 -async -shed oldest-drop    # overload-safe supervision
//	chatserver -addr :7788 -metrics-addr :9090         # /metrics + /healthz
//	chatserver -addr :7788 -nosupervise                # plain chat (E6 baseline)
//
// With -journal every learned fact (corpus record, profile event, FAQ
// pair, ontology mutation) is appended to an fsync'd write-ahead log in
// the data directory and replayed over the last checkpoint at boot, so
// a crash or kill loses at most the mutations after the last group
// commit instead of the whole session.
//
// With -metrics-addr the server exposes the full instrumentation layer
// (DESIGN.md D10) as Prometheus text at /metrics and a readiness probe
// at /healthz, and folds a periodic operational snapshot into the
// instructor report (-ops-interval). With -shed the async supervision
// pipeline sheds load at the -room-queue / -inflight watermarks instead
// of back-pressuring the room: a traffic spike degrades supervision
// coverage, never chat latency.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/journal"
	"semagent/internal/metrics"
	"semagent/internal/pipeline"
	"semagent/internal/storage"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7788", "listen address")
		dataDir     = flag.String("data", "", "directory for persistent corpus/profiles/FAQ/ontology (empty = in-memory only)")
		async       = flag.Bool("async", false, "supervise off the broadcast path via the room-sharded worker pool")
		workers     = flag.Int("workers", 0, "async supervision workers (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "async supervision queue per shard (0 = 256)")
		noSupervise = flag.Bool("nosupervise", false, "disable the agents (plain chat room)")
		wire        = flag.String("wire", "binary", "wire formats accepted: binary (negotiate length-prefixed framing with willing clients) or text (newline-JSON only)")
		batch       = flag.Bool("batch", false, "coalesce a room's queued messages into batched supervision (requires -async)")

		useJournal  = flag.Bool("journal", false, "write-ahead journal in the data dir: crash recovery for the knowledge stores (requires -data)")
		journalSync = flag.Bool("journal-sync", false, "fsync the journal on every record instead of batched group commit")
		ckptEvery   = flag.Duration("checkpoint-interval", 5*time.Minute, "journal checkpoint interval (0 disables the time trigger)")
		ckptBytes   = flag.Int64("checkpoint-bytes", 4<<20, "journal checkpoint size threshold in bytes (0 disables the size trigger)")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (empty = off)")
		shed        = flag.String("shed", "none", "supervision admission control: none (block), reject-new, or oldest-drop (requires -async)")
		roomQueue   = flag.Int("room-queue", 64, "per-room supervision queue-depth watermark for -shed (0 = no per-room cap)")
		inflightCap = flag.Int("inflight", 4096, "global in-flight supervision watermark for -shed (0 = no global cap)")
		opsEvery    = flag.Duration("ops-interval", 30*time.Second, "how often the operational metrics snapshot is folded into the instructor report (0 = off)")
	)
	flag.Parse()
	policy, err := pipeline.ParseShedPolicy(*shed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chatserver:", err)
		os.Exit(2)
	}
	if *wire != "binary" && *wire != "text" {
		fmt.Fprintf(os.Stderr, "chatserver: -wire must be binary or text, got %q\n", *wire)
		os.Exit(2)
	}
	cfg := serverConfig{
		addr: *addr, dataDir: *dataDir, async: *async, noSupervise: *noSupervise,
		workers: *workers, queue: *queue,
		textOnly: *wire == "text", batch: *batch,
		journal: *useJournal, journalSync: *journalSync,
		ckptEvery: *ckptEvery, ckptBytes: *ckptBytes,
		metricsAddr: *metricsAddr, shedPolicy: policy,
		roomQueue: *roomQueue, inflightCap: *inflightCap, opsEvery: *opsEvery,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "chatserver:", err)
		os.Exit(1)
	}
}

type serverConfig struct {
	addr, dataDir        string
	async, noSupervise   bool
	textOnly, batch      bool
	workers, queue       int
	journal, journalSync bool
	ckptEvery            time.Duration
	ckptBytes            int64

	metricsAddr string
	shedPolicy  pipeline.ShedPolicy
	roomQueue   int
	inflightCap int
	opsEvery    time.Duration
}

func run(c serverConfig) error {
	logger := log.New(os.Stderr, "", log.LstdFlags)
	reg := metrics.NewRegistry()
	opts := chat.ServerOptions{
		Logger: logger, Async: c.async, Workers: c.workers, SuperviseQueue: c.queue,
		ShedPolicy: c.shedPolicy, RoomHighWater: c.roomQueue, GlobalHighWater: c.inflightCap,
		Metrics: reg, DisableBinaryWire: c.textOnly, BatchSupervise: c.batch,
	}
	if c.batch && (!c.async || c.noSupervise) {
		return fmt.Errorf("-batch requires async supervision (-async without -nosupervise)")
	}

	if c.journal && c.dataDir == "" {
		return fmt.Errorf("-journal requires -data")
	}
	if c.shedPolicy != pipeline.ShedNone && (!c.async || c.noSupervise) {
		return fmt.Errorf("-shed requires async supervision (-async without -nosupervise)")
	}
	if c.journal && c.noSupervise {
		// The journal records supervisor learning; with supervision off
		// there is nothing to journal, and pretending otherwise would
		// let an operator believe crash-safety is on.
		return fmt.Errorf("-journal requires supervision (drop -nosupervise)")
	}

	var sup *core.Supervisor
	var mgr *journal.Manager
	if !c.noSupervise {
		cfg := core.Config{}
		switch {
		case c.journal:
			// Crash recovery: load the last checkpoint, replay the
			// write-ahead log over it, then journal every new mutation.
			stores, err := journal.LoadStores(c.dataDir)
			if err != nil {
				return fmt.Errorf("load data dir: %w", err)
			}
			jopts := journal.Options{
				SyncEveryRecord:    c.journalSync,
				CheckpointInterval: orDisabled(c.ckptEvery),
				CheckpointBytes:    orDisabledBytes(c.ckptBytes),
				Logger:             logger,
				Metrics:            reg,
			}
			mgr, err = journal.Open(c.dataDir, stores, jopts)
			if err != nil {
				return fmt.Errorf("open journal: %w", err)
			}
			rs := mgr.Stats().Replay
			logger.Printf("journal: recovered %s (%d segments, %d records replayed, %d skipped, %d errors, %d torn bytes dropped)",
				c.dataDir, rs.Segments, rs.Applied, rs.Skipped, rs.Errors, rs.TornTail)
			cfg.Ontology = stores.Ontology
			cfg.Corpus = stores.Corpus
			cfg.Profiles = stores.Profiles
			cfg.FAQ = stores.FAQ
		case c.dataDir != "":
			snap, err := storage.Load(c.dataDir)
			if err != nil {
				return fmt.Errorf("load data dir: %w", err)
			}
			cfg.Ontology = snap.Ontology
			cfg.Corpus = snap.Corpus
			cfg.Profiles = snap.Profiles
			cfg.FAQ = snap.FAQ
			logger.Printf("data dir %s loaded", c.dataDir)
		}
		cfg.Metrics = reg
		var err error
		sup, err = core.New(cfg)
		if err != nil {
			return fmt.Errorf("build supervisor: %w", err)
		}
		opts.Supervisor = sup.ChatSupervisor()
		logger.Printf("supervision: ontology %q with %d items, dictionary %d words, corpus %d records, faq %d entries",
			sup.Ontology().Domain(), sup.Ontology().Len(),
			sup.Parser().Dictionary().Len(), sup.Corpus().Len(), sup.FAQ().Len())
	} else {
		logger.Printf("supervision: disabled")
	}

	server := chat.NewServer(opts)
	bound, err := server.Listen(c.addr)
	if err != nil {
		return err
	}
	logger.Printf("chat server listening on %s", bound)
	if c.shedPolicy != pipeline.ShedNone {
		logger.Printf("admission control: %s (room watermark %d, global watermark %d)",
			c.shedPolicy, c.roomQueue, c.inflightCap)
	}

	start := time.Now()
	var metricsSrv *http.Server
	if c.metricsAddr != "" {
		metricsSrv = newMetricsServer(c.metricsAddr, reg, server, start)
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics server: %v", err)
			}
		}()
		logger.Printf("metrics on http://%s/metrics, health on /healthz", c.metricsAddr)
	}

	// The periodic operational snapshot: the instructor report carries
	// the service's load/latency/shed state (DESIGN.md D10).
	opsDone := make(chan struct{})
	opsStopped := make(chan struct{})
	close(opsStopped)
	if sup != nil && c.opsEvery > 0 {
		opsStopped = make(chan struct{})
		go func() {
			defer close(opsStopped)
			t := time.NewTicker(c.opsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					sup.Analyzer().RecordOps(reg.Snapshot())
				case <-opsDone:
					return
				}
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	logger.Printf("shutting down")
	close(opsDone)
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = metricsSrv.Shutdown(ctx)
		cancel()
	}
	// Close first: it drains the async supervision pipeline, so the
	// stats, summary and snapshot below include every queued message.
	closeErr := server.Close()
	if sup != nil {
		// Final ops snapshot AFTER the drain — and after the ticker
		// goroutine has fully stopped, so a straggling pre-drain
		// snapshot cannot overwrite this one — keeping the report's
		// operational section in agreement with its learning
		// statistics.
		<-opsStopped
		sup.Analyzer().RecordOps(reg.Snapshot())
	}
	if st, ok := server.SupervisionStats(); ok {
		logger.Printf("supervision pipeline: %d workers, %d submitted, %d completed, %d blocked submits, %d shed, max shard queue %d",
			st.Workers, st.Submitted, st.Completed, st.Blocked, st.Shed, st.MaxQueueDepth)
	}
	if sup != nil {
		cs := sup.Parser().CacheStats()
		if cs.Capacity > 0 {
			logger.Printf("parse cache: %d/%d entries, %.1f%% hit rate, %d evictions, %d invalidations",
				cs.Size, cs.Capacity, cs.HitRate()*100, cs.Evictions, cs.Invalidations)
		}
		logger.Printf("session summary:\n%s", sup.Analyzer().Report())
		switch {
		case mgr != nil:
			// Final checkpoint + journal seal: the next boot loads the
			// snapshot and finds an empty log.
			st := mgr.Stats()
			if err := mgr.Close(); err != nil {
				logger.Printf("close journal: %v", err)
			} else {
				logger.Printf("journal: sealed at lsn %d (%d records, %d fsyncs, %d checkpoints)",
					st.LastLSN, st.Records, st.Fsyncs, st.Checkpoints+1)
			}
		case c.dataDir != "":
			err := storage.Save(c.dataDir, storage.Snapshot{
				Ontology: sup.Ontology(),
				Corpus:   sup.Corpus(),
				Profiles: sup.Profiles(),
				FAQ:      sup.FAQ(),
			})
			if err != nil {
				logger.Printf("save data dir: %v", err)
			} else {
				logger.Printf("data dir %s saved", c.dataDir)
			}
		}
	}
	return closeErr
}

// newMetricsServer serves the Prometheus exposition at /metrics and a
// readiness probe at /healthz: 200 with a small JSON body once the chat
// listener is up (this server only starts after Listen succeeded, so
// reachable means ready).
func newMetricsServer(addr string, reg *metrics.Registry, server *chat.Server, start time.Time) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := map[string]interface{}{
			"status":    "ok",
			"uptime_s":  int64(time.Since(start).Seconds()),
			"rooms":     len(server.RoomNames()),
			"timestamp": time.Now().Format(time.RFC3339),
		}
		if st, ok := server.SupervisionStats(); ok {
			body["supervision"] = map[string]int64{
				"submitted": st.Submitted, "completed": st.Completed,
				"shed": st.Shed, "pending": st.Pending(),
			}
		}
		_ = json.NewEncoder(w).Encode(body)
	})
	return &http.Server{Addr: addr, Handler: mux}
}

// orDisabled maps the flag convention (0 = off) to the journal option
// convention (negative = off, 0 = default).
func orDisabled(d time.Duration) time.Duration {
	if d == 0 {
		return -1
	}
	return d
}

func orDisabledBytes(n int64) int64 {
	if n == 0 {
		return -1
	}
	return n
}
