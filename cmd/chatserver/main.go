// Command chatserver runs the supervised e-learning chat room: a TCP
// server whose rooms are watched by the Learning_Angel Agent, the
// Semantic Agent and the QA system (the paper's Figure 3 deployed as a
// service).
//
// Usage:
//
//	chatserver -addr :7788
//	chatserver -addr :7788 -data ./classdata   # persist corpus/FAQ/profiles
//	chatserver -addr :7788 -async              # sidecar supervision
//	chatserver -addr :7788 -nosupervise        # plain chat (E6 baseline)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/storage"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7788", "listen address")
		dataDir     = flag.String("data", "", "directory for persistent corpus/profiles/FAQ/ontology (empty = in-memory only)")
		async       = flag.Bool("async", false, "deliver agent responses from a sidecar goroutine")
		noSupervise = flag.Bool("nosupervise", false, "disable the agents (plain chat room)")
	)
	flag.Parse()
	if err := run(*addr, *dataDir, *async, *noSupervise); err != nil {
		fmt.Fprintln(os.Stderr, "chatserver:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir string, async, noSupervise bool) error {
	logger := log.New(os.Stderr, "", log.LstdFlags)
	opts := chat.ServerOptions{Logger: logger, Async: async}

	var sup *core.Supervisor
	if !noSupervise {
		cfg := core.Config{}
		if dataDir != "" {
			snap, err := storage.Load(dataDir)
			if err != nil {
				return fmt.Errorf("load data dir: %w", err)
			}
			cfg.Ontology = snap.Ontology
			cfg.Corpus = snap.Corpus
			cfg.Profiles = snap.Profiles
			cfg.FAQ = snap.FAQ
			logger.Printf("data dir %s loaded", dataDir)
		}
		var err error
		sup, err = core.New(cfg)
		if err != nil {
			return fmt.Errorf("build supervisor: %w", err)
		}
		opts.Supervisor = sup.ChatSupervisor()
		logger.Printf("supervision: ontology %q with %d items, dictionary %d words, corpus %d records, faq %d entries",
			sup.Ontology().Domain(), sup.Ontology().Len(),
			sup.Parser().Dictionary().Len(), sup.Corpus().Len(), sup.FAQ().Len())
	} else {
		logger.Printf("supervision: disabled")
	}

	server := chat.NewServer(opts)
	bound, err := server.Listen(addr)
	if err != nil {
		return err
	}
	logger.Printf("chat server listening on %s", bound)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	logger.Printf("shutting down")
	if sup != nil {
		logger.Printf("session summary:\n%s", sup.Analyzer().Report())
		if dataDir != "" {
			err := storage.Save(dataDir, storage.Snapshot{
				Ontology: sup.Ontology(),
				Corpus:   sup.Corpus(),
				Profiles: sup.Profiles(),
				FAQ:      sup.FAQ(),
			})
			if err != nil {
				logger.Printf("save data dir: %v", err)
			} else {
				logger.Printf("data dir %s saved", dataDir)
			}
		}
	}
	return server.Close()
}
