// Command chatserver runs the supervised e-learning chat room: a TCP
// server whose rooms are watched by the Learning_Angel Agent, the
// Semantic Agent and the QA system (the paper's Figure 3 deployed as a
// service).
//
// Usage:
//
//	chatserver -addr :7788
//	chatserver -addr :7788 -data ./classdata   # persist corpus/FAQ/profiles
//	chatserver -addr :7788 -async              # sidecar supervision
//	chatserver -addr :7788 -nosupervise        # plain chat (E6 baseline)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/storage"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7788", "listen address")
		dataDir     = flag.String("data", "", "directory for persistent corpus/profiles/FAQ/ontology (empty = in-memory only)")
		async       = flag.Bool("async", false, "supervise off the broadcast path via the room-sharded worker pool")
		workers     = flag.Int("workers", 0, "async supervision workers (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "async supervision queue per shard (0 = 256)")
		noSupervise = flag.Bool("nosupervise", false, "disable the agents (plain chat room)")
	)
	flag.Parse()
	if err := run(*addr, *dataDir, *async, *noSupervise, *workers, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "chatserver:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir string, async, noSupervise bool, workers, queue int) error {
	logger := log.New(os.Stderr, "", log.LstdFlags)
	opts := chat.ServerOptions{Logger: logger, Async: async, Workers: workers, SuperviseQueue: queue}

	var sup *core.Supervisor
	if !noSupervise {
		cfg := core.Config{}
		if dataDir != "" {
			snap, err := storage.Load(dataDir)
			if err != nil {
				return fmt.Errorf("load data dir: %w", err)
			}
			cfg.Ontology = snap.Ontology
			cfg.Corpus = snap.Corpus
			cfg.Profiles = snap.Profiles
			cfg.FAQ = snap.FAQ
			logger.Printf("data dir %s loaded", dataDir)
		}
		var err error
		sup, err = core.New(cfg)
		if err != nil {
			return fmt.Errorf("build supervisor: %w", err)
		}
		opts.Supervisor = sup.ChatSupervisor()
		logger.Printf("supervision: ontology %q with %d items, dictionary %d words, corpus %d records, faq %d entries",
			sup.Ontology().Domain(), sup.Ontology().Len(),
			sup.Parser().Dictionary().Len(), sup.Corpus().Len(), sup.FAQ().Len())
	} else {
		logger.Printf("supervision: disabled")
	}

	server := chat.NewServer(opts)
	bound, err := server.Listen(addr)
	if err != nil {
		return err
	}
	logger.Printf("chat server listening on %s", bound)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	logger.Printf("shutting down")
	// Close first: it drains the async supervision pipeline, so the
	// stats, summary and snapshot below include every queued message.
	closeErr := server.Close()
	if st, ok := server.SupervisionStats(); ok {
		logger.Printf("supervision pipeline: %d workers, %d submitted, %d completed, %d blocked submits, max shard queue %d",
			st.Workers, st.Submitted, st.Completed, st.Blocked, st.MaxQueueDepth)
	}
	if sup != nil {
		cs := sup.Parser().CacheStats()
		if cs.Capacity > 0 {
			logger.Printf("parse cache: %d/%d entries, %.1f%% hit rate, %d evictions, %d invalidations",
				cs.Size, cs.Capacity, cs.HitRate()*100, cs.Evictions, cs.Invalidations)
		}
		logger.Printf("session summary:\n%s", sup.Analyzer().Report())
		if dataDir != "" {
			err := storage.Save(dataDir, storage.Snapshot{
				Ontology: sup.Ontology(),
				Corpus:   sup.Corpus(),
				Profiles: sup.Profiles(),
				FAQ:      sup.FAQ(),
			})
			if err != nil {
				logger.Printf("save data dir: %v", err)
			} else {
				logger.Printf("data dir %s saved", dataDir)
			}
		}
	}
	return closeErr
}
