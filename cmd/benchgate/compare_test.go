package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeBenchOutput renders a synthetic -count=3 bench file where every
// benchmark reports msgs msg/s and ns ns/op with mild run-to-run noise.
func writeBenchOutput(t *testing.T, dir, fname string, msgs, ns float64) string {
	t.Helper()
	out := "goos: linux\ngoarch: amd64\npkg: semagent\n"
	for _, bench := range []string{
		"BenchmarkE9ShardedSupervision/sharded-cached-4",
		"BenchmarkE12OverloadShedding-4",
	} {
		for _, jitter := range []float64{1.0, 0.97, 1.03} {
			out += fmt.Sprintf("%s\t       3\t%10.0f ns/op\t%10.1f msg/s\n",
				bench, ns*jitter, msgs*jitter)
		}
	}
	out += "PASS\nok  \tsemagent\t1.0s\n"
	path := filepath.Join(dir, fname)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func loadAndCompare(t *testing.T, oldPath, newPath string) *report {
	t.Helper()
	oldRuns, err := parseBenchFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newRuns, err := parseBenchFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := compare(oldRuns, newRuns)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSynthetic2xSlowdownTripsGate is the gate's own regression test:
// a 2× throughput drop must land far below the 0.85 threshold. This is
// the "demonstrably fails on a synthetic 2× slowdown" check of the CI
// design, verified here instead of by breaking a real PR.
func TestSynthetic2xSlowdownTripsGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchOutput(t, dir, "old.txt", 10000, 100000)
	newPath := writeBenchOutput(t, dir, "new.txt", 5000, 200000) // 2× slower
	rep := loadAndCompare(t, oldPath, newPath)
	if rep.Geomean >= 0.85 {
		t.Fatalf("geomean = %.3f for a 2× slowdown, want well below the 0.85 threshold", rep.Geomean)
	}
	if rep.Geomean < 0.45 || rep.Geomean > 0.55 {
		t.Errorf("geomean = %.3f, want ≈0.5 for a uniform 2× slowdown", rep.Geomean)
	}
}

// TestUnchangedRunPassesGate checks identical performance scores ≈1.0.
func TestUnchangedRunPassesGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchOutput(t, dir, "old.txt", 10000, 100000)
	newPath := writeBenchOutput(t, dir, "new.txt", 10000, 100000)
	rep := loadAndCompare(t, oldPath, newPath)
	if rep.Geomean < 0.99 || rep.Geomean > 1.01 {
		t.Fatalf("geomean = %.3f for identical runs, want ≈1.0", rep.Geomean)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 matched benchmarks", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Unit != "msg/s" {
			t.Errorf("%s compared on %s, want msg/s preferred", row.Name, row.Unit)
		}
	}
}

// TestModestNoisePassesGate checks that run noise below the threshold
// does not trip the gate (the median across -count runs absorbs single
// outliers by construction).
func TestModestNoisePassesGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchOutput(t, dir, "old.txt", 10000, 100000)
	newPath := writeBenchOutput(t, dir, "new.txt", 9200, 108000) // 8% down
	rep := loadAndCompare(t, oldPath, newPath)
	if rep.Geomean < 0.85 {
		t.Fatalf("geomean = %.3f for an 8%% dip, gate should not trip", rep.Geomean)
	}
}

// TestThroughputCollapseTripsGate checks the worst regression — a
// benchmark reporting 0 msg/s in the new run — is floored into the
// geomean rather than silently skipped.
func TestThroughputCollapseTripsGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchOutput(t, dir, "old.txt", 10000, 100000)
	newPath := writeBenchOutput(t, dir, "new.txt", 0, 100000) // collapsed
	rep := loadAndCompare(t, oldPath, newPath)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want the collapsed benchmarks included", len(rep.Rows))
	}
	if rep.Geomean >= 0.85 {
		t.Fatalf("geomean = %.3f for a throughput collapse, gate must trip", rep.Geomean)
	}
}

// TestNsPerOpFallback strips the custom metric and checks the ns/op
// comparison (lower is better → ratio inverts).
func TestNsPerOpFallback(t *testing.T) {
	dir := t.TempDir()
	write := func(fname string, ns float64) string {
		path := filepath.Join(dir, fname)
		out := fmt.Sprintf("BenchmarkParserBySentenceLength/len05-4\t 100\t%10.0f ns/op\nPASS\n", ns)
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	rep := loadAndCompare(t, write("old.txt", 100000), write("new.txt", 200000))
	if rep.Geomean < 0.49 || rep.Geomean > 0.51 {
		t.Fatalf("geomean = %.3f for 2× slower ns/op, want 0.5", rep.Geomean)
	}
}

// TestParseBenchLine covers the line parser against real go test shapes.
func TestParseBenchLine(t *testing.T) {
	name, r, ok := parseBenchLine("BenchmarkE12OverloadShedding-4 \t       1\t 633867425 ns/op\t       394.0 msg/s\t        78.68 shed-%")
	if !ok || name != "BenchmarkE12OverloadShedding" {
		t.Fatalf("parse failed: %q %v", name, ok)
	}
	if r.nsPerOp != 633867425 || r.metrics["msg/s"] != 394 {
		t.Fatalf("run = %+v", r)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \tsemagent\t1.0s",
		"BenchmarkBroken\tnotanumber\t123 ns/op",
		"--- FAIL: TestX",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Errorf("parsed non-benchmark line %q", bad)
		}
	}
}

// writeBenchmemOutput renders a -benchmem bench file: every benchmark
// reports ns/op, msg/s, B/op and allocs/op.
func writeBenchmemOutput(t *testing.T, dir, fname string, msgs, allocs float64) string {
	t.Helper()
	out := "goos: linux\ngoarch: amd64\npkg: semagent\n"
	for _, bench := range []string{
		"BenchmarkE9ShardedSupervision/sharded-cached-4",
		"BenchmarkE15WireToVerdict/binary-4",
	} {
		for _, jitter := range []float64{1.0, 0.97, 1.03} {
			out += fmt.Sprintf("%s\t       3\t%10.0f ns/op\t%10.1f msg/s\t%8.0f B/op\t%8.0f allocs/op\n",
				bench, 100000*jitter, msgs*jitter, allocs*30*jitter, allocs*jitter)
		}
	}
	out += "PASS\nok  \tsemagent\t1.0s\n"
	path := filepath.Join(dir, fname)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAllocRegressionTripsAllocGate checks the allocation gate: a 50%
// allocs/op increase must land below the 0.85 allocation threshold
// while the performance geomean stays clean.
func TestAllocRegressionTripsAllocGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchmemOutput(t, dir, "old.txt", 10000, 400)
	newPath := writeBenchmemOutput(t, dir, "new.txt", 10000, 600) // +50% allocs
	oldRuns, err := parseBenchFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newRuns, err := parseBenchFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	perf, err := compare(oldRuns, newRuns)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Geomean < 0.99 || perf.Geomean > 1.01 {
		t.Errorf("performance geomean = %.3f, want ≈1.0 (throughput unchanged)", perf.Geomean)
	}
	arep := compareAllocs(oldRuns, newRuns)
	if arep == nil {
		t.Fatal("compareAllocs returned nil with allocs/op present on both sides")
	}
	if len(arep.Rows) != 2 {
		t.Fatalf("alloc rows = %d, want 2", len(arep.Rows))
	}
	if arep.Geomean >= 0.85 {
		t.Fatalf("alloc geomean = %.3f for a +50%% allocation regression, gate must trip", arep.Geomean)
	}
	if arep.Geomean < 0.60 || arep.Geomean > 0.73 {
		t.Errorf("alloc geomean = %.3f, want ≈0.67 for a uniform +50%% regression", arep.Geomean)
	}
}

// TestAllocImprovementPassesAllocGate checks the intended direction —
// fewer allocations — scores above 1.0 and passes.
func TestAllocImprovementPassesAllocGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchmemOutput(t, dir, "old.txt", 10000, 600)
	newPath := writeBenchmemOutput(t, dir, "new.txt", 10000, 200) // 3× fewer
	oldRuns, _ := parseBenchFile(oldPath)
	newRuns, _ := parseBenchFile(newPath)
	arep := compareAllocs(oldRuns, newRuns)
	if arep == nil {
		t.Fatal("compareAllocs returned nil")
	}
	if arep.Geomean < 2.9 || arep.Geomean > 3.1 {
		t.Fatalf("alloc geomean = %.3f, want ≈3.0 for 3× fewer allocs/op", arep.Geomean)
	}
}

// TestAllocGateSkippedWithoutBenchmem checks a baseline captured
// without -benchmem yields a nil allocation report (gate skipped),
// never a failure.
func TestAllocGateSkippedWithoutBenchmem(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBenchOutput(t, dir, "old.txt", 10000, 100000) // no allocs/op
	newPath := writeBenchmemOutput(t, dir, "new.txt", 10000, 400)
	oldRuns, _ := parseBenchFile(oldPath)
	newRuns, _ := parseBenchFile(newPath)
	if arep := compareAllocs(oldRuns, newRuns); arep != nil {
		t.Fatalf("alloc report = %+v, want nil when the baseline lacks -benchmem data", arep)
	}
}

// TestNoOverlapErrors checks disjoint benchmark sets are an error, not
// a silent pass.
func TestNoOverlapErrors(t *testing.T) {
	oldRuns := map[string][]run{"BenchmarkA": {{nsPerOp: 1}}}
	newRuns := map[string][]run{"BenchmarkB": {{nsPerOp: 1}}}
	if _, err := compare(oldRuns, newRuns); err == nil {
		t.Fatal("disjoint runs compared without error")
	}
}
