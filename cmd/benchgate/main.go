// Command benchgate is the CI performance-regression gate: it compares
// two `go test -bench` outputs (the PR head and the merge base, each
// typically run with -count=5) benchmark by benchmark and fails when
// the geometric-mean performance ratio regresses past the threshold.
//
// Usage:
//
//	go test -bench 'E9|E12' -benchtime=3x -count=5 . > new.txt   # on the PR head
//	go test -bench 'E9|E12' -benchtime=3x -count=5 . > old.txt   # on the base
//	benchgate -old old.txt -new new.txt -threshold 0.85
//
// For each benchmark present in both files the gate prefers the msg/s
// custom metric (higher is better; the repo's experiment benchmarks all
// report it) and falls back to ns/op (lower is better). Repeated runs
// of one benchmark (-count) are collapsed to their median, which is
// what benchstat does — a single noisy run must not fail the gate. The
// per-benchmark ratio is normalized so 1.0 means unchanged and below
// 1.0 means the new code is slower; the gate fails when the geometric
// mean of all ratios drops under -threshold (default 0.85, a >15%
// geomean regression).
//
// When both files were produced with -benchmem the gate additionally
// scores the allocation budget: allocs/op medians per benchmark,
// ratio old/new (lower is better), and a second geomean gated by
// -allocthreshold (default 0.85; 0 disables). Benchmarks lacking
// allocs/op on either side are skipped, so baselines captured before
// -benchmem was added never fail the build.
//
// When $GITHUB_STEP_SUMMARY is set (GitHub Actions exports it in every
// job) the same per-benchmark old/new/delta tables are appended there
// as markdown, so the comparison shows up on the run's summary page.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		oldPath        = flag.String("old", "", "bench output of the base commit")
		newPath        = flag.String("new", "", "bench output of the PR head")
		threshold      = flag.Float64("threshold", 0.85, "fail when the geomean performance ratio (new/old) drops below this")
		allocThreshold = flag.Float64("allocthreshold", 0.85, "fail when the geomean allocs/op ratio (old/new) drops below this; 0 disables")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldRuns, err := parseBenchFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newRuns, err := parseBenchFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	rep, err := compare(oldRuns, newRuns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Print(rep.String())
	fail := false
	if rep.Geomean < *threshold {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean performance ratio %.3f below threshold %.3f (>%.0f%% regression)\n",
			rep.Geomean, *threshold, (1-*threshold)*100)
		fail = true
	} else {
		fmt.Printf("benchgate: OK — geomean performance ratio %.3f (threshold %.3f)\n", rep.Geomean, *threshold)
	}
	var arep *report
	if *allocThreshold > 0 {
		if arep = compareAllocs(oldRuns, newRuns); arep != nil {
			fmt.Print(arep.String())
			if arep.Geomean < *allocThreshold {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean allocation ratio %.3f below threshold %.3f (>%.0f%% more allocs/op)\n",
					arep.Geomean, *allocThreshold, (1 / *allocThreshold - 1)*100)
				fail = true
			} else {
				fmt.Printf("benchgate: OK — geomean allocation ratio %.3f (threshold %.3f)\n", arep.Geomean, *allocThreshold)
			}
		} else {
			fmt.Println("benchgate: no allocs/op data in both runs — allocation gate skipped (run with -benchmem to enable)")
		}
	}
	appendStepSummary(rep, arep)
	if fail {
		os.Exit(1)
	}
}
