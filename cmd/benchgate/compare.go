package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// run is one benchmark line's measurements: ns/op plus any custom
// b.ReportMetric units.
type run struct {
	nsPerOp float64
	metrics map[string]float64
}

// parseBenchFile reads `go test -bench` output and groups runs by
// benchmark name with the -N GOMAXPROCS suffix stripped (the suffix
// varies across runner shapes; the benchmark identity does not).
func parseBenchFile(path string) (map[string][]run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]run)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, r, ok := parseBenchLine(sc.Text())
		if ok {
			out[name] = append(out[name], r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkE9ShardedSupervision/serial-uncached-4   3   385822375 ns/op   995.3 msg/s
func parseBenchLine(line string) (string, run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", run{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", run{}, false // iteration count must be an integer
	}
	r := run{metrics: make(map[string]float64)}
	got := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", run{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.nsPerOp = v
		} else {
			r.metrics[unit] = v
		}
		got = true
	}
	if !got {
		return "", run{}, false
	}
	return stripProcSuffix(fields[0]), r, true
}

// stripProcSuffix removes the trailing -N GOMAXPROCS marker go test
// appends to benchmark names.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// row is one benchmark's comparison.
type row struct {
	Name     string
	Unit     string  // metric the ratio is based on
	Old, New float64 // medians in that unit
	Ratio    float64 // normalized: 1.0 unchanged, < 1.0 regression
}

// minRatio floors a benchmark's performance ratio so a total collapse
// (0 msg/s in the new run) still contributes a finite, gate-tripping
// term to the geomean.
const minRatio = 1e-3

// report aggregates one gate's verdict; Label names the quantity the
// ratios score ("performance" or "allocation").
type report struct {
	Label   string
	Rows    []row
	Geomean float64
}

func (r *report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %-9s %14s %14s %8s\n", "benchmark", "unit", "old", "new", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-52s %-9s %14.1f %14.1f %8.3f\n", row.Name, row.Unit, row.Old, row.New, row.Ratio)
	}
	fmt.Fprintf(&b, "geomean %s ratio: %.3f (1.0 = unchanged, < 1.0 = regression)\n", r.Label, r.Geomean)
	return b.String()
}

// Markdown renders the report as a GitHub-flavored table for the job
// step summary: per-benchmark old/new medians and the signed delta (a
// positive delta is an improvement, the ratio is normalized that way).
func (r *report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark %s gate\n\n", r.Label)
	b.WriteString("| benchmark | unit | old | new | delta |\n")
	b.WriteString("|---|---|---:|---:|---:|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| `%s` | %s | %.1f | %.1f | %+.1f%% |\n",
			row.Name, row.Unit, row.Old, row.New, (row.Ratio-1)*100)
	}
	fmt.Fprintf(&b, "\n**geomean %s ratio: %.3f** (1.0 = unchanged, < 1.0 = regression)\n\n", r.Label, r.Geomean)
	return b.String()
}

// appendStepSummary writes the markdown tables to the file GitHub
// Actions exposes via $GITHUB_STEP_SUMMARY; outside Actions (the env
// var unset) it is a no-op.
func appendStepSummary(reports ...*report) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: step summary:", err)
		return
	}
	defer f.Close()
	for _, r := range reports {
		if r != nil {
			_, _ = f.WriteString(r.Markdown())
		}
	}
}

// compare matches benchmarks present in both runs and computes the
// per-benchmark medians, normalized ratios, and their geomean.
// "msg/s" (higher is better) wins over ns/op (lower is better) when
// both sides report it — throughput is what the repo's experiment
// benchmarks are scored on.
func compare(oldRuns, newRuns map[string][]run) (*report, error) {
	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		if _, ok := newRuns[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no benchmarks in common between the two runs")
	}
	sort.Strings(names)

	rep := &report{Label: "performance"}
	logSum := 0.0
	for _, name := range names {
		o, n := oldRuns[name], newRuns[name]
		r := row{Name: name}
		if oldV, ok := medianMetric(o, "msg/s"); ok && oldV > 0 {
			if newV, ok2 := medianMetric(n, "msg/s"); ok2 {
				r.Unit, r.Old, r.New = "msg/s", oldV, newV
				r.Ratio = newV / oldV
			}
		}
		if r.Unit == "" {
			oldNs, newNs := medianNs(o), medianNs(n)
			if oldNs <= 0 || newNs <= 0 {
				continue // nothing comparable on this benchmark
			}
			r.Unit, r.Old, r.New = "ns/op", oldNs, newNs
			r.Ratio = oldNs / newNs
		}
		// A benchmark that collapsed to zero throughput is the worst
		// regression there is — it must weigh the geomean down, never
		// be skipped (log(0) is -Inf, so it gets a floor instead).
		if r.Ratio < minRatio {
			r.Ratio = minRatio
		}
		rep.Rows = append(rep.Rows, r)
		logSum += math.Log(r.Ratio)
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("no comparable measurements between the two runs")
	}
	rep.Geomean = math.Exp(logSum / float64(len(rep.Rows)))
	return rep, nil
}

// compareAllocs matches benchmarks whose runs carry -benchmem's
// allocs/op in both files and scores the allocation budget the same
// way compare scores performance: per-benchmark medians, a normalized
// ratio (allocations are lower-is-better, so ratio = old/new), and
// the geomean across benchmarks. Benchmarks without allocs/op on both
// sides are skipped — a baseline captured before the gate ran with
// -benchmem must not fail the build — and a nil report means no
// benchmark had comparable allocation data at all.
func compareAllocs(oldRuns, newRuns map[string][]run) *report {
	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		if _, ok := newRuns[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rep := &report{Label: "allocation"}
	logSum := 0.0
	for _, name := range names {
		oldV, okOld := medianMetric(oldRuns[name], "allocs/op")
		newV, okNew := medianMetric(newRuns[name], "allocs/op")
		if !okOld || !okNew || oldV <= 0 {
			continue
		}
		r := row{Name: name, Unit: "allocs/op", Old: oldV, New: newV}
		div := newV
		if div <= 0 {
			// Zero allocations is the best possible outcome, not a
			// division hazard worth skipping: floor the divisor at one
			// allocation so the ratio stays finite.
			div = 1
		}
		r.Ratio = oldV / div
		if r.Ratio < minRatio {
			r.Ratio = minRatio
		}
		rep.Rows = append(rep.Rows, r)
		logSum += math.Log(r.Ratio)
	}
	if len(rep.Rows) == 0 {
		return nil
	}
	rep.Geomean = math.Exp(logSum / float64(len(rep.Rows)))
	return rep
}

func medianMetric(runs []run, unit string) (float64, bool) {
	var vals []float64
	for _, r := range runs {
		if v, ok := r.metrics[unit]; ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	return median(vals), true
}

func medianNs(runs []run) float64 {
	var vals []float64
	for _, r := range runs {
		if r.nsPerOp > 0 {
			vals = append(vals, r.nsPerOp)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	return median(vals)
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
