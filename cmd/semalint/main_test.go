package main

import (
	"bytes"
	"strings"
	"testing"
)

// The fixture packages under internal/lint/testdata import only the
// standard library (time, sync), so the real multichecker can be
// driven over them end to end — module discovery, source loading,
// analysis, directive suppression and exit status included. The
// analyzer fixtures that need stand-in repo packages (fake ontology,
// pipeline, metrics) are exercised by internal/lint's harness tests;
// this file pins the binary's contract: exit codes and the diagnostic
// stream.

const fixtureRoot = "../../internal/lint/testdata/src"

// runSemalint drives run() and returns exit status, stdout and stderr.
func runSemalint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestFixtureTreeDiagnostics runs the multichecker over the stdlib-only
// fixture packages and pins the exit status and the exact diagnostic
// count: clockuser carries 4 unannotated wall-clock uses and pooluse 5
// pooled-value escapes; the fixtures' //semalint:allow directives must
// suppress their lines (and, being used, must not be reported as
// stale).
func TestFixtureTreeDiagnostics(t *testing.T) {
	code, stdout, stderr := runSemalint(t,
		"-injectedclock.packages=semagent/internal/lint/testdata/src/clockuser",
		fixtureRoot+"/clockuser", fixtureRoot+"/pooluse")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (diagnostics present)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	const wantDiags = 9
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != wantDiags {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(lines), wantDiags, stdout)
	}
	if !strings.Contains(stderr, "9 diagnostic(s)") {
		t.Errorf("stderr summary = %q, want the diagnostic count", stderr)
	}
	for _, part := range []string{"injectedclock", "pooldiscipline", "direct time.Now", "pooled value"} {
		if !strings.Contains(stdout, part) {
			t.Errorf("diagnostic stream lacks %q:\n%s", part, stdout)
		}
	}
	// Module-relative positions: the CI log must be clickable from the
	// repo root, not from wherever the binary ran.
	if !strings.HasPrefix(lines[0], "internal/lint/testdata/src/") {
		t.Errorf("positions not module-relative: %q", lines[0])
	}
}

// TestCleanPackageExitsZero runs the full analyzer set over packages
// that must be clean — the loader itself and the clock package the
// discipline is built around.
func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runSemalint(t, "../../internal/lint/load", "../../internal/clock")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run produced output:\n%s", stdout)
	}
}

// TestBadFlagExitsTwo pins the usage-error exit code.
func TestBadFlagExitsTwo(t *testing.T) {
	code, _, _ := runSemalint(t, "-no.such.flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage error)", code)
	}
}

// TestOutsideModuleExitsTwo pins the load-failure exit code.
func TestOutsideModuleExitsTwo(t *testing.T) {
	code, _, stderr := runSemalint(t, "/")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (load failure)\nstderr:\n%s", code, stderr)
	}
}
