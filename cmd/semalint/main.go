// Command semalint is this repository's multichecker: it runs the
// domain analyzers of internal/lint (DESIGN.md D14) plus a curated
// set of upstream vet passes over the module and fails on any
// diagnostic that is not annotated with a reasoned //semalint:allow
// directive.
//
// Usage:
//
//	go run ./cmd/semalint ./...
//	go run ./cmd/semalint ./internal/pipeline ./internal/chat
//	go run ./cmd/semalint -injectedclock.packages=semagent/internal/chat ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 the load or the
// analysis itself failed.
//
// Packages are typechecked from source by internal/lint/load — no
// network, no build cache, no export data — so the gate runs
// identically in CI and on a laptop. Test files are not analyzed:
// tests legitimately use the wall clock and synthetic metric names.
//
// The upstream set is lostcancel, copylock and atomic: the
// concurrency passes most relevant to a worker-pool codebase.
// nilness is deliberately absent — it requires go/ssa, which the
// toolchain does not vendor and this repository refuses to fetch;
// revisit if x/tools ever becomes a full dependency.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"

	"semagent/internal/lint"
	"semagent/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// upstream is the curated set of vendored vet passes run alongside
// the domain suite.
func upstream() []*analysis.Analyzer {
	return []*analysis.Analyzer{lostcancel.Analyzer, copylock.Analyzer, atomic.Analyzer}
}

// run is main, minus the process exit — the unit tests drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("semalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzers := append(lint.Suite(), upstream()...)
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: semalint [flags] [./... | packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			title, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, title)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(stderr, "semalint: %v\n", err)
		return 2
	}
	loader := load.New(modPath, modRoot)
	pkgs, err := selectPackages(loader, modRoot, modPath, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "semalint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, loader.Fset, analyzers, lint.Options{ReportUnusedAllows: true})
	if err != nil {
		fmt.Fprintf(stderr, "semalint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(modRoot, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "semalint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectPackages loads either the whole module ("./..." or no
// arguments) or the named directories.
func selectPackages(loader *load.Loader, modRoot, modPath string, args []string) ([]*load.Package, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*load.Package
	for _, arg := range args {
		if arg == "./..." || arg == "all" {
			all, err := loader.LoadModule()
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, all...)
			continue
		}
		dir, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside module %s", arg, modPath)
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module root and path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
