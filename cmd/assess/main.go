// Command assess runs the full supervision pipeline over sentences from
// the command line or stdin — the quickest way to see what the agents
// think of a sentence, including the link grammar diagram.
//
// Usage:
//
//	assess "The tree doesn't have a pop method."
//	echo "I push the data into a tree." | assess
//	assess -json "What is a stack?"
//	assess -diagram "The cat chased a mouse."
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"semagent/internal/core"
)

func main() {
	var (
		asJSON  = flag.Bool("json", false, "emit one JSON object per sentence")
		diagram = flag.Bool("diagram", false, "print the best linkage diagram")
	)
	flag.Parse()
	if err := run(flag.Args(), *asJSON, *diagram); err != nil {
		fmt.Fprintln(os.Stderr, "assess:", err)
		os.Exit(1)
	}
}

// verdictView is the JSON shape emitted with -json.
type verdictView struct {
	Text        string   `json:"text"`
	Pattern     string   `json:"pattern"`
	Verdict     string   `json:"verdict"`
	ErrorTags   []string `json:"errorTags,omitempty"`
	Repaired    string   `json:"repaired,omitempty"`
	Explanation string   `json:"explanation,omitempty"`
	Answer      string   `json:"answer,omitempty"`
	Topics      []string `json:"topics,omitempty"`
	Responses   []string `json:"responses,omitempty"`
}

func run(args []string, asJSON, diagram bool) error {
	sup, err := core.New(core.Config{DisableRecording: true})
	if err != nil {
		return err
	}

	assess := func(text string) error {
		a, err := sup.Process("assess", "user", text)
		if err != nil {
			return err
		}
		if asJSON {
			view := verdictView{
				Text:    text,
				Pattern: a.Classification.Pattern.String(),
				Verdict: a.Verdict.String(),
			}
			if a.Syntax != nil {
				view.ErrorTags = a.Syntax.Tags
				view.Repaired = a.Syntax.Repaired
				view.Topics = a.Syntax.Topics
			}
			if a.Semantic != nil {
				view.Explanation = a.Semantic.Explanation
			}
			if a.QAAnswer != nil && a.QAAnswer.Answered {
				view.Answer = a.QAAnswer.Text
			}
			for _, r := range a.Responses {
				view.Responses = append(view.Responses, r.Agent+": "+r.Text)
			}
			enc := json.NewEncoder(os.Stdout)
			return enc.Encode(view)
		}
		fmt.Printf("%s\n  pattern=%s verdict=%s\n", text, a.Classification.Pattern, a.Verdict)
		for _, r := range a.Responses {
			fmt.Printf("  %s> %s\n", r.Agent, r.Text)
		}
		if diagram && a.Syntax != nil && a.Syntax.Linkage != nil {
			fmt.Println(indent(a.Syntax.Linkage.String(), "  "))
		}
		return nil
	}

	if len(args) > 0 {
		for _, text := range args {
			if err := assess(text); err != nil {
				return err
			}
		}
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := assess(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}
