// Command evalharness regenerates the evaluation of DESIGN.md §4: one
// experiment per paper figure (E1–E8). It prints the measurement tables
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	evalharness -exp all            # run everything (default)
//	evalharness -exp E3 -n 2000     # one experiment, bigger workload
//	evalharness -exp E6 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"semagent/internal/eval"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment to run: E1..E8 or all")
		n    = flag.Int("n", 1000, "workload size (samples/questions)")
		seed = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	if err := run(strings.ToUpper(*exp), *n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "evalharness:", err)
		os.Exit(1)
	}
}

func run(exp string, n int, seed int64) error {
	runners := map[string]func(int, int64) error{
		"E1": runE1, "E2": runE2, "E3": runE3, "E4": runE4,
		"E5": runE5, "E6": runE6, "E7": runE7, "E8": runE8,
	}
	if exp == "ALL" {
		for _, name := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"} {
			if err := runners[name](n, seed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	runner, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want E1..E8 or all)", exp)
	}
	return runner(n, seed)
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func runE1(n int, seed int64) error {
	header("E1  parser correctness on grammatical sentences (Fig. 1-2)")
	res, err := eval.RunE1(n, seed)
	if err != nil {
		return err
	}
	fmt.Printf("sentences: %d   parsed clean: %d (%.1f%%)   meta-rule violations: %d\n",
		res.Total, res.Parsed, res.ParseRate()*100, res.MetaViolations)
	lengths := make([]int, 0, len(res.ByLength))
	for l := range res.ByLength {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	fmt.Println("len  sentences  parse-rate")
	for _, l := range lengths {
		b := res.ByLength[l]
		fmt.Printf("%3d  %9d  %9.1f%%\n", l, b.Total, 100*float64(b.Parsed)/float64(b.Total))
	}
	return nil
}

func runE2(n int, seed int64) error {
	header("E2  Learning_Angel syntax-error detection (Fig. 4)")
	fmt.Println("nulls  precision  recall  f1     acc    suggest  repair")
	for _, nulls := range []int{0, 1, 2, 3} {
		res, err := eval.RunE2(n, seed, nulls)
		if err != nil {
			return err
		}
		c := res.Confusion
		fmt.Printf("%5d  %9.3f  %6.3f  %.3f  %.3f  %6.1f%%  %5.1f%%\n",
			nulls, c.Precision(), c.Recall(), c.F1(), c.Accuracy(),
			res.SuggestionRate*100, res.RepairRate*100)
		if nulls == 2 {
			muts := make([]string, 0, len(res.ByMutation))
			for m := range res.ByMutation {
				muts = append(muts, m)
			}
			sort.Strings(muts)
			for _, m := range muts {
				fmt.Printf("       mutation %-20s recall %.3f (n=%d)\n",
					m, res.ByMutation[m].Recall(), res.ByMutation[m].Total())
			}
		}
	}
	return nil
}

func runE3(n int, seed int64) error {
	header("E3  Semantic Agent: interrogative-sentence detection (Fig. 5, §4.3)")
	fmt.Println("threshold  precision  recall  f1     acc")
	for _, th := range []int{1, 2, 3, 4} {
		res, err := eval.RunE3(n, seed, th)
		if err != nil {
			return err
		}
		c := res.Confusion
		fmt.Printf("%9d  %9.3f  %6.3f  %.3f  %.3f\n",
			th, c.Precision(), c.Recall(), c.F1(), c.Accuracy())
		if th == 2 {
			cells := make([]string, 0, len(res.Cells))
			for cell := range res.Cells {
				cells = append(cells, cell)
			}
			sort.Strings(cells)
			for _, cell := range cells {
				fmt.Printf("           cell %-18s acc %.3f (n=%d)\n",
					cell, res.Cells[cell].Accuracy(), res.Cells[cell].Total())
			}
		}
	}
	return nil
}

func runE4(n int, seed int64) error {
	header("E4  QA system answer rate per template (Fig. 6, §4.4)")
	res, err := eval.RunE4(n, seed, 0.2)
	if err != nil {
		return err
	}
	fmt.Println("template       asked  answered  rate     y/n-correct")
	for _, row := range res.Rows {
		correct := "    -"
		if row.Checkable > 0 {
			correct = fmt.Sprintf("%.1f%%", 100*float64(row.Correct)/float64(row.Checkable))
		}
		fmt.Printf("%-13s  %5d  %8d  %5.1f%%  %10s\n",
			row.Template, row.Asked, row.Answered,
			100*float64(row.Answered)/float64(row.Asked), correct)
	}
	fmt.Printf("overall in-ontology answer rate: %.1f%%\n", res.AnswerRate()*100)
	fmt.Printf("out-of-ontology: asked %d, wrongly answered %d\n",
		res.OutOfOntologyAsked, res.OutOfOntologyAnswered)
	return nil
}

func runE5(n int, seed int64) error {
	header("E5  FAQ accumulation vs dialogue volume (§4.4 mining)")
	sizes := []int{100, 300, 1000, 3000}
	if n < 3000 {
		sizes = []int{50, 150, 500, n}
	}
	rows, err := eval.RunE5(sizes, seed)
	if err != nil {
		return err
	}
	fmt.Println("messages  faq-entries  mined-pairs  top-count")
	for _, r := range rows {
		fmt.Printf("%8d  %11d  %11d  %9d\n", r.Messages, r.FAQEntries, r.MinedPairs, r.TopCount)
	}
	return nil
}

func runE6(n int, seed int64) error {
	header("E6  end-to-end chat room over TCP: supervision ablation (Fig. 3)")
	fmt.Println("mode    msgs  throughput      p50        p95        p99       mean")
	for _, mode := range []eval.E6Mode{eval.E6Off, eval.E6Inline, eval.E6Async} {
		res, err := eval.RunE6(eval.E6Config{
			Rooms: 4, ClientsPerRoom: 4, MessagesEach: 25, Mode: mode, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %5d  %7.0f/s  %9s  %9s  %9s  %9s\n",
			mode, res.Messages, res.Throughput, res.P50, res.P95, res.P99, res.Mean)
	}
	return nil
}

func runE7(n int, seed int64) error {
	header("E7  ablation: ontology-distance vs Semantic Link Grammar (§4.3)")
	res, err := eval.RunE7(n, seed)
	if err != nil {
		return err
	}
	fmt.Println("method                 acc    precision  recall  us/sentence  maintenance-rows")
	for _, arm := range []eval.E7Arm{res.Onto, res.SLG} {
		fmt.Printf("%-21s  %.3f  %9.3f  %6.3f  %11.1f  %16d\n",
			arm.Name, arm.Confusion.Accuracy(), arm.Confusion.Precision(),
			arm.Confusion.Recall(), arm.MicrosPerSentence, arm.MaintenanceSize)
	}
	return nil
}

func runE8(n int, seed int64) error {
	header("E8  corpus growth vs suggestion quality (§1 instructor-off problem)")
	rows, err := eval.RunE8([]int{0, 50, 200, 1000}, 100, seed)
	if err != nil {
		return err
	}
	fmt.Println("corpus-size  hit-rate  topical-rate")
	for _, r := range rows {
		fmt.Printf("%11d  %7.1f%%  %11.1f%%\n", r.CorpusSize, r.HitRate*100, r.TopicalRate*100)
	}
	return nil
}
