// Command evalharness regenerates the evaluation of DESIGN.md §4: one
// experiment per paper figure (E1–E8) plus the scale experiments E9
// (concurrent rooms through the sharded supervision pipeline, cached
// vs uncached parses), E10 (lock-free snapshot read path vs the legacy
// locked ontology), E11 (write-ahead journaling overhead and crash
// recovery), E12 (open-loop overload with admission-control shedding),
// E13 (deterministic scenario-matrix simulation scoring per-persona
// detection precision/recall), E14 (population-scale chaos sweep:
// generated classrooms with seeded fault schedules, audited against
// invariants), E15 (wire-to-verdict throughput and allocations,
// newline-JSON vs length-prefixed binary framing, across supervision
// pool sizes) and E16 (cluster failover: a deterministic three-arm
// drill — golden single-node session vs the identical session on the
// room-partitioned fabric, with and without a mid-session owner
// kill — plus a generated node-kill/partition chaos sweep audited
// against the failover invariant) and E17 (adversarial cluster chaos:
// an all-classes determinism drill — asymmetric ship-stream partitions,
// staged promotion-coordinator crashes, lagged standbys and
// clock-skewed lease races in one population, replayed byte-identical —
// plus a sweep rotating one profile per fault class, audited against
// the four adversarial invariants).
//
// Usage:
//
//	evalharness -exp all                  # run everything (default)
//	evalharness -exp E3 -n 2000           # one experiment, bigger workload
//	evalharness -exp E6 -seed 7
//	evalharness -exp E9 -rooms 16         # scale: more concurrent rooms
//	evalharness -exp E10 -json            # machine-readable results (JSON)
//	evalharness -exp E12 -json            # overload shedding (JSON)
//	evalharness -exp E13 -json            # persona-matrix detection scores (JSON)
//	evalharness -exp E14 -seed 7 -json    # chaos sweep; exits nonzero on violation
//	evalharness -exp E15 -json            # text vs binary wire comparison (JSON)
//	evalharness -exp E16 -seed 7 -json    # cluster failover drill + chaos sweep
//	evalharness -exp E17 -seed 7 -json    # adversarial chaos: partitions, staged crashes, skew
//	evalharness -exp E10,E11,E12,E13 -json  # one JSON array: the CI perf trajectory
//
// A comma-separated -exp list runs each experiment in order; with -json
// the output is a single JSON array of {"experiment", "result"} objects
// (the bench_trajectory.json artifact in CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"semagent/internal/eval"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment(s) to run: E1..E17, a comma-separated list, or all")
		n        = flag.Int("n", 1000, "workload size (samples/questions)")
		seed     = flag.Int64("seed", 1, "workload seed")
		rooms    = flag.Int("rooms", 8, "concurrent rooms (E9, E11, E12, E13, E14, E16, E17)")
		jsonFlag = flag.Bool("json", false, "emit machine-readable JSON results (E10..E17)")
	)
	flag.Parse()
	p := params{n: *n, seed: *seed, rooms: *rooms, json: *jsonFlag}
	// E14 defaults to its population-scale room count unless -rooms was
	// given explicitly (the shared default of 8 is an E9-era knob).
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rooms" {
			p.roomsSet = true
		}
	})
	if err := run(strings.ToUpper(*exp), p); err != nil {
		fmt.Fprintln(os.Stderr, "evalharness:", err)
		os.Exit(1)
	}
}

// params carries the command-line knobs to the experiment runners.
type params struct {
	n        int
	seed     int64
	rooms    int
	roomsSet bool
	json     bool
}

// allExperiments is the canonical order.
var allExperiments = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}

// textRunners print human-readable tables; jsonResults produce the
// machine-readable result objects for the experiments that support
// -json (the perf-trajectory artifacts).
var (
	textRunners = map[string]func(params) error{
		"E1": runE1, "E2": runE2, "E3": runE3, "E4": runE4,
		"E5": runE5, "E6": runE6, "E7": runE7, "E8": runE8,
		"E9": runE9, "E10": runE10, "E11": runE11, "E12": runE12,
		"E13": runE13, "E14": runE14, "E15": runE15, "E16": runE16,
		"E17": runE17,
	}
	jsonResults = map[string]func(params) (interface{}, error){
		"E10": resultE10, "E11": resultE11, "E12": resultE12,
		"E13": resultE13, "E14": resultE14, "E15": resultE15,
		"E16": resultE16, "E17": resultE17,
	}
)

// trajectoryEntry wraps one experiment's result in the combined-JSON
// output. Seed echoes the -seed the run was invoked with, so any
// artifact names its own reproducing command.
type trajectoryEntry struct {
	Experiment string      `json:"experiment"`
	Seed       int64       `json:"seed"`
	Result     interface{} `json:"result"`
}

// failer is implemented by results that can fail the run after their
// JSON is emitted (E14: invariant violations must both upload the
// artifact and exit nonzero with the reproducing seed).
type failer interface{ Failed() error }

func run(expArg string, p params) error {
	names := strings.Split(expArg, ",")
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
	}
	if len(names) == 1 && names[0] == "ALL" {
		names = allExperiments
	}
	for _, name := range names {
		if _, ok := textRunners[name]; !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E17, a comma-separated list, or all)", name)
		}
	}

	if p.json {
		var entries []trajectoryEntry
		for _, name := range names {
			getter, ok := jsonResults[name]
			if !ok {
				return fmt.Errorf("%s does not support -json (supported: E10..E17)", name)
			}
			res, err := getter(p)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			entries = append(entries, trajectoryEntry{Experiment: name, Seed: p.seed, Result: res})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(entries) == 1 {
			// Single experiment keeps the bare-object shape older
			// tooling parses (e10.json / e11.json artifacts).
			if err := enc.Encode(entries[0].Result); err != nil {
				return err
			}
		} else if err := enc.Encode(entries); err != nil {
			return err
		}
		// The artifact is written either way; a failed result (E14
		// invariant violation) still exits nonzero with its seed.
		for _, e := range entries {
			if f, ok := e.Result.(failer); ok {
				if err := f.Failed(); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for _, name := range names {
		if err := textRunners[name](p); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func runE1(p params) error {
	header("E1  parser correctness on grammatical sentences (Fig. 1-2)")
	res, err := eval.RunE1(p.n, p.seed)
	if err != nil {
		return err
	}
	fmt.Printf("sentences: %d   parsed clean: %d (%.1f%%)   meta-rule violations: %d\n",
		res.Total, res.Parsed, res.ParseRate()*100, res.MetaViolations)
	lengths := make([]int, 0, len(res.ByLength))
	for l := range res.ByLength {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	fmt.Println("len  sentences  parse-rate")
	for _, l := range lengths {
		b := res.ByLength[l]
		fmt.Printf("%3d  %9d  %9.1f%%\n", l, b.Total, 100*float64(b.Parsed)/float64(b.Total))
	}
	return nil
}

func runE2(p params) error {
	header("E2  Learning_Angel syntax-error detection (Fig. 4)")
	fmt.Println("nulls  precision  recall  f1     acc    suggest  repair")
	for _, nulls := range []int{0, 1, 2, 3} {
		res, err := eval.RunE2(p.n, p.seed, nulls)
		if err != nil {
			return err
		}
		c := res.Confusion
		fmt.Printf("%5d  %9.3f  %6.3f  %.3f  %.3f  %6.1f%%  %5.1f%%\n",
			nulls, c.Precision(), c.Recall(), c.F1(), c.Accuracy(),
			res.SuggestionRate*100, res.RepairRate*100)
		if nulls == 2 {
			muts := make([]string, 0, len(res.ByMutation))
			for m := range res.ByMutation {
				muts = append(muts, m)
			}
			sort.Strings(muts)
			for _, m := range muts {
				fmt.Printf("       mutation %-20s recall %.3f (n=%d)\n",
					m, res.ByMutation[m].Recall(), res.ByMutation[m].Total())
			}
		}
	}
	return nil
}

func runE3(p params) error {
	header("E3  Semantic Agent: interrogative-sentence detection (Fig. 5, §4.3)")
	fmt.Println("threshold  precision  recall  f1     acc")
	for _, th := range []int{1, 2, 3, 4} {
		res, err := eval.RunE3(p.n, p.seed, th)
		if err != nil {
			return err
		}
		c := res.Confusion
		fmt.Printf("%9d  %9.3f  %6.3f  %.3f  %.3f\n",
			th, c.Precision(), c.Recall(), c.F1(), c.Accuracy())
		if th == 2 {
			cells := make([]string, 0, len(res.Cells))
			for cell := range res.Cells {
				cells = append(cells, cell)
			}
			sort.Strings(cells)
			for _, cell := range cells {
				fmt.Printf("           cell %-18s acc %.3f (n=%d)\n",
					cell, res.Cells[cell].Accuracy(), res.Cells[cell].Total())
			}
		}
	}
	return nil
}

func runE4(p params) error {
	header("E4  QA system answer rate per template (Fig. 6, §4.4)")
	res, err := eval.RunE4(p.n, p.seed, 0.2)
	if err != nil {
		return err
	}
	fmt.Println("template       asked  answered  rate     y/n-correct")
	for _, row := range res.Rows {
		correct := "    -"
		if row.Checkable > 0 {
			correct = fmt.Sprintf("%.1f%%", 100*float64(row.Correct)/float64(row.Checkable))
		}
		fmt.Printf("%-13s  %5d  %8d  %5.1f%%  %10s\n",
			row.Template, row.Asked, row.Answered,
			100*float64(row.Answered)/float64(row.Asked), correct)
	}
	fmt.Printf("overall in-ontology answer rate: %.1f%%\n", res.AnswerRate()*100)
	fmt.Printf("out-of-ontology: asked %d, wrongly answered %d\n",
		res.OutOfOntologyAsked, res.OutOfOntologyAnswered)
	return nil
}

func runE5(p params) error {
	header("E5  FAQ accumulation vs dialogue volume (§4.4 mining)")
	sizes := []int{100, 300, 1000, 3000}
	if p.n < 3000 {
		sizes = []int{50, 150, 500, p.n}
	}
	rows, err := eval.RunE5(sizes, p.seed)
	if err != nil {
		return err
	}
	fmt.Println("messages  faq-entries  mined-pairs  top-count")
	for _, r := range rows {
		fmt.Printf("%8d  %11d  %11d  %9d\n", r.Messages, r.FAQEntries, r.MinedPairs, r.TopCount)
	}
	return nil
}

func runE6(p params) error {
	header("E6  end-to-end chat room over TCP: supervision ablation (Fig. 3)")
	fmt.Println("mode    msgs  throughput      p50        p95        p99       mean")
	for _, mode := range []eval.E6Mode{eval.E6Off, eval.E6Inline, eval.E6Async} {
		res, err := eval.RunE6(eval.E6Config{
			Rooms: 4, ClientsPerRoom: 4, MessagesEach: 25, Mode: mode, Seed: p.seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %5d  %7.0f/s  %9s  %9s  %9s  %9s\n",
			mode, res.Messages, res.Throughput, res.P50, res.P95, res.P99, res.Mean)
	}
	return nil
}

func runE7(p params) error {
	header("E7  ablation: ontology-distance vs Semantic Link Grammar (§4.3)")
	res, err := eval.RunE7(p.n, p.seed)
	if err != nil {
		return err
	}
	fmt.Println("method                 acc    precision  recall  us/sentence  maintenance-rows")
	for _, arm := range []eval.E7Arm{res.Onto, res.SLG} {
		fmt.Printf("%-21s  %.3f  %9.3f  %6.3f  %11.1f  %16d\n",
			arm.Name, arm.Confusion.Accuracy(), arm.Confusion.Precision(),
			arm.Confusion.Recall(), arm.MicrosPerSentence, arm.MaintenanceSize)
	}
	return nil
}

func runE8(p params) error {
	header("E8  corpus growth vs suggestion quality (§1 instructor-off problem)")
	rows, err := eval.RunE8([]int{0, 50, 200, 1000}, 100, p.seed)
	if err != nil {
		return err
	}
	fmt.Println("corpus-size  hit-rate  topical-rate")
	for _, r := range rows {
		fmt.Printf("%11d  %7.1f%%  %11.1f%%\n", r.CorpusSize, r.HitRate*100, r.TopicalRate*100)
	}
	return nil
}

func runE9(p params) error {
	header("E9  sharded supervision pipeline: concurrent rooms, parse cache (§4)")
	perRoom := p.n / 10
	res, err := eval.RunE9(eval.E9Config{
		Rooms: p.rooms, MessagesPerRoom: perRoom, Seed: p.seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("rooms: %d   messages/room: %d   workers: GOMAXPROCS\n",
		res.Config.Rooms, res.Config.MessagesPerRoom)
	fmt.Println("arm               msgs  throughput  cache-hit  max-queue")
	for _, arm := range res.Arms {
		hit, queue := "    -", "    -"
		if arm.Cached {
			hit = fmt.Sprintf("%.1f%%", arm.Cache.HitRate()*100)
		}
		if arm.Sharded {
			queue = fmt.Sprintf("%d", arm.Pipeline.MaxQueueDepth)
		}
		fmt.Printf("%-16s %5d  %8.0f/s  %9s  %9s\n",
			arm.Name, arm.Messages, arm.Throughput, hit, queue)
	}
	fmt.Printf("speedup over serial-uncached: sharded %.1fx, sharded+cached %.1fx\n",
		res.SpeedupSharded, res.SpeedupCached)
	return nil
}

func resultE11(p params) (interface{}, error) {
	return eval.RunE11(eval.E11Config{
		Rooms: p.rooms, MessagesPerRoom: p.n / 10, Seed: p.seed,
	})
}

func runE11(p params) error {
	perRoom := p.n / 10
	res, err := eval.RunE11(eval.E11Config{
		Rooms: p.rooms, MessagesPerRoom: perRoom, Seed: p.seed,
	})
	if err != nil {
		return err
	}
	header("E11 write-ahead journaling overhead + crash recovery (D9)")
	fmt.Printf("rooms: %d   messages/room: %d   workers: GOMAXPROCS\n",
		res.Config.Rooms, res.Config.MessagesPerRoom)
	fmt.Println("arm               msgs  throughput  overhead  wal-records  fsyncs  recovered")
	for _, arm := range res.Arms {
		overhead, recovered := "       -", "        -"
		if arm.Name != "no-journal" {
			overhead = fmt.Sprintf("%7.1f%%", arm.OverheadPct)
			recovered = fmt.Sprintf("%d/%d", arm.RecoveredCorpus, arm.Messages)
		}
		fmt.Printf("%-16s %5d  %8.0f/s  %8s  %11d  %6d  %9s\n",
			arm.Name, arm.Messages, arm.Throughput, overhead, arm.Records, arm.Fsyncs, recovered)
	}
	fmt.Printf("journaling cost vs no-journal: group-commit %.1f%%, fsync-per-record %.1f%%\n",
		res.GroupOverheadPct, res.SyncOverheadPct)
	return nil
}

func resultE10(p params) (interface{}, error) {
	return eval.RunE10(eval.E10Config{QueriesPerWorker: p.n * 20, Seed: p.seed})
}

func runE10(p params) error {
	res, err := eval.RunE10(eval.E10Config{QueriesPerWorker: p.n * 20, Seed: p.seed})
	if err != nil {
		return err
	}
	header("E10 lock-free snapshot read path vs locked ontology (D8)")
	fmt.Printf("snapshot v%d: %d items, %d relations, %d table entries (radius %d), max phrase %d\n",
		res.Snapshot.Version, res.Snapshot.Items, res.Snapshot.Relations,
		res.Snapshot.TableEntries, res.Snapshot.TableRadius, res.Snapshot.MaxPhraseLen)
	fmt.Println("path      workers   queries  ns/query   queries/s")
	for _, arm := range res.Arms {
		fmt.Printf("%-9s %7d  %8d  %8.1f  %10.0f\n",
			arm.Path, arm.Workers, arm.Queries, arm.NsPerQuery, arm.QueriesPerSec)
	}
	workers := make([]int, 0, len(res.Speedup))
	for w := range res.Speedup {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		fmt.Printf("speedup at %2d workers: %.1fx\n", w, res.Speedup[w])
	}
	return nil
}

func e13Config(p params) eval.E13Config {
	turns := p.n / 100
	if turns < 2 {
		turns = 2
	}
	return eval.E13Config{Rooms: p.rooms, Turns: turns, Seed: p.seed}
}

func resultE13(p params) (interface{}, error) {
	return eval.RunE13(e13Config(p))
}

func runE13(p params) error {
	res, err := eval.RunE13(e13Config(p))
	if err != nil {
		return err
	}
	header("E13 scenario matrix: per-persona detection precision/recall (D11)")
	fmt.Printf("scenario: %s   messages: %d   supervised: %d   mined FAQ pairs: %d\n",
		res.Scenario, res.Messages, res.Supervised, res.MinedPairs)
	fmt.Println("persona       sent  supervised  shed    tp    fp    fn    tn  precision  recall")
	for _, row := range res.Rows {
		fmt.Printf("%-12s %5d  %10d  %4d  %4d  %4d  %4d  %4d  %9.3f  %6.3f\n",
			row.Persona, row.Sent, row.Supervised, row.Shed,
			row.TruePos, row.FalsePos, row.FalseNeg, row.TrueNeg,
			row.Precision, row.Recall)
	}
	fmt.Printf("micro precision %.3f, micro recall %.3f, question answer rate %.1f%%\n",
		res.MicroPrecision, res.MicroRecall, res.QuestionAnswerRate*100)
	return nil
}

func e14Config(p params) eval.E14Config {
	cfg := eval.E14Config{Seed: p.seed}
	if p.roomsSet {
		cfg.Rooms = p.rooms
	}
	return cfg
}

func resultE14(p params) (interface{}, error) {
	return eval.RunE14(e14Config(p))
}

func e15Config(p params) eval.E15Config {
	// -n scales each client's script (default 1000 → 125 lines/client
	// across the 4×2 population).
	return eval.E15Config{MessagesEach: p.n / 8, Seed: p.seed}
}

func resultE15(p params) (interface{}, error) {
	return eval.RunE15(e15Config(p))
}

func runE15(p params) error {
	res, err := eval.RunE15(e15Config(p))
	if err != nil {
		return err
	}
	header("E15 wire-to-verdict: text vs binary framing over TCP (D13)")
	fmt.Printf("rooms: %d   clients/room: %d   messages/client: %d   batch: %v\n",
		res.Config.Rooms, res.Config.ClientsPerRoom, res.Config.MessagesEach, !res.Config.NoBatch)
	fmt.Println("wire     workers   msgs  throughput   allocs/msg   bytes/msg")
	for _, arm := range res.Arms {
		fmt.Printf("%-8s %7d  %5d  %8.0f/s  %11.0f  %10.0f\n",
			arm.Wire, arm.Workers, arm.Messages, arm.Throughput,
			arm.AllocsPerMsg, arm.BytesPerMsg)
	}
	fmt.Printf("binary vs text at %d workers: %.2fx throughput, %.0f%% fewer allocs/msg\n",
		res.Arms[len(res.Arms)-1].Workers, res.BinarySpeedup, res.AllocReduction*100)
	return nil
}

func runE14(p params) error {
	res, err := eval.RunE14(e14Config(p))
	if err != nil {
		return err
	}
	header("E14 population-scale chaos sweep: generated scenarios vs invariants (D12)")
	fmt.Printf("master seed: %d   waves: %d   rooms: %d   students: %d\n",
		res.Config.Seed, res.Waves, res.Rooms, res.Students)
	fmt.Printf("messages: %d   supervised: %d   shed: %d\n",
		res.Messages, res.Supervised, res.Shed)
	fmt.Printf("faults: %d drops (%d torn), %d storms, %d crashes (%d WAL records replayed)\n",
		res.Faults.Drops, res.Faults.TornDrops, res.Faults.Storms,
		res.Faults.Crashes, res.Faults.ReplayedRecords)
	names := make([]string, 0, len(res.InvariantChecks))
	for name := range res.InvariantChecks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("invariant           waves-audited  violations")
	for _, name := range names {
		count := 0
		for _, v := range res.Violations {
			if v.Invariant == name {
				count++
			}
		}
		fmt.Printf("%-19s %13d  %10d\n", name, res.InvariantChecks[name], count)
	}
	if err := res.Failed(); err != nil {
		for _, v := range res.Violations {
			fmt.Printf("VIOLATION wave %d (seed %d) %s: %s\n", v.Wave, v.Seed, v.Invariant, v.Detail)
		}
		return err
	}
	fmt.Printf("all invariants held; reproduce with: evalharness -exp E14 -seed %d\n", res.Config.Seed)
	return nil
}

func e16Config(p params) eval.E16Config {
	cfg := eval.E16Config{Seed: p.seed}
	if p.roomsSet {
		cfg.Rooms = p.rooms
	}
	return cfg
}

func resultE16(p params) (interface{}, error) {
	return eval.RunE16(e16Config(p))
}

func runE16(p params) error {
	res, err := eval.RunE16(e16Config(p))
	if err != nil {
		return err
	}
	header("E16 cluster failover: golden vs fabric vs mid-session owner kill (D15)")
	fmt.Printf("drill seed: %d   kill step: %d   reconnect-window deliveries: %d\n",
		res.Config.Seed, res.KillStep, res.WindowDeliveries)
	fmt.Println("arm        sent  supervised  deliveries  verdicts")
	for _, arm := range []struct {
		name string
		a    eval.E16Arm
	}{
		{"golden", res.Golden},
		{"cluster", res.Cluster},
		{"failover", res.Failover},
	} {
		fmt.Printf("%-9s %5d  %10d  %10d  %8d\n",
			arm.name, arm.a.Sent, arm.a.Supervised, arm.a.Deliveries, arm.a.Verdicts)
	}
	p16 := res.Promotion
	fmt.Printf("promotion: %s -> %s, %d rooms moved; standby LSN %d >= dead fsync LSN %d, replayed %d records (%d errors)\n",
		p16.Dead, p16.Promoted, len(p16.Moves), p16.SinkLastLSN, p16.DeadSyncedLSN, p16.ReplayApplied, p16.ReplayErrors)
	fmt.Printf("sweep: %d waves, %d rooms, %d students, %d messages; %d node kills, %d partitions, %d failovers\n",
		res.Waves, res.Rooms, res.Students, res.Messages,
		res.Faults.NodeKills, res.Faults.Partitions, res.Failovers)
	names := make([]string, 0, len(res.InvariantChecks))
	for name := range res.InvariantChecks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("invariant                         waves-audited")
	for _, name := range names {
		fmt.Printf("%-33s %13d\n", name, res.InvariantChecks[name])
	}
	if err := res.Failed(); err != nil {
		for _, d := range res.Divergences {
			fmt.Printf("DIVERGENCE %s\n", d)
		}
		for _, v := range res.Violations {
			fmt.Printf("VIOLATION wave %d (seed %d) %s: %s\n", v.Wave, v.Seed, v.Invariant, v.Detail)
		}
		return err
	}
	fmt.Printf("drill matched golden outside the window and all invariants held; reproduce with: evalharness -exp E16 -seed %d\n",
		res.Config.Seed)
	return nil
}

func e17Config(p params) eval.E17Config {
	cfg := eval.E17Config{Seed: p.seed}
	if p.roomsSet {
		cfg.Rooms = p.rooms
	}
	return cfg
}

func resultE17(p params) (interface{}, error) {
	return eval.RunE17(e17Config(p))
}

func runE17(p params) error {
	res, err := eval.RunE17(e17Config(p))
	if err != nil {
		return err
	}
	header("E17 adversarial cluster chaos: partitions, staged crashes, lag, skew (D16)")
	d := res.Drill
	fmt.Printf("drill seed: %d   byte-identical replay: %v\n", d.Seed, d.Identical)
	fmt.Printf("drill: %d messages, %d supervised, %d failovers (%d resumed, %d lossy), %d races (%d seized, %d refused)\n",
		d.Messages, d.Supervised, d.Failovers, d.Faults.Resumes, d.Faults.LossyPromotions,
		d.Races, d.Faults.Seizures, d.Faults.Refusals)
	f := res.Faults
	fmt.Printf("sweep: %d waves, %d rooms, %d students, %d messages; faults: %d ship cuts (%d heals), %d staged crashes, %d lagged kills, %d skew races, %d kills, %d partitions\n",
		res.Waves, res.Rooms, res.Students, res.Messages,
		f.ShipCuts, f.ShipHeals, f.PromoCrash, f.LaggedKills, f.SkewRaces, f.NodeKills, f.Partitions)
	fmt.Printf("outcomes: %d failovers (%d resumed, %d lossy), %d races (%d seized, %d refused)\n",
		res.Failovers, f.Resumes, f.LossyPromotions, res.Races, f.Seizures, f.Refusals)
	names := make([]string, 0, len(res.InvariantChecks))
	for name := range res.InvariantChecks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("invariant                         waves-audited")
	for _, name := range names {
		fmt.Printf("%-33s %13d\n", name, res.InvariantChecks[name])
	}
	if err := res.Failed(); err != nil {
		for _, v := range res.Drill.Violations {
			fmt.Printf("DRILL VIOLATION %s: %s\n", v.Invariant, v.Detail)
		}
		for _, v := range res.Violations {
			fmt.Printf("VIOLATION wave %d (seed %d) %s: %s\n", v.Wave, v.Seed, v.Invariant, v.Detail)
		}
		return err
	}
	fmt.Printf("replay byte-identical and all adversarial invariants held; reproduce with: evalharness -exp E17 -seed %d\n",
		res.Config.Seed)
	return nil
}

func e12Config(p params) eval.E12Config {
	return eval.E12Config{Rooms: p.rooms, Seed: p.seed}
}

func resultE12(p params) (interface{}, error) {
	return eval.RunE12(e12Config(p))
}

func runE12(p params) error {
	res, err := eval.RunE12(e12Config(p))
	if err != nil {
		return err
	}
	header("E12 overload shedding: open-loop load at N× capacity (D10)")
	fmt.Printf("capacity: %.0f msg/s (uncached supervision + %s stage cost, workers: GOMAXPROCS)\n",
		res.CapacityMsgsPerSec, res.Config.StageCost)
	fmt.Println("arm         offered    sent/s  supervised  shed%        p50        p95        p99  timeouts")
	for _, arm := range res.Arms {
		fmt.Printf("%-10s %7.0f/s %8.0f  %9.0f/s %5.1f%%  %9s  %9s  %9s  %8d\n",
			arm.Name, arm.OfferedRate, arm.SentRate, arm.SupervisedRate,
			arm.ShedFraction*100, arm.P50, arm.P95, arm.P99, arm.Timeouts)
	}
	fmt.Printf("at max load: supervised goodput %.0f%% of capacity, p99 shed %s vs blocking %s (bounded: %v)\n",
		res.GoodputVsCapacity*100, res.P99AtMaxShed, res.P99AtMaxBlocking, res.BoundedP99)
	return nil
}
