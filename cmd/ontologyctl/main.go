// Command ontologyctl is the paper's "Ontology Definition GUI" replaced
// by a CLI: it loads, queries, translates (XML <-> DDL/DML) and extends
// the Distance Learning Ontology.
//
// Usage:
//
//	ontologyctl export-xml                  # built-in ontology as XML
//	ontologyctl export-ddl                  # built-in ontology as DDL/DML
//	ontologyctl -xml course.xml export-ddl  # translate an authored XML file
//	ontologyctl run extra.ddl               # replay DDL into the ontology, print SELECT output
//	ontologyctl query "SELECT RELATED stack DEPTH 2;"
//	ontologyctl export-qti 40               # QTI 1.2 true/false question bank
//	ontologyctl stats
//	ontologyctl snapshot                    # compiled read-path snapshot info
//	ontologyctl -data ./classdata run extra.ddl   # journaled authoring
//
// With -data the ontology is recovered from the chatserver's data
// directory (checkpoint + write-ahead log), every DDL mutation is
// journaled, and a checkpoint is taken on exit — authoring survives a
// crash at any point.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"semagent/internal/journal"
	"semagent/internal/ontology"
	"semagent/internal/qti"
)

func main() {
	xmlPath := flag.String("xml", "", "load ontology from this XML file instead of the built-in course ontology")
	dataDir := flag.String("data", "", "recover the ontology from this journaled data directory (see chatserver -journal); mutations are journaled and checkpointed")
	flag.Parse()
	if err := run(*xmlPath, *dataDir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ontologyctl:", err)
		os.Exit(1)
	}
}

func run(xmlPath, dataDir string, args []string) error {
	if xmlPath != "" && dataDir != "" {
		return fmt.Errorf("-xml and -data are mutually exclusive")
	}
	// Validate the subcommand before touching any state: opening a
	// journaled data directory replays and (on exit) checkpoints it, so
	// a typo'd command must not rewrite the databases.
	if err := validateArgs(args); err != nil {
		return err
	}
	var onto *ontology.Ontology
	var mgr *journal.Manager
	if dataDir != "" {
		stores, err := journal.LoadStores(dataDir)
		if err != nil {
			return err
		}
		mgr, err = journal.Open(dataDir, stores, journal.Options{
			Logger: log.New(os.Stderr, "", 0),
		})
		if err != nil {
			return err
		}
		onto = stores.Ontology
		defer func() {
			// Seal with a checkpoint so the next reader boots from a
			// fresh snapshot; the WAL already holds every mutation.
			if err := mgr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ontologyctl: close journal:", err)
			}
		}()
	} else {
		var err error
		onto, err = load(xmlPath)
		if err != nil {
			return err
		}
	}
	switch args[0] {
	case "export-xml":
		return onto.EncodeXML(os.Stdout)
	case "export-qti":
		maxItems := 40
		if len(args) >= 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n <= 0 {
				return fmt.Errorf("export-qti: bad item count %q", args[1])
			}
			maxItems = n
		}
		return qti.FromOntology(onto, maxItems).Write(os.Stdout)
	case "export-ddl":
		fmt.Print(onto.ExportDDL())
		return nil
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run: missing DDL file")
		}
		src, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		return execDDL(onto, string(src))
	case "query":
		if len(args) < 2 {
			return fmt.Errorf("query: missing statement")
		}
		return execDDL(onto, args[1])
	case "stats":
		// One pinned snapshot keeps every reported number consistent.
		snap := onto.Snapshot()
		items := snap.Items()
		kinds := make(map[ontology.ItemKind]int)
		for _, it := range items {
			kinds[it.Kind]++
		}
		relations := snap.Relations()
		rels := make(map[ontology.RelationKind]int)
		for _, r := range relations {
			rels[r.Kind]++
		}
		fmt.Printf("domain: %s\n", snap.Domain())
		fmt.Printf("items: %d (concepts %d, operations %d, properties %d)\n",
			len(items), kinds[ontology.KindConcept], kinds[ontology.KindOperation], kinds[ontology.KindProperty])
		fmt.Printf("relations: %d (isa %d, hasoperation %d, hasproperty %d, partof %d, relatedto %d)\n",
			len(relations), rels[ontology.RelIsA], rels[ontology.RelHasOperation],
			rels[ontology.RelHasProperty], rels[ontology.RelPartOf], rels[ontology.RelRelatedTo])
		printSnapshot(snap.Stats())
		return nil
	case "snapshot":
		//semalint:allow snapshotonce: disjoint switch arms — at most one of the two pins in this function executes
		printSnapshot(onto.Snapshot().Stats())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// validateArgs rejects unknown or malformed subcommands before any
// store is opened.
func validateArgs(args []string) error {
	usage := "export-xml | export-ddl | export-qti [n] | run <file.ddl> | query <stmt> | stats | snapshot"
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand: %s", usage)
	}
	switch args[0] {
	case "export-xml", "export-ddl", "export-qti", "stats", "snapshot":
		return nil
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run: missing DDL file")
		}
		return nil
	case "query":
		if len(args) < 2 {
			return fmt.Errorf("query: missing statement")
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want %s)", args[0], usage)
	}
}

// printSnapshot reports the compiled read-path snapshot the chat
// pipeline serves queries from.
func printSnapshot(st ontology.SnapshotStats) {
	fmt.Printf("snapshot: v%d, %d items, %d relations, %d shortest-path table entries (radius %d), max phrase %d tokens\n",
		st.Version, st.Items, st.Relations, st.TableEntries, st.TableRadius, st.MaxPhraseLen)
}

func load(xmlPath string) (*ontology.Ontology, error) {
	if xmlPath == "" {
		return ontology.BuildCourseOntology(), nil
	}
	f, err := os.Open(xmlPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ontology.DecodeXML(f)
}

func execDDL(onto *ontology.Ontology, src string) error {
	before := onto.Snapshot().Version()
	in := ontology.NewInterpreter(onto)
	if err := in.Run(src); err != nil {
		return err
	}
	for _, line := range in.Output {
		fmt.Println(line)
	}
	// DDL mutations republish the compiled read-path snapshot; report
	// the new version so operators see the publish happen.
	//semalint:allow snapshotonce: the before/after pins straddle the DDL run on purpose — comparing versions IS the point
	if after := onto.Snapshot().Stats(); after.Version != before {
		fmt.Fprintf(os.Stderr, "ontologyctl: republished snapshot v%d -> v%d (%d items, %d relations, %d table entries)\n",
			before, after.Version, after.Items, after.Relations, after.TableEntries)
	}
	return nil
}
