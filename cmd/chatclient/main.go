// Command chatclient is a terminal client for the supervised chat room.
// Lines typed on stdin are sent to the room; chat, system and agent
// messages are printed as they arrive.
//
// Usage:
//
//	chatclient -addr 127.0.0.1:7788 -room ds-course -name alice
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"semagent/internal/chat"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7788", "server address")
		room = flag.String("room", "ds-course", "room to join")
		name = flag.String("name", "", "user name (required)")
		wire = flag.String("wire", "text", "wire format: text (newline-JSON) or binary (length-prefixed frames, if the server agrees)")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "chatclient: -name is required")
		os.Exit(1)
	}
	if *wire != "text" && *wire != "binary" {
		fmt.Fprintf(os.Stderr, "chatclient: -wire must be text or binary, got %q\n", *wire)
		os.Exit(1)
	}
	w := chat.WireText
	if *wire == "binary" {
		w = chat.WireBinary
	}
	if err := run(*addr, *room, *name, w); err != nil {
		fmt.Fprintln(os.Stderr, "chatclient:", err)
		os.Exit(1)
	}
}

func run(addr, room, name string, wire chat.Wire) error {
	client, err := chat.DialWire(addr, room, name, wire, 5*time.Second)
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Printf("joined %s as %s — type to chat, ctrl-d to leave\n", room, name)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range client.Receive() {
			switch m.Type {
			case chat.TypeChat:
				fmt.Printf("[%s] %s\n", m.From, m.Text)
			case chat.TypeSystem:
				fmt.Printf("-- %s\n", m.Text)
			case chat.TypeAgent:
				scope := ""
				if m.Private {
					scope = " (only you see this)"
				}
				fmt.Printf("** %s%s: %s\n", m.Agent, scope, m.Text)
			case chat.TypeError:
				fmt.Printf("!! %s\n", m.Text)
			}
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := client.Say(line); err != nil {
			return err
		}
	}
	_ = client.Close()
	<-done
	return sc.Err()
}
