// Command gateway runs the room-partitioned classroom fabric behind a
// real TCP edge (DESIGN.md D15): N supervised chat nodes — each with
// its own journal, WAL-shipped warm standby, and supervision stack —
// fronted by the cluster gateway. Clients connect once to the gateway
// address; each room is routed to its owner node over the binary wire
// protocol, and when a node dies its standby is promoted without the
// clients re-dialing.
//
// A tiny admin console reads from stdin:
//
//	status        print live nodes and the room-ownership map
//	kill n0       crash lineage n0 (standby promoted after the lease)
//	quit          graceful shutdown
//
// Quickstart (two nodes plus the gateway in one process):
//
//	gateway -listen :9200 -nodes 2 -data /tmp/classroom
//	nc localhost 9200             # then: {"type":"join","room":"algebra","from":"alice"}
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"semagent/internal/chat"
	"semagent/internal/cluster"
	"semagent/internal/core"
	"semagent/internal/journal"
	"semagent/internal/memnet"
)

func main() {
	var (
		listen = flag.String("listen", ":9200", "client edge address (TCP)")
		nodes  = flag.Int("nodes", 2, "node lineages in the fabric")
		data   = flag.String("data", "", "base directory for journals and standbys (required)")
		lease  = flag.Duration("lease", 10*time.Second, "room-ownership lease")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "gateway: -data is required")
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "gateway: ", log.LstdFlags)

	fab, err := cluster.NewFabric(cluster.FabricConfig{
		Nodes:   *nodes,
		Lease:   *lease,
		BaseDir: *data,
		Start:   startNode(logger),
	})
	if err != nil {
		logger.Fatalf("fabric: %v", err)
	}
	gw := cluster.NewGateway(fab, nil)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	gw.Serve(ln)
	logger.Printf("serving %d-node fabric on %s (lease %s, data %s)", *nodes, ln.Addr(), *lease, *data)

	// Failovers are scheduled per kill, one lease (plus slack) after the
	// owner died — the map refuses to promote over a live lease, and an
	// idle tick would find nothing to do.
	var failMu sync.Mutex
	failover := func() {
		failMu.Lock()
		defer failMu.Unlock()
		promos, err := fab.Failover()
		if err != nil {
			logger.Printf("failover: %v", err)
		}
		for _, p := range promos {
			logger.Printf("promoted %s -> %s: %d rooms moved, standby LSN %d (dead fsync %d), replayed %d records (%d errors)",
				p.Dead, p.Promoted, len(p.Moves), p.SinkLastLSN, p.DeadSyncedLSN, p.ReplayApplied, p.ReplayErrors)
		}
	}

	done := make(chan struct{})
	go console(os.Stdin, logger, fab, gw, *lease, failover, done)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case <-done:
	}
	logger.Printf("shutting down")
	if err := gw.Close(); err != nil {
		logger.Printf("gateway close: %v", err)
	}
	if err := fab.Close(); err != nil {
		logger.Printf("fabric close: %v", err)
	}
	for _, err := range fab.ShipErrors() {
		logger.Printf("replication: %v", err)
	}
}

// startNode builds the FabricConfig.Start callback: one full
// supervision stack per incarnation, journaled over the incarnation's
// directory with the WAL-shipping hook installed, serving its chat
// protocol on an in-process transport only the gateway dials.
func startNode(logger *log.Logger) func(cluster.NodeID, string, func(uint64)) (*cluster.NodeHandle, error) {
	return func(id cluster.NodeID, dir string, onSync func(uint64)) (*cluster.NodeHandle, error) {
		stores, err := journal.LoadStores(dir)
		if err != nil {
			return nil, fmt.Errorf("node %s: load stores: %w", id, err)
		}
		mgr, err := journal.Open(dir, stores, journal.Options{
			Logger: logger,
			OnSync: onSync,
		})
		if err != nil {
			return nil, fmt.Errorf("node %s: open journal: %w", id, err)
		}
		sup, err := core.New(core.Config{
			Ontology: stores.Ontology,
			Corpus:   stores.Corpus,
			Profiles: stores.Profiles,
			FAQ:      stores.FAQ,
		})
		if err != nil {
			_ = mgr.Close()
			return nil, fmt.Errorf("node %s: supervisor: %w", id, err)
		}
		srv := chat.NewServer(chat.ServerOptions{
			Supervisor: sup.ChatSupervisor(),
			Async:      true,
		})
		ln := memnet.NewListener()
		srv.Serve(ln)
		return &cluster.NodeHandle{
			Dial: func() (net.Conn, error) { return ln.Dial() },
			Idle: srv.Idle,
			Kill: func() error {
				// The simulated power cut: no flush, no seal — recovery
				// must come from the shipped WAL.
				err := srv.Close()
				mgr.Abandon()
				return err
			},
			Stop: func() error {
				err := srv.Close()
				if cerr := mgr.Close(); err == nil {
					err = cerr
				}
				return err
			},
			Stats: mgr.Stats,
		}, nil
	}
}

// console is the stdin admin loop.
func console(in *os.File, logger *log.Logger, fab *cluster.Fabric, gw *cluster.Gateway, lease time.Duration, failover func(), done chan<- struct{}) {
	defer close(done)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "status":
			fmt.Printf("live nodes: %v   gateway links: %d\n", fab.LiveNodes(), gw.Links())
			for _, o := range fab.Owners().Snapshot() {
				fmt.Printf("  room %-20s -> %s (epoch %d)\n", o.Room, o.Node, o.Epoch)
			}
		case "kill":
			if len(fields) != 2 {
				fmt.Println("usage: kill <lineage>   e.g. kill n0")
				continue
			}
			if err := fab.Kill(fields[1]); err != nil {
				fmt.Printf("kill: %v\n", err)
				continue
			}
			logger.Printf("killed %s; promoting its standby in %s", fields[1], lease+time.Second)
			time.AfterFunc(lease+time.Second, failover)
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: status | kill <lineage> | quit")
		}
	}
}
