package semantic

import (
	"strings"
	"testing"

	"semagent/internal/ontology"
)

func TestMorphologicalFoldsReachOperations(t *testing.T) {
	a, _ := newAgent(t)
	cases := []struct {
		text string
		want Verdict
	}{
		// The paper's §4.1 example: passive "pushed" must resolve to
		// the push operation and clash with heap.
		{"The data is pushed in this heap.", VerdictInterrogative},
		{"The data is pushed in this stack.", VerdictOK},
		// Gerunds.
		{"We are inserting the value into the tree.", VerdictOK},
		{"We are popping the value from the queue.", VerdictInterrogative},
	}
	for _, tc := range cases {
		if got := a.AnalyzeText(tc.text); got.Verdict != tc.want {
			t.Errorf("%q: verdict = %s, want %s (pairs %+v)", tc.text, got.Verdict, tc.want, got.Pairs)
		}
	}
}

func TestNegatedQuestionSkipped(t *testing.T) {
	a, _ := newAgent(t)
	got := a.AnalyzeText("Doesn't the tree have a pop method?")
	if got.Verdict != VerdictSkipped {
		t.Errorf("negated question verdict = %s, want skipped", got.Verdict)
	}
}

func TestFirstViolationReported(t *testing.T) {
	a, _ := newAgent(t)
	// Two violations: tree+pop and tree+push (affirmative).
	got := a.AnalyzeText("The tree has a pop operation and a push operation.")
	if got.Verdict != VerdictInterrogative {
		t.Fatalf("verdict = %s", got.Verdict)
	}
	if got.Explanation == "" {
		t.Error("explanation missing")
	}
	violations := 0
	for _, p := range got.Pairs {
		if p.Violation {
			violations++
		}
	}
	if violations < 2 {
		t.Errorf("expected both violating pairs recorded, got %d", violations)
	}
}

func TestConceptConceptPairsNeverFlag(t *testing.T) {
	a, _ := newAgent(t)
	// Two concepts with no feature: informational only.
	for _, text := range []string{
		"The stack is near the queue.",
		"The tree has many nodes.", // node is a concept, not an operation
	} {
		got := a.AnalyzeText(text)
		if got.Verdict == VerdictInterrogative {
			t.Errorf("%q wrongly flagged: %+v", text, got.Pairs)
		}
	}
}

func TestCustomOntologyAgent(t *testing.T) {
	onto := ontology.New("music")
	mustAdd := func(name string, kind ontology.ItemKind) {
		if _, err := onto.AddItem(name, kind); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("guitar", ontology.KindConcept)
	mustAdd("piano", ontology.KindConcept)
	mustAdd("strum", ontology.KindOperation)
	if err := onto.Relate("guitar", "strum", ontology.RelHasOperation); err != nil {
		t.Fatal(err)
	}
	a := New(onto, 0)
	if got := a.AnalyzeText("i strum the guitar"); got.Verdict != VerdictOK {
		t.Errorf("guitar+strum = %s", got.Verdict)
	}
	if got := a.AnalyzeText("i strum the piano"); got.Verdict != VerdictInterrogative {
		t.Errorf("piano+strum = %s", got.Verdict)
	}
	if got := a.AnalyzeText("i don't strum the piano"); got.Verdict != VerdictOK {
		t.Errorf("negated piano+strum = %s", got.Verdict)
	}
}

func TestSuggestionListsAllOwners(t *testing.T) {
	a, _ := newAgent(t)
	got := a.AnalyzeText("The stack has an insert operation.") // insert belongs to several concepts
	if got.Verdict != VerdictInterrogative {
		t.Skipf("stack-insert related at this threshold: %+v", got.Pairs)
	}
	if !strings.Contains(got.Suggestion, "tree") {
		t.Errorf("suggestion should list owners of insert: %q", got.Suggestion)
	}
}

func TestSLGAnalyzeTextParity(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	slg := NewSLGChecker(onto)
	// The checker interface must behave identically via both entry
	// points.
	a1 := slg.AnalyzeText("The tree has a pop operation.")
	if a1.Verdict != VerdictInterrogative {
		t.Errorf("verdict = %s", a1.Verdict)
	}
	if a1.Explanation == "" || !strings.Contains(a1.Explanation, "lexicon") {
		t.Errorf("explanation = %q", a1.Explanation)
	}
}
