package semantic

import (
	"strings"
	"testing"

	"semagent/internal/ontology"
	"semagent/internal/sentence"
)

func newAgent(t *testing.T) (*Agent, *ontology.Ontology) {
	t.Helper()
	onto := ontology.BuildCourseOntology()
	return New(onto, 0), onto
}

func TestPaperTruthTable(t *testing.T) {
	// The §4.3 examples and the four cells of the negation truth table.
	a, _ := newAgent(t)
	cases := []struct {
		text string
		want Verdict
	}{
		// Paper example: affirmative + unrelated = interrogative.
		{"I push the data into a tree.", VerdictInterrogative},
		// Paper example: negative + unrelated = correct.
		{"The tree doesn't have a pop method.", VerdictOK},
		// affirmative + related = correct.
		{"I push the data into a stack.", VerdictOK},
		{"The stack has a pop method.", VerdictOK},
		// negative + related = the false negation case.
		{"The stack doesn't have a pop method.", VerdictInterrogative},
		// Property pairs behave the same.
		{"The stack is a lifo structure.", VerdictOK},
		{"The queue is a lifo structure.", VerdictInterrogative},
	}
	for _, tc := range cases {
		got := a.AnalyzeText(tc.text)
		if got.Verdict != tc.want {
			t.Errorf("%q: verdict = %s, want %s (pairs: %+v)",
				tc.text, got.Verdict, tc.want, got.Pairs)
		}
	}
}

func TestQuestionsAreSkipped(t *testing.T) {
	a, _ := newAgent(t)
	for _, text := range []string{
		"Does a tree have a pop method?",
		"What is a stack?",
		"Which structure has push?",
	} {
		if got := a.AnalyzeText(text); got.Verdict != VerdictSkipped {
			t.Errorf("%q: verdict = %s, want skipped (QA system's job)", text, got.Verdict)
		}
	}
}

func TestSentencesWithoutKeywordPairsSkipped(t *testing.T) {
	a, _ := newAgent(t)
	for _, text := range []string{
		"The cat chased a mouse.",     // no ontology terms
		"The stack is very useful.",   // single term
		"Hello everyone, I am ready.", // chit-chat
	} {
		if got := a.AnalyzeText(text); got.Verdict != VerdictSkipped {
			t.Errorf("%q: verdict = %s, want skipped", text, got.Verdict)
		}
	}
}

func TestExplanationAndSuggestion(t *testing.T) {
	a, _ := newAgent(t)
	got := a.AnalyzeText("I push the data into a tree.")
	if got.Verdict != VerdictInterrogative {
		t.Fatalf("verdict = %s", got.Verdict)
	}
	if !strings.Contains(got.Explanation, "push") || !strings.Contains(got.Explanation, "tree") {
		t.Errorf("explanation should name the offending pair: %q", got.Explanation)
	}
	if !strings.Contains(got.Suggestion, "stack") {
		t.Errorf("suggestion should point at stack (the owner of push): %q", got.Suggestion)
	}
}

func TestMultiwordTermsEvaluated(t *testing.T) {
	a, _ := newAgent(t)
	got := a.AnalyzeText("The binary search tree has a search operation.")
	if got.Verdict != VerdictOK {
		t.Errorf("verdict = %s, want ok (bst has search)", got.Verdict)
	}
	got = a.AnalyzeText("The hash table has a pop method.")
	if got.Verdict != VerdictInterrogative {
		t.Errorf("verdict = %s, want interrogative (hash table has no pop)", got.Verdict)
	}
}

func TestInheritedOperationsAreRelated(t *testing.T) {
	// insert is an operation of tree; bst is-a binary tree is-a tree,
	// so distance(bst, insert) stays within the threshold.
	a, onto := newAgent(t)
	d := onto.Distance("binary search tree", "search")
	if d > a.Threshold() {
		t.Fatalf("bst–search distance %d above threshold %d", d, a.Threshold())
	}
	got := a.AnalyzeText("The binary search tree supports the search operation.")
	if got.Verdict != VerdictOK {
		t.Errorf("verdict = %s", got.Verdict)
	}
}

func TestThresholdSweepChangesVerdicts(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	strict := New(onto, 1)
	loose := New(onto, 10)
	text := "The queue has a push operation." // distance(queue, push) > 1
	if got := strict.AnalyzeText(text); got.Verdict != VerdictInterrogative {
		t.Errorf("strict: verdict = %s, want interrogative", got.Verdict)
	}
	if got := loose.AnalyzeText(text); got.Verdict != VerdictOK {
		t.Errorf("loose: verdict = %s, want ok at threshold 10", got.Verdict)
	}
}

func TestSLGBaselineMatchesOnDirectPairs(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	slg := NewSLGChecker(onto)
	cases := []struct {
		text string
		want Verdict
	}{
		{"I push the data into a tree.", VerdictInterrogative},
		{"The tree doesn't have a pop method.", VerdictOK},
		{"The stack has a pop method.", VerdictOK},
	}
	for _, tc := range cases {
		if got := slg.AnalyzeText(tc.text); got.Verdict != tc.want {
			t.Errorf("SLG %q: verdict = %s, want %s", tc.text, got.Verdict, tc.want)
		}
	}
	if slg.DictionaryEntries() == 0 {
		t.Error("baseline dictionary should have compiled entries")
	}
}

func TestSLGWeakerThanOntologyOnSiblings(t *testing.T) {
	// The lexicalized baseline only knows direct (feature, concept)
	// rows; sibling-operation sentences like "push and pop" mentions
	// don't involve concept pairs, but operation-vs-distant-concept
	// with inheritance shows the difference: deque inherits nothing in
	// the lexicon unless enumerated. Here we check the measured metric
	// exists: the baseline dictionary is strictly larger than the
	// number of has-operation edges (it must enumerate subtypes).
	onto := ontology.BuildCourseOntology()
	slg := NewSLGChecker(onto)
	direct := 0
	for _, r := range onto.Relations() {
		if r.Kind == ontology.RelHasOperation || r.Kind == ontology.RelHasProperty {
			direct++
		}
	}
	if slg.DictionaryEntries() <= direct {
		t.Errorf("lexicalized dictionary (%d rows) should exceed the %d graph edges",
			slg.DictionaryEntries(), direct)
	}
}

func TestAnalyzeUsesProvidedClassification(t *testing.T) {
	a, _ := newAgent(t)
	cls := sentence.ClassifyText("The tree has a pop method.")
	got := a.Analyze(cls)
	if got.Verdict != VerdictInterrogative {
		t.Errorf("verdict = %s", got.Verdict)
	}
	if got.Classification.Pattern != sentence.Simple {
		t.Errorf("pattern = %s", got.Classification.Pattern)
	}
}
