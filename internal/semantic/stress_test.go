package semantic

import (
	"fmt"
	"sync"
	"testing"

	"semagent/internal/ontology"
	"semagent/internal/pipeline"
	"semagent/internal/sentence"
)

// TestAnalyzeConsistentUnderConcurrentMutation hammers snapshot
// publication from a writer goroutine while pipeline workers analyze
// sentences, under -race. The sentence mentions the same keyword pair
// twice, so the agent evaluates it as several pairs; because Analyze
// pins one snapshot per sentence, every pair inside one Analysis must
// report the identical distance even while a writer toggles the very
// edge being judged (a torn read across two snapshots would disagree).
func TestAnalyzeConsistentUnderConcurrentMutation(t *testing.T) {
	o := ontology.New("stress")
	mustAdd := func(name string, kind ontology.ItemKind) {
		t.Helper()
		if _, err := o.AddItem(name, kind); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("alpha", ontology.KindConcept)
	mustAdd("beta", ontology.KindOperation)
	mustAdd("gamma", ontology.KindConcept)
	if err := o.Relate("gamma", "alpha", ontology.RelRelatedTo); err != nil {
		t.Fatal(err)
	}

	agent := New(o, 0)
	// "alpha ... beta ... alpha ... beta": four alpha-beta pairs per
	// analysis, all of which must agree.
	cls := sentence.ClassifyText("the alpha runs beta while alpha repeats beta")

	const messages = 400
	var mu sync.Mutex
	var inconsistent []string
	analyses := 0

	pipe := pipeline.New(pipeline.Config{Workers: 4, Block: true})
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		related := false
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if related {
				err = o.Unrelate("alpha", "beta")
			} else {
				err = o.Relate("alpha", "beta", ontology.RelHasOperation)
			}
			if err != nil {
				t.Errorf("toggle %d: %v", i, err)
				return
			}
			related = !related
			// Churn the item set too, so rebuilds change shape.
			name := fmt.Sprintf("churn-%d", i)
			if _, err := o.AddItem(name, ontology.KindProperty); err != nil {
				t.Errorf("churn add: %v", err)
				return
			}
			if err := o.RemoveItem(name); err != nil {
				t.Errorf("churn remove: %v", err)
				return
			}
		}
	}()

	for m := 0; m < messages; m++ {
		room := fmt.Sprintf("room-%d", m%8)
		if err := pipe.Submit(room, func() {
			a := agent.Analyze(cls)
			seen := -1
			for _, p := range a.Pairs {
				if !(p.A.Name == "alpha" && p.B.Name == "beta") {
					continue
				}
				if seen == -1 {
					seen = p.Distance
				} else if p.Distance != seen {
					mu.Lock()
					inconsistent = append(inconsistent,
						fmt.Sprintf("distances %d and %d in one analysis", seen, p.Distance))
					mu.Unlock()
				}
			}
			mu.Lock()
			analyses++
			mu.Unlock()
		}); err != nil {
			t.Fatalf("submit %d: %v", m, err)
		}
	}
	pipe.Close()
	close(stop)
	writer.Wait()

	if analyses != messages {
		t.Fatalf("completed %d analyses, want %d", analyses, messages)
	}
	if len(inconsistent) > 0 {
		t.Fatalf("%d torn analyses, e.g. %s", len(inconsistent), inconsistent[0])
	}
}

// TestSuggestPropertyRole covers the fixed suggestion wording: a
// violated property pair must be explained as a property, not as an
// operation.
func TestSuggestPropertyRole(t *testing.T) {
	o := ontology.BuildCourseOntology()
	agent := New(o, 0)

	// "the tree is lifo" — lifo is a property of stack, not of tree.
	a := agent.AnalyzeText("the tree keeps the lifo order forever")
	if a.Verdict != VerdictInterrogative {
		t.Fatalf("verdict = %v, want interrogative", a.Verdict)
	}
	if want := "lifo is a property of stack"; a.Suggestion != want {
		t.Fatalf("suggestion = %q, want %q", a.Suggestion, want)
	}

	// An operation keeps the operation wording.
	a = agent.AnalyzeText("the tree supports the pop operation")
	if a.Verdict != VerdictInterrogative {
		t.Fatalf("verdict = %v, want interrogative", a.Verdict)
	}
	if want := "pop is an operation of stack"; a.Suggestion != want {
		t.Fatalf("suggestion = %q, want %q", a.Suggestion, want)
	}
}

// TestSuggestPropertyFallbackListsProperties covers the ownerless
// branch: a property known to no concept falls back to listing the
// concept's own properties instead of its operations.
func TestSuggestPropertyFallbackListsProperties(t *testing.T) {
	o := ontology.New("t")
	for name, kind := range map[string]ontology.ItemKind{
		"widget":   ontology.KindConcept,
		"sturdy":   ontology.KindProperty,
		"floating": ontology.KindProperty,
		"spin":     ontology.KindOperation,
	} {
		if _, err := o.AddItem(name, kind); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Relate("widget", "sturdy", ontology.RelHasProperty); err != nil {
		t.Fatal(err)
	}
	if err := o.Relate("widget", "spin", ontology.RelHasOperation); err != nil {
		t.Fatal(err)
	}

	agent := New(o, 0)
	snap := o.Snapshot()
	ka, _ := snap.Lookup("widget")
	kb, _ := snap.Lookup("floating") // no concept has it
	if got, want := agent.suggest(snap, ka, kb), "widget has the properties: sturdy"; got != want {
		t.Fatalf("suggest = %q, want %q", got, want)
	}
}
