// Package semantic implements the Semantic Agent of the paper's §4.3.
// A syntactically well-formed sentence flows through three stages:
//
//  1. Sentence Pattern Classification — questions are skipped (the QA
//     system handles them); the five patterns of package sentence drive
//     the negation logic.
//  2. Semantic Keywords Filter — ontology terms are extracted from the
//     sentence.
//  3. Sentence Distance Evaluation — the semantic distance between
//     keyword pairs in the knowledge ontology decides whether the
//     sentence makes sense in the course domain. Negation flips the
//     verdict: "The tree doesn't have pop method" is correct precisely
//     because tree and pop are unrelated.
//
// A sentence that is grammatical but nonsensical in-domain is the
// paper's "Interrogative Sentence"; the agent explains why and suggests
// a correction from the ontology.
package semantic

import (
	"fmt"
	"strings"

	"semagent/internal/ontology"
	"semagent/internal/sentence"
)

// Verdict is the semantic assessment of a sentence.
type Verdict int8

// Verdicts.
const (
	// VerdictSkipped: questions and keyword-free sentences are not
	// semantically judged.
	VerdictSkipped Verdict = iota + 1
	// VerdictOK: keyword pairs are consistent with the ontology.
	VerdictOK
	// VerdictInterrogative: the paper's term for a sentence that is
	// syntactically fine but semantically wrong in the domain.
	VerdictInterrogative
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSkipped:
		return "skipped"
	case VerdictOK:
		return "ok"
	case VerdictInterrogative:
		return "interrogative-sentence"
	default:
		return "unknown"
	}
}

// Pair is one evaluated keyword pair.
type Pair struct {
	A, B     *ontology.Item
	Distance int
	Related  bool
	// Violation is true when this pair, combined with the sentence
	// polarity, makes the sentence semantically wrong.
	Violation bool
	// Reason explains the violation in English.
	Reason string
}

// Analysis is the agent's full output for one sentence.
type Analysis struct {
	Classification sentence.Classification
	Keywords       []ontology.TermMatch
	Pairs          []Pair
	Verdict        Verdict
	// Explanation is the learner-facing justification ("" if OK).
	Explanation string
	// Suggestion proposes a correct alternative ("" if none).
	Suggestion string
}

// Agent is the ontology-distance Semantic Agent (the methodology the
// paper selects: "Semantic Relation of Knowledge Ontology").
type Agent struct {
	onto      *ontology.Ontology
	threshold int
}

// New returns an agent over the ontology. threshold <= 0 uses
// ontology.DefaultRelatedThreshold.
func New(onto *ontology.Ontology, threshold int) *Agent {
	if threshold <= 0 {
		threshold = ontology.DefaultRelatedThreshold
	}
	return &Agent{onto: onto, threshold: threshold}
}

// Threshold returns the relatedness threshold in use.
func (a *Agent) Threshold() int { return a.threshold }

// Analyze runs the three-stage pipeline on a classified sentence. It
// resolves one ontology snapshot up front, so every keyword pair of the
// sentence is judged against the same knowledge state even while a
// writer is mutating the live ontology (no torn verdicts).
func (a *Agent) Analyze(cls sentence.Classification) *Analysis {
	return a.AnalyzeWith(a.onto.Snapshot(), cls)
}

// AnalyzeWith runs the pipeline against a caller-pinned snapshot; the
// supervisor pins one snapshot per message and shares it across the
// syntax, semantic and topic stages.
func (a *Agent) AnalyzeWith(snap *ontology.Snapshot, cls sentence.Classification) *Analysis {
	out := &Analysis{Classification: cls, Verdict: VerdictOK}

	// Stage 1: questions are the QA system's job.
	if cls.Pattern.IsQuestion() {
		out.Verdict = VerdictSkipped
		return out
	}

	// Stage 2: semantic keywords filter.
	out.Keywords = snap.ExtractTerms(cls.Tokens)
	if len(out.Keywords) < 2 {
		out.Verdict = VerdictSkipped
		return out
	}

	// Stage 3: sentence distance evaluation over keyword pairs.
	negated := cls.Negated
	for i := 0; i < len(out.Keywords); i++ {
		for j := i + 1; j < len(out.Keywords); j++ {
			ka, kb := out.Keywords[i].Item, out.Keywords[j].Item
			pair := a.evaluatePair(snap, ka, kb, negated)
			if pair == nil {
				continue
			}
			out.Pairs = append(out.Pairs, *pair)
			if pair.Violation && out.Verdict == VerdictOK {
				out.Verdict = VerdictInterrogative
				out.Explanation = pair.Reason
				out.Suggestion = a.suggest(snap, ka, kb)
			}
		}
	}
	if len(out.Pairs) == 0 {
		out.Verdict = VerdictSkipped
	}
	return out
}

// AnalyzeText tokenizes, classifies and analyzes raw text.
func (a *Agent) AnalyzeText(text string) *Analysis {
	return a.Analyze(sentence.ClassifyText(text))
}

// evaluatePair applies the §4.3 truth table to one keyword pair. Pairs
// that carry no concept/operation/property assertion return nil.
func (a *Agent) evaluatePair(snap *ontology.Snapshot, ka, kb *ontology.Item, negated bool) *Pair {
	concept, feature := orientPair(ka, kb)
	if concept == nil {
		// concept-concept or feature-feature mention: informational
		// only, except the is-a case handled by the caller through
		// distance too. Evaluate distance but never flag.
		d := snap.Distance(ka.Name, kb.Name)
		return &Pair{A: ka, B: kb, Distance: d, Related: d <= a.threshold}
	}
	d := snap.Distance(concept.Name, feature.Name)
	related := d <= a.threshold
	p := &Pair{A: concept, B: feature, Distance: d, Related: related}
	switch {
	case !related && !negated:
		p.Violation = true
		p.Reason = fmt.Sprintf("%q is not %s of %q in the %s ontology",
			feature.Name, featureRole(feature), concept.Name, snap.Domain())
	case related && negated:
		p.Violation = true
		p.Reason = fmt.Sprintf("%q actually is %s of %q — the negation looks wrong",
			feature.Name, featureRole(feature), concept.Name)
	}
	return p
}

// suggest proposes the correct association for a violated pair, phrased
// for the feature's actual kind: a violated property pair gets "is a
// property of", not an operation suggestion.
func (a *Agent) suggest(snap *ontology.Snapshot, ka, kb *ontology.Item) string {
	concept, feature := orientPair(ka, kb)
	if concept == nil || feature == nil {
		return ""
	}
	owners := snap.ConceptsWith(feature.Name)
	if len(owners) > 0 {
		names := make([]string, len(owners))
		for i, o := range owners {
			names[i] = o.Name
		}
		return fmt.Sprintf("%s is %s of %s", feature.Name, featureRole(feature), strings.Join(names, ", "))
	}
	if feature.Kind == ontology.KindProperty {
		if props := snap.PropertiesOf(concept.Name); len(props) > 0 {
			names := make([]string, 0, len(props))
			for _, p := range props {
				names = append(names, p.Name)
			}
			return fmt.Sprintf("%s has the properties: %s", concept.Name, strings.Join(names, ", "))
		}
	}
	ops := snap.OperationsOf(concept.Name)
	if len(ops) > 0 {
		names := make([]string, 0, len(ops))
		for _, o := range ops {
			names = append(names, o.Name)
		}
		return fmt.Sprintf("%s supports: %s", concept.Name, strings.Join(names, ", "))
	}
	return ""
}

// orientPair returns (concept, feature) when exactly one of the two
// items is a concept and the other an operation/property; otherwise
// (nil, nil).
func orientPair(ka, kb *ontology.Item) (*ontology.Item, *ontology.Item) {
	aIsConcept := ka.Kind == ontology.KindConcept
	bIsConcept := kb.Kind == ontology.KindConcept
	switch {
	case aIsConcept && !bIsConcept:
		return ka, kb
	case bIsConcept && !aIsConcept:
		return kb, ka
	default:
		return nil, nil
	}
}

func featureRole(it *ontology.Item) string {
	if it.Kind == ontology.KindProperty {
		return "a property"
	}
	return "an operation"
}
