package semantic

import (
	"fmt"

	"semagent/internal/ontology"
	"semagent/internal/sentence"
)

// SLGChecker is the paper's *first* candidate methodology, "Semantic
// Link Grammar": semantic validity is encoded lexically — every
// operation word enumerates the concepts it may combine with, the way a
// semantically-annotated link grammar dictionary would. The paper
// rejects this design because "it is quite difficult to modify the
// dictionary … it will take a lot of cost and time for linguistic
// classification and the performance is not very well"; we implement it
// as the E7 ablation baseline so that claim can be measured.
//
// The checker compiles the ontology's has-operation/has-property edges
// into a static dictionary mapping each feature word to its admissible
// concepts. Unlike the ontology agent, it has no notion of distance:
// anything not enumerated is invalid, and every ontology edit requires
// recompiling the dictionary.
type SLGChecker struct {
	// snap is the one ontology generation the dictionary was compiled
	// from. Analysis extracts terms from this same pinned snapshot —
	// never from a fresh pin — so a sentence can never be judged
	// against a dictionary of one generation and a vocabulary of
	// another (the torn-generation hazard of DESIGN.md D8, enforced
	// by the snapshotonce analyzer of D14).
	snap *ontology.Snapshot
	// allowed maps feature item ID -> set of concept item IDs.
	allowed map[int]map[int]bool
	// entries counts compiled (feature, concept) rows: the dictionary
	// maintenance burden measured by experiment E7.
	entries int
}

// NewSLGChecker compiles the baseline dictionary from one consistent
// snapshot of the ontology.
func NewSLGChecker(onto *ontology.Ontology) *SLGChecker {
	c := &SLGChecker{allowed: make(map[int]map[int]bool)}
	snap := onto.Snapshot()
	c.snap = snap
	items := snap.Items()
	for _, it := range items {
		if it.Kind == ontology.KindConcept {
			continue
		}
		set := make(map[int]bool)
		for _, owner := range snap.ConceptsWith(it.Name) {
			set[owner.ID] = true
			c.entries++
			// The lexicalized dictionary must also enumerate every
			// subtype explicitly — there is no graph to traverse.
			for _, other := range items {
				if other.Kind == ontology.KindConcept && other.ID != owner.ID &&
					snap.IsA(other.Name, owner.Name) {
					set[other.ID] = true
					c.entries++
				}
			}
		}
		c.allowed[it.ID] = set
	}
	return c
}

// DictionaryEntries reports the number of compiled lexical rows, the
// maintenance-cost metric of experiment E7.
func (c *SLGChecker) DictionaryEntries() int { return c.entries }

// Analyze applies the lexicalized semantic check. The interface mirrors
// Agent.Analyze so the evaluation harness can swap the two.
func (c *SLGChecker) Analyze(cls sentence.Classification) *Analysis {
	out := &Analysis{Classification: cls, Verdict: VerdictOK}
	if cls.Pattern.IsQuestion() {
		out.Verdict = VerdictSkipped
		return out
	}
	out.Keywords = c.snap.ExtractTerms(cls.Tokens)
	if len(out.Keywords) < 2 {
		out.Verdict = VerdictSkipped
		return out
	}
	negated := cls.Negated
	for i := 0; i < len(out.Keywords); i++ {
		for j := i + 1; j < len(out.Keywords); j++ {
			ka, kb := out.Keywords[i].Item, out.Keywords[j].Item
			concept, feature := orientPair(ka, kb)
			if concept == nil {
				continue
			}
			ok := c.allowed[feature.ID][concept.ID]
			pair := Pair{A: concept, B: feature, Related: ok}
			if ok {
				pair.Distance = 1
			} else {
				pair.Distance = ontology.Unreachable
			}
			switch {
			case !ok && !negated:
				pair.Violation = true
				pair.Reason = fmt.Sprintf("lexicon has no entry combining %q with %q",
					feature.Name, concept.Name)
			case ok && negated:
				pair.Violation = true
				pair.Reason = fmt.Sprintf("lexicon says %q combines with %q — the negation looks wrong",
					feature.Name, concept.Name)
			}
			out.Pairs = append(out.Pairs, pair)
			if pair.Violation && out.Verdict == VerdictOK {
				out.Verdict = VerdictInterrogative
				out.Explanation = pair.Reason
			}
		}
	}
	if len(out.Pairs) == 0 {
		out.Verdict = VerdictSkipped
	}
	return out
}

// AnalyzeText tokenizes, classifies and analyzes raw text.
func (c *SLGChecker) AnalyzeText(text string) *Analysis {
	return c.Analyze(sentence.ClassifyText(text))
}

// Checker is the interface shared by the ontology-distance agent and
// the Semantic Link Grammar baseline (experiment E7).
type Checker interface {
	Analyze(cls sentence.Classification) *Analysis
	AnalyzeText(text string) *Analysis
}

var (
	_ Checker = (*Agent)(nil)
	_ Checker = (*SLGChecker)(nil)
)
