package ontology

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
)

// The XML schema mirrors the paper's Figure 5 / §4.4 markup:
//
//	<Ontology domain="Data Structure">
//	  <KeyItem id="3" name="stack" kind="concept">
//	    <Definition>
//	      <Description>A stack is a Last In, First Out ...</Description>
//	      <Symbol name="top">A stack is a linear list ...</Symbol>
//	      <Algorithm type="c">...</Algorithm>
//	    </Definition>
//	    <Alias>lifo</Alias>
//	    <SubItem id="32" name="push" kind="operation"/>
//	    <Relation kind="isa" target="2"/>
//	  </KeyItem>
//	</Ontology>
//
// SubItem nests an operation/property under its owning concept exactly
// as the paper draws it; the importer creates the nested item plus the
// corresponding has-operation / has-property edge.

type xmlOntology struct {
	XMLName xml.Name `xml:"Ontology"`
	Domain  string   `xml:"domain,attr"`
	// JournalLSN records the WAL position a journaled checkpoint covers
	// (0 / absent for un-journaled exports; see internal/journal).
	JournalLSN uint64       `xml:"journalLSN,attr,omitempty"`
	Items      []xmlKeyItem `xml:"KeyItem"`
}

type xmlKeyItem struct {
	ID         int            `xml:"id,attr"`
	Name       string         `xml:"name,attr"`
	Kind       string         `xml:"kind,attr"`
	Definition *xmlDefinition `xml:"Definition,omitempty"`
	Aliases    []string       `xml:"Alias,omitempty"`
	SubItems   []xmlSubItem   `xml:"SubItem,omitempty"`
	Relations  []xmlRelation  `xml:"Relation,omitempty"`
}

type xmlDefinition struct {
	Description string        `xml:"Description,omitempty"`
	Symbols     []xmlSymbol   `xml:"Symbol,omitempty"`
	Algorithm   *xmlAlgorithm `xml:"Algorithm,omitempty"`
}

type xmlSymbol struct {
	Name string `xml:"name,attr"`
	Text string `xml:",chardata"`
}

type xmlAlgorithm struct {
	Type string `xml:"type,attr,omitempty"`
	Text string `xml:",chardata"`
}

type xmlSubItem struct {
	ID   int    `xml:"id,attr"`
	Name string `xml:"name,attr"`
	Kind string `xml:"kind,attr"`
}

type xmlRelation struct {
	Kind   string `xml:"kind,attr"`
	Target int    `xml:"target,attr"`
}

// EncodeXML writes the ontology in the paper's markup. Operations and
// properties owned by exactly one concept are nested as SubItems of that
// concept; everything else appears as a top-level KeyItem.
func (o *Ontology) EncodeXML(w io.Writer) error {
	o.mu.RLock()
	defer o.mu.RUnlock()

	// owner[id] = concept that solely owns this operation/property.
	owner := make(map[int]int)
	for id, it := range o.items {
		if it.Kind == KindConcept {
			continue
		}
		owners := make([]int, 0, 2)
		for _, r := range o.in[id] {
			if r.Kind == RelHasOperation || r.Kind == RelHasProperty {
				owners = append(owners, r.From)
			}
		}
		if len(owners) == 1 && len(o.out[id]) == 0 && o.items[id].Definition.isEmpty() && len(o.items[id].Aliases) == 0 {
			owner[id] = owners[0]
		}
	}

	doc := xmlOntology{Domain: o.domain, JournalLSN: o.lsn}
	ids := make([]int, 0, len(o.items))
	for id := range o.items {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, nested := owner[id]; nested {
			continue
		}
		it := o.items[id]
		xi := xmlKeyItem{ID: it.ID, Name: it.Name, Kind: it.Kind.String()}
		xi.Aliases = append(xi.Aliases, it.Aliases...)
		if !it.Definition.isEmpty() {
			def := &xmlDefinition{Description: it.Definition.Description}
			for _, s := range it.Definition.Symbols {
				def.Symbols = append(def.Symbols, xmlSymbol{Name: s.Name, Text: s.Text})
			}
			if it.Definition.Algorithm != "" {
				def.Algorithm = &xmlAlgorithm{Type: it.Definition.AlgorithmType, Text: it.Definition.Algorithm}
			}
			xi.Definition = def
		}
		for _, r := range o.out[id] {
			nestable := r.Kind == RelHasOperation || r.Kind == RelHasProperty
			if nestable && owner[r.To] == id {
				subIt := o.items[r.To]
				xi.SubItems = append(xi.SubItems, xmlSubItem{ID: subIt.ID, Name: subIt.Name, Kind: subIt.Kind.String()})
				continue
			}
			xi.Relations = append(xi.Relations, xmlRelation{Kind: r.Kind.String(), Target: r.To})
		}
		sort.Slice(xi.SubItems, func(a, b int) bool { return xi.SubItems[a].ID < xi.SubItems[b].ID })
		sort.Slice(xi.Relations, func(a, b int) bool {
			if xi.Relations[a].Target != xi.Relations[b].Target {
				return xi.Relations[a].Target < xi.Relations[b].Target
			}
			return xi.Relations[a].Kind < xi.Relations[b].Kind
		})
		doc.Items = append(doc.Items, xi)
	}

	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("encode ontology xml: %w", err)
	}
	return nil
}

// DecodeXML parses the paper's markup into a fresh Ontology.
func DecodeXML(r io.Reader) (*Ontology, error) {
	var doc xmlOntology
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode ontology xml: %w", err)
	}
	o := New(doc.Domain)

	// First pass: create all items so relations can refer to IDs.
	type pendingSub struct {
		ownerName string
		sub       xmlSubItem
	}
	var subs []pendingSub
	for _, xi := range doc.Items {
		kind, err := ParseItemKind(defaultKind(xi.Kind))
		if err != nil {
			return nil, fmt.Errorf("item %q: %w", xi.Name, err)
		}
		it, err := o.AddItemWithID(xi.ID, xi.Name, kind)
		if err != nil {
			return nil, fmt.Errorf("item %q: %w", xi.Name, err)
		}
		for _, a := range xi.Aliases {
			if err := o.AddAlias(it.Name, a); err != nil {
				return nil, fmt.Errorf("alias %q of %q: %w", a, xi.Name, err)
			}
		}
		if xi.Definition != nil {
			if err := o.SetDescription(it.Name, xi.Definition.Description); err != nil {
				return nil, err
			}
			for _, s := range xi.Definition.Symbols {
				if err := o.AddSymbol(it.Name, s.Name, s.Text); err != nil {
					return nil, err
				}
			}
			if xi.Definition.Algorithm != nil {
				if err := o.SetAlgorithm(it.Name, xi.Definition.Algorithm.Type, xi.Definition.Algorithm.Text); err != nil {
					return nil, err
				}
			}
		}
		for _, sub := range xi.SubItems {
			subs = append(subs, pendingSub{ownerName: it.Name, sub: sub})
		}
	}
	for _, ps := range subs {
		kind, err := ParseItemKind(defaultKind(ps.sub.Kind))
		if err != nil {
			return nil, fmt.Errorf("subitem %q: %w", ps.sub.Name, err)
		}
		// Exact-name check: morphological folding must not conflate a
		// distinct subitem ("balanced") with an existing item
		// ("balance").
		if !o.hasExact(ps.sub.Name) {
			if _, err := o.AddItemWithID(ps.sub.ID, ps.sub.Name, kind); err != nil {
				return nil, fmt.Errorf("subitem %q: %w", ps.sub.Name, err)
			}
		}
		relKind := RelHasOperation
		if kind == KindProperty {
			relKind = RelHasProperty
		}
		if err := o.Relate(ps.ownerName, ps.sub.Name, relKind); err != nil {
			return nil, fmt.Errorf("subitem %q of %q: %w", ps.sub.Name, ps.ownerName, err)
		}
	}

	// Second pass: explicit relations by target ID.
	for _, xi := range doc.Items {
		for _, xr := range xi.Relations {
			kind, err := ParseRelationKind(xr.Kind)
			if err != nil {
				return nil, fmt.Errorf("relation of %q: %w", xi.Name, err)
			}
			target, ok := o.ByID(xr.Target)
			if !ok {
				return nil, fmt.Errorf("relation of %q: target id %d not found", xi.Name, xr.Target)
			}
			if err := o.Relate(xi.Name, target.Name, kind); err != nil {
				return nil, err
			}
		}
	}
	o.SetJournalLSN(doc.JournalLSN)
	return o, nil
}

func defaultKind(k string) string {
	if k == "" {
		return "concept"
	}
	return k
}
