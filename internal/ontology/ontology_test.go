package ontology

import (
	"bytes"
	"strings"
	"testing"
)

func TestPaperIDsPreserved(t *testing.T) {
	o := BuildCourseOntology()
	cases := map[string]int{"stack": 3, "tree": 4, "push": 32, "pop": 33}
	for name, wantID := range cases {
		it, ok := o.Lookup(name)
		if !ok {
			t.Fatalf("missing item %q", name)
		}
		if it.ID != wantID {
			t.Errorf("%s: id = %d, want %d (paper figure 5)", name, it.ID, wantID)
		}
	}
}

func TestPaperSemanticDistanceExamples(t *testing.T) {
	o := BuildCourseOntology()
	// §4.3: "tree" and "pop" are not related; "stack" and "pop" are.
	if o.Related("tree", "pop", 0) {
		t.Errorf("tree–pop should be unrelated (distance %d)", o.Distance("tree", "pop"))
	}
	if !o.Related("stack", "pop", 0) {
		t.Errorf("stack–pop should be related (distance %d)", o.Distance("stack", "pop"))
	}
	if !o.Related("push", "pop", 0) {
		t.Errorf("push–pop are operations of the same concept (distance %d)", o.Distance("push", "pop"))
	}
	if o.Related("tree", "push", 0) {
		t.Errorf("tree–push should be unrelated (distance %d)", o.Distance("tree", "push"))
	}
}

func TestDistanceProperties(t *testing.T) {
	o := BuildCourseOntology()
	items := o.Items()
	// Symmetry and identity on a sample of pairs.
	for i := 0; i < len(items); i += 3 {
		for j := 1; j < len(items); j += 5 {
			a, b := items[i].Name, items[j].Name
			if d1, d2 := o.Distance(a, b), o.Distance(b, a); d1 != d2 {
				t.Errorf("distance asymmetric: d(%s,%s)=%d d(%s,%s)=%d", a, b, d1, b, a, d2)
			}
		}
	}
	if d := o.Distance("stack", "stack"); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
	if d := o.Distance("stack", "no such thing"); d != Unreachable {
		t.Errorf("missing item distance = %d, want Unreachable", d)
	}
}

func TestTriangleInequalitySample(t *testing.T) {
	o := BuildCourseOntology()
	names := []string{"stack", "queue", "tree", "heap", "push", "pop", "enqueue", "graph", "node"}
	for _, a := range names {
		for _, b := range names {
			for _, c := range names {
				ab, bc, ac := o.Distance(a, b), o.Distance(b, c), o.Distance(a, c)
				if ab < Unreachable && bc < Unreachable && ac > ab+bc {
					t.Errorf("triangle inequality violated: d(%s,%s)=%d > d(%s,%s)+d(%s,%s)=%d",
						a, c, ac, a, b, b, c, ab+bc)
				}
			}
		}
	}
}

func TestLookupFoldsPlurals(t *testing.T) {
	o := BuildCourseOntology()
	for plural, singular := range map[string]string{
		"stacks": "stack", "queues": "queue", "trees": "tree",
		"indices": "index", "searches": "search", "vertices": "vertex",
	} {
		it, ok := o.Lookup(plural)
		if !ok {
			if _, okSing := o.Lookup(singular); okSing && plural != "vertices" && plural != "indices" {
				t.Errorf("Lookup(%q) failed though %q exists", plural, singular)
			}
			continue
		}
		if it.Name != singular {
			t.Errorf("Lookup(%q) = %q, want %q", plural, it.Name, singular)
		}
	}
}

func TestAliases(t *testing.T) {
	o := BuildCourseOntology()
	for alias, canonical := range map[string]string{
		"lifo": "lifo", "bst": "binary search tree", "last in first out": "lifo",
		"hash map": "hash table", "deletion": "delete",
	} {
		it, ok := o.Lookup(alias)
		if !ok {
			t.Errorf("alias %q not found", alias)
			continue
		}
		if it.Name != canonical {
			t.Errorf("alias %q resolved to %q, want %q", alias, it.Name, canonical)
		}
	}
}

func TestOperationsOfInheritsThroughIsA(t *testing.T) {
	o := BuildCourseOntology()
	ops := o.OperationsOf("binary search tree")
	names := make(map[string]bool, len(ops))
	for _, op := range ops {
		names[op.Name] = true
	}
	// Direct operations plus inherited ones from tree.
	for _, want := range []string{"search", "rotate", "insert", "delete", "traverse"} {
		if !names[want] {
			t.Errorf("binary search tree should offer %q (directly or via tree), got %v", want, names)
		}
	}
}

func TestConceptsWith(t *testing.T) {
	o := BuildCourseOntology()
	got := o.ConceptsWith("push")
	if len(got) != 1 || got[0].Name != "stack" {
		t.Fatalf("ConceptsWith(push) = %v, want [stack]", got)
	}
	multi := o.ConceptsWith("insert")
	if len(multi) < 3 {
		t.Errorf("ConceptsWith(insert) = %d concepts, want >= 3", len(multi))
	}
}

func TestIsATransitive(t *testing.T) {
	o := BuildCourseOntology()
	cases := []struct {
		a, b string
		want bool
	}{
		{"stack", "data structure", true},
		{"binary search tree", "tree", true},
		{"heap", "tree", true},
		{"stack", "queue", false},
		{"tree", "binary tree", false}, // is-a is directional
	}
	for _, tc := range cases {
		if got := o.IsA(tc.a, tc.b); got != tc.want {
			t.Errorf("IsA(%s,%s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestExtractTermsLongestMatch(t *testing.T) {
	o := BuildCourseOntology()
	tokens := strings.Fields("a binary search tree has the search operation")
	matches := o.ExtractTerms(tokens)
	if len(matches) < 2 {
		t.Fatalf("want >= 2 matches, got %v", matches)
	}
	if matches[0].Item.Name != "binary search tree" {
		t.Errorf("first match = %q, want longest match %q", matches[0].Item.Name, "binary search tree")
	}
	found := false
	for _, m := range matches[1:] {
		if m.Item.Name == "search" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a separate 'search' match, got %v", matches)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	o := BuildCourseOntology()
	var buf bytes.Buffer
	if err := o.EncodeXML(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(buf.String(), `name="stack"`) {
		t.Fatalf("xml output missing stack item:\n%s", clipStr(buf.String()))
	}
	back, err := DecodeXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Len() != o.Len() {
		t.Fatalf("round trip lost items: %d -> %d", o.Len(), back.Len())
	}
	if back.Domain() != o.Domain() {
		t.Errorf("domain: %q -> %q", o.Domain(), back.Domain())
	}
	// Semantics must survive: same distances on the paper pairs.
	for _, pair := range [][2]string{{"stack", "pop"}, {"tree", "pop"}, {"push", "pop"}} {
		if d1, d2 := o.Distance(pair[0], pair[1]), back.Distance(pair[0], pair[1]); d1 != d2 {
			t.Errorf("distance(%s,%s) changed across XML round trip: %d -> %d", pair[0], pair[1], d1, d2)
		}
	}
	st, ok := back.Lookup("stack")
	if !ok {
		t.Fatal("stack lost in round trip")
	}
	if !strings.Contains(st.Definition.Description, "Last In, First Out") {
		t.Errorf("stack description lost: %q", st.Definition.Description)
	}
	if len(st.Definition.Symbols) == 0 || st.Definition.Symbols[0].Name != "top" {
		t.Errorf("stack symbol lost: %+v", st.Definition.Symbols)
	}
}

func TestDDLRoundTrip(t *testing.T) {
	o := BuildCourseOntology()
	script := o.ExportDDL()
	in := NewInterpreter(nil)
	if err := in.Run(script); err != nil {
		t.Fatalf("replay exported DDL: %v", err)
	}
	back := in.Ontology()
	if back.Len() != o.Len() {
		t.Fatalf("DDL round trip lost items: %d -> %d", o.Len(), back.Len())
	}
	for _, pair := range [][2]string{{"stack", "pop"}, {"tree", "pop"}, {"stack", "lifo"}} {
		if d1, d2 := o.Distance(pair[0], pair[1]), back.Distance(pair[0], pair[1]); d1 != d2 {
			t.Errorf("distance(%s,%s) changed across DDL round trip: %d -> %d", pair[0], pair[1], d1, d2)
		}
	}
}

func TestDDLStatements(t *testing.T) {
	in := NewInterpreter(nil)
	err := in.Run(`
		-- build a small ontology
		CREATE DOMAIN "Test Domain";
		CREATE ITEM stack KIND concept ID 3;
		CREATE ITEM push KIND operation ID 32;
		CREATE ITEM "hash table" KIND concept;
		SET DESCRIPTION stack "A stack is a LIFO structure.";
		ADD SYMBOL stack top "the accessible end";
		ADD ALIAS stack lifo;
		RELATE stack push KIND hasoperation;
		SELECT ITEM stack;
		SELECT OPERATIONS stack;
		SELECT DISTANCE stack push;
	`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := strings.Join(in.Output, "\n")
	for _, want := range []string{"item 3 stack", "operation 32 push", "distance stack push = 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if in.Ontology().Domain() != "Test Domain" {
		t.Errorf("domain = %q", in.Ontology().Domain())
	}
}

func TestDDLErrors(t *testing.T) {
	cases := []string{
		`CREATE ITEM;`,
		`CREATE ITEM x KIND nonsense;`,
		`RELATE a b KIND isa;`,
		`FROBNICATE x;`,
		`SELECT ITEM missing;`,
		`CREATE ITEM dup KIND concept; CREATE ITEM dup KIND concept;`,
	}
	for _, src := range cases {
		in := NewInterpreter(nil)
		if err := in.Run(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestRemoveAndUnrelate(t *testing.T) {
	o := BuildCourseOntology()
	if err := o.Unrelate("stack", "pop"); err != nil {
		t.Fatalf("unrelate: %v", err)
	}
	if d := o.Distance("stack", "pop"); d <= 1 {
		t.Errorf("after unrelate, distance(stack,pop) = %d, want > 1", d)
	}
	if err := o.RemoveItem("graph"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, ok := o.Lookup("graph"); ok {
		t.Error("graph still present after RemoveItem")
	}
	for _, r := range o.Relations() {
		if _, ok := o.ByID(r.From); !ok {
			t.Errorf("dangling relation from %d", r.From)
		}
		if _, ok := o.ByID(r.To); !ok {
			t.Errorf("dangling relation to %d", r.To)
		}
	}
}

func TestPathDescription(t *testing.T) {
	o := BuildCourseOntology()
	steps := o.Path("tree", "pop")
	if len(steps) == 0 {
		t.Fatal("expected a path from tree to pop")
	}
	text := DescribePath(steps)
	if text == "" || text == "no relation found" {
		t.Errorf("DescribePath = %q", text)
	}
	if got := o.Path("stack", "no such"); got != nil {
		t.Errorf("path to missing item should be nil, got %v", got)
	}
}

func clipStr(s string) string {
	if len(s) > 400 {
		return s[:400] + "…"
	}
	return s
}

// TestNormalizeFastPath pins the zero-allocation fast path for
// already-normalized names against the canonicalizing slow path: the
// two must agree on every input, the fast path must return the input
// string unchanged, and a lookup-miss-shaped call must not allocate.
func TestNormalizeFastPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"stack", "stack"},
		{"binary search tree", "binary search tree"},
		{"Stack", "stack"},
		{"  stack  ", "stack"},
		{"binary-search-tree", "binary search tree"},
		{"two  spaces", "two spaces"},
		{"tab\there", "tab here"},
		{"trailing ", "trailing"},
		{" leading", "leading"},
		{"", ""},
		{"éclair", "éclair"}, // non-ASCII takes the slow path, unchanged
		{"UPPER-Case  Mix ", "upper case mix"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
		if got := normalizeSlow(c.in); got != c.want {
			t.Errorf("normalizeSlow(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		Normalize("already normalized name")
	})
	if allocs != 0 {
		t.Fatalf("Normalize on normalized input allocated %.1f times per run, want 0", allocs)
	}
}
