package ontology

import (
	"sort"
	"strings"
	"sync"
)

// SnapshotTableRadius is how far out the compiled shortest-path tables
// reach (DESIGN.md, design decision D8). Every pair within this weighted
// distance answers Related/Distance from an O(1) table lookup with zero
// allocations; only explain-path queries and pairs farther apart run the
// (allocation-free, pooled-scratch) Dijkstra fallback. Radius 4 covers
// the whole E3 threshold sweep, so every plausible relatedness threshold
// is a table hit.
const SnapshotTableRadius = 4

// Snapshot is an immutable, precompiled read-only view of an Ontology,
// published through an atomic pointer (Ontology.Snapshot). All read
// traffic — the Semantic Agent, QA, term extraction, DDL SELECTs — rides
// a snapshot without taking any lock, and a consumer that resolves one
// snapshot per sentence gets internally consistent answers no matter how
// the live ontology is mutated mid-analysis. Mutation is copy-on-write:
// every Ontology write invalidates the published pointer and the next
// reader compiles a fresh snapshot (mutation is O(rebuild), reads are
// lock-free).
//
// The compiled form holds dense int-indexed adjacency slices, bounded
// multi-source shortest-path tables out to SnapshotTableRadius, and a
// first-token phrase index with the stored maximum phrase length for
// ExtractTerms — the three hot structures of the per-message read path.
type Snapshot struct {
	version uint64
	domain  string

	// items is dense, ascending by ID; every *Item is a deep copy owned
	// by the snapshot and must be treated as immutable.
	items   []*Item
	idToIdx map[int]int32
	byName  map[string]int32

	// maxPhraseLen is the token count of the longest name/alias,
	// maintained at compile time instead of rescanned per ExtractTerms
	// call; firstTok maps the first word of every multi-word name to the
	// longest phrase starting with it, pruning the greedy matcher.
	maxPhraseLen int
	firstTok     map[string]int

	// adj[i] lists node i's edges in both directions: out edges first
	// (forward=true, preserving stored order), then in edges.
	adj   [][]snapEdge
	edges int

	// near[i] maps node index -> exact weighted shortest-path distance,
	// for every node within SnapshotTableRadius of i (including i at 0).
	near []map[int32]int32

	scratch sync.Pool
}

type snapEdge struct {
	to      int32
	weight  int32
	kind    RelationKind
	forward bool
}

// buildSnapshotLocked compiles the current graph; o.mu must be held.
func (o *Ontology) buildSnapshotLocked() *Snapshot {
	n := len(o.items)
	s := &Snapshot{
		version:  o.gen,
		domain:   o.domain,
		items:    make([]*Item, 0, n),
		idToIdx:  make(map[int]int32, n),
		byName:   make(map[string]int32, len(o.byName)),
		firstTok: make(map[string]int),
		adj:      make([][]snapEdge, n),
		near:     make([]map[int32]int32, n),
	}

	ids := make([]int, 0, n)
	for id := range o.items {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		it := o.items[id]
		clone := &Item{
			ID:      it.ID,
			Name:    it.Name,
			Aliases: append([]string(nil), it.Aliases...),
			Kind:    it.Kind,
			Definition: Definition{
				Description:   it.Definition.Description,
				Symbols:       append([]Symbol(nil), it.Definition.Symbols...),
				Algorithm:     it.Definition.Algorithm,
				AlgorithmType: it.Definition.AlgorithmType,
			},
		}
		s.idToIdx[id] = int32(len(s.items))
		s.items = append(s.items, clone)
	}

	s.maxPhraseLen = 1
	for name, id := range o.byName {
		idx, ok := s.idToIdx[id]
		if !ok {
			continue
		}
		s.byName[name] = idx
		words := strings.Count(name, " ") + 1
		if words > s.maxPhraseLen {
			s.maxPhraseLen = words
		}
		if words > 1 {
			first := name[:strings.IndexByte(name, ' ')]
			if words > s.firstTok[first] {
				s.firstTok[first] = words
			}
		}
	}

	for id, rels := range o.out {
		i, ok := s.idToIdx[id]
		if !ok {
			continue
		}
		for _, r := range rels {
			to, ok := s.idToIdx[r.To]
			if !ok {
				continue
			}
			s.adj[i] = append(s.adj[i], snapEdge{to: to, weight: int32(r.Kind.Weight()), kind: r.Kind, forward: true})
			s.edges++
		}
	}
	for id, rels := range o.in {
		i, ok := s.idToIdx[id]
		if !ok {
			continue
		}
		for _, r := range rels {
			from, ok := s.idToIdx[r.From]
			if !ok {
				continue
			}
			s.adj[i] = append(s.adj[i], snapEdge{to: from, weight: int32(r.Kind.Weight()), kind: r.Kind, forward: false})
		}
	}

	s.scratch.New = func() interface{} { return newSnapScratch(n) }

	// Bounded multi-source shortest paths: one cutoff Dijkstra per node.
	sc := newSnapScratch(n)
	for i := range s.items {
		s.dijkstra(int32(i), -1, SnapshotTableRadius, sc)
		m := make(map[int32]int32, len(sc.touched))
		for _, j := range sc.touched {
			m[j] = sc.dist[j]
		}
		s.near[i] = m
		sc.reset()
	}
	return s
}

// Version identifies the mutation generation this snapshot was compiled
// from; it increases monotonically with every ontology write.
func (s *Snapshot) Version() uint64 { return s.version }

// Domain returns the domain label.
func (s *Snapshot) Domain() string { return s.domain }

// Len returns the number of items.
func (s *Snapshot) Len() int { return len(s.items) }

// MaxPhraseLen returns the token count of the longest name or alias,
// compiled once per snapshot rather than rescanned per extraction.
func (s *Snapshot) MaxPhraseLen() int { return s.maxPhraseLen }

// SnapshotStats describes a compiled snapshot (ontologyctl and the E10
// harness report it).
type SnapshotStats struct {
	Version      uint64
	Items        int
	Relations    int
	TableEntries int
	TableRadius  int
	MaxPhraseLen int
}

// Stats reports the compiled sizes.
func (s *Snapshot) Stats() SnapshotStats {
	entries := 0
	for _, m := range s.near {
		entries += len(m)
	}
	return SnapshotStats{
		Version:      s.version,
		Items:        len(s.items),
		Relations:    s.edges,
		TableEntries: entries,
		TableRadius:  SnapshotTableRadius,
		MaxPhraseLen: s.maxPhraseLen,
	}
}

// Items returns all items ordered by ID. The returned slice is fresh;
// the *Item values are the snapshot's immutable copies.
func (s *Snapshot) Items() []*Item {
	return append([]*Item(nil), s.items...)
}

// ByID returns the item with the given ID.
func (s *Snapshot) ByID(id int) (*Item, bool) {
	idx, ok := s.idToIdx[id]
	if !ok {
		return nil, false
	}
	return s.items[idx], true
}

// Lookup finds an item by name or alias, folding plural forms.
func (s *Snapshot) Lookup(name string) (*Item, bool) {
	idx, ok := s.lookupIdx(name)
	if !ok {
		return nil, false
	}
	return s.items[idx], true
}

// lookupIdx resolves a name to a dense index. The first probe uses the
// raw string so already-normalized names (the overwhelmingly common
// case: item names and tokens are stored normalized) resolve with zero
// allocations; normalization and plural folding only run on a miss.
func (s *Snapshot) lookupIdx(name string) (int32, bool) {
	if idx, ok := s.byName[name]; ok {
		return idx, true
	}
	key := Normalize(name)
	if key != name {
		if idx, ok := s.byName[key]; ok {
			return idx, true
		}
	}
	for _, folded := range pluralFolds(key) {
		if idx, ok := s.byName[folded]; ok {
			return idx, true
		}
	}
	return 0, false
}

// Relations returns all edges ordered by (From, To, Kind).
func (s *Snapshot) Relations() []Relation {
	out := make([]Relation, 0, s.edges)
	for i, edges := range s.adj {
		from := s.items[i].ID
		for _, e := range edges {
			if e.forward {
				out = append(out, Relation{From: from, To: s.items[e.to].ID, Kind: e.kind})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Neighbors returns the relations touching the item (both directions,
// outgoing first).
func (s *Snapshot) Neighbors(id int) []Relation {
	idx, ok := s.idToIdx[id]
	if !ok {
		return nil
	}
	out := make([]Relation, 0, len(s.adj[idx]))
	for _, e := range s.adj[idx] {
		if e.forward {
			out = append(out, Relation{From: id, To: s.items[e.to].ID, Kind: e.kind})
		} else {
			out = append(out, Relation{From: s.items[e.to].ID, To: id, Kind: e.kind})
		}
	}
	return out
}

// featuresOf walks the is-a chain collecting has-operation or
// has-property targets.
func (s *Snapshot) featuresOf(name string, kind RelationKind) []*Item {
	start, ok := s.lookupIdx(name)
	if !ok {
		return nil
	}
	seen := make(map[int32]bool)
	var out []*Item
	queue := []int32{start}
	visited := map[int32]bool{start: true}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, e := range s.adj[i] {
			if !e.forward {
				continue
			}
			switch e.kind {
			case kind:
				if !seen[e.to] {
					seen[e.to] = true
					out = append(out, s.items[e.to])
				}
			case RelIsA:
				if !visited[e.to] {
					visited[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OperationsOf returns the operations an item offers, including those
// inherited through is-a edges.
func (s *Snapshot) OperationsOf(name string) []*Item {
	return s.featuresOf(name, RelHasOperation)
}

// PropertiesOf returns the properties an item carries, including those
// inherited through is-a edges.
func (s *Snapshot) PropertiesOf(name string) []*Item {
	return s.featuresOf(name, RelHasProperty)
}

// ConceptsWith returns the concepts that directly offer the named
// operation or property.
func (s *Snapshot) ConceptsWith(opOrProp string) []*Item {
	idx, ok := s.lookupIdx(opOrProp)
	if !ok {
		return nil
	}
	var out []*Item
	for _, e := range s.adj[idx] {
		if !e.forward && (e.kind == RelHasOperation || e.kind == RelHasProperty) {
			out = append(out, s.items[e.to])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ParentsOf returns the is-a parents of an item.
func (s *Snapshot) ParentsOf(name string) []*Item {
	idx, ok := s.lookupIdx(name)
	if !ok {
		return nil
	}
	var out []*Item
	for _, e := range s.adj[idx] {
		if e.forward && e.kind == RelIsA {
			out = append(out, s.items[e.to])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IsA reports whether item a transitively is-a item b.
func (s *Snapshot) IsA(a, b string) bool {
	ia, ok := s.lookupIdx(a)
	if !ok {
		return false
	}
	ib, ok := s.lookupIdx(b)
	if !ok {
		return false
	}
	if ia == ib {
		return true
	}
	visited := map[int32]bool{ia: true}
	queue := []int32{ia}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, e := range s.adj[i] {
			if !e.forward || e.kind != RelIsA {
				continue
			}
			if e.to == ib {
				return true
			}
			if !visited[e.to] {
				visited[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return false
}

// Distance returns the weighted shortest-path distance between two named
// items (Unreachable if either is missing or no path exists). Pairs
// within SnapshotTableRadius are an O(1) table lookup.
func (s *Snapshot) Distance(a, b string) int {
	ia, ok := s.lookupIdx(a)
	if !ok {
		return Unreachable
	}
	ib, ok := s.lookupIdx(b)
	if !ok {
		return Unreachable
	}
	return s.distanceIdx(ia, ib)
}

func (s *Snapshot) distanceIdx(ia, ib int32) int {
	if ia == ib {
		return 0
	}
	if d, ok := s.near[ia][ib]; ok {
		return int(d)
	}
	sc := s.scratch.Get().(*snapScratch)
	d := s.dijkstra(ia, ib, -1, sc)
	sc.reset()
	s.scratch.Put(sc)
	if d < 0 {
		return Unreachable
	}
	return int(d)
}

// Related reports whether the semantic distance between the two items is
// at most threshold (non-positive selects DefaultRelatedThreshold).
// Thresholds within SnapshotTableRadius — every deployed configuration —
// are answered from the compiled table with zero allocations.
func (s *Snapshot) Related(a, b string, threshold int) bool {
	if threshold <= 0 {
		threshold = DefaultRelatedThreshold
	}
	ia, ok := s.lookupIdx(a)
	if !ok {
		return false
	}
	ib, ok := s.lookupIdx(b)
	if !ok {
		return false
	}
	if ia == ib {
		return true
	}
	if threshold <= SnapshotTableRadius {
		d, ok := s.near[ia][ib]
		return ok && int(d) <= threshold
	}
	return s.distanceIdx(ia, ib) <= threshold
}

// Path returns the weighted shortest path between two items as a list of
// steps, or nil if unreachable. The returned steps reference the
// snapshot's immutable items.
func (s *Snapshot) Path(a, b string) []PathStep {
	ia, ok := s.lookupIdx(a)
	if !ok {
		return nil
	}
	ib, ok := s.lookupIdx(b)
	if !ok {
		return nil
	}
	if ia == ib {
		return nil
	}
	sc := s.scratch.Get().(*snapScratch)
	defer func() {
		sc.reset()
		s.scratch.Put(sc)
	}()
	if d := s.dijkstra(ia, ib, -1, sc); d < 0 {
		return nil
	}
	var steps []PathStep
	for at := ib; at != ia; {
		p := sc.prev[at]
		steps = append(steps, PathStep{
			From:    s.items[p.from],
			To:      s.items[at],
			Kind:    p.kind,
			Forward: p.forward,
		})
		at = p.from
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return steps
}

// ExtractTerms scans a tokenized sentence for ontology terms using
// greedy longest-first matching over the compiled phrase index: the
// stored max phrase length bounds the window and the first-token map
// prunes positions that cannot start a multi-word term.
func (s *Snapshot) ExtractTerms(tokens []string) []TermMatch {
	var out []TermMatch
	for i := 0; i < len(tokens); {
		limit := s.maxPhraseLen
		if rem := len(tokens) - i; rem < limit {
			limit = rem
		}
		// A plain token is its own normalized form, so multi-word names
		// starting with it are exactly the firstTok entries; tokens that
		// normalization could rewrite (hyphens, upper case) skip the
		// prune and keep the full window.
		if plainToken(tokens[i]) {
			if ml, ok := s.firstTok[tokens[i]]; ok {
				if ml < limit {
					limit = ml
				}
			} else {
				limit = 1
			}
		}
		matched := false
		for l := limit; l >= 1 && !matched; l-- {
			phrase := tokens[i]
			if l > 1 {
				phrase = strings.Join(tokens[i:i+l], " ")
			}
			if idx, ok := s.lookupIdx(phrase); ok {
				out = append(out, TermMatch{Item: s.items[idx], Start: i, End: i + l, Text: phrase})
				i += l
				matched = true
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

// plainToken reports whether normalization is the identity for this
// token (no hyphens, spaces or upper-case ASCII).
func plainToken(t string) bool {
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c == '-' || c == ' ' || (c >= 'A' && c <= 'Z') {
			return false
		}
	}
	return true
}

// ---- allocation-free Dijkstra over the dense adjacency ----------------

// snapScratch is the reusable per-query state of the slice-based
// Dijkstra: distances, predecessor cells and a manual binary heap, all
// index-addressed so the steady-state query path performs no heap
// allocation (scratch cycles through a sync.Pool).
type snapScratch struct {
	dist    []int32 // -1 = unvisited
	prev    []prevCell
	heap    []heapEnt
	touched []int32
}

type prevCell struct {
	from    int32
	kind    RelationKind
	forward bool
}

type heapEnt struct {
	idx  int32
	dist int32
}

func newSnapScratch(n int) *snapScratch {
	sc := &snapScratch{
		dist:    make([]int32, n),
		prev:    make([]prevCell, n),
		heap:    make([]heapEnt, 0, 16),
		touched: make([]int32, 0, 32),
	}
	for i := range sc.dist {
		sc.dist[i] = -1
	}
	return sc
}

func (sc *snapScratch) reset() {
	for _, i := range sc.touched {
		sc.dist[i] = -1
	}
	sc.touched = sc.touched[:0]
	sc.heap = sc.heap[:0]
}

func (sc *snapScratch) push(e heapEnt) {
	sc.heap = append(sc.heap, e)
	i := len(sc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if sc.heap[parent].dist <= sc.heap[i].dist {
			break
		}
		sc.heap[parent], sc.heap[i] = sc.heap[i], sc.heap[parent]
		i = parent
	}
}

func (sc *snapScratch) pop() heapEnt {
	top := sc.heap[0]
	last := len(sc.heap) - 1
	sc.heap[0] = sc.heap[last]
	sc.heap = sc.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && sc.heap[l].dist < sc.heap[smallest].dist {
			smallest = l
		}
		if r < last && sc.heap[r].dist < sc.heap[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		sc.heap[i], sc.heap[smallest] = sc.heap[smallest], sc.heap[i]
		i = smallest
	}
	return top
}

// dijkstra runs weighted shortest path from src. dst >= 0 stops early at
// the destination; cutoff >= 0 bounds exploration to that distance (used
// to compile the near tables — distances at or under the cutoff are
// globally exact because prefix distances along a shortest path are
// monotone). Returns the distance to dst, or -1. Visited state lands in
// sc (sc.touched lists every reached node); callers must sc.reset().
func (s *Snapshot) dijkstra(src, dst int32, cutoff int32, sc *snapScratch) int32 {
	sc.dist[src] = 0
	sc.touched = append(sc.touched, src)
	sc.push(heapEnt{idx: src, dist: 0})
	for len(sc.heap) > 0 {
		cur := sc.pop()
		if cur.dist > sc.dist[cur.idx] {
			continue
		}
		if cur.idx == dst {
			return cur.dist
		}
		for _, e := range s.adj[cur.idx] {
			nd := cur.dist + e.weight
			if cutoff >= 0 && nd > cutoff {
				continue
			}
			if d := sc.dist[e.to]; d < 0 || nd < d {
				if d < 0 {
					sc.touched = append(sc.touched, e.to)
				}
				sc.dist[e.to] = nd
				sc.prev[e.to] = prevCell{from: cur.idx, kind: e.kind, forward: e.forward}
				sc.push(heapEnt{idx: e.to, dist: nd})
			}
		}
	}
	if dst >= 0 && sc.dist[dst] >= 0 {
		return sc.dist[dst]
	}
	return -1
}
