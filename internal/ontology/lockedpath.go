package ontology

import (
	"container/heap"
	"strings"
)

// LockedReadPath is the pre-snapshot read path: an RWMutex read lock
// over the live maps, a map-allocating Dijkstra per distance query, and
// an ExtractTerms that rescans every name to find the longest phrase.
// The production read path compiles an immutable Snapshot instead
// (DESIGN.md D8); this adapter is retained only as the measured baseline
// arm of experiment E10, so the refactor's win stays reproducible.
type LockedReadPath struct {
	o *Ontology
}

// LockedReadPath returns the legacy locked read-path adapter.
func (o *Ontology) LockedReadPath() LockedReadPath { return LockedReadPath{o: o} }

// Distance is the legacy locked shortest-path query.
func (p LockedReadPath) Distance(a, b string) int {
	o := p.o
	o.mu.RLock()
	defer o.mu.RUnlock()
	ia, ok := o.lookupFoldedLocked(a)
	if !ok {
		return Unreachable
	}
	ib, ok := o.lookupFoldedLocked(b)
	if !ok {
		return Unreachable
	}
	dist, _ := o.dijkstraLocked(ia.ID, ib.ID)
	return dist
}

// Related is the legacy locked relatedness query.
func (p LockedReadPath) Related(a, b string, threshold int) bool {
	if threshold <= 0 {
		threshold = DefaultRelatedThreshold
	}
	return p.Distance(a, b) <= threshold
}

// Path is the legacy locked shortest-path reconstruction. The returned
// steps alias the live items.
func (p LockedReadPath) Path(a, b string) []PathStep {
	o := p.o
	o.mu.RLock()
	defer o.mu.RUnlock()
	ia, ok := o.lookupFoldedLocked(a)
	if !ok {
		return nil
	}
	ib, ok := o.lookupFoldedLocked(b)
	if !ok {
		return nil
	}
	dist, prev := o.dijkstraLocked(ia.ID, ib.ID)
	if dist >= Unreachable {
		return nil
	}
	var steps []PathStep
	for at := ib.ID; at != ia.ID; {
		pe := prev[at]
		steps = append(steps, PathStep{
			From:    o.items[pe.from],
			To:      o.items[at],
			Kind:    pe.kind,
			Forward: pe.forward,
		})
		at = pe.from
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return steps
}

// ExtractTerms is the legacy locked greedy matcher, including its
// per-call max-phrase-length rescan of every name.
func (p LockedReadPath) ExtractTerms(tokens []string) []TermMatch {
	o := p.o
	o.mu.RLock()
	defer o.mu.RUnlock()
	maxLen := 1
	for name := range o.byName {
		if n := strings.Count(name, " ") + 1; n > maxLen {
			maxLen = n
		}
	}
	var out []TermMatch
	for i := 0; i < len(tokens); {
		matched := false
		limit := maxLen
		if rem := len(tokens) - i; rem < limit {
			limit = rem
		}
		for l := limit; l >= 1 && !matched; l-- {
			phrase := strings.Join(tokens[i:i+l], " ")
			if it, ok := o.lookupFoldedLocked(phrase); ok {
				out = append(out, TermMatch{Item: it, Start: i, End: i + l, Text: phrase})
				i += l
				matched = true
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

type prevEdge struct {
	from    int
	kind    RelationKind
	forward bool
}

type pqItem struct {
	id   int
	dist int
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int            { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool  { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)       { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x interface{}) { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	item := old[n-1]
	*pq = old[:n-1]
	return item
}

// dijkstraLocked runs weighted shortest path from src, stopping early at
// dst, and returns the distance plus the predecessor map.
func (o *Ontology) dijkstraLocked(src, dst int) (int, map[int]prevEdge) {
	dist := map[int]int{src: 0}
	prev := make(map[int]prevEdge)
	pq := priorityQueue{{id: src, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(&pq).(pqItem)
		if cur.dist > dist[cur.id] {
			continue
		}
		if cur.id == dst {
			return cur.dist, prev
		}
		relax := func(to int, kind RelationKind, forward bool) {
			nd := cur.dist + kind.Weight()
			if d, seen := dist[to]; !seen || nd < d {
				dist[to] = nd
				prev[to] = prevEdge{from: cur.id, kind: kind, forward: forward}
				heap.Push(&pq, pqItem{id: to, dist: nd})
			}
		}
		for _, r := range o.out[cur.id] {
			relax(r.To, r.Kind, true)
		}
		for _, r := range o.in[cur.id] {
			relax(r.From, r.Kind, false)
		}
	}
	if d, ok := dist[dst]; ok {
		return d, prev
	}
	return Unreachable, prev
}
