package ontology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The paper's Ontology Definition flow translates the authored ontology
// into "DDL and DML" statements which an interpreter replays into the
// Distance Learning Ontology database. This file implements that
// mini-language.
//
// Statement forms (keywords case-insensitive, names may be quoted,
// "--" starts a comment, ";" terminates a statement):
//
//	CREATE DOMAIN "Data Structure";
//	CREATE ITEM stack KIND concept [ID 3];
//	SET DESCRIPTION stack "A stack is ...";
//	ADD SYMBOL stack top "A stack is a linear list ...";
//	SET ALGORITHM stack "c" "push(s, x) { ... }";
//	ADD ALIAS stack lifo;
//	RELATE stack push KIND hasoperation;
//	UNRELATE stack push;
//	REMOVE ITEM stack;
//	SELECT ITEM stack;
//	SELECT OPERATIONS stack;
//	SELECT CONCEPTS WITH push;
//	SELECT RELATED stack DEPTH 2;
//	SELECT DISTANCE stack pop;

// Statement is one parsed DDL/DML statement.
type Statement struct {
	Verb string   // upper-cased verb phrase, e.g. "CREATE ITEM"
	Args []string // positional arguments in source order
	Line int
}

// ParseDDL splits source text into statements.
func ParseDDL(src string) ([]Statement, error) {
	toks, lines, err := lexDDL(src)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	start := 0
	for i := 0; i <= len(toks); i++ {
		if i < len(toks) && toks[i] != ";" {
			continue
		}
		if i > start {
			stmt, err := buildStatement(toks[start:i], lines[start])
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, stmt)
		}
		start = i + 1
	}
	return stmts, nil
}

func lexDDL(src string) (toks []string, lines []int, err error) {
	line := 1
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == '\n':
			line++
			i++
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
		case ch == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case ch == ';':
			toks = append(toks, ";")
			lines = append(lines, line)
			i++
		case ch == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					line++
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, nil, fmt.Errorf("line %d: unterminated string", line)
			}
			toks = append(toks, "\x00"+b.String()) // \x00 marks a quoted literal
			lines = append(lines, line)
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\r\n;\"", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			lines = append(lines, line)
			i = j
		}
	}
	return toks, lines, nil
}

// verbTable maps the first one or two keywords to a verb phrase.
var verbTable = map[string]bool{
	"CREATE DOMAIN": true, "CREATE ITEM": true,
	"SET DESCRIPTION": true, "SET ALGORITHM": true,
	"ADD SYMBOL": true, "ADD ALIAS": true,
	"RELATE": true, "UNRELATE": true,
	"REMOVE ITEM": true,
	"SELECT ITEM": true, "SELECT OPERATIONS": true,
	"SELECT CONCEPTS": true, "SELECT RELATED": true,
	"SELECT DISTANCE": true,
}

func buildStatement(toks []string, line int) (Statement, error) {
	unquote := func(t string) string { return strings.TrimPrefix(t, "\x00") }
	if len(toks) == 0 {
		return Statement{}, fmt.Errorf("line %d: empty statement", line)
	}
	verb := strings.ToUpper(unquote(toks[0]))
	rest := toks[1:]
	if len(toks) >= 2 && !strings.HasPrefix(toks[1], "\x00") {
		two := verb + " " + strings.ToUpper(toks[1])
		if verbTable[two] {
			verb = two
			rest = toks[2:]
		}
	}
	if !verbTable[verb] {
		return Statement{}, fmt.Errorf("line %d: unknown statement %q", line, unquote(toks[0]))
	}
	args := make([]string, len(rest))
	for i, t := range rest {
		args[i] = unquote(t)
	}
	return Statement{Verb: verb, Args: args, Line: line}, nil
}

// Interpreter replays DDL/DML statements into an ontology, collecting
// SELECT output rows.
type Interpreter struct {
	onto *Ontology
	// Output accumulates one string per SELECT result row.
	Output []string
}

// NewInterpreter wraps an ontology; pass nil to start from an empty one.
func NewInterpreter(o *Ontology) *Interpreter {
	if o == nil {
		o = New("")
	}
	return &Interpreter{onto: o}
}

// Ontology returns the ontology being built.
func (in *Interpreter) Ontology() *Ontology { return in.onto }

// Run parses and executes DDL source.
func (in *Interpreter) Run(src string) error {
	stmts, err := ParseDDL(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := in.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Exec executes one statement.
func (in *Interpreter) Exec(s Statement) error {
	need := func(n int) error {
		if len(s.Args) < n {
			return fmt.Errorf("line %d: %s needs %d arguments, got %d", s.Line, s.Verb, n, len(s.Args))
		}
		return nil
	}
	switch s.Verb {
	case "CREATE DOMAIN":
		if err := need(1); err != nil {
			return err
		}
		in.onto.SetDomain(s.Args[0])
		return nil
	case "CREATE ITEM":
		if err := need(3); err != nil {
			return err
		}
		if strings.ToUpper(s.Args[1]) != "KIND" {
			return fmt.Errorf("line %d: expected KIND, got %q", s.Line, s.Args[1])
		}
		kind, err := ParseItemKind(s.Args[2])
		if err != nil {
			return fmt.Errorf("line %d: %w", s.Line, err)
		}
		id := 0
		if len(s.Args) >= 5 && strings.ToUpper(s.Args[3]) == "ID" {
			id, err = strconv.Atoi(s.Args[4])
			if err != nil {
				return fmt.Errorf("line %d: bad ID %q", s.Line, s.Args[4])
			}
		}
		if id > 0 {
			_, err = in.onto.AddItemWithID(id, s.Args[0], kind)
		} else {
			_, err = in.onto.AddItem(s.Args[0], kind)
		}
		if err != nil {
			return fmt.Errorf("line %d: %w", s.Line, err)
		}
		return nil
	case "SET DESCRIPTION":
		if err := need(2); err != nil {
			return err
		}
		return lineErr(s.Line, in.onto.SetDescription(s.Args[0], s.Args[1]))
	case "ADD SYMBOL":
		if err := need(3); err != nil {
			return err
		}
		return lineErr(s.Line, in.onto.AddSymbol(s.Args[0], s.Args[1], s.Args[2]))
	case "SET ALGORITHM":
		if err := need(3); err != nil {
			return err
		}
		return lineErr(s.Line, in.onto.SetAlgorithm(s.Args[0], s.Args[1], s.Args[2]))
	case "ADD ALIAS":
		if err := need(2); err != nil {
			return err
		}
		return lineErr(s.Line, in.onto.AddAlias(s.Args[0], s.Args[1]))
	case "RELATE":
		if err := need(4); err != nil {
			return err
		}
		if strings.ToUpper(s.Args[2]) != "KIND" {
			return fmt.Errorf("line %d: expected KIND, got %q", s.Line, s.Args[2])
		}
		kind, err := ParseRelationKind(s.Args[3])
		if err != nil {
			return fmt.Errorf("line %d: %w", s.Line, err)
		}
		return lineErr(s.Line, in.onto.Relate(s.Args[0], s.Args[1], kind))
	case "UNRELATE":
		if err := need(2); err != nil {
			return err
		}
		return lineErr(s.Line, in.onto.Unrelate(s.Args[0], s.Args[1]))
	case "REMOVE ITEM":
		if err := need(1); err != nil {
			return err
		}
		return lineErr(s.Line, in.onto.RemoveItem(s.Args[0]))
	case "SELECT ITEM":
		if err := need(1); err != nil {
			return err
		}
		it, ok := in.onto.Lookup(s.Args[0])
		if !ok {
			return fmt.Errorf("line %d: %w: %q", s.Line, ErrNotFound, s.Args[0])
		}
		in.Output = append(in.Output, fmt.Sprintf("item %d %s kind=%s description=%q",
			it.ID, it.Name, it.Kind, it.Definition.Description))
		return nil
	case "SELECT OPERATIONS":
		if err := need(1); err != nil {
			return err
		}
		for _, op := range in.onto.OperationsOf(s.Args[0]) {
			in.Output = append(in.Output, fmt.Sprintf("operation %d %s", op.ID, op.Name))
		}
		return nil
	case "SELECT CONCEPTS":
		if err := need(2); err != nil {
			return err
		}
		if strings.ToUpper(s.Args[0]) != "WITH" {
			return fmt.Errorf("line %d: expected WITH, got %q", s.Line, s.Args[0])
		}
		for _, c := range in.onto.ConceptsWith(s.Args[1]) {
			in.Output = append(in.Output, fmt.Sprintf("concept %d %s", c.ID, c.Name))
		}
		return nil
	case "SELECT RELATED":
		if err := need(1); err != nil {
			return err
		}
		depth := DefaultRelatedThreshold
		if len(s.Args) >= 3 && strings.ToUpper(s.Args[1]) == "DEPTH" {
			d, err := strconv.Atoi(s.Args[2])
			if err != nil {
				return fmt.Errorf("line %d: bad DEPTH %q", s.Line, s.Args[2])
			}
			depth = d
		}
		it, ok := in.onto.Lookup(s.Args[0])
		if !ok {
			return fmt.Errorf("line %d: %w: %q", s.Line, ErrNotFound, s.Args[0])
		}
		type related struct {
			name string
			dist int
		}
		var rows []related
		for _, other := range in.onto.Items() {
			if other.ID == it.ID {
				continue
			}
			if d := in.onto.Distance(it.Name, other.Name); d <= depth {
				rows = append(rows, related{name: other.Name, dist: d})
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].dist != rows[j].dist {
				return rows[i].dist < rows[j].dist
			}
			return rows[i].name < rows[j].name
		})
		for _, r := range rows {
			in.Output = append(in.Output, fmt.Sprintf("related %s distance=%d", r.name, r.dist))
		}
		return nil
	case "SELECT DISTANCE":
		if err := need(2); err != nil {
			return err
		}
		d := in.onto.Distance(s.Args[0], s.Args[1])
		if d >= Unreachable {
			in.Output = append(in.Output, fmt.Sprintf("distance %s %s = unreachable", s.Args[0], s.Args[1]))
		} else {
			in.Output = append(in.Output, fmt.Sprintf("distance %s %s = %d", s.Args[0], s.Args[1], d))
		}
		return nil
	}
	return fmt.Errorf("line %d: unhandled verb %s", s.Line, s.Verb)
}

func lineErr(line int, err error) error {
	if err != nil {
		return fmt.Errorf("line %d: %w", line, err)
	}
	return nil
}

// ExportDDL translates an ontology into a DDL/DML script that, replayed
// through the Interpreter, reconstructs it. This is the paper's
// "DDL and DML Translation" step.
func (o *Ontology) ExportDDL() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "-- ontology export: %d items\n", len(o.items))
	if o.domain != "" {
		fmt.Fprintf(&b, "CREATE DOMAIN %s;\n", quoteDDL(o.domain))
	}
	ids := make([]int, 0, len(o.items))
	for id := range o.items {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		it := o.items[id]
		fmt.Fprintf(&b, "CREATE ITEM %s KIND %s ID %d;\n", quoteDDL(it.Name), it.Kind, it.ID)
		for _, a := range it.Aliases {
			fmt.Fprintf(&b, "ADD ALIAS %s %s;\n", quoteDDL(it.Name), quoteDDL(a))
		}
		if it.Definition.Description != "" {
			fmt.Fprintf(&b, "SET DESCRIPTION %s %s;\n", quoteDDL(it.Name), quoteDDL(it.Definition.Description))
		}
		for _, s := range it.Definition.Symbols {
			fmt.Fprintf(&b, "ADD SYMBOL %s %s %s;\n", quoteDDL(it.Name), quoteDDL(s.Name), quoteDDL(s.Text))
		}
		if it.Definition.Algorithm != "" {
			fmt.Fprintf(&b, "SET ALGORITHM %s %s %s;\n",
				quoteDDL(it.Name), quoteDDL(it.Definition.AlgorithmType), quoteDDL(it.Definition.Algorithm))
		}
	}
	for _, id := range ids {
		rels := append([]Relation(nil), o.out[id]...)
		sort.Slice(rels, func(i, j int) bool {
			if rels[i].To != rels[j].To {
				return rels[i].To < rels[j].To
			}
			return rels[i].Kind < rels[j].Kind
		})
		for _, r := range rels {
			fmt.Fprintf(&b, "RELATE %s %s KIND %s;\n",
				quoteDDL(o.items[r.From].Name), quoteDDL(o.items[r.To].Name), r.Kind)
		}
	}
	return b.String()
}

func quoteDDL(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\";") {
		return "\"" + strings.ReplaceAll(s, "\"", "'") + "\""
	}
	return s
}
