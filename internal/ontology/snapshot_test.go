package ontology

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSnapshotParityWithLockedPath cross-checks the compiled snapshot
// read path against the legacy locked read path over every item pair of
// the course ontology and of random graphs — the refactor must be a
// pure performance change.
func TestSnapshotParityWithLockedPath(t *testing.T) {
	check := func(t *testing.T, o *Ontology) {
		t.Helper()
		snap := o.Snapshot()
		locked := o.LockedReadPath()
		items := snap.Items()
		for i := 0; i < len(items); i++ {
			for j := i; j < len(items); j++ {
				a, b := items[i].Name, items[j].Name
				if ds, dl := snap.Distance(a, b), locked.Distance(a, b); ds != dl {
					t.Fatalf("distance(%s,%s): snapshot %d, locked %d", a, b, ds, dl)
				}
				for _, th := range []int{1, 2, 3, 4, 5, 7} {
					if rs, rl := snap.Related(a, b, th), locked.Related(a, b, th); rs != rl {
						t.Fatalf("related(%s,%s,%d): snapshot %v, locked %v", a, b, th, rs, rl)
					}
				}
				// Paths may differ when ties exist; their weights must not.
				ps, pl := snap.Path(a, b), locked.Path(a, b)
				if (ps == nil) != (pl == nil) {
					t.Fatalf("path(%s,%s): snapshot nil=%v, locked nil=%v", a, b, ps == nil, pl == nil)
				}
				if ws, wl := pathWeight(ps), pathWeight(pl); ws != wl {
					t.Fatalf("path weight(%s,%s): snapshot %d, locked %d", a, b, ws, wl)
				}
			}
		}
	}

	t.Run("course", func(t *testing.T) { check(t, BuildCourseOntology()) })
	t.Run("random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 10; trial++ {
			check(t, randomOntology(rng))
		}
	})
}

func pathWeight(steps []PathStep) int {
	w := 0
	for _, s := range steps {
		w += s.Kind.Weight()
	}
	return w
}

// TestSnapshotExtractTermsParity cross-checks term extraction between
// the compiled phrase index and the legacy scanning matcher, including
// plurals, aliases, hyphens and multi-word terms.
func TestSnapshotExtractTermsParity(t *testing.T) {
	o := BuildCourseOntology()
	snap := o.Snapshot()
	locked := o.LockedReadPath()
	cases := [][]string{
		{"the", "binary", "search", "tree", "supports", "insert"},
		{"stacks", "and", "queues", "are", "linear", "structures"},
		{"the", "data", "is", "pushed", "in", "this", "heap"},
		{"a", "double", "ended", "queue", "has", "a", "rear"},
		{"the", "Binary-Search", "tree", "keeps", "keys", "sorted"},
		{"last", "in", "first", "out", "order"},
		{"nothing", "relevant", "here"},
		{},
	}
	for _, tokens := range cases {
		got := snap.ExtractTerms(tokens)
		want := locked.ExtractTerms(tokens)
		if len(got) != len(want) {
			t.Fatalf("tokens %v: snapshot found %d terms, locked %d", tokens, len(got), len(want))
		}
		for i := range got {
			if got[i].Item.ID != want[i].Item.ID || got[i].Start != want[i].Start || got[i].End != want[i].End {
				t.Fatalf("tokens %v term %d: snapshot (%d,%d,%d), locked (%d,%d,%d)", tokens, i,
					got[i].Item.ID, got[i].Start, got[i].End, want[i].Item.ID, want[i].Start, want[i].End)
			}
		}
	}
}

// TestSnapshotImmutable pins a snapshot, mutates the live ontology, and
// asserts the pinned view is untouched while a fresh snapshot sees the
// change — the no-torn-reads property every consumer relies on.
func TestSnapshotImmutable(t *testing.T) {
	o := BuildCourseOntology()
	snap := o.Snapshot()
	v := snap.Version()

	if d := snap.Distance("tree", "pop"); d <= DefaultRelatedThreshold {
		t.Fatalf("precondition: tree-pop should be unrelated, got %d", d)
	}
	if err := o.Relate("tree", "pop", RelHasOperation); err != nil {
		t.Fatal(err)
	}
	if err := o.SetDescription("stack", "rewritten"); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot must not move.
	if d := snap.Distance("tree", "pop"); d != 4 {
		t.Errorf("pinned snapshot distance(tree,pop) changed to %d", d)
	}
	it, ok := snap.Lookup("stack")
	if !ok || it.Definition.Description == "rewritten" {
		t.Errorf("pinned snapshot saw the live description mutation")
	}
	if snap.Version() != v {
		t.Errorf("pinned snapshot version moved: %d -> %d", v, snap.Version())
	}

	// A fresh snapshot sees both mutations and a higher version.
	fresh := o.Snapshot()
	if fresh.Version() <= v {
		t.Errorf("fresh snapshot version %d not after %d", fresh.Version(), v)
	}
	if d := fresh.Distance("tree", "pop"); d != 1 {
		t.Errorf("fresh snapshot distance(tree,pop) = %d, want 1", d)
	}
	if it, ok := fresh.Lookup("stack"); !ok || it.Definition.Description != "rewritten" {
		t.Errorf("fresh snapshot missed the description mutation")
	}
}

// TestSnapshotReusedUntilMutation asserts the publish path: repeated
// reads share one compiled snapshot, and only mutation republishes.
func TestSnapshotReusedUntilMutation(t *testing.T) {
	o := BuildCourseOntology()
	s1 := o.Snapshot()
	s2 := o.Snapshot()
	if s1 != s2 {
		t.Fatal("back-to-back snapshots differ without mutation")
	}
	if _, err := o.AddItem("trie", KindConcept); err != nil {
		t.Fatal(err)
	}
	s3 := o.Snapshot()
	if s3 == s1 {
		t.Fatal("snapshot not republished after mutation")
	}
	if _, ok := s3.Lookup("trie"); !ok {
		t.Fatal("republished snapshot missing the new item")
	}
}

// TestRelatedWithinThresholdZeroAllocs is the E10 acceptance criterion:
// a within-threshold Related query is a pure table lookup.
func TestRelatedWithinThresholdZeroAllocs(t *testing.T) {
	snap := BuildCourseOntology().Snapshot()
	pairs := [][2]string{
		{"stack", "pop"},                 // related, distance 1
		{"push", "pop"},                  // related, distance 2
		{"tree", "pop"},                  // unrelated
		{"stack", "queue"},               // unrelated at threshold 2
		{"binary search tree", "insert"}, // multi-word name
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, p := range pairs {
			snap.Related(p[0], p[1], 0)
		}
	})
	if allocs != 0 {
		t.Fatalf("Related within threshold allocated %.1f times per run, want 0", allocs)
	}
}

// TestSnapshotMaxPhraseLenMaintained is the regression test for the old
// ExtractTerms recomputing the max phrase length by scanning every name
// per call: the snapshot stores it and mutation republishes it.
func TestSnapshotMaxPhraseLenMaintained(t *testing.T) {
	o := New("test")
	for _, name := range []string{"stack", "binary tree"} {
		if _, err := o.AddItem(name, KindConcept); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.Snapshot().MaxPhraseLen(); got != 2 {
		t.Fatalf("max phrase len = %d, want 2", got)
	}

	// A longer item republishes a larger bound...
	if _, err := o.AddItem("very deep left leaning red black tree", KindConcept); err != nil {
		t.Fatal(err)
	}
	if got := o.Snapshot().MaxPhraseLen(); got != 7 {
		t.Fatalf("max phrase len after add = %d, want 7", got)
	}
	tokens := []string{"the", "very", "deep", "left", "leaning", "red", "black", "tree", "wins"}
	terms := o.ExtractTerms(tokens)
	if len(terms) != 1 || terms[0].End-terms[0].Start != 7 {
		t.Fatalf("long phrase not matched greedily: %+v", terms)
	}

	// ...a longer alias too, and removal shrinks it again.
	if err := o.AddAlias("stack", "last in first out pile of plates you know"); err != nil {
		t.Fatal(err)
	}
	if got := o.Snapshot().MaxPhraseLen(); got != 9 {
		t.Fatalf("max phrase len after alias = %d, want 9", got)
	}
	if err := o.RemoveItem("very deep left leaning red black tree"); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveItem("stack"); err != nil {
		t.Fatal(err)
	}
	if got := o.Snapshot().MaxPhraseLen(); got != 2 {
		t.Fatalf("max phrase len after removals = %d, want 2", got)
	}
}

// TestSnapshotStats sanity-checks the compiled metadata surfaced by
// ontologyctl and the E10 harness.
func TestSnapshotStats(t *testing.T) {
	o := BuildCourseOntology()
	st := o.Snapshot().Stats()
	if st.Items != o.Len() {
		t.Errorf("stats items %d != len %d", st.Items, o.Len())
	}
	if st.Relations != len(o.Relations()) {
		t.Errorf("stats relations %d != %d", st.Relations, len(o.Relations()))
	}
	if st.TableRadius != SnapshotTableRadius {
		t.Errorf("stats radius %d", st.TableRadius)
	}
	// Every item is within radius of itself, so the tables hold at
	// least one entry per item.
	if st.TableEntries < st.Items {
		t.Errorf("stats table entries %d < items %d", st.TableEntries, st.Items)
	}
	if st.MaxPhraseLen < 4 { // "last in first out"
		t.Errorf("stats max phrase len %d, want >= 4", st.MaxPhraseLen)
	}
}

// TestSnapshotConcurrentPublish hammers snapshot publication from a
// writer while readers query distances, under -race: the publish path
// itself must be safe and every query must see a coherent graph.
func TestSnapshotConcurrentPublish(t *testing.T) {
	o := BuildCourseOntology()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("ephemeral-%d", i)
			if _, err := o.AddItem(name, KindOperation); err != nil {
				t.Errorf("add: %v", err)
				return
			}
			if err := o.Relate("stack", name, RelHasOperation); err != nil {
				t.Errorf("relate: %v", err)
				return
			}
			if err := o.RemoveItem(name); err != nil {
				t.Errorf("remove: %v", err)
				return
			}
		}
	}()
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		snap := o.Snapshot()
		if d := snap.Distance("stack", "pop"); d != 1 {
			t.Fatalf("iteration %d: distance(stack,pop) = %d", i, d)
		}
		if snap.Related("tree", "pop", 0) {
			t.Fatalf("iteration %d: tree-pop related", i)
		}
	}
}
