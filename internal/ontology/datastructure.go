package ontology

import "fmt"

// BuildCourseOntology constructs the built-in "Data Structure" knowledge
// ontology used throughout the reproduction. IDs of the items the paper
// names explicitly are kept identical to the paper's Figure 5: stack=3,
// tree=4, push=32, pop=33.
func BuildCourseOntology() *Ontology {
	o := New("Data Structure")
	must := func(err error) {
		if err != nil {
			// The built-in ontology is a compile-time artifact; a failure
			// here is a programming error equivalent to a bad literal.
			panic(fmt.Sprintf("course ontology: %v", err))
		}
	}
	item := func(id int, name string, kind ItemKind, aliases ...string) {
		_, err := o.AddItemWithID(id, name, kind)
		must(err)
		for _, a := range aliases {
			must(o.AddAlias(name, a))
		}
	}

	// ---- concepts (ids 1..29) -------------------------------------
	item(1, "data structure", KindConcept)
	item(2, "linear structure", KindConcept, "linear list")
	item(3, "stack", KindConcept)
	item(4, "tree", KindConcept)
	item(5, "queue", KindConcept)
	item(6, "array", KindConcept)
	item(7, "linked list", KindConcept)
	item(8, "binary tree", KindConcept)
	item(9, "binary search tree", KindConcept, "bst", "search tree")
	item(10, "heap", KindConcept)
	item(11, "graph", KindConcept)
	item(12, "hash table", KindConcept, "hash map")
	item(13, "node", KindConcept)
	item(14, "pointer", KindConcept)
	item(15, "element", KindConcept, "item")
	item(16, "vertex", KindConcept)
	item(17, "edge", KindConcept)
	item(18, "root", KindConcept, "root node")
	item(19, "leaf", KindConcept, "leaf node")
	item(20, "key", KindConcept)
	item(21, "value", KindConcept)
	item(22, "index", KindConcept)
	item(23, "hash function", KindConcept)
	item(24, "priority queue", KindConcept)
	item(25, "deque", KindConcept, "double ended queue")
	item(26, "subtree", KindConcept)
	item(27, "child", KindConcept, "child node")
	item(28, "parent", KindConcept, "parent node")
	item(29, "bucket", KindConcept)

	// ---- operations (ids 32..49, push/pop per the paper) -----------
	item(32, "push", KindOperation)
	item(33, "pop", KindOperation)
	item(34, "peek", KindOperation, "stack top", "top")
	item(35, "enqueue", KindOperation)
	item(36, "dequeue", KindOperation)
	item(37, "insert", KindOperation, "insertion")
	item(38, "delete", KindOperation, "deletion", "remove")
	item(39, "search", KindOperation, "find", "lookup")
	item(40, "traverse", KindOperation, "traversal")
	item(41, "sort", KindOperation, "sorting")
	item(42, "access", KindOperation)
	item(43, "heapify", KindOperation)
	item(44, "extract min", KindOperation, "extract minimum")
	item(45, "hash", KindOperation, "hashing")
	item(46, "rotate", KindOperation, "rotation")
	item(47, "front", KindOperation)
	item(48, "balance", KindOperation)
	item(49, "merge", KindOperation)

	// ---- properties (ids 60..69) -----------------------------------
	item(60, "lifo", KindProperty, "last in first out")
	item(61, "fifo", KindProperty, "first in first out")
	item(62, "complete", KindProperty)
	item(63, "balanced", KindProperty)
	item(64, "ordered", KindProperty, "sorted order")
	item(65, "dynamic", KindProperty)
	item(66, "contiguous", KindProperty)
	item(67, "acyclic", KindProperty)
	item(68, "heap property", KindProperty, "heap order")
	item(69, "rear", KindProperty)

	rel := func(from, to string, kind RelationKind) { must(o.Relate(from, to, kind)) }

	// ---- taxonomy ---------------------------------------------------
	rel("linear structure", "data structure", RelIsA)
	rel("stack", "linear structure", RelIsA)
	rel("queue", "linear structure", RelIsA)
	rel("deque", "linear structure", RelIsA)
	rel("array", "data structure", RelIsA)
	rel("linked list", "linear structure", RelIsA)
	rel("tree", "data structure", RelIsA)
	rel("binary tree", "tree", RelIsA)
	rel("binary search tree", "binary tree", RelIsA)
	rel("heap", "binary tree", RelIsA)
	rel("priority queue", "data structure", RelIsA)
	rel("graph", "data structure", RelIsA)
	rel("hash table", "data structure", RelIsA)

	// ---- structure --------------------------------------------------
	rel("node", "linked list", RelPartOf)
	rel("node", "tree", RelPartOf)
	rel("vertex", "graph", RelPartOf)
	rel("edge", "graph", RelPartOf)
	rel("root", "tree", RelPartOf)
	rel("leaf", "tree", RelPartOf)
	rel("subtree", "tree", RelPartOf)
	rel("child", "tree", RelPartOf)
	rel("parent", "tree", RelPartOf)
	rel("bucket", "hash table", RelPartOf)
	rel("element", "array", RelPartOf)
	rel("index", "array", RelPartOf)
	rel("key", "hash table", RelPartOf)
	rel("value", "hash table", RelPartOf)
	rel("hash function", "hash table", RelPartOf)
	rel("pointer", "node", RelRelatedTo)
	rel("key", "binary search tree", RelRelatedTo)
	rel("heap", "priority queue", RelRelatedTo)
	rel("child", "parent", RelRelatedTo)

	// ---- operations -------------------------------------------------
	rel("stack", "push", RelHasOperation)
	rel("stack", "pop", RelHasOperation)
	rel("stack", "peek", RelHasOperation)
	rel("queue", "enqueue", RelHasOperation)
	rel("queue", "dequeue", RelHasOperation)
	rel("queue", "front", RelHasOperation)
	rel("deque", "enqueue", RelHasOperation)
	rel("deque", "dequeue", RelHasOperation)
	rel("array", "access", RelHasOperation)
	rel("array", "sort", RelHasOperation)
	rel("array", "search", RelHasOperation)
	rel("linked list", "insert", RelHasOperation)
	rel("linked list", "delete", RelHasOperation)
	rel("linked list", "traverse", RelHasOperation)
	rel("tree", "insert", RelHasOperation)
	rel("tree", "delete", RelHasOperation)
	rel("tree", "traverse", RelHasOperation)
	rel("binary search tree", "search", RelHasOperation)
	rel("binary search tree", "rotate", RelHasOperation)
	rel("binary search tree", "balance", RelHasOperation)
	rel("heap", "heapify", RelHasOperation)
	rel("heap", "extract min", RelHasOperation)
	rel("heap", "insert", RelHasOperation)
	rel("priority queue", "insert", RelHasOperation)
	rel("priority queue", "extract min", RelHasOperation)
	rel("hash table", "hash", RelHasOperation)
	rel("hash table", "insert", RelHasOperation)
	rel("hash table", "delete", RelHasOperation)
	rel("hash table", "search", RelHasOperation)
	rel("graph", "traverse", RelHasOperation)
	rel("graph", "search", RelHasOperation)

	// ---- properties ---------------------------------------------------
	rel("stack", "lifo", RelHasProperty)
	rel("queue", "fifo", RelHasProperty)
	rel("queue", "rear", RelHasProperty)
	rel("heap", "complete", RelHasProperty)
	rel("heap", "heap property", RelHasProperty)
	rel("binary search tree", "ordered", RelHasProperty)
	rel("binary search tree", "balanced", RelHasProperty)
	rel("linked list", "dynamic", RelHasProperty)
	rel("array", "contiguous", RelHasProperty)
	rel("tree", "acyclic", RelHasProperty)

	// ---- definitions (descriptions quoted or adapted from standard
	// course material; the stack text is the paper's own §4.4 sample) --
	desc := func(name, text string) { must(o.SetDescription(name, text)) }
	desc("data structure",
		"A data structure is a way of organizing data in a computer so that it can be used efficiently.")
	desc("stack",
		"A stack is a Last In, First Out (LIFO) data structure in which all insertions and deletions "+
			"are restricted to one end called a top. There are three basic stack operations: push, pop, and stack top.")
	desc("queue",
		"A queue is a First In, First Out (FIFO) linear structure in which insertions take place at "+
			"the rear and deletions take place at the front.")
	desc("tree",
		"A tree is a hierarchical data structure of nodes connected by edges, with a single root node "+
			"and no cycles.")
	desc("array",
		"An array is a contiguous block of memory holding elements that are accessed by integer index "+
			"in constant time.")
	desc("linked list",
		"A linked list is a linear collection of nodes in which each node stores a value and a pointer "+
			"to the next node.")
	desc("binary tree",
		"A binary tree is a tree in which every node has at most two children, called the left child "+
			"and the right child.")
	desc("binary search tree",
		"A binary search tree is a binary tree in which the key of each node is greater than every key "+
			"in its left subtree and smaller than every key in its right subtree.")
	desc("heap",
		"A heap is a complete binary tree that satisfies the heap property: each parent's key is ordered "+
			"with respect to its children's keys.")
	desc("graph",
		"A graph is a set of vertices together with a set of edges connecting pairs of vertices.")
	desc("hash table",
		"A hash table stores key-value pairs in buckets selected by applying a hash function to the key, "+
			"giving expected constant-time insert, delete and search.")
	desc("priority queue",
		"A priority queue is a data structure in which each element has a priority and deletion always "+
			"removes the element with the highest priority.")
	desc("push", "Push adds a new element onto the top of a stack.")
	desc("pop", "Pop removes and returns the element at the top of a stack.")
	desc("peek", "Stack top returns the element at the top of a stack without removing it.")
	desc("enqueue", "Enqueue adds an element at the rear of a queue.")
	desc("dequeue", "Dequeue removes the element at the front of a queue.")
	desc("insert", "Insert places a new element into a data structure at the position required by its invariants.")
	desc("delete", "Delete removes an element from a data structure while preserving its invariants.")
	desc("search", "Search locates the element with a given key inside a data structure.")
	desc("traverse", "Traverse visits every element of a data structure exactly once in a systematic order.")
	desc("heapify", "Heapify restores the heap property by sifting an element up or down the tree.")
	desc("hash", "Hashing maps a key to a bucket index using a hash function.")
	desc("lifo", "Last in, first out: the element added most recently is removed first.")
	desc("fifo", "First in, first out: the element added earliest is removed first.")

	// The paper's example symbol on the stack item.
	must(o.AddSymbol("stack", "top",
		"A stack is a linear list in which all additions and deletions are restricted to one end "+
			"which is called the top."))
	must(o.SetAlgorithm("stack", "c",
		"push(S, x): S.top = S.top + 1; S[S.top] = x\npop(S): x = S[S.top]; S.top = S.top - 1; return x"))

	return o
}
