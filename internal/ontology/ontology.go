// Package ontology implements the Distance Learning Ontology of the
// ICDCSW'05 paper: a typed knowledge graph over course concepts
// ("Data Structure" domain by default) with definitions, operations,
// properties and relations, plus the semantic-distance evaluation the
// Semantic Agent and QA system are built on.
//
// The paper's Figure 5 sketches the ontology as a "Knowledge body" of
// KeyItems (e.g. stack id=3, tree id=4) with SubItems (push id=32,
// pop id=33), Definitions, Descriptions, Operations and Relations. The
// package also provides the paper's Ontology Definition pipeline: an
// XML codec matching the figure's markup and a DDL/DML mini-language
// with a translator and interpreter (the GUI of the paper is replaced
// by the ontologyctl command).
package ontology

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// ItemKind classifies a knowledge item.
type ItemKind int8

// Item kinds.
const (
	KindConcept   ItemKind = iota + 1 // a data structure or notion ("stack")
	KindOperation                     // an operation ("push")
	KindProperty                      // a property ("lifo")
)

// String returns the DDL spelling of the kind.
func (k ItemKind) String() string {
	switch k {
	case KindConcept:
		return "concept"
	case KindOperation:
		return "operation"
	case KindProperty:
		return "property"
	default:
		return fmt.Sprintf("ItemKind(%d)", int(k))
	}
}

// ParseItemKind parses a DDL kind spelling.
func ParseItemKind(s string) (ItemKind, error) {
	switch strings.ToLower(s) {
	case "concept":
		return KindConcept, nil
	case "operation":
		return KindOperation, nil
	case "property":
		return KindProperty, nil
	}
	return 0, fmt.Errorf("unknown item kind %q", s)
}

// RelationKind classifies an edge of the knowledge graph.
type RelationKind int8

// Relation kinds with their semantic-distance weights (see Weight).
const (
	RelIsA          RelationKind = iota + 1 // stack is-a linear structure
	RelHasOperation                         // stack has-operation push
	RelHasProperty                          // stack has-property lifo
	RelPartOf                               // node part-of tree
	RelRelatedTo                            // pointer related-to node
)

// String returns the DDL spelling of the relation kind.
func (k RelationKind) String() string {
	switch k {
	case RelIsA:
		return "isa"
	case RelHasOperation:
		return "hasoperation"
	case RelHasProperty:
		return "hasproperty"
	case RelPartOf:
		return "partof"
	case RelRelatedTo:
		return "relatedto"
	default:
		return fmt.Sprintf("RelationKind(%d)", int(k))
	}
}

// ParseRelationKind parses a DDL relation-kind spelling.
func ParseRelationKind(s string) (RelationKind, error) {
	switch strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(s, "-", ""), "_", "")) {
	case "isa":
		return RelIsA, nil
	case "hasoperation":
		return RelHasOperation, nil
	case "hasproperty":
		return RelHasProperty, nil
	case "partof":
		return RelPartOf, nil
	case "relatedto":
		return RelRelatedTo, nil
	}
	return 0, fmt.Errorf("unknown relation kind %q", s)
}

// Weight is the semantic-distance cost of traversing one edge of this
// kind. Loose "related-to" edges cost more than structural edges.
func (k RelationKind) Weight() int {
	if k == RelRelatedTo {
		return 2
	}
	return 1
}

// Symbol is a named auxiliary definition ("top" of a stack in the
// paper's example markup).
type Symbol struct {
	Name string
	Text string
}

// Definition is the textual knowledge attached to an item.
type Definition struct {
	Description string
	Symbols     []Symbol
	// Algorithm optionally carries pseudo-code; Type mirrors the
	// paper's `<Algorithm type="c">` attribute.
	Algorithm     string
	AlgorithmType string
}

// Item is one KeyItem of the knowledge body.
type Item struct {
	ID         int
	Name       string
	Aliases    []string
	Kind       ItemKind
	Definition Definition
}

// Relation is a directed, typed edge between two items.
type Relation struct {
	From int
	To   int
	Kind RelationKind
}

// Ontology is the thread-safe knowledge graph. The maps below are the
// authoritative mutable state, guarded by mu and touched only by the
// mutating API; all read traffic goes through an immutable compiled
// Snapshot published via an atomic pointer (see Snapshot), so readers
// never take the lock and mutation is copy-on-write.
type Ontology struct {
	mu     sync.RWMutex
	domain string
	items  map[int]*Item
	byName map[string]int // normalized name/alias -> id
	out    map[int][]Relation
	in     map[int][]Relation
	nextID int

	// gen counts successful mutations (guarded by mu); the published
	// snapshot records the gen it was compiled from as its Version.
	gen  uint64
	snap atomic.Pointer[Snapshot]

	// observer and lsn implement the write-ahead-log hook (guarded by
	// mu): every successful mutation is reported to the observer, which
	// returns the WAL sequence number it was journaled under. State and
	// JournalLSN therefore always move together.
	observer EventObserver
	lsn      uint64
}

// Event is one journaled ontology mutation — the authoring/teach
// operations (DDL, XML import, chat teaching) in replayable form.
type Event struct {
	Op   string `json:"op"`
	ID   int    `json:"id,omitempty"`   // explicit item id (add-item)
	Name string `json:"name,omitempty"` // item name, from-item, or domain
	Arg  string `json:"arg,omitempty"`  // alias / symbol name / algorithm type / to-item
	Text string `json:"text,omitempty"` // description / symbol / algorithm body
	Kind string `json:"kind,omitempty"` // item kind or relation kind spelling
}

// Event op names.
const (
	OpDomain    = "domain"
	OpAddItem   = "add-item"
	OpAlias     = "alias"
	OpDescribe  = "describe"
	OpSymbol    = "symbol"
	OpAlgorithm = "algorithm"
	OpRelate    = "relate"
	OpUnrelate  = "unrelate"
	OpRemove    = "remove"
)

// EventObserver is the write-ahead-log hook, invoked under the ontology
// write lock after each successful mutation; it returns the assigned
// WAL sequence number. Nil disables journaling.
type EventObserver func(Event) uint64

// SetObserver installs the journal hook (nil to detach).
func (o *Ontology) SetObserver(fn EventObserver) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.observer = fn
}

// JournalLSN returns the highest WAL sequence number reflected in the
// ontology's state (0 when never journaled).
func (o *Ontology) JournalLSN() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.lsn
}

// SetJournalLSN records the WAL position the state corresponds to
// (used by recovery after replaying the journal).
func (o *Ontology) SetJournalLSN(v uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.lsn = v
}

// emitLocked journals a successful mutation; o.mu must be held.
func (o *Ontology) emitLocked(ev Event) {
	if o.observer != nil {
		o.lsn = o.observer(ev)
	}
}

// Apply replays a journaled mutation through the regular mutating API.
// It is the recovery path of internal/journal and runs before an
// observer is attached, so replayed events are not re-journaled.
func (o *Ontology) Apply(ev Event) error {
	switch ev.Op {
	case OpDomain:
		o.SetDomain(ev.Name)
		return nil
	case OpAddItem:
		kind, err := ParseItemKind(ev.Kind)
		if err != nil {
			return err
		}
		_, err = o.AddItemWithID(ev.ID, ev.Name, kind)
		return err
	case OpAlias:
		return o.AddAlias(ev.Name, ev.Arg)
	case OpDescribe:
		return o.SetDescription(ev.Name, ev.Text)
	case OpSymbol:
		return o.AddSymbol(ev.Name, ev.Arg, ev.Text)
	case OpAlgorithm:
		return o.SetAlgorithm(ev.Name, ev.Arg, ev.Text)
	case OpRelate:
		kind, err := ParseRelationKind(ev.Kind)
		if err != nil {
			return err
		}
		return o.Relate(ev.Name, ev.Arg, kind)
	case OpUnrelate:
		return o.Unrelate(ev.Name, ev.Arg)
	case OpRemove:
		return o.RemoveItem(ev.Name)
	default:
		return fmt.Errorf("unknown ontology event op %q", ev.Op)
	}
}

// Snapshot returns the current immutable compiled view, building and
// publishing it if a mutation invalidated the previous one. The fast
// path is a single atomic load; the slow path runs at most once per
// mutation generation.
func (o *Ontology) Snapshot() *Snapshot {
	if s := o.snap.Load(); s != nil {
		return s
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if s := o.snap.Load(); s != nil {
		return s
	}
	s := o.buildSnapshotLocked()
	o.snap.Store(s)
	return s
}

// invalidateLocked marks the published snapshot stale after a
// successful mutation; o.mu must be held for writing.
func (o *Ontology) invalidateLocked() {
	o.gen++
	o.snap.Store(nil)
}

// New returns an empty ontology for the named domain.
func New(domain string) *Ontology {
	return &Ontology{
		domain: domain,
		items:  make(map[int]*Item),
		byName: make(map[string]int),
		out:    make(map[int][]Relation),
		in:     make(map[int][]Relation),
		nextID: 1,
	}
}

// Domain returns the domain label, e.g. "Data Structure".
func (o *Ontology) Domain() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.domain
}

// SetDomain renames the domain (the DDL interpreter's CREATE DOMAIN).
func (o *Ontology) SetDomain(domain string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.domain = domain
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpDomain, Name: domain})
}

// Normalize canonicalizes an item name for lookup: lower case, single
// spaces, hyphens treated as spaces. Already-normalized input — the
// overwhelmingly common case, since tokens arrive lowercased from the
// tokenizer and item names are stored normalized — is detected in one
// scan and returned as-is, so lookup misses cost zero allocations
// (strings.Fields allocates its slice unconditionally on the slow
// path, and misses outnumber hits on ordinary chat text).
func Normalize(name string) string {
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c >= 'A' && c <= 'Z') || c == '-' || c >= 0x80 || c < ' ' ||
			(c == ' ' && (i == 0 || i == len(name)-1 || name[i+1] == ' ')) {
			return normalizeSlow(name)
		}
	}
	return name
}

func normalizeSlow(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.ReplaceAll(name, "-", " ")
	return strings.Join(strings.Fields(name), " ")
}

// Errors reported by mutating operations.
var (
	ErrDuplicateName = errors.New("item name already defined")
	ErrDuplicateID   = errors.New("item id already in use")
	ErrNotFound      = errors.New("item not found")
)

// AddItem creates a new item with an auto-assigned ID.
func (o *Ontology) AddItem(name string, kind ItemKind) (*Item, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.addItemLocked(0, name, kind)
}

// AddItemWithID creates a new item with an explicit ID (used by the XML
// importer and to keep the paper's published IDs stable).
func (o *Ontology) AddItemWithID(id int, name string, kind ItemKind) (*Item, error) {
	if id <= 0 {
		return nil, fmt.Errorf("item id must be positive, got %d", id)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.addItemLocked(id, name, kind)
}

func (o *Ontology) addItemLocked(id int, name string, kind ItemKind) (*Item, error) {
	key := Normalize(name)
	if key == "" {
		return nil, errors.New("item name must not be empty")
	}
	if _, exists := o.byName[key]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	if id == 0 {
		id = o.nextID
	}
	if _, exists := o.items[id]; exists {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	if id >= o.nextID {
		o.nextID = id + 1
	}
	it := &Item{ID: id, Name: key, Kind: kind}
	o.items[id] = it
	o.byName[key] = id
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpAddItem, ID: id, Name: key, Kind: kind.String()})
	return it, nil
}

// AddAlias registers an alternative name for an item.
func (o *Ontology) AddAlias(name, alias string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	it, err := o.lookupLocked(name)
	if err != nil {
		return err
	}
	key := Normalize(alias)
	if key == "" {
		return errors.New("alias must not be empty")
	}
	if owner, exists := o.byName[key]; exists {
		if owner == it.ID {
			return nil
		}
		return fmt.Errorf("%w: %q", ErrDuplicateName, alias)
	}
	o.byName[key] = it.ID
	it.Aliases = append(it.Aliases, key)
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpAlias, Name: it.Name, Arg: key})
	return nil
}

// SetDescription sets the item's definition text.
func (o *Ontology) SetDescription(name, text string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	it, err := o.lookupLocked(name)
	if err != nil {
		return err
	}
	it.Definition.Description = text
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpDescribe, Name: it.Name, Text: text})
	return nil
}

// AddSymbol attaches a named symbol definition to an item.
func (o *Ontology) AddSymbol(name, symbolName, text string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	it, err := o.lookupLocked(name)
	if err != nil {
		return err
	}
	for i := range it.Definition.Symbols {
		if it.Definition.Symbols[i].Name == symbolName {
			it.Definition.Symbols[i].Text = text
			o.invalidateLocked()
			o.emitLocked(Event{Op: OpSymbol, Name: it.Name, Arg: symbolName, Text: text})
			return nil
		}
	}
	it.Definition.Symbols = append(it.Definition.Symbols, Symbol{Name: symbolName, Text: text})
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpSymbol, Name: it.Name, Arg: symbolName, Text: text})
	return nil
}

// SetAlgorithm attaches pseudo-code to an item.
func (o *Ontology) SetAlgorithm(name, algType, text string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	it, err := o.lookupLocked(name)
	if err != nil {
		return err
	}
	it.Definition.Algorithm = text
	it.Definition.AlgorithmType = algType
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpAlgorithm, Name: it.Name, Arg: algType, Text: text})
	return nil
}

// Relate adds a typed edge between two named items. Duplicate edges are
// ignored.
func (o *Ontology) Relate(from, to string, kind RelationKind) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, err := o.lookupLocked(from)
	if err != nil {
		return err
	}
	t, err := o.lookupLocked(to)
	if err != nil {
		return err
	}
	if f.ID == t.ID {
		return errors.New("item cannot relate to itself")
	}
	rel := Relation{From: f.ID, To: t.ID, Kind: kind}
	for _, r := range o.out[f.ID] {
		if r == rel {
			return nil
		}
	}
	o.out[f.ID] = append(o.out[f.ID], rel)
	o.in[t.ID] = append(o.in[t.ID], rel)
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpRelate, Name: f.Name, Arg: t.Name, Kind: kind.String()})
	return nil
}

// Unrelate removes every edge between the two named items (both
// directions).
func (o *Ontology) Unrelate(a, b string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	ia, err := o.lookupLocked(a)
	if err != nil {
		return err
	}
	ib, err := o.lookupLocked(b)
	if err != nil {
		return err
	}
	removePair := func(rels []Relation, x, y int) []Relation {
		keep := rels[:0]
		for _, r := range rels {
			if (r.From == x && r.To == y) || (r.From == y && r.To == x) {
				continue
			}
			keep = append(keep, r)
		}
		return keep
	}
	o.out[ia.ID] = removePair(o.out[ia.ID], ia.ID, ib.ID)
	o.out[ib.ID] = removePair(o.out[ib.ID], ia.ID, ib.ID)
	o.in[ia.ID] = removePair(o.in[ia.ID], ia.ID, ib.ID)
	o.in[ib.ID] = removePair(o.in[ib.ID], ia.ID, ib.ID)
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpUnrelate, Name: ia.Name, Arg: ib.Name})
	return nil
}

// RemoveItem deletes an item and all its edges.
func (o *Ontology) RemoveItem(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	it, err := o.lookupLocked(name)
	if err != nil {
		return err
	}
	delete(o.items, it.ID)
	delete(o.byName, it.Name)
	for _, a := range it.Aliases {
		delete(o.byName, a)
	}
	delete(o.out, it.ID)
	delete(o.in, it.ID)
	for id, rels := range o.out {
		keep := rels[:0]
		for _, r := range rels {
			if r.To != it.ID {
				keep = append(keep, r)
			}
		}
		o.out[id] = keep
	}
	for id, rels := range o.in {
		keep := rels[:0]
		for _, r := range rels {
			if r.From != it.ID {
				keep = append(keep, r)
			}
		}
		o.in[id] = keep
	}
	o.invalidateLocked()
	o.emitLocked(Event{Op: OpRemove, Name: it.Name})
	return nil
}

func (o *Ontology) lookupLocked(name string) (*Item, error) {
	id, ok := o.byName[Normalize(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return o.items[id], nil
}

// Lookup finds an item by name or alias, folding plural forms
// ("stacks" finds "stack"). The returned item is the current snapshot's
// immutable copy.
func (o *Ontology) Lookup(name string) (*Item, bool) {
	return o.Snapshot().Lookup(name)
}

func (o *Ontology) lookupFoldedLocked(name string) (*Item, bool) {
	key := Normalize(name)
	if id, ok := o.byName[key]; ok {
		return o.items[id], true
	}
	for _, folded := range pluralFolds(key) {
		if id, ok := o.byName[folded]; ok {
			return o.items[id], true
		}
	}
	return nil, false
}

// pluralFolds returns candidate base spellings for inflected forms:
// plurals ("stacks" -> "stack"), past participles ("pushed" -> "push")
// and gerunds ("inserting" -> "insert"), so the Semantic Keywords
// Filter recognizes "the data is pushed in this heap" (§4.1) as using
// the push operation.
func pluralFolds(key string) []string {
	var out []string
	switch {
	case strings.HasSuffix(key, "ies"):
		out = append(out, key[:len(key)-3]+"y")
	case strings.HasSuffix(key, "xes"), strings.HasSuffix(key, "ches"), strings.HasSuffix(key, "shes"), strings.HasSuffix(key, "sses"):
		out = append(out, key[:len(key)-2])
	case strings.HasSuffix(key, "s") && !strings.HasSuffix(key, "ss"):
		out = append(out, key[:len(key)-1])
	}
	if strings.HasSuffix(key, "es") {
		out = append(out, key[:len(key)-2])
	}
	if strings.HasSuffix(key, "ed") && len(key) > 4 {
		stem := key[:len(key)-2]
		out = append(out, stem, stem+"e")
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			out = append(out, stem[:len(stem)-1]) // popped -> pop
		}
	}
	if strings.HasSuffix(key, "ing") && len(key) > 5 {
		stem := key[:len(key)-3]
		out = append(out, stem, stem+"e")
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			out = append(out, stem[:len(stem)-1]) // popping -> pop
		}
	}
	return out
}

// ByID returns the item with the given ID (the snapshot's immutable
// copy).
func (o *Ontology) ByID(id int) (*Item, bool) {
	return o.Snapshot().ByID(id)
}

// Len returns the number of items.
func (o *Ontology) Len() int {
	return o.Snapshot().Len()
}

// Items returns all items ordered by ID.
func (o *Ontology) Items() []*Item {
	return o.Snapshot().Items()
}

// Relations returns all edges ordered by (From, To, Kind).
func (o *Ontology) Relations() []Relation {
	return o.Snapshot().Relations()
}

// Neighbors returns the relations touching the item (both directions).
func (o *Ontology) Neighbors(id int) []Relation {
	return o.Snapshot().Neighbors(id)
}

// OperationsOf returns the operations an item offers, including those
// inherited through is-a edges (a binary search tree inherits insert
// from tree if modelled that way).
func (o *Ontology) OperationsOf(name string) []*Item {
	return o.Snapshot().OperationsOf(name)
}

// PropertiesOf returns the properties an item carries, including those
// inherited through is-a edges.
func (o *Ontology) PropertiesOf(name string) []*Item {
	return o.Snapshot().PropertiesOf(name)
}

// ConceptsWith returns the concepts that directly offer the named
// operation or property.
func (o *Ontology) ConceptsWith(opOrProp string) []*Item {
	return o.Snapshot().ConceptsWith(opOrProp)
}

// ParentsOf returns the is-a parents of an item.
func (o *Ontology) ParentsOf(name string) []*Item {
	return o.Snapshot().ParentsOf(name)
}

// IsA reports whether item a transitively is-a item b.
func (o *Ontology) IsA(a, b string) bool {
	return o.Snapshot().IsA(a, b)
}

// isEmpty reports whether the definition carries no content.
func (d Definition) isEmpty() bool {
	return d.Description == "" && len(d.Symbols) == 0 && d.Algorithm == "" && d.AlgorithmType == ""
}

// hasExact reports whether an item exists under exactly this normalized
// name or alias, with no morphological folding.
func (o *Ontology) hasExact(name string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.byName[Normalize(name)]
	return ok
}
