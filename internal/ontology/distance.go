package ontology

import (
	"container/heap"
	"fmt"
	"strings"
)

// Unreachable is the distance reported when no path joins two items.
const Unreachable = 1 << 30

// DefaultRelatedThreshold is the semantic distance at or under which two
// items count as related (see DESIGN.md, design decision D2). With unit
// weights this admits an item and its direct operation (distance 1) and
// two operations of the same concept (distance 2), while "tree" and
// "pop" — joined only through the data-structure root — stay unrelated,
// matching the paper's §4.3 example.
const DefaultRelatedThreshold = 2

// Distance returns the weighted shortest-path distance between two named
// items, traversing edges in both directions. It returns Unreachable if
// either item is missing or no path exists.
func (o *Ontology) Distance(a, b string) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ia, ok := o.lookupFoldedLocked(a)
	if !ok {
		return Unreachable
	}
	ib, ok := o.lookupFoldedLocked(b)
	if !ok {
		return Unreachable
	}
	dist, _ := o.dijkstraLocked(ia.ID, ib.ID)
	return dist
}

// Related reports whether the semantic distance between the two items is
// at most threshold. A non-positive threshold uses
// DefaultRelatedThreshold.
func (o *Ontology) Related(a, b string, threshold int) bool {
	if threshold <= 0 {
		threshold = DefaultRelatedThreshold
	}
	return o.Distance(a, b) <= threshold
}

// PathStep is one hop of a semantic path, used to explain verdicts to
// learners ("pop is an operation of stack, not of tree").
type PathStep struct {
	From *Item
	To   *Item
	Kind RelationKind
	// Forward is true when the edge is traversed From->To in its
	// stored direction.
	Forward bool
}

// Path returns the weighted shortest path between two items as a list of
// steps, or nil if unreachable.
func (o *Ontology) Path(a, b string) []PathStep {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ia, ok := o.lookupFoldedLocked(a)
	if !ok {
		return nil
	}
	ib, ok := o.lookupFoldedLocked(b)
	if !ok {
		return nil
	}
	dist, prev := o.dijkstraLocked(ia.ID, ib.ID)
	if dist >= Unreachable {
		return nil
	}
	var steps []PathStep
	for at := ib.ID; at != ia.ID; {
		p := prev[at]
		step := PathStep{
			From:    o.items[p.from],
			To:      o.items[at],
			Kind:    p.kind,
			Forward: p.forward,
		}
		steps = append(steps, step)
		at = p.from
	}
	// Reverse into a->b order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return steps
}

// DescribePath renders a path as an English explanation.
func DescribePath(steps []PathStep) string {
	if len(steps) == 0 {
		return "no relation found"
	}
	parts := make([]string, 0, len(steps))
	for _, s := range steps {
		var phrase string
		from, to := s.From.Name, s.To.Name
		switch s.Kind {
		case RelIsA:
			if s.Forward {
				phrase = fmt.Sprintf("%s is a %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s is a kind of %s", to, from)
			}
		case RelHasOperation:
			if s.Forward {
				phrase = fmt.Sprintf("%s has the operation %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s is an operation of %s", to, from)
			}
		case RelHasProperty:
			if s.Forward {
				phrase = fmt.Sprintf("%s has the property %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s is a property of %s", to, from)
			}
		case RelPartOf:
			if s.Forward {
				phrase = fmt.Sprintf("%s is part of %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s contains %s", from, to)
			}
		default:
			phrase = fmt.Sprintf("%s is related to %s", from, to)
		}
		parts = append(parts, phrase)
	}
	return strings.Join(parts, ", and ")
}

type prevEdge struct {
	from    int
	kind    RelationKind
	forward bool
}

type pqItem struct {
	id   int
	dist int
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int            { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool  { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)       { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x interface{}) { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	item := old[n-1]
	*pq = old[:n-1]
	return item
}

// dijkstraLocked runs weighted shortest path from src, stopping early at
// dst, and returns the distance plus the predecessor map.
func (o *Ontology) dijkstraLocked(src, dst int) (int, map[int]prevEdge) {
	dist := map[int]int{src: 0}
	prev := make(map[int]prevEdge)
	pq := priorityQueue{{id: src, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(&pq).(pqItem)
		if cur.dist > dist[cur.id] {
			continue
		}
		if cur.id == dst {
			return cur.dist, prev
		}
		relax := func(to int, kind RelationKind, forward bool) {
			nd := cur.dist + kind.Weight()
			if d, seen := dist[to]; !seen || nd < d {
				dist[to] = nd
				prev[to] = prevEdge{from: cur.id, kind: kind, forward: forward}
				heap.Push(&pq, pqItem{id: to, dist: nd})
			}
		}
		for _, r := range o.out[cur.id] {
			relax(r.To, r.Kind, true)
		}
		for _, r := range o.in[cur.id] {
			relax(r.From, r.Kind, false)
		}
	}
	if d, ok := dist[dst]; ok {
		return d, prev
	}
	return Unreachable, prev
}

// TermMatch is one ontology term located in a token stream.
type TermMatch struct {
	Item  *Item
	Start int // first token index
	End   int // one past the last token index
	Text  string
}

// ExtractTerms scans a tokenized sentence for ontology terms using
// greedy longest-first matching, so "binary search tree" is found as one
// term rather than three. Plural forms fold to their singular items.
// This is the Semantic Keywords Filter primitive of the paper's §4.3.
func (o *Ontology) ExtractTerms(tokens []string) []TermMatch {
	o.mu.RLock()
	defer o.mu.RUnlock()
	maxLen := 1
	for name := range o.byName {
		if n := strings.Count(name, " ") + 1; n > maxLen {
			maxLen = n
		}
	}
	var out []TermMatch
	for i := 0; i < len(tokens); {
		matched := false
		for l := min(maxLen, len(tokens)-i); l >= 1 && !matched; l-- {
			phrase := strings.Join(tokens[i:i+l], " ")
			if it, ok := o.lookupFoldedLocked(phrase); ok {
				out = append(out, TermMatch{Item: it, Start: i, End: i + l, Text: phrase})
				i += l
				matched = true
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
