package ontology

import (
	"fmt"
	"strings"
)

// Unreachable is the distance reported when no path joins two items.
const Unreachable = 1 << 30

// DefaultRelatedThreshold is the semantic distance at or under which two
// items count as related (see DESIGN.md, design decision D2). With unit
// weights this admits an item and its direct operation (distance 1) and
// two operations of the same concept (distance 2), while "tree" and
// "pop" — joined only through the data-structure root — stay unrelated,
// matching the paper's §4.3 example.
const DefaultRelatedThreshold = 2

// Distance returns the weighted shortest-path distance between two named
// items, traversing edges in both directions. It returns Unreachable if
// either item is missing or no path exists. The query rides the current
// immutable snapshot: no lock, and pairs within SnapshotTableRadius are
// a table lookup.
func (o *Ontology) Distance(a, b string) int {
	return o.Snapshot().Distance(a, b)
}

// Related reports whether the semantic distance between the two items is
// at most threshold. A non-positive threshold uses
// DefaultRelatedThreshold.
func (o *Ontology) Related(a, b string, threshold int) bool {
	return o.Snapshot().Related(a, b, threshold)
}

// PathStep is one hop of a semantic path, used to explain verdicts to
// learners ("pop is an operation of stack, not of tree").
type PathStep struct {
	From *Item
	To   *Item
	Kind RelationKind
	// Forward is true when the edge is traversed From->To in its
	// stored direction.
	Forward bool
}

// Path returns the weighted shortest path between two items as a list of
// steps, or nil if unreachable.
func (o *Ontology) Path(a, b string) []PathStep {
	return o.Snapshot().Path(a, b)
}

// DescribePath renders a path as an English explanation.
func DescribePath(steps []PathStep) string {
	if len(steps) == 0 {
		return "no relation found"
	}
	parts := make([]string, 0, len(steps))
	for _, s := range steps {
		var phrase string
		from, to := s.From.Name, s.To.Name
		switch s.Kind {
		case RelIsA:
			if s.Forward {
				phrase = fmt.Sprintf("%s is a %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s is a kind of %s", to, from)
			}
		case RelHasOperation:
			if s.Forward {
				phrase = fmt.Sprintf("%s has the operation %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s is an operation of %s", to, from)
			}
		case RelHasProperty:
			if s.Forward {
				phrase = fmt.Sprintf("%s has the property %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s is a property of %s", to, from)
			}
		case RelPartOf:
			if s.Forward {
				phrase = fmt.Sprintf("%s is part of %s", from, to)
			} else {
				phrase = fmt.Sprintf("%s contains %s", from, to)
			}
		default:
			phrase = fmt.Sprintf("%s is related to %s", from, to)
		}
		parts = append(parts, phrase)
	}
	return strings.Join(parts, ", and ")
}

// TermMatch is one ontology term located in a token stream.
type TermMatch struct {
	Item  *Item
	Start int // first token index
	End   int // one past the last token index
	Text  string
}

// ExtractTerms scans a tokenized sentence for ontology terms using
// greedy longest-first matching, so "binary search tree" is found as one
// term rather than three. Plural forms fold to their singular items.
// This is the Semantic Keywords Filter primitive of the paper's §4.3,
// served by the compiled snapshot's phrase index.
func (o *Ontology) ExtractTerms(tokens []string) []TermMatch {
	return o.Snapshot().ExtractTerms(tokens)
}
