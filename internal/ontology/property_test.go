package ontology

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomOntology builds a random but well-formed knowledge graph.
func randomOntology(rng *rand.Rand) *Ontology {
	o := New("random")
	nItems := 5 + rng.Intn(20)
	kinds := []ItemKind{KindConcept, KindOperation, KindProperty}
	names := make([]string, 0, nItems)
	for i := 0; i < nItems; i++ {
		name := fmt.Sprintf("item%d", i)
		if _, err := o.AddItem(name, kinds[rng.Intn(len(kinds))]); err != nil {
			panic(err)
		}
		names = append(names, name)
	}
	relKinds := []RelationKind{RelIsA, RelHasOperation, RelHasProperty, RelPartOf, RelRelatedTo}
	nEdges := rng.Intn(3 * nItems)
	for i := 0; i < nEdges; i++ {
		a := names[rng.Intn(len(names))]
		b := names[rng.Intn(len(names))]
		if a == b {
			continue
		}
		_ = o.Relate(a, b, relKinds[rng.Intn(len(relKinds))])
	}
	return o
}

func TestPropertyDistanceIsAMetricOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		o := randomOntology(rng)
		items := o.Items()
		// Identity and symmetry on all pairs; triangle inequality on a
		// sample of triples.
		for i := 0; i < len(items); i++ {
			if d := o.Distance(items[i].Name, items[i].Name); d != 0 {
				t.Fatalf("trial %d: self distance %d", trial, d)
			}
			for j := i + 1; j < len(items); j++ {
				ab := o.Distance(items[i].Name, items[j].Name)
				ba := o.Distance(items[j].Name, items[i].Name)
				if ab != ba {
					t.Fatalf("trial %d: asymmetric %s/%s: %d vs %d",
						trial, items[i].Name, items[j].Name, ab, ba)
				}
			}
		}
		for k := 0; k < 50; k++ {
			a := items[rng.Intn(len(items))].Name
			b := items[rng.Intn(len(items))].Name
			c := items[rng.Intn(len(items))].Name
			ab, bc, ac := o.Distance(a, b), o.Distance(b, c), o.Distance(a, c)
			if ab < Unreachable && bc < Unreachable && ac > ab+bc {
				t.Fatalf("trial %d: triangle violated: d(%s,%s)=%d > %d+%d", trial, a, c, ac, ab, bc)
			}
		}
	}
}

func TestPropertyPathWeightsSumToDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		o := randomOntology(rng)
		items := o.Items()
		for k := 0; k < 30; k++ {
			a := items[rng.Intn(len(items))].Name
			b := items[rng.Intn(len(items))].Name
			d := o.Distance(a, b)
			steps := o.Path(a, b)
			if d >= Unreachable {
				if steps != nil {
					t.Fatalf("trial %d: unreachable pair has a path", trial)
				}
				continue
			}
			if a == b {
				continue
			}
			sum := 0
			for _, s := range steps {
				sum += s.Kind.Weight()
			}
			if sum != d {
				t.Fatalf("trial %d: path weight %d != distance %d for %s→%s", trial, sum, d, a, b)
			}
			// Path endpoints must be the queried items.
			if steps[0].From.Name != a && steps[0].To.Name != a {
				t.Fatalf("trial %d: path does not start at %s", trial, a)
			}
		}
	}
}

func TestPropertyXMLRoundTripPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		o := randomOntology(rng)
		var buf bytes.Buffer
		if err := o.EncodeXML(&buf); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		back, err := DecodeXML(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: decode: %v\n%s", trial, err, buf.String())
		}
		if back.Len() != o.Len() {
			t.Fatalf("trial %d: item count %d -> %d", trial, o.Len(), back.Len())
		}
		items := o.Items()
		for k := 0; k < 40; k++ {
			a := items[rng.Intn(len(items))].Name
			b := items[rng.Intn(len(items))].Name
			if d1, d2 := o.Distance(a, b), back.Distance(a, b); d1 != d2 {
				t.Fatalf("trial %d: distance(%s,%s) %d -> %d after XML round trip", trial, a, b, d1, d2)
			}
		}
	}
}

func TestPropertyDDLRoundTripPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		o := randomOntology(rng)
		in := NewInterpreter(nil)
		if err := in.Run(o.ExportDDL()); err != nil {
			t.Fatalf("trial %d: replay: %v", trial, err)
		}
		back := in.Ontology()
		if back.Len() != o.Len() {
			t.Fatalf("trial %d: item count %d -> %d", trial, o.Len(), back.Len())
		}
		items := o.Items()
		for k := 0; k < 40; k++ {
			a := items[rng.Intn(len(items))].Name
			b := items[rng.Intn(len(items))].Name
			if d1, d2 := o.Distance(a, b), back.Distance(a, b); d1 != d2 {
				t.Fatalf("trial %d: distance(%s,%s) %d -> %d after DDL round trip", trial, a, b, d1, d2)
			}
		}
	}
}
