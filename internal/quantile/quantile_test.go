package quantile

import (
	"math/rand"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestDurationEmpty(t *testing.T) {
	if got := Duration(nil, 0.5); got != 0 {
		t.Errorf("Duration(nil) = %v, want 0", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestDurationSingleSample(t *testing.T) {
	s := []time.Duration{ms(7)}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := Duration(s, q); got != ms(7) {
			t.Errorf("Duration(q=%v) = %v, want 7ms", q, got)
		}
	}
}

// TestDurationNearestRank pins the convention the package exists to
// centralize: idx = q·(n−1) on the ascending sort.
func TestDurationNearestRank(t *testing.T) {
	// 1..10ms, shuffled.
	s := []time.Duration{ms(3), ms(9), ms(1), ms(7), ms(5), ms(10), ms(2), ms(8), ms(6), ms(4)}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, ms(1)},    // idx 0
		{0.5, ms(5)},  // idx int(0.5*9) = 4
		{0.95, ms(9)}, // idx int(0.95*9) = 8
		{0.99, ms(9)}, // idx int(0.99*9) = 8
		{1, ms(10)},   // idx 9
	}
	for _, c := range cases {
		if got := Duration(s, c.q); got != c.want {
			t.Errorf("Duration(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestDurationDoesNotMutateInput(t *testing.T) {
	s := []time.Duration{ms(3), ms(1), ms(2)}
	_ = Duration(s, 0.5)
	if s[0] != ms(3) || s[1] != ms(1) || s[2] != ms(2) {
		t.Errorf("input mutated: %v", s)
	}
}

func TestQuantilesMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := make([]time.Duration, 500)
	for i := range s {
		s[i] = time.Duration(rng.Intn(1_000_000))
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		got := Duration(s, q)
		if got < prev {
			t.Fatalf("quantiles not monotonic: q=%v gave %v after %v", q, got, prev)
		}
		prev = got
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]time.Duration{ms(1), ms(2), ms(3)}); got != ms(2) {
		t.Errorf("Mean = %v, want 2ms", got)
	}
	// Integer division truncates toward zero, like time arithmetic.
	if got := Mean([]time.Duration{ms(1), ms(2)}); got != 1500*time.Microsecond {
		t.Errorf("Mean = %v, want 1.5ms", got)
	}
}
