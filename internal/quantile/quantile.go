// Package quantile holds the one latency-sample summary used by every
// experiment (eval.Latencies, loadgen) so their quantile convention —
// nearest-rank on the sorted samples, idx = q·(n−1) — cannot drift
// apart between E6-style closed-loop runs and E12's open-loop runs.
package quantile

import (
	"sort"
	"time"
)

// Duration returns the q-quantile (0 <= q <= 1) of the samples.
// The input is not modified.
func Duration(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Mean returns the average of the samples.
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return sum / time.Duration(len(samples))
}
