package chat

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Binary framing (negotiated per connection, DESIGN.md D13):
//
//	frame   := len(4, LE) payload            len = payload size, ≤ 64 KiB
//	payload := type(1) flags(1) [time(12)] str(Room) str(From)
//	           str(Text) str(Agent) str(Wire) [str(type name)]
//	time    := unix seconds (8, LE) nanoseconds (4, LE), present iff
//	           flagTime; a zero Time is omitted
//	str     := uvarint length, bytes
//
// The type byte indexes the known message types; 0 means "other" and a
// trailing str carries the literal type name, so any Message round-trips
// (the fuzz target depends on that totality).

const (
	flagPrivate = 1 << 0
	flagTime    = 1 << 1
	flagResume  = 1 << 2
)

// typeCodes maps the protocol's message types to frame type bytes.
// Code 0 is reserved for "other".
var typeCodes = map[MsgType]byte{
	TypeJoin: 1, TypeSay: 2, TypeLeave: 3, TypeWelcome: 4,
	TypeChat: 5, TypeSystem: 6, TypeAgent: 7, TypeError: 8,
}

var typeNames = [...]MsgType{
	1: TypeJoin, 2: TypeSay, 3: TypeLeave, 4: TypeWelcome,
	5: TypeChat, 6: TypeSystem, 7: TypeAgent, 8: TypeError,
}

func appendUvarintString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBinaryFrame appends m as one complete frame (length prefix
// included) to dst. It never fails: every Message has an encoding.
func appendBinaryFrame(dst []byte, m Message) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below

	code := typeCodes[m.Type]
	flags := byte(0)
	if m.Private {
		flags |= flagPrivate
	}
	if !m.Time.IsZero() {
		flags |= flagTime
	}
	if m.Resume {
		flags |= flagResume
	}
	dst = append(dst, code, flags)
	if flags&flagTime != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Time.Unix()))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Time.Nanosecond()))
	}
	dst = appendUvarintString(dst, m.Room)
	dst = appendUvarintString(dst, m.From)
	dst = appendUvarintString(dst, m.Text)
	dst = appendUvarintString(dst, m.Agent)
	dst = appendUvarintString(dst, string(m.Wire))
	if code == 0 {
		dst = appendUvarintString(dst, string(m.Type))
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// internCap bounds the decode-side string table; beyond it, repeated
// names simply allocate (a hostile peer cannot grow the table without
// bound).
const internCap = 4096

// internString returns a string equal to b, reusing a previously decoded
// one when possible. Only short strings are worth the table space.
func (c *Codec) internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > 64 {
		return string(b)
	}
	if s, ok := c.intern[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if c.intern == nil {
		c.intern = make(map[string]string)
	}
	if len(c.intern) < internCap {
		c.intern[s] = s
	}
	return s
}

// cutUvarintString splits one length-prefixed string off b.
func cutUvarintString(b []byte) (s, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return nil, nil, fmt.Errorf("chat: corrupt binary frame string")
	}
	return b[w : w+int(n)], b[w+int(n):], nil
}

// readBinary reads and decodes one frame.
func (c *Codec) readBinary() (Message, error) {
	var m Message
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return m, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxLineBytes {
		// Reject before buffering: the payload is never read.
		return m, fmt.Errorf("%w (binary frame of %d bytes)", ErrTooLarge, n)
	}
	if n < 2 {
		return m, fmt.Errorf("chat: binary frame too short (%d bytes)", n)
	}
	if cap(c.readBuf) < int(n) {
		c.readBuf = make([]byte, n)
	}
	buf := c.readBuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return m, err
	}

	code, flags := buf[0], buf[1]
	rest := buf[2:]
	if flags&flagTime != 0 {
		if len(rest) < 12 {
			return m, fmt.Errorf("chat: corrupt binary frame time")
		}
		sec := int64(binary.LittleEndian.Uint64(rest))
		nsec := binary.LittleEndian.Uint32(rest[8:])
		if nsec >= 1e9 {
			return m, fmt.Errorf("chat: corrupt binary frame time")
		}
		m.Time = time.Unix(sec, int64(nsec))
		rest = rest[12:]
	}
	m.Private = flags&flagPrivate != 0
	m.Resume = flags&flagResume != 0

	var field []byte
	var err error
	if field, rest, err = cutUvarintString(rest); err != nil {
		return m, err
	}
	m.Room = c.internString(field)
	if field, rest, err = cutUvarintString(rest); err != nil {
		return m, err
	}
	m.From = c.internString(field)
	if field, rest, err = cutUvarintString(rest); err != nil {
		return m, err
	}
	m.Text = string(field)
	if field, rest, err = cutUvarintString(rest); err != nil {
		return m, err
	}
	m.Agent = c.internString(field)
	if field, rest, err = cutUvarintString(rest); err != nil {
		return m, err
	}
	m.Wire = Wire(c.internString(field))

	if int(code) < len(typeNames) && code > 0 {
		m.Type = typeNames[code]
	} else if code == 0 {
		if field, rest, err = cutUvarintString(rest); err != nil {
			return m, err
		}
		m.Type = MsgType(c.internString(field))
	} else {
		return m, fmt.Errorf("chat: unknown binary frame type %d", code)
	}
	if len(rest) != 0 {
		return m, fmt.Errorf("chat: %d trailing bytes in binary frame", len(rest))
	}
	return m, nil
}

// writeBinary encodes m into the codec's scratch buffer and flushes it.
func (c *Codec) writeBinary(m Message) error {
	c.writeBuf = appendBinaryFrame(c.writeBuf[:0], m)
	if len(c.writeBuf) > maxLineBytes+4 {
		return fmt.Errorf("%w (binary frame of %d bytes)", ErrTooLarge, len(c.writeBuf)-4)
	}
	return c.WriteRaw(c.writeBuf)
}
