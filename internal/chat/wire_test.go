package chat

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func newBinaryPipeCodec() *Codec {
	var buf bytes.Buffer
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})
	c.SetReadWire(WireBinary)
	c.SetWriteWire(WireBinary)
	return c
}

func sameMessage(a, b Message) bool {
	return a.Type == b.Type && a.Room == b.Room && a.From == b.From &&
		a.Text == b.Text && a.Agent == b.Agent && a.Private == b.Private &&
		a.Wire == b.Wire && a.Time.Equal(b.Time)
}

func TestBinaryRoundTrip(t *testing.T) {
	msgs := []Message{
		{},
		{Type: TypeSay, Text: "hello"},
		{Type: TypeJoin, Room: "algo", From: "alice", Wire: WireBinary},
		{Type: TypeWelcome, Room: "algo", Text: "welcome, alice", Wire: WireBinary,
			Time: time.Date(2026, 3, 2, 9, 0, 0, 123456789, time.UTC)},
		{Type: TypeAgent, Room: "r", Agent: "QA_System", Text: "yes", Private: true,
			Time: time.Unix(0, 1)},
		{Type: MsgType("custom-extension"), Text: "forward compatible"},
		{Type: TypeChat, From: "bob", Text: strings.Repeat("长句 ", 1000)},
		{Type: TypeSystem, Time: time.Unix(-5, 999999999)},
	}
	codec := newBinaryPipeCodec()
	for _, m := range msgs {
		if err := codec.Write(m); err != nil {
			t.Fatalf("write %+v: %v", m, err)
		}
		got, err := codec.Read()
		if err != nil {
			t.Fatalf("read back %+v: %v", m, err)
		}
		if !sameMessage(m, got) {
			t.Errorf("round trip changed message:\n in: %+v\nout: %+v", m, got)
		}
	}
}

func TestBinaryDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty payload":   {0, 0, 0, 0},
		"short payload":   {1, 0, 0, 0, 5},
		"bad type code":   append([]byte{2, 0, 0, 0}, 99, 0),
		"truncated body":  {12, 0, 0, 0, 5, 0},
		"oversized frame": {0xff, 0xff, 0xff, 0xff},
		"bad string len":  append([]byte{6, 0, 0, 0}, 5, 0, 0xff, 0xff, 0xff, 0xff),
		"bad nanos": append([]byte{20, 0, 0, 0}, 5, flagTime,
			0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0),
	}
	for name, data := range cases {
		codec := NewCodec(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard})
		codec.SetReadWire(WireBinary)
		if _, err := codec.Read(); err == nil {
			t.Errorf("%s: decoder accepted garbage frame % x", name, data)
		}
	}
}

// errAfter serves b's content forever (cycling) and fails the test if
// more than limit bytes are consumed — the tripwire that distinguishes
// "rejected during the read" from "buffered the whole flood first".
type errAfter struct {
	b     []byte
	n     int
	limit int
}

func (r *errAfter) Read(p []byte) (int, error) {
	if r.n > r.limit {
		return 0, fmt.Errorf("reader consumed %d bytes, over the %d tripwire", r.n, r.limit)
	}
	for i := range p {
		p[i] = r.b[(r.n+i)%len(r.b)]
	}
	r.n += len(p)
	return len(p), nil
}

// TestReadBoundedOnNewlineFreeFlood is the regression test for the
// unbounded-memory bug: a client streaming bytes with no newline used
// to accumulate in memory until the line ended. The codec must now
// fail with ErrTooLarge at the 64 KiB cap, long before the tripwire.
func TestReadBoundedOnNewlineFreeFlood(t *testing.T) {
	r := &errAfter{b: []byte(`{"type":"say","text":"aaaaaaaa`), limit: 4 * maxLineBytes}
	codec := NewCodec(struct {
		io.Reader
		io.Writer
	}{r, io.Discard})
	_, err := codec.Read()
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("newline-free flood: got err %v, want ErrTooLarge", err)
	}
	if r.n > 2*maxLineBytes {
		t.Fatalf("codec consumed %d bytes before rejecting (cap %d)", r.n, maxLineBytes)
	}
}

// TestBinaryReadBoundedOnHugeFrame mirrors the regression for binary
// framing: a header advertising an over-cap frame is rejected before
// any payload is buffered.
func TestBinaryReadBoundedOnHugeFrame(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	r := &errAfter{b: append(hdr[:], bytes.Repeat([]byte{'x'}, 1024)...), limit: 4 * maxLineBytes}
	codec := NewCodec(struct {
		io.Reader
		io.Writer
	}{r, io.Discard})
	codec.SetReadWire(WireBinary)
	_, err := codec.Read()
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge frame: got err %v, want ErrTooLarge", err)
	}
}

// TestServerDropsOversizedSender proves the server half of the fix:
// the flooding connection is dropped, and the room stays healthy.
func TestServerDropsOversizedSender(t *testing.T) {
	addr := startServer(t, ServerOptions{})

	flooder, err := Dial(addr, "room", "flooder", time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer flooder.Close()
	watcher, err := Dial(addr, "room", "watcher", time.Second)
	if err != nil {
		t.Fatalf("dial watcher: %v", err)
	}
	defer watcher.Close()

	// Bypass Say to write a newline-free flood directly. Just over the
	// cap: enough to trigger the reject, small enough that the write
	// cannot block on loopback buffers after the server stops reading.
	if _, err := flooder.conn.Write(bytes.Repeat([]byte{'a'}, maxLineBytes+8192)); err != nil {
		t.Fatalf("flood write: %v", err)
	}
	waitFor(t, watcher, 2*time.Second, func(m Message) bool {
		return m.Type == TypeSystem && strings.Contains(m.Text, "flooder left")
	})
	if err := watcher.Say("still alive"); err != nil {
		t.Fatalf("watcher say after flood: %v", err)
	}
	waitFor(t, watcher, time.Second, func(m Message) bool {
		return m.Type == TypeChat && m.Text == "still alive"
	})
}

// TestMixedWireInterop joins a text client and a binary client to the
// same supervised room and requires both to observe identical broadcast
// order and identical agent verdicts — the two framings must be pure
// transport, never behavior.
func TestMixedWireInterop(t *testing.T) {
	sup := SupervisorFunc(func(room, user, text string) []Response {
		return []Response{{Agent: "Learning_Angel", Text: "verdict: " + text}}
	})
	addr := startServer(t, ServerOptions{Supervisor: sup})

	textC, err := DialWire(addr, "room", "texty", WireText, time.Second)
	if err != nil {
		t.Fatalf("text dial: %v", err)
	}
	defer textC.Close()
	binC, err := DialWire(addr, "room", "binny", WireBinary, time.Second)
	if err != nil {
		t.Fatalf("binary dial: %v", err)
	}
	defer binC.Close()

	waitFor(t, textC, time.Second, func(m Message) bool {
		return m.Type == TypeSystem && strings.Contains(m.Text, "binny joined")
	})

	const rounds = 20
	for i := 0; i < rounds; i++ {
		var c *Client
		if i%2 == 0 {
			c = textC
		} else {
			c = binC
		}
		if err := c.Say(fmt.Sprintf("line %d", i)); err != nil {
			t.Fatalf("say %d: %v", i, err)
		}
		// Wait for the round's verdict on both clients before the next
		// say, so the expected global order is deterministic.
		want := fmt.Sprintf("verdict: line %d", i)
		for _, cl := range []*Client{textC, binC} {
			waitFor(t, cl, 2*time.Second, func(m Message) bool {
				return m.Type == TypeAgent && m.Text == want
			})
		}
	}
}

// TestMixedWireBroadcastOrder checks the stronger property: the exact
// per-client transcript (chat and agent messages) is identical across
// wire formats.
func TestMixedWireBroadcastOrder(t *testing.T) {
	sup := SupervisorFunc(func(room, user, text string) []Response {
		return []Response{{Agent: "Semantic_Agent", Text: "saw " + text}}
	})
	// Synchronous supervision: chat and agent broadcasts come from one
	// goroutine, so the global order is deterministic and any divergence
	// between the two transcripts can only be a wire-format bug.
	addr := startServer(t, ServerOptions{Supervisor: sup})

	textC, err := DialWire(addr, "room", "texty", WireText, time.Second)
	if err != nil {
		t.Fatalf("text dial: %v", err)
	}
	defer textC.Close()
	binC, err := DialWire(addr, "room", "binny", WireBinary, time.Second)
	if err != nil {
		t.Fatalf("binary dial: %v", err)
	}
	defer binC.Close()
	waitFor(t, textC, time.Second, func(m Message) bool {
		return m.Type == TypeSystem && strings.Contains(m.Text, "binny joined")
	})

	const rounds = 10
	for i := 0; i < rounds; i++ {
		if err := textC.Say(fmt.Sprintf("msg %d", i)); err != nil {
			t.Fatalf("say %d: %v", i, err)
		}
	}
	transcript := func(c *Client) []string {
		var out []string
		for len(out) < 2*rounds {
			m := waitFor(t, c, 2*time.Second, func(m Message) bool {
				return m.Type == TypeChat || m.Type == TypeAgent
			})
			out = append(out, fmt.Sprintf("%s|%s|%s|%s", m.Type, m.From, m.Agent, m.Text))
		}
		return out
	}
	textSeen := transcript(textC)
	binSeen := transcript(binC)
	for i := range textSeen {
		if textSeen[i] != binSeen[i] {
			t.Fatalf("transcripts diverge at %d:\n text: %v\n  bin: %v", i, textSeen, binSeen)
		}
	}
}
