package chat

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// fuzzSeeds are the inline protocol-decoder seeds; the checked-in
// corpus under testdata/fuzz/FuzzCodecRead extends them.
var fuzzSeeds = []string{
	`{"type":"say","text":"hello"}` + "\n",
	`{"type":"join","room":"algo","from":"alice"}` + "\n",
	`{"type":"agent","agent":"QA_System","text":"yes","private":true,"time":"2026-03-02T09:00:00Z"}` + "\n",
	`{"type":"welcome","room":"algo","text":"welcome, alice"}` + "\n",
	`{}` + "\n",
	"\n",
	"not json at all\n",
	`{"type":"say","text":"unterminated`,
	`{"type":12,"text":[]}` + "\n",
	`{"type":"say","text":"` + strings.Repeat("a", 200) + `"}` + "\n",
	"{\"type\":\"say\"}\n{\"type\":\"leave\"}\n",
}

// FuzzCodecRead throws arbitrary bytes at the wire decoder: it must
// never panic, and every message it does accept must survive an
// encode/decode round trip unchanged (or fail to encode cleanly —
// e.g. out-of-range timestamps json cannot represent).
func FuzzCodecRead(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		codec := NewCodec(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard})
		for msgs := 0; msgs < 64; msgs++ {
			m, err := codec.Read()
			if err != nil {
				return // malformed or exhausted input: rejected cleanly
			}
			var buf bytes.Buffer
			out := NewCodec(struct {
				io.Reader
				io.Writer
			}{&buf, &buf})
			if err := out.Write(m); err != nil {
				continue // unencodable decoded value (e.g. year > 9999)
			}
			back, err := out.Read()
			if err != nil {
				t.Fatalf("round trip read failed for %+v: %v", m, err)
			}
			if back.Type != m.Type || back.Room != m.Room || back.From != m.From ||
				back.Text != m.Text || back.Agent != m.Agent || back.Private != m.Private ||
				!back.Time.Equal(m.Time) {
				t.Fatalf("round trip changed message:\n in: %+v\nout: %+v", m, back)
			}
		}
	})
}
