package chat

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestAsyncPipelineOrdering sends a numbered stream through an async
// server and checks agent responses for one room arrive in message
// order — the guarantee the room-sharded pipeline restores over the old
// goroutine-per-message delivery — and that SupervisionStats reports
// the traffic.
func TestAsyncPipelineOrdering(t *testing.T) {
	const msgs = 40
	var mu sync.Mutex
	var order []string
	sup := SupervisorFunc(func(room, user, text string) []Response {
		mu.Lock()
		order = append(order, text)
		mu.Unlock()
		return []Response{{Agent: "Echo_Agent", Text: "re: " + text}}
	})

	// SendQueue must hold the whole burst (msgs chat echoes + msgs agent
	// responses) because the client sends all messages before reading;
	// the default 64 would trip the drop-stalled-client path.
	s := NewServer(ServerOptions{
		Supervisor: sup, Async: true, Workers: 4, SuperviseQueue: 8,
		SendQueue: 4 * msgs,
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr.String(), "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < msgs; i++ {
		if err := c.Say(fmt.Sprintf("msg-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Agent responses must come back in submission order.
	for i := 0; i < msgs; i++ {
		want := fmt.Sprintf("re: msg-%03d", i)
		got := waitFor(t, c, 5*time.Second, func(m Message) bool { return m.Type == TypeAgent })
		if got.Text != want {
			t.Fatalf("agent response %d = %q, want %q — per-room order broken", i, got.Text, want)
		}
	}
	mu.Lock()
	for i, text := range order {
		if want := fmt.Sprintf("msg-%03d", i); text != want {
			t.Fatalf("supervisor saw %q at position %d, want %q", text, i, want)
		}
	}
	mu.Unlock()

	st, ok := s.SupervisionStats()
	if !ok {
		t.Fatal("async server should expose pipeline stats")
	}
	if st.Submitted != msgs || st.Completed != msgs {
		t.Errorf("stats = %+v, want %d submitted and completed", st, msgs)
	}

	// Inline servers report no pipeline.
	inline := NewServer(ServerOptions{Supervisor: sup})
	if _, ok := inline.SupervisionStats(); ok {
		t.Error("inline server should not report pipeline stats")
	}
}
