package chat

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a chat room participant over TCP.
type Client struct {
	conn  net.Conn
	codec *Codec

	mu     sync.Mutex
	closed bool

	incoming chan Message
	done     chan struct{}
	readErr  error
	wg       sync.WaitGroup
}

// Dial connects, joins the room under the given name and starts the
// receive loop. It waits for the server's welcome (or error) so that a
// returned *Client is fully joined.
func Dial(addr, roomName, userName string, timeout time.Duration) (*Client, error) {
	return DialWire(addr, roomName, userName, WireText, timeout)
}

// DialWire is Dial requesting a wire format. WireBinary asks the server
// to switch to length-prefixed binary framing: the join and welcome are
// exchanged in text, and if the welcome acknowledges the request both
// sides speak binary from the next message on. A server that ignores
// the request leaves the connection on text — the client follows the
// welcome's echo, not its own preference.
func DialWire(addr, roomName, userName string, wire Wire, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	join := Message{Type: TypeJoin, Room: roomName, From: userName}
	if wire == WireBinary {
		join.Wire = WireBinary
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("chat dial: %w", err)
	}
	c := &Client{
		conn:     conn,
		codec:    NewCodec(conn),
		incoming: make(chan Message, 64),
		done:     make(chan struct{}),
	}
	if err := c.codec.Write(join); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("chat join: %w", err)
	}
	//semalint:allow injectedclock: a net.Conn read deadline is wall-clock by contract, simulated or not
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	first, err := c.codec.Read()
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("chat join read: %w", err)
	}
	switch first.Type {
	case TypeWelcome:
		if first.Wire == WireBinary {
			c.codec.SetReadWire(WireBinary)
			c.codec.SetWriteWire(WireBinary)
		}
	case TypeError:
		_ = conn.Close()
		return nil, fmt.Errorf("chat join rejected: %s", first.Text)
	default:
		// Unexpected but survivable: deliver it to the consumer.
		c.incoming <- first
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	defer close(c.incoming)
	for {
		m, err := c.codec.Read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			return
		}
		select {
		case c.incoming <- m:
		case <-c.done:
			return
		}
	}
}

// Say sends a chat line.
func (c *Client) Say(text string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("chat client closed")
	}
	return c.codec.Write(Message{Type: TypeSay, Text: text})
}

// Receive returns the stream of incoming messages. The channel closes
// when the connection drops or Close is called.
func (c *Client) Receive() <-chan Message { return c.incoming }

// Err reports the terminal read error after Receive closes (nil for a
// clean shutdown).
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// Close announces departure and tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	_ = c.codec.Write(Message{Type: TypeLeave})
	c.mu.Unlock()

	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
