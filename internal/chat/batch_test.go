package chat

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// gatedBatchSupervisor blocks its first ProcessBatch call until the
// gate opens, so a test can pile messages into the room's pending
// buffer and prove they coalesce into one drain task.
type gatedBatchSupervisor struct {
	entered chan struct{} // closed when the first batch starts
	gate    chan struct{} // the first batch waits for this

	mu      sync.Mutex
	batches []int
	first   bool
}

func (g *gatedBatchSupervisor) Process(room, user, text string) []Response {
	res := g.ProcessBatch(room, []string{user}, []string{text})
	return res[0]
}

func (g *gatedBatchSupervisor) ProcessBatch(room string, users, texts []string) [][]Response {
	g.mu.Lock()
	block := !g.first
	g.first = true
	g.batches = append(g.batches, len(texts))
	g.mu.Unlock()
	if block {
		close(g.entered)
		<-g.gate
	}
	out := make([][]Response, len(texts))
	for i := range texts {
		out[i] = []Response{
			{Agent: "Learning_Angel", Text: "verdict: " + texts[i]},
			{Agent: "Learning_Angel", Text: "hint for " + users[i], Private: true},
		}
	}
	return out
}

// TestBatchSuperviseCoalesces proves the BatchSupervise path: messages
// arriving while a batch task is mid-supervision are drained by that
// same task (no extra pipeline tasks), every message still gets its
// responses in order, and private responses reach only the speaker.
func TestBatchSuperviseCoalesces(t *testing.T) {
	sup := &gatedBatchSupervisor{
		entered: make(chan struct{}),
		gate:    make(chan struct{}),
	}
	addr := startServer(t, ServerOptions{
		Supervisor: sup, Async: true, Workers: 1, BatchSupervise: true,
	})

	speaker, err := Dial(addr, "room", "speaker", time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer speaker.Close()
	watcher, err := Dial(addr, "room", "watcher", time.Second)
	if err != nil {
		t.Fatalf("dial watcher: %v", err)
	}
	defer watcher.Close()
	waitFor(t, speaker, time.Second, func(m Message) bool {
		return m.Type == TypeSystem
	})

	const rounds = 5
	if err := speaker.Say("msg 0"); err != nil {
		t.Fatalf("say 0: %v", err)
	}
	<-sup.entered // batch task is now blocked inside ProcessBatch
	for i := 1; i < rounds; i++ {
		if err := speaker.Say(fmt.Sprintf("msg %d", i)); err != nil {
			t.Fatalf("say %d: %v", i, err)
		}
	}
	// The room's sayMu serializes handleSay: once the watcher sees the
	// last broadcast, every earlier message is already in the pending
	// batch buffer.
	waitFor(t, watcher, 2*time.Second, func(m Message) bool {
		return m.Type == TypeChat && m.Text == fmt.Sprintf("msg %d", rounds-1)
	})
	close(sup.gate)

	// Both clients see every public verdict, in order.
	for _, c := range []*Client{speaker, watcher} {
		for i := 0; i < rounds; i++ {
			want := fmt.Sprintf("verdict: msg %d", i)
			m := waitFor(t, c, 2*time.Second, func(m Message) bool {
				return m.Type == TypeAgent && m.Agent == "Learning_Angel" &&
					m.Text == want
			})
			if m.Private {
				t.Fatalf("public verdict arrived marked private: %+v", m)
			}
		}
	}
	// The speaker gets the private hints; the watcher must never.
	waitFor(t, speaker, 2*time.Second, func(m Message) bool {
		return m.Private && m.Text == "hint for speaker"
	})
	for {
		select {
		case m := <-watcher.Receive():
			if m.Private {
				t.Fatalf("private response leaked to watcher: %+v", m)
			}
			continue
		case <-time.After(100 * time.Millisecond):
		}
		break
	}

	sup.mu.Lock()
	batches := append([]int(nil), sup.batches...)
	sup.mu.Unlock()
	total, maxBatch := 0, 0
	for _, n := range batches {
		total += n
		if n > maxBatch {
			maxBatch = n
		}
	}
	if total != rounds {
		t.Fatalf("batches %v supervised %d messages, want %d", batches, total, rounds)
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing happened: batch sizes %v", batches)
	}
}

// TestBatchSuperviseFallsBackWithoutInterface keeps the option safe to
// set with a plain Supervisor: per-message supervision still runs.
func TestBatchSuperviseFallsBackWithoutInterface(t *testing.T) {
	sup := SupervisorFunc(func(room, user, text string) []Response {
		return []Response{{Agent: "Learning_Angel", Text: "saw " + text}}
	})
	addr := startServer(t, ServerOptions{
		Supervisor: sup, Async: true, Workers: 2, BatchSupervise: true,
	})
	c, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Say("hello"); err != nil {
		t.Fatalf("say: %v", err)
	}
	waitFor(t, c, 2*time.Second, func(m Message) bool {
		return m.Type == TypeAgent && m.Text == "saw hello"
	})
}
