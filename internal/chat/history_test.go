package chat

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestHistoryReplayedToLateJoiner(t *testing.T) {
	addr := startServer(t, ServerOptions{HistorySize: 10})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	for i := 0; i < 3; i++ {
		if err := alice.Say(fmt.Sprintf("message %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until alice's own echoes arrive so history is committed.
	for i := 0; i < 3; i++ {
		waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeChat })
	}

	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	// Bob must receive the three history messages in order.
	for i := 0; i < 3; i++ {
		got := waitFor(t, bob, time.Second, func(m Message) bool { return m.Type == TypeChat })
		want := fmt.Sprintf("message %d", i)
		if got.Text != want {
			t.Errorf("history[%d] = %q, want %q", i, got.Text, want)
		}
	}
}

func TestHistoryBounded(t *testing.T) {
	addr := startServer(t, ServerOptions{HistorySize: 2})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	for i := 0; i < 5; i++ {
		if err := alice.Say(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeChat })
	}
	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	// Only the last two messages replay.
	first := waitFor(t, bob, time.Second, func(m Message) bool { return m.Type == TypeChat })
	if first.Text != "m3" {
		t.Errorf("first replayed = %q, want m3", first.Text)
	}
	second := waitFor(t, bob, time.Second, func(m Message) bool { return m.Type == TypeChat })
	if second.Text != "m4" {
		t.Errorf("second replayed = %q, want m4", second.Text)
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if err := alice.Say("ephemeral"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeChat })

	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	select {
	case m := <-bob.Receive():
		if m.Type == TypeChat {
			t.Errorf("history replayed despite being disabled: %+v", m)
		}
	case <-time.After(150 * time.Millisecond):
	}
}

func TestHistoryIncludesPublicAgentResponses(t *testing.T) {
	sup := SupervisorFunc(func(room, user, text string) []Response {
		if strings.HasSuffix(text, "?") {
			return []Response{{Agent: "QA_System", Text: "the answer"}}
		}
		return nil
	})
	addr := startServer(t, ServerOptions{HistorySize: 10, Supervisor: sup})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if err := alice.Say("what is a stack?"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeAgent })

	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	waitFor(t, bob, time.Second, func(m Message) bool {
		return m.Type == TypeAgent && m.Text == "the answer"
	})
}

// TestJoinReplayExactlyOnce races joiners against a live sender: a
// message broadcast between registration and history replay used to be
// delivered twice (live and replayed) or before the welcome line. Each
// joiner must now see the welcome first, then a strictly increasing,
// duplicate-free message sequence across the replay/live boundary.
func TestJoinReplayExactlyOnce(t *testing.T) {
	const total = 60
	const joiners = 5
	addr := startServer(t, ServerOptions{HistorySize: total})

	alice, err := Dial(addr, "room", "alice", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	sendDone := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := alice.Say(fmt.Sprintf("m%04d", i)); err != nil {
				sendDone <- err
				return
			}
		}
		sendDone <- nil
	}()

	errCh := make(chan error, joiners)
	for j := 0; j < joiners; j++ {
		j := j
		go func() {
			c, err := Dial(addr, "room", fmt.Sprintf("joiner-%d", j), 2*time.Second)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			last := -1
			deadline := time.After(10 * time.Second)
			for {
				select {
				case m, ok := <-c.Receive():
					if !ok {
						errCh <- fmt.Errorf("joiner-%d: connection closed: %v", j, c.Err())
						return
					}
					switch m.Type {
					case TypeWelcome:
						// Dial consumes the welcome when it arrives
						// first; seeing one here means a line jumped
						// ahead of it.
						errCh <- fmt.Errorf("joiner-%d: message delivered before the welcome", j)
						return
					case TypeChat:
						var n int
						if _, err := fmt.Sscanf(m.Text, "m%04d", &n); err != nil {
							continue
						}
						if n <= last {
							errCh <- fmt.Errorf("joiner-%d: got m%04d after m%04d (duplicate or reorder)", j, n, last)
							return
						}
						last = n
						if n == total-1 {
							errCh <- nil
							return
						}
					}
				case <-deadline:
					errCh <- fmt.Errorf("joiner-%d: timed out at m%04d", j, last)
					return
				}
			}
		}()
	}

	if err := <-sendDone; err != nil {
		t.Fatalf("sender: %v", err)
	}
	for j := 0; j < joiners; j++ {
		if err := <-errCh; err != nil {
			t.Error(err)
		}
	}
}
