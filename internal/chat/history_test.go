package chat

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestHistoryReplayedToLateJoiner(t *testing.T) {
	addr := startServer(t, ServerOptions{HistorySize: 10})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	for i := 0; i < 3; i++ {
		if err := alice.Say(fmt.Sprintf("message %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until alice's own echoes arrive so history is committed.
	for i := 0; i < 3; i++ {
		waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeChat })
	}

	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	// Bob must receive the three history messages in order.
	for i := 0; i < 3; i++ {
		got := waitFor(t, bob, time.Second, func(m Message) bool { return m.Type == TypeChat })
		want := fmt.Sprintf("message %d", i)
		if got.Text != want {
			t.Errorf("history[%d] = %q, want %q", i, got.Text, want)
		}
	}
}

func TestHistoryBounded(t *testing.T) {
	addr := startServer(t, ServerOptions{HistorySize: 2})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	for i := 0; i < 5; i++ {
		if err := alice.Say(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeChat })
	}
	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	// Only the last two messages replay.
	first := waitFor(t, bob, time.Second, func(m Message) bool { return m.Type == TypeChat })
	if first.Text != "m3" {
		t.Errorf("first replayed = %q, want m3", first.Text)
	}
	second := waitFor(t, bob, time.Second, func(m Message) bool { return m.Type == TypeChat })
	if second.Text != "m4" {
		t.Errorf("second replayed = %q, want m4", second.Text)
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if err := alice.Say("ephemeral"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeChat })

	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	select {
	case m := <-bob.Receive():
		if m.Type == TypeChat {
			t.Errorf("history replayed despite being disabled: %+v", m)
		}
	case <-time.After(150 * time.Millisecond):
	}
}

func TestHistoryIncludesPublicAgentResponses(t *testing.T) {
	sup := SupervisorFunc(func(room, user, text string) []Response {
		if strings.HasSuffix(text, "?") {
			return []Response{{Agent: "QA_System", Text: "the answer"}}
		}
		return nil
	})
	addr := startServer(t, ServerOptions{HistorySize: 10, Supervisor: sup})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if err := alice.Say("what is a stack?"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeAgent })

	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	waitFor(t, bob, time.Second, func(m Message) bool {
		return m.Type == TypeAgent && m.Text == "the answer"
	})
}
