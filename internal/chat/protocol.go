// Package chat implements the Augmentative Chat Room of the paper: a
// TCP chat service with rooms, a newline-delimited JSON wire protocol,
// and a supervisor hook through which the Learning_Angel Agent, the
// Semantic Agent and the QA system observe every message and inject
// their responses — the "supervisors constantly online" of the
// abstract.
package chat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// MsgType enumerates protocol message types.
type MsgType string

// Wire message types.
const (
	// Client -> server.
	TypeJoin  MsgType = "join"  // Room, From required
	TypeSay   MsgType = "say"   // Text required
	TypeLeave MsgType = "leave" //

	// Server -> client.
	TypeWelcome MsgType = "welcome" // join acknowledged
	TypeChat    MsgType = "chat"    // a user's message, broadcast
	TypeSystem  MsgType = "system"  // membership notices
	TypeAgent   MsgType = "agent"   // supervisor responses; Agent names the sender
	TypeError   MsgType = "error"   // protocol errors
)

// Message is the wire unit, one JSON object per line.
type Message struct {
	Type  MsgType   `json:"type"`
	Room  string    `json:"room,omitempty"`
	From  string    `json:"from,omitempty"`
	Text  string    `json:"text,omitempty"`
	Agent string    `json:"agent,omitempty"`
	Time  time.Time `json:"time,omitempty"`
	// Private marks agent responses addressed only to the speaker.
	Private bool `json:"private,omitempty"`
}

// maxLineBytes bounds a single protocol line (a chat message).
const maxLineBytes = 64 * 1024

// Codec frames Messages as newline-delimited JSON over a stream.
type Codec struct {
	r *bufio.Reader
	w *bufio.Writer
}

// NewCodec wraps a bidirectional stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{
		r: bufio.NewReaderSize(rw, maxLineBytes),
		w: bufio.NewWriterSize(rw, maxLineBytes),
	}
}

// Read decodes the next message.
func (c *Codec) Read() (Message, error) {
	var m Message
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return m, err
	}
	if len(line) > maxLineBytes {
		return m, fmt.Errorf("message exceeds %d bytes", maxLineBytes)
	}
	if err := json.Unmarshal(line, &m); err != nil {
		return m, fmt.Errorf("decode message: %w", err)
	}
	return m, nil
}

// Buffered reports how many decoded-but-unread bytes sit in the read
// buffer. The scenario simulator combines it with the transport's own
// pending count to drain "everything already delivered" without
// blocking for more.
func (c *Codec) Buffered() int { return c.r.Buffered() }

// Write encodes and flushes one message.
func (c *Codec) Write(m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("encode message: %w", err)
	}
	if _, err := c.w.Write(data); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

// Response is a supervisor's reaction to a chat message.
type Response struct {
	// Agent names the responder ("Learning_Angel", "Semantic_Agent",
	// "QA_System").
	Agent string
	Text  string
	// Private responses go only to the speaker, not the whole room.
	Private bool
}

// Supervisor observes every chat message and may respond. The core
// package's Supervisor implements this; tests may plug stubs.
type Supervisor interface {
	Process(room, user, text string) []Response
}

// SupervisorFunc adapts a function to the Supervisor interface.
type SupervisorFunc func(room, user, text string) []Response

// Process implements Supervisor.
func (f SupervisorFunc) Process(room, user, text string) []Response {
	return f(room, user, text)
}
