// Package chat implements the Augmentative Chat Room of the paper: a
// TCP chat service with rooms, a newline-delimited JSON wire protocol
// (with an optional negotiated binary framing), and a supervisor hook
// through which the Learning_Angel Agent, the Semantic Agent and the
// QA system observe every message and inject their responses — the
// "supervisors constantly online" of the abstract.
package chat

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// MsgType enumerates protocol message types.
type MsgType string

// Wire message types.
const (
	// Client -> server.
	TypeJoin  MsgType = "join"  // Room, From required
	TypeSay   MsgType = "say"   // Text required
	TypeLeave MsgType = "leave" //

	// Server -> client.
	TypeWelcome MsgType = "welcome" // join acknowledged
	TypeChat    MsgType = "chat"    // a user's message, broadcast
	TypeSystem  MsgType = "system"  // membership notices
	TypeAgent   MsgType = "agent"   // supervisor responses; Agent names the sender
	TypeError   MsgType = "error"   // protocol errors
)

// Wire identifies a message framing.
type Wire string

// Wire formats. The zero value means text (newline-delimited JSON), the
// default every telnet-style client and all pre-existing tooling speak.
const (
	WireText   Wire = "text"
	WireBinary Wire = "binary"
)

// Message is the wire unit: one JSON object per line in text framing,
// one length-prefixed frame in binary framing.
type Message struct {
	Type  MsgType   `json:"type"`
	Room  string    `json:"room,omitempty"`
	From  string    `json:"from,omitempty"`
	Text  string    `json:"text,omitempty"`
	Agent string    `json:"agent,omitempty"`
	Time  time.Time `json:"time,omitempty"`
	// Private marks agent responses addressed only to the speaker.
	Private bool `json:"private,omitempty"`
	// Wire negotiates the binary framing: a client sets it on its join,
	// the server echoes it on the welcome to acknowledge, and both sides
	// switch immediately after the welcome (see DESIGN.md D13).
	Wire Wire `json:"wire,omitempty"`
	// Resume marks a join as a reconnection that already observed the
	// room: the server skips the history replay it would otherwise
	// enqueue behind the welcome. The cluster gateway sets it when it
	// re-routes a live client to a new or recovered owner, so failover
	// never re-delivers messages the client has already seen
	// (DESIGN.md D15).
	Resume bool `json:"resume,omitempty"`
}

// maxLineBytes bounds a single protocol unit — a text line or a binary
// frame payload.
const maxLineBytes = 64 * 1024

// ErrTooLarge reports a protocol unit over the 64 KiB cap. The codec
// returns it without buffering the oversized input, so a hostile peer
// cannot grow server memory; the server drops the connection.
var ErrTooLarge = errors.New("chat: message exceeds protocol size limit")

// Codec frames Messages over a stream: newline-delimited JSON by
// default, length-prefixed binary after negotiation. Read and write
// sides switch independently (the negotiation handshake is asymmetric
// for one message — the welcome). A Codec is not safe for concurrent
// use of the same side; the server dedicates one goroutine per side.
type Codec struct {
	r *bufio.Reader
	w *bufio.Writer

	readWire, writeWire Wire
	enc                 *json.Encoder // text writes, reuses its buffer

	// readBuf holds one binary payload; intern folds repeated small
	// decoded strings (room, user, agent names) so steady-state traffic
	// from the same room costs one allocation per message (the text).
	readBuf  []byte
	writeBuf []byte
	intern   map[string]string
}

// NewCodec wraps a bidirectional stream in text framing.
func NewCodec(rw io.ReadWriter) *Codec {
	c := &Codec{
		r: bufio.NewReaderSize(rw, maxLineBytes),
		w: bufio.NewWriterSize(rw, maxLineBytes),
	}
	c.enc = json.NewEncoder(c.w)
	return c
}

// SetReadWire switches the framing the codec expects from the peer.
func (c *Codec) SetReadWire(w Wire) {
	if w == "" {
		w = WireText
	}
	c.readWire = w
}

// SetWriteWire switches the framing the codec emits.
func (c *Codec) SetWriteWire(w Wire) {
	if w == "" {
		w = WireText
	}
	c.writeWire = w
}

// Read decodes the next message.
func (c *Codec) Read() (Message, error) {
	if c.readWire == WireBinary {
		return c.readBinary()
	}
	var m Message
	// The reader's buffer is exactly maxLineBytes, so ReadSlice enforces
	// the cap *during* the read: a newline-free flood fails with
	// ErrBufferFull at 64 KiB instead of accumulating without bound.
	line, err := c.r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return m, fmt.Errorf("%w (text line over %d bytes)", ErrTooLarge, maxLineBytes)
		}
		return m, err
	}
	if err := json.Unmarshal(line, &m); err != nil {
		return m, fmt.Errorf("decode message: %w", err)
	}
	return m, nil
}

// Buffered reports how many decoded-but-unread bytes sit in the read
// buffer. The scenario simulator combines it with the transport's own
// pending count to drain "everything already delivered" without
// blocking for more.
func (c *Codec) Buffered() int { return c.r.Buffered() }

// Write encodes and flushes one message.
func (c *Codec) Write(m Message) error {
	if c.writeWire == WireBinary {
		return c.writeBinary(m)
	}
	// json.Encoder emits exactly Marshal's bytes plus the terminating
	// newline, and reuses its internal buffer across calls.
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("encode message: %w", err)
	}
	return c.w.Flush()
}

// WriteRaw writes an already-encoded frame and flushes. The bytes must
// be in the codec's current write framing — the broadcast fan-out uses
// this to share one encoding across every recipient of a message.
func (c *Codec) WriteRaw(b []byte) error {
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	return c.w.Flush()
}

// AppendEncoded appends m's encoding in the given wire format to dst,
// producing bytes WriteRaw accepts.
func AppendEncoded(dst []byte, m Message, w Wire) ([]byte, error) {
	if w == WireBinary {
		return appendBinaryFrame(dst, m), nil
	}
	data, err := json.Marshal(m)
	if err != nil {
		return dst, fmt.Errorf("encode message: %w", err)
	}
	dst = append(dst, data...)
	return append(dst, '\n'), nil
}

// Response is a supervisor's reaction to a chat message.
type Response struct {
	// Agent names the responder ("Learning_Angel", "Semantic_Agent",
	// "QA_System").
	Agent string
	Text  string
	// Private responses go only to the speaker, not the whole room.
	Private bool
}

// Supervisor observes every chat message and may respond. The core
// package's Supervisor implements this; tests may plug stubs.
type Supervisor interface {
	Process(room, user, text string) []Response
}

// BatchSupervisor is an optional Supervisor extension: a supervisor
// that can amortize per-message fixed costs (snapshot pins, vocabulary
// checks, dictionary and parse-cache lookups) across a burst of
// same-room messages. The result is index-aligned with users/texts;
// each element is that message's responses, as Process would have
// returned them. A server with ServerOptions.BatchSupervise coalesces
// a room's queued messages into one ProcessBatch call.
type BatchSupervisor interface {
	Supervisor
	ProcessBatch(room string, users, texts []string) [][]Response
}

// SupervisorFunc adapts a function to the Supervisor interface.
type SupervisorFunc func(room, user, text string) []Response

// Process implements Supervisor.
func (f SupervisorFunc) Process(room, user, text string) []Response {
	return f(room, user, text)
}
