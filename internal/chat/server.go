package chat

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semagent/internal/clock"
	"semagent/internal/metrics"
	"semagent/internal/pipeline"
)

// ServerOptions configures a chat server.
type ServerOptions struct {
	// Supervisor observes messages; nil runs an unsupervised room
	// (the OFF arm of experiment E6).
	Supervisor Supervisor
	// Async delivers supervisor responses off the broadcast path,
	// through a worker pool sharded by room (design decision D5 +
	// package pipeline). Inline runs supervision before the broadcast
	// returns; async minimizes broadcast latency while the sharding
	// still preserves per-room response order.
	Async bool
	// Workers sizes the async supervision pool (shards). 0 selects
	// runtime.GOMAXPROCS. Ignored unless Async with a Supervisor.
	Workers int
	// SuperviseQueue is each supervision shard's queue capacity
	// (default 256). A full shard blocks the flooding client's reader
	// — backpressure — rather than dropping supervision.
	SuperviseQueue int
	// BatchSupervise coalesces a room's queued messages into one
	// supervision task: the first message of a burst schedules a batch
	// task, later messages arriving before it runs piggyback on it, and
	// the task drains the room's pending buffer through the
	// supervisor's ProcessBatch — one snapshot pin and dictionary
	// warm-up per burst instead of per message. Requires Async and a
	// Supervisor implementing BatchSupervisor; ignored (per-message
	// tasks) otherwise. Response semantics, per-room ordering and
	// Quiesce are unchanged; under admission control a shed batch task
	// sheds the messages it covered.
	BatchSupervise bool
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// SendQueue is the per-client outgoing buffer. When a slow client's
	// queue fills, the client is dropped (a supervised classroom must
	// not let one stalled socket block the room).
	SendQueue int
	// HistorySize keeps the last N chat messages per room and replays
	// them to joining clients, so late learners see the recent
	// discussion (and its agent feedback). 0 disables replay.
	HistorySize int

	// DisableBinaryWire makes the server ignore binary-framing requests
	// in joins: every connection stays on newline-JSON. Clients follow
	// the welcome's echo, so a DialWire(WireBinary) client against this
	// server simply keeps talking text (the -wire text operator switch).
	DisableBinaryWire bool

	// ShedPolicy enables supervision admission control (DESIGN.md D10):
	// instead of a full supervision queue back-pressuring the room,
	// excess messages are still broadcast but their supervision is shed
	// deterministically. Requires Async with a Supervisor.
	ShedPolicy pipeline.ShedPolicy
	// RoomHighWater / GlobalHighWater are the admission watermarks
	// (pipeline.Config). Ignored when ShedPolicy is ShedNone.
	RoomHighWater, GlobalHighWater int
	// OnShed, if set, observes every supervision task admission control
	// drops, with the room it belonged to — the per-room attribution the
	// chaos simulator's shed-exactness checker needs (metrics only keep
	// a global counter). Called outside all server and pipeline locks.
	OnShed func(room string)

	// Metrics, if set, registers the chat layer's counters and latency
	// histograms (semagent_chat_*) and the supervision pipeline's
	// (semagent_pipeline_*).
	Metrics *metrics.Registry

	// Clock stamps protocol messages (welcome, chat, system, agent).
	// Nil selects the wall clock; the scenario simulator (package
	// simulate, DESIGN.md D11) injects a virtual clock so the same seed
	// always yields the same timestamps.
	Clock clock.Clock
}

// Server is the chat room service.
type Server struct {
	opts     ServerOptions
	clk      clock.Clock
	listener net.Listener
	// pipe fans async supervision out by room; nil in inline/off modes.
	pipe *pipeline.Pipeline
	// batcher is the supervisor's batch interface when BatchSupervise
	// coalescing is active; nil runs per-message supervision tasks.
	batcher BatchSupervisor
	met     *chatMetrics

	mu      sync.Mutex
	rooms   map[string]*room
	clients map[*client]struct{}
	closed  bool

	// activeSays and activeBroadcasts count handleSay calls and
	// broadcast fan-outs in flight; together with the per-client pending
	// counters they let Quiesce prove the server has gone idle — the
	// determinism barrier the scenario simulator settles on between
	// scripted events.
	activeSays       atomic.Int64
	activeBroadcasts atomic.Int64

	wg sync.WaitGroup
}

// chatMetrics are the chat layer's hot-path instruments (nil when the
// server runs unobserved).
type chatMetrics struct {
	messages, agentMsgs, shed, droppedClients *metrics.Counter
	broadcastDur                              *metrics.Histogram
	fanout                                    *metrics.Counter
}

func newChatMetrics(r *metrics.Registry) *chatMetrics {
	if r == nil {
		return nil
	}
	return &chatMetrics{
		messages:       r.Counter("semagent_chat_messages_total", "chat lines received from clients"),
		agentMsgs:      r.Counter("semagent_chat_agent_messages_total", "supervision responses delivered"),
		shed:           r.Counter("semagent_chat_supervision_shed_total", "messages broadcast without supervision (admission control)"),
		droppedClients: r.Counter("semagent_chat_dropped_clients_total", "stalled clients disconnected"),
		broadcastDur:   r.DurationHistogram("semagent_chat_broadcast_seconds", "room broadcast fan-out latency"),
		fanout:         r.Counter("semagent_chat_fanout_total", "per-recipient message deliveries"),
	}
}

type room struct {
	name    string
	members map[string]*client
	// history is a bounded ring of recent broadcast messages.
	history []Message
	// sayMu serializes broadcast+submit per room in async mode, so the
	// supervision pipeline sees messages in the order the room did —
	// even when they come from different clients' reader goroutines.
	sayMu sync.Mutex

	// Batch coalescing state (BatchSupervise mode), guarded by batchMu
	// — a separate, innermost lock so the batch worker draining pending
	// never contends with a submitter blocked on queue space under
	// sayMu. Invariant: batchScheduled ⇒ a task is queued, running, or
	// mid-Submit that will drain pendingBatch (a shed clears both).
	batchMu        sync.Mutex
	pendingBatch   []batchItem
	batchScheduled bool
}

// batchItem is one coalesced chat line awaiting batch supervision; the
// client is kept so private responses reach the speaker.
type batchItem struct {
	c    *client
	user string
	text string
}

// outMsg is one queued delivery: the Message, plus the shared
// pre-encoded frame when it came from a broadcast fan-out. The writer
// prefers the frame's bytes for its wire format and releases its
// reference after the write attempt.
type outMsg struct {
	m Message
	f *frame
}

type client struct {
	name string
	room string
	// wire is the negotiated framing, fixed at join ("" = text). The
	// codec itself switches only after the welcome is written; queue
	// order guarantees everything enqueued after the join is written
	// after that switch.
	wire Wire
	// resume marks a reconnecting join (Message.Resume): the client has
	// already seen the room, so no history replay.
	resume bool
	conn   net.Conn
	codec  *Codec
	out    chan outMsg
	done   chan struct{}
	// dropped latches the stalled-client disconnect so the counter and
	// log fire once per client, not once per undeliverable message.
	dropped atomic.Bool
	// pending counts messages enqueued but not yet written to the
	// connection; writerGone marks the writer goroutine's exit (after
	// which pending can never drain). Both feed Quiesce.
	pending    atomic.Int64
	writerGone atomic.Bool
}

// NewServer returns an unstarted server.
func NewServer(opts ServerOptions) *Server {
	if opts.SendQueue <= 0 {
		opts.SendQueue = 64
	}
	s := &Server{
		opts:    opts,
		clk:     clock.Or(opts.Clock),
		rooms:   make(map[string]*room),
		clients: make(map[*client]struct{}),
		met:     newChatMetrics(opts.Metrics),
	}
	if opts.Async && opts.Supervisor != nil {
		if opts.BatchSupervise {
			// Coalescing needs the batch entry point; a supervisor
			// without one keeps per-message tasks.
			s.batcher, _ = opts.Supervisor.(BatchSupervisor)
		}
		cfg := pipeline.Config{
			Workers:   opts.Workers,
			QueueSize: opts.SuperviseQueue,
			// Without admission control a full shard blocks the
			// submitting room (backpressure); with it, Submit sheds
			// instead and the chat layer counts what went unsupervised.
			Block:           true,
			Policy:          opts.ShedPolicy,
			RoomHighWater:   opts.RoomHighWater,
			GlobalHighWater: opts.GlobalHighWater,
			Metrics:         opts.Metrics,
			// The supervision pipeline shares the server's clock, so a
			// simulated server's task-latency accounting runs on the
			// simulation's virtual time.
			Clock: s.clk,
		}
		if s.batcher != nil {
			// One wakeup can drain several rooms' batch tasks sharing a
			// shard — the same amortization, one level down.
			cfg.BatchDrain = 8
		}
		if s.met != nil || opts.OnShed != nil || s.batcher != nil {
			// OnShed sees every dropped supervision — rejected new
			// tasks and oldest-drop evictions alike; counting Submit
			// errors instead would miss the evictions entirely.
			cfg.OnShed = func(room string) {
				if s.batcher != nil {
					// The shed task was a batch drainer: clear the room's
					// coalescing state so the messages it covered are
					// dropped and the next say schedules a fresh task
					// (otherwise batchScheduled would latch true forever).
					s.clearBatch(room)
				}
				if s.met != nil {
					s.met.shed.Inc()
				}
				if opts.OnShed != nil {
					opts.OnShed(room)
				}
			}
		}
		s.pipe = pipeline.New(cfg)
	}
	if opts.Metrics != nil {
		opts.Metrics.GaugeFunc("semagent_chat_connections", "connected clients", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.clients))
		})
		opts.Metrics.GaugeFunc("semagent_chat_rooms", "active rooms", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.rooms))
		})
	}
	return s
}

// SupervisionStats reports the async supervision pipeline counters and
// whether a pipeline is running (false in inline/off modes).
func (s *Server) SupervisionStats() (pipeline.Stats, bool) {
	if s.pipe == nil {
		return pipeline.Stats{}, false
	}
	return s.pipe.Stats(), true
}

// Listen starts accepting on addr ("127.0.0.1:0" for tests) and returns
// the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chat listen: %w", err)
	}
	s.Serve(l)
	return l.Addr(), nil
}

// Serve starts accepting connections from an injected listener — the
// transport seam: production passes a TCP listener (Listen does), the
// scenario simulator passes an in-memory memnet.Listener so whole
// classrooms connect without a socket. Close closes the listener.
func (s *Server) Serve(l net.Listener) {
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop(l)
}

// Quiesce blocks until the server is idle — no chat line mid-handling,
// no broadcast mid-fan-out, no supervision task queued or running, and
// every enqueued message written to its connection (clients whose
// writer died are exempt: their queues can never drain) — or until the
// real-time timeout expires, reporting whether idleness was reached.
//
// Quiesce only proves the absence of in-flight work the server has
// already accepted; a caller that just wrote a message to a connection
// must first observe its effect (e.g. read back its own broadcast echo)
// before Quiesce can vouch for the consequences. The scenario simulator
// uses exactly that two-step barrier between scripted events.
func (s *Server) Quiesce(timeout time.Duration) bool {
	return clock.Until(timeout, s.Idle)
}

// Idle is Quiesce's instantaneous predicate: true when no work the
// server has accepted is still in flight. Exported so composite
// barriers (the cluster fabric's multi-node quiesce) can AND it with
// their own idleness conditions inside one clock.Until poll.
func (s *Server) Idle() bool {
	if s.activeSays.Load() != 0 || s.activeBroadcasts.Load() != 0 {
		return false
	}
	// Pipeline pending is checked after activeSays: a say still in
	// flight may be about to submit. Task completion enqueues the
	// agent responses before the pipeline counts the task done, so
	// Pending()==0 implies the responses are in the client queues,
	// where the pending counters below see them.
	if s.pipe != nil {
		if st := s.pipe.Stats(); st.Pending() != 0 {
			return false
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.clients {
		if c.writerGone.Load() {
			continue
		}
		if c.pending.Load() != 0 {
			return false
		}
	}
	return true
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Close stops the listener, disconnects all clients and waits for every
// goroutine to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var conns []net.Conn
	for c := range s.clients {
		conns = append(conns, c.conn)
	}
	s.mu.Unlock()

	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for _, conn := range conns {
		_ = conn.Close()
	}
	s.wg.Wait()
	if s.pipe != nil {
		// Readers are gone; run queued supervision to completion so
		// recording (corpus, profiles, FAQ) is not lost on shutdown.
		s.pipe.Close()
	}
	return err
}

// RoomNames returns the names of active rooms.
func (s *Server) RoomNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rooms))
	for name := range s.rooms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Members returns the user names present in a room.
func (s *Server) Members(roomName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.rooms[roomName]
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	codec := NewCodec(conn)

	// The first message must be a join.
	first, err := codec.Read()
	if err != nil {
		return
	}
	if first.Type != TypeJoin || first.From == "" || first.Room == "" {
		_ = codec.Write(Message{Type: TypeError, Text: "first message must be a join with room and from"})
		return
	}

	c := &client{
		name:   first.From,
		room:   first.Room,
		resume: first.Resume,
		conn:   conn,
		codec:  codec,
		// The queue must absorb the join-time burst — welcome plus a
		// full history replay, enqueued before the writer goroutine
		// starts — on top of the configured live-traffic slack.
		out:  make(chan outMsg, s.opts.SendQueue+s.opts.HistorySize+1),
		done: make(chan struct{}),
	}
	if first.Wire == WireBinary && !s.opts.DisableBinaryWire {
		c.wire = WireBinary
	}
	if err := s.join(c); err != nil {
		_ = codec.Write(Message{Type: TypeError, Text: err.Error()})
		return
	}
	// The join is accepted: everything the client sends from here on is
	// in its negotiated framing (it switches on receiving the welcome,
	// and sends nothing between join and welcome).
	codec.SetReadWire(c.wire)

	// Writer goroutine: the only writer to the codec after join.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer c.writerGone.Store(true)
		for {
			select {
			case om, ok := <-c.out:
				if !ok {
					return
				}
				var err error
				if b := om.frameBytes(c.wire); b != nil {
					err = c.codec.WriteRaw(b)
				} else {
					err = c.codec.Write(om.m)
				}
				if om.f != nil {
					om.f.release()
				}
				c.pending.Add(-1)
				if err != nil {
					_ = c.conn.Close()
					return
				}
				if om.m.Type == TypeWelcome && c.wire == WireBinary {
					// The welcome (sent as text) acknowledged the binary
					// negotiation; every later write is a binary frame.
					c.codec.SetWriteWire(WireBinary)
				}
			case <-c.done:
				return
			}
		}
	}()

	s.broadcast(c.room, Message{
		Type: TypeSystem, Room: c.room,
		Text: c.name + " joined the room", Time: s.clk.Now(),
	}, nil)
	s.logf("chat: %s joined %s", c.name, c.room)

	for {
		m, err := codec.Read()
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				// Best-effort notice, then drop: the codec refused to
				// buffer the oversized unit, so the stream position is
				// unrecoverable.
				s.enqueue(c, Message{Type: TypeError, Text: err.Error()})
			}
			break
		}
		switch m.Type {
		case TypeSay:
			s.handleSay(c, m.Text)
		case TypeLeave:
			err = errors.New("left")
		case TypeJoin:
			s.enqueue(c, Message{Type: TypeError, Text: "already joined"})
		default:
			s.enqueue(c, Message{Type: TypeError, Text: "unknown message type " + string(m.Type)})
		}
		if err != nil {
			break
		}
	}

	s.leave(c)
	close(c.done)
	s.broadcast(c.room, Message{
		Type: TypeSystem, Room: c.room,
		Text: c.name + " left the room", Time: s.clk.Now(),
	}, nil)
	s.logf("chat: %s left %s", c.name, c.room)
}

// handleSay broadcasts a chat line and runs supervision.
func (s *Server) handleSay(c *client, text string) {
	s.activeSays.Add(1)
	defer s.activeSays.Add(-1)
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}
	if s.met != nil {
		s.met.messages.Inc()
	}
	now := s.clk.Now()
	chatMsg := Message{
		Type: TypeChat, Room: c.room, From: c.name, Text: text, Time: now,
	}
	if s.opts.Supervisor == nil {
		s.broadcast(c.room, chatMsg, nil)
		return
	}
	deliver := func() {
		for _, resp := range s.opts.Supervisor.Process(c.room, c.name, text) {
			msg := Message{
				Type: TypeAgent, Room: c.room, Agent: resp.Agent,
				Text: resp.Text, Time: s.clk.Now(), Private: resp.Private,
			}
			if s.met != nil {
				s.met.agentMsgs.Inc()
			}
			if resp.Private {
				s.enqueue(c, msg)
			} else {
				s.broadcast(c.room, msg, nil)
			}
		}
	}
	if s.pipe != nil {
		// Sharded by room: per-room response order is preserved, rooms
		// run in parallel, and a full shard queue back-pressures this
		// room's senders instead of spawning unbounded goroutines. The
		// room's sayMu makes broadcast order == submission order across
		// clients; backpressure therefore stalls only this room. With
		// admission control the Submit never blocks: at a watermark the
		// message is still broadcast but its supervision is shed (and
		// counted) — overload degrades coverage, not chat latency.
		s.mu.Lock()
		r := s.rooms[c.room]
		s.mu.Unlock()
		if r == nil {
			return // client raced a leave; nothing to supervise
		}
		r.sayMu.Lock()
		s.broadcast(c.room, chatMsg, nil)
		if s.batcher != nil {
			s.submitBatch(r, c, text)
		} else {
			// Shed returns (ErrShed) are counted by the pipeline's OnShed
			// hook; ErrClosed (shutdown) is the only other outcome.
			//semalint:allow shedhandled: sheds are counted by the OnShed hook above; ErrClosed only means shutdown
			_ = s.pipe.Submit(c.room, deliver)
		}
		r.sayMu.Unlock()
		return
	}
	s.broadcast(c.room, chatMsg, nil)
	deliver()
}

// submitBatch coalesces one message into the room's pending batch and
// schedules the drain task when none is in flight. Callers hold the
// room's sayMu, so pending order is broadcast order and at most one
// goroutine per room is in the schedule/rollback path at a time.
func (s *Server) submitBatch(r *room, c *client, text string) {
	r.batchMu.Lock()
	r.pendingBatch = append(r.pendingBatch, batchItem{c: c, user: c.name, text: text})
	schedule := !r.batchScheduled
	if schedule {
		r.batchScheduled = true
	}
	r.batchMu.Unlock()
	if !schedule {
		return // piggybacks on the task already in flight
	}
	if err := s.pipe.Submit(r.name, func() { s.superviseBatch(r) }); err != nil {
		// Shed (OnShed already cleared the room's state) or shutdown:
		// drop the burst so the next say schedules a fresh task.
		s.clearBatch(r.name)
	}
}

// superviseBatch is the coalesced drain task: it empties the room's
// pending buffer through the supervisor's batch entry point, looping so
// messages that arrived while a batch was mid-supervision are drained
// by this task instead of scheduling another. It clears batchScheduled
// only on seeing an empty buffer, under the same lock appends take —
// so every coalesced message is covered by some task until supervised
// or deliberately shed.
func (s *Server) superviseBatch(r *room) {
	var items []batchItem
	for {
		r.batchMu.Lock()
		if len(r.pendingBatch) == 0 {
			r.batchScheduled = false
			r.batchMu.Unlock()
			return
		}
		items = append(items[:0], r.pendingBatch...)
		r.pendingBatch = r.pendingBatch[:0]
		r.batchMu.Unlock()

		users := make([]string, len(items))
		texts := make([]string, len(items))
		for i, it := range items {
			users[i], texts[i] = it.user, it.text
		}
		for i, resps := range s.batcher.ProcessBatch(r.name, users, texts) {
			for _, resp := range resps {
				msg := Message{
					Type: TypeAgent, Room: r.name, Agent: resp.Agent,
					Text: resp.Text, Time: s.clk.Now(), Private: resp.Private,
				}
				if s.met != nil {
					s.met.agentMsgs.Inc()
				}
				if resp.Private {
					s.enqueue(items[i].c, msg)
				} else {
					s.broadcast(r.name, msg, nil)
				}
			}
		}
	}
}

// clearBatch drops a room's coalescing state after its drain task was
// shed or refused: the covered messages lose their supervision (that is
// what shedding means) and the next say schedules afresh.
func (s *Server) clearBatch(roomName string) {
	s.mu.Lock()
	r := s.rooms[roomName]
	s.mu.Unlock()
	if r == nil {
		return
	}
	r.batchMu.Lock()
	r.pendingBatch = r.pendingBatch[:0]
	r.batchScheduled = false
	r.batchMu.Unlock()
}

// join registers the client and queues its welcome plus the room's
// history replay in the same critical section that makes the client a
// broadcast recipient. Broadcasters also hold s.mu, so every room
// message either predates the join (it is in the replayed history, and
// only there) or follows it (it is queued live, after the replay) —
// a late joiner sees each message exactly once, welcome first.
func (s *Server) join(c *client) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server shutting down")
	}
	r := s.rooms[c.room]
	if r == nil {
		r = &room{name: c.room, members: make(map[string]*client)}
		s.rooms[c.room] = r
	}
	if _, taken := r.members[c.name]; taken {
		return fmt.Errorf("name %q already in use in room %q", c.name, c.room)
	}
	r.members[c.name] = c
	s.clients[c] = struct{}{}
	// Wire echoes the client's negotiated framing ("" for text keeps the
	// welcome JSON byte-identical to the pre-negotiation protocol).
	s.enqueue(c, Message{Type: TypeWelcome, Room: c.room, Text: "welcome, " + c.name, Time: s.clk.Now(), Wire: c.wire})
	if !c.resume {
		for _, m := range r.history {
			s.enqueue(c, m)
		}
	}
	return nil
}

func (s *Server) leave(c *client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.rooms[c.room]; r != nil {
		if r.members[c.name] == c {
			delete(r.members, c.name)
		}
		if len(r.members) == 0 {
			delete(s.rooms, c.room)
		}
	}
	delete(s.clients, c)
}

// broadcast sends to every room member except skip (may be nil) and
// records chat/agent traffic in the room history.
func (s *Server) broadcast(roomName string, m Message, skip *client) {
	s.activeBroadcasts.Add(1)
	defer s.activeBroadcasts.Add(-1)
	var start time.Time
	if s.met != nil {
		start = s.clk.Now()
	}
	s.mu.Lock()
	r := s.rooms[roomName]
	var members []*client
	if r != nil {
		members = make([]*client, 0, len(r.members))
		for _, c := range r.members {
			if c != skip {
				members = append(members, c)
			}
		}
		if s.opts.HistorySize > 0 && (m.Type == TypeChat || m.Type == TypeAgent) {
			r.history = append(r.history, m)
			if len(r.history) > s.opts.HistorySize {
				r.history = r.history[len(r.history)-s.opts.HistorySize:]
			}
		}
	}
	s.mu.Unlock()
	if len(members) > 0 {
		// Encode once per wire format present among the recipients and
		// share the bytes; each recipient's writer releases one reference.
		needText, needBinary := false, false
		for _, c := range members {
			if c.wire == WireBinary {
				needBinary = true
			} else {
				needText = true
			}
		}
		f := newFrame(m, needText, needBinary, len(members))
		for _, c := range members {
			s.send(c, outMsg{m: m, f: f})
		}
	}
	if s.met != nil {
		s.met.fanout.Add(int64(len(members)))
		s.met.broadcastDur.ObserveDuration(s.clk.Since(start))
	}
}

func (om outMsg) frameBytes(w Wire) []byte {
	if om.f == nil {
		return nil
	}
	return om.f.bytesFor(w)
}

// enqueue delivers without blocking; a stalled client is disconnected.
// The pending counter is raised before the send attempt and rolled back
// on the non-delivery paths, so it can overcount a written message for
// an instant but never undercount an outstanding one — the direction
// Quiesce's soundness needs.
func (s *Server) enqueue(c *client, m Message) {
	s.send(c, outMsg{m: m})
}

func (s *Server) send(c *client, om outMsg) {
	c.pending.Add(1)
	select {
	case c.out <- om:
	case <-c.done:
		c.pending.Add(-1)
		if om.f != nil {
			om.f.release()
		}
	default:
		c.pending.Add(-1)
		if om.f != nil {
			om.f.release()
		}
		if c.dropped.CompareAndSwap(false, true) {
			if s.met != nil {
				s.met.droppedClients.Inc()
			}
			s.logf("chat: dropping stalled client %s in %s", c.name, c.room)
		}
		_ = c.conn.Close()
	}
}
