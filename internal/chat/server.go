package chat

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semagent/internal/clock"
	"semagent/internal/metrics"
	"semagent/internal/pipeline"
)

// ServerOptions configures a chat server.
type ServerOptions struct {
	// Supervisor observes messages; nil runs an unsupervised room
	// (the OFF arm of experiment E6).
	Supervisor Supervisor
	// Async delivers supervisor responses off the broadcast path,
	// through a worker pool sharded by room (design decision D5 +
	// package pipeline). Inline runs supervision before the broadcast
	// returns; async minimizes broadcast latency while the sharding
	// still preserves per-room response order.
	Async bool
	// Workers sizes the async supervision pool (shards). 0 selects
	// runtime.GOMAXPROCS. Ignored unless Async with a Supervisor.
	Workers int
	// SuperviseQueue is each supervision shard's queue capacity
	// (default 256). A full shard blocks the flooding client's reader
	// — backpressure — rather than dropping supervision.
	SuperviseQueue int
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// SendQueue is the per-client outgoing buffer. When a slow client's
	// queue fills, the client is dropped (a supervised classroom must
	// not let one stalled socket block the room).
	SendQueue int
	// HistorySize keeps the last N chat messages per room and replays
	// them to joining clients, so late learners see the recent
	// discussion (and its agent feedback). 0 disables replay.
	HistorySize int

	// ShedPolicy enables supervision admission control (DESIGN.md D10):
	// instead of a full supervision queue back-pressuring the room,
	// excess messages are still broadcast but their supervision is shed
	// deterministically. Requires Async with a Supervisor.
	ShedPolicy pipeline.ShedPolicy
	// RoomHighWater / GlobalHighWater are the admission watermarks
	// (pipeline.Config). Ignored when ShedPolicy is ShedNone.
	RoomHighWater, GlobalHighWater int
	// OnShed, if set, observes every supervision task admission control
	// drops, with the room it belonged to — the per-room attribution the
	// chaos simulator's shed-exactness checker needs (metrics only keep
	// a global counter). Called outside all server and pipeline locks.
	OnShed func(room string)

	// Metrics, if set, registers the chat layer's counters and latency
	// histograms (semagent_chat_*) and the supervision pipeline's
	// (semagent_pipeline_*).
	Metrics *metrics.Registry

	// Clock stamps protocol messages (welcome, chat, system, agent).
	// Nil selects the wall clock; the scenario simulator (package
	// simulate, DESIGN.md D11) injects a virtual clock so the same seed
	// always yields the same timestamps.
	Clock clock.Clock
}

// Server is the chat room service.
type Server struct {
	opts     ServerOptions
	clk      clock.Clock
	listener net.Listener
	// pipe fans async supervision out by room; nil in inline/off modes.
	pipe *pipeline.Pipeline
	met  *chatMetrics

	mu      sync.Mutex
	rooms   map[string]*room
	clients map[*client]struct{}
	closed  bool

	// activeSays and activeBroadcasts count handleSay calls and
	// broadcast fan-outs in flight; together with the per-client pending
	// counters they let Quiesce prove the server has gone idle — the
	// determinism barrier the scenario simulator settles on between
	// scripted events.
	activeSays       atomic.Int64
	activeBroadcasts atomic.Int64

	wg sync.WaitGroup
}

// chatMetrics are the chat layer's hot-path instruments (nil when the
// server runs unobserved).
type chatMetrics struct {
	messages, agentMsgs, shed, droppedClients *metrics.Counter
	broadcastDur                              *metrics.Histogram
	fanout                                    *metrics.Counter
}

func newChatMetrics(r *metrics.Registry) *chatMetrics {
	if r == nil {
		return nil
	}
	return &chatMetrics{
		messages:       r.Counter("semagent_chat_messages_total", "chat lines received from clients"),
		agentMsgs:      r.Counter("semagent_chat_agent_messages_total", "supervision responses delivered"),
		shed:           r.Counter("semagent_chat_supervision_shed_total", "messages broadcast without supervision (admission control)"),
		droppedClients: r.Counter("semagent_chat_dropped_clients_total", "stalled clients disconnected"),
		broadcastDur:   r.DurationHistogram("semagent_chat_broadcast_seconds", "room broadcast fan-out latency"),
		fanout:         r.Counter("semagent_chat_fanout_total", "per-recipient message deliveries"),
	}
}

type room struct {
	name    string
	members map[string]*client
	// history is a bounded ring of recent broadcast messages.
	history []Message
	// sayMu serializes broadcast+submit per room in async mode, so the
	// supervision pipeline sees messages in the order the room did —
	// even when they come from different clients' reader goroutines.
	sayMu sync.Mutex
}

type client struct {
	name  string
	room  string
	conn  net.Conn
	codec *Codec
	out   chan Message
	done  chan struct{}
	// dropped latches the stalled-client disconnect so the counter and
	// log fire once per client, not once per undeliverable message.
	dropped atomic.Bool
	// pending counts messages enqueued but not yet written to the
	// connection; writerGone marks the writer goroutine's exit (after
	// which pending can never drain). Both feed Quiesce.
	pending    atomic.Int64
	writerGone atomic.Bool
}

// NewServer returns an unstarted server.
func NewServer(opts ServerOptions) *Server {
	if opts.SendQueue <= 0 {
		opts.SendQueue = 64
	}
	s := &Server{
		opts:    opts,
		clk:     clock.Or(opts.Clock),
		rooms:   make(map[string]*room),
		clients: make(map[*client]struct{}),
		met:     newChatMetrics(opts.Metrics),
	}
	if opts.Async && opts.Supervisor != nil {
		cfg := pipeline.Config{
			Workers:   opts.Workers,
			QueueSize: opts.SuperviseQueue,
			// Without admission control a full shard blocks the
			// submitting room (backpressure); with it, Submit sheds
			// instead and the chat layer counts what went unsupervised.
			Block:           true,
			Policy:          opts.ShedPolicy,
			RoomHighWater:   opts.RoomHighWater,
			GlobalHighWater: opts.GlobalHighWater,
			Metrics:         opts.Metrics,
		}
		if s.met != nil || opts.OnShed != nil {
			// OnShed sees every dropped supervision — rejected new
			// tasks and oldest-drop evictions alike; counting Submit
			// errors instead would miss the evictions entirely.
			cfg.OnShed = func(room string) {
				if s.met != nil {
					s.met.shed.Inc()
				}
				if opts.OnShed != nil {
					opts.OnShed(room)
				}
			}
		}
		s.pipe = pipeline.New(cfg)
	}
	if opts.Metrics != nil {
		opts.Metrics.GaugeFunc("semagent_chat_connections", "connected clients", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.clients))
		})
		opts.Metrics.GaugeFunc("semagent_chat_rooms", "active rooms", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.rooms))
		})
	}
	return s
}

// SupervisionStats reports the async supervision pipeline counters and
// whether a pipeline is running (false in inline/off modes).
func (s *Server) SupervisionStats() (pipeline.Stats, bool) {
	if s.pipe == nil {
		return pipeline.Stats{}, false
	}
	return s.pipe.Stats(), true
}

// Listen starts accepting on addr ("127.0.0.1:0" for tests) and returns
// the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chat listen: %w", err)
	}
	s.Serve(l)
	return l.Addr(), nil
}

// Serve starts accepting connections from an injected listener — the
// transport seam: production passes a TCP listener (Listen does), the
// scenario simulator passes an in-memory memnet.Listener so whole
// classrooms connect without a socket. Close closes the listener.
func (s *Server) Serve(l net.Listener) {
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop(l)
}

// Quiesce blocks until the server is idle — no chat line mid-handling,
// no broadcast mid-fan-out, no supervision task queued or running, and
// every enqueued message written to its connection (clients whose
// writer died are exempt: their queues can never drain) — or until the
// real-time timeout expires, reporting whether idleness was reached.
//
// Quiesce only proves the absence of in-flight work the server has
// already accepted; a caller that just wrote a message to a connection
// must first observe its effect (e.g. read back its own broadcast echo)
// before Quiesce can vouch for the consequences. The scenario simulator
// uses exactly that two-step barrier between scripted events.
func (s *Server) Quiesce(timeout time.Duration) bool {
	return clock.Until(timeout, func() bool {
		if s.activeSays.Load() != 0 || s.activeBroadcasts.Load() != 0 {
			return false
		}
		// Pipeline pending is checked after activeSays: a say still in
		// flight may be about to submit. Task completion enqueues the
		// agent responses before the pipeline counts the task done, so
		// Pending()==0 implies the responses are in the client queues,
		// where the pending counters below see them.
		if s.pipe != nil {
			if st := s.pipe.Stats(); st.Pending() != 0 {
				return false
			}
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		for c := range s.clients {
			if c.writerGone.Load() {
				continue
			}
			if c.pending.Load() != 0 {
				return false
			}
		}
		return true
	})
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Close stops the listener, disconnects all clients and waits for every
// goroutine to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var conns []net.Conn
	for c := range s.clients {
		conns = append(conns, c.conn)
	}
	s.mu.Unlock()

	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for _, conn := range conns {
		_ = conn.Close()
	}
	s.wg.Wait()
	if s.pipe != nil {
		// Readers are gone; run queued supervision to completion so
		// recording (corpus, profiles, FAQ) is not lost on shutdown.
		s.pipe.Close()
	}
	return err
}

// RoomNames returns the names of active rooms.
func (s *Server) RoomNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rooms))
	for name := range s.rooms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Members returns the user names present in a room.
func (s *Server) Members(roomName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.rooms[roomName]
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	codec := NewCodec(conn)

	// The first message must be a join.
	first, err := codec.Read()
	if err != nil {
		return
	}
	if first.Type != TypeJoin || first.From == "" || first.Room == "" {
		_ = codec.Write(Message{Type: TypeError, Text: "first message must be a join with room and from"})
		return
	}

	c := &client{
		name:  first.From,
		room:  first.Room,
		conn:  conn,
		codec: codec,
		// The queue must absorb the join-time burst — welcome plus a
		// full history replay, enqueued before the writer goroutine
		// starts — on top of the configured live-traffic slack.
		out:  make(chan Message, s.opts.SendQueue+s.opts.HistorySize+1),
		done: make(chan struct{}),
	}
	if err := s.join(c); err != nil {
		_ = codec.Write(Message{Type: TypeError, Text: err.Error()})
		return
	}

	// Writer goroutine: the only writer to the codec after join.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer c.writerGone.Store(true)
		for {
			select {
			case m, ok := <-c.out:
				if !ok {
					return
				}
				err := c.codec.Write(m)
				c.pending.Add(-1)
				if err != nil {
					_ = c.conn.Close()
					return
				}
			case <-c.done:
				return
			}
		}
	}()

	s.broadcast(c.room, Message{
		Type: TypeSystem, Room: c.room,
		Text: c.name + " joined the room", Time: s.clk.Now(),
	}, nil)
	s.logf("chat: %s joined %s", c.name, c.room)

	for {
		m, err := codec.Read()
		if err != nil {
			break
		}
		switch m.Type {
		case TypeSay:
			s.handleSay(c, m.Text)
		case TypeLeave:
			err = errors.New("left")
		case TypeJoin:
			s.enqueue(c, Message{Type: TypeError, Text: "already joined"})
		default:
			s.enqueue(c, Message{Type: TypeError, Text: "unknown message type " + string(m.Type)})
		}
		if err != nil {
			break
		}
	}

	s.leave(c)
	close(c.done)
	s.broadcast(c.room, Message{
		Type: TypeSystem, Room: c.room,
		Text: c.name + " left the room", Time: s.clk.Now(),
	}, nil)
	s.logf("chat: %s left %s", c.name, c.room)
}

// handleSay broadcasts a chat line and runs supervision.
func (s *Server) handleSay(c *client, text string) {
	s.activeSays.Add(1)
	defer s.activeSays.Add(-1)
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}
	if s.met != nil {
		s.met.messages.Inc()
	}
	now := s.clk.Now()
	chatMsg := Message{
		Type: TypeChat, Room: c.room, From: c.name, Text: text, Time: now,
	}
	if s.opts.Supervisor == nil {
		s.broadcast(c.room, chatMsg, nil)
		return
	}
	deliver := func() {
		for _, resp := range s.opts.Supervisor.Process(c.room, c.name, text) {
			msg := Message{
				Type: TypeAgent, Room: c.room, Agent: resp.Agent,
				Text: resp.Text, Time: s.clk.Now(), Private: resp.Private,
			}
			if s.met != nil {
				s.met.agentMsgs.Inc()
			}
			if resp.Private {
				s.enqueue(c, msg)
			} else {
				s.broadcast(c.room, msg, nil)
			}
		}
	}
	if s.pipe != nil {
		// Sharded by room: per-room response order is preserved, rooms
		// run in parallel, and a full shard queue back-pressures this
		// room's senders instead of spawning unbounded goroutines. The
		// room's sayMu makes broadcast order == submission order across
		// clients; backpressure therefore stalls only this room. With
		// admission control the Submit never blocks: at a watermark the
		// message is still broadcast but its supervision is shed (and
		// counted) — overload degrades coverage, not chat latency.
		s.mu.Lock()
		r := s.rooms[c.room]
		s.mu.Unlock()
		if r == nil {
			return // client raced a leave; nothing to supervise
		}
		r.sayMu.Lock()
		s.broadcast(c.room, chatMsg, nil)
		// Shed returns (ErrShed) are counted by the pipeline's OnShed
		// hook; ErrClosed (shutdown) is the only other outcome.
		_ = s.pipe.Submit(c.room, deliver)
		r.sayMu.Unlock()
		return
	}
	s.broadcast(c.room, chatMsg, nil)
	deliver()
}

// join registers the client and queues its welcome plus the room's
// history replay in the same critical section that makes the client a
// broadcast recipient. Broadcasters also hold s.mu, so every room
// message either predates the join (it is in the replayed history, and
// only there) or follows it (it is queued live, after the replay) —
// a late joiner sees each message exactly once, welcome first.
func (s *Server) join(c *client) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server shutting down")
	}
	r := s.rooms[c.room]
	if r == nil {
		r = &room{name: c.room, members: make(map[string]*client)}
		s.rooms[c.room] = r
	}
	if _, taken := r.members[c.name]; taken {
		return fmt.Errorf("name %q already in use in room %q", c.name, c.room)
	}
	r.members[c.name] = c
	s.clients[c] = struct{}{}
	s.enqueue(c, Message{Type: TypeWelcome, Room: c.room, Text: "welcome, " + c.name, Time: s.clk.Now()})
	for _, m := range r.history {
		s.enqueue(c, m)
	}
	return nil
}

func (s *Server) leave(c *client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.rooms[c.room]; r != nil {
		if r.members[c.name] == c {
			delete(r.members, c.name)
		}
		if len(r.members) == 0 {
			delete(s.rooms, c.room)
		}
	}
	delete(s.clients, c)
}

// broadcast sends to every room member except skip (may be nil) and
// records chat/agent traffic in the room history.
func (s *Server) broadcast(roomName string, m Message, skip *client) {
	s.activeBroadcasts.Add(1)
	defer s.activeBroadcasts.Add(-1)
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	s.mu.Lock()
	r := s.rooms[roomName]
	var members []*client
	if r != nil {
		members = make([]*client, 0, len(r.members))
		for _, c := range r.members {
			if c != skip {
				members = append(members, c)
			}
		}
		if s.opts.HistorySize > 0 && (m.Type == TypeChat || m.Type == TypeAgent) {
			r.history = append(r.history, m)
			if len(r.history) > s.opts.HistorySize {
				r.history = r.history[len(r.history)-s.opts.HistorySize:]
			}
		}
	}
	s.mu.Unlock()
	for _, c := range members {
		s.enqueue(c, m)
	}
	if s.met != nil {
		s.met.fanout.Add(int64(len(members)))
		s.met.broadcastDur.ObserveSince(start)
	}
}

// enqueue delivers without blocking; a stalled client is disconnected.
// The pending counter is raised before the send attempt and rolled back
// on the non-delivery paths, so it can overcount a written message for
// an instant but never undercount an outstanding one — the direction
// Quiesce's soundness needs.
func (s *Server) enqueue(c *client, m Message) {
	c.pending.Add(1)
	select {
	case c.out <- m:
	case <-c.done:
		c.pending.Add(-1)
	default:
		c.pending.Add(-1)
		if c.dropped.CompareAndSwap(false, true) {
			if s.met != nil {
				s.met.droppedClients.Inc()
			}
			s.logf("chat: dropping stalled client %s in %s", c.name, c.room)
		}
		_ = c.conn.Close()
	}
}
