package chat

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// binaryFuzzSeeds are valid frame streams plus corrupted variants; the
// checked-in corpus under testdata/fuzz/FuzzBinaryCodec extends them.
func binaryFuzzSeeds() [][]byte {
	var seeds [][]byte
	for _, m := range []Message{
		{Type: TypeSay, Text: "hello"},
		{Type: TypeJoin, Room: "algo", From: "alice", Wire: WireBinary},
		{Type: TypeAgent, Room: "r", Agent: "QA_System", Text: "yes", Private: true,
			Time: time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)},
		{Type: MsgType("x-extension")},
		{},
	} {
		seeds = append(seeds, appendBinaryFrame(nil, m))
	}
	// Two frames back to back.
	seeds = append(seeds, appendBinaryFrame(appendBinaryFrame(nil,
		Message{Type: TypeSay, Text: "a"}), Message{Type: TypeLeave}))
	// Truncations, garbage, and an oversized length prefix.
	whole := appendBinaryFrame(nil, Message{Type: TypeChat, From: "bob", Text: "hi"})
	seeds = append(seeds,
		whole[:len(whole)-1],
		whole[:3],
		[]byte{0xff, 0xff, 0xff, 0x7f},
		[]byte("not a frame at all"),
		append([]byte{5, 0, 0, 0}, 0xde, 0xad, 0xbe, 0xef, 0x99),
	)
	return seeds
}

// FuzzBinaryCodec throws arbitrary bytes at the binary-frame decoder:
// it must never panic, reject truncated/oversized/garbage frames with
// an error, and every message it does accept must survive an
// encode→decode round trip with every field intact.
func FuzzBinaryCodec(f *testing.F) {
	for _, s := range binaryFuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		codec := NewCodec(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard})
		codec.SetReadWire(WireBinary)
		for msgs := 0; msgs < 64; msgs++ {
			m, err := codec.Read()
			if err != nil {
				return // malformed or exhausted input: rejected cleanly
			}
			var buf bytes.Buffer
			out := NewCodec(struct {
				io.Reader
				io.Writer
			}{&buf, &buf})
			out.SetReadWire(WireBinary)
			out.SetWriteWire(WireBinary)
			if err := out.Write(m); err != nil {
				t.Fatalf("re-encode failed for accepted message %+v: %v", m, err)
			}
			back, err := out.Read()
			if err != nil {
				t.Fatalf("round trip read failed for %+v: %v", m, err)
			}
			if !sameMessage(m, back) {
				t.Fatalf("round trip changed message:\n in: %+v\nout: %+v", m, back)
			}
		}
	})
}
