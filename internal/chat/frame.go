package chat

import (
	"sync"
	"sync/atomic"
)

// frame is one broadcast message encoded once per wire format and
// shared by every recipient. Ownership rule (DESIGN.md D13): the
// broadcaster sets refs to the recipient count before enqueuing; each
// recipient path — written, dropped, or disconnected — releases exactly
// one reference, and the last release returns the frame to the pool.
// A frame whose writer goroutine died with messages still queued is
// simply garbage-collected; the pool never sees a live-referenced frame.
type frame struct {
	refs atomic.Int32
	text []byte // JSON line, newline-terminated; nil if no text recipient
	bin  []byte // length-prefixed binary frame; nil if no binary recipient
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// newFrame encodes m for the wire formats that have recipients. An
// encode failure (unmarshalable message — cannot happen for protocol
// traffic) falls back to nil bytes; the writer re-encodes per client.
func newFrame(m Message, needText, needBinary bool, refs int) *frame {
	f := framePool.Get().(*frame)
	f.refs.Store(int32(refs))
	// Zero length marks "not encoded" (a real encoding is never empty);
	// slicing to zero keeps the pooled capacity.
	f.text, f.bin = f.text[:0], f.bin[:0]
	if needText {
		if b, err := AppendEncoded(f.text, m, WireText); err == nil {
			f.text = b
		}
	}
	if needBinary {
		f.bin = appendBinaryFrame(f.bin, m)
	}
	//semalint:allow pooldiscipline: ownership transfers to the refs recipients; the last release() performs the Put (D13)
	return f
}

// bytesFor returns the shared encoding for a client's wire format, or
// nil when the writer must fall back to encoding the Message itself.
func (f *frame) bytesFor(w Wire) []byte {
	b := f.text
	if w == WireBinary {
		b = f.bin
	}
	if len(b) == 0 {
		return nil
	}
	return b
}

// release drops one reference, recycling the frame on the last one.
func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		framePool.Put(f)
	}
}
