package chat

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"semagent/internal/metrics"
	"semagent/internal/pipeline"
)

// TestSheddingKeepsChatDeliveryLive floods a room whose supervisor is
// wedged and checks the chat layer stays live: every line is still
// broadcast promptly, supervision is shed (and counted) instead of
// back-pressuring the sender, and the counters agree between the chat
// metrics and the pipeline stats.
func TestSheddingKeepsChatDeliveryLive(t *testing.T) {
	reg := metrics.NewRegistry()
	gate := make(chan struct{})
	var supervised atomic.Int64
	slowSup := SupervisorFunc(func(room, user, text string) []Response {
		supervised.Add(1)
		<-gate // wedged until test end
		return nil
	})
	s := NewServer(ServerOptions{
		Supervisor: slowSup,
		Async:      true,
		Workers:    1,
		ShedPolicy: pipeline.ShedRejectNew,
		// Tiny watermark: everything beyond the wedged task + 2 queued
		// sheds immediately.
		RoomHighWater: 2,
		Metrics:       reg,
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// LIFO: the gate must open before Close drains the wedged pipeline.
	defer s.Close()
	defer close(gate)

	cl, err := Dial(addr.String(), "class", "alice", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if err := cl.Say("the stack has a push operation"); err != nil {
			t.Fatal(err)
		}
	}
	// Every line must come back as a broadcast even though the
	// supervisor never finishes a single message.
	got := 0
	deadline := time.After(5 * time.Second)
	for got < n {
		select {
		case m, ok := <-cl.Receive():
			if !ok {
				t.Fatalf("connection closed after %d/%d echoes", got, n)
			}
			if m.Type == TypeChat && m.From == "alice" {
				got++
			}
		case <-deadline:
			t.Fatalf("only %d/%d broadcasts arrived while supervisor wedged — chat stalled", got, n)
		}
	}

	st, ok := s.SupervisionStats()
	if !ok {
		t.Fatal("no pipeline stats")
	}
	if st.Shed == 0 {
		t.Fatalf("stats = %+v, want sheds under a wedged supervisor", st)
	}
	shedMetric := reg.Counter("semagent_chat_supervision_shed_total", "").Value()
	if shedMetric != st.Shed {
		t.Errorf("chat shed counter = %d, pipeline Shed = %d — dropped messages miscounted", shedMetric, st.Shed)
	}
	if st.Submitted+st.ShedNew != n {
		t.Errorf("submitted %d + shed %d != %d sent", st.Submitted, st.ShedNew, n)
	}
	if msgs := reg.Counter("semagent_chat_messages_total", "").Value(); msgs != n {
		t.Errorf("chat messages counter = %d, want %d", msgs, n)
	}
}

// TestServerMetricsExposition runs a short supervised session and
// checks the whole registry renders as valid Prometheus text with the
// chat and pipeline families present.
func TestServerMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	sup := SupervisorFunc(func(room, user, text string) []Response {
		return []Response{{Agent: "Echo_Agent", Text: "noted: " + text}}
	})
	s := NewServer(ServerOptions{Supervisor: sup, Async: true, Metrics: reg})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cl, err := Dial(addr.String(), "class", "bob", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if err := cl.Say("hello there"); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the agent responses so histograms have samples.
	agents := 0
	deadline := time.After(5 * time.Second)
	for agents < 5 {
		select {
		case m := <-cl.Receive():
			if m.Type == TypeAgent {
				agents++
			}
		case <-deadline:
			t.Fatalf("only %d/5 agent responses", agents)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := metrics.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("server exposition invalid: %v\n%s", err, out)
	}
	for _, fam := range []string{
		"semagent_chat_messages_total",
		"semagent_chat_broadcast_seconds_bucket",
		"semagent_chat_connections",
		"semagent_pipeline_submitted_total",
		"semagent_pipeline_queue_wait_seconds_count",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
}
