package chat

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"semagent/internal/clock"
)

// rawDial opens a bare TCP connection to exercise protocol-level
// failure handling without the well-behaved Client.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func TestMalformedJSONDisconnects(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	conn := rawDial(t, addr)
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection rather than hang or crash.
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // closed: good
		}
	}
}

func TestJoinWithWrongFirstMessage(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	conn := rawDial(t, addr)
	if _, err := conn.Write([]byte(`{"type":"say","text":"hi"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	codec := NewCodec(conn)
	m, err := codec.Read()
	if err != nil {
		t.Fatalf("expected an error message, got read error %v", err)
	}
	if m.Type != TypeError {
		t.Errorf("first-say response = %+v, want error", m)
	}
}

func TestAbruptDisconnectDuringChat(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	conn := rawDial(t, addr)
	codec := NewCodec(conn)
	if err := codec.Write(Message{Type: TypeJoin, Room: "room", From: "ghost"}); err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Read(); err != nil { // welcome
		t.Fatal(err)
	}
	// Kill the socket mid-session without a leave message.
	_ = conn.Close()

	// Alice must observe the departure and the room must stay healthy.
	waitFor(t, alice, 2*time.Second, func(m Message) bool {
		return m.Type == TypeSystem && strings.Contains(m.Text, "ghost left")
	})
	if err := alice.Say("still alive?"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeChat })
}

func TestNameFreedAfterDisconnect(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	first, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// The name must be reusable once the first session is gone.
	var lastErr error
	ok := clock.Until(2*time.Second, func() bool {
		second, err := Dial(addr, "room", "alice", time.Second)
		if err != nil {
			lastErr = err
			return false
		}
		second.Close()
		return true
	})
	if !ok {
		t.Fatalf("name never freed: %v", lastErr)
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	conn := rawDial(t, addr)
	codec := NewCodec(conn)
	if err := codec.Write(Message{Type: TypeJoin, Room: "room", From: "bulk"}); err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Read(); err != nil { // welcome
		t.Fatal(err)
	}
	huge := strings.Repeat("x", maxLineBytes*2)
	if _, err := conn.Write([]byte(`{"type":"say","text":"` + huge + `"}` + "\n")); err != nil {
		// Remote may already have closed while we streamed: acceptable.
		return
	}
	// Whatever happens, the server must survive and serve others.
	other, err := Dial(addr, "room2", "ok", time.Second)
	if err != nil {
		t.Fatalf("server unhealthy after oversized message: %v", err)
	}
	other.Close()
}

func TestServerCloseWithActiveClients(t *testing.T) {
	s := NewServer(ServerOptions{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, 0, 4)
	for i := 0; i < 4; i++ {
		c, err := Dial(addr.String(), "room", fmt.Sprintf("u%d", i), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server Close deadlocked with active clients")
	}
	for _, c := range clients {
		c.Close()
	}
}

func TestDialTimeoutOnDeadServer(t *testing.T) {
	// A listener that accepts but never speaks: Dial must time out, not
	// hang.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			_ = conn // accept and stay silent
		}
	}()
	start := time.Now()
	_, err = Dial(l.Addr().String(), "room", "x", 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial to silent server should fail")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("dial took %v, timeout not applied", time.Since(start))
	}
}

func TestSayAfterClose(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	c, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Say("too late"); err == nil {
		t.Error("Say after Close should error")
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close should be nil, got %v", err)
	}
}

func TestEmptySayIgnored(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	a, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Say("   "); err != nil {
		t.Fatal(err)
	}
	if err := a.Say("real message"); err != nil {
		t.Fatal(err)
	}
	got := waitFor(t, a, time.Second, func(m Message) bool { return m.Type == TypeChat })
	if got.Text != "real message" {
		t.Errorf("first chat = %q, blank say leaked", got.Text)
	}
}
