package chat

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer launches a server on a loopback port and returns its
// address; cleanup closes it.
func startServer(t *testing.T, opts ServerOptions) string {
	t.Helper()
	s := NewServer(opts)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return addr.String()
}

// collect drains messages of the wanted types until predicate or timeout.
func waitFor(t *testing.T, c *Client, timeout time.Duration, pred func(Message) bool) Message {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case m, ok := <-c.Receive():
			if !ok {
				t.Fatalf("connection closed while waiting (err: %v)", c.Err())
			}
			if pred(m) {
				return m
			}
		case <-deadline:
			t.Fatal("timed out waiting for message")
		}
	}
}

func TestJoinBroadcastAndLeave(t *testing.T) {
	addr := startServer(t, ServerOptions{})

	alice, err := Dial(addr, "ds-course", "alice", time.Second)
	if err != nil {
		t.Fatalf("alice dial: %v", err)
	}
	defer alice.Close()

	bob, err := Dial(addr, "ds-course", "bob", time.Second)
	if err != nil {
		t.Fatalf("bob dial: %v", err)
	}
	defer bob.Close()

	// Alice sees bob join.
	waitFor(t, alice, time.Second, func(m Message) bool {
		return m.Type == TypeSystem && strings.Contains(m.Text, "bob joined")
	})

	if err := alice.Say("Hello class!"); err != nil {
		t.Fatalf("say: %v", err)
	}
	got := waitFor(t, bob, time.Second, func(m Message) bool { return m.Type == TypeChat })
	if got.From != "alice" || got.Text != "Hello class!" {
		t.Errorf("bob received %+v", got)
	}
	// The speaker receives their own broadcast too.
	waitFor(t, alice, time.Second, func(m Message) bool {
		return m.Type == TypeChat && m.From == "alice"
	})
}

func TestDuplicateNameRejected(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	a, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := Dial(addr, "room", "alice", time.Second); err == nil {
		t.Fatal("duplicate name should be rejected")
	}
}

func TestRoomsAreIsolated(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	a, err := Dial(addr, "room-a", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "room-b", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Say("only room a sees this"); err != nil {
		t.Fatal(err)
	}
	// Alice gets her own echo; bob must not see it.
	waitFor(t, a, time.Second, func(m Message) bool { return m.Type == TypeChat })
	select {
	case m := <-b.Receive():
		if m.Type == TypeChat {
			t.Errorf("cross-room leak: %+v", m)
		}
	case <-time.After(150 * time.Millisecond):
	}
}

func TestSupervisorResponsesPublicAndPrivate(t *testing.T) {
	sup := SupervisorFunc(func(room, user, text string) []Response {
		if strings.Contains(text, "wrong") {
			return []Response{{Agent: "Learning_Angel", Text: "please check grammar", Private: true}}
		}
		if strings.HasSuffix(text, "?") {
			return []Response{{Agent: "QA_System", Text: "the answer"}}
		}
		return nil
	})
	addr := startServer(t, ServerOptions{Supervisor: sup})

	alice, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := Dial(addr, "room", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	waitFor(t, alice, time.Second, func(m Message) bool {
		return m.Type == TypeSystem && strings.Contains(m.Text, "bob joined")
	})

	// Private agent response reaches only the speaker.
	if err := alice.Say("this are wrong"); err != nil {
		t.Fatal(err)
	}
	got := waitFor(t, alice, time.Second, func(m Message) bool { return m.Type == TypeAgent })
	if !got.Private || got.Agent != "Learning_Angel" {
		t.Errorf("agent msg = %+v", got)
	}
	select {
	case m := <-bob.Receive():
		if m.Type == TypeAgent {
			t.Errorf("private agent response leaked to bob: %+v", m)
		}
	case <-time.After(150 * time.Millisecond):
	}

	// Public QA answer reaches everyone.
	if err := bob.Say("what is a stack?"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, alice, time.Second, func(m Message) bool {
		return m.Type == TypeAgent && m.Agent == "QA_System"
	})
}

func TestAsyncSupervisionDelivers(t *testing.T) {
	sup := SupervisorFunc(func(room, user, text string) []Response {
		return []Response{{Agent: "QA_System", Text: "async answer"}}
	})
	addr := startServer(t, ServerOptions{Supervisor: sup, Async: true})
	c, err := Dial(addr, "room", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Say("anything"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, c, time.Second, func(m Message) bool {
		return m.Type == TypeAgent && m.Text == "async answer"
	})
}

func TestManyClientsBroadcast(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	const n = 8
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(addr, "big-room", fmt.Sprintf("user%d", i), time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		clients[i] = c
	}
	if err := clients[0].Say("hello everyone"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			waitFor(t, c, 2*time.Second, func(m Message) bool { return m.Type == TypeChat })
		}(clients[i])
	}
	wg.Wait()
}

func TestServerMembersAndRooms(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	_ = addr
	s := NewServer(ServerOptions{})
	a2, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(a2.String(), "lecture", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rooms := s.RoomNames()
	if len(rooms) != 1 || rooms[0] != "lecture" {
		t.Errorf("rooms = %v", rooms)
	}
	members := s.Members("lecture")
	if len(members) != 1 || members[0] != "alice" {
		t.Errorf("members = %v", members)
	}
	if got := s.Members("nope"); got != nil {
		t.Errorf("missing room members = %v", got)
	}
}

func TestProtocolErrorOnBadJoin(t *testing.T) {
	addr := startServer(t, ServerOptions{})
	// Raw dial without join: the first message must be rejected.
	c, err := Dial(addr, "", "", time.Second)
	if err == nil {
		c.Close()
		t.Fatal("join without room/name should fail")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf strings.Builder
	_ = buf
	// Use an in-memory pipe.
	type rw struct {
		r *strings.Reader
		w *strings.Builder
	}
	w := &strings.Builder{}
	cw := NewCodec(struct {
		*strings.Reader
		*strings.Builder
	}{strings.NewReader(""), w})
	msg := Message{Type: TypeChat, Room: "r", From: "alice", Text: "hi", Private: true}
	if err := cw.Write(msg); err != nil {
		t.Fatal(err)
	}
	cr := NewCodec(struct {
		*strings.Reader
		*strings.Builder
	}{strings.NewReader(w.String()), &strings.Builder{}})
	got, err := cr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeChat || got.From != "alice" || got.Text != "hi" || !got.Private {
		t.Errorf("round trip = %+v", got)
	}
}
