package linkgrammar

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// tokenizeReference is the original two-extra-pass implementation,
// kept as the behavioral oracle for the single-pass rewrite.
func tokenizeReference(sentence string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range sentence {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			cur.WriteRune(r)
		case r == '\'' || r == '’':
			if cur.Len() > 0 {
				cur.WriteByte('\'')
			}
		case r == '-':
			if cur.Len() > 0 {
				cur.WriteByte('-')
			}
		default:
			flush()
		}
	}
	flush()
	for i, t := range toks {
		toks[i] = strings.Trim(t, "-'")
	}
	out := toks[:0]
	for _, t := range toks {
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

func TestTokenizeMatchesReference(t *testing.T) {
	cases := []string{
		"",
		"The stack has a push operation.",
		"doesn't DOESN'T doesn’t",
		"last-in first-out (LIFO)!",
		"trailing-- hyphens-' and'’ apostrophes''",
		"'leading ’quote -dash",
		"MiXeD CaSe WORDS",
		"a--b c''d e-'f",
		"héllo wörld über",
		"数 non-ascii ütf8",
		"x", "-", "'", "’", "--''’’",
		"tabs\tand\nnewlines\r\nsplit",
		"1234 56-78 9'0",
		"\xe2\x80", "\xe2\x80\x99", "a\xe2\x80", "a\xff b",
	}
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("aA zZ09-'?.\xe2\x80\x99\xc3\xa9")
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(40))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		cases = append(cases, string(b))
	}
	for _, in := range cases {
		want := tokenizeReference(in)
		got := Tokenize(in)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %q, reference = %q", in, got, want)
		}
		appended := AppendTokens([]string{"seed"}, in)
		if appended[0] != "seed" || !reflect.DeepEqual(appended[1:], append([]string{}, want...)) {
			t.Errorf("AppendTokens(%q) = %q, want seed+%q", in, appended, want)
		}
	}
}

func TestAppendTokensZeroAllocFastPath(t *testing.T) {
	// Already-lowercase ASCII input: every token is a substring of the
	// input, so with a pre-sized destination the call must not allocate.
	in := "the stack has a push operation and a pop operation"
	dst := make([]string, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendTokens(dst[:0], in)
	})
	if allocs != 0 {
		t.Fatalf("AppendTokens allocated %.1f times per run on lowercase input", allocs)
	}
	if len(dst) != 10 {
		t.Fatalf("got %d tokens, want 10: %q", len(dst), dst)
	}
}
