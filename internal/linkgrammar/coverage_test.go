package linkgrammar

import "testing"

// TestGrammarCoverage is the dictionary's acceptance suite: a broad
// table of classroom-chat sentences that must parse cleanly, and of
// clearly broken ones that must not. It documents (and pins) the
// grammar's coverage envelope.
func TestGrammarCoverage(t *testing.T) {
	p := newTestParser(t)

	good := []string{
		// Declaratives around the course domain.
		"The stack has a push operation.",
		"A queue is a fifo structure.",
		"The binary tree has a root node.",
		"A heap is a complete binary tree.",
		"The hash table stores the values in buckets.",
		"The algorithm sorts the elements in the array.",
		"Pointers connect the nodes in the list.",
		"The root is the first node of the tree.",
		"An array is a linear structure.",
		"The complexity of the search is logarithmic.",
		"The teacher explains the insertion.",
		"Students implement the algorithm.",
		"This structure supports the insert operation.",
		"The data is stored in the heap.",
		"The data is pushed in this heap.",
		"The list contains many elements.",
		"Every node has a pointer.",
		"These stacks are empty.",
		"The last element is at the top.",

		// Negation.
		"The tree doesn't have a pop method.",
		"The queue is not a lifo structure.",
		"I don't understand the lesson.",
		"The array cannot grow.",
		"You shouldn't delete the root.",
		"The list isn't empty.",
		"We never use this method.",

		// Questions.
		"What is a stack?",
		"What is the difference?",
		"Which structure has the method push?",
		"Who knows the answer?",
		"Does a stack have a pop method?",
		"Is the tree balanced?",
		"Are these stacks empty?",
		"Can I insert a value into the tree?",
		"How does a queue work?",
		"Why is the heap a complete tree?",
		"Did you understand the lesson?",
		"Do the students like the course?",

		// Imperatives.
		"Push the data into the stack.",
		"Insert the value into the tree.",
		"Delete the node from the list.",
		"Sort the elements in the array.",
		"Please explain the algorithm.",
		"Check the front of the queue.",
		"Don't remove the root.",

		// Pronouns, modals, infinitives.
		"I push the data into the stack.",
		"You can traverse the tree.",
		"We should balance the tree.",
		"It is very useful.",
		"They discuss the homework.",
		"I want to learn the algorithm.",
		"She needs to review the chapter.",
		"He understands the concept.",

		// Copula varieties.
		"The stack is empty.",
		"The answer is correct.",
		"The tree is in the memory.",
		"The elements are sorted.",
		"That is a good question.",
		"It's a binary tree.",

		// Progressives.
		"The student is reading the chapter.",
		"We are discussing the homework.",
		"The car is drinking water.",

		// Greetings and chit-chat.
		"Hello everyone, I am ready.",
		"Yes, the stack has a push operation.",
		"Thanks, I understand the lesson now.",
		"Sorry, I don't know the answer.",

		// General English.
		"The cat chased a mouse.",
		"The students read many books.",
		"My friend likes the course.",
		"The program runs quickly.",
		"The teacher gave an example.",
	}
	for _, s := range good {
		res, err := p.Parse(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if !res.Valid() {
			t.Errorf("%q: expected clean parse, got nulls=%d linkages=%d unknown=%v",
				s, res.NullCount, len(res.Linkages), res.UnknownWords)
		}
	}

	bad := []string{
		// Agreement.
		"The stack have a push operation.",
		"The stacks has a push operation.",
		"I pushes the data.",
		"The students reads the book.",
		"He understand the concept.",
		"The trees is balanced.",
		// Word order / duplication.
		"Cat the chased a mouse.",
		"The the stack has a push operation.",
		"Stack the has a operation push the.",
		"Chased the cat a mouse.",
		"Have the stack does a pop method.",
		// Fragments that cannot link.
		"The into stack the.",
		"Is the the.",
		"A an the.",
	}
	for _, s := range bad {
		res, err := p.Parse(s)
		if err != nil {
			continue // rejected outright is fine
		}
		if res.Valid() {
			t.Errorf("%q: expected a grammar error, but parsed cleanly:\n%s", s, res.Best())
		}
	}
}

// TestGrammarCoverageExtension pins the second vocabulary round:
// discourse openers, perception copulas and classroom nouns.
func TestGrammarCoverageExtension(t *testing.T) {
	p := newTestParser(t)
	good := []string{
		"But the stack is empty.",
		"Maybe the algorithm is wrong.",
		"So the tree is balanced.",
		"That seems correct.",
		"This looks confusing.",
		"The quiz has ten questions.",
		"The deadline of the project is in a week.",
		"I believe the answer is correct.",
		"I think that the tree is balanced.",
		"She knows the algorithm works.",
		"The teacher shows a slide.",
		"We solve the problem together.",
		"The difference is very clear.",
	}
	for _, s := range good {
		res, err := p.Parse(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if !res.Valid() {
			t.Errorf("%q: expected clean parse, got nulls=%d unknown=%v",
				s, res.NullCount, res.UnknownWords)
		}
	}
}
