package linkgrammar

import (
	"fmt"
	"strings"
)

// exprKind enumerates the node kinds of a parsed linking-requirement
// formula.
type exprKind int8

const (
	exprConn  exprKind = iota + 1 // a single connector
	exprAnd                       // ordered conjunction: every operand must be satisfied
	exprOr                        // disjunction: exactly one operand is satisfied
	exprEmpty                     // the empty formula "()", always satisfied
	exprRef                       // reference to a named macro "<name>"
)

// Expr is a node of a linking-requirement formula, e.g. "{@A-} & D- & S+".
type Expr struct {
	kind exprKind
	conn Connector // exprConn
	subs []*Expr   // exprAnd / exprOr operands
	ref  string    // exprRef macro name
	cost int       // extra cost from enclosing [] brackets
}

// String renders the expression in dictionary notation.
func (e *Expr) String() string {
	var s string
	switch e.kind {
	case exprConn:
		s = e.conn.String()
	case exprEmpty:
		s = "()"
	case exprRef:
		s = "<" + e.ref + ">"
	case exprAnd, exprOr:
		op := " & "
		if e.kind == exprOr {
			op = " or "
		}
		parts := make([]string, len(e.subs))
		for i, sub := range e.subs {
			parts[i] = sub.String()
		}
		s = "(" + strings.Join(parts, op) + ")"
	}
	for i := 0; i < e.cost; i++ {
		s = "[" + s + "]"
	}
	return s
}

// formulaParser is a recursive-descent parser for dictionary formulas.
//
// Grammar:
//
//	expr    := andExpr ( "or" andExpr )*
//	andExpr := unary ( "&" unary )*
//	unary   := CONNECTOR | "<name>" | "(" expr? ")" | "{" expr "}" | "[" expr "]"
//	CONNECTOR := "@"? [A-Z]+ [a-z*]* ("+"|"-")
type formulaParser struct {
	toks []string
	pos  int
}

// ParseFormula parses a linking-requirement formula into an expression
// tree. Macro references ("<name>") are left unresolved; Dictionary
// resolves them at disjunct-building time.
func ParseFormula(src string) (*Expr, error) {
	toks, err := lexFormula(src)
	if err != nil {
		return nil, err
	}
	p := &formulaParser{toks: toks}
	if len(toks) == 0 {
		return &Expr{kind: exprEmpty}, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("formula %q: unexpected token %q", src, p.toks[p.pos])
	}
	return e, nil
}

// lexFormula splits a formula into tokens: connectors, macro references,
// brackets and operators.
func lexFormula(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '(' || ch == ')' || ch == '{' || ch == '}' || ch == '[' || ch == ']' || ch == '&':
			toks = append(toks, string(ch))
			i++
		case ch == '<':
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("formula %q: unterminated macro reference", src)
			}
			toks = append(toks, src[i:i+j+1])
			i += j + 1
		case ch == 'o' && strings.HasPrefix(src[i:], "or") &&
			(i+2 >= len(src) || !isConnChar(src[i+2])):
			toks = append(toks, "or")
			i += 2
		case ch == '@' || (ch >= 'A' && ch <= 'Z'):
			j := i
			if src[j] == '@' {
				j++
			}
			for j < len(src) && src[j] >= 'A' && src[j] <= 'Z' {
				j++
			}
			for j < len(src) && (src[j] == '*' || (src[j] >= 'a' && src[j] <= 'z')) {
				j++
			}
			if j >= len(src) || (src[j] != '+' && src[j] != '-') {
				return nil, fmt.Errorf("formula %q: connector at offset %d lacks +/- direction", src, i)
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		default:
			return nil, fmt.Errorf("formula %q: unexpected character %q", src, ch)
		}
	}
	return toks, nil
}

func isConnChar(b byte) bool {
	return b == '@' || b == '*' || (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z')
}

func (p *formulaParser) parseOr() (*Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for p.pos < len(p.toks) && p.toks[p.pos] == "or" {
		p.pos++
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return &Expr{kind: exprOr, subs: subs}, nil
}

func (p *formulaParser) parseAnd() (*Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for p.pos < len(p.toks) && p.toks[p.pos] == "&" {
		p.pos++
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return &Expr{kind: exprAnd, subs: subs}, nil
}

func (p *formulaParser) parseUnary() (*Expr, error) {
	if p.pos >= len(p.toks) {
		return nil, fmt.Errorf("unexpected end of formula")
	}
	tok := p.toks[p.pos]
	switch tok {
	case "(":
		p.pos++
		if p.pos < len(p.toks) && p.toks[p.pos] == ")" {
			p.pos++
			return &Expr{kind: exprEmpty}, nil
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case "{":
		// {X} is sugar for (X or ()).
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return &Expr{kind: exprOr, subs: []*Expr{e, {kind: exprEmpty}}}, nil
	case "[":
		// [X] keeps X but adds one unit of cost to every disjunct it
		// contributes to, used to rank linkages.
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		e.cost++
		return e, nil
	}
	p.pos++
	if strings.HasPrefix(tok, "<") {
		return &Expr{kind: exprRef, ref: tok[1 : len(tok)-1]}, nil
	}
	conn, err := parseConnectorToken(tok)
	if err != nil {
		return nil, err
	}
	return &Expr{kind: exprConn, conn: conn}, nil
}

func (p *formulaParser) expect(tok string) error {
	if p.pos >= len(p.toks) || p.toks[p.pos] != tok {
		got := "end of formula"
		if p.pos < len(p.toks) {
			got = fmt.Sprintf("%q", p.toks[p.pos])
		}
		return fmt.Errorf("expected %q, got %s", tok, got)
	}
	p.pos++
	return nil
}

func parseConnectorToken(tok string) (Connector, error) {
	c := Connector{}
	if strings.HasPrefix(tok, "@") {
		c.Multi = true
		tok = tok[1:]
	}
	if len(tok) < 2 {
		return c, fmt.Errorf("connector token %q too short", tok)
	}
	switch tok[len(tok)-1] {
	case '+':
		c.Dir = DirRight
	case '-':
		c.Dir = DirLeft
	default:
		return c, fmt.Errorf("connector token %q lacks direction", tok)
	}
	c.Name = tok[:len(tok)-1]
	if upperLen(c.Name) == 0 {
		return c, fmt.Errorf("connector token %q lacks an upper-case type", tok)
	}
	return c, nil
}
