package linkgrammar

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Dictionary maps words to their linking requirements. The text format
// follows the CMU dictionary style:
//
//	% comment until end of line
//	the a: D+;
//	cat dog: {@A-} & {D-} & (Wd- & S+ or O- or J-);
//	<trans-verb>: S- & {O+};
//	push pop: <trans-verb> or (I- & {O+});
//
// An entry lists one or more words (or one "<macro>" name), a colon, a
// formula and a terminating semicolon. Macros may be referenced from any
// formula and are resolved when disjuncts are built.
type Dictionary struct {
	// mu guards every field: the chat server parses from many
	// connection goroutines while disjunct caches fill lazily.
	mu      sync.RWMutex
	entries map[string]*Expr // word -> formula
	macros  map[string]*Expr // macro name -> formula

	// disjuncts caches the expanded, interned disjunct list per word.
	disjuncts map[string][]*Disjunct
	interner  *connInterner

	// unknownWord, when non-empty, names the macro whose formula is
	// assigned to words missing from the dictionary (the paper's system
	// must keep working when learners type unknown words).
	unknownWord string

	// gen counts definition changes; parse caches compare it to flush
	// entries parsed under an older vocabulary.
	gen uint64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		entries:   make(map[string]*Expr),
		macros:    make(map[string]*Expr),
		disjuncts: make(map[string][]*Disjunct),
		interner:  newConnInterner(),
	}
}

// LoadString parses dictionary source text into the dictionary, merging
// with existing entries. Later definitions of a word extend earlier ones
// as alternatives (joined with "or").
func (d *Dictionary) LoadString(src string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gen++
	stripped := stripComments(src)
	statements := splitStatements(stripped)
	for i, stmt := range statements {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		colon := strings.Index(stmt, ":")
		if colon < 0 {
			return fmt.Errorf("dictionary statement %d (%q): missing ':'", i+1, clip(stmt))
		}
		heads := strings.Fields(stmt[:colon])
		if len(heads) == 0 {
			return fmt.Errorf("dictionary statement %d: no words before ':'", i+1)
		}
		formula, err := ParseFormula(stmt[colon+1:])
		if err != nil {
			return fmt.Errorf("dictionary statement %d: %w", i+1, err)
		}
		for _, head := range heads {
			if strings.HasPrefix(head, "<") && strings.HasSuffix(head, ">") {
				name := head[1 : len(head)-1]
				d.macros[name] = mergeOr(d.macros[name], formula)
				continue
			}
			word := normalizeWord(head)
			d.entries[word] = mergeOr(d.entries[word], formula)
			delete(d.disjuncts, word)
		}
	}
	return nil
}

// SetUnknownWordMacro designates a macro whose formula is used for words
// absent from the dictionary. Pass "" to disable the fallback.
func (d *Dictionary) SetUnknownWordMacro(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if name != "" {
		if _, ok := d.macros[name]; !ok {
			return fmt.Errorf("unknown-word macro <%s> is not defined", name)
		}
	}
	d.unknownWord = name
	d.gen++
	return nil
}

// Generation returns a counter incremented by every definition change
// (LoadString, Define, SetUnknownWordMacro). Parse caches key their
// validity on it.
func (d *Dictionary) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// Define adds a single word with the given formula source, merging with
// any existing definition. The ontology loader uses this to teach the
// parser new domain terms at runtime.
func (d *Dictionary) Define(word, formulaSrc string) error {
	formula, err := ParseFormula(formulaSrc)
	if err != nil {
		return fmt.Errorf("define %q: %w", word, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gen++
	word = normalizeWord(word)
	d.entries[word] = mergeOr(d.entries[word], formula)
	delete(d.disjuncts, word)
	return nil
}

// Has reports whether the word has an explicit dictionary entry.
func (d *Dictionary) Has(word string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.entries[normalizeWord(word)]
	return ok
}

// Len returns the number of defined word forms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Words returns the sorted list of defined word forms.
func (d *Dictionary) Words() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.entries))
	for w := range d.entries {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Disjuncts returns the expanded disjunct list for a word. Unknown words
// receive the unknown-word macro's disjuncts when configured, otherwise
// nil, which the parser reports as an unknown word.
func (d *Dictionary) Disjuncts(word string) ([]*Disjunct, error) {
	word = normalizeWord(word)
	d.mu.RLock()
	if ds, ok := d.disjuncts[word]; ok {
		d.mu.RUnlock()
		return ds, nil
	}
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if ds, ok := d.disjuncts[word]; ok {
		return ds, nil
	}
	formula, ok := d.entries[word]
	if !ok {
		if isNumeric(word) {
			if numFormula, hasNum := d.macros["number"]; hasNum {
				formula = numFormula
			}
		}
		if formula == nil {
			if d.unknownWord == "" {
				return nil, nil
			}
			formula = d.macros[d.unknownWord]
		}
	}
	ds, err := buildDisjuncts(formula, d.resolveMacro)
	if err != nil {
		return nil, fmt.Errorf("word %q: %w", word, err)
	}
	for _, dj := range ds {
		dj.finalize(d.interner)
	}
	d.disjuncts[word] = ds
	return ds, nil
}

func (d *Dictionary) resolveMacro(name string) (*Expr, error) {
	e, ok := d.macros[name]
	if !ok {
		return nil, fmt.Errorf("undefined macro <%s>", name)
	}
	return e, nil
}

// mergeOr combines an existing formula with an additional alternative.
func mergeOr(existing, extra *Expr) *Expr {
	if existing == nil {
		return extra
	}
	return &Expr{kind: exprOr, subs: []*Expr{existing, extra}}
}

// stripComments removes '%' line comments.
func stripComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inComment := false
	for i := 0; i < len(src); i++ {
		switch {
		case inComment:
			if src[i] == '\n' {
				inComment = false
				b.WriteByte('\n')
			}
		case src[i] == '%':
			inComment = true
		default:
			b.WriteByte(src[i])
		}
	}
	return b.String()
}

func splitStatements(src string) []string {
	return strings.Split(src, ";")
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}

// normalizeWord lower-cases a word for dictionary lookup. The pronoun "I"
// is stored lower-cased too; tokenization handles case folding.
func normalizeWord(w string) string {
	return strings.ToLower(w)
}

// isNumeric reports whether the token is a plain number like "42".
func isNumeric(w string) bool {
	if w == "" {
		return false
	}
	for i := 0; i < len(w); i++ {
		if w[i] < '0' || w[i] > '9' {
			return false
		}
	}
	return true
}
