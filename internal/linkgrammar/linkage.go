package linkgrammar

import (
	"fmt"
	"sort"
	"strings"
)

// Link is one established connection between two words of a linkage.
// Word indices are wall-included: index 0 is LEFT-WALL, index i>=1 is the
// (i-1)-th sentence token.
type Link struct {
	Left  int
	Right int
	Label string
	LConn Connector
	RConn Connector
}

// Linkage is a complete assignment of links to a sentence that satisfies
// every word's linking requirements and the four meta-rules.
type Linkage struct {
	// Words holds LEFT-WALL followed by the sentence tokens.
	Words []string
	// Links are sorted by (Left, Right).
	Links []Link
	// NullWords are wall-included indices of words skipped by the
	// fault-tolerant parser; empty for a fully grammatical sentence.
	NullWords []int
	// Cost is the summed disjunct cost; lower is a more natural parse.
	Cost int
}

// TokenIndex converts a wall-included word index to a token index.
func (lk *Linkage) TokenIndex(wordIndex int) int { return wordIndex - 1 }

// NullTokens returns the skipped words as token indices.
func (lk *Linkage) NullTokens() []int {
	out := make([]int, len(lk.NullWords))
	for i, w := range lk.NullWords {
		out[i] = w - 1
	}
	return out
}

// HasLinkBetween reports whether some link joins words a and b.
func (lk *Linkage) HasLinkBetween(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, l := range lk.Links {
		if l.Left == a && l.Right == b {
			return true
		}
	}
	return false
}

// LinksFrom returns all links that touch the given word.
func (lk *Linkage) LinksFrom(word int) []Link {
	var out []Link
	for _, l := range lk.Links {
		if l.Left == word || l.Right == word {
			out = append(out, l)
		}
	}
	return out
}

// HasLabel reports whether any link's label starts with prefix, e.g.
// HasLabel("Wq") detects a question linkage.
func (lk *Linkage) HasLabel(prefix string) bool {
	for _, l := range lk.Links {
		if strings.HasPrefix(l.Label, prefix) {
			return true
		}
	}
	return false
}

// violatesExclusion reports whether two links join the same word pair.
// Links must already be sorted by (Left, Right).
func (lk *Linkage) violatesExclusion() bool {
	for i := 1; i < len(lk.Links); i++ {
		if lk.Links[i].Left == lk.Links[i-1].Left && lk.Links[i].Right == lk.Links[i-1].Right {
			return true
		}
	}
	return false
}

// Validate checks the four link grammar meta-rules: planarity,
// connectivity (null words exempt), ordering (implied by construction
// but re-checked structurally: links from a word never cross each other)
// and exclusion. It returns nil when the linkage is well formed.
func (lk *Linkage) Validate() error {
	n := len(lk.Words)
	isNull := make(map[int]bool, len(lk.NullWords))
	for _, w := range lk.NullWords {
		isNull[w] = true
	}
	for _, l := range lk.Links {
		if l.Left < 0 || l.Right >= n || l.Left >= l.Right {
			return fmt.Errorf("link %s(%d,%d): out of range or inverted", l.Label, l.Left, l.Right)
		}
		if isNull[l.Left] || isNull[l.Right] {
			return fmt.Errorf("link %s(%d,%d) touches a null word", l.Label, l.Left, l.Right)
		}
	}

	// Exclusion.
	seen := make(map[[2]int]bool, len(lk.Links))
	for _, l := range lk.Links {
		key := [2]int{l.Left, l.Right}
		if seen[key] {
			return fmt.Errorf("exclusion violated: two links join words %d and %d", l.Left, l.Right)
		}
		seen[key] = true
	}

	// Planarity: for links (a,b) and (c,d) with a<c, crossing means
	// a < c < b < d.
	sorted := make([]Link, len(lk.Links))
	copy(sorted, lk.Links)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Left != sorted[j].Left {
			return sorted[i].Left < sorted[j].Left
		}
		return sorted[i].Right < sorted[j].Right
	})
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			a, b := sorted[i].Left, sorted[i].Right
			c, d := sorted[j].Left, sorted[j].Right
			if a < c && c < b && b < d {
				return fmt.Errorf("planarity violated: links (%d,%d) and (%d,%d) cross", a, b, c, d)
			}
		}
	}

	// Connectivity over non-null words.
	adj := make(map[int][]int, n)
	for _, l := range lk.Links {
		adj[l.Left] = append(adj[l.Left], l.Right)
		adj[l.Right] = append(adj[l.Right], l.Left)
	}
	start := -1
	want := 0
	for w := 0; w < n; w++ {
		if !isNull[w] {
			want++
			if start < 0 {
				start = w
			}
		}
	}
	if start < 0 {
		return nil // degenerate: everything skipped
	}
	visited := make(map[int]bool, want)
	stack := []int{start}
	visited[start] = true
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[w] {
			if !visited[u] {
				visited[u] = true
				stack = append(stack, u)
			}
		}
	}
	if len(visited) != want {
		return fmt.Errorf("connectivity violated: %d of %d non-null words reachable", len(visited), want)
	}
	return nil
}

// String renders the linkage as an ASCII diagram in the style of the CMU
// parser, links drawn as brackets above the sentence:
//
//	+------Wd-----+
//	|    +-D-+-S--+--O-+-D-+
//	LEFT-WALL the cat chased a mouse
func (lk *Linkage) String() string {
	if len(lk.Words) == 0 {
		return "(empty linkage)"
	}
	// Column start of each word in the sentence line.
	starts := make([]int, len(lk.Words))
	var sentence strings.Builder
	for i, w := range lk.Words {
		if i > 0 {
			sentence.WriteByte(' ')
		}
		starts[i] = sentence.Len()
		sentence.WriteString(w)
	}
	centers := make([]int, len(lk.Words))
	for i, w := range lk.Words {
		centers[i] = starts[i] + len(w)/2
	}

	// Assign each link a height: short links low, enclosing links higher.
	links := make([]Link, len(lk.Links))
	copy(links, lk.Links)
	sort.Slice(links, func(i, j int) bool {
		si, sj := links[i].Right-links[i].Left, links[j].Right-links[j].Left
		if si != sj {
			return si < sj
		}
		return links[i].Left < links[j].Left
	})
	heights := make([]int, len(links))
	for i := range links {
		h := 1
		for j := 0; j < i; j++ {
			if links[j].Left >= links[i].Left && links[j].Right <= links[i].Right && heights[j] >= h {
				h = heights[j] + 1
			}
		}
		heights[i] = h
	}
	maxH := 0
	for _, h := range heights {
		if h > maxH {
			maxH = h
		}
	}

	width := sentence.Len()
	rows := make([][]byte, maxH)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	for i, l := range links {
		row := rows[maxH-heights[i]]
		lc, rc := centers[l.Left], centers[l.Right]
		row[lc] = '+'
		row[rc] = '+'
		for c := lc + 1; c < rc; c++ {
			if row[c] == ' ' {
				row[c] = '-'
			}
		}
		label := l.Label
		mid := (lc + rc - len(label)) / 2
		if mid <= lc {
			mid = lc + 1
		}
		for k := 0; k < len(label) && mid+k < rc; k++ {
			row[mid+k] = label[k]
		}
		// Draw verticals down to the words.
		for h := maxH - heights[i] + 1; h < maxH; h++ {
			for _, c := range []int{lc, rc} {
				if rows[h][c] == ' ' || rows[h][c] == '-' {
					rows[h][c] = '|'
				}
			}
		}
	}
	var b strings.Builder
	for _, r := range rows {
		b.Write(r)
		b.WriteByte('\n')
	}
	b.WriteString(sentence.String())
	if len(lk.NullWords) > 0 {
		b.WriteString("\n[null words:")
		for _, w := range lk.NullWords {
			fmt.Fprintf(&b, " %s", lk.Words[w])
		}
		b.WriteByte(']')
	}
	return b.String()
}
