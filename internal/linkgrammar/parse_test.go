package linkgrammar

import (
	"strings"
	"testing"
)

func newTestParser(t *testing.T) *Parser {
	t.Helper()
	p, err := NewEnglishParser()
	if err != nil {
		t.Fatalf("NewEnglishParser: %v", err)
	}
	return p
}

func mustParse(t *testing.T, p *Parser, sentence string) *Result {
	t.Helper()
	res, err := p.Parse(sentence)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sentence, err)
	}
	return res
}

func TestPaperExampleSentence(t *testing.T) {
	// Figure 2 of the paper: "The cat chased a mouse."
	p := newTestParser(t)
	res := mustParse(t, p, "The cat chased a mouse.")
	if !res.Valid() {
		t.Fatalf("sentence should parse with no null words, got nulls=%d linkages=%d",
			res.NullCount, len(res.Linkages))
	}
	best := res.Best()
	if err := best.Validate(); err != nil {
		t.Fatalf("best linkage invalid: %v\n%s", err, best)
	}
	// Expected links of Fig. 2: D(the,cat) S(cat,chased) O(chased,mouse) D(a,mouse).
	for _, want := range [][2]int{{1, 2}, {2, 3}, {3, 5}, {4, 5}} {
		if !best.HasLinkBetween(want[0], want[1]) {
			t.Errorf("missing link between words %d and %d\n%s", want[0], want[1], best)
		}
	}
}

func TestGrammaticalSentencesParse(t *testing.T) {
	p := newTestParser(t)
	sentences := []string{
		"The cat chased a mouse.",
		"A stack is a lifo structure.",
		"The stack has a push operation.",
		"I push the data into the stack.",
		"The teacher explains the lesson.",
		"Students understand the course.",
		"Does a stack have a pop method?",
		"What is a stack?",
		"Which structure has the method push?",
		"The tree doesn't have a pop method.",
		"A queue supports the enqueue operation.",
		"You can insert a value into the tree.",
		"The algorithm sorts the elements.",
		"Is the stack empty?",
		"How does a queue work?",
		"Push the data into the stack.",
		"A binary tree has a root node.",
		"The data is stored in the heap.",
		"I want to learn the algorithm.",
		"The list doesn't contain the value.",
		"We discuss the homework.",
		"It is very useful.",
		"The relations of the stack and the queue are important.",
		"A heap is a complete binary tree.",
		"Trees have nodes.",
	}
	for _, s := range sentences {
		res := mustParse(t, p, s)
		if !res.Valid() {
			t.Errorf("%q: expected a full parse, got nulls=%d linkages=%d unknown=%v",
				s, res.NullCount, len(res.Linkages), res.UnknownWords)
			continue
		}
		for _, lk := range res.Linkages {
			if err := lk.Validate(); err != nil {
				t.Errorf("%q: invalid linkage: %v\n%s", s, err, lk)
			}
		}
	}
}

func TestUngrammaticalSentencesNeedNulls(t *testing.T) {
	p := newTestParser(t)
	sentences := []string{
		"The cat chased chased a mouse.",
		"Cat the chased a mouse.",
		"The the cat chased a mouse.",
		"The cats chases a mouse.", // agreement error
		"I pushes the data.",       // agreement error
	}
	for _, s := range sentences {
		res := mustParse(t, p, s)
		if res.Valid() {
			t.Errorf("%q: expected syntax trouble, but parsed cleanly:\n%s", s, res.Best())
		}
	}
}

func TestNullWordsLocateError(t *testing.T) {
	p := newTestParser(t)
	res := mustParse(t, p, "The the cat chased a mouse.")
	if len(res.Linkages) == 0 {
		t.Fatal("expected a fault-tolerant parse")
	}
	if res.NullCount != 1 {
		t.Fatalf("want 1 null word, got %d", res.NullCount)
	}
	best := res.Best()
	nulls := best.NullTokens()
	if len(nulls) != 1 || (nulls[0] != 0 && nulls[0] != 1) {
		t.Errorf("null word should be one of the duplicated determiners, got %v", nulls)
	}
	if err := best.Validate(); err != nil {
		t.Errorf("linkage with nulls should still validate: %v", err)
	}
}

func TestQuestionLinkagesCarryWqLabel(t *testing.T) {
	p := newTestParser(t)
	for _, s := range []string{
		"What is a stack?",
		"Does a stack have a pop method?",
		"Which structure has the method push?",
		"How does a queue work?",
	} {
		res := mustParse(t, p, s)
		if !res.Valid() {
			t.Errorf("%q should parse", s)
			continue
		}
		if !res.Best().HasLabel("Wq") {
			t.Errorf("%q: expected a Wq wall link\n%s", s, res.Best())
		}
	}
}

func TestImperativeLinkagesCarryWiLabel(t *testing.T) {
	p := newTestParser(t)
	res := mustParse(t, p, "Push the data into the stack.")
	if !res.Valid() {
		t.Fatal("imperative should parse")
	}
	if !res.Best().HasLabel("Wi") {
		t.Errorf("expected a Wi wall link\n%s", res.Best())
	}
}

func TestUnknownWordsReported(t *testing.T) {
	p := newTestParser(t)
	res := mustParse(t, p, "The gizmo frobnicates the data.")
	if len(res.UnknownWords) == 0 {
		t.Error("expected unknown words to be reported")
	}
}

func TestDiagramRendering(t *testing.T) {
	p := newTestParser(t)
	res := mustParse(t, p, "The cat chased a mouse.")
	diagram := res.Best().String()
	for _, want := range []string{"left-wall", "cat", "chased", "mouse", "+"} {
		if !strings.Contains(diagram, want) {
			t.Errorf("diagram missing %q:\n%s", want, diagram)
		}
	}
}

func TestConnectorMatching(t *testing.T) {
	cases := []struct {
		r, l string
		want bool
	}{
		{"S+", "S-", true},
		{"Ss+", "S-", true},
		{"S+", "Ss-", true},
		{"Ss+", "Ss-", true},
		{"Ss+", "Sp-", false},
		{"S*b+", "Ssb-", true}, // '*' is a wildcard subscript
		{"Sab+", "Ssb-", false},
		{"S*b+", "Spb-", true},
		{"D+", "S-", false},
		{"SI+", "S-", false},
		{"Wd+", "Wd-", true},
		{"Wd+", "Wq-", false},
	}
	for _, tc := range cases {
		r, err := parseConnectorToken(tc.r)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.r, err)
		}
		l, err := parseConnectorToken(tc.l)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.l, err)
		}
		if got := Match(r, l); got != tc.want {
			t.Errorf("Match(%s,%s) = %v, want %v", tc.r, tc.l, got, tc.want)
		}
	}
}

func TestDirectionsMustOppose(t *testing.T) {
	a := Connector{Name: "S", Dir: DirRight}
	b := Connector{Name: "S", Dir: DirRight}
	if Match(a, b) {
		t.Error("two right-pointing connectors must not match")
	}
}
