package linkgrammar

// BaseDictionary returns the source text of the built-in dictionary: a
// compact English grammar in the CMU connector style covering classroom
// chat in the paper's "Data Structure" course domain.
//
// Connector types:
//
//	W  — LEFT-WALL anchor (Wd declarative subject, Wq question, Wi imperative)
//	D  — determiner to noun (Ds singular, Dp plural)
//	A  — (pre-)modifier to noun; AP appositive name after "method"/"operation"
//	S  — subject to finite verb (Ss singular, Sp plural/base)
//	SI — inverted subject in questions
//	O  — verb to object
//	Pa — copula to predicate adjective / participle
//	Pp — copula to predicate prepositional phrase
//	I  — modal/auxiliary/"to" to bare verb
//	N  — auxiliary to "not"
//	M  — noun-attached preposition; MV — verb-attached preposition/adverb
//	J  — preposition to its object
//	Q  — wh-adverb to inverted auxiliary
//	EA — intensifier to adjective
//	TO — verb to "to"-infinitive
func BaseDictionary() string { return baseDictionary }

const baseDictionary = `
% ---------------------------------------------------------------- macros
% A noun hosts prepositional modifiers via @M+; in subject position the
% modifier attaches nearer than the verb, so @M+ precedes S+.
% A subject links to the wall (Wd) in a plain declarative, or to a
% leading interjection/greeting via CL ("hello everyone, i am ready").
<subj>: {Wd- or CL-};
<noun-roles>:   (<subj> & {@M+} & Ss+) or ((SIs- or O- or J-) & {@M+});
<noun-roles-p>: (<subj> & {@M+} & Sp+) or ((SIp- or O- or J-) & {@M+});
<n-s>: {@A-} & Ds- & <noun-roles>;
<n-p>: {@A-} & {Dp-} & <noun-roles-p>;
<n-m>: {@A-} & {D-} & <noun-roles>;
<n-d>: {@A-} & (Ds- or [()]) & (<noun-roles> or AP-);
<adj>: {EA-} & (A+ or (Pa- & {@MV+}));
<pp-adj>: Pa- & {@MV+};
% {E-} hosts a pre-verb adverb; it is nearer than the subject, so it
% precedes the S-/I-/Wi- connector in traversal order.
<vt>:  {E-} & (Sp- or I- or Wi-) & O+ & {@MV+};
<vts>: {E-} & Ss- & O+ & {@MV+};
<vtd>: ({E-} & S- & O+ & {@MV+}) or (Pa- & {@MV+});
<vi>:  {E-} & (Sp- or I- or Wi-) & {@MV+};
<vis>: {E-} & Ss- & {@MV+};
<vid>: {E-} & S- & {@MV+};
<vo>:  {E-} & (Sp- or I- or Wi-) & {O+} & {@MV+};
<vos>: {E-} & Ss- & {O+} & {@MV+};
<vod>: ({E-} & S- & {O+} & {@MV+}) or (Pa- & {@MV+});
<prep>: (M- or MV- or Pp-) & J+;
<be-pred>: (O+ or Pa+ or Pp+ or Pg+) & {@MV+};
<ving>: Pg- & {O+} & {@MV+};
<unknown-word>: {@A-} & {D-} & ((<subj> & {@M+} & S+) or ((SI- or O- or J-) & {@M+}) or A+ or AP-);
<number>: A+ or Dp+ or ((O- or J-) & {@M+}) or (<subj> & {@M+} & S+);
<domain-term>: {@A-} & (Ds- or [()]) & (<noun-roles> or AP-) or [A+];

% ---------------------------------------------------------------- wall
left-wall: Wd+ or Wq+ or Wi+;

% ---------------------------------------------------------------- determiners
the: D+;
a an: Ds+;
every each another one: Ds+;
some all many most few several two three four five ten: Dp+;
no: D+;
my your our their its his: D+;
this that: Ds+ or (<subj> & Ss+) or O- or J-;
these those: Dp+ or (<subj> & Sp+) or O- or J-;

% ---------------------------------------------------------------- pronouns
i you we they: (<subj> & Sp+) or SIp- or O- or J-;
he she it: (<subj> & Ss+) or SIs- or O- or J-;
me him us them: O- or J-;
her: O- or J- or D+;
there: <subj> & (Ss+ or Sp+);
everyone someone anybody everything something nothing: (<subj> & Ss+) or O- or J- or VO-;

% ---------------------------------------------------------------- be / have / do
is was: (Ss- & {N+} & <be-pred>) or ((Wq- or Q-) & SIs+ & <be-pred>);
are were: (Sp- & {N+} & <be-pred>) or ((Wq- or Q-) & SIp+ & <be-pred>);
am: Sp- & {N+} & <be-pred>;
be: I- & <be-pred>;
isn't wasn't: Ss- & <be-pred>;
aren't weren't: Sp- & <be-pred>;
it's that's: {Wd-} & <be-pred>;
what's: Wq- & <be-pred>;
have: (Sp- or I-) & O+ & {@MV+};
has: Ss- & O+ & {@MV+};
had: S- & O+ & {@MV+};
do: ((Wq- or Q-) & SIp+ & {N+} & I+) or (Sp- & N+ & I+);
does: ((Wq- or Q-) & SIs+ & {N+} & I+) or (Ss- & N+ & I+);
did: ((Wq- or Q-) & SI+ & {N+} & I+) or (S- & N+ & I+);
don't: (Sp- & I+) or (Wi- & I+);
doesn't: Ss- & I+;
didn't: S- & I+;
not: N-;
never: N- or E+ or MV-;

% ---------------------------------------------------------------- modals
can could will would should must may might shall: (S- & {N+} & I+) or (Wq- & SI+ & {N+} & I+);
can't cannot won't wouldn't shouldn't couldn't mustn't: S- & I+;

% ---------------------------------------------------------------- wh-words
what: Wq- & (Ss+ or D+);
which: Wq- & D+;
who: Wq- & Ss+;
how why where when: Wq- & Q+;

% ---------------------------------------------------------------- prepositions
in on at of from with by for under over after before between during without inside near about like onto upon: <prep>;
into: <prep>;
to: <prep> or (TO- & I+);

% ---------------------------------------------------------------- interjections
% Interjections anchor to the wall; they may take a vocative
% ("hello everyone") and hand the rest of the line to a clause.
yes ok okay thanks hello hi sorry right exactly: Wd- & {VO+} & {CL+};
class guys folks all: VO- or D+;
% Discourse openers: "but the stack is empty", "maybe it works".
but so because then maybe perhaps anyway actually well-disc: Wd- & {CL+};

please: (Wi- & I+) or MV-;

% ---------------------------------------------------------------- adjectives
big small empty full new old good bad correct wrong efficient fast slow easy hard simple complex useful important last first second final linear binary balanced unbalanced sorted unsorted linked dynamic static complete ordered abstract recursive constant logarithmic basic main different same similar other wonderful difficult ready busy free fine sure happy interesting boring clear confusing tricky strange normal special common rare typical modern classic nice great terrible amazing possible impossible: <adj>;
lifo fifo: <adj> or <n-d>;
very quite really so too: EA+;

% participial adjectives (passives)
stored called defined implemented restricted allowed connected located based written performed organized: <pp-adj>;

% progressive participles ("the car is drinking water", §4.1)
drinking eating pushing popping inserting deleting removing adding storing using learning studying working running sorting searching traversing reading writing talking discussing asking answering playing waiting thinking: <ving>;

% ---------------------------------------------------------------- adverbs
quickly slowly carefully efficiently correctly again here then now together well: MV-;
always usually often sometimes also just only still: E+ or MV-;

% ---------------------------------------------------------------- nouns: domain (relaxed determiner)
stack queue tree heap array graph deque trie: <domain-term>;
node element pointer structure method operation function algorithm value key index table vertex edge root leaf child parent top bottom front rear head tail level depth height length weight cost path cycle degree subtree branch bucket slot cell entry record field link chain order traversal recursion iteration insertion deletion rotation partition merge complexity implementation definition description relation property symbol example buffer overflow underflow: <domain-term>;
push pop enqueue dequeue peek insert delete search sort traverse: [[<domain-term>]];
hash priority search binary-search: <domain-term> or A+;
data: <n-m> or A+;
% "the method push", "the push operation": method-class nouns take an
% appositive name on their right.
method operation function: {@A-} & (Ds- or [()]) & (<noun-roles> or AP-) & {AP+};
% Minimal noun-phrase coordination: "the relations of stack and queue".
and: (M- & J+) or MV-;

% ---------------------------------------------------------------- nouns: domain plurals
stacks queues trees heaps arrays graphs nodes elements pointers structures methods operations functions algorithms values keys indexes indices tables vertices edges roots leaves children parents levels paths cycles subtrees branches buckets slots cells entries records fields links chains orders traversals insertions deletions rotations partitions merges implementations definitions descriptions relations properties symbols examples buffers: <n-p>;

% ---------------------------------------------------------------- nouns: general singular (strict determiner)
cat dog mouse book car program computer class course question answer teacher student classroom lesson chapter topic test exam homework item set loop variable way thing time size type reason word sentence meaning language grammar mistake error line number hour day week month year minute school university house room door window friend person man woman boy girl idea plan job work game story name list quiz project deadline grade score note slide page board difference: <n-s>;

% ---------------------------------------------------------------- nouns: general plurals
cats dogs mice books cars programs computers classes courses questions answers teachers students classrooms lessons chapters topics tests exams items sets loops variables ways things times sizes types reasons words sentences meanings languages grammars mistakes errors lines numbers hours days weeks months years minutes schools universities houses rooms doors windows friends people men women boys girls ideas plans jobs games stories names lists quizzes projects deadlines grades scores notes slides pages boards differences: <n-p>;

% ---------------------------------------------------------------- nouns: mass
memory information water knowledge code space english math science music food: <n-m>;

% ---------------------------------------------------------------- verbs: strict transitive
push pop insert delete remove add store contain support hold implement create build define return call allocate free enqueue dequeue access modify update print check ask teach take put make visit chase drink eat restrict connect locate organize perform: <vt>;
pushes pops inserts deletes removes adds stores contains supports holds implements creates builds defines returns calls allocates frees enqueues dequeues accesses modifies updates prints checks asks teaches takes puts makes visits chases drinks eats restricts connects locates organizes performs: <vts>;
pushed popped inserted deleted removed added contained supported held created built returned allocated freed enqueued dequeued accessed modified updated printed checked asked taught took put made visited chased drank ate: <vtd>;

% ---------------------------------------------------------------- verbs: optional object
use need want like know understand explain learn study read write search sort traverse balance compare answer discuss mean see find get help say tell show give start stop begin finish remember forget practice review believe feel guess suppose prefer solve draw test count measure copy share skip repeat: <vo>;
uses needs wants likes knows understands explains learns studies reads writes searches sorts traverses balances compares answers discusses means sees finds gets helps says tells shows gives starts stops begins finishes remembers forgets practices reviews believes feels guesses supposes prefers solves draws tests counts measures copies shares skips repeats: <vos>;
used needed wanted liked knew understood explained learned studied wrote sorted traversed balanced compared answered discussed meant saw found got helped said told showed gave started stopped began finished remembered forgot practiced reviewed: <vod>;

% copular perception verbs: "that seems correct"
seem look sound: Sp- & Pa+ & {@MV+};
seems looks sounds: Ss- & Pa+ & {@MV+};
seemed looked sounded: S- & Pa+ & {@MV+};

% clause complements: "i believe the answer is correct", "i think that
% the tree is balanced" — CL links the verb to the complement clause's
% subject (directly or through the complementizer "that").
believe know say guess suppose feel mean remember forget understand explain think hope agree: (Sp- or I-) & {E-} & CL+;
believes knows says guesses supposes feels means remembers forgets understands explains thinks hopes agrees: Ss- & {E-} & CL+;
believed knew said guessed supposed felt meant remembered forgot understood explained thought hoped agreed: S- & {E-} & CL+;
that: CL- & CL+;

% want/need/like/try + to-infinitive
want need like try plan hope: (Sp- or I- or Wi-) & TO+ & {@MV+};
wants needs likes tries plans hopes: Ss- & TO+ & {@MV+};
wanted tried planned hoped: S- & TO+ & {@MV+};

% ---------------------------------------------------------------- verbs: intransitive
work run grow happen fail crash wait talk listen think agree disagree come go live sleep play: <vi>;
works runs grows happens fails crashes waits talks listens thinks agrees disagrees comes goes lives sleeps plays: <vis>;
worked ran grew happened failed crashed waited talked listened thought agreed disagreed came went lived slept played: <vid>;
`
