package linkgrammar

import (
	"container/list"
	"strings"
	"sync"
)

// DefaultParseCacheSize is the parse-cache capacity the supervisor uses
// when caching is enabled with no explicit size (design decision D6 in
// DESIGN.md): classroom dialogue repeats template sentences heavily, so
// a small LRU absorbs most of the O(n³) parse cost.
const DefaultParseCacheSize = 1024

// CacheStats is a snapshot of a parser's cache counters.
type CacheStats struct {
	// Hits and Misses count lookups against the cache.
	Hits, Misses int64
	// Evictions counts entries dropped for capacity.
	Evictions int64
	// Invalidations counts whole-cache flushes forced by dictionary
	// changes (Define / LoadString bump the dictionary generation).
	Invalidations int64
	// Size and Capacity describe the cache occupancy.
	Size, Capacity int
}

// HitRate is the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// parseCache is a mutex-guarded LRU of parse results keyed on the
// normalized token stream. Entries parsed under an older dictionary
// generation are flushed wholesale on the next access, so teaching the
// dictionary a new word (Define) never serves a stale linkage.
type parseCache struct {
	mu  sync.Mutex
	cap int
	gen uint64 // dictionary generation the entries were parsed under
	ll  *list.List
	idx map[string]*list.Element

	hits, misses, evictions, invalidations int64
}

type cacheEntry struct {
	key string
	res *Result
}

func newParseCache(capacity int) *parseCache {
	return &parseCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[string]*list.Element, capacity),
	}
}

// cacheKey joins the already-normalized tokens; 0x1f (unit separator)
// cannot appear in Tokenize output.
func cacheKey(tokens []string) string {
	return strings.Join(tokens, "\x1f")
}

// appendCacheKey builds cacheKey(tokens) into dst, so a pooled buffer
// can carry the key to getBytes without allocating a string per lookup.
func appendCacheKey(dst []byte, tokens []string) []byte {
	for i, t := range tokens {
		if i > 0 {
			dst = append(dst, 0x1f)
		}
		dst = append(dst, t...)
	}
	return dst
}

// getBytes is get for a key held in a byte buffer. The map lookup uses
// the compiler's map[string(bytes)] fast path, so cache hits cost no
// allocation; only a miss (which parses anyway) materializes the key.
func (c *parseCache) getBytes(key []byte, gen uint64) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGenLocked(gen)
	if gen < c.gen {
		c.misses++
		return nil, false
	}
	el, ok := c.idx[string(key)]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// get returns the cached result for key, flushing the cache first when
// the dictionary generation moved forward. A reader holding an older
// generation (it read Generation before a concurrent Define landed)
// just misses — it must re-parse under the current vocabulary.
func (c *parseCache) get(key string, gen uint64) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGenLocked(gen)
	if gen < c.gen {
		c.misses++
		return nil, false
	}
	el, ok := c.idx[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result parsed under the given dictionary generation.
// Results parsed under an older vocabulary are dropped — never stored
// next to current-generation entries.
func (c *parseCache) put(key string, res *Result, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGenLocked(gen)
	if gen < c.gen {
		return
	}
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.idx, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// syncGenLocked flushes every entry when the dictionary moved forward
// past the cache's generation. The generation is monotonic: a caller
// holding an older gen never rolls the cache back (its entries are
// fresher than the caller's view).
func (c *parseCache) syncGenLocked(gen uint64) {
	if gen <= c.gen {
		return
	}
	if c.ll.Len() > 0 {
		c.invalidations++
		c.ll.Init()
		c.idx = make(map[string]*list.Element, c.cap)
	}
	c.gen = gen
}

func (c *parseCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Size:          c.ll.Len(),
		Capacity:      c.cap,
	}
}
