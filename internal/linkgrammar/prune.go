package linkgrammar

// pruneMinWords gates the pruning pass: chat sentences are short and
// the O(n³) search over them is already cheap, so the pass pays for
// itself only on longer inputs (measured by BenchmarkPruningAblation).
const pruneMinWords = 12

// pruneDisjuncts implements the "power pruning" idea of the CMU parser:
// before the O(n³) search, drop every disjunct with a connector that
// cannot possibly match any connector of any surviving disjunct on the
// appropriate side of the sentence. Iterates to a fixpoint; sound
// because a removed disjunct provably cannot participate in any
// linkage (including fault-tolerant ones — links never attach to null
// words).
func pruneDisjuncts(disjuncts [][]*Disjunct) [][]*Disjunct {
	n := len(disjuncts)
	if n < pruneMinWords {
		return disjuncts
	}
	out := make([][]*Disjunct, n)
	for i := range disjuncts {
		out[i] = append([]*Disjunct(nil), disjuncts[i]...)
	}

	for changed := true; changed; {
		changed = false

		// rightAvail[w] indexes, by upper-case connector type, the
		// right-pointing connectors offered by any surviving disjunct
		// of any word < w. leftAvail[w] mirrors it for words > w.
		rightAvail := make([]connTypeSet, n)
		acc := make(connTypeSet)
		for w := 0; w < n; w++ {
			if w > 0 {
				for _, d := range out[w-1] {
					for _, c := range d.Right {
						acc = acc.add(c)
					}
				}
			}
			rightAvail[w] = acc.clone()
		}
		leftAvail := make([]connTypeSet, n)
		acc = make(connTypeSet)
		for w := n - 1; w >= 0; w-- {
			if w < n-1 {
				for _, d := range out[w+1] {
					for _, c := range d.Left {
						acc = acc.add(c)
					}
				}
			}
			leftAvail[w] = acc.clone()
		}

		for w := 0; w < n; w++ {
			keep := out[w][:0]
			for _, d := range out[w] {
				if disjunctViable(d, rightAvail[w], leftAvail[w]) {
					keep = append(keep, d)
				} else {
					changed = true
				}
			}
			out[w] = keep
		}
	}
	return out
}

// connTypeSet groups connectors by their upper-case type so that the
// viability check only compares connectors that could possibly match.
type connTypeSet map[string][]Connector

func (s connTypeSet) add(c Connector) connTypeSet {
	key := c.Name[:upperLen(c.Name)]
	for _, existing := range s[key] {
		if existing == c {
			return s
		}
	}
	s[key] = append(s[key], c)
	return s
}

func (s connTypeSet) clone() connTypeSet {
	out := make(connTypeSet, len(s))
	for k, v := range s {
		out[k] = append([]Connector(nil), v...)
	}
	return out
}

// disjunctViable reports whether every connector of d has at least one
// potential partner among the available opposite connectors.
func disjunctViable(d *Disjunct, rightAvail, leftAvail connTypeSet) bool {
	for _, c := range d.Left {
		if !someMatch(rightAvail, c, true) {
			return false
		}
	}
	for _, c := range d.Right {
		if !someMatch(leftAvail, c, false) {
			return false
		}
	}
	return true
}

// someMatch reports whether any available connector of the same type
// matches c. wantRight is true when c points left and needs a
// right-pointing partner.
func someMatch(avail connTypeSet, c Connector, wantRight bool) bool {
	key := c.Name[:upperLen(c.Name)]
	for _, other := range avail[key] {
		if wantRight {
			if Match(other, c) {
				return true
			}
		} else if Match(c, other) {
			return true
		}
	}
	return false
}
