package linkgrammar

import (
	"fmt"
	"sync"
	"testing"
)

func cachedParser(t *testing.T, size int) *Parser {
	t.Helper()
	dict, err := NewEnglishDictionary()
	if err != nil {
		t.Fatal(err)
	}
	return NewParser(dict, Options{CacheSize: size})
}

// TestParseCacheHit checks a repeated sentence is served from the cache
// and yields the same result.
func TestParseCacheHit(t *testing.T) {
	p := cachedParser(t, 8)
	first, err := p.Parse("the student learns the lesson")
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Parse("the student learns the lesson")
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("repeat parse did not return the cached result")
	}
	st := p.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if !first.Valid() {
		t.Error("sentence should parse clean")
	}
}

// TestParseCacheKeying checks different punctuation/case normalize to
// one entry while different words do not collide.
func TestParseCacheKeying(t *testing.T) {
	p := cachedParser(t, 8)
	if _, err := p.Parse("The student learns."); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Parse("the student learns"); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Hits != 1 {
		t.Errorf("normalized repeat: hits = %d, want 1", st.Hits)
	}
	if _, err := p.Parse("the teacher learns"); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Misses != 2 {
		t.Errorf("distinct sentence: misses = %d, want 2", st.Misses)
	}
}

// TestParseCacheEviction checks the LRU bound holds.
func TestParseCacheEviction(t *testing.T) {
	p := cachedParser(t, 2)
	sentences := []string{
		"the student learns",
		"the teacher explains",
		"the cat sleeps",
	}
	for _, s := range sentences {
		if _, err := p.Parse(s); err != nil {
			t.Fatal(err)
		}
	}
	st := p.CacheStats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want size 2 and 1 eviction", st)
	}
	// The oldest sentence was evicted: parsing it again misses.
	if _, err := p.Parse(sentences[0]); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Hits != 0 {
		t.Errorf("evicted entry served from cache (hits = %d)", st.Hits)
	}
}

// TestParseCacheInvalidation checks teaching the dictionary a new word
// flushes stale results: a sentence with an unknown word must re-parse
// after the word is defined.
func TestParseCacheInvalidation(t *testing.T) {
	p := cachedParser(t, 8)
	const sentenceText = "the student learns the quicksort"

	before, err := p.Parse(sentenceText)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.UnknownWords) == 0 {
		t.Fatal("quicksort should be unknown before teaching")
	}
	if err := p.Dictionary().Define("quicksort", "<domain-term>"); err != nil {
		t.Fatal(err)
	}
	after, err := p.Parse(sentenceText)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("stale cached result served after dictionary change")
	}
	if len(after.UnknownWords) != 0 {
		t.Errorf("unknown words = %v after teaching quicksort", after.UnknownWords)
	}
	st := p.CacheStats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	// Steady state again: the refreshed entry serves hits.
	if _, err := p.Parse(sentenceText); err != nil {
		t.Fatal(err)
	}
	if st := p.CacheStats(); st.Hits != 1 {
		t.Errorf("hits = %d after re-warm, want 1", st.Hits)
	}
}

// TestParseCacheConcurrent hammers one cached parser from many
// goroutines (run under -race) mixing repeats and dictionary teaching.
func TestParseCacheConcurrent(t *testing.T) {
	p := cachedParser(t, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				s := fmt.Sprintf("the student learns the lesson %d", i%5)
				if _, err := p.Parse(s); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%13 == 0 {
					word := fmt.Sprintf("zworddef%d%d", w, i)
					if err := p.Dictionary().Define(word, "<domain-term>"); err != nil {
						t.Errorf("worker %d define: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := p.CacheStats()
	if st.Hits+st.Misses != 8*40 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 8*40)
	}
}
