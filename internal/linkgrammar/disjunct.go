package linkgrammar

import (
	"fmt"
	"sort"
	"strings"
)

// Disjunct is one way a word's linking requirements can be satisfied: an
// ordered list of left connectors and right connectors that must all be
// used by links. Following the paper's notation ((L1,…,Lm)(Rn,…,R1)),
// Left and Right are stored in traversal (near-to-far) order: Left[0]
// links to the nearest word on the left, Right[0] to the nearest word on
// the right.
type Disjunct struct {
	Left  []Connector
	Right []Connector
	Cost  int

	// leftList and rightList are the same connectors as persistent,
	// interned linked lists in far-to-near order, which is the order
	// the dynamic-programming parser consumes them in. They are built
	// by finalize.
	leftList  *connNode
	rightList *connNode
}

// String renders the disjunct in the paper's ((L1,…)(…,R1)) notation.
func (d *Disjunct) String() string {
	var b strings.Builder
	b.WriteString("((")
	for i, c := range d.Left {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(")(")
	for i := len(d.Right) - 1; i >= 0; i-- {
		b.WriteString(d.Right[i].String())
		if i > 0 {
			b.WriteString(", ")
		}
	}
	b.WriteString("))")
	if d.Cost > 0 {
		fmt.Fprintf(&b, "[cost %d]", d.Cost)
	}
	return b.String()
}

// connNode is one cell of a persistent connector list. Node identity
// (pointer) keys the parser's memoization table, so lists must be
// interned: equal suffixes share cells.
type connNode struct {
	conn Connector
	next *connNode
}

// connInterner dedupes connector-list cells so that structurally equal
// lists are pointer-equal, keeping the parser memo table small.
type connInterner struct {
	cells map[internKey]*connNode
}

type internKey struct {
	conn Connector
	next *connNode
}

func newConnInterner() *connInterner {
	return &connInterner{cells: make(map[internKey]*connNode)}
}

// list interns the far-to-near linked list for connectors given in
// near-to-far order.
func (in *connInterner) list(nearToFar []Connector) *connNode {
	var head *connNode
	// Build from the nearest connector outward so that the head of the
	// resulting list is the farthest connector.
	for _, c := range nearToFar {
		key := internKey{conn: c, next: head}
		cell, ok := in.cells[key]
		if !ok {
			cell = &connNode{conn: c, next: head}
			in.cells[key] = cell
		}
		head = cell
	}
	return head
}

// maxDisjunctsPerWord caps expression expansion so that a pathological
// dictionary entry cannot exhaust memory.
const maxDisjunctsPerWord = 4096

// ErrDisjunctOverflow is returned when a dictionary formula expands into
// more disjuncts than maxDisjunctsPerWord.
var ErrDisjunctOverflow = fmt.Errorf("formula expands to more than %d disjuncts", maxDisjunctsPerWord)

// buildDisjuncts expands a formula into its disjuncts: every way of
// choosing one branch of each "or" yields one conjunction of connectors,
// read off in traversal order per direction.
func buildDisjuncts(e *Expr, resolve func(string) (*Expr, error)) ([]*Disjunct, error) {
	ds, err := expand(e, resolve, 0)
	if err != nil {
		return nil, err
	}
	return dedupeDisjuncts(ds), nil
}

func expand(e *Expr, resolve func(string) (*Expr, error), depth int) ([]*Disjunct, error) {
	if depth > 64 {
		return nil, fmt.Errorf("macro expansion too deep (cycle?)")
	}
	var out []*Disjunct
	switch e.kind {
	case exprEmpty:
		out = []*Disjunct{{}}
	case exprConn:
		d := &Disjunct{}
		if e.conn.Dir == DirLeft {
			d.Left = []Connector{e.conn}
		} else {
			d.Right = []Connector{e.conn}
		}
		out = []*Disjunct{d}
	case exprRef:
		target, err := resolve(e.ref)
		if err != nil {
			return nil, err
		}
		out, err = expand(target, resolve, depth+1)
		if err != nil {
			return nil, err
		}
	case exprOr:
		for _, sub := range e.subs {
			ds, err := expand(sub, resolve, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
			if len(out) > maxDisjunctsPerWord {
				return nil, ErrDisjunctOverflow
			}
		}
	case exprAnd:
		out = []*Disjunct{{}}
		for _, sub := range e.subs {
			ds, err := expand(sub, resolve, depth+1)
			if err != nil {
				return nil, err
			}
			if len(out)*len(ds) > maxDisjunctsPerWord {
				return nil, ErrDisjunctOverflow
			}
			merged := make([]*Disjunct, 0, len(out)*len(ds))
			for _, a := range out {
				for _, b := range ds {
					merged = append(merged, concatDisjunct(a, b))
				}
			}
			out = merged
		}
	default:
		return nil, fmt.Errorf("unknown expression kind %d", e.kind)
	}
	if e.cost > 0 {
		for _, d := range out {
			d.Cost += e.cost
		}
	}
	return out, nil
}

// concatDisjunct joins two partial disjuncts preserving traversal order:
// connectors of a precede connectors of b within each direction.
func concatDisjunct(a, b *Disjunct) *Disjunct {
	d := &Disjunct{
		Left:  make([]Connector, 0, len(a.Left)+len(b.Left)),
		Right: make([]Connector, 0, len(a.Right)+len(b.Right)),
		Cost:  a.Cost + b.Cost,
	}
	d.Left = append(append(d.Left, a.Left...), b.Left...)
	d.Right = append(append(d.Right, a.Right...), b.Right...)
	return d
}

// dedupeDisjuncts removes duplicate disjuncts (same connector sequences),
// keeping the cheapest copy, and orders the result by cost so that the
// parser visits cheap disjuncts first.
func dedupeDisjuncts(ds []*Disjunct) []*Disjunct {
	// Keys are rendered once per disjunct and carried through the sort —
	// a comparator calling key() would rebuild two strings per
	// comparison, which dominated the dictionary's cold-start allocation
	// profile.
	type keyed struct {
		d   *Disjunct
		key string
	}
	seen := make(map[string]int, len(ds))
	kept := make([]keyed, 0, len(ds))
	for _, d := range ds {
		key := d.key()
		if i, ok := seen[key]; ok {
			if d.Cost < kept[i].d.Cost {
				kept[i].d = d
			}
			continue
		}
		seen[key] = len(kept)
		kept = append(kept, keyed{d: d, key: key})
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].d.Cost != kept[j].d.Cost {
			return kept[i].d.Cost < kept[j].d.Cost
		}
		return kept[i].key < kept[j].key
	})
	out := make([]*Disjunct, len(kept))
	for i, k := range kept {
		out[i] = k.d
	}
	return out
}

func (d *Disjunct) key() string {
	var b strings.Builder
	for _, c := range d.Left {
		b.WriteString(c.String())
		b.WriteByte(' ')
	}
	b.WriteByte('|')
	for _, c := range d.Right {
		b.WriteString(c.String())
		b.WriteByte(' ')
	}
	return b.String()
}

// finalize interns the far-to-near connector lists used by the parser.
func (d *Disjunct) finalize(in *connInterner) {
	d.leftList = in.list(d.Left)
	d.rightList = in.list(d.Right)
}
