package linkgrammar

import (
	"strings"
	"testing"
)

// FuzzTokenize hammers the chat-line tokenizer with arbitrary input.
// Invariants: no panic; no empty tokens; tokens are lower-case ASCII
// word characters with no leading or trailing hyphen/apostrophe; and
// tokenization is a fixpoint (re-tokenizing the joined tokens yields
// the same tokens), so downstream consumers can treat token lists as
// canonical.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{
		"",
		"The stack has a push operation.",
		"doesn't DOESN'T doesn’t",
		"last-in first-out (LIFO)!",
		"what is a stack?",
		"a--b ''c -- '' -",
		"héllo wörld — ünïcode",
		"tabs\tand\nnewlines\r\n",
		"123 4a5 a1b2c3",
		"emoji 🎓 classroom",
		strings.Repeat("x", 300),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("empty token in %v from %q", toks, s)
			}
			if tok[0] == '-' || tok[0] == '\'' || tok[len(tok)-1] == '-' || tok[len(tok)-1] == '\'' {
				t.Fatalf("token %q has leading/trailing punctuation (input %q)", tok, s)
			}
			for i := 0; i < len(tok); i++ {
				c := tok[i]
				ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '\''
				if !ok {
					t.Fatalf("token %q contains invalid byte %q (input %q)", tok, c, s)
				}
			}
		}
		again := Tokenize(strings.Join(toks, " "))
		if len(again) != len(toks) {
			t.Fatalf("tokenize not a fixpoint: %v -> %v (input %q)", toks, again, s)
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("tokenize not a fixpoint at %d: %v -> %v (input %q)", i, toks, again, s)
			}
		}

		// The question-mark cue must agree with the raw text.
		q := EndsWithQuestionMark(s)
		trimmed := strings.TrimRight(s, " \t\r\n")
		if q != strings.HasSuffix(trimmed, "?") {
			t.Fatalf("EndsWithQuestionMark(%q) = %v", s, q)
		}
	})
}
