package linkgrammar

import (
	"math/rand"
	"testing"
)

// TestPruningPreservesResults is the pruning soundness check: for a
// large random and curated sentence set, parsing with and without
// pruning yields identical linkage counts, null counts and best costs.
func TestPruningPreservesResults(t *testing.T) {
	dict, err := NewEnglishDictionary()
	if err != nil {
		t.Fatal(err)
	}
	pruned := NewParser(dict, Options{MaxNulls: 2, MaxLinkages: 64})
	unpruned := NewParser(dict, Options{MaxNulls: 2, MaxLinkages: 64, DisablePruning: true})

	sentences := []string{
		"The cat chased a mouse.",
		"A stack is a lifo structure.",
		"Does a stack have a pop method?",
		"The the cat chased a mouse.",
		"Cat the chased a mouse.",
		"I pushes the data.",
		"Push the data into the stack.",
		"What is a stack?",
	}
	words := dict.Words()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 120; i++ {
		n := 2 + rng.Intn(7)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = words[rng.Intn(len(words))]
		}
		sentences = append(sentences, joinTokens(toks))
	}

	for _, s := range sentences {
		a, err := pruned.Parse(s)
		if err != nil {
			t.Fatalf("pruned %q: %v", s, err)
		}
		b, err := unpruned.Parse(s)
		if err != nil {
			t.Fatalf("unpruned %q: %v", s, err)
		}
		if (len(a.Linkages) == 0) != (len(b.Linkages) == 0) {
			t.Fatalf("%q: parseability differs with pruning: %d vs %d linkages",
				s, len(a.Linkages), len(b.Linkages))
		}
		if a.NullCount != b.NullCount {
			t.Errorf("%q: null count differs: %d vs %d", s, a.NullCount, b.NullCount)
		}
		if len(a.Linkages) > 0 && a.Best().Cost != b.Best().Cost {
			t.Errorf("%q: best cost differs: %d vs %d", s, a.Best().Cost, b.Best().Cost)
		}
		if len(a.Linkages) != len(b.Linkages) {
			t.Errorf("%q: linkage count differs: %d vs %d", s, len(a.Linkages), len(b.Linkages))
		}
	}
}

func joinTokens(toks []string) string {
	out := ""
	for i, tok := range toks {
		if i > 0 {
			out += " "
		}
		out += tok
	}
	return out
}

// TestPruningRemovesDeadDisjuncts checks the mechanism directly: a
// sentence of bare determiners has nothing for any connector to link
// with, so the fixpoint must remove every disjunct.
func TestPruningRemovesDeadDisjuncts(t *testing.T) {
	dict, err := NewEnglishDictionary()
	if err != nil {
		t.Fatal(err)
	}
	theDs, err := dict.Disjuncts("the")
	if err != nil {
		t.Fatal(err)
	}
	wallDs, err := dict.Disjuncts(LeftWall)
	if err != nil {
		t.Fatal(err)
	}
	if len(wallDs) == 0 || len(theDs) == 0 {
		t.Fatal("test setup broken: empty disjunct lists")
	}
	// Wall + pruneMinWords determiners: nothing offers D- or Wd-, so
	// everything dies.
	in := make([][]*Disjunct, 0, pruneMinWords+1)
	in = append(in, wallDs)
	for i := 0; i < pruneMinWords; i++ {
		in = append(in, theDs)
	}
	out := pruneDisjuncts(in)
	for w, ds := range out {
		if len(ds) != 0 {
			t.Errorf("word %d kept %d disjuncts, want 0", w, len(ds))
		}
	}
}

// TestPruningSkipsShortSentences verifies the length gate: short
// inputs are returned untouched.
func TestPruningSkipsShortSentences(t *testing.T) {
	dict, err := NewEnglishDictionary()
	if err != nil {
		t.Fatal(err)
	}
	theDs, err := dict.Disjuncts("the")
	if err != nil {
		t.Fatal(err)
	}
	in := [][]*Disjunct{theDs, theDs}
	out := pruneDisjuncts(in)
	if len(out[0]) != len(theDs) || len(out[1]) != len(theDs) {
		t.Error("short input should not be pruned")
	}
}
