// Package linkgrammar implements a link grammar parser in the style of
// Sleator and Temperley's "Parsing English with a Link Grammar"
// (CMU-CS-91-196), the parsing substrate of the ICDCSW'05 paper this
// repository reproduces.
//
// A dictionary assigns every word a formula over typed connectors. A
// sequence of words is a sentence of the language iff links can be drawn
// between matching connectors such that the linkage satisfies the four
// meta-rules: planarity (links do not cross), connectivity (the linkage
// connects all words), ordering (connectors of a formula, traversed left
// to right, connect near to far) and exclusion (no two links connect the
// same pair of words).
//
// The package adds the fault tolerance the paper layers on top of stock
// link grammar: null-link parsing locates a minimal set of words that
// must be skipped for the rest of the sentence to parse, and those words
// are reported as grammar-error locations.
package linkgrammar

import "strings"

// Direction indicates which side of the word a connector must link toward.
type Direction int8

// Connector directions. A '+' connector links rightward, a '-' connector
// links leftward; a link joins one '+' connector to one '-' connector of
// the same type.
const (
	DirRight Direction = iota + 1 // '+' suffix in the dictionary
	DirLeft                       // '-' suffix in the dictionary
)

// String returns the dictionary suffix for the direction.
func (d Direction) String() string {
	if d == DirRight {
		return "+"
	}
	return "-"
}

// Connector is one linking requirement of a word. Name is an upper-case
// type optionally followed by a lower-case/'*' subscript. Multi marks a
// multi-connector ('@' prefix in the dictionary) that may participate in
// any number of links.
type Connector struct {
	Name  string
	Dir   Direction
	Multi bool
}

// String renders the connector in dictionary notation, e.g. "@Ds+".
func (c Connector) String() string {
	var b strings.Builder
	if c.Multi {
		b.WriteByte('@')
	}
	b.WriteString(c.Name)
	b.WriteString(c.Dir.String())
	return b.String()
}

// upperLen returns the length of the leading upper-case portion of a
// connector name.
func upperLen(name string) int {
	i := 0
	for i < len(name) && name[i] >= 'A' && name[i] <= 'Z' {
		i++
	}
	return i
}

// Match reports whether a right-pointing connector r and a left-pointing
// connector l may be joined by a link. The upper-case portions of the
// names must be identical; the lower-case subscripts match position by
// position, where '*' matches any character and a missing character
// matches anything.
func Match(r, l Connector) bool {
	if r.Dir != DirRight || l.Dir != DirLeft {
		return false
	}
	ru, lu := upperLen(r.Name), upperLen(l.Name)
	if ru != lu || r.Name[:ru] != l.Name[:lu] {
		return false
	}
	rs, ls := r.Name[ru:], l.Name[lu:]
	n := len(rs)
	if len(ls) < n {
		n = len(ls)
	}
	for i := 0; i < n; i++ {
		if rs[i] == '*' || ls[i] == '*' {
			continue
		}
		if rs[i] != ls[i] {
			return false
		}
	}
	return true
}

// LinkLabel is the label given to a link joining connectors r and l: the
// shared upper-case type plus the more specific of the two subscripts,
// mirroring how stock link grammar names links.
func LinkLabel(r, l Connector) string {
	ru := upperLen(r.Name)
	base := r.Name[:ru]
	rs, ls := r.Name[ru:], l.Name[upperLen(l.Name):]
	long, short := rs, ls
	if len(ls) > len(rs) {
		long, short = ls, rs
	}
	sub := make([]byte, 0, len(long))
	for i := 0; i < len(long); i++ {
		ch := long[i]
		if ch == '*' && i < len(short) {
			ch = short[i]
		}
		if ch == '*' {
			break
		}
		sub = append(sub, ch)
	}
	return base + string(sub)
}
