package linkgrammar

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Options configures a Parser.
type Options struct {
	// MaxNulls is the largest number of words the fault-tolerant parser
	// may skip ("null words") before giving up. 0 selects the default
	// budget; a negative value reproduces stock link grammar behaviour
	// (no skipping at all).
	MaxNulls int
	// MaxLinkages caps the number of alternative linkages returned.
	MaxLinkages int
	// MaxTokens rejects absurdly long inputs before the O(n³) parse.
	MaxTokens int
	// DisablePruning turns off the pre-parse disjunct pruning pass
	// (kept only for the pruning ablation benchmark).
	DisablePruning bool
	// CacheSize, when positive, bounds an LRU cache of parse results
	// keyed on the normalized token stream. 0 leaves caching off at
	// this layer (package core turns it on for the supervisor — design
	// decision D6). Cached *Results are shared across callers and must
	// be treated as read-only; the cache is flushed automatically when
	// the dictionary's generation changes.
	CacheSize int
}

// DefaultOptions returns the options used by the e-learning supervisor:
// tolerate up to two broken words and keep the eight cheapest linkages.
func DefaultOptions() Options {
	return Options{MaxNulls: 2, MaxLinkages: 8, MaxTokens: 40}
}

// Parser parses sentences against a dictionary. A Parser is safe for
// concurrent use: each parse builds its own state, the dictionary
// guards its lazy disjunct expansion, and the optional result cache
// locks internally.
type Parser struct {
	dict  *Dictionary
	opts  Options
	cache *parseCache // nil when Options.CacheSize <= 0

	// scratch pools per-parse working state (cache-key buffer, disjunct
	// table, memoization map) so the steady-state parse path — the same
	// workload the cache stats describe — reuses its large containers
	// instead of reallocating them per sentence. Pooled scratch never
	// escapes: everything a Result or Linkage retains (words, tokens,
	// links) is freshly allocated.
	scratch   sync.Pool
	countHint atomic.Int64 // running average of memo-map size, sizes fresh maps
}

// parseScratch is the pooled working state of one ParseTokens call.
type parseScratch struct {
	key []byte
	st  parseState
}

// NewParser returns a parser over dict with the given options. Zero
// option fields fall back to DefaultOptions values.
func NewParser(dict *Dictionary, opts Options) *Parser {
	def := DefaultOptions()
	if opts.MaxLinkages <= 0 {
		opts.MaxLinkages = def.MaxLinkages
	}
	if opts.MaxTokens <= 0 {
		opts.MaxTokens = def.MaxTokens
	}
	switch {
	case opts.MaxNulls == 0:
		opts.MaxNulls = def.MaxNulls
	case opts.MaxNulls < 0:
		opts.MaxNulls = 0
	}
	p := &Parser{dict: dict, opts: opts}
	p.scratch.New = func() any { return new(parseScratch) }
	if opts.CacheSize > 0 {
		p.cache = newParseCache(opts.CacheSize)
	}
	return p
}

// releaseScratch clears the references pooled scratch holds (dictionary
// disjuncts, interned connector nodes) and returns it to the pool,
// folding the observed memo size into the sizing hint for fresh maps.
func (p *Parser) releaseScratch(sc *parseScratch) {
	if sc.st.counts != nil {
		hint := p.countHint.Load()
		p.countHint.Store((3*hint + int64(len(sc.st.counts))) / 4)
		clear(sc.st.counts)
	}
	for i := range sc.st.disjuncts {
		sc.st.disjuncts[i] = nil
	}
	sc.st.dict, sc.st.words = nil, nil
	p.scratch.Put(sc)
}

// CacheStats reports the parse-cache counters (zero value when caching
// is disabled).
func (p *Parser) CacheStats() CacheStats {
	if p.cache == nil {
		return CacheStats{}
	}
	return p.cache.stats()
}

// Dictionary returns the dictionary the parser reads.
func (p *Parser) Dictionary() *Dictionary { return p.dict }

// Result is the outcome of parsing one sentence.
type Result struct {
	// Tokens are the words as parsed, LEFT-WALL excluded.
	Tokens []string
	// Linkages holds the valid linkages found, cheapest first. Empty
	// when the sentence does not parse within the null budget.
	Linkages []*Linkage
	// NullCount is the number of words that had to be skipped for the
	// best linkages (0 = fully grammatical).
	NullCount int
	// UnknownWords indexes Tokens that were absent from the dictionary.
	UnknownWords []int
}

// Valid reports whether the sentence parsed without skipping any word.
func (r *Result) Valid() bool { return len(r.Linkages) > 0 && r.NullCount == 0 }

// Best returns the cheapest linkage, or nil if none.
func (r *Result) Best() *Linkage {
	if len(r.Linkages) == 0 {
		return nil
	}
	return r.Linkages[0]
}

// Parse tokenizes and parses a raw sentence.
func (p *Parser) Parse(sentence string) (*Result, error) {
	return p.ParseTokens(Tokenize(sentence))
}

// ParseTokens parses an already-tokenized sentence. The tokens should not
// include LEFT-WALL; it is added internally.
func (p *Parser) ParseTokens(tokens []string) (*Result, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("empty sentence")
	}
	if len(tokens) > p.opts.MaxTokens {
		return nil, fmt.Errorf("sentence has %d tokens, limit is %d", len(tokens), p.opts.MaxTokens)
	}

	sc := p.scratch.Get().(*parseScratch)
	defer p.releaseScratch(sc)

	var gen uint64
	if p.cache != nil {
		sc.key = appendCacheKey(sc.key[:0], tokens)
		gen = p.dict.Generation()
		if res, ok := p.cache.getBytes(sc.key, gen); ok {
			return res, nil
		}
	}

	// words is retained by every Linkage (and res.Tokens aliases it), so
	// it is allocated fresh; the caller's tokens slice is copied here and
	// never retained, which keeps pooled token slices safe to reuse.
	words := make([]string, len(tokens)+1)
	words[0] = LeftWall
	copy(words[1:], tokens)

	res := &Result{Tokens: words[1:]}
	if cap(sc.st.disjuncts) < len(words) {
		sc.st.disjuncts = make([][]*Disjunct, len(words))
	}
	if sc.st.counts == nil {
		sc.st.counts = make(map[countKey]int64, p.countHint.Load())
	}
	sc.st.dict = p.dict
	sc.st.words = words
	sc.st.disjuncts = sc.st.disjuncts[:len(words)]
	st := &sc.st
	for i, w := range words {
		ds, err := p.dict.Disjuncts(w)
		if err != nil {
			return nil, err
		}
		if !p.dict.Has(w) && i > 0 {
			res.UnknownWords = append(res.UnknownWords, i-1)
		}
		st.disjuncts[i] = ds
	}
	if !p.opts.DisablePruning {
		st.disjuncts = pruneDisjuncts(st.disjuncts)
	}

	maxNulls := p.opts.MaxNulls
	if maxNulls > len(tokens)-1 {
		maxNulls = len(tokens) - 1
	}
	if maxNulls < 0 {
		maxNulls = 0
	}
	for nulls := 0; nulls <= maxNulls; nulls++ {
		if st.countTotal(nulls) == 0 {
			continue
		}
		linkages := st.extractTotal(nulls, p.opts.MaxLinkages)
		if len(linkages) == 0 {
			continue
		}
		for _, lk := range linkages {
			lk.Words = words
		}
		sort.SliceStable(linkages, func(i, j int) bool {
			return linkages[i].Cost < linkages[j].Cost
		})
		res.Linkages = linkages
		res.NullCount = nulls
		break
	}
	if p.cache != nil {
		p.cache.put(string(sc.key), res, gen)
	}
	return res, nil
}

// parseState holds the memoized dynamic program for one sentence.
// Internally word 0 is LEFT-WALL and a virtual word len(words) with no
// connectors closes the region on the right.
type parseState struct {
	dict      *Dictionary
	words     []string
	disjuncts [][]*Disjunct
	counts    map[countKey]int64
}

type countKey struct {
	a, b   int16
	la, lb *connNode
	nulls  int8
}

const countCap = int64(1) << 40

func satAdd(a, b int64) int64 {
	s := a + b
	if s > countCap {
		return countCap
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > countCap/b {
		return countCap
	}
	return a * b
}

// countTotal counts complete linkages of the whole sentence with exactly
// `nulls` skipped words. LEFT-WALL is never skipped.
func (st *parseState) countTotal(nulls int) int64 {
	var total int64
	n := len(st.words)
	for _, d0 := range st.disjuncts[0] {
		if d0.leftList != nil {
			continue
		}
		total = satAdd(total, st.count(0, n, d0.rightList, nil, nulls))
	}
	return total
}

// count returns the number of linkages of the region strictly between
// words a and b, where la is the remaining right-going connector list of
// a and lb the remaining left-going list of b (both far-to-near), with
// exactly `nulls` inner words skipped.
//
// Decomposition: if la is non-empty its head (a's farthest rightward
// link) attaches either to some inner word w — splitting the region at w
// by planarity — or directly to b's farthest left connector. If la is
// empty, lb's head attaches to the farthest inner word it can reach.
// Ordering of each disjunct's connector lists is preserved because lists
// are consumed far-to-near from both ends. Connectivity holds because a
// region whose two boundary lists are empty admits no links at all, so
// its inner words can only be nulls.
func (st *parseState) count(a, b int, la, lb *connNode, nulls int) int64 {
	if b == a+1 {
		if la == nil && lb == nil && nulls == 0 {
			return 1
		}
		return 0
	}
	if la == nil && lb == nil {
		if nulls == b-a-1 {
			return 1
		}
		return 0
	}
	inner := b - a - 1
	if nulls > inner {
		return 0
	}
	key := countKey{a: int16(a), b: int16(b), la: la, lb: lb, nulls: int8(nulls)}
	if v, ok := st.counts[key]; ok {
		return v
	}
	st.counts[key] = 0 // cycle guard; real value set below

	var total int64
	if la != nil {
		for w := a + 1; w < b; w++ {
			for _, d := range st.disjuncts[w] {
				dl := d.leftList
				if dl == nil || !Match(la.conn, dl.conn) {
					continue
				}
				for _, v := range matchVariants(la, dl) {
					for k1 := 0; k1 <= nulls; k1++ {
						left := st.count(a, w, v.x, v.y, k1)
						if left == 0 {
							continue
						}
						right := st.count(w, b, d.rightList, lb, nulls-k1)
						total = satAdd(total, satMul(left, right))
					}
				}
			}
		}
		if lb != nil && Match(la.conn, lb.conn) {
			// Direct link a–b: both heads are the farthest connectors of
			// their words within this region.
			for _, v := range matchVariants(la, lb) {
				total = satAdd(total, st.count(a, b, v.x, v.y, nulls))
			}
		}
	} else { // la == nil, lb != nil
		for w := a + 1; w < b; w++ {
			for _, d := range st.disjuncts[w] {
				dr := d.rightList
				if dr == nil || !Match(dr.conn, lb.conn) {
					continue
				}
				for _, v := range matchVariants(dr, lb) {
					for k1 := 0; k1 <= nulls; k1++ {
						left := st.count(a, w, nil, d.leftList, k1)
						if left == 0 {
							continue
						}
						right := st.count(w, b, v.x, v.y, nulls-k1)
						total = satAdd(total, satMul(left, right))
					}
				}
			}
		}
	}
	st.counts[key] = total
	return total
}

// matchVariant is one way of consuming the two matched head connectors:
// multi-connectors may stay in their list for further links.
type matchVariant struct{ x, y *connNode }

func matchVariants(x, y *connNode) []matchVariant {
	vs := make([]matchVariant, 0, 4)
	vs = append(vs, matchVariant{x.next, y.next})
	if x.conn.Multi {
		vs = append(vs, matchVariant{x, y.next})
	}
	if y.conn.Multi {
		vs = append(vs, matchVariant{x.next, y})
	}
	if x.conn.Multi && y.conn.Multi {
		vs = append(vs, matchVariant{x, y})
	}
	return vs
}

// partial is an intermediate extraction result for a region.
type partial struct {
	links []Link
	nulls []int // word indices skipped (internal indexing, wall = 0)
	cost  int
}

func crossPartials(ls, rs []partial, budget int) []partial {
	out := make([]partial, 0, min(budget, len(ls)*len(rs)))
	for _, l := range ls {
		for _, r := range rs {
			if len(out) >= budget {
				return out
			}
			p := partial{
				links: make([]Link, 0, len(l.links)+len(r.links)),
				nulls: append(append([]int{}, l.nulls...), r.nulls...),
				cost:  l.cost + r.cost,
			}
			p.links = append(append(p.links, l.links...), r.links...)
			out = append(out, p)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// extractTotal enumerates up to `budget` full-sentence linkages with
// exactly `nulls` skipped words, filtering any that violate the
// exclusion meta-rule (possible only via multi-connectors).
func (st *parseState) extractTotal(nulls, budget int) []*Linkage {
	n := len(st.words)
	var out []*Linkage
	for _, d0 := range st.disjuncts[0] {
		if d0.leftList != nil {
			continue
		}
		if st.count(0, n, d0.rightList, nil, nulls) == 0 {
			continue
		}
		for _, p := range st.extract(0, n, d0.rightList, nil, nulls, budget-len(out)) {
			lk := &Linkage{
				Links: p.links,
				Cost:  p.cost + d0.Cost,
			}
			lk.NullWords = append(lk.NullWords, p.nulls...)
			sort.Ints(lk.NullWords)
			sort.Slice(lk.Links, func(i, j int) bool {
				if lk.Links[i].Left != lk.Links[j].Left {
					return lk.Links[i].Left < lk.Links[j].Left
				}
				return lk.Links[i].Right < lk.Links[j].Right
			})
			if lk.violatesExclusion() {
				continue
			}
			out = append(out, lk)
			if len(out) >= budget {
				return out
			}
		}
	}
	return out
}

// extract mirrors count but materializes the linkages.
func (st *parseState) extract(a, b int, la, lb *connNode, nulls, budget int) []partial {
	if budget <= 0 {
		return nil
	}
	if b == a+1 {
		if la == nil && lb == nil && nulls == 0 {
			return []partial{{}}
		}
		return nil
	}
	if la == nil && lb == nil {
		if nulls != b-a-1 {
			return nil
		}
		p := partial{nulls: make([]int, 0, nulls)}
		for w := a + 1; w < b; w++ {
			p.nulls = append(p.nulls, w)
		}
		return []partial{p}
	}
	if st.count(a, b, la, lb, nulls) == 0 {
		return nil
	}

	var out []partial
	emit := func(link Link, ls, rs []partial) {
		for _, p := range crossPartials(ls, rs, budget-len(out)) {
			p.links = append(p.links, link)
			out = append(out, p)
			if len(out) >= budget {
				return
			}
		}
	}

	if la != nil {
		for w := a + 1; w < b && len(out) < budget; w++ {
			for _, d := range st.disjuncts[w] {
				dl := d.leftList
				if dl == nil || !Match(la.conn, dl.conn) {
					continue
				}
				link := Link{
					Left: a, Right: w,
					Label: LinkLabel(la.conn, dl.conn),
					LConn: la.conn, RConn: dl.conn,
				}
				for _, v := range matchVariants(la, dl) {
					for k1 := 0; k1 <= nulls && len(out) < budget; k1++ {
						if st.count(a, w, v.x, v.y, k1) == 0 ||
							st.count(w, b, d.rightList, lb, nulls-k1) == 0 {
							continue
						}
						ls := st.extract(a, w, v.x, v.y, k1, budget-len(out))
						rs := st.extract(w, b, d.rightList, lb, nulls-k1, budget-len(out))
						withCost := make([]partial, len(rs))
						for i, r := range rs {
							r.cost += d.Cost
							withCost[i] = r
						}
						emit(link, ls, withCost)
					}
				}
			}
		}
		if lb != nil && Match(la.conn, lb.conn) && len(out) < budget {
			link := Link{
				Left: a, Right: b,
				Label: LinkLabel(la.conn, lb.conn),
				LConn: la.conn, RConn: lb.conn,
			}
			for _, v := range matchVariants(la, lb) {
				if st.count(a, b, v.x, v.y, nulls) == 0 {
					continue
				}
				for _, p := range st.extract(a, b, v.x, v.y, nulls, budget-len(out)) {
					p.links = append(p.links, link)
					out = append(out, p)
					if len(out) >= budget {
						return out
					}
				}
			}
		}
	} else {
		for w := a + 1; w < b && len(out) < budget; w++ {
			for _, d := range st.disjuncts[w] {
				dr := d.rightList
				if dr == nil || !Match(dr.conn, lb.conn) {
					continue
				}
				link := Link{
					Left: w, Right: b,
					Label: LinkLabel(dr.conn, lb.conn),
					LConn: dr.conn, RConn: lb.conn,
				}
				for _, v := range matchVariants(dr, lb) {
					for k1 := 0; k1 <= nulls && len(out) < budget; k1++ {
						if st.count(a, w, nil, d.leftList, k1) == 0 ||
							st.count(w, b, v.x, v.y, nulls-k1) == 0 {
							continue
						}
						ls := st.extract(a, w, nil, d.leftList, k1, budget-len(out))
						rs := st.extract(w, b, v.x, v.y, nulls-k1, budget-len(out))
						withCost := make([]partial, len(ls))
						for i, l := range ls {
							l.cost += d.Cost
							withCost[i] = l
						}
						emit(link, withCost, rs)
					}
				}
			}
		}
	}
	return out
}
