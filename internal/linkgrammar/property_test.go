package linkgrammar

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyLinkagesSatisfyMetaRules is the central parser invariant:
// every linkage the parser emits — for any input assembled from
// dictionary words — satisfies planarity, connectivity, ordering and
// exclusion.
func TestPropertyLinkagesSatisfyMetaRules(t *testing.T) {
	p := newTestParser(t)
	words := p.Dictionary().Words()
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := 2 + rng.Intn(8)
			tokens := make([]string, n)
			for i := range tokens {
				tokens[i] = words[rng.Intn(len(words))]
			}
			vals[0] = reflect.ValueOf(tokens)
		},
	}
	f := func(tokens []string) bool {
		// Strip the wall if randomly drawn: it is parser-internal.
		clean := tokens[:0]
		for _, tok := range tokens {
			if tok != LeftWall {
				clean = append(clean, tok)
			}
		}
		if len(clean) == 0 {
			return true
		}
		res, err := p.ParseTokens(clean)
		if err != nil {
			return true // length guards etc. are fine
		}
		for _, lk := range res.Linkages {
			if err := lk.Validate(); err != nil {
				t.Logf("tokens %v: %v\n%s", clean, err, lk)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyNullCountMatchesLinkage checks that the parser's reported
// NullCount always equals the null words on every returned linkage.
func TestPropertyNullCountMatchesLinkage(t *testing.T) {
	p := newTestParser(t)
	words := p.Dictionary().Words()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(7)
		tokens := make([]string, n)
		for j := range tokens {
			tokens[j] = words[rng.Intn(len(words))]
		}
		res, err := p.ParseTokens(tokens)
		if err != nil {
			continue
		}
		for _, lk := range res.Linkages {
			if len(lk.NullWords) != res.NullCount {
				t.Fatalf("tokens %v: linkage has %d nulls, result says %d",
					tokens, len(lk.NullWords), res.NullCount)
			}
		}
	}
}

// TestPropertyTokenizeIdempotent: tokenizing the joined tokens yields
// the same tokens.
func TestPropertyTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		first := Tokenize(s)
		second := Tokenize(strings.Join(first, " "))
		if len(first) != len(second) {
			return false
		}
		for i := range first {
			if first[i] != second[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTokenizeLowercasesASCII: no token contains an upper-case
// ASCII letter.
func TestPropertyTokenizeLowercasesASCII(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			for i := 0; i < len(tok); i++ {
				if tok[i] >= 'A' && tok[i] <= 'Z' {
					return false
				}
			}
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMatchNeedsOppositeDirections: two connectors match only
// with a right-pointing left operand and left-pointing right operand.
func TestPropertyMatchNeedsOppositeDirections(t *testing.T) {
	names := []string{"S", "Ss", "Sp", "D", "Ds", "O", "W", "Wd", "A", "S*b"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := Connector{Name: names[rng.Intn(len(names))], Dir: Direction(1 + rng.Intn(2))}
		b := Connector{Name: names[rng.Intn(len(names))], Dir: Direction(1 + rng.Intn(2))}
		if Match(a, b) && (a.Dir != DirRight || b.Dir != DirLeft) {
			t.Fatalf("Match(%v,%v) true with wrong directions", a, b)
		}
		// Same names, correct directions, no subscripts conflict ⇒ the
		// upper-case prefix decides.
		if a.Dir == DirRight && b.Dir == DirLeft && Match(a, b) {
			au, bu := a.Name[:upperLen(a.Name)], b.Name[:upperLen(b.Name)]
			if au != bu {
				t.Fatalf("Match(%v,%v) true with different types", a, b)
			}
		}
	}
}

// TestPropertyLinkLabelSharedPrefix: a link's label always starts with
// the connectors' shared upper-case type.
func TestPropertyLinkLabelSharedPrefix(t *testing.T) {
	pairs := [][2]string{
		{"Ss+", "S-"}, {"S+", "Ss-"}, {"Wd+", "Wd-"}, {"D+", "Ds-"},
		{"S*b+", "Spb-"}, {"MV+", "MV-"},
	}
	for _, pair := range pairs {
		r, err := parseConnectorToken(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		l, err := parseConnectorToken(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !Match(r, l) {
			t.Fatalf("pair %v should match", pair)
		}
		label := LinkLabel(r, l)
		base := r.Name[:upperLen(r.Name)]
		if !strings.HasPrefix(label, base) {
			t.Errorf("label %q does not start with type %q", label, base)
		}
	}
}

// TestPropertyDisjunctExpansionBounded: random small formulas expand
// into a bounded, deduplicated disjunct set with non-negative costs.
func TestPropertyDisjunctExpansionBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	connectors := []string{"A+", "A-", "B+", "B-", "C+", "C-", "@D-", "Ss+"}
	var build func(depth int) string
	build = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			return connectors[rng.Intn(len(connectors))]
		}
		switch rng.Intn(4) {
		case 0:
			return "(" + build(depth-1) + " & " + build(depth-1) + ")"
		case 1:
			return "(" + build(depth-1) + " or " + build(depth-1) + ")"
		case 2:
			return "{" + build(depth-1) + "}"
		default:
			return "[" + build(depth-1) + "]"
		}
	}
	for i := 0; i < 300; i++ {
		src := build(4)
		expr, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("formula %q: %v", src, err)
		}
		ds, err := buildDisjuncts(expr, func(string) (*Expr, error) { return nil, nil })
		if err != nil {
			t.Fatalf("expand %q: %v", src, err)
		}
		if len(ds) > maxDisjunctsPerWord {
			t.Fatalf("expansion exceeded cap: %d", len(ds))
		}
		seen := make(map[string]bool, len(ds))
		for _, d := range ds {
			if d.Cost < 0 {
				t.Fatalf("negative cost in %q", src)
			}
			key := d.key()
			if seen[key] {
				t.Fatalf("duplicate disjunct %s from %q", key, src)
			}
			seen[key] = true
		}
	}
}

// TestPropertyFormulaStringReparses: rendering an expression and
// re-parsing it yields the same disjunct set.
func TestPropertyFormulaStringReparses(t *testing.T) {
	formulas := []string{
		"{@A-} & Ds- & (({Wd-} & Ss+) or O- or J-)",
		"(Sp- or I- or Wi-) & O+ & {@MV+}",
		"[A+] or (Pa- & {@MV+})",
		"Wd+ or Wq+ or Wi+",
	}
	for _, src := range formulas {
		e1, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		e2, err := ParseFormula(e1.String())
		if err != nil {
			t.Fatalf("reparse %q -> %q: %v", src, e1.String(), err)
		}
		noMacros := func(string) (*Expr, error) { return nil, nil }
		d1, err := buildDisjuncts(e1, noMacros)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := buildDisjuncts(e2, noMacros)
		if err != nil {
			t.Fatal(err)
		}
		if len(d1) != len(d2) {
			t.Fatalf("%q: %d vs %d disjuncts after round trip", src, len(d1), len(d2))
		}
		for i := range d1 {
			if d1[i].key() != d2[i].key() || d1[i].Cost != d2[i].Cost {
				t.Fatalf("%q: disjunct %d differs: %s vs %s", src, i, d1[i], d2[i])
			}
		}
	}
}
