package linkgrammar

import "strings"

// LeftWall is the dictionary key of the virtual word anchoring every
// sentence on the left, as in the CMU parser.
const LeftWall = "left-wall"

// Tokenize splits a raw chat line into dictionary tokens: lower-cased
// words with sentence punctuation stripped. Apostrophes inside words are
// kept so contractions ("doesn't") match their dictionary entries.
// Hyphenated compounds are kept whole ("last-in").
func Tokenize(sentence string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range sentence {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			cur.WriteRune(r)
		case r == '\'' || r == '’':
			if cur.Len() > 0 {
				cur.WriteByte('\'')
			}
		case r == '-':
			if cur.Len() > 0 {
				cur.WriteByte('-')
			}
		default:
			flush()
		}
	}
	flush()
	// Trim trailing hyphens/apostrophes left by malformed input.
	for i, t := range toks {
		toks[i] = strings.Trim(t, "-'")
	}
	out := toks[:0]
	for _, t := range toks {
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// EndsWithQuestionMark reports whether the raw sentence is punctuated as
// a question, a cue the sentence-pattern classifier uses.
func EndsWithQuestionMark(sentence string) bool {
	s := strings.TrimRight(sentence, " \t\r\n")
	return strings.HasSuffix(s, "?")
}
