package linkgrammar

import "strings"

// LeftWall is the dictionary key of the virtual word anchoring every
// sentence on the left, as in the CMU parser.
const LeftWall = "left-wall"

// lowerByte maps ASCII upper case to lower case and leaves every other
// byte unchanged — a table lookup instead of strings.ToLower on the
// supervision hot path.
var lowerByte = func() (t [256]byte) {
	for i := range t {
		t[i] = byte(i)
	}
	for c := 'A'; c <= 'Z'; c++ {
		t[c] = byte(c) + ('a' - 'A')
	}
	return
}()

// Tokenize splits a raw chat line into dictionary tokens: lower-cased
// words with sentence punctuation stripped. Apostrophes inside words are
// kept so contractions ("doesn't") match their dictionary entries.
// Hyphenated compounds are kept whole ("last-in").
func Tokenize(sentence string) []string {
	return AppendTokens(nil, sentence)
}

// AppendTokens tokenizes sentence exactly like Tokenize but appends
// into dst, so a caller that owns a pooled slice pays no allocation for
// the slice header and — for tokens that are already lower-case ASCII —
// none for the token either: such tokens are substrings of sentence.
// Only tokens that need transformation (upper case to fold, a Unicode
// apostrophe to normalize) are materialized through a scratch buffer.
//
// The returned strings either alias sentence or are freshly allocated;
// they never alias dst's previous contents or any pooled storage, so
// retaining them is always safe.
func AppendTokens(dst []string, sentence string) []string {
	var buf []byte // scratch for tokens that need transformation
	start := 0     // token start in sentence while in substring mode
	buffered := false
	cur := 0  // token length in bytes so far
	keep := 0 // token length up to the last alphanumeric byte

	// Tokens always begin with an alphanumeric byte, so trimming the
	// trailing hyphens/apostrophes of malformed input ("foo--", "it'")
	// is a truncation to keep — no second pass over the tokens.
	for i := 0; i < len(sentence); i++ {
		c := sentence[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			if buffered {
				buf = append(buf, c)
			} else if cur == 0 {
				start = i
			}
			cur++
			keep = cur
		case c >= 'A' && c <= 'Z':
			if !buffered {
				buf = append(buf[:0], sentence[start:start+cur]...)
				buffered = true
			}
			buf = append(buf, lowerByte[c])
			cur++
			keep = cur
		case c == '\'' || c == '-':
			if cur > 0 {
				if buffered {
					buf = append(buf, c)
				}
				cur++
			}
		case c == 0xe2 && i+2 < len(sentence) && sentence[i+1] == 0x80 && sentence[i+2] == 0x99:
			// U+2019 right single quote, normalized to '.
			if cur > 0 {
				if !buffered {
					buf = append(buf[:0], sentence[start:start+cur]...)
					buffered = true
				}
				buf = append(buf, '\'')
				cur++
			}
			i += 2
		default:
			if keep > 0 {
				if buffered {
					dst = append(dst, string(buf[:keep]))
				} else {
					dst = append(dst, sentence[start:start+keep])
				}
			}
			buffered, cur, keep = false, 0, 0
		}
	}
	if keep > 0 {
		if buffered {
			dst = append(dst, string(buf[:keep]))
		} else {
			dst = append(dst, sentence[start:start+keep])
		}
	}
	return dst
}

// EndsWithQuestionMark reports whether the raw sentence is punctuated as
// a question, a cue the sentence-pattern classifier uses.
func EndsWithQuestionMark(sentence string) bool {
	s := strings.TrimRight(sentence, " \t\r\n")
	return strings.HasSuffix(s, "?")
}
