package linkgrammar

import (
	"strings"
	"testing"
)

func TestLoadStringErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing colon", "cat dog;"},
		{"bad formula", "cat: S+ &&& O-;"},
		{"dangling direction", "cat: S;"},
		{"unterminated macro", "cat: <foo;"},
		{"empty heads", ": S+;"},
	}
	for _, tc := range cases {
		d := NewDictionary()
		if err := d.LoadString(tc.src); err == nil {
			t.Errorf("%s: LoadString(%q) should fail", tc.name, tc.src)
		}
	}
}

func TestUndefinedMacroSurfacesAtExpansion(t *testing.T) {
	d := NewDictionary()
	if err := d.LoadString("cat: <no-such-macro>;"); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := d.Disjuncts("cat"); err == nil {
		t.Error("expanding an undefined macro should fail")
	}
}

func TestMergeOrExtendsEntries(t *testing.T) {
	d := NewDictionary()
	if err := d.LoadString("cat: S+;"); err != nil {
		t.Fatal(err)
	}
	ds1, err := d.Disjuncts("cat")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadString("cat: O-;"); err != nil {
		t.Fatal(err)
	}
	ds2, err := d.Disjuncts("cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2) != len(ds1)+1 {
		t.Errorf("merged entry has %d disjuncts, want %d", len(ds2), len(ds1)+1)
	}
}

func TestDisjunctOverflowGuard(t *testing.T) {
	d := NewDictionary()
	// 2^13 = 8192 disjuncts > cap of 4096.
	var b strings.Builder
	b.WriteString("boom:")
	for i := 0; i < 13; i++ {
		if i > 0 {
			b.WriteString(" &")
		}
		b.WriteString(" (A+ or B+)")
	}
	b.WriteString(";")
	if err := d.LoadString(b.String()); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := d.Disjuncts("boom"); err == nil {
		t.Error("expected disjunct overflow error")
	}
}

func TestNumericTokensUseNumberMacro(t *testing.T) {
	d, err := NewEnglishDictionary()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := d.Disjuncts("42")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("number token got no disjuncts")
	}
	p := NewParser(d, DefaultOptions())
	res, err := p.Parse("The array has 42 elements.")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid() {
		t.Errorf("numeric sentence should parse: nulls=%d", res.NullCount)
	}
}

func TestSetUnknownWordMacroValidation(t *testing.T) {
	d := NewDictionary()
	if err := d.SetUnknownWordMacro("nope"); err == nil {
		t.Error("unknown macro name should be rejected")
	}
	if err := d.SetUnknownWordMacro(""); err != nil {
		t.Errorf("clearing the fallback should succeed: %v", err)
	}
}

func TestMaxTokensGuard(t *testing.T) {
	p, err := NewEnglishParser()
	if err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("cat ", 60)
	if _, err := p.Parse(long); err == nil {
		t.Error("overlong sentence should be rejected before parsing")
	}
}

func TestMaxLinkagesCap(t *testing.T) {
	d, err := NewEnglishDictionary()
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser(d, Options{MaxLinkages: 2, MaxNulls: 2})
	// An ambiguous sentence (PP attachment) can yield many parses.
	res, err := p.Parse("the student reads the book in the classroom")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Linkages) > 2 {
		t.Errorf("linkage cap ignored: %d", len(res.Linkages))
	}
}

func TestBestLinkageIsCheapest(t *testing.T) {
	p, err := NewEnglishParser()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Parse("Does stack have pop method?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Linkages) == 0 {
		t.Fatal("no linkages")
	}
	best := res.Best().Cost
	for _, lk := range res.Linkages {
		if lk.Cost < best {
			t.Errorf("linkage with cost %d before best %d", lk.Cost, best)
		}
	}
}

func TestWordsAndLen(t *testing.T) {
	d := NewDictionary()
	if err := d.LoadString("zebra: S+; apple: O-;"); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("len = %d", d.Len())
	}
	words := d.Words()
	if len(words) != 2 || words[0] != "apple" || words[1] != "zebra" {
		t.Errorf("words = %v, want sorted [apple zebra]", words)
	}
	if !d.Has("ZEBRA") {
		t.Error("Has must be case-insensitive")
	}
}
