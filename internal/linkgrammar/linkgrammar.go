package linkgrammar

import "fmt"

// NewEnglishDictionary loads the built-in course-domain English
// dictionary with the unknown-word fallback enabled.
func NewEnglishDictionary() (*Dictionary, error) {
	d := NewDictionary()
	if err := d.LoadString(BaseDictionary()); err != nil {
		return nil, fmt.Errorf("base dictionary: %w", err)
	}
	if err := d.SetUnknownWordMacro("unknown-word"); err != nil {
		return nil, err
	}
	return d, nil
}

// NewEnglishParser is the one-call constructor used throughout the
// system: the built-in dictionary with default fault-tolerance options.
func NewEnglishParser() (*Parser, error) {
	d, err := NewEnglishDictionary()
	if err != nil {
		return nil, err
	}
	return NewParser(d, DefaultOptions()), nil
}
