// Package linttest is the golden-fixture harness for the semalint
// analyzers: it loads fixture packages laid out in GOPATH/src style
// under a testdata root, runs one analyzer through the real lint
// driver (directive suppression included), and compares the surviving
// diagnostics against // want "regex" comments in the fixture source —
// the analysistest contract, minus the go/packages dependency the
// vendored toolchain copy of x/tools does not ship.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"semagent/internal/lint"
	"semagent/internal/lint/load"
)

// want is one expectation parsed from a // want comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the named fixture packages under srcRoot, applies the
// analyzer via the lint driver, and fails the test on any mismatch
// between diagnostics and // want comments. It returns the surviving
// diagnostics so callers can make additional assertions.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) []lint.Diagnostic {
	t.Helper()
	root, err := filepath.Abs(srcRoot)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader := load.New("", "", root)
	var pkgs []*load.Package
	for _, path := range pkgPaths {
		pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(path)), path)
		if err != nil {
			t.Fatalf("linttest: load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := lint.Run(pkgs, loader.Fset, []*analysis.Analyzer{a}, lint.Options{})
	if err != nil {
		t.Fatalf("linttest: run %s: %v", a.Name, err)
	}

	wants := collectWants(t, loader.Fset, pkgs)
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
	return diags
}

// matchWant marks every expectation at the diagnostic's line whose
// regexp matches; it reports whether any did.
func matchWant(wants []*want, d lint.Diagnostic) bool {
	hit := false
	for _, w := range wants {
		if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			hit = true
		}
	}
	return hit
}

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, fset.Position(c.Pos()), c)...)
				}
			}
		}
	}
	return wants
}

// wantLiteralRE matches the string literals of a want comment.
var wantLiteralRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// parseWant extracts the expectations of one comment, if it is a want
// comment. Expectations attach to the comment's own line, so the
// fixture idiom is a trailing comment on the flagged statement.
func parseWant(t *testing.T, pos token.Position, c *ast.Comment) []*want {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return nil // /* */ comments are prose, not expectations
	}
	text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
	if !ok {
		return nil
	}
	lits := wantLiteralRE.FindAllString(text, -1)
	if len(lits) == 0 {
		t.Fatalf("%s: malformed want comment: no string literal in %q", pos, c.Text)
	}
	var wants []*want
	for _, lit := range lits {
		pattern, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: malformed want literal %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	return wants
}

// SetFlag sets an analyzer flag for the duration of the test,
// restoring the previous value at cleanup — fixture packages use short
// import paths, not the real module's.
func SetFlag(t *testing.T, a *analysis.Analyzer, name, value string) {
	t.Helper()
	f := a.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("linttest: analyzer %s has no flag %q", a.Name, name)
	}
	prev := f.Value.String()
	if err := f.Value.Set(value); err != nil {
		t.Fatalf("linttest: set -%s.%s=%s: %v", a.Name, name, value, err)
	}
	t.Cleanup(func() {
		if err := f.Value.Set(prev); err != nil {
			panic(fmt.Sprintf("linttest: restore -%s.%s=%s: %v", a.Name, name, prev, err))
		}
	})
}
