package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const metricNamesDoc = `enforce literal, convention-following metric names at registration sites

Metric names are a public, scrape-time API: a name computed at
runtime cannot be grepped, dashboarded against, or checked for
collisions, and a name outside the Prometheus charset is silently
unscrapable. At every metrics.Registry registration call the name
argument must be a compile-time constant string, match the
Prometheus naming grammar, and carry this module's prefix so fleet
dashboards can select semagent series. Deliberate exceptions (a
bridge re-exporting another system's names) are annotated in place:

	//semalint:allow metricnames: <reason>`

// MetricNames is the metricnames analyzer.
var MetricNames = &analysis.Analyzer{
	Name:     "metricnames",
	Doc:      metricNamesDoc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMetricNames,
}

var (
	metricNamesPkg     = "semagent/internal/metrics"
	metricNamesMethods = "Counter,Gauge,GaugeFunc,DurationHistogram,HistogramWithBounds"
	metricNamesPrefix  = "semagent_"
)

// metricNameRE is the Prometheus metric-name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func init() {
	MetricNames.Flags.StringVar(&metricNamesPkg, "metricspkg", metricNamesPkg,
		"import path of the metrics registry package")
	MetricNames.Flags.StringVar(&metricNamesMethods, "methods", metricNamesMethods,
		"comma-separated registration method names whose first argument is the metric name")
	MetricNames.Flags.StringVar(&metricNamesPrefix, "prefix", metricNamesPrefix,
		"required metric-name prefix")
}

func runMetricNames(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == metricNamesPkg {
		return nil, nil // the registry's internals pass names through
	}
	methods := make(map[string]bool)
	for _, m := range strings.Split(metricNamesMethods, ",") {
		if m = strings.TrimSpace(m); m != "" {
			methods[m] = true
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricNamesPkg ||
			!methods[fn.Name()] || fn.Type().(*types.Signature).Recv() == nil {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		arg := call.Args[0]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.ReportRangef(arg, "metric name passed to %s must be a compile-time constant string: runtime-built names cannot be grepped or collision-checked", fn.Name())
			return
		}
		name := constant.StringVal(tv.Value)
		switch {
		case !metricNameRE.MatchString(name):
			pass.ReportRangef(arg, "metric name %q does not match the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*: the series would be unscrapable", name)
		case !strings.HasPrefix(name, metricNamesPrefix):
			pass.ReportRangef(arg, "metric name %q lacks the %q prefix: fleet dashboards select this module's series by prefix", name, metricNamesPrefix)
		}
	})
	return nil, nil
}
