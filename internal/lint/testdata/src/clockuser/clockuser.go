// Package clockuser is the injectedclock positive fixture: the test
// lists its import path via -injectedclock.packages, so every
// wall-clock use below must be reported unless annotated.
package clockuser

import "time"

// Epoch is built from constants, not the wall clock: fine.
var Epoch = time.Unix(0, 0)

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want `direct time\.Now in clock-injected package clockuser`
}

// Nap schedules against the wall clock.
func Nap() {
	time.Sleep(time.Millisecond) // want `direct time\.Sleep in clock-injected package clockuser`
}

// Hold smuggles the wall clock out as a value — a reference, not a
// call, and just as nondeterministic.
func Hold() func() time.Time {
	return time.Now // want `direct time\.Now in clock-injected package clockuser`
}

// Elapsed measures against the wall clock.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `direct time\.Since in clock-injected package clockuser`
}

// Allowed is wall-clock on purpose; the reasoned directive suppresses
// the diagnostic.
func Allowed() time.Time {
	//semalint:allow injectedclock: fixture exercising the escape hatch
	return time.Now()
}
