// Package ontology stands in for the real lock-free ontology: the
// snapshotonce fixture only needs the Snapshot() pin and a method on
// the pinned handle.
package ontology

// Ontology is the mutable store.
type Ontology struct{ version int }

// Snapshot pins the current generation.
func (o *Ontology) Snapshot() *Snapshot { return &Snapshot{version: o.version} }

// Snapshot is one immutable generation.
type Snapshot struct{ version int }

// Version reports the pinned generation.
func (s *Snapshot) Version() int { return s.version }
