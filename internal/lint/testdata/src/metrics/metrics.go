// Package metrics stands in for the real metrics registry: the
// metricnames fixture only needs registration methods whose first
// argument is the metric name.
package metrics

// Registry registers metric families.
type Registry struct{}

// Counter is a monotone counter.
type Counter struct{}

// Histogram is a bucketed distribution.
type Histogram struct{}

// Label is one name=value pair.
type Label struct{ Name, Value string }

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return nil }

// Gauge registers (or returns) a gauge, stored as a counter here.
func (r *Registry) Gauge(name, help string, labels ...Label) *Counter { return nil }

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {}

// DurationHistogram registers a latency histogram.
func (r *Registry) DurationHistogram(name, help string, labels ...Label) *Histogram { return nil }

// HistogramWithBounds registers a histogram with explicit bounds.
func (r *Registry) HistogramWithBounds(name, help string, bounds []int64, scale float64, labels ...Label) *Histogram {
	return nil
}
