// Package okclock is the injectedclock negative fixture: it is not
// listed in -injectedclock.packages and imports no clock package, so
// its wall-clock use is outside the discipline.
package okclock

import "time"

// Stamp may read the wall clock freely.
func Stamp() time.Time { return time.Now() }
