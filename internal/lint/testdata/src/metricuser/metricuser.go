// Package metricuser is the metricnames fixture: metric names are a
// scrape-time API, so they must be literal, grammatical and carry the
// module prefix at every registration site.
package metricuser

import (
	"fmt"

	"metrics"
)

const goodName = "semagent_requests_total"

// Registered uses literal, prefixed, grammatical names — constants
// fold, so a named const is as good as a literal.
func Registered(r *metrics.Registry) {
	r.Counter("semagent_messages_total", "messages supervised")
	r.Gauge(goodName, "requests in flight")
}

// Computed builds the name at runtime.
func Computed(r *metrics.Registry, room string) {
	r.Counter(fmt.Sprintf("semagent_%s_total", room), "per-room") // want `must be a compile-time constant string`
}

// BadCharset uses a name outside the Prometheus grammar.
func BadCharset(r *metrics.Registry) {
	r.DurationHistogram("semagent latency seconds", "latency") // want `does not match the Prometheus grammar`
}

// WrongPrefix forgets the module prefix.
func WrongPrefix(r *metrics.Registry) {
	r.Counter("chat_messages_total", "messages") // want `lacks the "semagent_" prefix`
}

// Bridged re-exports another system's series name under the escape
// hatch.
func Bridged(r *metrics.Registry) {
	//semalint:allow metricnames: fixture stands in for a bridge re-exporting upstream names
	r.Counter("upstream_queue_depth", "bridged series")
}
