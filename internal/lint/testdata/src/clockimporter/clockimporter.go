// Package clockimporter is not listed in -injectedclock.packages, but
// it imports the clock package — which opts it into the discipline by
// itself: a package that takes an injected clock must use it.
package clockimporter

import (
	"time"

	"clockpkg"
)

// Stamp falls back to the wall clock instead of requiring a clock.
func Stamp(c clockpkg.Clock) time.Time {
	if c != nil {
		return c.Now()
	}
	return time.Now() // want `direct time\.Now in clock-injected package clockimporter`
}
