// Package pipeline stands in for the real admission-controlled
// pipeline: the shedhandled fixture only needs an error-returning
// Submit method.
package pipeline

// Pipeline is the sharded worker pool.
type Pipeline struct{}

// Submit enqueues a task; the error reports a shed, a full queue or a
// closed pipeline.
func (p *Pipeline) Submit(room string, fn func()) error { return nil }
