// Package pooluse is the pooldiscipline fixture: a pooled value that
// escapes its getter has no lifetime tied to the matching Put, and a
// recycled object gets mutated under a live reader.
package pooluse

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

var global *buf

// Leaked stores the pooled value in a package-level variable.
func Leaked() {
	v := pool.Get().(*buf)
	global = v // want `pooled value stored in package-level variable global`
}

type holder struct{ b *buf }

// Fielded stores the pooled value in a struct field.
func Fielded(h *holder) {
	v := pool.Get().(*buf)
	h.b = v // want `pooled value stored in struct field b`
}

// Sent pushes the pooled value across a channel.
func Sent(ch chan *buf) {
	v := pool.Get().(*buf)
	ch <- v // want `pooled value sent on a channel`
}

// Returned hands the pooled value to the caller.
func Returned() *buf {
	v := pool.Get().(*buf)
	return v // want `pooled value returned from its getter`
}

// ReturnedDirect returns the Get result without ever binding it.
func ReturnedDirect() *buf {
	return pool.Get().(*buf) // want `pooled value returned from its getter`
}

// Scoped uses the value and puts it back: the discipline.
func Scoped() int {
	v := pool.Get().(*buf)
	n := len(v.b)
	pool.Put(v)
	return n
}

// Transferred escapes under the escape hatch — the stand-in for a
// refcounted ownership transfer whose last release performs the Put.
func Transferred() *buf {
	v := pool.Get().(*buf)
	//semalint:allow pooldiscipline: fixture stands in for refcounted ownership transfer
	return v
}
