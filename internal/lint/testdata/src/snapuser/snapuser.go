// Package snapuser is the snapshotonce fixture: two pins in one unit
// of analysis may span a concurrent ontology edit and judge one
// sentence against two knowledge generations.
package snapuser

import "ontology"

// TwoPins pins the same ontology twice in one function.
func TwoPins(o *ontology.Ontology) (int, int) {
	a := o.Snapshot()
	b := o.Snapshot() // want `second Snapshot\(\) pin on "o"`
	return a.Version(), b.Version()
}

// TwoOntologies pins two different stores once each: fine.
func TwoOntologies(o1, o2 *ontology.Ontology) (int, int) {
	return o1.Snapshot().Version(), o2.Snapshot().Version()
}

type holder struct {
	onto *ontology.Ontology
	snap *ontology.Snapshot
}

// FreshPinWithHeld pins fresh although the receiver already holds a
// pinned snapshot.
func (h *holder) FreshPinWithHeld() int {
	return h.onto.Snapshot().Version() // want `fresh Snapshot\(\) pin in a function that already holds a pinned snapshot \(receiver field snap\)`
}

// FreshPinWithParam pins fresh next to a pinned-snapshot parameter.
func FreshPinWithParam(o *ontology.Ontology, snap *ontology.Snapshot) int {
	return o.Snapshot().Version() + snap.Version() // want `fresh Snapshot\(\) pin in a function that already holds a pinned snapshot \(parameter snap\)`
}

// HeldOnly uses the held pin throughout: the discipline.
func (h *holder) HeldOnly() int { return h.snap.Version() }

// LitScopes pins once per function scope — a literal is its own unit
// of analysis, so neither pin is a duplicate.
func LitScopes(o *ontology.Ontology) func() int {
	s := o.Snapshot()
	_ = s.Version()
	return func() int { return o.Snapshot().Version() }
}

// AllowedRePin re-pins deliberately with the escape hatch.
func AllowedRePin(o *ontology.Ontology) (int, int) {
	a := o.Snapshot()
	//semalint:allow snapshotonce: fixture exercising a deliberate re-pin
	b := o.Snapshot()
	return a.Version(), b.Version()
}
