// Package sheduser is the shedhandled fixture: a discarded admission
// error turns deliberate, counted load shedding into a silent
// supervision coverage hole.
package sheduser

import "pipeline"

// Discarded drops the admission error outright.
func Discarded(p *pipeline.Pipeline) {
	p.Submit("room", func() {}) // want `error of pipeline\.Submit discarded`
}

// Blanked hides the error behind the blank identifier.
func Blanked(p *pipeline.Pipeline) {
	_ = p.Submit("room", func() {}) // want `error of pipeline\.Submit assigned to _`
}

// Launched makes the error unobservable.
func Launched(p *pipeline.Pipeline) {
	go p.Submit("room", func() {}) // want `error of pipeline\.Submit unobservable from go/defer`
}

// Handled checks the error: the contract.
func Handled(p *pipeline.Pipeline) error {
	if err := p.Submit("room", func() {}); err != nil {
		return err
	}
	return nil
}

// Propagated hands the error to the caller: fine.
func Propagated(p *pipeline.Pipeline) error {
	err := p.Submit("room", func() {})
	return err
}

// Accounted discards the error under the escape hatch — the stand-in
// for a call site whose sheds the OnShed hook counts.
func Accounted(p *pipeline.Pipeline) {
	//semalint:allow shedhandled: fixture stands in for an OnShed-accounted call site
	p.Submit("room", func() {})
}
