// Package clockpkg stands in for the injected clock package:
// importing it opts a package into the clock discipline. The clock
// package itself is exempt — it is the wall-clock fallback
// implementation.
package clockpkg

import "time"

// Clock is the injected time source.
type Clock interface {
	Now() time.Time
}

type system struct{}

func (system) Now() time.Time { return time.Now() }

// System is the wall-clock fallback.
var System Clock = system{}
