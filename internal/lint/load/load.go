// Package load typechecks Go packages from source. It is the loading
// layer under cmd/semalint and the lint test harness: a small,
// network-free replacement for golang.org/x/tools/go/packages, which
// is not vendored with the toolchain. Resolution is deliberately
// simple because this repository is a closed world — every import is
// either the module itself, the repository vendor tree, the standard
// library (including its internal vendor tree), or a test fixture
// root. Everything is parsed and typechecked from source in
// dependency order, so the loader needs no export data, build cache
// or go command.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one typechecked package with the syntax trees an
// analyzer pass needs.
type Package struct {
	// PkgPath is the import path as written at the import site that
	// first caused the load (for module packages, the module-relative
	// import path).
	PkgPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files are the parsed syntax trees, with comments, in file-name
	// order.
	Files []*ast.File
	// Types and TypesInfo are the typechecker's outputs.
	Types     *types.Package
	TypesInfo *types.Info
	// IgnoredFiles are Go files in Dir excluded by build constraints.
	IgnoredFiles []string
	// OtherFiles are non-Go files in Dir (assembly, embeds).
	OtherFiles []string
}

// Loader resolves import paths and typechecks packages from source,
// memoizing by directory so diamond imports share one instance.
type Loader struct {
	// Fset is the shared file set for every package this loader
	// touches.
	Fset *token.FileSet
	// ModulePath and ModuleDir root the module being analyzed:
	// imports of ModulePath/... resolve into ModuleDir. Optional.
	ModulePath string
	ModuleDir  string
	// Roots are extra resolution roots (fixture trees in GOPATH/src
	// layout), tried after the module, vendor and GOROOT.
	Roots []string

	ctx     build.Context
	sizes   types.Sizes
	byDir   map[string]*Package
	loading map[string]bool
}

// New returns a Loader for the module rooted at moduleDir. The
// returned loader disables cgo so every dependency — the standard
// library's net included — selects its pure-Go fallback and stays
// typecheckable from source.
func New(modulePath, moduleDir string, roots ...string) *Loader {
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		Roots:      roots,
		ctx:        ctx,
		sizes:      types.SizesFor("gc", runtime.GOARCH),
		byDir:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom; srcDir disambiguates the
// standard library's internal vendor tree.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir, err := l.resolve(path, srcDir)
	if err != nil {
		return nil, err
	}
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// resolve maps an import path to a source directory. Order: the
// module itself, the module vendor tree, GOROOT, GOROOT's vendor tree
// (the standard library imports golang.org/x/... spellings that live
// there), then the fixture roots.
func (l *Loader) resolve(path, srcDir string) (string, error) {
	if !validImportPath(path) {
		return "", fmt.Errorf("load: invalid import path %q", path)
	}
	var cands []string
	if l.ModulePath != "" {
		if path == l.ModulePath {
			cands = append(cands, l.ModuleDir)
		} else if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			cands = append(cands, filepath.Join(l.ModuleDir, filepath.FromSlash(rest)))
		}
	}
	if l.ModuleDir != "" {
		cands = append(cands, filepath.Join(l.ModuleDir, "vendor", filepath.FromSlash(path)))
	}
	goroot := filepath.Join(l.ctx.GOROOT, "src")
	cands = append(cands,
		filepath.Join(goroot, filepath.FromSlash(path)),
		filepath.Join(goroot, "vendor", filepath.FromSlash(path)))
	for _, root := range l.Roots {
		cands = append(cands, filepath.Join(root, filepath.FromSlash(path)))
	}
	for _, dir := range cands {
		if hasGoFiles(dir) {
			return dir, nil
		}
	}
	return "", fmt.Errorf("load: cannot resolve import %q (from %s)", path, srcDir)
}

// LoadDir typechecks the package in dir under the given import path
// (and, transitively, everything it imports).
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	return l.loadDir(dir, pkgPath)
}

func (l *Loader) loadDir(dir, pkgPath string) (*Package, error) {
	dir = filepath.Clean(dir)
	if pkg, ok := l.byDir[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("load: import cycle through %q", pkgPath)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", pkgPath, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", pkgPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	var firstErr error
	cfg := types.Config{
		Importer: l,
		Sizes:    l.sizes,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := cfg.Check(pkgPath, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("load %s: %w", pkgPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath:      pkgPath,
		Dir:          dir,
		Files:        files,
		Types:        tpkg,
		TypesInfo:    info,
		IgnoredFiles: absAll(dir, bp.IgnoredGoFiles),
		OtherFiles:   absAll(dir, append(append([]string{}, bp.SFiles...), bp.EmbedPatterns...)),
	}
	l.byDir[dir] = pkg
	return pkg, nil
}

// LoadModule loads every package of the loader's module (skipping
// vendor, testdata and hidden directories), returning them sorted by
// import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	dirs, err := ModulePackageDirs(l.ModuleDir)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModulePath
		if rel != "." {
			pkgPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadDir(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// ModulePackageDirs returns every directory under root that holds a
// buildable Go package, skipping vendor, testdata and hidden or
// underscore-prefixed directories.
func ModulePackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "vendor" || name == "testdata" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

func validImportPath(p string) bool {
	return p != "" && !strings.HasPrefix(p, "/") && !strings.HasPrefix(p, ".") && !strings.Contains(p, "\\")
}

func absAll(dir string, names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if strings.Contains(n, "*") {
			continue // embed pattern, not a file name
		}
		out = append(out, filepath.Join(dir, n))
	}
	return out
}
