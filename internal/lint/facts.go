package lint

import (
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
)

// factStore is the driver's in-memory fact table. Upstream drivers
// gob-serialize facts so separate processes can exchange them; this
// driver analyzes the whole module in one process in dependency
// order, so facts just live in maps keyed by the shared type objects
// (internal/lint/load memoizes packages, so an object has one
// identity across every importer).
type factStore struct {
	object map[objectFactKey]analysis.Fact
	pkg    map[packageFactKey]analysis.Fact
}

type objectFactKey struct {
	a   *analysis.Analyzer
	obj types.Object
	t   reflect.Type
}

type packageFactKey struct {
	a   *analysis.Analyzer
	pkg *types.Package
	t   reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		object: make(map[objectFactKey]analysis.Fact),
		pkg:    make(map[packageFactKey]analysis.Fact),
	}
}

// copyFact copies the stored fact's pointee into the caller's pointer
// — the Import contract is copy-out, so a caller mutating its copy
// cannot corrupt the store.
func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

func (s *factStore) importObject(a *analysis.Analyzer, obj types.Object, fact analysis.Fact) bool {
	stored, ok := s.object[objectFactKey{a, obj, reflect.TypeOf(fact)}]
	if ok {
		copyFact(fact, stored)
	}
	return ok
}

func (s *factStore) exportObject(a *analysis.Analyzer, obj types.Object, fact analysis.Fact) {
	s.object[objectFactKey{a, obj, reflect.TypeOf(fact)}] = fact
}

func (s *factStore) importPackage(a *analysis.Analyzer, pkg *types.Package, fact analysis.Fact) bool {
	stored, ok := s.pkg[packageFactKey{a, pkg, reflect.TypeOf(fact)}]
	if ok {
		copyFact(fact, stored)
	}
	return ok
}

func (s *factStore) exportPackage(a *analysis.Analyzer, pkg *types.Package, fact analysis.Fact) {
	s.pkg[packageFactKey{a, pkg, reflect.TypeOf(fact)}] = fact
}

func (s *factStore) allObject(a *analysis.Analyzer) []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for k, f := range s.object {
		if k.a == a {
			out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
		}
	}
	return out
}

func (s *factStore) allPackage(a *analysis.Analyzer) []analysis.PackageFact {
	var out []analysis.PackageFact
	for k, f := range s.pkg {
		if k.a == a {
			out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
		}
	}
	return out
}
