package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const poolDisciplineDoc = `forbid pooled values escaping their owning function

A value from sync.Pool.Get is only safe while its getter controls it:
once stored in a struct field, a package-level variable or a channel,
or returned to a caller, nothing ties its lifetime to the matching
Put, and a recycled object gets mutated under a live reader — the
exact corruption class the refcounted broadcast frames (DESIGN.md
D13) are designed around. The analyzer tracks values originating in a
(*sync.Pool).Get call (through type assertions) and reports the
escaping use. Ownership-transfer patterns that are safe by protocol —
a refcount whose last release performs the Put — are annotated in
place:

	//semalint:allow pooldiscipline: <reason>`

// PoolDiscipline is the pooldiscipline analyzer.
var PoolDiscipline = &analysis.Analyzer{
	Name:     "pooldiscipline",
	Doc:      poolDisciplineDoc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPoolDiscipline,
}

func runPoolDiscipline(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			checkPoolDiscipline(pass, body)
		}
	})
	return nil, nil
}

func checkPoolDiscipline(pass *analysis.Pass, body *ast.BlockStmt) {
	// pooled collects the local variables bound to a Get result in
	// this function scope.
	pooled := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own scope
		}
		if assign, ok := n.(*ast.AssignStmt); ok && len(assign.Lhs) == len(assign.Rhs) {
			for i, rhs := range assign.Rhs {
				if !isPoolGet(pass, rhs) {
					continue
				}
				if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						pooled[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						pooled[obj] = true
					}
				} else {
					reportPoolEscape(pass, assign.Lhs[i], rhs)
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				if i >= len(stmt.Lhs) {
					break
				}
				if isPooledValue(pass, rhs, pooled) && !isPoolGet(pass, rhs) {
					reportPoolEscape(pass, stmt.Lhs[i], rhs)
				}
			}
		case *ast.SendStmt:
			if isPooledValue(pass, stmt.Value, pooled) || isPoolGet(pass, stmt.Value) {
				pass.ReportRangef(stmt, "pooled value sent on a channel: the receiver's lifetime is not tied to the matching Put")
			}
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				if isPooledValue(pass, res, pooled) || isPoolGet(pass, res) {
					pass.ReportRangef(res, "pooled value returned from its getter: the caller's use is not tied to the matching Put")
				}
			}
		}
		return true
	})
}

// reportPoolEscape classifies the escaping destination.
func reportPoolEscape(pass *analysis.Pass, lhs, rhs ast.Expr) {
	switch dst := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.Uses[dst.Sel].(*types.Var); ok && v.IsField() {
			pass.ReportRangef(rhs, "pooled value stored in struct field %s: it outlives the function that must Put it", v.Name())
		}
	case *ast.Ident:
		if v, ok := objectOf(pass, dst).(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			pass.ReportRangef(rhs, "pooled value stored in package-level variable %s: it outlives the function that must Put it", v.Name())
		}
	}
}

// isPoolGet reports whether e is (a type assertion over) a
// (*sync.Pool).Get call.
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "(*sync.Pool).Get"
}

// isPooledValue reports whether e reads a variable bound to a pooled
// Get result (through a type assertion).
func isPooledValue(pass *analysis.Pass, e ast.Expr, pooled map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := objectOf(pass, id)
	return obj != nil && pooled[obj]
}

func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
