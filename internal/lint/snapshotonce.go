package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const snapshotOnceDoc = `flag functions that pin more than one ontology snapshot

The lock-free ontology (DESIGN.md D8) publishes immutable snapshots;
one unit of analysis must pin exactly one and use it throughout, or a
concurrent ontology edit lands between two pins and the verdict is
computed against two different knowledge generations — the torn-
generation bug the snapshot design exists to prevent. The analyzer
reports (a) a second Snapshot() pin on the same receiver within one
function, and (b) a fresh Snapshot() pin inside a function that
already holds a pinned *Snapshot (as a parameter or a field of its
receiver). Deliberate re-pins — benchmark loops measuring pin cost —
are annotated in place:

	//semalint:allow snapshotonce: <reason>`

// SnapshotOnce is the snapshotonce analyzer.
var SnapshotOnce = &analysis.Analyzer{
	Name:     "snapshotonce",
	Doc:      snapshotOnceDoc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSnapshotOnce,
}

var (
	snapshotOncePkg    = "semagent/internal/ontology"
	snapshotOnceMethod = "Snapshot"
)

func init() {
	SnapshotOnce.Flags.StringVar(&snapshotOncePkg, "ontologypkg", snapshotOncePkg,
		"import path of the package whose Snapshot method pins a generation")
	SnapshotOnce.Flags.StringVar(&snapshotOnceMethod, "method", snapshotOnceMethod,
		"name of the pinning method")
}

func runSnapshotOnce(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == snapshotOncePkg {
		// The ontology package's own one-line convenience wrappers
		// (Distance, Lookup, ...) each pin once by design.
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var ftype *ast.FuncType
		var recv *ast.FieldList
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body, ftype, recv = fn.Body, fn.Type, fn.Recv
		case *ast.FuncLit:
			body, ftype = fn.Body, fn.Type
		}
		if body == nil {
			return
		}
		checkSnapshotOnce(pass, ftype, recv, body)
	})
	return nil, nil
}

func checkSnapshotOnce(pass *analysis.Pass, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
	pinned := heldSnapshotPin(pass, ftype, recv)
	// first maps each receiver identity to the position of its first
	// pin in this function.
	first := make(map[types.Object]token.Pos)
	var anon []token.Pos // pins whose receiver has no stable object
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != snapshotOnceMethod || !isOntologyMethod(fn) {
			return true
		}
		if pinned != "" {
			pass.ReportRangef(call, "fresh %s() pin in a function that already holds a pinned snapshot (%s): one unit of analysis must see one ontology generation",
				snapshotOnceMethod, pinned)
			return true
		}
		if obj := receiverObject(pass, sel.X); obj != nil {
			if firstPos, dup := first[obj]; dup {
				pass.ReportRangef(call, "second %s() pin on %q in one function (first pin at %s): reuse the first snapshot or the two pins may span an ontology edit",
					snapshotOnceMethod, obj.Name(), pass.Fset.Position(firstPos))
			} else {
				first[obj] = call.Pos()
			}
		} else {
			if len(anon) > 0 {
				pass.ReportRangef(call, "second %s() pin in one function (first pin at %s): reuse the first snapshot or the two pins may span an ontology edit",
					snapshotOnceMethod, pass.Fset.Position(anon[0]))
			}
			anon = append(anon, call.Pos())
		}
		return true
	})
}

// isOntologyMethod reports whether fn is a method declared in the
// configured ontology package.
func isOntologyMethod(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == snapshotOncePkg && fn.Type().(*types.Signature).Recv() != nil
}

// heldSnapshotPin reports how the function already holds a pinned
// snapshot ("parameter x", "receiver field snap"), or "" when it
// holds none.
func heldSnapshotPin(pass *analysis.Pass, ftype *ast.FuncType, recv *ast.FieldList) string {
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			if t, ok := pass.TypesInfo.Types[field.Type]; ok && isSnapshotPtr(t.Type) {
				name := "_"
				if len(field.Names) > 0 {
					name = field.Names[0].Name
				}
				return "parameter " + name
			}
		}
	}
	if recv != nil && len(recv.List) == 1 {
		if t, ok := pass.TypesInfo.Types[recv.List[0].Type]; ok {
			rt := t.Type
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if st, ok := rt.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if isSnapshotPtr(st.Field(i).Type()) {
						return "receiver field " + st.Field(i).Name()
					}
				}
			}
		}
	}
	return ""
}

// isSnapshotPtr reports whether t is *ontology.Snapshot (the pinned
// generation handle).
func isSnapshotPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == snapshotOncePkg && obj.Name() == "Snapshot"
}

// receiverObject resolves the receiver expression of a method call to
// a stable object: a variable for o.Snapshot(), the field for
// c.onto.Snapshot(). Returns nil for receivers with no stable
// identity (function results, map index).
func receiverObject(pass *analysis.Pass, x ast.Expr) types.Object {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[e.Sel]; ok {
			return obj
		}
	case *ast.StarExpr:
		return receiverObject(pass, e.X)
	}
	return nil
}
