package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// wallClockFuncs are the package time functions that read or schedule
// against the wall clock. Referencing one (not just calling it —
// storing time.Now in a struct field smuggles the wall clock just as
// effectively) inside a clock-injected package defeats the virtual
// clock that makes the simulator and the chaos engine deterministic
// (DESIGN.md D11).
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"Since": true, "Until": true,
}

const injectedClockDoc = `forbid direct wall-clock use in clock-injected packages

Packages that take a clock.Clock (directly or via their Options
struct) must route every time read and every timer through it;
a single raw time.Now makes latency accounting nondeterministic
under the simulator's virtual clock and undermines golden-transcript
reproducibility. The check applies to packages whose import path
matches the -injectedclock.packages prefixes and to any package that
imports the injected clock package itself. Deliberate wall-clock use
(real socket deadlines, wall timestamps on exported snapshots) is
annotated in place:

	//semalint:allow injectedclock: <reason>`

// InjectedClock is the injectedclock analyzer.
var InjectedClock = &analysis.Analyzer{
	Name:     "injectedclock",
	Doc:      injectedClockDoc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runInjectedClock,
}

var (
	injectedClockPackages = "semagent/internal/chat,semagent/internal/core,semagent/internal/journal," +
		"semagent/internal/pipeline,semagent/internal/simulate,semagent/internal/memnet," +
		"semagent/internal/metrics,semagent/internal/loadgen"
	injectedClockPkgPath = "semagent/internal/clock"
)

func init() {
	InjectedClock.Flags.StringVar(&injectedClockPackages, "packages", injectedClockPackages,
		"comma-separated import path prefixes of clock-injected packages")
	InjectedClock.Flags.StringVar(&injectedClockPkgPath, "clockpkg", injectedClockPkgPath,
		"import path of the injected clock package")
}

func runInjectedClock(pass *analysis.Pass) (interface{}, error) {
	if !clockInjected(pass.Pkg) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
			return
		}
		pass.ReportRangef(sel, "direct time.%s in clock-injected package %s: route it through the injected clock.Clock",
			fn.Name(), pass.Pkg.Path())
	})
	return nil, nil
}

// clockInjected reports whether the package is under the configured
// clock-discipline: listed by prefix, or importing the clock package
// (which is itself exempt — it is the System fallback implementation).
func clockInjected(pkg *types.Package) bool {
	path := pkg.Path()
	if path == injectedClockPkgPath || strings.HasPrefix(path, injectedClockPkgPath+"/") {
		return false
	}
	for _, prefix := range strings.Split(injectedClockPackages, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix == "" {
			continue
		}
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == injectedClockPkgPath {
			return true
		}
	}
	return false
}
