// Package lint is semalint: a suite of domain-specific analyzers that
// turn this repository's hand-enforced concurrency and determinism
// conventions into machine-checked invariants (DESIGN.md D14). The
// analyzers are ordinary golang.org/x/tools/go/analysis passes; the
// driver in this file runs them over packages typechecked by
// internal/lint/load and applies the //semalint:allow escape hatch.
//
// Directive grammar, checked by the driver:
//
//	//semalint:allow <analyzer>[,<analyzer>...]: <reason>
//
// A directive suppresses matching diagnostics on its own line and on
// the line directly below it (so it works both as a trailing comment
// and as a comment above the offending statement). A directive placed
// on or above the package clause applies to the whole file. The
// reason is mandatory: an annotation that cannot say why it exists is
// a convention violation, not an exemption. Directives that suppress
// nothing are themselves reported, so stale annotations cannot
// accumulate.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"semagent/internal/lint/load"
)

// Diagnostic is one finding, resolved to a printable position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Options configures a driver run.
type Options struct {
	// ReportUnusedAllows adds a diagnostic for every //semalint:allow
	// directive that names a run analyzer but suppressed nothing.
	// cmd/semalint enables it; the fixture harness does not, because
	// fixtures exercise one analyzer at a time.
	ReportUnusedAllows bool
}

// Run applies the analyzers to every package, honoring Requires
// dependencies, and returns the surviving diagnostics sorted by
// position. Facts are kept in memory and flow between the analyzed
// packages (which Run visits dependencies-first); facts about
// packages outside the analyzed set — the standard library — are
// simply absent, which only costs fact-using passes precision, not
// soundness.
func Run(pkgs []*load.Package, fset *token.FileSet, analyzers []*analysis.Analyzer, opts Options) ([]Diagnostic, error) {
	order, err := expand(analyzers)
	if err != nil {
		return nil, err
	}
	roots := make(map[*analysis.Analyzer]bool, len(analyzers))
	rootNames := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		roots[a] = true
		rootNames[a.Name] = true
	}
	facts := newFactStore()

	var diags []Diagnostic
	for _, pkg := range topoSort(pkgs) {
		sup, supDiags := collectDirectives(pkg, fset)
		diags = append(diags, supDiags...)
		results := make(map[*analysis.Analyzer]interface{}, len(order))
		for _, a := range order {
			report := func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if sup.allows(a.Name, pos) {
					return
				}
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
			if !roots[a] {
				report = func(analysis.Diagnostic) {} // required-only pass (e.g. inspect)
			}
			res, err := a.Run(newPass(a, pkg, fset, results, report, facts))
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
			results[a] = res
		}
		if opts.ReportUnusedAllows {
			diags = append(diags, sup.unused(rootNames)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// expand returns the analyzers plus their transitive requirements in
// a valid execution order.
func expand(analyzers []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var order []*analysis.Analyzer
	seen := make(map[*analysis.Analyzer]bool)
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		order = append(order, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return order, nil
}

// topoSort orders the packages dependencies-first (stable within a
// rank by the incoming order, which is sorted by path) so exported
// facts are available when an importer is analyzed.
func topoSort(pkgs []*load.Package) []*load.Package {
	byPath := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	out := make([]*load.Package, 0, len(pkgs))
	seen := make(map[string]bool, len(pkgs))
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if seen[p.PkgPath] {
			return
		}
		seen[p.PkgPath] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

func newPass(a *analysis.Analyzer, pkg *load.Package, fset *token.FileSet,
	results map[*analysis.Analyzer]interface{}, report func(analysis.Diagnostic), facts *factStore) *analysis.Pass {
	resultOf := make(map[*analysis.Analyzer]interface{}, len(a.Requires))
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	return &analysis.Pass{
		Analyzer:     a,
		Fset:         fset,
		Files:        pkg.Files,
		OtherFiles:   pkg.OtherFiles,
		IgnoredFiles: pkg.IgnoredFiles,
		Pkg:          pkg.Types,
		TypesInfo:    pkg.TypesInfo,
		TypesSizes:   types.SizesFor("gc", runtime.GOARCH),
		Report:       report,
		ResultOf:     resultOf,
		ReadFile:     os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return facts.importObject(a, obj, fact)
		},
		ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
			return facts.importPackage(a, p, fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			facts.exportObject(a, obj, fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			facts.exportPackage(a, pkg.Types, fact)
		},
		AllPackageFacts: func() []analysis.PackageFact { return facts.allPackage(a) },
		AllObjectFacts:  func() []analysis.ObjectFact { return facts.allObject(a) },
	}
}

// directive is one parsed //semalint:allow comment.
type directive struct {
	pos      token.Position
	names    map[string]bool
	fileWide bool
	used     bool
}

// suppressions indexes a package's directives by file and line.
type suppressions struct {
	byLine   map[string]map[int][]*directive
	fileWide map[string][]*directive
}

const directivePrefix = "//semalint:allow"

// collectDirectives parses every //semalint:allow comment in the
// package. Malformed directives (no analyzer name, or no reason after
// the colon) are reported as diagnostics of the pseudo-analyzer
// "semalint" — an escape hatch without a documented reason does not
// count as documentation.
func collectDirectives(pkg *load.Package, fset *token.FileSet) (*suppressions, []Diagnostic) {
	sup := &suppressions{
		byLine:   make(map[string]map[int][]*directive),
		fileWide: make(map[string][]*directive),
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				names, reason, ok := parseDirective(rest)
				if !ok || reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "semalint",
						Message:  "malformed //semalint:allow directive: want //semalint:allow <analyzer>[,<analyzer>]: <reason>",
					})
					continue
				}
				d := &directive{pos: pos, names: names, fileWide: pos.Line <= pkgLine}
				if d.fileWide {
					sup.fileWide[pos.Filename] = append(sup.fileWide[pos.Filename], d)
				} else {
					lines := sup.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*directive)
						sup.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], d)
				}
			}
		}
	}
	return sup, diags
}

// parseDirective splits " name1,name2: reason".
func parseDirective(rest string) (names map[string]bool, reason string, ok bool) {
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //semalint:allowed — not this directive
	}
	nameList, reason, found := strings.Cut(rest, ":")
	if !found {
		return nil, "", false
	}
	names = make(map[string]bool)
	for _, n := range strings.Split(nameList, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, "", false
		}
		names[n] = true
	}
	return names, strings.TrimSpace(reason), true
}

// allows reports whether a diagnostic of the named analyzer at pos is
// suppressed, marking the matching directive used.
func (s *suppressions) allows(name string, pos token.Position) bool {
	hit := false
	for _, d := range s.fileWide[pos.Filename] {
		if d.names[name] {
			d.used = true
			hit = true
		}
	}
	if lines := s.byLine[pos.Filename]; lines != nil {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			for _, d := range lines[line] {
				if d.names[name] {
					d.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// unused reports directives that name a run analyzer yet suppressed
// nothing.
func (s *suppressions) unused(run map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(d *directive) {
		if d.used {
			return
		}
		relevant := false
		for n := range d.names {
			if run[n] {
				relevant = true
				break
			}
		}
		if relevant {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "semalint",
				Message:  "unused //semalint:allow directive: nothing here triggers the named analyzer",
			})
		}
	}
	for _, ds := range s.fileWide {
		for _, d := range ds {
			report(d)
		}
	}
	for _, lines := range s.byLine {
		for _, ds := range lines {
			for _, d := range ds {
				report(d)
			}
		}
	}
	return diags
}
