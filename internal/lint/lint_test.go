package lint_test

import (
	"testing"

	"semagent/internal/lint"
	"semagent/internal/lint/linttest"
)

// The fixture packages use short GOPATH-style import paths, so each
// test points the analyzer's package flags at them. The harness
// restores the real defaults at cleanup.

func TestInjectedClockFixtures(t *testing.T) {
	linttest.SetFlag(t, lint.InjectedClock, "packages", "clockuser")
	linttest.SetFlag(t, lint.InjectedClock, "clockpkg", "clockpkg")
	linttest.Run(t, "testdata/src", lint.InjectedClock, "clockuser", "clockimporter", "okclock")
}

func TestSnapshotOnceFixtures(t *testing.T) {
	linttest.SetFlag(t, lint.SnapshotOnce, "ontologypkg", "ontology")
	linttest.Run(t, "testdata/src", lint.SnapshotOnce, "snapuser")
}

func TestShedHandledFixtures(t *testing.T) {
	linttest.SetFlag(t, lint.ShedHandled, "pipelinepkg", "pipeline")
	linttest.Run(t, "testdata/src", lint.ShedHandled, "sheduser")
}

func TestPoolDisciplineFixtures(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.PoolDiscipline, "pooluse")
}

func TestMetricNamesFixtures(t *testing.T) {
	linttest.SetFlag(t, lint.MetricNames, "metricspkg", "metrics")
	linttest.Run(t, "testdata/src", lint.MetricNames, "metricuser")
}

// TestSuite pins the suite roster: the CI gate runs exactly these
// analyzers, in this order.
func TestSuite(t *testing.T) {
	want := []string{"injectedclock", "snapshotonce", "shedhandled", "pooldiscipline", "metricnames"}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}
