package lint

import "golang.org/x/tools/go/analysis"

// Suite returns the five domain analyzers in reporting order. The
// curated upstream passes cmd/semalint adds on top live there, not
// here: the suite is the part the fixture tests pin.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		InjectedClock,
		SnapshotOnce,
		ShedHandled,
		PoolDiscipline,
		MetricNames,
	}
}
