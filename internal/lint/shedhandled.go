package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const shedHandledDoc = `forbid discarding the error of pipeline admission calls

pipeline.Submit returns ErrShed (admission control refused the task),
ErrFull (bounded queue, non-blocking mode) or ErrClosed — all of them
mean a supervision task silently did not run. A caller that discards
the error turns deliberate, counted load shedding into a silent
coverage hole. The analyzer reports calls whose error result is
dropped: used as an expression statement, assigned to the blank
identifier, or launched via go/defer. Call sites where the shed is
accounted elsewhere (the pipeline's OnShed hook) are annotated in
place:

	//semalint:allow shedhandled: <reason>`

// ShedHandled is the shedhandled analyzer.
var ShedHandled = &analysis.Analyzer{
	Name:     "shedhandled",
	Doc:      shedHandledDoc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runShedHandled,
}

var (
	shedHandledPkg   = "semagent/internal/pipeline"
	shedHandledFuncs = "Submit"
)

func init() {
	ShedHandled.Flags.StringVar(&shedHandledPkg, "pipelinepkg", shedHandledPkg,
		"import path of the admission-controlled pipeline package")
	ShedHandled.Flags.StringVar(&shedHandledFuncs, "funcs", shedHandledFuncs,
		"comma-separated names of error-returning admission methods")
}

func runShedHandled(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == shedHandledPkg {
		return nil, nil // the pipeline's own internals move tasks freely
	}
	funcs := make(map[string]bool)
	for _, f := range strings.Split(shedHandledFuncs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			funcs[f] = true
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		name, ok := admissionCallee(pass, call, funcs)
		if !ok {
			return true
		}
		parent := stack[len(stack)-2]
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.ReportRangef(call, "error of %s discarded: a shed (ErrShed/ErrFull) means this task silently did not run — handle or count it", name)
		case *ast.GoStmt, *ast.DeferStmt:
			pass.ReportRangef(call, "error of %s unobservable from go/defer: a shed (ErrShed/ErrFull) means this task silently did not run", name)
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if ast.Unparen(rhs) != call || i >= len(p.Lhs) {
					continue
				}
				if id, ok := p.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					pass.ReportRangef(call, "error of %s assigned to _: a shed (ErrShed/ErrFull) means this task silently did not run — handle or count it", name)
				}
			}
		}
		return true
	})
	return nil, nil
}

// admissionCallee reports the printable name of an admission method
// call ("pipeline.Submit"), or ok=false for everything else.
func admissionCallee(pass *analysis.Pass, call *ast.CallExpr, funcs map[string]bool) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != shedHandledPkg || !funcs[fn.Name()] {
		return "", false
	}
	// Only error-returning calls matter.
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	hasErr := false
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			hasErr = true
		}
	}
	if !hasErr {
		return "", false
	}
	short := shedHandledPkg
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	return short + "." + fn.Name(), true
}
