package cluster

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"semagent/internal/clock"
)

var testEpoch = time.Date(2026, time.March, 2, 9, 0, 0, 0, time.UTC)

func TestAcquireAndRenew(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)

	o, err := m.Acquire("algebra", "n0")
	if err != nil {
		t.Fatal(err)
	}
	if o.Node != "n0" || o.Epoch != 1 {
		t.Fatalf("first acquire = %+v, want n0@1", o)
	}
	// Same-node re-acquire renews without bumping the epoch.
	o2, err := m.Acquire("algebra", "n0")
	if err != nil {
		t.Fatal(err)
	}
	if o2.Epoch != 1 {
		t.Fatalf("renewal bumped epoch to %d", o2.Epoch)
	}
	if !o2.Expires.After(o.Expires.Add(-time.Nanosecond)) {
		t.Fatalf("renewal did not extend the lease")
	}
	// Another node is refused while the lease is live.
	if _, err := m.Acquire("algebra", "n1"); !errors.Is(err, ErrOwned) {
		t.Fatalf("live-lease steal returned %v, want ErrOwned", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)
	if _, err := m.Acquire("algebra", "n0"); err != nil {
		t.Fatal(err)
	}
	vc.Advance(9 * time.Second)
	if _, err := m.Acquire("algebra", "n1"); !errors.Is(err, ErrOwned) {
		t.Fatalf("steal 1s before expiry returned %v, want ErrOwned", err)
	}
	vc.Advance(2 * time.Second)
	o, err := m.Acquire("algebra", "n1")
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	if o.Node != "n1" || o.Epoch != 2 {
		t.Fatalf("post-expiry acquire = %+v, want n1@2", o)
	}
	// Lookup still returns expired assignments: expiry gates
	// transitions, not reads.
	vc.Advance(time.Minute)
	if got, ok := m.Lookup("algebra"); !ok || got.Node != "n1" {
		t.Fatalf("Lookup after expiry = %+v %v, want n1, true", got, ok)
	}
}

// TestEpochFencing: a deposed owner presenting its old epoch must be
// refused on every write path — renew and handoff alike.
func TestEpochFencing(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)
	if _, err := m.Acquire("algebra", "n0"); err != nil {
		t.Fatal(err)
	}
	// n0 dies; its lease expires; n1 is promoted with a bumped epoch.
	vc.Advance(11 * time.Second)
	o, err := m.Promote("algebra", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if o.Node != "n1" || o.Epoch != 2 {
		t.Fatalf("promotion = %+v, want n1@2", o)
	}
	// The deposed owner wakes up and tries its late writes.
	if _, err := m.Renew("algebra", "n0", 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed renew returned %v, want ErrFenced", err)
	}
	if _, err := m.Handoff("algebra", "n0", "n2", 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed handoff returned %v, want ErrFenced", err)
	}
	// The real owner with the real epoch is fine.
	if _, err := m.Renew("algebra", "n1", 2); err != nil {
		t.Fatalf("live renew: %v", err)
	}
}

func TestPromoteRefusesLiveLease(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)
	if _, err := m.Acquire("algebra", "n0"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Promote("algebra", "n1"); !errors.Is(err, ErrLeaseLive) {
		t.Fatalf("promotion against a live lease returned %v, want ErrLeaseLive", err)
	}
}

func TestHandoffBumpsEpochImmediately(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)
	o, err := m.Acquire("algebra", "n0")
	if err != nil {
		t.Fatal(err)
	}
	// Graceful handoff needs no lease wait.
	got, err := m.Handoff("algebra", "n0", "n1", o.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "n1" || got.Epoch != o.Epoch+1 {
		t.Fatalf("handoff = %+v, want n1@%d", got, o.Epoch+1)
	}
}

// TestConcurrentHandoffVsJoin races a graceful handoff against client
// joins resolving the room (the gateway's Lookup + version probes).
// Must be -race clean, and every observed state must be coherent: the
// epoch never decreases and the (node, epoch) pairs only move forward.
func TestConcurrentHandoffVsJoin(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)
	o, err := m.Acquire("algebra", "n0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: simulated joins resolving the room continuously.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur, ok := m.Lookup("algebra")
				if !ok {
					t.Error("room vanished mid-handoff")
					return
				}
				if cur.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", cur.Epoch, lastEpoch)
					return
				}
				lastEpoch = cur.Epoch
				_ = m.Version()
			}
		}()
	}
	// Writer: ping-pong the room between n0 and n1 via handoffs.
	epoch := o.Epoch
	owner, next := NodeID("n0"), NodeID("n1")
	for i := 0; i < 200; i++ {
		got, err := m.Handoff("algebra", owner, next, epoch)
		if err != nil {
			t.Fatalf("handoff %d: %v", i, err)
		}
		epoch = got.Epoch
		owner, next = next, owner
	}
	close(stop)
	wg.Wait()
	if got, _ := m.Lookup("algebra"); got.Epoch != o.Epoch+200 {
		t.Fatalf("final epoch %d, want %d", got.Epoch, o.Epoch+200)
	}
}

func TestRoomsAndSnapshot(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)
	for _, room := range []string{"c", "a", "b"} {
		if _, err := m.Acquire(room, "n0"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Acquire("z", "n1"); err != nil {
		t.Fatal(err)
	}
	got := m.Rooms("n0")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Rooms(n0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rooms(n0) = %v, want %v", got, want)
		}
	}
	snap := m.Snapshot()
	if len(snap) != 4 || snap[0].Room != "a" || snap[3].Room != "z" {
		t.Fatalf("Snapshot = %+v", snap)
	}
	if v := m.Version(); v != 4 {
		t.Fatalf("Version = %d after 4 mutations", v)
	}
}

// TestUnknownRoomDistinctFromFenced: transitions against a room the
// map has never seen must say so — ErrUnknownRoom, with no invented
// "current @0" owner in the text — while genuine stale-epoch refusals
// keep ErrFenced and name the actual current owner.
func TestUnknownRoomDistinctFromFenced(t *testing.T) {
	vc := clock.NewVirtual(testEpoch)
	m := NewOwnerMap(10*time.Second, vc)

	if _, err := m.Renew("ghost", "n0", 1); !errors.Is(err, ErrUnknownRoom) {
		t.Fatalf("renew unknown room returned %v, want ErrUnknownRoom", err)
	} else if !strings.Contains(err.Error(), "unknown room") || strings.Contains(err.Error(), "current @0") {
		t.Fatalf("renew unknown room text misleads: %q", err)
	}
	if _, err := m.Handoff("ghost", "n0", "n1", 1); !errors.Is(err, ErrUnknownRoom) {
		t.Fatalf("handoff unknown room returned %v, want ErrUnknownRoom", err)
	}
	if _, err := m.Promote("ghost", "n1"); !errors.Is(err, ErrUnknownRoom) {
		t.Fatalf("promote unknown room returned %v, want ErrUnknownRoom", err)
	}

	// The known-room stale-epoch path still reports ErrFenced with the
	// real current owner.
	if _, err := m.Acquire("room-a", "n0"); err != nil {
		t.Fatal(err)
	}
	_, err := m.Renew("room-a", "n0", 99)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale renew returned %v, want ErrFenced", err)
	}
	if errors.Is(err, ErrUnknownRoom) {
		t.Fatalf("stale renew must not also claim the room is unknown: %v", err)
	}
	if !strings.Contains(err.Error(), "current n0@1") {
		t.Fatalf("stale renew text should name the current owner: %q", err)
	}
}
