// Package cluster is the multi-node classroom fabric (DESIGN.md D15):
// a versioned room-ownership map with leases and fencing epochs, a
// warm-standby failover fabric that promotes a dead owner's replica
// from its shipped WAL segments, and a gateway that owns the client
// edge and relays each room to its current owner over the binary wire
// protocol.
//
// Rooms are the shard key (they already shard the supervision
// pipeline, DESIGN.md D7), so ownership is per room: exactly one node
// holds a room's lease at a time, and every transfer — graceful
// handoff or crash promotion — increments the room's fencing epoch.
// A deposed owner that wakes up and tries to keep writing presents a
// stale epoch and is refused (journal.Sink.Apply returns ErrFenced),
// which is what makes "at most one live owner per room" a safety
// property rather than a timing assumption.
//
// All liveness decisions are probe-based against an injected clock:
// nothing in this package spawns a renewal goroutine, so the scenario
// simulator drives failover deterministically by advancing its virtual
// clock past the lease and calling Fabric.Failover.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"semagent/internal/clock"
)

// NodeID names a cluster node incarnation.
type NodeID string

// Ownership is one room's current assignment.
type Ownership struct {
	Room    string    `json:"room"`
	Node    NodeID    `json:"node"`
	Epoch   uint64    `json:"epoch"`
	Expires time.Time `json:"expires"`
}

// Errors returned by ownership transitions.
var (
	// ErrOwned: the room is held by another node whose lease is live.
	ErrOwned = errors.New("cluster: room owned by another live node")
	// ErrFenced: the caller's epoch is stale — it was deposed and must
	// not write.
	ErrFenced = errors.New("cluster: stale epoch (owner deposed)")
	// ErrLeaseLive: promotion refused because the current owner's
	// lease has not expired.
	ErrLeaseLive = errors.New("cluster: current owner lease still live")
	// ErrUnknownRoom: the room has never been acquired. Distinct from
	// ErrFenced — a renewal against an unknown room is a caller bug or
	// a wiped map, not a deposed owner, and the error text must not
	// invent a "current @0" owner from the zero value.
	ErrUnknownRoom = errors.New("cluster: unknown room")
)

// OwnerMap is the versioned room-ownership table. It is safe for
// concurrent use; every successful mutation bumps Version so watchers
// (the gateway's relay links) can cheaply detect "the world changed
// since I routed this room".
type OwnerMap struct {
	lease time.Duration
	clk   clock.Clock

	mu      sync.Mutex
	rooms   map[string]Ownership
	version uint64
}

// NewOwnerMap returns an empty map handing out leases of the given
// duration on the given clock (nil = system clock).
func NewOwnerMap(lease time.Duration, clk clock.Clock) *OwnerMap {
	if lease <= 0 {
		lease = 10 * time.Second
	}
	return &OwnerMap{lease: lease, clk: clock.Or(clk), rooms: make(map[string]Ownership)}
}

// Lease returns the configured lease duration.
func (m *OwnerMap) Lease() time.Duration { return m.lease }

// Version returns the map's mutation counter.
func (m *OwnerMap) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Lookup returns the room's current assignment. ok is false when the
// room has never been acquired. An expired assignment is still
// returned — expiry gates *transitions* (Acquire/Promote), not reads,
// so a router can keep forwarding to a slow-but-alive owner until
// someone actually takes the room over.
func (m *OwnerMap) Lookup(room string) (Ownership, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.rooms[room]
	return o, ok
}

// Acquire claims an unowned or lease-expired room for node, or renews
// node's own live claim. Claiming a room whose previous owner differs
// (expired lease) increments the epoch exactly like a promotion; a
// same-node renewal keeps it. Returns ErrOwned while another node's
// lease is live.
func (m *OwnerMap) Acquire(room string, node NodeID) (Ownership, error) {
	return m.AcquireAt(m.clk.Now(), room, node)
}

// AcquireAt is Acquire evaluated at an explicit instant. The skew
// harness uses it to model a node whose local clock runs fast or slow:
// the node decides "that lease looks expired" on its own skewed time,
// and the epoch fence — not the clock — is what must keep the old
// owner from writing afterwards.
func (m *OwnerMap) AcquireAt(now time.Time, room string, node NodeID) (Ownership, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.rooms[room]
	switch {
	case !ok:
		o = Ownership{Room: room, Node: node, Epoch: 1}
	case o.Node == node:
		// renewal, epoch unchanged
	case now.Before(o.Expires):
		return Ownership{}, fmt.Errorf("%w: %s held by %s until %s", ErrOwned, room, o.Node, o.Expires.Format(time.RFC3339))
	default:
		o.Node = node
		o.Epoch++
	}
	o.Expires = now.Add(m.lease)
	m.rooms[room] = o
	m.version++
	return o, nil
}

// Renew extends node's lease on the room. The caller must present its
// current epoch; a deposed owner renewing with a stale epoch gets
// ErrFenced instead of silently resurrecting its claim.
func (m *OwnerMap) Renew(room string, node NodeID, epoch uint64) (Ownership, error) {
	return m.RenewAt(m.clk.Now(), room, node, epoch)
}

// RenewAt is Renew evaluated at an explicit instant (see AcquireAt).
func (m *OwnerMap) RenewAt(now time.Time, room string, node NodeID, epoch uint64) (Ownership, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.rooms[room]
	if !ok {
		return Ownership{}, fmt.Errorf("%w: renew %s as %s@%d", ErrUnknownRoom, room, node, epoch)
	}
	if o.Node != node || o.Epoch != epoch {
		return Ownership{}, fmt.Errorf("%w: renew %s as %s@%d (current %s@%d)", ErrFenced, room, node, epoch, o.Node, o.Epoch)
	}
	o.Expires = now.Add(m.lease)
	m.rooms[room] = o
	m.version++
	return o, nil
}

// Handoff transfers the room from its current owner to another node.
// This is the graceful path (drain, rebalance): the outgoing owner
// must present its live claim, and the new owner starts a fresh epoch
// immediately — no lease wait.
func (m *OwnerMap) Handoff(room string, from, to NodeID, epoch uint64) (Ownership, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.rooms[room]
	if !ok {
		return Ownership{}, fmt.Errorf("%w: handoff %s from %s@%d", ErrUnknownRoom, room, from, epoch)
	}
	if o.Node != from || o.Epoch != epoch {
		return Ownership{}, fmt.Errorf("%w: handoff %s from %s@%d (current %s@%d)", ErrFenced, room, from, epoch, o.Node, o.Epoch)
	}
	o.Node = to
	o.Epoch++
	o.Expires = m.clk.Now().Add(m.lease)
	m.rooms[room] = o
	m.version++
	return o, nil
}

// Promote seizes a room whose owner's lease has expired (the crash
// path). It refuses while the lease is live: a promotion racing a
// healthy owner must lose, otherwise two nodes would both believe
// they own the room.
func (m *OwnerMap) Promote(room string, to NodeID) (Ownership, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.rooms[room]
	if !ok {
		return Ownership{}, fmt.Errorf("%w: promote %q", ErrUnknownRoom, room)
	}
	if o.Node != to && m.clk.Now().Before(o.Expires) {
		return Ownership{}, fmt.Errorf("%w: %s held by %s until %s", ErrLeaseLive, room, o.Node, o.Expires.Format(time.RFC3339))
	}
	if o.Node != to {
		o.Node = to
		o.Epoch++
	}
	o.Expires = m.clk.Now().Add(m.lease)
	m.rooms[room] = o
	m.version++
	return o, nil
}

// Rooms returns the rooms currently assigned to node, sorted.
func (m *OwnerMap) Rooms(node NodeID) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for room, o := range m.rooms {
		if o.Node == node {
			out = append(out, room)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every assignment sorted by room, for status
// endpoints and result reporting.
func (m *OwnerMap) Snapshot() []Ownership {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Ownership, 0, len(m.rooms))
	for _, o := range m.rooms {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Room < out[j].Room })
	return out
}
