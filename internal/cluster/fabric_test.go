package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"semagent/internal/clock"
	"semagent/internal/corpus"
	"semagent/internal/journal"
	"semagent/internal/metrics"
)

// fabHarness runs a Fabric over journal-only nodes: each incarnation
// is a real journal manager (SyncEveryRecord, so every mutation fsyncs
// and ships) with no chat server on top — the tests drive mutations
// straight through the journaled stores. This is the narrowest harness
// that exercises the real shipping, promotion and recovery machinery.
type fabHarness struct {
	t   *testing.T
	vc  *clock.Virtual
	reg *metrics.Registry
	fab *Fabric

	mu     sync.Mutex
	stores map[NodeID]journal.Stores
	mgrs   map[NodeID]*journal.Manager
	dirs   map[NodeID]string
	seq    int
}

func newFabHarness(t *testing.T, nodes int) *fabHarness {
	t.Helper()
	h := &fabHarness{
		t:      t,
		vc:     clock.NewVirtual(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)),
		reg:    metrics.NewRegistry(),
		stores: make(map[NodeID]journal.Stores),
		mgrs:   make(map[NodeID]*journal.Manager),
		dirs:   make(map[NodeID]string),
	}
	start := func(id NodeID, dir string, onSync func(synced uint64)) (*NodeHandle, error) {
		stores, err := journal.LoadStores(dir)
		if err != nil {
			return nil, fmt.Errorf("node %s: load stores: %w", id, err)
		}
		mgr, err := journal.Open(dir, stores, journal.Options{
			SyncEveryRecord:    true,
			CheckpointBytes:    -1,
			CheckpointInterval: -1,
			Clock:              h.vc,
			OnSync:             onSync,
		})
		if err != nil {
			return nil, fmt.Errorf("node %s: open journal: %w", id, err)
		}
		h.mu.Lock()
		h.stores[id] = stores
		h.mgrs[id] = mgr
		h.dirs[id] = dir
		h.mu.Unlock()
		return &NodeHandle{
			Dial:  func() (net.Conn, error) { return nil, fmt.Errorf("harness nodes have no chat server") },
			Idle:  func() bool { return true },
			Kill:  func() error { mgr.Abandon(); return nil },
			Stop:  func() error { return mgr.Close() },
			Stats: mgr.Stats,
		}, nil
	}
	fab, err := NewFabric(FabricConfig{
		Nodes:   nodes,
		BaseDir: t.TempDir(),
		Clock:   h.vc,
		Metrics: h.reg,
		Start: func(id NodeID, dir string, onSync func(uint64)) (*NodeHandle, error) {
			nh, err := start(id, dir, onSync)
			return nh, err
		},
	})
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	h.fab = fab
	t.Cleanup(func() { _ = fab.Close() })
	return h
}

// mutate appends n corpus records through the lineage's live
// incarnation; with SyncEveryRecord each one fsyncs and ships.
func (h *fabHarness) mutate(base string, n int) {
	h.t.Helper()
	id, ok := h.fab.Current(base)
	if !ok {
		h.t.Fatalf("lineage %s has no live incarnation", base)
	}
	h.mu.Lock()
	s := h.stores[id]
	h.mu.Unlock()
	for i := 0; i < n; i++ {
		h.seq++
		s.Corpus.Add(corpus.Record{
			Text:    fmt.Sprintf("the dog runs %s %d", base, h.seq),
			Tokens:  []string{"the", "dog", "runs"},
			Verdict: corpus.VerdictCorrect,
			User:    "alice",
			Room:    "r1",
		})
	}
}

// health returns the lineage's live health entry.
func (h *fabHarness) health(base string) NodeHealth {
	h.t.Helper()
	for _, nh := range h.fab.Health() {
		if nh.Base == base && nh.Live {
			return nh
		}
	}
	h.t.Fatalf("no live health entry for lineage %s in %+v", base, h.fab.Health())
	return NodeHealth{}
}

// journalBytes concatenates a directory's journal segments in order —
// sink and primary use the same naming, so the same reader compares
// both sides of a ship stream byte for byte.
func journalBytes(t *testing.T, dir string) []byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "journal.") && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// sinkDir resolves the live incarnation's standby directory.
func (h *fabHarness) sinkDir(base string) string {
	h.t.Helper()
	id, ok := h.fab.Current(base)
	if !ok {
		h.t.Fatalf("lineage %s has no live incarnation", base)
	}
	h.mu.Lock()
	dir := h.dirs[id]
	h.mu.Unlock()
	return filepath.Join(filepath.Dir(dir), string(id)+"-standby")
}

func (h *fabHarness) primaryDir(base string) string {
	h.t.Helper()
	id, ok := h.fab.Current(base)
	if !ok {
		h.t.Fatalf("lineage %s has no live incarnation", base)
	}
	h.mu.Lock()
	dir := h.dirs[id]
	h.mu.Unlock()
	return dir
}

func (h *fabHarness) metricsText() string {
	var buf bytes.Buffer
	if err := h.reg.WritePrometheus(&buf); err != nil {
		h.t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// TestShipSeverHealByteIdentical: an asymmetric partition (ship stream
// cut, node still serving) accumulates lag, Health surfaces it, and
// HealShip catches the standby up to a byte-identical copy of the
// primary's journal.
func TestShipSeverHealByteIdentical(t *testing.T) {
	h := newFabHarness(t, 2)
	h.mutate("n0", 3)
	if nh := h.health("n0"); nh.Lag != 0 || nh.ShipCut {
		t.Fatalf("healthy stream reports %+v", nh)
	}

	if err := h.fab.CutShip("n0"); err != nil {
		t.Fatal(err)
	}
	h.mutate("n0", 4)
	nh := h.health("n0")
	if !nh.ShipCut {
		t.Fatalf("cut stream not flagged: %+v", nh)
	}
	if nh.Lag == 0 {
		t.Fatalf("mutations under a severed stream produced no lag: %+v", nh)
	}
	if !strings.Contains(h.metricsText(), "semagent_cluster_ship_stalled 1") {
		t.Fatalf("stalled gauge did not count the severed stream:\n%s", h.metricsText())
	}

	if err := h.fab.HealShip("n0"); err != nil {
		t.Fatalf("HealShip: %v", err)
	}
	nh = h.health("n0")
	if nh.Lag != 0 || nh.ShipCut || nh.ShipErr != "" {
		t.Fatalf("healed stream still impaired: %+v", nh)
	}
	want := journalBytes(t, h.primaryDir("n0"))
	got := journalBytes(t, h.sinkDir("n0"))
	if len(want) == 0 {
		t.Fatalf("primary journal is empty — mutations did not land")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sink segments diverge from primary after heal: %d vs %d bytes", len(got), len(want))
	}
}

// TestShipTransientFaultRetries: a sink fault must not kill the stream
// for good. The shipper surfaces the failure (Health, counter, gauge)
// and — once the fault clears — the next ship retries from the last
// durable position with no gap. This is the regression test for the
// sticky-shipErr bug (DESIGN.md D16).
func TestShipTransientFaultRetries(t *testing.T) {
	h := newFabHarness(t, 2)
	h.mutate("n0", 2)

	injected := errors.New("standby disk wedged")
	if err := h.fab.InjectSinkFault("n0", injected); err != nil {
		t.Fatal(err)
	}
	h.mutate("n0", 3)
	nh := h.health("n0")
	if nh.ShipFailures == 0 || nh.ShipErr == "" {
		t.Fatalf("faulted stream not surfaced: %+v", nh)
	}
	if !strings.Contains(nh.ShipErr, "standby disk wedged") {
		t.Fatalf("ShipErr %q does not carry the injected fault", nh.ShipErr)
	}
	if nh.Lag == 0 {
		t.Fatalf("faulted stream reports zero lag: %+v", nh)
	}
	if errs := h.fab.ShipErrors(); len(errs) != 1 {
		t.Fatalf("ShipErrors = %v, want exactly the outstanding fault", errs)
	}
	if !strings.Contains(h.metricsText(), "semagent_cluster_ship_failures_total") {
		t.Fatalf("ship failure counter missing:\n%s", h.metricsText())
	}

	// Clear the fault WITHOUT HealShip: the very next OnSync must retry
	// and catch up on its own — retries belong to the shipper, not the
	// operator.
	if err := h.fab.InjectSinkFault("n0", nil); err != nil {
		t.Fatal(err)
	}
	h.mutate("n0", 1)
	nh = h.health("n0")
	if nh.Lag != 0 || nh.ShipErr != "" || nh.ShipFailures != 0 {
		t.Fatalf("stream did not recover after fault cleared: %+v", nh)
	}
	if errs := h.fab.ShipErrors(); len(errs) != 0 {
		t.Fatalf("recovered stream still reports errors: %v", errs)
	}
	if !bytes.Equal(journalBytes(t, h.sinkDir("n0")), journalBytes(t, h.primaryDir("n0"))) {
		t.Fatalf("sink diverges from primary after retry")
	}
}

// TestFailoverCrashStagesResume: for every crash point, a failover
// interrupted there must resume — not redo, not wedge — on the next
// call, completing exactly one promotion with Resumes == 1 and every
// room moved exactly once.
func TestFailoverCrashStagesResume(t *testing.T) {
	stages := []FailoverStage{StageFenced, StageSealed, StageRestarted, StageMidPromote}
	for _, stage := range stages {
		t.Run(fmt.Sprintf("stage-%d", stage), func(t *testing.T) {
			h := newFabHarness(t, 2)
			if _, err := h.fab.Owners().Acquire("room-a", "n0"); err != nil {
				t.Fatal(err)
			}
			if _, err := h.fab.Owners().Acquire("room-b", "n0"); err != nil {
				t.Fatal(err)
			}
			h.mutate("n0", 3)
			if err := h.fab.Kill("n0"); err != nil {
				t.Fatal(err)
			}
			h.vc.Advance(h.fab.Owners().Lease() + time.Second)

			h.fab.CrashNextFailover(stage)
			promos, err := h.fab.Failover()
			if !errors.Is(err, ErrFailoverInterrupted) {
				t.Fatalf("armed stage %d: Failover returned %v, want interruption", stage, err)
			}
			if len(promos) != 0 {
				t.Fatalf("interrupted failover reported completed promotions: %+v", promos)
			}

			promos, err = h.fab.Failover()
			if err != nil {
				t.Fatalf("resumed Failover: %v", err)
			}
			if len(promos) != 1 {
				t.Fatalf("resumed Failover completed %d promotions, want 1", len(promos))
			}
			p := promos[0]
			if p.Resumes != 1 {
				t.Fatalf("promotion resumed %d times, want exactly 1", p.Resumes)
			}
			if p.Lossy || p.SinkLastLSN < p.DeadSyncedLSN {
				t.Fatalf("healthy-stream promotion lost data: %+v", p)
			}
			if p.ReplayErrors != 0 || p.ReplayLastLSN < p.DeadSyncedLSN {
				t.Fatalf("promotion replay incomplete: %+v", p)
			}
			rooms := map[string]bool{}
			for _, mv := range p.Moves {
				if rooms[mv.Room] {
					t.Fatalf("room %s moved twice in one promotion: %+v", mv.Room, p.Moves)
				}
				rooms[mv.Room] = true
				if mv.EpochAfter != mv.EpochBefore+1 {
					t.Fatalf("room %s epoch jumped %d -> %d", mv.Room, mv.EpochBefore, mv.EpochAfter)
				}
			}
			if !rooms["room-a"] || !rooms["room-b"] {
				t.Fatalf("dead owner's rooms not all moved: %+v", p.Moves)
			}
			if id, ok := h.fab.Current("n0"); !ok || id != p.Promoted {
				t.Fatalf("lineage n0 resolves to %q, want promoted %q", id, p.Promoted)
			}
			// A third call has nothing left to do.
			if promos, err := h.fab.Failover(); err != nil || len(promos) != 0 {
				t.Fatalf("idle Failover = %v, %v", promos, err)
			}
		})
	}
}

// TestLaggedStandbyLossyPromotion: records fsync'd behind a faulted
// ship stream die with the node, and the promotion audit must say so —
// Lossy, with the sink watermark visibly below the dead owner's.
func TestLaggedStandbyLossyPromotion(t *testing.T) {
	h := newFabHarness(t, 2)
	if _, err := h.fab.Owners().Acquire("room-a", "n0"); err != nil {
		t.Fatal(err)
	}
	h.mutate("n0", 2)
	if err := h.fab.InjectSinkFault("n0", errors.New("standby lagging")); err != nil {
		t.Fatal(err)
	}
	h.mutate("n0", 3) // durable on the primary, never reaches the sink
	if err := h.fab.Kill("n0"); err != nil {
		t.Fatal(err)
	}
	h.vc.Advance(h.fab.Owners().Lease() + time.Second)
	promos, err := h.fab.Failover()
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if len(promos) != 1 {
		t.Fatalf("%d promotions, want 1", len(promos))
	}
	p := promos[0]
	if !p.Lossy {
		t.Fatalf("lagged-standby promotion not flagged lossy: %+v", p)
	}
	if p.SinkLastLSN >= p.DeadSyncedLSN {
		t.Fatalf("sink watermark %d should trail dead owner's %d", p.SinkLastLSN, p.DeadSyncedLSN)
	}
	if p.ReplayErrors != 0 || p.ReplayLastLSN != p.SinkLastLSN {
		t.Fatalf("replay must cover exactly what was shipped: %+v", p)
	}
}

// TestRaceLeasesFencing: a challenger on a fast clock may seize a
// still-live lease — that is legitimate under skew — but the epoch
// fence must hold: the seizure bumps the epoch, the deposed owner's
// stale-epoch renewal is refused, and the room is handed straight back
// (epoch +2 total, owner unchanged).
func TestRaceLeasesFencing(t *testing.T) {
	h := newFabHarness(t, 2)
	if _, err := h.fab.Owners().Acquire("room-a", "n1"); err != nil {
		t.Fatal(err)
	}
	before, _ := h.fab.Owners().Lookup("room-a")

	// Fast clock: two lease spans ahead — the lease looks long expired.
	h.fab.SetSkew("n0", 2*h.fab.Owners().Lease())
	races, err := h.fab.RaceLeases("n0")
	if err != nil {
		t.Fatalf("RaceLeases: %v", err)
	}
	if len(races) != 1 {
		t.Fatalf("%d races, want 1 (n1's first room)", len(races))
	}
	r := races[0]
	if !r.Seized || !r.LeaseLive {
		t.Fatalf("skewed challenger should seize a live lease: %+v", r)
	}
	if r.EpochAfter != r.EpochBefore+1 {
		t.Fatalf("seizure epoch %d -> %d, want +1", r.EpochBefore, r.EpochAfter)
	}
	if !r.OldOwnerFenced {
		t.Fatalf("deposed owner was not fenced: %+v", r)
	}
	after, _ := h.fab.Owners().Lookup("room-a")
	if after.Node != "n1" || after.Epoch != before.Epoch+2 {
		t.Fatalf("hand-back left room at %s@%d, want n1@%d", after.Node, after.Epoch, before.Epoch+2)
	}

	// Mild skew inside the fresh lease: the race must lose, loudly.
	h.fab.SetSkew("n0", time.Second)
	races, err = h.fab.RaceLeases("n0")
	if err != nil {
		t.Fatalf("RaceLeases: %v", err)
	}
	if len(races) != 1 || races[0].Seized {
		t.Fatalf("mild skew should be refused: %+v", races)
	}
	if races[0].Refused == "" || races[0].EpochAfter != races[0].EpochBefore {
		t.Fatalf("refusal must carry the error and hold the epoch: %+v", races[0])
	}
	final, _ := h.fab.Owners().Lookup("room-a")
	if final.Node != "n1" || final.Epoch != after.Epoch {
		t.Fatalf("refused race moved the room: %+v", final)
	}
}
