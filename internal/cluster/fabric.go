package cluster

import (
	"fmt"
	"hash/fnv"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"semagent/internal/clock"
	"semagent/internal/journal"
)

// NodeHandle is the fabric's view of one running node incarnation. The
// fabric never builds servers or supervisors itself — the Start
// callback in FabricConfig does, so this package stays independent of
// the core supervision stack and the same fabric drives both the
// deterministic simulator (memnet transports, virtual clock) and
// cmd/gateway (real stores, wall clock).
type NodeHandle struct {
	// Dial opens a connection to the node's chat server.
	Dial func() (net.Conn, error)
	// Idle reports the node's instantaneous quiescence (chat.Server.Idle
	// plus anything node-local); used by the fabric's settle barrier.
	Idle func() bool
	// Kill crashes the node: close the chat server and abandon its
	// journal without flushing (the simulated power cut).
	Kill func() error
	// Stop shuts the node down gracefully (final checkpoint, seal).
	Stop func() error
	// Stats returns the node's journal counters (SyncedLSN watermark,
	// replay figures after a promotion).
	Stats func() journal.Stats
}

// FabricConfig configures a classroom fabric.
type FabricConfig struct {
	// Nodes is the initial node count (default 2).
	Nodes int
	// Lease is the room-ownership lease (default 10s on the fabric's
	// clock).
	Lease time.Duration
	// BaseDir holds every incarnation's journal directory and warm
	// standby directory.
	BaseDir string
	// Clock drives leases and liveness; the simulator injects its
	// virtual clock.
	Clock clock.Clock
	// Start launches a node incarnation over the given journal
	// directory. The incarnation MUST install onSync as its journal
	// Options.OnSync hook — that hook is the WAL shipping path; without
	// it the node has no warm standby and its rooms die with it.
	Start func(id NodeID, dir string, onSync func(synced uint64)) (*NodeHandle, error)
}

// nodeState is one live (or dead-awaiting-failover) incarnation.
type nodeState struct {
	base   string // lineage name: "n0" stays "n0" across incarnations
	gen    int    // incarnation number within the lineage
	id     NodeID // "n0", "n0+1", ...
	dir    string
	handle *NodeHandle

	// WAL shipping: tail of this node's journal into its standby sink.
	// shipMu serializes the seeding ship at provision time with the
	// journal's OnSync calls (which the appender lock already orders
	// among themselves).
	shipMu    sync.Mutex
	tail      *journal.TailReader
	sink      *journal.Sink
	shipEpoch uint64
	shipErr   error

	killedSynced uint64 // SyncedLSN captured at Kill time
}

// RoomMove records one room's ownership transfer during a failover.
type RoomMove struct {
	Room        string `json:"room"`
	EpochBefore uint64 `json:"epoch_before"`
	EpochAfter  uint64 `json:"epoch_after"`
}

// Promotion reports one dead node's standby being promoted.
type Promotion struct {
	Dead     NodeID     `json:"dead"`
	Promoted NodeID     `json:"promoted"`
	Moves    []RoomMove `json:"moves"`
	// DeadSyncedLSN is the durability watermark the dead owner reached;
	// SinkLastLSN is what its standby had durably received. The failover
	// invariant (gen.InvFailover) requires Sink ≥ Dead: nothing a
	// client saw fsync'd may be lost.
	DeadSyncedLSN uint64 `json:"dead_synced_lsn"`
	SinkLastLSN   uint64 `json:"sink_last_lsn"`
	ShippedRecs   uint64 `json:"shipped_records"`
	ReplayApplied int    `json:"replay_applied"`
	ReplayErrors  int    `json:"replay_errors"`
	ReplayLastLSN uint64 `json:"replay_last_lsn"`
}

// Fabric owns the ownership map and the node incarnations. All
// liveness transitions (Kill, Failover) are explicit calls — no
// background goroutines — so the simulator replays identical schedules
// from identical seeds; cmd/gateway drives the same calls from a
// ticker on the system clock.
type Fabric struct {
	cfg FabricConfig
	clk clock.Clock

	owners *OwnerMap

	mu    sync.Mutex
	nodes map[NodeID]*nodeState // live incarnations
	bases map[string]*nodeState // lineage -> live incarnation (nil entry while dead)
	dead  []*nodeState          // killed, awaiting Failover
	epoch uint64                // ship-epoch counter across incarnations
}

// NewFabric provisions the initial nodes (lineages "n0".."n<N-1>") and
// returns the running fabric.
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Start == nil {
		return nil, fmt.Errorf("cluster: FabricConfig.Start is required")
	}
	f := &Fabric{
		cfg:   cfg,
		clk:   clock.Or(cfg.Clock),
		nodes: make(map[NodeID]*nodeState),
		bases: make(map[string]*nodeState),
	}
	f.owners = NewOwnerMap(cfg.Lease, f.clk)
	for i := 0; i < cfg.Nodes; i++ {
		base := fmt.Sprintf("n%d", i)
		ns, err := f.provision(base, 0, "")
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		f.nodes[ns.id] = ns
		f.bases[base] = ns
	}
	return f, nil
}

// provision starts incarnation gen of a lineage. dir == "" means a
// fresh journal directory; a promotion passes the dead node's standby
// directory instead, so the new incarnation boots by replaying the
// shipped WAL. After Start, the whole durable log is shipped once into
// the incarnation's own fresh standby — so a lineage killed twice in a
// row without intervening mutations still loses nothing.
func (f *Fabric) provision(base string, gen int, dir string) (*nodeState, error) {
	id := NodeID(base)
	if gen > 0 {
		id = NodeID(fmt.Sprintf("%s+%d", base, gen))
	}
	if dir == "" {
		dir = filepath.Join(f.cfg.BaseDir, string(id))
	}
	sink, err := journal.OpenSink(filepath.Join(f.cfg.BaseDir, string(id)+"-standby"))
	if err != nil {
		return nil, fmt.Errorf("cluster: standby for %s: %w", id, err)
	}
	f.epoch++
	ns := &nodeState{
		base: base, gen: gen, id: id, dir: dir,
		tail: journal.NewTailReader(dir), sink: sink, shipEpoch: f.epoch,
	}
	handle, err := f.cfg.Start(id, dir, ns.ship)
	if err != nil {
		_ = sink.Close()
		return nil, fmt.Errorf("cluster: start %s: %w", id, err)
	}
	ns.handle = handle
	// Seed the standby with everything already durable (non-empty for a
	// promoted incarnation booting from shipped segments).
	ns.ship(handle.Stats().SyncedLSN)
	return ns, nil
}

// ship streams every durable record up to synced into the standby.
// Installed as the journal's OnSync hook, so replication lag is
// exactly durability lag.
func (ns *nodeState) ship(synced uint64) {
	ns.shipMu.Lock()
	defer ns.shipMu.Unlock()
	if ns.shipErr != nil {
		return
	}
	recs, err := ns.tail.Next(synced)
	if err != nil {
		ns.shipErr = err
		return
	}
	if len(recs) == 0 {
		return
	}
	if err := ns.sink.Apply(ns.shipEpoch, recs); err != nil {
		ns.shipErr = err
	}
}

// ShipErrors returns replication errors accumulated by any incarnation
// (live or dead), sorted by node id. Empty means every fsync'd record
// reached its standby.
func (f *Fabric) ShipErrors() []error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var states []*nodeState
	for _, ns := range f.nodes {
		states = append(states, ns)
	}
	states = append(states, f.dead...)
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	var errs []error
	for _, ns := range states {
		ns.shipMu.Lock()
		if ns.shipErr != nil {
			errs = append(errs, fmt.Errorf("node %s: %w", ns.id, ns.shipErr))
		}
		ns.shipMu.Unlock()
	}
	return errs
}

// Owners exposes the ownership map (status endpoints, tests).
func (f *Fabric) Owners() *OwnerMap { return f.owners }

// Current resolves a lineage base name to its live incarnation.
func (f *Fabric) Current(base string) (NodeID, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ns := f.bases[base]
	if ns == nil {
		return "", false
	}
	return ns.id, true
}

// LiveNodes returns the live incarnation ids, sorted.
func (f *Fabric) LiveNodes() []NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeID, 0, len(f.nodes))
	for id := range f.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owner resolves (and on first contact assigns) a room's owner. New
// rooms are placed by a stable hash of the room name over the sorted
// live lineages, so placement is deterministic for a given set of
// live nodes.
func (f *Fabric) Owner(room string) (Ownership, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if o, ok := f.owners.Lookup(room); ok {
		return o, nil
	}
	var live []string
	for base, ns := range f.bases {
		if ns != nil {
			live = append(live, base)
		}
	}
	if len(live) == 0 {
		return Ownership{}, fmt.Errorf("cluster: no live nodes to own room %q", room)
	}
	sort.Strings(live)
	h := fnv.New32a()
	_, _ = h.Write([]byte(room))
	base := live[int(h.Sum32())%len(live)]
	return f.owners.Acquire(room, f.bases[base].id)
}

// DialNode connects to a live incarnation's chat server.
func (f *Fabric) DialNode(id NodeID) (net.Conn, error) {
	f.mu.Lock()
	ns := f.nodes[id]
	f.mu.Unlock()
	if ns == nil {
		return nil, fmt.Errorf("cluster: node %s is not live", id)
	}
	return ns.handle.Dial()
}

// NodeStats returns a live incarnation's journal counters.
func (f *Fabric) NodeStats(id NodeID) (journal.Stats, bool) {
	f.mu.Lock()
	ns := f.nodes[id]
	f.mu.Unlock()
	if ns == nil {
		return journal.Stats{}, false
	}
	return ns.handle.Stats(), true
}

// Kill crashes a lineage's live incarnation: its chat server closes
// (every gateway link to it severs), its journal is abandoned without
// a flush, and the incarnation joins the dead list until Failover
// promotes its standby. The SyncedLSN watermark is captured first —
// it is the durability bar the promotion must clear.
func (f *Fabric) Kill(base string) error {
	f.mu.Lock()
	ns := f.bases[base]
	if ns == nil {
		f.mu.Unlock()
		return fmt.Errorf("cluster: lineage %s has no live incarnation", base)
	}
	delete(f.nodes, ns.id)
	f.bases[base] = nil
	f.dead = append(f.dead, ns)
	f.mu.Unlock()

	ns.killedSynced = ns.handle.Stats().SyncedLSN
	return ns.handle.Kill()
}

// Failover promotes every dead incarnation's warm standby: the sink is
// fenced (a late group commit from the dead owner must not land) and
// closed, a new incarnation boots on the sink's directory — ordinary
// WAL recovery over the shipped segments — and each of the dead
// node's rooms moves to it with a bumped fencing epoch. Live owners'
// leases are renewed in the same pass (probe-based renewal: the
// fabric has no renewal goroutine, see the package comment).
//
// Promotions require the dead owner's lease to have expired on the
// fabric's clock; callers advance past the lease (simulator) or run
// Failover on a ticker slower than nothing but faster than the lease
// (cmd/gateway).
func (f *Fabric) Failover() ([]Promotion, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dead := f.dead
	f.dead = nil
	var promos []Promotion
	for _, ns := range dead {
		ns.sink.Fence(ns.shipEpoch + 1)
		sinkLSN, shipped := ns.sink.LastLSN(), ns.sink.Records()
		if err := ns.sink.Close(); err != nil {
			return promos, fmt.Errorf("cluster: close standby of %s: %w", ns.id, err)
		}
		succ, err := f.provision(ns.base, ns.gen+1, ns.sink.Dir())
		if err != nil {
			return promos, fmt.Errorf("cluster: promote standby of %s: %w", ns.id, err)
		}
		f.nodes[succ.id] = succ
		f.bases[ns.base] = succ
		p := Promotion{
			Dead: ns.id, Promoted: succ.id,
			DeadSyncedLSN: ns.killedSynced, SinkLastLSN: sinkLSN, ShippedRecs: shipped,
		}
		st := succ.handle.Stats()
		p.ReplayApplied = st.Replay.Applied
		p.ReplayErrors = st.Replay.Errors
		p.ReplayLastLSN = st.Replay.LastLSN
		for _, room := range f.owners.Rooms(ns.id) {
			before, _ := f.owners.Lookup(room)
			after, err := f.owners.Promote(room, succ.id)
			if err != nil {
				return promos, fmt.Errorf("cluster: promote %s: %w", room, err)
			}
			p.Moves = append(p.Moves, RoomMove{Room: room, EpochBefore: before.Epoch, EpochAfter: after.Epoch})
		}
		promos = append(promos, p)
	}
	// Renew the live owners (promoted incarnations included).
	ids := make([]NodeID, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, room := range f.owners.Rooms(id) {
			if o, ok := f.owners.Lookup(room); ok && o.Node == id {
				if _, err := f.owners.Renew(room, id, o.Epoch); err != nil {
					return promos, err
				}
			}
		}
	}
	return promos, nil
}

// NodesIdle reports whether every live node is instantaneously idle.
// Combined with Gateway.Idle under one clock.Until poll, this is the
// cluster-wide settle barrier.
func (f *Fabric) NodesIdle() bool {
	f.mu.Lock()
	states := make([]*nodeState, 0, len(f.nodes))
	for _, ns := range f.nodes {
		states = append(states, ns)
	}
	f.mu.Unlock()
	for _, ns := range states {
		if !ns.handle.Idle() {
			return false
		}
	}
	return true
}

// Close stops every live incarnation gracefully and closes the
// standbys. Dead incarnations were already torn down by Kill.
func (f *Fabric) Close() error {
	f.mu.Lock()
	states := make([]*nodeState, 0, len(f.nodes))
	for _, ns := range f.nodes {
		states = append(states, ns)
	}
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	f.nodes = make(map[NodeID]*nodeState)
	for base := range f.bases {
		f.bases[base] = nil
	}
	f.mu.Unlock()
	var first error
	for _, ns := range states {
		if ns.handle != nil {
			if err := ns.handle.Stop(); err != nil && first == nil {
				first = err
			}
		}
		if err := ns.sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
