package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"semagent/internal/clock"
	"semagent/internal/journal"
	"semagent/internal/metrics"
)

// NodeHandle is the fabric's view of one running node incarnation. The
// fabric never builds servers or supervisors itself — the Start
// callback in FabricConfig does, so this package stays independent of
// the core supervision stack and the same fabric drives both the
// deterministic simulator (memnet transports, virtual clock) and
// cmd/gateway (real stores, wall clock).
type NodeHandle struct {
	// Dial opens a connection to the node's chat server.
	Dial func() (net.Conn, error)
	// Idle reports the node's instantaneous quiescence (chat.Server.Idle
	// plus anything node-local); used by the fabric's settle barrier.
	Idle func() bool
	// Kill crashes the node: close the chat server and abandon its
	// journal without flushing (the simulated power cut).
	Kill func() error
	// Stop shuts the node down gracefully (final checkpoint, seal).
	Stop func() error
	// Stats returns the node's journal counters (SyncedLSN watermark,
	// replay figures after a promotion).
	Stats func() journal.Stats
}

// FabricConfig configures a classroom fabric.
type FabricConfig struct {
	// Nodes is the initial node count (default 2).
	Nodes int
	// Lease is the room-ownership lease (default 10s on the fabric's
	// clock).
	Lease time.Duration
	// BaseDir holds every incarnation's journal directory and warm
	// standby directory.
	BaseDir string
	// Clock drives leases and liveness; the simulator injects its
	// virtual clock.
	Clock clock.Clock
	// Start launches a node incarnation over the given journal
	// directory. The incarnation MUST install onSync as its journal
	// Options.OnSync hook — that hook is the WAL shipping path; without
	// it the node has no warm standby and its rooms die with it.
	Start func(id NodeID, dir string, onSync func(synced uint64)) (*NodeHandle, error)
	// Metrics optionally registers the fabric's replication health
	// series: semagent_cluster_ship_failures_total,
	// semagent_cluster_ship_stalled and
	// semagent_cluster_ship_lag_records.
	Metrics *metrics.Registry
}

// nodeState is one live (or dead-awaiting-failover) incarnation.
type nodeState struct {
	base   string // lineage name: "n0" stays "n0" across incarnations
	gen    int    // incarnation number within the lineage
	id     NodeID // "n0", "n0+1", ...
	dir    string
	handle *NodeHandle

	// WAL shipping: tail of this node's journal into its standby sink.
	// shipMu serializes the seeding ship at provision time with the
	// journal's OnSync calls (which the appender lock already orders
	// among themselves).
	shipMu     sync.Mutex
	tail       *journal.TailReader
	sink       *journal.Sink
	shipEpoch  uint64
	shipTarget uint64 // highest durable watermark seen; ships catch up to it
	shipCut    bool   // asymmetric partition: ship stream severed
	shipFails  int    // consecutive failed ship attempts since last success
	shipErr    error  // last ship failure; nil again after a successful retry

	failures *metrics.Counter // semagent_cluster_ship_failures_total (nil = unregistered)

	killedSynced uint64 // SyncedLSN captured at Kill time

	// Promotion progress (guarded by Fabric.mu): an interrupted
	// Failover records how far it got so the next call resumes instead
	// of redoing — or worse, wedging — the half-finished stages.
	promoFenced  bool
	promoSealed  bool
	promoSealLSN uint64
	promoShipped uint64
	promoSucc    *nodeState
	promoMoves   []RoomMove
	promoResumes int
}

// RoomMove records one room's ownership transfer during a failover.
type RoomMove struct {
	Room        string `json:"room"`
	EpochBefore uint64 `json:"epoch_before"`
	EpochAfter  uint64 `json:"epoch_after"`
}

// Promotion reports one dead node's standby being promoted.
type Promotion struct {
	Dead     NodeID     `json:"dead"`
	Promoted NodeID     `json:"promoted"`
	Moves    []RoomMove `json:"moves"`
	// DeadSyncedLSN is the durability watermark the dead owner reached;
	// SinkLastLSN is what its standby had durably received. The failover
	// invariant (gen.InvFailover) requires Sink ≥ Dead: nothing a
	// client saw fsync'd may be lost.
	DeadSyncedLSN uint64 `json:"dead_synced_lsn"`
	SinkLastLSN   uint64 `json:"sink_last_lsn"`
	ShippedRecs   uint64 `json:"shipped_records"`
	ReplayApplied int    `json:"replay_applied"`
	ReplayErrors  int    `json:"replay_errors"`
	ReplayLastLSN uint64 `json:"replay_last_lsn"`
	// Resumes counts how many times this promotion was re-entered after
	// an interruption (0 = completed in one pass).
	Resumes int `json:"resumes"`
	// Lossy is the audit verdict: SinkLastLSN < DeadSyncedLSN means
	// durable records never reached the standby (a severed or faulted
	// ship stream at kill time). The failover must say so rather than
	// silently promote.
	Lossy bool `json:"lossy"`
}

// Fabric owns the ownership map and the node incarnations. All
// liveness transitions (Kill, Failover) are explicit calls — no
// background goroutines — so the simulator replays identical schedules
// from identical seeds; cmd/gateway drives the same calls from a
// ticker on the system clock.
type Fabric struct {
	cfg FabricConfig
	clk clock.Clock

	owners *OwnerMap

	mu         sync.Mutex
	nodes      map[NodeID]*nodeState    // live incarnations
	bases      map[string]*nodeState    // lineage -> live incarnation (nil entry while dead)
	dead       []*nodeState             // killed, awaiting Failover
	epoch      uint64                   // ship-epoch counter across incarnations
	skews      map[string]time.Duration // per-lineage clock offset for lease races
	crashStage FailoverStage            // armed one-shot crash point inside Failover

	shipFailures *metrics.Counter
}

// NewFabric provisions the initial nodes (lineages "n0".."n<N-1>") and
// returns the running fabric.
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Start == nil {
		return nil, fmt.Errorf("cluster: FabricConfig.Start is required")
	}
	f := &Fabric{
		cfg:   cfg,
		clk:   clock.Or(cfg.Clock),
		nodes: make(map[NodeID]*nodeState),
		bases: make(map[string]*nodeState),
	}
	f.owners = NewOwnerMap(cfg.Lease, f.clk)
	if cfg.Metrics != nil {
		f.shipFailures = cfg.Metrics.Counter("semagent_cluster_ship_failures_total", "WAL ship attempts that failed (tail read or sink apply) and will retry")
		cfg.Metrics.GaugeFunc("semagent_cluster_ship_stalled", "ship streams currently impaired (severed or erroring)", f.stalledStreams)
		cfg.Metrics.GaugeFunc("semagent_cluster_ship_lag_records", "max standby replication lag in LSNs across live nodes", f.maxShipLag)
	}
	for i := 0; i < cfg.Nodes; i++ {
		base := fmt.Sprintf("n%d", i)
		ns, err := f.provision(base, 0, "")
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		f.nodes[ns.id] = ns
		f.bases[base] = ns
	}
	return f, nil
}

// provision starts incarnation gen of a lineage. dir == "" means a
// fresh journal directory; a promotion passes the dead node's standby
// directory instead, so the new incarnation boots by replaying the
// shipped WAL. After Start, the whole durable log is shipped once into
// the incarnation's own fresh standby — so a lineage killed twice in a
// row without intervening mutations still loses nothing.
func (f *Fabric) provision(base string, gen int, dir string) (*nodeState, error) {
	id := NodeID(base)
	if gen > 0 {
		id = NodeID(fmt.Sprintf("%s+%d", base, gen))
	}
	if dir == "" {
		dir = filepath.Join(f.cfg.BaseDir, string(id))
	}
	sink, err := journal.OpenSink(filepath.Join(f.cfg.BaseDir, string(id)+"-standby"))
	if err != nil {
		return nil, fmt.Errorf("cluster: standby for %s: %w", id, err)
	}
	f.epoch++
	ns := &nodeState{
		base: base, gen: gen, id: id, dir: dir,
		tail: journal.NewTailReader(dir), sink: sink, shipEpoch: f.epoch,
		failures: f.shipFailures,
	}
	handle, err := f.cfg.Start(id, dir, ns.ship)
	if err != nil {
		_ = sink.Close()
		return nil, fmt.Errorf("cluster: start %s: %w", id, err)
	}
	ns.handle = handle
	// Seed the standby with everything already durable (non-empty for a
	// promoted incarnation booting from shipped segments).
	ns.ship(handle.Stats().SyncedLSN)
	return ns, nil
}

// ship streams every durable record up to synced into the standby.
// Installed as the journal's OnSync hook, so replication lag is
// exactly durability lag. A failed attempt (tail read or sink apply)
// rewinds the tail cursor and retries from the last durable position
// on the next call — one transient error must never kill the stream
// for good (that bug shipped once; see DESIGN.md D16).
func (ns *nodeState) ship(synced uint64) {
	ns.shipMu.Lock()
	defer ns.shipMu.Unlock()
	if synced > ns.shipTarget {
		ns.shipTarget = synced
	}
	if ns.shipCut {
		return // severed: remember the watermark, ship nothing
	}
	ns.shipLocked()
}

// shipLocked attempts one catch-up to shipTarget. Callers hold shipMu.
// On any failure the tail cursor rewinds to its pre-read mark, so the
// sink always holds a contiguous LSN prefix of the primary's journal —
// a half-advanced cursor would turn the next success into a gap.
func (ns *nodeState) shipLocked() {
	mark := ns.tail.Mark()
	recs, err := ns.tail.Next(ns.shipTarget)
	if err == nil && len(recs) > 0 {
		err = ns.sink.Apply(ns.shipEpoch, recs)
	}
	if err != nil {
		ns.tail.Reset(mark)
		ns.shipFails++
		ns.shipErr = err
		if ns.failures != nil {
			ns.failures.Inc()
		}
		return
	}
	ns.shipFails = 0
	ns.shipErr = nil
}

// CutShip severs a lineage's WAL ship stream: the node keeps serving
// clients and fsync'ing its journal, but nothing reaches its standby
// until HealShip. This is the asymmetric half of a partition —
// Gateway.CutNode severs the client edge, CutShip severs the
// replication edge — and it is how a kill with real standby lag is
// staged.
func (f *Fabric) CutShip(base string) error {
	ns, err := f.liveIncarnation(base)
	if err != nil {
		return err
	}
	ns.shipMu.Lock()
	ns.shipCut = true
	ns.shipMu.Unlock()
	return nil
}

// HealShip reconnects a severed ship stream (clearing any injected
// sink fault too) and immediately ships everything that accumulated
// while cut — the journal will not necessarily fsync again soon, so
// waiting for the next OnSync could leave the standby lagging forever.
func (f *Fabric) HealShip(base string) error {
	ns, err := f.liveIncarnation(base)
	if err != nil {
		return err
	}
	ns.shipMu.Lock()
	defer ns.shipMu.Unlock()
	ns.shipCut = false
	ns.sink.InjectFault(nil)
	ns.shipLocked()
	return ns.shipErr
}

// InjectSinkFault makes the lineage's standby reject every Apply with
// err (nil clears). Unlike CutShip the shipper keeps trying, so the
// failure is surfaced — counted, reported by Health — rather than
// silently absorbed.
func (f *Fabric) InjectSinkFault(base string, err error) error {
	ns, lerr := f.liveIncarnation(base)
	if lerr != nil {
		return lerr
	}
	ns.sink.InjectFault(err)
	return nil
}

func (f *Fabric) liveIncarnation(base string) (*nodeState, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ns := f.bases[base]
	if ns == nil {
		return nil, fmt.Errorf("cluster: lineage %s has no live incarnation", base)
	}
	return ns, nil
}

// NodeHealth is one incarnation's replication health: how far its
// standby lags behind its durability watermark, and whether the ship
// stream is impaired. Operators see a lagging standby here *before*
// the kill that would make the lag a loss.
type NodeHealth struct {
	Node      NodeID `json:"node"`
	Base      string `json:"base"`
	Live      bool   `json:"live"`
	SyncedLSN uint64 `json:"synced_lsn"`
	SinkLSN   uint64 `json:"sink_lsn"`
	// Lag is SyncedLSN - SinkLSN: durable records the standby has not
	// received. Nonzero lag with no ShipCut/ShipFailures/ShipErr is a
	// silent stall — exactly what the ship-resumes-or-surfaces
	// invariant forbids.
	Lag          uint64 `json:"lag"`
	ShipCut      bool   `json:"ship_cut,omitempty"`
	ShipFailures int    `json:"ship_failures,omitempty"`
	ShipErr      string `json:"ship_err,omitempty"`
}

// Health reports replication health for every incarnation — live ones
// against their journal's current SyncedLSN, dead-awaiting-failover
// ones against the watermark captured at kill time — sorted by node
// id.
func (f *Fabric) Health() []NodeHealth {
	f.mu.Lock()
	states := make([]*nodeState, 0, len(f.nodes)+len(f.dead))
	live := make(map[*nodeState]bool, len(f.nodes))
	for _, ns := range f.nodes {
		states = append(states, ns)
		live[ns] = true
	}
	states = append(states, f.dead...)
	f.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	out := make([]NodeHealth, 0, len(states))
	for _, ns := range states {
		h := NodeHealth{Node: ns.id, Base: ns.base, Live: live[ns]}
		if live[ns] {
			h.SyncedLSN = ns.handle.Stats().SyncedLSN
		} else {
			h.SyncedLSN = ns.killedSynced
		}
		h.SinkLSN = ns.sink.LastLSN()
		if h.SyncedLSN > h.SinkLSN {
			h.Lag = h.SyncedLSN - h.SinkLSN
		}
		ns.shipMu.Lock()
		h.ShipCut = ns.shipCut
		h.ShipFailures = ns.shipFails
		if ns.shipErr != nil {
			h.ShipErr = ns.shipErr.Error()
		}
		ns.shipMu.Unlock()
		out = append(out, h)
	}
	return out
}

// stalledStreams counts live ship streams currently impaired (severed
// or erroring) — the semagent_cluster_ship_stalled gauge.
func (f *Fabric) stalledStreams() int64 {
	f.mu.Lock()
	states := make([]*nodeState, 0, len(f.nodes))
	for _, ns := range f.nodes {
		states = append(states, ns)
	}
	f.mu.Unlock()
	var n int64
	for _, ns := range states {
		ns.shipMu.Lock()
		if ns.shipCut || ns.shipErr != nil {
			n++
		}
		ns.shipMu.Unlock()
	}
	return n
}

// maxShipLag is the worst standby replication lag (in LSNs) across
// live nodes — the semagent_cluster_ship_lag_records gauge.
func (f *Fabric) maxShipLag() int64 {
	var max uint64
	for _, h := range f.Health() {
		if h.Live && h.Lag > max {
			max = h.Lag
		}
	}
	return int64(max)
}

// ShipErrors returns the replication errors currently outstanding on
// any incarnation (live or dead), sorted by node id. A transient
// failure that a later ship retried past is NOT reported — empty means
// every stream is healthy now, not that none ever hiccuped.
func (f *Fabric) ShipErrors() []error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var states []*nodeState
	for _, ns := range f.nodes {
		states = append(states, ns)
	}
	states = append(states, f.dead...)
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	var errs []error
	for _, ns := range states {
		ns.shipMu.Lock()
		if ns.shipErr != nil {
			errs = append(errs, fmt.Errorf("node %s: %w", ns.id, ns.shipErr))
		}
		ns.shipMu.Unlock()
	}
	return errs
}

// Owners exposes the ownership map (status endpoints, tests).
func (f *Fabric) Owners() *OwnerMap { return f.owners }

// Current resolves a lineage base name to its live incarnation.
func (f *Fabric) Current(base string) (NodeID, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ns := f.bases[base]
	if ns == nil {
		return "", false
	}
	return ns.id, true
}

// LiveNodes returns the live incarnation ids, sorted.
func (f *Fabric) LiveNodes() []NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeID, 0, len(f.nodes))
	for id := range f.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owner resolves (and on first contact assigns) a room's owner. New
// rooms are placed by a stable hash of the room name over the sorted
// live lineages, so placement is deterministic for a given set of
// live nodes.
func (f *Fabric) Owner(room string) (Ownership, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if o, ok := f.owners.Lookup(room); ok {
		return o, nil
	}
	var live []string
	for base, ns := range f.bases {
		if ns != nil {
			live = append(live, base)
		}
	}
	if len(live) == 0 {
		return Ownership{}, fmt.Errorf("cluster: no live nodes to own room %q", room)
	}
	sort.Strings(live)
	h := fnv.New32a()
	_, _ = h.Write([]byte(room))
	base := live[int(h.Sum32())%len(live)]
	return f.owners.Acquire(room, f.bases[base].id)
}

// DialNode connects to a live incarnation's chat server.
func (f *Fabric) DialNode(id NodeID) (net.Conn, error) {
	f.mu.Lock()
	ns := f.nodes[id]
	f.mu.Unlock()
	if ns == nil {
		return nil, fmt.Errorf("cluster: node %s is not live", id)
	}
	return ns.handle.Dial()
}

// NodeStats returns a live incarnation's journal counters.
func (f *Fabric) NodeStats(id NodeID) (journal.Stats, bool) {
	f.mu.Lock()
	ns := f.nodes[id]
	f.mu.Unlock()
	if ns == nil {
		return journal.Stats{}, false
	}
	return ns.handle.Stats(), true
}

// Kill crashes a lineage's live incarnation: its chat server closes
// (every gateway link to it severs), its journal is abandoned without
// a flush, and the incarnation joins the dead list until Failover
// promotes its standby. The SyncedLSN watermark is captured first —
// it is the durability bar the promotion must clear.
func (f *Fabric) Kill(base string) error {
	f.mu.Lock()
	ns := f.bases[base]
	if ns == nil {
		f.mu.Unlock()
		return fmt.Errorf("cluster: lineage %s has no live incarnation", base)
	}
	delete(f.nodes, ns.id)
	f.bases[base] = nil
	f.dead = append(f.dead, ns)
	f.mu.Unlock()

	ns.killedSynced = ns.handle.Stats().SyncedLSN
	return ns.handle.Kill()
}

// FailoverStage names a deterministic crash point inside Failover.
// The stages bracket every durable transition of a promotion, so a
// chaos schedule can kill the coordinator between any two of them and
// the next Failover call must resume — not redo, not wedge — the
// half-finished promotion.
type FailoverStage int

const (
	StageNone       FailoverStage = iota
	StageFenced                   // sink fenced, not yet sealed
	StageSealed                   // sink closed, successor not yet booted
	StageRestarted                // successor booted, no room moved yet
	StageMidPromote               // first room moved, the rest still on the dead owner
)

// ErrFailoverInterrupted reports that Failover stopped at an armed
// crash point. The interrupted promotion's lineage stays on the dead
// list with its progress recorded; calling Failover again resumes it.
var ErrFailoverInterrupted = errors.New("cluster: failover interrupted at crash point")

// CrashNextFailover arms a one-shot crash point: the next Failover
// call returns ErrFailoverInterrupted when it reaches the stage.
func (f *Fabric) CrashNextFailover(stage FailoverStage) {
	f.mu.Lock()
	f.crashStage = stage
	f.mu.Unlock()
}

// crashAt consumes an armed crash point. Callers hold f.mu.
func (f *Fabric) crashAt(stage FailoverStage) bool {
	if f.crashStage != stage || stage == StageNone {
		return false
	}
	f.crashStage = StageNone
	return true
}

// Failover promotes every dead incarnation's warm standby: the sink is
// fenced (a late group commit from the dead owner must not land) and
// closed, a new incarnation boots on the sink's directory — ordinary
// WAL recovery over the shipped segments — and each of the dead
// node's rooms moves to it with a bumped fencing epoch. Live owners'
// leases are renewed in the same pass (probe-based renewal: the
// fabric has no renewal goroutine, see the package comment).
//
// Failover is re-entrant: a promotion interrupted by an armed crash
// point (or a caller crash between stages) left the dead incarnation
// on the dead list with its completed stages recorded, and the next
// call picks up exactly where it stopped. A dead node only leaves the
// dead list when its promotion fully completes, so interruption can
// never strand a lineage half-promoted.
//
// Promotions require the dead owner's lease to have expired on the
// fabric's clock; callers advance past the lease (simulator) or run
// Failover on a ticker slower than nothing but faster than the lease
// (cmd/gateway).
func (f *Fabric) Failover() ([]Promotion, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var promos []Promotion
	for len(f.dead) > 0 {
		ns := f.dead[0]
		p, err := f.promoteLocked(ns)
		if err != nil {
			return promos, err
		}
		promos = append(promos, p)
		f.dead = f.dead[1:]
	}
	// Renew the live owners (promoted incarnations included).
	ids := make([]NodeID, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, room := range f.owners.Rooms(id) {
			if o, ok := f.owners.Lookup(room); ok && o.Node == id {
				if _, err := f.owners.Renew(room, id, o.Epoch); err != nil {
					return promos, err
				}
			}
		}
	}
	return promos, nil
}

// promoteLocked runs (or resumes) one dead incarnation's promotion.
// Callers hold f.mu. Each stage checks recorded progress first, so a
// resumed call skips completed work; armed crash points fire between
// stages via crashAt.
func (f *Fabric) promoteLocked(ns *nodeState) (Promotion, error) {
	if ns.promoFenced { // any prior progress means this is a resume
		ns.promoResumes++
	}
	if !ns.promoFenced {
		ns.sink.Fence(ns.shipEpoch + 1)
		ns.promoFenced = true
		if f.crashAt(StageFenced) {
			return Promotion{}, fmt.Errorf("%w: %s fenced", ErrFailoverInterrupted, ns.id)
		}
	}
	if !ns.promoSealed {
		ns.promoSealLSN, ns.promoShipped = ns.sink.LastLSN(), ns.sink.Records()
		if err := ns.sink.Close(); err != nil {
			return Promotion{}, fmt.Errorf("cluster: close standby of %s: %w", ns.id, err)
		}
		ns.promoSealed = true
		if f.crashAt(StageSealed) {
			return Promotion{}, fmt.Errorf("%w: %s sealed", ErrFailoverInterrupted, ns.id)
		}
	}
	if ns.promoSucc == nil {
		succ, err := f.provision(ns.base, ns.gen+1, ns.sink.Dir())
		if err != nil {
			return Promotion{}, fmt.Errorf("cluster: promote standby of %s: %w", ns.id, err)
		}
		f.nodes[succ.id] = succ
		f.bases[ns.base] = succ
		ns.promoSucc = succ
		if f.crashAt(StageRestarted) {
			return Promotion{}, fmt.Errorf("%w: %s restarted", ErrFailoverInterrupted, ns.id)
		}
	}
	succ := ns.promoSucc
	// Rooms() only returns rooms still on the dead id, so a resumed
	// loop naturally continues with the rooms the interruption left
	// behind (the moved ones already answer to the successor).
	for _, room := range f.owners.Rooms(ns.id) {
		before, _ := f.owners.Lookup(room)
		after, err := f.owners.Promote(room, succ.id)
		if err != nil {
			return Promotion{}, fmt.Errorf("cluster: promote %s: %w", room, err)
		}
		ns.promoMoves = append(ns.promoMoves, RoomMove{Room: room, EpochBefore: before.Epoch, EpochAfter: after.Epoch})
		if f.crashAt(StageMidPromote) {
			return Promotion{}, fmt.Errorf("%w: %s mid-promote after %s", ErrFailoverInterrupted, ns.id, room)
		}
	}
	if f.crashAt(StageMidPromote) {
		// The dead owner held no (remaining) rooms; an armed crash point
		// still fires so schedules stay deterministic.
		return Promotion{}, fmt.Errorf("%w: %s mid-promote (no rooms)", ErrFailoverInterrupted, ns.id)
	}
	p := Promotion{
		Dead: ns.id, Promoted: succ.id, Moves: ns.promoMoves,
		DeadSyncedLSN: ns.killedSynced, SinkLastLSN: ns.promoSealLSN, ShippedRecs: ns.promoShipped,
		Resumes: ns.promoResumes,
		Lossy:   ns.promoSealLSN < ns.killedSynced,
	}
	st := succ.handle.Stats()
	p.ReplayApplied = st.Replay.Applied
	p.ReplayErrors = st.Replay.Errors
	p.ReplayLastLSN = st.Replay.LastLSN
	return p, nil
}

// SetSkew assigns a lineage a clock offset for lease races: the
// lineage's RaceLeases decisions run at Now()+skew, modeling a node
// whose local clock runs fast (positive skew sees leases expire early).
func (f *Fabric) SetSkew(base string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.skews == nil {
		f.skews = make(map[string]time.Duration)
	}
	f.skews[base] = d
}

// LeaseRace records one clock-skewed acquisition attempt against
// another lineage's room. Safety under skew is NOT "the seizure was
// refused" — a skewed clock may legitimately see an expired lease —
// it is the fence: a seizure bumps the epoch and the deposed owner's
// next epoch-checked write is refused.
type LeaseRace struct {
	Room       string `json:"room"`
	Challenger NodeID `json:"challenger"`
	Owner      NodeID `json:"owner"`
	// LeaseLive reports whether the owner's lease was still live on the
	// UNSKEWED fabric clock at race time.
	LeaseLive bool  `json:"lease_live"`
	SkewMS    int64 `json:"skew_ms"`
	Seized    bool  `json:"seized"`
	// Refused carries the refusal error when the race lost.
	Refused     string `json:"refused,omitempty"`
	EpochBefore uint64 `json:"epoch_before"`
	EpochAfter  uint64 `json:"epoch_after"`
	// OldOwnerFenced: after a seizure, the deposed owner renewing with
	// its old epoch on the unskewed clock got ErrFenced. This is the
	// single-writer guarantee; it must be true for every seizure.
	OldOwnerFenced bool `json:"old_owner_fenced,omitempty"`
}

// RaceLeases has the challenger lineage attempt a skewed-clock Acquire
// on the first room of every other live lineage, records whether the
// epoch fence held, and — because the challenger holds no replica of a
// seized room's state — hands every seized room straight back via
// Handoff (bumping the epoch again). The room's service never moves;
// what the race probes is the ownership map's safety under disagreeing
// clocks. Callers must re-route any links for seized rooms (their
// routed epoch is now stale twice over).
func (f *Fabric) RaceLeases(challenger string) ([]LeaseRace, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := f.bases[challenger]
	if ch == nil {
		return nil, fmt.Errorf("cluster: lineage %s has no live incarnation", challenger)
	}
	now := f.clk.Now()
	skewed := now.Add(f.skews[challenger])
	var others []string
	for base, ns := range f.bases {
		if ns != nil && base != challenger {
			others = append(others, base)
		}
	}
	sort.Strings(others)
	var races []LeaseRace
	for _, base := range others {
		owner := f.bases[base]
		rooms := f.owners.Rooms(owner.id)
		if len(rooms) == 0 {
			continue
		}
		room := rooms[0]
		before, _ := f.owners.Lookup(room)
		race := LeaseRace{
			Room: room, Challenger: ch.id, Owner: owner.id,
			LeaseLive:   now.Before(before.Expires),
			SkewMS:      f.skews[challenger].Milliseconds(),
			EpochBefore: before.Epoch,
			EpochAfter:  before.Epoch,
		}
		after, err := f.owners.AcquireAt(skewed, room, ch.id)
		if err != nil {
			race.Refused = err.Error()
		} else {
			race.Seized = true
			race.EpochAfter = after.Epoch
			_, rerr := f.owners.RenewAt(now, room, owner.id, before.Epoch)
			race.OldOwnerFenced = errors.Is(rerr, ErrFenced)
			if _, err := f.owners.Handoff(room, ch.id, owner.id, after.Epoch); err != nil {
				return races, fmt.Errorf("cluster: hand back %s after race: %w", room, err)
			}
		}
		races = append(races, race)
	}
	return races, nil
}

// NodesIdle reports whether every live node is instantaneously idle.
// Combined with Gateway.Idle under one clock.Until poll, this is the
// cluster-wide settle barrier.
func (f *Fabric) NodesIdle() bool {
	f.mu.Lock()
	states := make([]*nodeState, 0, len(f.nodes))
	for _, ns := range f.nodes {
		states = append(states, ns)
	}
	f.mu.Unlock()
	for _, ns := range states {
		if !ns.handle.Idle() {
			return false
		}
	}
	return true
}

// Close stops every live incarnation gracefully and closes the
// standbys. Dead incarnations were already torn down by Kill.
func (f *Fabric) Close() error {
	f.mu.Lock()
	states := make([]*nodeState, 0, len(f.nodes))
	for _, ns := range f.nodes {
		states = append(states, ns)
	}
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	f.nodes = make(map[NodeID]*nodeState)
	for base := range f.bases {
		f.bases[base] = nil
	}
	f.mu.Unlock()
	var first error
	for _, ns := range states {
		if ns.handle != nil {
			if err := ns.handle.Stop(); err != nil && first == nil {
				first = err
			}
		}
		if err := ns.sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
