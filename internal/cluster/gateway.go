package cluster

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"semagent/internal/chat"
	"semagent/internal/clock"
)

// linkTimeout bounds the real time a relink (initial route or
// failover reconnect) may spend retrying. Like the simulator's settle
// timeout it exists only to turn a genuine bug into a clean failure.
const linkTimeout = 30 * time.Second

// readableWaiter is the optional transport extension the gateway's
// relay pumps use to park between messages without consuming bytes
// (memnet.Conn implements it). On transports without it (TCP) the
// pumps block inside Read instead; Idle is then advisory, which is
// fine — the settle barrier only runs under memnet.
type readableWaiter interface {
	WaitReadable()
	Closed() bool
}

// Gateway owns the client edge of the fabric: it accepts client
// connections on any net.Listener, routes each join to the room's
// owner node over the binary wire protocol, and relays in both
// directions. When an owner dies the client-side connection stays up;
// the link re-resolves the room (retrying until Failover promotes the
// standby) and rejoins with Message.Resume so the recovered owner
// skips the history replay — the client never sees a duplicate
// (DESIGN.md D15).
type Gateway struct {
	fab *Fabric
	clk clock.Clock

	mu       sync.Mutex
	links    map[*link]struct{}
	closed   bool
	listener net.Listener
	wg       sync.WaitGroup
}

// link is one client's relay: a client-side connection and the
// current backend connection to the room's owner, plus the state the
// idle barrier reads. gen increments on every relink; writers that
// hit a dead backend wait for a gen change and resend.
type link struct {
	room, user string
	clientWire chat.Wire

	clientConn  net.Conn
	clientCodec *chat.Codec

	mu        sync.Mutex // guards the backend fields and serializes backend writes
	backConn  net.Conn
	backCodec *chat.Codec
	epoch     uint64 // ownership epoch this link last routed with
	gen       uint64

	closed atomic.Bool // client is gone; no more relinks
	busy   atomic.Int64
}

// NewGateway returns a gateway routing through the given fabric.
func NewGateway(fab *Fabric, clk clock.Clock) *Gateway {
	return &Gateway{fab: fab, clk: clock.Or(clk), links: make(map[*link]struct{})}
}

// Serve accepts client connections from l until the gateway closes.
func (g *Gateway) Serve(l net.Listener) {
	g.mu.Lock()
	g.listener = l
	g.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			g.mu.Lock()
			if g.closed {
				g.mu.Unlock()
				_ = conn.Close()
				return
			}
			g.mu.Unlock()
			g.wg.Add(1)
			go g.handleClient(conn)
		}
	}()
}

// Close stops accepting, severs every link and waits for the pumps.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	l := g.listener
	links := make([]*link, 0, len(g.links))
	for lk := range g.links {
		links = append(links, lk)
	}
	g.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, lk := range links {
		lk.closed.Store(true)
		_ = lk.clientConn.Close()
		lk.mu.Lock()
		if lk.backConn != nil {
			_ = lk.backConn.Close()
		}
		lk.mu.Unlock()
	}
	g.wg.Wait()
	return err
}

// CutNode severs every link's backend connection to the given
// incarnation without touching the client side — a network partition
// between gateway and node. Each cut link reconnects (Resume join)
// through the normal failover path; since the node is still alive it
// reattaches to the same owner. Returns how many links were cut.
func (g *Gateway) CutNode(id NodeID) int {
	g.mu.Lock()
	links := make([]*link, 0, len(g.links))
	for lk := range g.links {
		links = append(links, lk)
	}
	g.mu.Unlock()
	cut := 0
	for _, lk := range links {
		lk.mu.Lock()
		if o, ok := g.fab.Owners().Lookup(lk.room); ok && o.Node == id && lk.backConn != nil {
			_ = lk.backConn.Close()
			cut++
		}
		lk.mu.Unlock()
	}
	return cut
}

// CutRoom severs every link routed to the given room, regardless of
// which node serves it. After an ownership-map epoch change that moved
// no state (a clock-skew lease race and hand-back), the links' routed
// epoch is stale and Idle would report a reconnect owed forever — the
// cut forces the relink that refreshes it. Returns how many links were
// cut.
func (g *Gateway) CutRoom(room string) int {
	g.mu.Lock()
	links := make([]*link, 0, len(g.links))
	for lk := range g.links {
		links = append(links, lk)
	}
	g.mu.Unlock()
	cut := 0
	for _, lk := range links {
		lk.mu.Lock()
		if lk.room == room && lk.backConn != nil {
			_ = lk.backConn.Close()
			cut++
		}
		lk.mu.Unlock()
	}
	return cut
}

// Links reports the number of live client links.
func (g *Gateway) Links() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.links)
}

// Idle reports whether every link is parked with nothing in flight:
// no pump mid-message, no bytes waiting on either side, and the
// backend both current (routing epoch matches the ownership map) and
// alive (a severed backend means a reconnect is owed, even if the
// pump has not scheduled it yet). ANDed with Fabric.NodesIdle under
// one clock.Until poll, this makes the simulator's settle barrier
// sound across the relay hop.
func (g *Gateway) Idle() bool {
	g.mu.Lock()
	links := make([]*link, 0, len(g.links))
	for lk := range g.links {
		links = append(links, lk)
	}
	g.mu.Unlock()
	for _, lk := range links {
		if lk.busy.Load() != 0 {
			return false
		}
		if pendingBytes(lk.clientConn) > 0 || lk.clientCodec.Buffered() > 0 {
			return false
		}
		lk.mu.Lock()
		conn, codec, epoch := lk.backConn, lk.backCodec, lk.epoch
		lk.mu.Unlock()
		if conn == nil || pendingBytes(conn) > 0 || codec.Buffered() > 0 {
			return false
		}
		if w, ok := conn.(readableWaiter); ok && w.Closed() {
			return false
		}
		if o, ok := g.fab.Owners().Lookup(lk.room); ok && o.Epoch != epoch {
			return false
		}
	}
	return true
}

func pendingBytes(c net.Conn) int {
	if p, ok := c.(interface{ Pending() int }); ok {
		return p.Pending()
	}
	return 0
}

func waitReadable(c net.Conn) {
	if w, ok := c.(readableWaiter); ok {
		w.WaitReadable()
	}
}

// handleClient runs one client's session: handshake, then the
// client-to-backend pump inline with the backend-to-client pump in a
// sibling goroutine.
func (g *Gateway) handleClient(conn net.Conn) {
	defer g.wg.Done()
	defer conn.Close()
	codec := chat.NewCodec(conn)
	first, err := codec.Read()
	if err != nil {
		return
	}
	if first.Type != chat.TypeJoin || first.From == "" || first.Room == "" {
		_ = codec.Write(chat.Message{Type: chat.TypeError, Text: "first message must be a join with room and from"})
		return
	}
	lk := &link{room: first.Room, user: first.From, clientConn: conn, clientCodec: codec}
	if first.Wire == chat.WireBinary {
		lk.clientWire = chat.WireBinary
	}
	welcome, ok := g.relink(lk, first.Resume)
	if !ok {
		_ = codec.Write(chat.Message{Type: chat.TypeError, Text: "no owner reachable for room " + first.Room})
		return
	}
	// Forward the welcome with the wire echo the CLIENT negotiated (the
	// backend hop is always binary regardless), then switch framings
	// exactly like the server would.
	welcome.Wire = lk.clientWire
	if err := codec.Write(welcome); err != nil {
		lk.mu.Lock()
		_ = lk.backConn.Close()
		lk.mu.Unlock()
		return
	}
	if lk.clientWire == chat.WireBinary {
		codec.SetReadWire(chat.WireBinary)
		codec.SetWriteWire(chat.WireBinary)
	}

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		lk.mu.Lock()
		_ = lk.backConn.Close()
		lk.mu.Unlock()
		return
	}
	g.links[lk] = struct{}{}
	g.mu.Unlock()

	g.wg.Add(1)
	go g.pumpBackendToClient(lk)
	g.pumpClientToBackend(lk)

	g.mu.Lock()
	delete(g.links, lk)
	g.mu.Unlock()
}

// relink (re)connects a link to its room's current owner, retrying
// until the fabric promotes one or the timeout expires. resume marks
// the backend join as a reconnection so the owner skips its history
// replay. On success the new backend is installed under lk.mu and the
// link's generation bumps — writers blocked on the old backend see the
// change and resend.
func (g *Gateway) relink(lk *link, resume bool) (welcome chat.Message, ok bool) {
	done := clock.Until(linkTimeout, func() bool {
		if lk.closed.Load() {
			return true // give up: client is gone
		}
		o, err := g.fab.Owner(lk.room)
		if err != nil {
			return false
		}
		conn, err := g.fab.DialNode(o.Node)
		if err != nil {
			return false // owner dead or mid-promotion; retry
		}
		codec := chat.NewCodec(conn)
		join := chat.Message{Type: chat.TypeJoin, Room: lk.room, From: lk.user, Wire: chat.WireBinary, Resume: resume}
		if err := codec.Write(join); err != nil {
			_ = conn.Close()
			return false
		}
		reply, err := codec.Read()
		if err != nil || reply.Type != chat.TypeWelcome {
			// A TypeError here is usually "name already in use": the old
			// incarnation of this link has not processed its EOF-leave
			// yet. Close and retry until it has.
			_ = conn.Close()
			return false
		}
		codec.SetReadWire(chat.WireBinary)
		codec.SetWriteWire(chat.WireBinary)
		lk.mu.Lock()
		lk.backConn = conn
		lk.backCodec = codec
		lk.epoch = o.Epoch
		lk.gen++
		lk.mu.Unlock()
		welcome = reply
		return true
	})
	return welcome, done && !lk.closed.Load()
}

// pumpClientToBackend relays the client's messages to the current
// owner. A write that fails waits for the backend-to-client pump to
// relink (generation change) and resends on the new backend, so a
// message sent across a failover is delivered exactly once.
func (g *Gateway) pumpClientToBackend(lk *link) {
	for {
		if lk.clientCodec.Buffered() == 0 {
			waitReadable(lk.clientConn)
		}
		lk.busy.Add(1)
		m, err := lk.clientCodec.Read()
		if err != nil {
			lk.busy.Add(-1)
			break // client dropped (or sent garbage); sever the backend
		}
		switch m.Type {
		case chat.TypeSay, chat.TypeLeave:
			if m.Type == chat.TypeLeave {
				// Mark before forwarding: the backend will close this
				// link's connection after processing the leave, and the
				// sibling pump must read that EOF as "done", not as a
				// failover to recover from.
				lk.closed.Store(true)
			}
			if !lk.writeBackend(m) {
				lk.busy.Add(-1)
				goto out
			}
		default:
			// Joins were consumed at handshake; anything else is a
			// protocol error answered locally.
			_ = m
		}
		lk.busy.Add(-1)
		if m.Type == chat.TypeLeave {
			goto out
		}
	}
out:
	lk.closed.Store(true)
	lk.mu.Lock()
	if lk.backConn != nil {
		_ = lk.backConn.Close()
	}
	lk.mu.Unlock()
	_ = lk.clientConn.Close()
}

// writeBackend sends one message on the link's current backend,
// riding out failovers: on error it waits for a relink and resends.
func (lk *link) writeBackend(m chat.Message) bool {
	for {
		lk.mu.Lock()
		codec, gen := lk.backCodec, lk.gen
		var err error
		if codec == nil {
			err = errors.New("no backend")
		} else {
			err = codec.Write(m)
		}
		lk.mu.Unlock()
		if err == nil {
			return true
		}
		if lk.closed.Load() {
			return false
		}
		relinked := clock.Until(linkTimeout, func() bool {
			if lk.closed.Load() {
				return true
			}
			lk.mu.Lock()
			changed := lk.gen != gen
			lk.mu.Unlock()
			return changed
		})
		if !relinked || lk.closed.Load() {
			return false
		}
	}
}

// pumpBackendToClient relays the owner's messages to the client. A
// backend EOF with the client still attached is a failover (or
// partition): relink with Resume, forward the fresh welcome, carry on.
func (g *Gateway) pumpBackendToClient(lk *link) {
	defer g.wg.Done()
	for {
		lk.mu.Lock()
		conn, codec := lk.backConn, lk.backCodec
		lk.mu.Unlock()
		if codec.Buffered() == 0 {
			waitReadable(conn)
		}
		lk.busy.Add(1)
		m, err := codec.Read()
		if err != nil {
			lk.busy.Add(-1)
			if lk.closed.Load() {
				return
			}
			welcome, ok := g.relink(lk, true)
			if !ok {
				// No owner came back inside the window: drop the client;
				// its edge connection closing is the honest signal.
				lk.closed.Store(true)
				_ = lk.clientConn.Close()
				return
			}
			welcome.Wire = lk.clientWire
			lk.busy.Add(1)
			werr := lk.clientCodec.Write(welcome)
			lk.busy.Add(-1)
			if werr != nil {
				lk.closed.Store(true)
				return
			}
			continue
		}
		werr := lk.clientCodec.Write(m)
		lk.busy.Add(-1)
		if werr != nil {
			// Client gone mid-broadcast: sever the backend so the owner
			// sees the leave.
			lk.closed.Store(true)
			lk.mu.Lock()
			if lk.backConn != nil {
				_ = lk.backConn.Close()
			}
			lk.mu.Unlock()
			return
		}
	}
}
