package qa

import (
	"strings"
	"testing"

	"semagent/internal/ontology"
)

func TestPluralQuestionForms(t *testing.T) {
	s := newSystem(t)
	ans := s.Ask("Do stacks have pop methods?")
	if !ans.Answered || !strings.HasPrefix(ans.Text, "Yes") {
		t.Errorf("plural does-have: %+v", ans)
	}
	ans = s.Ask("What are queues?")
	if !ans.Answered || !strings.Contains(ans.Text, "First In, First Out") {
		t.Errorf("plural what-is: %+v", ans)
	}
}

func TestCanFrontedQuestion(t *testing.T) {
	s := newSystem(t)
	ans := s.Ask("Can a heap have a heapify operation?")
	if !ans.Answered || !strings.HasPrefix(ans.Text, "Yes") {
		t.Errorf("can-fronted: %+v", ans)
	}
}

func TestWhichHasProperty(t *testing.T) {
	s := newSystem(t)
	ans := s.Ask("Which structure has lifo?")
	if !ans.Answered || !strings.Contains(ans.Text, "stack") {
		t.Errorf("which-has property: %+v", ans)
	}
}

func TestWhichHasWithCategoryFilter(t *testing.T) {
	s := newSystem(t)
	// insert is offered by several concepts; restricting to trees must
	// keep only tree-ish owners.
	ans := s.Ask("Which tree has the insert operation?")
	if !ans.Answered {
		t.Fatal("unanswered")
	}
	if strings.Contains(ans.Text, "hash table") || strings.Contains(ans.Text, "linked list") {
		t.Errorf("category filter leaked non-trees: %q", ans.Text)
	}
}

func TestSynthesizedDefinitionForBareItem(t *testing.T) {
	// "node" has no stored description; the answer must be synthesized
	// from its relations instead of going unanswered.
	s := newSystem(t)
	ans := s.Ask("What is a node?")
	if !ans.Answered {
		t.Fatal("unanswered")
	}
	if !strings.Contains(ans.Text, "part of") {
		t.Errorf("synthesized definition = %q", ans.Text)
	}
}

func TestMorphologicalFoldInQuestions(t *testing.T) {
	s := newSystem(t)
	// "insertion" is an alias of insert; "deletions" needs plural+alias
	// folding.
	ans := s.Ask("Does a tree have insertion?")
	if !ans.Answered || !strings.HasPrefix(ans.Text, "Yes") {
		t.Errorf("alias fold: %+v", ans)
	}
}

func TestEmptyAndJunkQuestions(t *testing.T) {
	s := newSystem(t)
	for _, q := range []string{"", "   ", "???", "!!!"} {
		ans := s.Ask(q)
		if ans.Answered {
			t.Errorf("junk question %q answered: %q", q, ans.Text)
		}
	}
}

func TestHowQuestionFallsBackToDefinition(t *testing.T) {
	s := newSystem(t)
	ans := s.Ask("How does a hash table work?")
	if !ans.Answered || !strings.Contains(ans.Text, "hash") {
		t.Errorf("how fallback: %+v", ans)
	}
}

func TestRelationsOfUnreachablePair(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	// Add an isolated island item.
	if _, err := onto.AddItem("widget", ontology.KindConcept); err != nil {
		t.Fatal(err)
	}
	s := New(onto, nil, nil)
	ans := s.Ask("What is the relation between a widget and a stack?")
	if !ans.Answered {
		t.Fatal("unanswered")
	}
	if !strings.Contains(ans.Text, "no relation") {
		t.Errorf("unreachable pair answer = %q", ans.Text)
	}
}

func TestFAQKeyCollapsesArticlesOnly(t *testing.T) {
	// Two genuinely different questions must not share an FAQ entry.
	f := NewFAQ()
	f.Record("What is a stack?", "stack answer", TemplateDefinition)
	f.Record("What is a queue?", "queue answer", TemplateDefinition)
	if f.Len() != 2 {
		t.Errorf("distinct questions merged: len=%d", f.Len())
	}
	if e, ok := f.Lookup("what is the stack"); !ok || e.Answer != "stack answer" {
		t.Errorf("article variation should hit: %+v ok=%v", e, ok)
	}
}
