// Package qa implements the Questions and Answers System of the paper's
// §4.4: interrogative sentences are matched against question templates
// ("What is …", "The relations of …", "Does … have …", "Which … has …"),
// keywords are located in the knowledge ontology, the semantic distance
// of the keywords shapes the answer, and answered pairs accumulate in
// the FAQ database whose most frequent entries become a learning aid.
package qa

import (
	"fmt"
	"strings"

	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
	"semagent/internal/sentence"
)

// TemplateKind identifies which interrogative template matched.
type TemplateKind int8

// The paper's template set plus the is-a variant.
const (
	TemplateNone       TemplateKind = iota // no template matched
	TemplateDefinition                     // "What is X?"
	TemplateRelations                      // "The relations of X and Y?"
	TemplateHasFeature                     // "Does X have Y?"
	TemplateWhichHas                       // "Which X has Y?"
	TemplateIsA                            // "Is X a Y?"
)

// String names the template.
func (k TemplateKind) String() string {
	switch k {
	case TemplateDefinition:
		return "what-is"
	case TemplateRelations:
		return "relations-of"
	case TemplateHasFeature:
		return "does-have"
	case TemplateWhichHas:
		return "which-has"
	case TemplateIsA:
		return "is-a"
	default:
		return "none"
	}
}

// Answer is the system's response to a question.
type Answer struct {
	Question string
	Template TemplateKind
	Answered bool
	Text     string
	// Source is "ontology", "faq" or "corpus".
	Source string
	// Terms are the ontology keywords located in the question.
	Terms []ontology.TermMatch
}

// System wires the ontology, the learner corpus fallback and the FAQ.
type System struct {
	onto   *ontology.Ontology
	corpus *corpus.Store
	faq    *FAQ
}

// New builds a QA system. The corpus may be nil; the FAQ is created
// internally when nil.
func New(onto *ontology.Ontology, store *corpus.Store, faq *FAQ) *System {
	if faq == nil {
		faq = NewFAQ()
	}
	return &System{onto: onto, corpus: store, faq: faq}
}

// FAQ returns the FAQ database.
func (s *System) FAQ() *FAQ { return s.faq }

// Ask answers a learner question: FAQ first (accumulated knowledge),
// then template matching over the ontology, then the learner corpus.
// The whole question is answered against one ontology snapshot.
func (s *System) Ask(text string) Answer {
	return s.AskWith(s.onto.Snapshot(), text)
}

// AskWith answers against a caller-pinned snapshot (the supervisor pins
// one snapshot per message).
func (s *System) AskWith(snap *ontology.Snapshot, text string) Answer {
	tokens := linkgrammar.Tokenize(text)
	ans := Answer{Question: text}
	if len(tokens) == 0 {
		return ans
	}
	ans.Terms = snap.ExtractTerms(tokens)

	// FAQ hit: a previously answered, equivalent question.
	if entry, ok := s.faq.Lookup(text); ok {
		ans.Answered = true
		ans.Text = entry.Answer
		ans.Source = "faq"
		ans.Template = entry.Template
		s.faq.Record(text, entry.Answer, entry.Template)
		return ans
	}

	kind, a := s.answerByTemplate(snap, tokens, ans.Terms)
	ans.Template = kind
	if a != "" {
		ans.Answered = true
		ans.Text = a
		ans.Source = "ontology"
		s.faq.Record(text, a, kind)
		return ans
	}

	// Corpus fallback: a correct recorded sentence mentioning the terms.
	if s.corpus != nil && len(ans.Terms) > 0 {
		topics := make([]string, len(ans.Terms))
		for i, t := range ans.Terms {
			topics[i] = t.Item.Name
		}
		if sugg := s.corpus.Suggest(tokens, topics, 1); len(sugg) > 0 && sugg[0].Score > 0.2 {
			ans.Answered = true
			ans.Text = "From earlier discussion: \"" + sugg[0].Record.Text + "\""
			ans.Source = "corpus"
			return ans
		}
	}
	return ans
}

// answerByTemplate matches the token stream against the interrogative
// templates and produces an ontology-backed answer.
func (s *System) answerByTemplate(snap *ontology.Snapshot, tokens []string, terms []ontology.TermMatch) (TemplateKind, string) {
	if len(tokens) == 0 {
		return TemplateNone, ""
	}
	has := func(words ...string) bool {
		for _, t := range tokens {
			for _, w := range words {
				if t == w {
					return true
				}
			}
		}
		return false
	}
	first := tokens[0]

	// "the relations of X and Y", "what is the relation between X and Y"
	if has("relation", "relations", "relationship") && len(terms) >= 2 {
		return TemplateRelations, s.answerRelations(snap, terms[0].Item, terms[1].Item)
	}

	switch {
	case first == "what" || first == "what's":
		// "which X has Y" phrased with what: "what structure has push"
		if has("has", "have", "supports", "support", "contains", "contain", "offers", "offer") && len(terms) >= 1 {
			if ans := s.answerWhichHas(snap, tokens, terms); ans != "" {
				return TemplateWhichHas, ans
			}
		}
		if len(terms) >= 1 {
			return TemplateDefinition, s.answerDefinition(snap, terms[0].Item)
		}
		return TemplateDefinition, ""
	case first == "which":
		if ans := s.answerWhichHas(snap, tokens, terms); ans != "" {
			return TemplateWhichHas, ans
		}
		return TemplateWhichHas, ""
	case first == "does" || first == "do" || first == "can":
		if len(terms) >= 2 {
			concept, feature := orient(terms)
			if concept != nil {
				return TemplateHasFeature, s.answerHasFeature(snap, concept, feature)
			}
		}
		return TemplateHasFeature, ""
	case first == "is" || first == "are":
		// "is X a Y": two concepts.
		if len(terms) >= 2 {
			a, b := terms[0].Item, terms[1].Item
			if a.Kind == ontology.KindConcept && b.Kind == ontology.KindConcept {
				return TemplateIsA, s.answerIsA(snap, a, b)
			}
			concept, feature := orient(terms)
			if concept != nil {
				return TemplateHasFeature, s.answerHasFeature(snap, concept, feature)
			}
		}
		if len(terms) == 1 {
			// "is a stack useful?" — answer with the definition.
			return TemplateDefinition, s.answerDefinition(snap, terms[0].Item)
		}
		return TemplateIsA, ""
	case first == "how" || first == "why":
		if len(terms) >= 1 {
			return TemplateDefinition, s.answerDefinition(snap, terms[0].Item)
		}
	}
	return TemplateNone, ""
}

func (s *System) answerDefinition(snap *ontology.Snapshot, it *ontology.Item) string {
	if it.Definition.Description != "" {
		return it.Definition.Description
	}
	// Synthesize from relations when no prose is stored.
	var parts []string
	if parents := snap.ParentsOf(it.Name); len(parents) > 0 {
		parts = append(parts, fmt.Sprintf("%s is a %s", it.Name, parents[0].Name))
	}
	if ops := snap.OperationsOf(it.Name); len(ops) > 0 {
		names := make([]string, len(ops))
		for i, op := range ops {
			names[i] = op.Name
		}
		parts = append(parts, fmt.Sprintf("it supports %s", strings.Join(names, ", ")))
	}
	if owners := snap.ConceptsWith(it.Name); len(owners) > 0 {
		names := make([]string, len(owners))
		for i, c := range owners {
			names[i] = c.Name
		}
		parts = append(parts, fmt.Sprintf("%s belongs to %s", it.Name, strings.Join(names, ", ")))
	}
	// Structural knowledge: part-of and related-to edges still define
	// an item ("a node is part of a linked list and a tree").
	var partOf, related []string
	for _, r := range snap.Neighbors(it.ID) {
		other := r.To
		forward := r.From == it.ID
		if !forward {
			other = r.From
		}
		target, ok := snap.ByID(other)
		if !ok {
			continue
		}
		switch {
		case r.Kind == ontology.RelPartOf && forward:
			partOf = append(partOf, target.Name)
		case r.Kind == ontology.RelRelatedTo:
			related = append(related, target.Name)
		}
	}
	if len(partOf) > 0 {
		parts = append(parts, fmt.Sprintf("a %s is part of %s", it.Name, strings.Join(partOf, " and ")))
	}
	if len(parts) == 0 && len(related) > 0 {
		parts = append(parts, fmt.Sprintf("%s is related to %s", it.Name, strings.Join(related, " and ")))
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, "; ") + "."
}

func (s *System) answerRelations(snap *ontology.Snapshot, a, b *ontology.Item) string {
	steps := snap.Path(a.Name, b.Name)
	if len(steps) == 0 {
		return fmt.Sprintf("I find no relation between %s and %s in the %s ontology.",
			a.Name, b.Name, snap.Domain())
	}
	d := snap.Distance(a.Name, b.Name)
	return fmt.Sprintf("%s (semantic distance %d).", ontology.DescribePath(steps), d)
}

func (s *System) answerHasFeature(snap *ontology.Snapshot, concept, feature *ontology.Item) string {
	for _, op := range snap.OperationsOf(concept.Name) {
		if op.ID == feature.ID {
			return fmt.Sprintf("Yes, %s has the %s %s.", concept.Name, roleNoun(feature), feature.Name)
		}
	}
	// Property check via direct relation distance.
	if feature.Kind == ontology.KindProperty && snap.Distance(concept.Name, feature.Name) == 1 {
		return fmt.Sprintf("Yes, %s has the property %s.", concept.Name, feature.Name)
	}
	answer := fmt.Sprintf("No, %s does not have %s.", concept.Name, feature.Name)
	if owners := snap.ConceptsWith(feature.Name); len(owners) > 0 {
		names := make([]string, len(owners))
		for i, c := range owners {
			names[i] = c.Name
		}
		answer += fmt.Sprintf(" %s is %s of %s.", feature.Name, aRoleNoun(feature), strings.Join(names, ", "))
	}
	return answer
}

func (s *System) answerWhichHas(snap *ontology.Snapshot, tokens []string, terms []ontology.TermMatch) string {
	// The feature is the operation/property term; an optional concept
	// term ("data structure") restricts the category.
	var feature *ontology.Item
	var category *ontology.Item
	for _, t := range terms {
		switch t.Item.Kind {
		case ontology.KindOperation, ontology.KindProperty:
			if feature == nil {
				feature = t.Item
			}
		case ontology.KindConcept:
			if category == nil {
				category = t.Item
			}
		}
	}
	if feature == nil {
		return ""
	}
	owners := snap.ConceptsWith(feature.Name)
	if category != nil {
		filtered := owners[:0]
		for _, o := range owners {
			if snap.IsA(o.Name, category.Name) {
				filtered = append(filtered, o)
			}
		}
		if len(filtered) > 0 {
			owners = filtered
		}
	}
	if len(owners) == 0 {
		return fmt.Sprintf("No %s in the ontology has %s.", categoryName(category), feature.Name)
	}
	names := make([]string, len(owners))
	for i, o := range owners {
		names[i] = o.Name
	}
	return fmt.Sprintf("%s has the %s %s.", strings.Join(names, ", "), roleNoun(feature), feature.Name)
}

func (s *System) answerIsA(snap *ontology.Snapshot, a, b *ontology.Item) string {
	if snap.IsA(a.Name, b.Name) {
		return fmt.Sprintf("Yes, %s is a %s.", a.Name, b.Name)
	}
	if snap.IsA(b.Name, a.Name) {
		return fmt.Sprintf("Not exactly — %s is a %s, not the other way around.", b.Name, a.Name)
	}
	return fmt.Sprintf("No, %s is not a %s.", a.Name, b.Name)
}

func orient(terms []ontology.TermMatch) (*ontology.Item, *ontology.Item) {
	var concept, feature *ontology.Item
	for _, t := range terms {
		switch t.Item.Kind {
		case ontology.KindConcept:
			if concept == nil {
				concept = t.Item
			}
		default:
			if feature == nil {
				feature = t.Item
			}
		}
	}
	if concept == nil || feature == nil {
		return nil, nil
	}
	return concept, feature
}

func roleNoun(it *ontology.Item) string {
	if it.Kind == ontology.KindProperty {
		return "property"
	}
	return "operation"
}

func aRoleNoun(it *ontology.Item) string {
	if it.Kind == ontology.KindProperty {
		return "a property"
	}
	return "an operation"
}

func categoryName(category *ontology.Item) string {
	if category == nil {
		return "item"
	}
	return category.Name
}

// NormalizeQuestion reduces a question to its content-token key so that
// trivially rephrased questions share an FAQ entry.
func NormalizeQuestion(text string) string {
	tokens := sentence.ContentTokens(linkgrammar.Tokenize(text))
	return strings.Join(tokens, " ")
}
