package qa

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	return New(ontology.BuildCourseOntology(), nil, nil)
}

func TestWhatIsStack(t *testing.T) {
	// The paper's own example: "What is Stack?" answers with the stack
	// definition from the knowledge ontology.
	s := newSystem(t)
	ans := s.Ask("What is stack?")
	if !ans.Answered {
		t.Fatal("unanswered")
	}
	if ans.Template != TemplateDefinition {
		t.Errorf("template = %s, want what-is", ans.Template)
	}
	if !strings.Contains(ans.Text, "Last In, First Out") {
		t.Errorf("answer = %q, want the LIFO definition", ans.Text)
	}
	if ans.Source != "ontology" {
		t.Errorf("source = %s", ans.Source)
	}
}

func TestWhichHasPush(t *testing.T) {
	// Paper example: "Which data structure has the method push?"
	s := newSystem(t)
	ans := s.Ask("Which data structure has the method push?")
	if !ans.Answered {
		t.Fatal("unanswered")
	}
	if ans.Template != TemplateWhichHas {
		t.Errorf("template = %s", ans.Template)
	}
	if !strings.Contains(ans.Text, "stack") {
		t.Errorf("answer = %q, want stack", ans.Text)
	}
}

func TestDoesStackHavePop(t *testing.T) {
	// Paper example: "Does stack have pop method?"
	s := newSystem(t)
	ans := s.Ask("Does stack have pop method?")
	if !ans.Answered || ans.Template != TemplateHasFeature {
		t.Fatalf("answered=%v template=%s", ans.Answered, ans.Template)
	}
	if !strings.HasPrefix(ans.Text, "Yes") {
		t.Errorf("answer = %q, want affirmative", ans.Text)
	}

	neg := s.Ask("Does a tree have a pop method?")
	if !neg.Answered {
		t.Fatal("unanswered")
	}
	if !strings.HasPrefix(neg.Text, "No") {
		t.Errorf("answer = %q, want negative", neg.Text)
	}
	if !strings.Contains(neg.Text, "stack") {
		t.Errorf("negative answer should redirect to stack: %q", neg.Text)
	}
}

func TestRelationsOf(t *testing.T) {
	s := newSystem(t)
	ans := s.Ask("What is the relation between a stack and a queue?")
	if !ans.Answered || ans.Template != TemplateRelations {
		t.Fatalf("answered=%v template=%s text=%q", ans.Answered, ans.Template, ans.Text)
	}
	if !strings.Contains(ans.Text, "semantic distance") {
		t.Errorf("answer should report the distance: %q", ans.Text)
	}
	ans2 := s.Ask("The relations of the tree and the pop?")
	if !ans2.Answered || ans2.Template != TemplateRelations {
		t.Fatalf("answered=%v template=%s", ans2.Answered, ans2.Template)
	}
}

func TestIsA(t *testing.T) {
	s := newSystem(t)
	yes := s.Ask("Is a heap a binary tree?")
	if !yes.Answered || !strings.HasPrefix(yes.Text, "Yes") {
		t.Errorf("is-a: %+v", yes)
	}
	no := s.Ask("Is a stack a queue?")
	if !no.Answered || !strings.HasPrefix(no.Text, "No") {
		t.Errorf("is-a negative: %+v", no)
	}
	inverted := s.Ask("Is a tree a binary tree?")
	if !inverted.Answered || !strings.Contains(inverted.Text, "Not exactly") {
		t.Errorf("inverted is-a: %+v", inverted)
	}
}

func TestOutOfOntologyUnanswered(t *testing.T) {
	s := newSystem(t)
	ans := s.Ask("What is a frobnicator?")
	if ans.Answered {
		t.Errorf("should not answer out-of-ontology question, got %q", ans.Text)
	}
}

func TestFAQAccumulationAndHit(t *testing.T) {
	s := newSystem(t)
	first := s.Ask("What is a stack?")
	if !first.Answered || first.Source != "ontology" {
		t.Fatalf("first ask: %+v", first)
	}
	// A rephrasing with the same content tokens hits the FAQ.
	second := s.Ask("what is the stack")
	if !second.Answered {
		t.Fatal("second ask unanswered")
	}
	if second.Source != "faq" {
		t.Errorf("second ask source = %s, want faq", second.Source)
	}
	entry, ok := s.FAQ().Lookup("What is a stack?")
	if !ok {
		t.Fatal("faq entry missing")
	}
	if entry.Count < 2 {
		t.Errorf("faq count = %d, want >= 2", entry.Count)
	}
}

func TestFAQTopOrdering(t *testing.T) {
	f := NewFAQ()
	base := time.Date(2026, 6, 11, 9, 0, 0, 0, time.UTC)
	f.SetClock(func() time.Time { return base })
	for i := 0; i < 5; i++ {
		f.Record("What is a stack?", "A stack is ...", TemplateDefinition)
	}
	for i := 0; i < 2; i++ {
		f.Record("What is a queue?", "A queue is ...", TemplateDefinition)
	}
	f.Record("Does stack have pop?", "Yes.", TemplateHasFeature)
	top := f.Top(2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].Count != 5 || !strings.Contains(top[0].Question, "stack") {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Count != 2 {
		t.Errorf("top[1] = %+v", top[1])
	}
	if f.Len() != 3 {
		t.Errorf("len = %d", f.Len())
	}
	rendered := f.Render(3)
	if !strings.Contains(rendered, "5×") && !strings.Contains(rendered, "(5") {
		t.Errorf("render should show counts: %q", rendered)
	}
}

func TestFAQSaveLoad(t *testing.T) {
	f := NewFAQ()
	f.Record("What is a stack?", "A stack is a LIFO structure.", TemplateDefinition)
	f.Record("Does stack have pop?", "Yes.", TemplateHasFeature)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadFAQ(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d", back.Len())
	}
	e, ok := back.Lookup("what is a stack")
	if !ok || e.Answer != "A stack is a LIFO structure." {
		t.Errorf("entry = %+v ok=%v", e, ok)
	}
}

func TestCorpusFallback(t *testing.T) {
	store := corpus.NewStore()
	text := "The heapify operation restores the heap property."
	store.Add(corpus.Record{
		Text: text, Tokens: linkgrammar.Tokenize(text),
		Verdict: corpus.VerdictCorrect, Topics: []string{"heapify", "heap"},
	})
	s := New(ontology.BuildCourseOntology(), store, nil)
	// "why" with a term answers by definition; pick a phrasing no
	// template answers: an unknown verb with known terms.
	ans := s.Ask("Could someone explain heapify restores heap property?")
	if !ans.Answered {
		t.Skip("corpus fallback threshold not met for this phrasing")
	}
	if ans.Source != "corpus" && ans.Source != "ontology" {
		t.Errorf("source = %s", ans.Source)
	}
}

func TestNormalizeQuestion(t *testing.T) {
	a := NormalizeQuestion("What is a Stack?")
	b := NormalizeQuestion("what is the stack")
	if a != b {
		t.Errorf("normalization differs: %q vs %q", a, b)
	}
	if NormalizeQuestion("???") != "" {
		t.Errorf("punctuation-only question should normalize to empty")
	}
}

func TestFAQRecordRefreshesAnswerAndTemplate(t *testing.T) {
	f := NewFAQ()
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	step := 0
	f.SetClock(func() time.Time {
		step++
		return t0.Add(time.Duration(step) * time.Minute)
	})
	f.Record("What is a stack?", "A stack is a thing.", TemplateNone)
	// A corrected answer for the same normalized question must replace
	// the stale one, not be silently dropped.
	f.Record("what is a STACK?", "A stack is a LIFO structure.", TemplateDefinition)
	e, ok := f.Lookup("what is a stack")
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Answer != "A stack is a LIFO structure." {
		t.Errorf("Answer = %q, want the corrected answer", e.Answer)
	}
	if e.Template != TemplateDefinition {
		t.Errorf("Template = %v, want TemplateDefinition", e.Template)
	}
	if e.Count != 2 {
		t.Errorf("Count = %d, want 2", e.Count)
	}
	if e.Question != "What is a stack?" {
		t.Errorf("Question = %q, want the first raw phrasing", e.Question)
	}
	if !e.First.Equal(t0.Add(time.Minute)) {
		t.Errorf("First = %v, want the original sighting", e.First)
	}
	if !e.Last.After(e.First) {
		t.Errorf("Last = %v, want after First", e.Last)
	}
}

func TestFAQSaveLoadJournalLSNRoundTrip(t *testing.T) {
	f := NewFAQ()
	f.Record("What is a stack?", "A stack is a LIFO structure.", TemplateDefinition)
	f.SetJournalLSN(7)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFAQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.JournalLSN(); got != 7 {
		t.Errorf("JournalLSN = %d, want 7", got)
	}
	if back.Len() != 1 {
		t.Errorf("Len = %d, want 1", back.Len())
	}
}

func TestFAQApplyReplaysWithoutReJournaling(t *testing.T) {
	f := NewFAQ()
	calls := 0
	f.SetObserver(func(FAQEvent) uint64 { calls++; return uint64(calls) })
	at := time.Date(2026, 2, 2, 12, 0, 0, 0, time.UTC)
	f.Apply(FAQEvent{Question: "What is a queue?", Answer: "A FIFO structure.", Template: TemplateDefinition, Time: at})
	if calls != 0 {
		t.Errorf("Apply notified the observer %d times, want 0", calls)
	}
	e, ok := f.Lookup("what is a queue")
	if !ok || !e.First.Equal(at) {
		t.Errorf("entry = %+v ok=%v, want First = event time", e, ok)
	}
	f.Record("What is a queue?", "A FIFO structure.", TemplateDefinition)
	if calls != 1 {
		t.Errorf("Record notified the observer %d times, want 1", calls)
	}
}
