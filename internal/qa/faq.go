package qa

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry is one accumulated question/answer pair.
type Entry struct {
	// Key is the normalized question (content tokens).
	Key string `json:"key"`
	// Question is the first raw phrasing seen.
	Question string       `json:"question"`
	Answer   string       `json:"answer"`
	Template TemplateKind `json:"template"`
	Count    int          `json:"count"`
	First    time.Time    `json:"first"`
	Last     time.Time    `json:"last"`
}

// FAQEvent is one journaled FAQ mutation, carrying the observed time so
// First/Last survive a crash-replay unchanged.
type FAQEvent struct {
	Question string       `json:"question"`
	Answer   string       `json:"answer"`
	Template TemplateKind `json:"template"`
	Time     time.Time    `json:"time"`
}

// FAQObserver is the write-ahead-log hook: it receives every Record
// mutation and returns the log sequence number it was journaled under.
// Invoked under the FAQ lock, so state and JournalLSN move together.
type FAQObserver func(FAQEvent) uint64

// FAQ is the frequency-counted question/answer database of §4.4. When
// enough QA pairs accumulate, Top returns the most frequent pairs — the
// paper's "powerful learning tool for the learners".
type FAQ struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	now     func() time.Time

	observer FAQObserver
	lsn      uint64
}

// NewFAQ returns an empty FAQ database.
func NewFAQ() *FAQ {
	return &FAQ{entries: make(map[string]*Entry), now: time.Now}
}

// SetClock overrides the time source (tests).
func (f *FAQ) SetClock(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = now
}

// SetObserver installs the journal hook (nil to detach).
func (f *FAQ) SetObserver(fn FAQObserver) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observer = fn
}

// JournalLSN returns the highest WAL sequence number reflected in the
// FAQ's state (0 when never journaled).
func (f *FAQ) JournalLSN() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.lsn
}

// SetJournalLSN records the WAL position the state corresponds to
// (used by recovery after replaying the journal).
func (f *FAQ) SetJournalLSN(v uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lsn = v
}

// Record stores (or bumps) a question/answer pair. Re-recording an
// existing question refreshes its Answer and Template — a corrected
// answer or a newly templated phrasing must not be dropped — while
// Count accumulates, First stays at the original sighting and Question
// keeps the first raw phrasing.
func (f *FAQ) Record(question, answer string, template TemplateKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ev := FAQEvent{Question: question, Answer: answer, Template: template, Time: f.now()}
	f.applyLocked(ev, true)
}

// Apply replays a journaled event without re-journaling it (the
// recovery path of internal/journal).
func (f *FAQ) Apply(ev FAQEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applyLocked(ev, false)
}

func (f *FAQ) applyLocked(ev FAQEvent, notify bool) {
	key := NormalizeQuestion(ev.Question)
	if key == "" || ev.Answer == "" {
		return
	}
	e, ok := f.entries[key]
	if !ok {
		e = &Entry{
			Key:      key,
			Question: ev.Question,
			First:    ev.Time,
		}
		f.entries[key] = e
	}
	e.Answer = ev.Answer
	e.Template = ev.Template
	e.Count++
	if ev.Time.After(e.Last) {
		e.Last = ev.Time
	}
	if notify && f.observer != nil {
		f.lsn = f.observer(ev)
	}
}

// Lookup finds an entry matching the (normalized) question.
func (f *FAQ) Lookup(question string) (Entry, bool) {
	key := NormalizeQuestion(question)
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Len returns the number of distinct QA pairs.
func (f *FAQ) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.entries)
}

// Top returns the n most frequently asked entries.
func (f *FAQ) Top(n int) []Entry {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Entry, 0, len(f.entries))
	for _, e := range f.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Render formats the top-n FAQ as learner-facing text.
func (f *FAQ) Render(n int) string {
	top := f.Top(n)
	if len(top) == 0 {
		return "No frequently asked questions yet."
	}
	var b strings.Builder
	b.WriteString("Frequently asked questions:\n")
	for i, e := range top {
		fmt.Fprintf(&b, "%d. (%d×) %s\n   %s\n", i+1, e.Count, e.Question, e.Answer)
	}
	return b.String()
}

// faqHeader is the optional first line of a journaled FAQ file.
type faqHeader struct {
	JournalLSN uint64 `json:"journalLSN"`
}

const faqHeaderPrefix = `{"journalLSN":`

// Save writes the FAQ as JSON lines. A journaled FAQ leads with a
// header line recording the WAL position the snapshot covers.
func (f *FAQ) Save(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.entries))
	for k := range f.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if f.lsn > 0 {
		if err := enc.Encode(faqHeader{JournalLSN: f.lsn}); err != nil {
			return fmt.Errorf("encode faq header: %w", err)
		}
	}
	for _, k := range keys {
		if err := enc.Encode(f.entries[k]); err != nil {
			return fmt.Errorf("encode faq entry %q: %w", k, err)
		}
	}
	return bw.Flush()
}

// LoadFAQ reads JSON lines into a fresh FAQ.
func LoadFAQ(r io.Reader) (*FAQ, error) {
	f := NewFAQ()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, faqHeaderPrefix) {
			var h faqHeader
			if err := json.Unmarshal([]byte(text), &h); err != nil {
				return nil, fmt.Errorf("faq header line %d: %w", line, err)
			}
			f.lsn = h.JournalLSN
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("faq line %d: %w", line, err)
		}
		f.entries[e.Key] = &e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read faq: %w", err)
	}
	return f, nil
}
