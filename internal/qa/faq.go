package qa

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry is one accumulated question/answer pair.
type Entry struct {
	// Key is the normalized question (content tokens).
	Key string `json:"key"`
	// Question is the first raw phrasing seen.
	Question string       `json:"question"`
	Answer   string       `json:"answer"`
	Template TemplateKind `json:"template"`
	Count    int          `json:"count"`
	First    time.Time    `json:"first"`
	Last     time.Time    `json:"last"`
}

// FAQ is the frequency-counted question/answer database of §4.4. When
// enough QA pairs accumulate, Top returns the most frequent pairs — the
// paper's "powerful learning tool for the learners".
type FAQ struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	now     func() time.Time
}

// NewFAQ returns an empty FAQ database.
func NewFAQ() *FAQ {
	return &FAQ{entries: make(map[string]*Entry), now: time.Now}
}

// SetClock overrides the time source (tests).
func (f *FAQ) SetClock(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = now
}

// Record stores (or bumps) a question/answer pair.
func (f *FAQ) Record(question, answer string, template TemplateKind) {
	key := NormalizeQuestion(question)
	if key == "" || answer == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[key]
	if !ok {
		e = &Entry{
			Key:      key,
			Question: question,
			Answer:   answer,
			Template: template,
			First:    f.now(),
		}
		f.entries[key] = e
	}
	e.Count++
	e.Last = f.now()
}

// Lookup finds an entry matching the (normalized) question.
func (f *FAQ) Lookup(question string) (Entry, bool) {
	key := NormalizeQuestion(question)
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Len returns the number of distinct QA pairs.
func (f *FAQ) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.entries)
}

// Top returns the n most frequently asked entries.
func (f *FAQ) Top(n int) []Entry {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Entry, 0, len(f.entries))
	for _, e := range f.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Render formats the top-n FAQ as learner-facing text.
func (f *FAQ) Render(n int) string {
	top := f.Top(n)
	if len(top) == 0 {
		return "No frequently asked questions yet."
	}
	var b strings.Builder
	b.WriteString("Frequently asked questions:\n")
	for i, e := range top {
		fmt.Fprintf(&b, "%d. (%d×) %s\n   %s\n", i+1, e.Count, e.Question, e.Answer)
	}
	return b.String()
}

// Save writes the FAQ as JSON lines.
func (f *FAQ) Save(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.entries))
	for k := range f.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, k := range keys {
		if err := enc.Encode(f.entries[k]); err != nil {
			return fmt.Errorf("encode faq entry %q: %w", k, err)
		}
	}
	return bw.Flush()
}

// LoadFAQ reads JSON lines into a fresh FAQ.
func LoadFAQ(r io.Reader) (*FAQ, error) {
	f := NewFAQ()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("faq line %d: %w", line, err)
		}
		f.entries[e.Key] = &e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read faq: %w", err)
	}
	return f, nil
}
