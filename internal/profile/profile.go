// Package profile implements the User Profile database of the paper's
// architecture (Fig. 3): per-learner identity, activity counters and
// mistake statistics that feed the statistic analyzer and the teaching
// material recommendation.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode"
)

// Profile aggregates one learner's history.
type Profile struct {
	User      string    `json:"user"`
	FirstSeen time.Time `json:"firstSeen"`
	LastSeen  time.Time `json:"lastSeen"`

	Messages       int `json:"messages"`
	SyntaxErrors   int `json:"syntaxErrors"`
	SemanticErrors int `json:"semanticErrors"`
	Questions      int `json:"questions"`

	// MistakeKinds counts fine-grained error tags ("agreement",
	// "determiner", "word-order", ...).
	MistakeKinds map[string]int `json:"mistakeKinds,omitempty"`
	// TopicCounts counts ontology terms the learner has talked about.
	TopicCounts map[string]int `json:"topicCounts,omitempty"`
}

// ErrorRate is the fraction of messages with any error.
func (p *Profile) ErrorRate() float64 {
	if p.Messages == 0 {
		return 0
	}
	return float64(p.SyntaxErrors+p.SemanticErrors) / float64(p.Messages)
}

// Proficiency is a [0,1] score: 1 means no recorded mistakes.
func (p *Profile) Proficiency() float64 {
	return 1 - p.ErrorRate()
}

// TopTopics returns the learner's most-discussed ontology terms.
func (p *Profile) TopTopics(n int) []string {
	return topKeys(p.TopicCounts, n)
}

// TopMistakes returns the learner's most frequent mistake kinds.
func (p *Profile) TopMistakes(n int) []string {
	return topKeys(p.MistakeKinds, n)
}

func topKeys(m map[string]int, n int) []string {
	type kv struct {
		k string
		v int
	}
	rows := make([]kv, 0, len(m))
	for k, v := range m {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].k
	}
	return out
}

// EventKind names a journaled profile mutation.
type EventKind string

// The four journaled profile mutations.
const (
	EventMessage       EventKind = "message"
	EventSyntaxError   EventKind = "syntax-error"
	EventSemanticError EventKind = "semantic-error"
	EventQuestion      EventKind = "question"
)

// Event is one profile mutation, carrying everything needed to replay
// it deterministically (including the observed time, so FirstSeen and
// LastSeen survive a crash-replay unchanged).
type Event struct {
	Kind   EventKind `json:"kind"`
	User   string    `json:"user"`
	Time   time.Time `json:"time"`
	Topics []string  `json:"topics,omitempty"`
	Tags   []string  `json:"tags,omitempty"`
}

// Observer is the write-ahead-log hook: it receives every Record*
// mutation and returns the log sequence number it was journaled under.
// Invoked under the store lock, so state and JournalLSN move together.
type Observer func(Event) uint64

// Store is the thread-safe profile database.
type Store struct {
	mu       sync.RWMutex
	profiles map[string]*Profile
	now      func() time.Time

	observer Observer
	lsn      uint64
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{profiles: make(map[string]*Profile), now: time.Now}
}

// SetObserver installs the journal hook (nil to detach).
func (s *Store) SetObserver(fn Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// JournalLSN returns the highest WAL sequence number reflected in the
// store's state (0 when never journaled).
func (s *Store) JournalLSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lsn
}

// SetJournalLSN records the WAL position the state corresponds to
// (used by recovery after replaying the journal).
func (s *Store) SetJournalLSN(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lsn = v
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Get returns a copy of the profile, if present.
func (s *Store) Get(user string) (Profile, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[user]
	if !ok {
		return Profile{}, false
	}
	return clone(p), true
}

// Update applies fn to the (possibly new) profile of user. Update is a
// free-form escape hatch and is NOT journaled; durable callers use the
// Record* methods, whose mutations flow through the Observer.
func (s *Store) Update(user string, fn func(*Profile)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	p := s.profileLocked(user, now)
	p.LastSeen = now
	fn(p)
}

// profileLocked returns the profile for user, creating it (FirstSeen =
// at) if absent. Callers hold s.mu.
func (s *Store) profileLocked(user string, at time.Time) *Profile {
	p, ok := s.profiles[user]
	if !ok {
		p = &Profile{
			User:         user,
			FirstSeen:    at,
			MistakeKinds: make(map[string]int),
			TopicCounts:  make(map[string]int),
		}
		s.profiles[user] = p
	}
	return p
}

// applyLocked mutates the store according to ev; when notify is set and
// an observer is attached, the event is journaled and the store's LSN
// advances — atomically with the mutation, under s.mu.
func (s *Store) applyLocked(ev Event, notify bool) {
	p := s.profileLocked(ev.User, ev.Time)
	if ev.Time.After(p.LastSeen) {
		p.LastSeen = ev.Time
	}
	switch ev.Kind {
	case EventMessage:
		p.Messages++
		for _, t := range ev.Topics {
			p.TopicCounts[t]++
		}
	case EventSyntaxError:
		p.SyntaxErrors++
		for _, t := range ev.Tags {
			p.MistakeKinds[t]++
		}
	case EventSemanticError:
		p.SemanticErrors++
		for _, t := range ev.Tags {
			p.MistakeKinds[t]++
		}
	case EventQuestion:
		p.Questions++
	}
	if notify && s.observer != nil {
		s.lsn = s.observer(ev)
	}
}

// Apply replays a journaled event without re-journaling it (the
// recovery path of internal/journal).
func (s *Store) Apply(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(ev, false)
}

func (s *Store) record(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev.Time = s.now()
	s.applyLocked(ev, true)
}

// RecordMessage bumps the message counter and topic counts.
func (s *Store) RecordMessage(user string, topics []string) {
	s.record(Event{Kind: EventMessage, User: user, Topics: topics})
}

// RecordSyntaxError counts a syntax mistake with optional fine-grained
// tags.
func (s *Store) RecordSyntaxError(user string, tags ...string) {
	s.record(Event{Kind: EventSyntaxError, User: user, Tags: tags})
}

// RecordSemanticError counts a semantic mistake.
func (s *Store) RecordSemanticError(user string, tags ...string) {
	s.record(Event{Kind: EventSemanticError, User: user, Tags: tags})
}

// RecordQuestion counts a question routed to the QA system.
func (s *Store) RecordQuestion(user string) {
	s.record(Event{Kind: EventQuestion, User: user})
}

// Len returns the number of profiles.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.profiles)
}

// Snapshot returns copies of all profiles sorted by user name.
func (s *Store) Snapshot() []Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		out = append(out, clone(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// savedStore is the journaled on-disk form: the profile array plus the
// WAL position the snapshot covers.
type savedStore struct {
	JournalLSN uint64    `json:"journalLSN"`
	Profiles   []Profile `json:"profiles"`
}

// Save writes all profiles. An un-journaled store keeps the legacy
// plain-array format; a journaled store wraps the array in an object
// carrying the WAL position the snapshot covers (state and LSN are
// captured under one lock, so they are always consistent).
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	lsn := s.lsn
	snap := make([]Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		snap = append(snap, clone(p))
	}
	s.mu.RUnlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i].User < snap[j].User })

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	var v interface{} = snap
	if lsn > 0 {
		v = savedStore{JournalLSN: lsn, Profiles: snap}
	}
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encode profiles: %w", err)
	}
	return nil
}

// Load reads profiles into a fresh store, accepting both the legacy
// plain-array format and the journaled object format.
func Load(r io.Reader) (*Store, error) {
	var raw json.RawMessage
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("decode profiles: %w", err)
	}
	var rows []Profile
	var lsn uint64
	trimmed := strings.TrimLeftFunc(string(raw), unicode.IsSpace)
	if strings.HasPrefix(trimmed, "{") {
		var saved savedStore
		if err := json.Unmarshal(raw, &saved); err != nil {
			return nil, fmt.Errorf("decode profiles: %w", err)
		}
		rows, lsn = saved.Profiles, saved.JournalLSN
	} else if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("decode profiles: %w", err)
	}
	s := NewStore()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lsn = lsn
	for i := range rows {
		p := rows[i]
		if p.MistakeKinds == nil {
			p.MistakeKinds = make(map[string]int)
		}
		if p.TopicCounts == nil {
			p.TopicCounts = make(map[string]int)
		}
		s.profiles[p.User] = &p
	}
	return s, nil
}

func clone(p *Profile) Profile {
	out := *p
	out.MistakeKinds = make(map[string]int, len(p.MistakeKinds))
	for k, v := range p.MistakeKinds {
		out.MistakeKinds[k] = v
	}
	out.TopicCounts = make(map[string]int, len(p.TopicCounts))
	for k, v := range p.TopicCounts {
		out.TopicCounts[k] = v
	}
	return out
}
