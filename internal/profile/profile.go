// Package profile implements the User Profile database of the paper's
// architecture (Fig. 3): per-learner identity, activity counters and
// mistake statistics that feed the statistic analyzer and the teaching
// material recommendation.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Profile aggregates one learner's history.
type Profile struct {
	User      string    `json:"user"`
	FirstSeen time.Time `json:"firstSeen"`
	LastSeen  time.Time `json:"lastSeen"`

	Messages       int `json:"messages"`
	SyntaxErrors   int `json:"syntaxErrors"`
	SemanticErrors int `json:"semanticErrors"`
	Questions      int `json:"questions"`

	// MistakeKinds counts fine-grained error tags ("agreement",
	// "determiner", "word-order", ...).
	MistakeKinds map[string]int `json:"mistakeKinds,omitempty"`
	// TopicCounts counts ontology terms the learner has talked about.
	TopicCounts map[string]int `json:"topicCounts,omitempty"`
}

// ErrorRate is the fraction of messages with any error.
func (p *Profile) ErrorRate() float64 {
	if p.Messages == 0 {
		return 0
	}
	return float64(p.SyntaxErrors+p.SemanticErrors) / float64(p.Messages)
}

// Proficiency is a [0,1] score: 1 means no recorded mistakes.
func (p *Profile) Proficiency() float64 {
	return 1 - p.ErrorRate()
}

// TopTopics returns the learner's most-discussed ontology terms.
func (p *Profile) TopTopics(n int) []string {
	return topKeys(p.TopicCounts, n)
}

// TopMistakes returns the learner's most frequent mistake kinds.
func (p *Profile) TopMistakes(n int) []string {
	return topKeys(p.MistakeKinds, n)
}

func topKeys(m map[string]int, n int) []string {
	type kv struct {
		k string
		v int
	}
	rows := make([]kv, 0, len(m))
	for k, v := range m {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].k
	}
	return out
}

// Store is the thread-safe profile database.
type Store struct {
	mu       sync.RWMutex
	profiles map[string]*Profile
	now      func() time.Time
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{profiles: make(map[string]*Profile), now: time.Now}
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Get returns a copy of the profile, if present.
func (s *Store) Get(user string) (Profile, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[user]
	if !ok {
		return Profile{}, false
	}
	return clone(p), true
}

// Update applies fn to the (possibly new) profile of user.
func (s *Store) Update(user string, fn func(*Profile)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.profiles[user]
	if !ok {
		p = &Profile{
			User:         user,
			FirstSeen:    s.now(),
			MistakeKinds: make(map[string]int),
			TopicCounts:  make(map[string]int),
		}
		s.profiles[user] = p
	}
	p.LastSeen = s.now()
	fn(p)
}

// RecordMessage bumps the message counter and topic counts.
func (s *Store) RecordMessage(user string, topics []string) {
	s.Update(user, func(p *Profile) {
		p.Messages++
		for _, t := range topics {
			p.TopicCounts[t]++
		}
	})
}

// RecordSyntaxError counts a syntax mistake with optional fine-grained
// tags.
func (s *Store) RecordSyntaxError(user string, tags ...string) {
	s.Update(user, func(p *Profile) {
		p.SyntaxErrors++
		for _, t := range tags {
			p.MistakeKinds[t]++
		}
	})
}

// RecordSemanticError counts a semantic mistake.
func (s *Store) RecordSemanticError(user string, tags ...string) {
	s.Update(user, func(p *Profile) {
		p.SemanticErrors++
		for _, t := range tags {
			p.MistakeKinds[t]++
		}
	})
}

// RecordQuestion counts a question routed to the QA system.
func (s *Store) RecordQuestion(user string) {
	s.Update(user, func(p *Profile) { p.Questions++ })
}

// Len returns the number of profiles.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.profiles)
}

// Snapshot returns copies of all profiles sorted by user name.
func (s *Store) Snapshot() []Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		out = append(out, clone(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// Save writes all profiles as a JSON array.
func (s *Store) Save(w io.Writer) error {
	snap := s.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("encode profiles: %w", err)
	}
	return nil
}

// Load reads a JSON array of profiles into a fresh store.
func Load(r io.Reader) (*Store, error) {
	var rows []Profile
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("decode profiles: %w", err)
	}
	s := NewStore()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range rows {
		p := rows[i]
		if p.MistakeKinds == nil {
			p.MistakeKinds = make(map[string]int)
		}
		if p.TopicCounts == nil {
			p.TopicCounts = make(map[string]int)
		}
		s.profiles[p.User] = &p
	}
	return s, nil
}

func clone(p *Profile) Profile {
	out := *p
	out.MistakeKinds = make(map[string]int, len(p.MistakeKinds))
	for k, v := range p.MistakeKinds {
		out.MistakeKinds[k] = v
	}
	out.TopicCounts = make(map[string]int, len(p.TopicCounts))
	for k, v := range p.TopicCounts {
		out.TopicCounts[k] = v
	}
	return out
}
