package profile

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordingAndRates(t *testing.T) {
	s := NewStore()
	s.RecordMessage("alice", []string{"stack"})
	s.RecordMessage("alice", []string{"stack", "push"})
	s.RecordSyntaxError("alice", "agreement")
	s.RecordQuestion("alice")

	p, ok := s.Get("alice")
	if !ok {
		t.Fatal("alice missing")
	}
	if p.Messages != 2 || p.SyntaxErrors != 1 || p.Questions != 1 {
		t.Errorf("counters = %+v", p)
	}
	if p.TopicCounts["stack"] != 2 {
		t.Errorf("stack topic count = %d", p.TopicCounts["stack"])
	}
	if got := p.ErrorRate(); got != 0.5 {
		t.Errorf("error rate = %v, want 0.5", got)
	}
	if got := p.Proficiency(); got != 0.5 {
		t.Errorf("proficiency = %v, want 0.5", got)
	}
}

func TestZeroMessagesRates(t *testing.T) {
	p := &Profile{}
	if p.ErrorRate() != 0 || p.Proficiency() != 1 {
		t.Errorf("zero-message profile: rate=%v prof=%v", p.ErrorRate(), p.Proficiency())
	}
}

func TestTopTopicsAndMistakes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 3; i++ {
		s.RecordMessage("bob", []string{"stack"})
	}
	s.RecordMessage("bob", []string{"queue"})
	s.RecordSyntaxError("bob", "agreement")
	s.RecordSyntaxError("bob", "agreement")
	s.RecordSyntaxError("bob", "word-order")

	p, _ := s.Get("bob")
	if top := p.TopTopics(1); len(top) != 1 || top[0] != "stack" {
		t.Errorf("TopTopics = %v", top)
	}
	if top := p.TopMistakes(2); len(top) != 2 || top[0] != "agreement" {
		t.Errorf("TopMistakes = %v", top)
	}
	if top := p.TopTopics(10); len(top) != 2 {
		t.Errorf("TopTopics(10) = %v, want both topics", top)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.RecordMessage("carol", []string{"tree"})
	p, _ := s.Get("carol")
	p.TopicCounts["tree"] = 99
	p2, _ := s.Get("carol")
	if p2.TopicCounts["tree"] != 1 {
		t.Error("Get leaks internal map")
	}
}

func TestClockAndTimestamps(t *testing.T) {
	s := NewStore()
	t0 := time.Date(2026, 6, 11, 10, 0, 0, 0, time.UTC)
	now := t0
	s.SetClock(func() time.Time { return now })
	s.RecordMessage("dave", nil)
	now = t0.Add(time.Hour)
	s.RecordMessage("dave", nil)
	p, _ := s.Get("dave")
	if !p.FirstSeen.Equal(t0) {
		t.Errorf("FirstSeen = %v", p.FirstSeen)
	}
	if !p.LastSeen.Equal(t0.Add(time.Hour)) {
		t.Errorf("LastSeen = %v", p.LastSeen)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.RecordMessage("alice", []string{"stack"})
	s.RecordSemanticError("alice", "ontology-violation")
	s.RecordMessage("bob", []string{"queue"})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d, want 2", back.Len())
	}
	p, ok := back.Get("alice")
	if !ok || p.SemanticErrors != 1 || p.MistakeKinds["ontology-violation"] != 1 {
		t.Errorf("alice = %+v", p)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.RecordMessage("race", []string{"stack"})
			}
		}()
	}
	wg.Wait()
	p, _ := s.Get("race")
	if p.Messages != 1600 {
		t.Errorf("messages = %d, want 1600", p.Messages)
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := NewStore()
	for _, u := range []string{"zed", "alice", "mike"} {
		s.RecordMessage(u, nil)
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0].User != "alice" || snap[2].User != "zed" {
		t.Errorf("snapshot order: %v", []string{snap[0].User, snap[1].User, snap[2].User})
	}
}

func TestApplyReplaysEventTimes(t *testing.T) {
	s := NewStore()
	calls := 0
	s.SetObserver(func(Event) uint64 { calls++; return uint64(calls) })
	at := time.Date(2026, 3, 3, 9, 0, 0, 0, time.UTC)
	s.Apply(Event{Kind: EventMessage, User: "alice", Time: at, Topics: []string{"stack"}})
	s.Apply(Event{Kind: EventSyntaxError, User: "alice", Time: at.Add(time.Minute), Tags: []string{"agreement"}})
	if calls != 0 {
		t.Errorf("Apply notified the observer %d times, want 0", calls)
	}
	p, ok := s.Get("alice")
	if !ok {
		t.Fatal("profile missing")
	}
	if p.Messages != 1 || p.SyntaxErrors != 1 {
		t.Errorf("counters = %d msgs, %d syntax errors; want 1,1", p.Messages, p.SyntaxErrors)
	}
	if !p.FirstSeen.Equal(at) {
		t.Errorf("FirstSeen = %v, want the first event time %v", p.FirstSeen, at)
	}
	if !p.LastSeen.Equal(at.Add(time.Minute)) {
		t.Errorf("LastSeen = %v, want the last event time", p.LastSeen)
	}
}

func TestRecordNotifiesObserverAndAdvancesLSN(t *testing.T) {
	s := NewStore()
	var events []Event
	s.SetObserver(func(ev Event) uint64 {
		events = append(events, ev)
		return uint64(len(events))
	})
	s.RecordMessage("bob", []string{"queue"})
	s.RecordQuestion("bob")
	if len(events) != 2 || events[0].Kind != EventMessage || events[1].Kind != EventQuestion {
		t.Fatalf("observer saw %+v", events)
	}
	if events[0].Time.IsZero() {
		t.Error("journaled event carries no timestamp")
	}
	if got := s.JournalLSN(); got != 2 {
		t.Errorf("JournalLSN = %d, want 2", got)
	}
}

func TestSaveLoadJournalLSNRoundTrip(t *testing.T) {
	s := NewStore()
	s.RecordMessage("carol", []string{"tree"})
	s.SetJournalLSN(9)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.JournalLSN(); got != 9 {
		t.Errorf("JournalLSN = %d, want 9", got)
	}
	if p, ok := back.Get("carol"); !ok || p.Messages != 1 {
		t.Errorf("profile = %+v ok=%v", p, ok)
	}
}

func TestLoadLegacyArrayFormat(t *testing.T) {
	legacy := `[{"user":"dave","messages":3,"firstSeen":"2026-01-01T00:00:00Z","lastSeen":"2026-01-02T00:00:00Z"}]`
	s, err := Load(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := s.Get("dave"); !ok || p.Messages != 3 {
		t.Errorf("profile = %+v ok=%v", p, ok)
	}
	if got := s.JournalLSN(); got != 0 {
		t.Errorf("JournalLSN = %d, want 0 for legacy file", got)
	}
}
