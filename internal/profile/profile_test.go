package profile

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestRecordingAndRates(t *testing.T) {
	s := NewStore()
	s.RecordMessage("alice", []string{"stack"})
	s.RecordMessage("alice", []string{"stack", "push"})
	s.RecordSyntaxError("alice", "agreement")
	s.RecordQuestion("alice")

	p, ok := s.Get("alice")
	if !ok {
		t.Fatal("alice missing")
	}
	if p.Messages != 2 || p.SyntaxErrors != 1 || p.Questions != 1 {
		t.Errorf("counters = %+v", p)
	}
	if p.TopicCounts["stack"] != 2 {
		t.Errorf("stack topic count = %d", p.TopicCounts["stack"])
	}
	if got := p.ErrorRate(); got != 0.5 {
		t.Errorf("error rate = %v, want 0.5", got)
	}
	if got := p.Proficiency(); got != 0.5 {
		t.Errorf("proficiency = %v, want 0.5", got)
	}
}

func TestZeroMessagesRates(t *testing.T) {
	p := &Profile{}
	if p.ErrorRate() != 0 || p.Proficiency() != 1 {
		t.Errorf("zero-message profile: rate=%v prof=%v", p.ErrorRate(), p.Proficiency())
	}
}

func TestTopTopicsAndMistakes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 3; i++ {
		s.RecordMessage("bob", []string{"stack"})
	}
	s.RecordMessage("bob", []string{"queue"})
	s.RecordSyntaxError("bob", "agreement")
	s.RecordSyntaxError("bob", "agreement")
	s.RecordSyntaxError("bob", "word-order")

	p, _ := s.Get("bob")
	if top := p.TopTopics(1); len(top) != 1 || top[0] != "stack" {
		t.Errorf("TopTopics = %v", top)
	}
	if top := p.TopMistakes(2); len(top) != 2 || top[0] != "agreement" {
		t.Errorf("TopMistakes = %v", top)
	}
	if top := p.TopTopics(10); len(top) != 2 {
		t.Errorf("TopTopics(10) = %v, want both topics", top)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.RecordMessage("carol", []string{"tree"})
	p, _ := s.Get("carol")
	p.TopicCounts["tree"] = 99
	p2, _ := s.Get("carol")
	if p2.TopicCounts["tree"] != 1 {
		t.Error("Get leaks internal map")
	}
}

func TestClockAndTimestamps(t *testing.T) {
	s := NewStore()
	t0 := time.Date(2026, 6, 11, 10, 0, 0, 0, time.UTC)
	now := t0
	s.SetClock(func() time.Time { return now })
	s.RecordMessage("dave", nil)
	now = t0.Add(time.Hour)
	s.RecordMessage("dave", nil)
	p, _ := s.Get("dave")
	if !p.FirstSeen.Equal(t0) {
		t.Errorf("FirstSeen = %v", p.FirstSeen)
	}
	if !p.LastSeen.Equal(t0.Add(time.Hour)) {
		t.Errorf("LastSeen = %v", p.LastSeen)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.RecordMessage("alice", []string{"stack"})
	s.RecordSemanticError("alice", "ontology-violation")
	s.RecordMessage("bob", []string{"queue"})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d, want 2", back.Len())
	}
	p, ok := back.Get("alice")
	if !ok || p.SemanticErrors != 1 || p.MistakeKinds["ontology-violation"] != 1 {
		t.Errorf("alice = %+v", p)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.RecordMessage("race", []string{"stack"})
			}
		}()
	}
	wg.Wait()
	p, _ := s.Get("race")
	if p.Messages != 1600 {
		t.Errorf("messages = %d, want 1600", p.Messages)
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := NewStore()
	for _, u := range []string{"zed", "alice", "mike"} {
		s.RecordMessage(u, nil)
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0].User != "alice" || snap[2].User != "zed" {
		t.Errorf("snapshot order: %v", []string{snap[0].User, snap[1].User, snap[2].User})
	}
}
