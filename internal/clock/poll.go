package clock

import (
	"runtime"
	"time"
)

// Until polls cond until it returns true or the real-time timeout
// expires, reporting whether the condition was met. The poll cadence
// starts at a goroutine yield (so conditions that are already true, or
// become true within microseconds, cost almost nothing) and backs off
// to short sleeps — never longer than a millisecond, so a met condition
// is observed promptly.
//
// This is the replacement for sleep-and-hope waits in tests and for the
// simulator's quiesce barrier: the caller states WHAT it waits for, and
// the timeout exists only to turn a genuine bug into a clean failure
// instead of a hang.
func Until(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for i := 0; ; i++ {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		if i < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Millisecond)
		}
	}
}
