package clock

import (
	"sync"
	"time"
)

// Virtual is a manually advanced clock. Now returns the same instant
// until Advance moves the hands; tickers fire synchronously inside
// Advance, once per elapsed period, in timestamp order. A Virtual clock
// never reads the wall clock, so code driven by it is deterministic:
// the same sequence of Advance calls yields the same timestamps and the
// same ticker firings every run.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*virtualTicker
}

// NewVirtual returns a virtual clock standing at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration {
	return v.Now().Sub(t)
}

// Advance moves the clock forward by d and delivers every ticker tick
// due in the crossed window, in timestamp order. Tick delivery is a
// non-blocking send into the ticker's 1-buffered channel (a consumer
// that is not listening drops the tick, matching time.Ticker), so the
// whole advance runs under the clock lock: concurrent Advance calls
// serialize and Now never moves backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	target := v.now.Add(d)
	for {
		// Find the earliest pending tick at or before target.
		var next *virtualTicker
		for _, t := range v.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if next == nil || t.next.Before(next.next) {
				next = t
			}
		}
		if next == nil {
			break
		}
		due := next.next
		next.next = due.Add(next.period)
		if v.now.Before(due) {
			v.now = due
		}
		select {
		case next.ch <- due:
		default: // consumer busy: drop, like time.Ticker
		}
	}
	v.now = target
}

// NewTicker returns a ticker that fires during Advance, every period of
// virtual time.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &virtualTicker{
		clock:  v,
		period: d,
		next:   v.now.Add(d),
		ch:     make(chan time.Time, 1),
	}
	v.tickers = append(v.tickers, t)
	return t
}

type virtualTicker struct {
	clock   *Virtual
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped bool
}

func (t *virtualTicker) C() <-chan time.Time { return t.ch }

func (t *virtualTicker) Stop() {
	v := t.clock
	v.mu.Lock()
	defer v.mu.Unlock()
	t.stopped = true
	// Compact the ticker list so long-lived virtual clocks do not
	// accumulate dead tickers. No ordering is maintained — Advance
	// scans for the earliest pending tick on every iteration.
	live := v.tickers[:0]
	for _, other := range v.tickers {
		if !other.stopped {
			live = append(live, other)
		}
	}
	v.tickers = live
}
