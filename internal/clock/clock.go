// Package clock abstracts time for the supervision stack. Production
// code runs on the System clock (plain time.Now / time.NewTicker); the
// scenario simulator (package simulate) and tests inject a Virtual
// clock whose hands only move when the test says so — whole class
// sessions run in milliseconds, background tickers fire exactly when
// told to, and the same seed always produces the same timestamps
// (DESIGN.md D11).
//
// The package also carries the condition-polling helper Until, the
// replacement for the time.Sleep-based waits that used to make the
// pipeline, chat and journal tests latently flaky: instead of guessing
// how long a goroutine needs, callers state the condition they are
// waiting for and poll it cheaply until a real-time deadline.
package clock

import "time"

// Clock supplies the current time and tickers. Implementations must be
// safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time on this clock since t.
	Since(t time.Time) time.Duration
	// NewTicker returns a ticker firing every d on this clock.
	// d must be positive.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the clock-agnostic subset of time.Ticker.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop turns the ticker off. It does not close C.
	Stop()
}

// System is the wall clock.
var System Clock = systemClock{}

// Or returns c, or System when c is nil — the one-liner every Options
// struct uses to default its clock field.
func Or(c Clock) Clock {
	if c == nil {
		return System
	}
	return c
}

type systemClock struct{}

func (systemClock) Now() time.Time                   { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration  { return time.Since(t) }
func (systemClock) NewTicker(d time.Duration) Ticker { return systemTicker{time.NewTicker(d)} }

type systemTicker struct{ t *time.Ticker }

func (s systemTicker) C() <-chan time.Time { return s.t.C }
func (s systemTicker) Stop()               { s.t.Stop() }
