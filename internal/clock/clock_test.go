package clock

import (
	"testing"
	"time"
)

func TestSystemClockTracksWallTime(t *testing.T) {
	before := time.Now()
	got := System.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("System.Now() = %v outside [%v, %v]", got, before, after)
	}
	if d := System.Since(before); d < 0 {
		t.Errorf("System.Since(now) = %v, want >= 0", d)
	}
	tk := System.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("system ticker never fired")
	}
}

func TestVirtualNowAndSince(t *testing.T) {
	start := time.Date(2026, 1, 2, 9, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now = %v, want %v", got, start)
	}
	v.Advance(90 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(90 * time.Second)) {
		t.Fatalf("Now after advance = %v", got)
	}
	if got := v.Since(start); got != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", got)
	}
	v.Advance(0)
	v.Advance(-time.Second)
	if got := v.Now(); !got.Equal(start.Add(90 * time.Second)) {
		t.Fatalf("non-positive Advance moved the clock: %v", got)
	}
}

// takeTick drains one buffered tick, or reports none pending. Ticks are
// delivered synchronously inside Advance into the ticker's 1-buffered
// channel, so no consumer goroutine is needed.
func takeTick(tk Ticker) (time.Time, bool) {
	select {
	case ts := <-tk.C():
		return ts, true
	default:
		return time.Time{}, false
	}
}

func TestVirtualTickerFiresPerPeriod(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	v := NewVirtual(start)
	tk := v.NewTicker(10 * time.Millisecond)
	defer tk.Stop()

	// One period: exactly one tick, stamped at the due time.
	v.Advance(10 * time.Millisecond)
	ts, ok := takeTick(tk)
	if !ok {
		t.Fatal("ticker did not fire on Advance")
	}
	if want := start.Add(10 * time.Millisecond); !ts.Equal(want) {
		t.Errorf("tick at %v, want %v", ts, want)
	}

	// A short advance fires nothing.
	v.Advance(4 * time.Millisecond)
	if ts, ok := takeTick(tk); ok {
		t.Fatalf("unexpected tick at %v", ts)
	}

	// Crossing the next boundary fires again.
	v.Advance(6 * time.Millisecond)
	ts, ok = takeTick(tk)
	if !ok {
		t.Fatal("second tick missing")
	}
	if want := start.Add(20 * time.Millisecond); !ts.Equal(want) {
		t.Errorf("tick at %v, want %v", ts, want)
	}
}

func TestVirtualTickerStopSilences(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	tk := v.NewTicker(time.Second)
	tk.Stop()
	v.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestVirtualTickerDropsWhenConsumerAbsent(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	tk := v.NewTicker(time.Second)
	defer tk.Stop()
	// No consumer: a long advance must not deadlock, and at most one
	// tick is buffered.
	v.Advance(10 * time.Second)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks = %d, want 1 (time.Ticker semantics)", n)
	}
}

func TestVirtualTwoTickersInterleave(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	v := NewVirtual(start)
	fast := v.NewTicker(3 * time.Second)
	slow := v.NewTicker(5 * time.Second)
	defer fast.Stop()
	defer slow.Stop()

	v.Advance(3 * time.Second)
	if ts, ok := takeTick(fast); !ok || !ts.Equal(start.Add(3*time.Second)) {
		t.Fatalf("fast tick = %v, %v; want @3s", ts, ok)
	}
	if ts, ok := takeTick(slow); ok {
		t.Fatalf("slow ticked early at %v", ts)
	}

	v.Advance(2 * time.Second)
	if ts, ok := takeTick(slow); !ok || !ts.Equal(start.Add(5*time.Second)) {
		t.Fatalf("slow tick = %v, %v; want @5s", ts, ok)
	}
	if ts, ok := takeTick(fast); ok {
		t.Fatalf("fast ticked again early at %v", ts)
	}

	v.Advance(time.Second)
	if ts, ok := takeTick(fast); !ok || !ts.Equal(start.Add(6*time.Second)) {
		t.Fatalf("fast tick = %v, %v; want @6s", ts, ok)
	}
}

func TestOrDefaultsToSystem(t *testing.T) {
	if Or(nil) != System {
		t.Error("Or(nil) != System")
	}
	v := NewVirtual(time.Unix(0, 0))
	if Or(v) != Clock(v) {
		t.Error("Or(v) != v")
	}
}

func TestUntil(t *testing.T) {
	if !Until(time.Second, func() bool { return true }) {
		t.Error("immediately-true condition reported false")
	}
	start := time.Now()
	if Until(30*time.Millisecond, func() bool { return false }) {
		t.Error("never-true condition reported true")
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("Until returned after %v, before the timeout", elapsed)
	}
	// A condition that flips mid-wait is seen.
	flip := time.Now().Add(10 * time.Millisecond)
	if !Until(time.Second, func() bool { return time.Now().After(flip) }) {
		t.Error("condition that became true was missed")
	}
}
