package angel

import (
	"strings"
	"testing"

	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
)

func TestRepairDisabled(t *testing.T) {
	parser, err := linkgrammar.NewEnglishParser()
	if err != nil {
		t.Fatal(err)
	}
	a := New(parser, nil, nil, Options{MaxSuggestions: 1, Repair: false})
	rep, err := a.Check("The stack have a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("error not detected")
	}
	if rep.Repaired != "" {
		t.Errorf("repair produced despite Repair=false: %q", rep.Repaired)
	}
}

func TestNilCorpusAndOntology(t *testing.T) {
	parser, err := linkgrammar.NewEnglishParser()
	if err != nil {
		t.Fatal(err)
	}
	a := New(parser, nil, nil, DefaultOptions())
	rep, err := a.Check("The stack have a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suggestions) != 0 || len(rep.Topics) != 0 {
		t.Errorf("nil stores should yield no suggestions/topics: %+v", rep)
	}
	if rep.Comment == "" {
		t.Error("comment still expected")
	}
}

func TestImperativeWithError(t *testing.T) {
	parser, err := linkgrammar.NewEnglishParser()
	if err != nil {
		t.Fatal(err)
	}
	a := New(parser, nil, ontology.BuildCourseOntology(), DefaultOptions())
	rep, err := a.Check("Push the the data into the stack.")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("duplicated determiner in imperative not detected")
	}
	if rep.Repaired == "" || strings.Contains(rep.Repaired, "the the") {
		t.Errorf("repaired = %q", rep.Repaired)
	}
}

func TestQuestionsPassSyntaxCheck(t *testing.T) {
	a, _ := newAgent(t, false)
	for _, q := range []string{
		"Does a stack have a pop method?",
		"What is a stack?",
		"How does a queue work?",
	} {
		rep, err := a.Check(q)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Errorf("%q flagged: %v", q, rep.Tags)
		}
	}
}

func TestOverlongInputErrors(t *testing.T) {
	a, _ := newAgent(t, false)
	if _, err := a.Check(strings.Repeat("cat ", 64)); err == nil {
		t.Error("overlong input should propagate the parser error")
	}
}

func TestMultipleErrorsLocated(t *testing.T) {
	a, _ := newAgent(t, false)
	// Two independent corruptions.
	rep, err := a.Check("The the cat chased chased a mouse.")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("double corruption not detected")
	}
	if rep.Parsed && len(rep.NullTokens) < 2 {
		t.Errorf("expected 2 null tokens, got %v", rep.NullTokens)
	}
}

func TestReportTokensMatchInput(t *testing.T) {
	a, _ := newAgent(t, false)
	rep, err := a.Check("The Stack HAS a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"the", "stack", "has", "a", "push", "operation"}
	if len(rep.Tokens) != len(want) {
		t.Fatalf("tokens = %v", rep.Tokens)
	}
	for i := range want {
		if rep.Tokens[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, rep.Tokens[i], want[i])
		}
	}
}
