package angel

import (
	"strings"
	"testing"

	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
)

func newAgent(t *testing.T, withCorpus bool) (*Agent, *corpus.Store) {
	t.Helper()
	parser, err := linkgrammar.NewEnglishParser()
	if err != nil {
		t.Fatal(err)
	}
	onto := ontology.BuildCourseOntology()
	var store *corpus.Store
	if withCorpus {
		store = corpus.NewStore()
		for _, text := range []string{
			"The stack has a push operation.",
			"A queue is a fifo structure.",
			"I push the data into the stack.",
			"The cat chased a mouse.",
		} {
			store.Add(corpus.Record{
				Text:    text,
				Tokens:  linkgrammar.Tokenize(text),
				Verdict: corpus.VerdictCorrect,
			})
		}
	}
	return New(parser, store, onto, DefaultOptions()), store
}

func TestCorrectSentencesPass(t *testing.T) {
	a, _ := newAgent(t, false)
	for _, text := range []string{
		"The stack has a push operation.",
		"I push the data into the stack.",
		"Does a stack have a pop method?",
		"The tree doesn't have a pop method.",
	} {
		rep, err := a.Check(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if !rep.OK {
			t.Errorf("%q: flagged incorrectly: nulls=%v tags=%v", text, rep.NullTokens, rep.Tags)
		}
		if rep.Comment != "" {
			t.Errorf("%q: agent should stay silent on correct sentences, said %q", text, rep.Comment)
		}
	}
}

func TestAgreementErrorDetectedAndTagged(t *testing.T) {
	a, _ := newAgent(t, false)
	rep, err := a.Check("The stack have a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("agreement error not detected")
	}
	if !hasTag(rep.Tags, TagAgreement) {
		t.Errorf("tags = %v, want %s", rep.Tags, TagAgreement)
	}
	// Either rewrite restores agreement: "the stack has …" or
	// "the stacks have …".
	if !strings.Contains(rep.Repaired, "stack has") && !strings.Contains(rep.Repaired, "stacks have") {
		t.Errorf("repaired = %q, want an agreement rewrite", rep.Repaired)
	}
	if rep.Comment == "" {
		t.Error("agent should comment on a broken sentence")
	}
}

func TestDuplicatedDeterminerTagged(t *testing.T) {
	a, _ := newAgent(t, false)
	rep, err := a.Check("The the stack has a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("duplicate determiner not detected")
	}
	if !hasTag(rep.Tags, TagDeterminer) && !hasTag(rep.Tags, TagExtraWord) {
		t.Errorf("tags = %v, want determiner/extra-word", rep.Tags)
	}
}

func TestWordOrderTagged(t *testing.T) {
	a, _ := newAgent(t, false)
	rep, err := a.Check("Stack the has a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("word-order error not detected")
	}
	// The repair search may classify this as word-order (swap) or as
	// another single-edit fix; it must at least produce a diagnosis.
	if len(rep.Tags) == 0 {
		t.Error("no tags produced")
	}
}

func TestUnknownWordsSurface(t *testing.T) {
	a, _ := newAgent(t, false)
	rep, err := a.Check("The blorf has a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UnknownWords) != 1 {
		t.Fatalf("unknown words = %v, want exactly one", rep.UnknownWords)
	}
	if rep.Tokens[rep.UnknownWords[0]] != "blorf" {
		t.Errorf("unknown word = %q", rep.Tokens[rep.UnknownWords[0]])
	}
}

func TestSuggestionsComeFromCorpus(t *testing.T) {
	a, _ := newAgent(t, true)
	rep, err := a.Check("The stack have a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suggestions) == 0 {
		t.Fatal("no corpus suggestions")
	}
	if !strings.Contains(rep.Suggestions[0].Record.Text, "stack has a push") {
		t.Errorf("top suggestion = %q", rep.Suggestions[0].Record.Text)
	}
	if !strings.Contains(rep.Comment, "similar correct sentence") {
		t.Errorf("comment should quote the suggestion: %q", rep.Comment)
	}
}

func TestTopicsExtracted(t *testing.T) {
	a, _ := newAgent(t, false)
	rep, err := a.Check("The stack has a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rep.Topics, " ")
	if !strings.Contains(joined, "stack") || !strings.Contains(joined, "push") {
		t.Errorf("topics = %v", rep.Topics)
	}
}

func TestEmptyMessage(t *testing.T) {
	a, _ := newAgent(t, false)
	rep, err := a.Check("   !!! ")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Error("empty message should pass")
	}
}

func TestToggleS(t *testing.T) {
	cases := map[string]string{
		"has":     "ha", // mechanical, not linguistic: toggles trailing s
		"have":    "haves",
		"pushes":  "push",
		"studies": "study",
		"study":   "studies",
		"boxes":   "box",
		"class":   "classes",
	}
	for in, want := range cases {
		if got := toggleS(in); got != want {
			t.Errorf("toggleS(%q) = %q, want %q", in, got, want)
		}
	}
}

func hasTag(tags []string, tag string) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}
