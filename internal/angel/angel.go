// Package angel implements the Learning_Angel Agent of the paper's
// Figure 4: every chat message is parsed with the enhanced (fault
// tolerant) link grammar parser; the Label analysis & filter stage
// inspects the linkage, locates grammar errors, classifies them, and
// retrieves suitable correct sentences from the Learner Corpus as
// suggestions for the online learners.
package angel

import (
	"fmt"
	"strings"

	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
)

// Error tags produced by label analysis.
const (
	TagUnknownWord = "unknown-word"
	TagExtraWord   = "extra-word"
	TagAgreement   = "agreement"
	TagWordOrder   = "word-order"
	TagDeterminer  = "determiner"
	TagUnparseable = "unparseable"
)

// Options configures the agent.
type Options struct {
	// MaxSuggestions caps the corpus sentences offered to the learner.
	MaxSuggestions int
	// Repair enables the repair search that refines error tags and
	// produces "did you mean" rewrites (a handful of extra parses per
	// faulty sentence).
	Repair bool
}

// DefaultOptions returns the supervisor defaults.
func DefaultOptions() Options {
	return Options{MaxSuggestions: 2, Repair: true}
}

// Agent is the Learning_Angel.
type Agent struct {
	parser *linkgrammar.Parser
	corpus *corpus.Store
	onto   *ontology.Ontology
	opts   Options
}

// New constructs the agent. The corpus may be nil (no suggestions) and
// the ontology may be nil (no topic extraction).
func New(parser *linkgrammar.Parser, store *corpus.Store, onto *ontology.Ontology, opts Options) *Agent {
	if opts.MaxSuggestions <= 0 {
		opts.MaxSuggestions = DefaultOptions().MaxSuggestions
	}
	return &Agent{parser: parser, corpus: store, onto: onto, opts: opts}
}

// Report is the outcome of syntax supervision for one message.
type Report struct {
	Text   string
	Tokens []string
	// OK means the sentence parsed with no skipped words: no grammar
	// error detected.
	OK bool
	// Parsed means some linkage was found, possibly with null words.
	Parsed bool
	// NullTokens are token indices the parser skipped — the error
	// locations shown to the learner.
	NullTokens []int
	// UnknownWords are token indices missing from the dictionary.
	UnknownWords []int
	// Tags classify the detected errors (agreement, word order, ...).
	Tags []string
	// Repaired holds a corrected rewrite when the repair search found
	// one parse-clean edit.
	Repaired string
	// Linkage is the best linkage (nil if nothing parsed).
	Linkage *linkgrammar.Linkage
	// Topics are ontology terms found in the message.
	Topics []string
	// Suggestions are similar correct sentences from the corpus.
	Suggestions []corpus.Suggestion
	// Comment is the agent's message to the learner ("" when silent).
	Comment string
}

// Check runs syntax supervision on one chat message.
func (a *Agent) Check(text string) (*Report, error) {
	var snap *ontology.Snapshot
	if a.onto != nil {
		snap = a.onto.Snapshot()
	}
	return a.CheckWith(snap, text)
}

// CheckWith runs syntax supervision extracting topics from a
// caller-pinned ontology snapshot (nil skips topic extraction). The
// supervisor pins one snapshot per message so the syntax and semantic
// stages agree on the vocabulary.
func (a *Agent) CheckWith(snap *ontology.Snapshot, text string) (*Report, error) {
	return a.CheckTokens(snap, text, linkgrammar.Tokenize(text))
}

// CheckTokens is CheckWith for a caller that already tokenized the
// message (the supervisor tokenizes once for classification and passes
// the result down, instead of paying a second Tokenize here). The
// tokens must be Tokenize(text); the report retains the slice.
func (a *Agent) CheckTokens(snap *ontology.Snapshot, text string, tokens []string) (*Report, error) {
	rep := &Report{Text: text, Tokens: tokens}
	if len(tokens) == 0 {
		rep.OK = true
		return rep, nil
	}
	res, err := a.parser.ParseTokens(tokens)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	rep.UnknownWords = res.UnknownWords
	if snap != nil {
		for _, m := range snap.ExtractTerms(tokens) {
			rep.Topics = append(rep.Topics, m.Item.Name)
		}
	}
	if best := res.Best(); best != nil {
		rep.Parsed = true
		rep.Linkage = best
		rep.NullTokens = best.NullTokens()
	}
	if res.Valid() {
		rep.OK = true
		return rep, nil
	}

	// ---- label analysis & filter: classify what went wrong ---------
	for _, i := range rep.UnknownWords {
		_ = i
		rep.Tags = appendUnique(rep.Tags, TagUnknownWord)
	}
	if !rep.Parsed {
		rep.Tags = appendUnique(rep.Tags, TagUnparseable)
	}
	if a.opts.Repair {
		a.repair(rep)
	}
	if len(rep.Tags) == 0 {
		rep.Tags = append(rep.Tags, TagUnparseable)
	}

	// ---- corpus suggestions ----------------------------------------
	if a.corpus != nil {
		rep.Suggestions = a.corpus.Suggest(tokens, rep.Topics, a.opts.MaxSuggestions)
	}
	rep.Comment = a.comment(rep)
	return rep, nil
}

// repair tries small edits and classifies the error from whichever
// single edit yields a clean parse. When the fault-tolerant parse
// located null words, only those positions are edited; when the
// sentence was wholly unparseable (common for agreement errors, which
// break the only available linkage), every position is a candidate.
func (a *Agent) repair(rep *Report) {
	try := func(tokens []string) bool {
		res, err := a.parser.ParseTokens(tokens)
		return err == nil && res.Valid()
	}
	positions := rep.NullTokens
	if len(positions) == 0 {
		positions = make([]int, len(rep.Tokens))
		for i := range rep.Tokens {
			positions[i] = i
		}
	}

	// Pass 1 — agreement: toggling a plural/3sg suffix is the most
	// common learner error, so it is diagnosed first.
	for _, i := range positions {
		if i < 0 || i >= len(rep.Tokens) {
			continue
		}
		alt := toggleS(rep.Tokens[i])
		// Only consider real vocabulary — toggling must not fabricate
		// words the unknown-word fallback would happily parse.
		if alt != "" && alt != rep.Tokens[i] && a.parser.Dictionary().Has(alt) {
			edited := replaceAt(rep.Tokens, i, alt)
			if try(edited) {
				rep.Tags = appendUnique(rep.Tags, TagAgreement)
				if rep.Repaired == "" {
					rep.Repaired = strings.Join(edited, " ")
				}
				return
			}
		}
	}

	// Pass 2 — extra word: dropping one word fixes duplications and
	// spurious determiners.
	for _, i := range positions {
		if i < 0 || i >= len(rep.Tokens) || len(rep.Tokens) <= 1 {
			continue
		}
		dropped := deleteAt(rep.Tokens, i)
		if try(dropped) {
			tag := TagExtraWord
			if isDeterminer(rep.Tokens[i]) {
				tag = TagDeterminer
			}
			rep.Tags = appendUnique(rep.Tags, tag)
			if rep.Repaired == "" {
				rep.Repaired = strings.Join(dropped, " ")
			}
			return
		}
	}

	// Pass 3 — word order: swapping adjacent words.
	for _, i := range positions {
		for _, j := range []int{i - 1, i + 1} {
			if i < 0 || i >= len(rep.Tokens) || j < 0 || j >= len(rep.Tokens) {
				continue
			}
			swapped := swapAt(rep.Tokens, i, j)
			if try(swapped) {
				rep.Tags = appendUnique(rep.Tags, TagWordOrder)
				if rep.Repaired == "" {
					rep.Repaired = strings.Join(swapped, " ")
				}
				return
			}
		}
	}
}

// comment renders the learner-facing message.
func (a *Agent) comment(rep *Report) string {
	var b strings.Builder
	b.WriteString("I found a grammar problem")
	if len(rep.NullTokens) > 0 {
		words := make([]string, 0, len(rep.NullTokens))
		for _, i := range rep.NullTokens {
			if i >= 0 && i < len(rep.Tokens) {
				words = append(words, "\""+rep.Tokens[i]+"\"")
			}
		}
		if len(words) > 0 {
			fmt.Fprintf(&b, " near %s", strings.Join(words, ", "))
		}
	}
	b.WriteString(".")
	if rep.Repaired != "" {
		fmt.Fprintf(&b, " Did you mean: %q?", rep.Repaired)
	}
	for _, tag := range rep.Tags {
		switch tag {
		case TagAgreement:
			b.WriteString(" Check subject-verb agreement.")
		case TagDeterminer:
			b.WriteString(" Check your articles (a/an/the).")
		case TagWordOrder:
			b.WriteString(" Check the word order.")
		case TagUnknownWord:
			b.WriteString(" Some words are not in the course vocabulary.")
		}
	}
	if len(rep.Suggestions) > 0 {
		b.WriteString(" A similar correct sentence: \"")
		b.WriteString(rep.Suggestions[0].Record.Text)
		b.WriteString("\"")
	}
	return b.String()
}

func appendUnique(tags []string, tag string) []string {
	for _, t := range tags {
		if t == tag {
			return tags
		}
	}
	return append(tags, tag)
}

func deleteAt(tokens []string, i int) []string {
	out := make([]string, 0, len(tokens)-1)
	out = append(out, tokens[:i]...)
	return append(out, tokens[i+1:]...)
}

func replaceAt(tokens []string, i int, word string) []string {
	out := append([]string(nil), tokens...)
	out[i] = word
	return out
}

func swapAt(tokens []string, i, j int) []string {
	out := append([]string(nil), tokens...)
	out[i], out[j] = out[j], out[i]
	return out
}

// toggleS flips a trailing "s" — the cheapest proxy for switching
// between base and third-person-singular verb forms or singular/plural
// nouns.
func toggleS(word string) string {
	switch {
	case strings.HasSuffix(word, "ses"), strings.HasSuffix(word, "shes"), strings.HasSuffix(word, "ches"), strings.HasSuffix(word, "xes"):
		return word[:len(word)-2]
	case strings.HasSuffix(word, "ies") && len(word) > 3:
		return word[:len(word)-3] + "y"
	case strings.HasSuffix(word, "s") && !strings.HasSuffix(word, "ss"):
		return word[:len(word)-1]
	case strings.HasSuffix(word, "sh"), strings.HasSuffix(word, "ch"), strings.HasSuffix(word, "x"), strings.HasSuffix(word, "ss"):
		return word + "es"
	case strings.HasSuffix(word, "y") && len(word) > 1 && !isVowel(word[len(word)-2]):
		return word[:len(word)-1] + "ies"
	default:
		return word + "s"
	}
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

func isDeterminer(word string) bool {
	switch word {
	case "a", "an", "the", "this", "that", "these", "those", "my", "your", "our", "their", "its", "his", "her":
		return true
	}
	return false
}
