package simulate

import (
	"math/rand"

	"semagent/internal/workload"
)

// PersonaKind names a scripted student archetype. The persona library
// covers the classroom behaviours the paper's agent must handle: solid
// on-topic contribution, off-topic drift, abuse, questions, floods,
// silence, and churn (late joins / disconnects).
type PersonaKind string

// The persona library.
const (
	// PersonaContributor speaks grammatical, on-topic course sentences.
	PersonaContributor PersonaKind = "contributor"
	// PersonaDrifter produces grammatical but domain-nonsensical
	// sentences — the off-topic drift the Semantic Agent flags.
	PersonaDrifter PersonaKind = "drifter"
	// PersonaAbusive posts hostile, ungrammatical outbursts the
	// Learning_Angel flags as unparseable.
	PersonaAbusive PersonaKind = "abusive"
	// PersonaQuestioner asks course questions the QA system answers.
	PersonaQuestioner PersonaKind = "questioner"
	// PersonaSpammer floods the room with repeated junk lines —
	// rapid-fire bursts that exercise backpressure and shedding.
	PersonaSpammer PersonaKind = "spammer"
	// PersonaLurker joins and listens without speaking.
	PersonaLurker PersonaKind = "lurker"
	// PersonaLateJoiner joins mid-session (seeing the history replay),
	// contributes briefly and disconnects.
	PersonaLateJoiner PersonaKind = "late-joiner"
)

// AllPersonas lists every persona kind, in stable order.
func AllPersonas() []PersonaKind {
	return []PersonaKind{
		PersonaContributor, PersonaDrifter, PersonaAbusive,
		PersonaQuestioner, PersonaSpammer, PersonaLurker, PersonaLateJoiner,
	}
}

// abusiveLines are hostile outbursts. They carry out-of-dictionary
// chat-speak and broken grammar on purpose: the reproduction has no
// profanity list, so abuse is caught the way the paper's Learning_Angel
// catches it — as unparseable, comment-worthy input.
var abusiveLines = []string{
	"u r all idiots lol",
	"shut up shut up nobody cares",
	"this class dumb and u dumber",
	"stop talk stupid stupid",
	"omg ur answer so trash lol",
}

// spamLines are the rapid-fire junk a flooding client repeats.
var spamLines = []string{
	"spam spam spam spam",
	"buy follow click click click",
	"aaaa bbbb cccc dddd",
}

// Utter produces one labelled utterance for the persona. The expected
// verdict is the scenario ground truth E13 scores detection against:
// contributors should pass, drifters should trip the Semantic Agent,
// abusive/spam lines should trip the Learning_Angel, questions should
// route to QA.
func (k PersonaKind) Utter(g *workload.Generator, rng *rand.Rand) (string, workload.Kind) {
	switch k {
	case PersonaDrifter:
		s := g.SemanticError()
		return s.Text, workload.KindSemanticError
	case PersonaAbusive:
		return abusiveLines[rng.Intn(len(abusiveLines))], workload.KindSyntaxError
	case PersonaQuestioner:
		s := g.Question(false)
		return s.Text, workload.KindQuestion
	case PersonaSpammer:
		return spamLines[rng.Intn(len(spamLines))], workload.KindSyntaxError
	default: // contributor, late-joiner, (lurker never utters)
		s := g.Correct()
		return s.Text, workload.KindCorrect
	}
}

// ShouldFlag reports whether ground truth says the supervision stack
// ought to intervene on a message of this kind (the "positive" class of
// E13's per-persona precision/recall).
func ShouldFlag(k workload.Kind) bool {
	return k == workload.KindSyntaxError || k == workload.KindSemanticError
}
