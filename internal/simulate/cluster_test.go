package simulate

import (
	"bytes"
	"testing"
)

// clusterScenario builds a small two-room session on a two-node
// fabric: chatter in both rooms, a node kill mid-session, then more
// chatter that must land on the promoted standby.
func clusterScenario(name string, kill bool) *Scenario {
	sc := &Scenario{
		Name:    name,
		Seed:    41,
		Async:   true,
		Cluster: &ClusterConfig{Nodes: 2},
	}
	b := newScript(sc)
	b.join("alice", "algebra", PersonaContributor)
	b.join("bob", "algebra", PersonaQuestioner)
	b.join("carol", "biology", PersonaContributor)
	b.say("alice", "algebra")
	b.ask("bob", "alice", "algebra")
	b.say("carol", "biology")
	if kill {
		// Both rooms hash onto some node; kill n0 regardless — killing a
		// node that owns no rooms still exercises promotion.
		b.killNode("n0")
	}
	b.say("alice", "algebra")
	b.say("carol", "biology")
	b.ask("bob", "alice", "algebra")
	return sc
}

func TestClusterSession(t *testing.T) {
	res, err := Run(clusterScenario("cluster-session", false), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Supervised != res.Sent {
		t.Fatalf("sent %d supervised %d; want all supervised", res.Sent, res.Supervised)
	}
	if len(res.Failovers) != 0 {
		t.Fatalf("unexpected failovers: %+v", res.Failovers)
	}
}

func TestClusterFailover(t *testing.T) {
	res, err := Run(clusterScenario("cluster-failover", true), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failovers) != 1 {
		t.Fatalf("failovers = %d, want 1", len(res.Failovers))
	}
	fo := res.Failovers[0]
	if fo.Dead != "n0" || fo.Promoted != "n0+1" {
		t.Fatalf("promotion %s -> %s, want n0 -> n0+1", fo.Dead, fo.Promoted)
	}
	if fo.SinkLastLSN < fo.DeadSyncedLSN {
		t.Fatalf("standby watermark %d below dead owner's synced %d: fsync'd data lost",
			fo.SinkLastLSN, fo.DeadSyncedLSN)
	}
	if fo.ReplayErrors != 0 {
		t.Fatalf("promotion replay had %d errors", fo.ReplayErrors)
	}
	for _, mv := range fo.Moves {
		if mv.EpochAfter != mv.EpochBefore+1 {
			t.Fatalf("room %s epoch %d -> %d, want +1", mv.Room, mv.EpochBefore, mv.EpochAfter)
		}
	}
	// Every scripted message was supervised: nothing fell into the
	// failover crack (sends are settled before the kill, and post-kill
	// sends go to the promoted owner).
	if res.Supervised != res.Sent {
		t.Fatalf("sent %d supervised %d across failover", res.Sent, res.Supervised)
	}
}

// TestClusterDeterminism replays the failover scenario twice and
// requires byte-identical transcripts — the whole point of driving the
// fabric from the virtual clock with explicit liveness transitions.
// (The killed lineage owns a single-client room here: within the
// reconnect window of a multi-client room, relink order — and hence
// which join notices each client observes — is scheduling-dependent,
// which is why E16 compares that window by delivery count only.)
func TestClusterDeterminism(t *testing.T) {
	a, err := Run(clusterScenario("cluster-det", true), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(clusterScenario("cluster-det", true), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Transcript, b.Transcript) {
		t.Fatalf("transcripts differ across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a.Transcript, b.Transcript)
	}
}
