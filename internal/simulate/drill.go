package simulate

import "time"

// DrillMode selects one arm of the E16 failover drill. The three arms
// share one script (built from the same seed, so every scripted line is
// identical); they differ only in the server substrate and in what
// happens at the kill step.
type DrillMode int

const (
	// DrillGolden runs the session on a single in-process server — the
	// ground-truth transcript.
	DrillGolden DrillMode = iota
	// DrillCluster runs the identical session on a two-node fabric
	// behind the gateway with no faults: the cluster-transparency arm,
	// which must match the golden arm byte for byte.
	DrillCluster
	// DrillFailover kills the owner of the busiest room mid-session;
	// outside the bounded reconnect window the session must still match
	// the golden arm exactly.
	DrillFailover
)

// drillLease is the drill's ownership lease (virtual time).
const drillLease = 10 * time.Second

// FailoverDrill builds the E16 drill scenario for one arm and returns
// it with the kill-step index. At that index the failover arm kills
// lineage n1 (which owns "algebra", 3 clients, and "chemistry", 1
// client, under the fabric's FNV room hash); the other arms advance
// the virtual clock by the same total the kill costs (one step
// interval + lease + 1s), so all three arms stay clock-aligned —
// QA-pairing windows and profile timestamps expire identically.
func FailoverDrill(seed int64, mode DrillMode) (*Scenario, int) {
	sc := &Scenario{
		Name:        "e16-drill",
		Description: "E16 failover drill: golden vs cluster vs mid-session owner kill",
		Seed:        seed,
		Async:       true,
		Workers:     2,
		// HistorySize 0: no history replay on join, so the post-failover
		// late joiner sees the same messages in every arm.
		HistorySize: 0,
	}
	if mode != DrillGolden {
		sc.Cluster = &ClusterConfig{Nodes: 2, Lease: drillLease}
	}
	b := newScript(sc)
	b.join("alice", "algebra", PersonaContributor)
	b.join("bob", "algebra", PersonaQuestioner)
	b.join("carol", "algebra", PersonaContributor)
	b.join("dave", "biology", PersonaContributor)
	b.join("erin", "biology", PersonaQuestioner)
	b.join("frank", "chemistry", PersonaContributor)

	// Phase 1: chatter in every room, with QA adjacency pairs completed
	// well before the kill (the pending-question window is in-memory
	// state; a kill between a question and its answer is out of scope).
	b.say("alice", "algebra")
	b.ask("bob", "alice", "algebra")
	b.say("dave", "biology")
	b.say("frank", "chemistry")
	b.ask("erin", "dave", "biology")
	b.say("carol", "algebra")

	killStep := len(sc.Steps)
	if mode == DrillFailover {
		b.killNode("n1")
	} else {
		// StepAdvance skips the per-step interval advance, so the total
		// here mirrors the kill step's clock cost exactly.
		b.advance(sc.StepInterval + drillLease + time.Second)
	}

	// Phase 2: the same rooms keep working — on the promoted standby in
	// the failover arm — and a late joiner lands post-failover.
	b.say("alice", "algebra")
	b.say("dave", "biology")
	b.ask("bob", "carol", "algebra")
	b.say("frank", "chemistry")
	b.join("grace", "algebra", PersonaQuestioner)
	b.ask("grace", "alice", "algebra")
	b.say("erin", "biology")
	return sc, killStep
}
