package simulate

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"semagent/internal/workload"
)

// -update regenerates the golden transcripts:
//
//	go test ./internal/simulate -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden transcript files")

func goldenPath(name string) string {
	return filepath.Join("testdata", "scenarios", name+".golden")
}

// TestGoldenTranscripts replays every scenario in the corpus and diffs
// its transcript byte-for-byte against the checked-in golden file. A
// mismatch means the supervision stack changed observable behaviour —
// verdicts, interventions, ordering, report content — and the diff
// shows exactly where; if the change is intended, re-record with
// -update and review the golden diff in the PR.
func TestGoldenTranscripts(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc, t.TempDir())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			path := goldenPath(sc.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, res.Transcript, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(res.Transcript, want) {
				t.Fatalf("transcript drifted from %s\n%s", path, diffHint(want, res.Transcript))
			}
		})
	}
}

// diffHint renders the first divergent line of a golden mismatch.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first mismatch at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("transcripts diverge in length: golden %d lines, got %d", len(wl), len(gl))
}

// TestGoldenCorpusShape enforces the regression-suite contract: at
// least ten scenarios, every persona covered, and at least two fault
// injections among them.
func TestGoldenCorpusShape(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 10 {
		t.Fatalf("corpus has %d scenarios, want >= 10", len(scs))
	}
	personas := make(map[PersonaKind]bool)
	faults := make(map[string]bool)
	names := make(map[string]bool)
	for _, sc := range scs {
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		for _, p := range sc.Personas {
			personas[p] = true
		}
		for _, st := range sc.Steps {
			switch st.Kind {
			case StepDrop:
				faults["client-drop"] = true
			case StepCrash:
				faults["journal-crash"] = true
			case StepBurst:
				if sc.GateBursts {
					faults["shed-storm"] = true
				}
			}
		}
	}
	for _, p := range AllPersonas() {
		if !personas[p] {
			t.Errorf("persona %s not covered by any scenario", p)
		}
	}
	if len(faults) < 2 {
		t.Errorf("fault injections covered = %v, want >= 2 kinds", faults)
	}
	// Every golden file on disk corresponds to a scenario (no orphans).
	entries, err := os.ReadDir(filepath.Join("testdata", "scenarios"))
	if err != nil {
		t.Fatalf("golden dir: %v", err)
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".golden" {
			continue
		}
		if !names[name[:len(name)-len(".golden")]] {
			t.Errorf("orphan golden file %s", name)
		}
	}
}

// TestScenarioGroundTruthShape checks the scripts carry usable ground
// truth: every say/burst line is labelled.
func TestScenarioGroundTruthShape(t *testing.T) {
	for _, sc := range Scenarios() {
		for i, st := range sc.Steps {
			if st.Kind != StepSay && st.Kind != StepBurst {
				continue
			}
			if len(st.Texts) == 0 || len(st.Texts) != len(st.Expect) {
				t.Errorf("%s step %d: %d texts vs %d labels", sc.Name, i+1, len(st.Texts), len(st.Expect))
			}
			for _, k := range st.Expect {
				if k < workload.KindCorrect || k > workload.KindQuestion {
					t.Errorf("%s step %d: bad ground-truth kind %v", sc.Name, i+1, k)
				}
			}
		}
	}
}
