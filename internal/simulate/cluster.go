package simulate

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"semagent/internal/chat"
	"semagent/internal/cluster"
	"semagent/internal/core"
	"semagent/internal/journal"
	"semagent/internal/memnet"
)

// Cluster mode (DESIGN.md D15): instead of one in-process server, the
// scenario runs on a room-partitioned fabric — N nodes, each with its
// own knowledge stores and journal, behind a gateway that owns the
// client edge. Sim clients dial the gateway exactly as they dialed the
// single server; everything else (virtual clock, memnet, settle
// barrier, transcript) is unchanged. StepKillNode crashes a node and
// promotes its journal-shipped warm standby; StepPartition severs the
// gateway's links to a node without killing it.

// simNode is one node incarnation built by the fabric's Start
// callback: private stores, journal (with the WAL-shipping OnSync
// hook) and chat server over its own in-memory listener.
type simNode struct {
	id       cluster.NodeID
	listener *memnet.Listener
	server   *chat.Server
	sup      *core.Supervisor
	stores   journal.Stores
	mgr      *journal.Manager
}

// clusterRuntime is the runner's cluster-mode substrate.
type clusterRuntime struct {
	fab        *cluster.Fabric
	gw         *cluster.Gateway
	gwListener *memnet.Listener
	lease      time.Duration

	// mu guards nodes: incarnations come and go on the sim thread, but
	// the recorder resolves rooms to supervisors from pipeline workers.
	mu    sync.Mutex
	nodes map[cluster.NodeID]*simNode
}

// live returns the live incarnations sorted by id — the iteration
// order every cross-node aggregate uses.
func (cr *clusterRuntime) live() []*simNode {
	cr.mu.Lock()
	out := make([]*simNode, 0, len(cr.nodes))
	for _, n := range cr.nodes {
		out = append(out, n)
	}
	cr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// resolveSup routes a room to its owner's supervisor (the recorder's
// resolve seam). A nil return means the owner died between enqueue and
// processing; the recorder logs the message as unprocessed.
func (cr *clusterRuntime) resolveSup(room string) *core.Supervisor {
	o, ok := cr.fab.Owners().Lookup(room)
	if !ok {
		return nil
	}
	cr.mu.Lock()
	defer cr.mu.Unlock()
	n := cr.nodes[o.Node]
	if n == nil {
		return nil
	}
	return n.sup
}

// startCluster brings up the fabric and the gateway. Called once from
// start(); node incarnations after that are born only through
// Fabric.Failover.
func (r *runner) startCluster() error {
	cc := r.sc.Cluster
	cr := &clusterRuntime{nodes: make(map[cluster.NodeID]*simNode)}
	r.cluster = cr
	r.rec = newRecorder(nil)
	r.rec.resolve = cr.resolveSup
	workers := r.sc.Workers
	if workers <= 0 {
		workers = 2 // pinned, as in single-node mode
	}
	start := func(id cluster.NodeID, dir string, onSync func(synced uint64)) (*cluster.NodeHandle, error) {
		stores, err := journal.LoadStores(dir)
		if err != nil {
			return nil, fmt.Errorf("node %s: load stores: %w", id, err)
		}
		mgr, err := journal.Open(dir, stores, journal.Options{
			SyncEveryRecord:    true,
			CheckpointBytes:    -1,
			CheckpointInterval: -1,
			Clock:              r.vc,
			OnSync:             onSync,
		})
		if err != nil {
			return nil, fmt.Errorf("node %s: open journal: %w", id, err)
		}
		sup, err := core.New(core.Config{
			Now:      r.vc.Now,
			Ontology: stores.Ontology,
			Corpus:   stores.Corpus,
			Profiles: stores.Profiles,
			FAQ:      stores.FAQ,
		})
		if err != nil {
			return nil, fmt.Errorf("node %s: build supervisor: %w", id, err)
		}
		n := &simNode{id: id, stores: stores, mgr: mgr, sup: sup, listener: memnet.NewListener()}
		n.server = chat.NewServer(chat.ServerOptions{
			Supervisor:     r.rec,
			Async:          r.sc.Async,
			Workers:        workers,
			SuperviseQueue: r.sc.SuperviseQueue,
			SendQueue:      1024,
			HistorySize:    r.sc.HistorySize,
			ShedPolicy:     r.sc.ShedPolicy,
			RoomHighWater:  r.sc.RoomHighWater,
			OnShed: func(room string) {
				r.shedMu.Lock()
				r.shedByRoom[room]++
				r.shedMu.Unlock()
			},
			Clock: r.vc,
		})
		n.server.Serve(n.listener)
		cr.mu.Lock()
		cr.nodes[id] = n
		cr.mu.Unlock()
		return &cluster.NodeHandle{
			Dial: n.listener.Dial,
			Idle: n.server.Idle,
			Kill: func() error {
				// Mirror StepCrash: server down, pipeline counters banked,
				// journal abandoned unsealed.
				_ = n.server.Close()
				if pst, ok := n.server.SupervisionStats(); ok {
					r.pipeTotal = r.pipeTotal.Merge(pst)
				}
				n.mgr.Abandon()
				cr.mu.Lock()
				delete(cr.nodes, id)
				cr.mu.Unlock()
				return nil
			},
			Stop: func() error {
				cr.mu.Lock()
				delete(cr.nodes, id)
				cr.mu.Unlock()
				if err := n.server.Close(); err != nil {
					return err
				}
				return n.mgr.Close()
			},
			Stats: n.mgr.Stats,
		}, nil
	}
	fab, err := cluster.NewFabric(cluster.FabricConfig{
		Nodes:   cc.Nodes,
		Lease:   cc.Lease,
		BaseDir: r.dir,
		Clock:   r.vc,
		Start:   start,
	})
	if err != nil {
		return fmt.Errorf("start fabric: %w", err)
	}
	cr.fab = fab
	cr.lease = fab.Owners().Lease()
	cr.gw = cluster.NewGateway(fab, r.vc)
	cr.gwListener = memnet.NewListener()
	cr.gw.Serve(cr.gwListener)
	return nil
}

// dialEdge opens a client connection: the gateway in cluster mode, the
// server's listener otherwise.
func (r *runner) dialEdge() (net.Conn, error) {
	if r.cluster != nil {
		return r.cluster.gwListener.Dial()
	}
	return r.listener.Dial()
}

// roomServer resolves the chat server handling a room: the owner node
// in cluster mode, the single server otherwise.
func (r *runner) roomServer(room string) (*chat.Server, error) {
	if r.cluster == nil {
		return r.server, nil
	}
	o, err := r.cluster.fab.Owner(room)
	if err != nil {
		return nil, err
	}
	r.cluster.mu.Lock()
	n := r.cluster.nodes[o.Node]
	r.cluster.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("room %s: owner %s is not live", room, o.Node)
	}
	return n.server, nil
}

// killNode crashes a lineage's live incarnation, expires its lease on
// the virtual clock and promotes its warm standby. The settle that
// follows in step() rides every gateway link through the failover.
func (r *runner) killNode(st Step) error {
	cr := r.cluster
	if cr == nil {
		return fmt.Errorf("StepKillNode requires Scenario.Cluster")
	}
	if err := r.settle(); err != nil {
		return err
	}
	if err := cr.fab.Kill(st.Node); err != nil {
		return err
	}
	r.tr.note(fmt.Sprintf("node %s: killed (journal abandoned unsealed)", st.Node))
	// Promotion fences on lease expiry; advance past it. The golden arm
	// of a failover comparison must advance by the same extra amount.
	r.vc.Advance(cr.lease + time.Second)
	if st.Stage > 0 {
		// Kill-during-promotion: arm the crash point, prove the first
		// Failover stops there, then resume. A promotion that completes
		// despite the armed stage (or wedges on resume) fails the run.
		cr.fab.CrashNextFailover(cluster.FailoverStage(st.Stage))
		if _, err := cr.fab.Failover(); !errors.Is(err, cluster.ErrFailoverInterrupted) {
			return fmt.Errorf("staged failover: wanted interruption at stage %d, got %v", st.Stage, err)
		}
		r.tr.note(fmt.Sprintf("failover: coordinator crashed at stage %d, re-entering", st.Stage))
	}
	promos, err := cr.fab.Failover()
	if err != nil {
		return err
	}
	for _, p := range promos {
		r.failovers = append(r.failovers, FailoverStats{Step: r.curStep, Promotion: p})
		r.tr.note(fmt.Sprintf(
			"failover: %s -> %s; %d rooms moved, sink lsn %d covers dead synced lsn %d (replayed %d records)",
			p.Dead, p.Promoted, len(p.Moves), p.SinkLastLSN, p.DeadSyncedLSN, p.ReplayApplied))
	}
	return nil
}

// partitionNode severs the gateway's links to a live node; the links
// reconnect to the same owner with Resume joins during the settle.
func (r *runner) partitionNode(st Step) error {
	cr := r.cluster
	if cr == nil {
		return fmt.Errorf("StepPartition requires Scenario.Cluster")
	}
	if err := r.settle(); err != nil {
		return err
	}
	id, ok := cr.fab.Current(st.Node)
	if !ok {
		return fmt.Errorf("partition: lineage %s has no live incarnation", st.Node)
	}
	cut := cr.gw.CutNode(id)
	r.tr.note(fmt.Sprintf("partition: severed %d gateway links to %s", cut, id))
	return nil
}

// errInjectedSinkFault is the deterministic apply error StepSinkFault
// plants in a standby sink.
var errInjectedSinkFault = errors.New("injected sink fault (chaos)")

// cutShip severs a lineage's WAL ship stream while its client edge
// stays up — the asymmetric partition.
func (r *runner) cutShip(st Step) error {
	cr := r.cluster
	if cr == nil {
		return fmt.Errorf("StepCutShip requires Scenario.Cluster")
	}
	if err := r.settle(); err != nil {
		return err
	}
	if err := cr.fab.CutShip(st.Node); err != nil {
		return err
	}
	r.tr.note(fmt.Sprintf("ship stream %s: severed (clients unaffected)", st.Node))
	return nil
}

// healShip reconnects a severed ship stream; the accumulated backlog
// ships before the step returns.
func (r *runner) healShip(st Step) error {
	cr := r.cluster
	if cr == nil {
		return fmt.Errorf("StepHealShip requires Scenario.Cluster")
	}
	if err := r.settle(); err != nil {
		return err
	}
	if err := cr.fab.HealShip(st.Node); err != nil {
		return err
	}
	r.tr.note(fmt.Sprintf("ship stream %s: healed (standby caught up)", st.Node))
	return nil
}

// sinkFault wedges a lineage's standby sink so every apply fails. The
// shipper must surface the failures (counter, Health) and retry — and
// a kill before the heal must audit as a lossy promotion.
func (r *runner) sinkFault(st Step) error {
	cr := r.cluster
	if cr == nil {
		return fmt.Errorf("StepSinkFault requires Scenario.Cluster")
	}
	if err := r.settle(); err != nil {
		return err
	}
	if err := cr.fab.InjectSinkFault(st.Node, errInjectedSinkFault); err != nil {
		return err
	}
	r.tr.note(fmt.Sprintf("standby sink %s: fault injected (applies fail until healed)", st.Node))
	return nil
}

// skewRace gives a lineage a clock offset and races it for every other
// live lineage's leases. Seized rooms are handed straight back by the
// fabric (the challenger has no replica); the step re-routes their
// gateway links so the settle barrier sees fresh epochs.
func (r *runner) skewRace(st Step) error {
	cr := r.cluster
	if cr == nil {
		return fmt.Errorf("StepSkewRace requires Scenario.Cluster")
	}
	if err := r.settle(); err != nil {
		return err
	}
	cr.fab.SetSkew(st.Node, st.Skew)
	races, err := cr.fab.RaceLeases(st.Node)
	if err != nil {
		return err
	}
	for _, race := range races {
		r.leaseRaces = append(r.leaseRaces, LeaseRaceStats{Step: r.curStep, LeaseRace: race})
		if race.Seized {
			cut := cr.gw.CutRoom(race.Room)
			r.tr.note(fmt.Sprintf(
				"lease race: %s seized %s from %s (epoch %d->%d, old owner fenced=%v), handed back; %d links re-routed",
				race.Challenger, race.Room, race.Owner, race.EpochBefore, race.EpochAfter, race.OldOwnerFenced, cut))
		} else {
			r.tr.note(fmt.Sprintf("lease race: %s refused %s: %s", race.Challenger, race.Room, race.Refused))
		}
	}
	return nil
}

// Cross-node aggregates for buildResult. In single-node mode they read
// the one supervisor; in cluster mode they fold the live incarnations
// in id order.

func (r *runner) minedPairs() int {
	if r.cluster == nil {
		return r.sup.Generator().MinedPairs()
	}
	total := 0
	for _, n := range r.cluster.live() {
		total += n.sup.Generator().MinedPairs()
	}
	return total
}

func (r *runner) faqLen() int {
	if r.cluster == nil {
		return r.sup.FAQ().Len()
	}
	total := 0
	for _, n := range r.cluster.live() {
		total += n.sup.FAQ().Len()
	}
	return total
}

func (r *runner) analyzerReport() string {
	if r.cluster == nil {
		return r.sup.Analyzer().Report()
	}
	var b strings.Builder
	for _, n := range r.cluster.live() {
		fmt.Fprintf(&b, "== node %s ==\n", n.id)
		b.WriteString(n.sup.Analyzer().Report())
	}
	return b.String()
}
