package simulate

import (
	"fmt"
	"math/rand"
	"time"

	"semagent/internal/ontology"
	"semagent/internal/pipeline"
	"semagent/internal/workload"
)

// StepKind enumerates the scripted event types a scenario replays.
type StepKind int

// Step kinds.
const (
	// StepJoin connects a participant to a room.
	StepJoin StepKind = iota
	// StepSay sends one chat line and settles the whole stack.
	StepSay
	// StepBurst sends N lines back to back WITHOUT settling between
	// them — the rapid-fire / overload shape. With Scenario.GateBursts
	// the supervisor is held shut for the duration, so admission
	// control's shed decisions depend only on queue depths (which the
	// burst fills deterministically), not on worker timing.
	StepBurst
	// StepLeave sends a protocol leave.
	StepLeave
	// StepDrop kills the connection abruptly — no leave message; with
	// Partial set, a torn half-written frame is left on the wire first
	// (the client-drop-mid-message fault injector).
	StepDrop
	// StepAdvance moves the virtual clock without any traffic (e.g. to
	// expire the corpora generator's QA-pairing window).
	StepAdvance
	// StepCrash simulates a process crash and recovery mid-session:
	// the server dies with the journal unsealed, every client is cut
	// off, and a fresh supervisor is rebuilt from the journal replay
	// (requires Scenario.Journal).
	StepCrash
	// StepKillNode crashes one cluster node (Step.Node names the
	// lineage, e.g. "n0"): its chat server dies and its journal is
	// abandoned unsealed, the virtual clock advances past the ownership
	// lease, and the fabric promotes the node's warm standby. Client
	// connections ride through the gateway — nobody re-dials (requires
	// Scenario.Cluster).
	StepKillNode
	// StepPartition severs every gateway→node connection to one node
	// (Step.Node) without killing it — a network partition. Links
	// reconnect to the same owner with Resume joins (requires
	// Scenario.Cluster).
	StepPartition
	// StepCutShip severs one lineage's WAL ship stream (Step.Node)
	// while its client edge stays up — the asymmetric partition. The
	// node keeps serving and fsync'ing; its standby stops hearing from
	// it until StepHealShip (requires Scenario.Cluster).
	StepCutShip
	// StepHealShip reconnects a severed ship stream (and clears any
	// injected sink fault); everything that accumulated while cut ships
	// immediately.
	StepHealShip
	// StepSinkFault injects a persistent apply error into one lineage's
	// standby sink. Unlike StepCutShip the shipper keeps failing
	// visibly (failure counter, Health report) until healed — or until
	// a StepKillNode makes the lag a lossy promotion.
	StepSinkFault
	// StepSkewRace gives one lineage (Step.Node) a clock skew
	// (Step.Skew) and has it race lease acquisition against every other
	// live lineage's rooms; the epoch fence must hold whatever the
	// skewed clock believes (requires Scenario.Cluster).
	StepSkewRace
)

// Step is one scripted event.
type Step struct {
	Kind StepKind
	User string
	Room string
	// Texts carries the chat line for StepSay (length 1) or the burst
	// lines for StepBurst; Expect carries the matching ground truth.
	Texts  []string
	Expect []workload.Kind
	// Advance is the virtual-clock movement for StepAdvance.
	Advance time.Duration
	// Partial marks a StepDrop that first writes a torn frame.
	Partial bool
	// Node names the target lineage for StepKillNode / StepPartition /
	// StepCutShip / StepHealShip / StepSinkFault / StepSkewRace
	// (e.g. "n1" — the base name, not an incarnation like "n1+2").
	Node string
	// Stage arms a deterministic crash point inside the failover that a
	// StepKillNode triggers (0 = clean failover; see
	// cluster.FailoverStage). The step then drives BOTH failover calls:
	// the interrupted one and the resume.
	Stage int
	// Skew is the challenger's clock offset for StepSkewRace.
	Skew time.Duration
}

// ClusterConfig runs a scenario on a room-partitioned multi-node
// fabric behind a gateway instead of a single in-process server
// (DESIGN.md D15). Requires Journal: failover replays the shipped WAL.
type ClusterConfig struct {
	// Nodes is the number of node lineages (default 2).
	Nodes int
	// Lease is the room-ownership lease (default 10s of virtual time).
	Lease time.Duration
}

// Scenario is a reproducible classroom session: a fixed seed, a server
// configuration and a fully materialized script. Scripts are generated
// at build time (from the seed), so a Scenario is pure data by the time
// it runs — the same Scenario always replays the same bytes.
type Scenario struct {
	Name        string
	Description string
	Seed        int64

	// Server shape.
	Async          bool
	Workers        int
	SuperviseQueue int
	HistorySize    int
	ShedPolicy     pipeline.ShedPolicy
	RoomHighWater  int
	// Journal runs the session over a write-ahead journal (required by
	// StepCrash). The journal syncs every record so the crash point is
	// deterministic.
	Journal bool
	// GateBursts holds supervision shut while a StepBurst floods, so
	// shedding is a pure function of queue depth. Async only.
	GateBursts bool
	// Cluster, when set, runs the session on a multi-node fabric
	// behind a gateway (enables StepKillNode / StepPartition; implies
	// Journal).
	Cluster *ClusterConfig

	// StepInterval is the virtual time between consecutive steps
	// (default 2s).
	StepInterval time.Duration

	// Personas maps each participant to their archetype.
	Personas map[string]PersonaKind

	Steps []Step
}

// scriptBuilder accumulates a scenario script with a deterministic
// workload generator and rng.
type scriptBuilder struct {
	sc  *Scenario
	g   *workload.Generator
	rng *rand.Rand
}

func newScript(sc *Scenario) *scriptBuilder {
	if sc.StepInterval <= 0 {
		sc.StepInterval = 2 * time.Second
	}
	if sc.Personas == nil {
		sc.Personas = make(map[string]PersonaKind)
	}
	return &scriptBuilder{
		sc: sc,
		// Two independent streams: the generator consumes its own seed
		// so persona rng draws cannot perturb sentence generation.
		g:   workload.NewGenerator(sc.Seed, ontology.BuildCourseOntology()),
		rng: rand.New(rand.NewSource(sc.Seed + 1)),
	}
}

func (b *scriptBuilder) join(user, room string, p PersonaKind) {
	b.sc.Personas[user] = p
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepJoin, User: user, Room: room})
}

// say scripts one in-persona utterance.
func (b *scriptBuilder) say(user, room string) {
	text, kind := b.sc.Personas[user].Utter(b.g, b.rng)
	b.sayText(user, room, text, kind)
}

func (b *scriptBuilder) sayText(user, room, text string, kind workload.Kind) {
	b.sc.Steps = append(b.sc.Steps, Step{
		Kind: StepSay, User: user, Room: room,
		Texts: []string{text}, Expect: []workload.Kind{kind},
	})
}

// ask scripts a question followed by a topical peer answer — the
// adjacency pair the corpora generator mines into the FAQ.
func (b *scriptBuilder) ask(asker, answerer, room string) {
	q := b.g.Question(false)
	b.sayText(asker, room, q.Text, workload.KindQuestion)
	if len(q.Topics) == 0 {
		return
	}
	answer := fmt.Sprintf("the %s is a useful structure", q.Topics[0])
	b.sayText(answerer, room, answer, workload.KindCorrect)
}

// burst scripts n rapid-fire lines from one (spammer) participant.
func (b *scriptBuilder) burst(user, room string, n int) {
	st := Step{Kind: StepBurst, User: user, Room: room}
	for i := 0; i < n; i++ {
		text, kind := b.sc.Personas[user].Utter(b.g, b.rng)
		st.Texts = append(st.Texts, text)
		st.Expect = append(st.Expect, kind)
	}
	b.sc.Steps = append(b.sc.Steps, st)
}

func (b *scriptBuilder) leave(user, room string) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepLeave, User: user, Room: room})
}

func (b *scriptBuilder) drop(user, room string, partial bool) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepDrop, User: user, Room: room, Partial: partial})
}

func (b *scriptBuilder) advance(d time.Duration) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepAdvance, Advance: d})
}

func (b *scriptBuilder) crash() {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepCrash})
}

func (b *scriptBuilder) killNode(node string) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepKillNode, Node: node})
}

func (b *scriptBuilder) partition(node string) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepPartition, Node: node})
}

func (b *scriptBuilder) cutShip(node string) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepCutShip, Node: node})
}

func (b *scriptBuilder) healShip(node string) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepHealShip, Node: node})
}

func (b *scriptBuilder) sinkFault(node string) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepSinkFault, Node: node})
}

func (b *scriptBuilder) killNodeStaged(node string, stage int) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepKillNode, Node: node, Stage: stage})
}

func (b *scriptBuilder) skewRace(node string, skew time.Duration) {
	b.sc.Steps = append(b.sc.Steps, Step{Kind: StepSkewRace, Node: node, Skew: skew})
}
