// Package simulate is the deterministic classroom-session simulator
// (DESIGN.md D11): it drives the full supervision stack — chat server,
// sharded pipeline, Learning_Angel / Semantic Agent / QA system, and
// optionally the write-ahead journal — through an in-memory transport
// and a virtual clock. No sockets, no sleeps: whole multi-room class
// sessions replay in milliseconds, and the same Scenario produces a
// byte-identical transcript every run.
//
// A Scenario is a seeded script of persona-driven events (joins, chat
// lines, rapid-fire bursts, leaves) plus fault injections (abrupt
// client drops mid-message, a journal crash with recovery mid-session,
// an admission-control shed storm). The simulator settles the entire
// stack between scripted events — every broadcast delivered, every
// supervision verdict recorded, every write flushed — which is what
// makes the inherently concurrent server deterministic to observe.
//
// The golden-transcript regression suite (testdata/scenarios/*.golden)
// diffs each scenario's transcript against a checked-in file, and
// experiment E13 replays a scenario matrix to score per-persona
// detection precision and recall.
package simulate

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"semagent/internal/chat"
	"semagent/internal/clock"
	"semagent/internal/core"
	"semagent/internal/journal"
	"semagent/internal/memnet"
	"semagent/internal/pipeline"
)

// simEpoch is the virtual instant every scenario starts at. Fixed so
// transcript timestamps are identical across runs and machines.
var simEpoch = time.Date(2026, time.March, 2, 9, 0, 0, 0, time.UTC)

// settleTimeout bounds each real-time wait for the stack to go idle; a
// scenario that cannot settle is a bug surfaced as an error, never a
// hang.
const settleTimeout = 30 * time.Second

// simClient is the simulator's end of one participant connection.
type simClient struct {
	name, room string
	persona    PersonaKind
	conn       *memnet.Conn
	codec      *chat.Codec
	// inbox collects messages read since the last transcript flush.
	inbox []chat.Message
	alive bool
}

// read blocks for the next message (bounded by settleTimeout).
func (c *simClient) read() (chat.Message, error) {
	//semalint:allow injectedclock: the settle guard bounds a real blocking read on a live conn; virtual time cannot unblock it
	_ = c.conn.SetReadDeadline(time.Now().Add(settleTimeout))
	m, err := c.codec.Read()
	if err != nil {
		return m, fmt.Errorf("client %s: read: %w", c.name, err)
	}
	c.inbox = append(c.inbox, m)
	return m, nil
}

// readUntil reads (collecting into the inbox) until pred matches.
func (c *simClient) readUntil(pred func(chat.Message) bool) error {
	for {
		m, err := c.read()
		if err != nil {
			return err
		}
		if pred(m) {
			return nil
		}
	}
}

// drainAvailable consumes every message already delivered to this
// client's buffers without blocking for more. Sound only after the
// server has quiesced.
func (c *simClient) drainAvailable() error {
	for c.codec.Buffered() > 0 || c.conn.Pending() > 0 {
		if _, err := c.read(); err != nil {
			return err
		}
	}
	return nil
}

// runner executes one scenario.
type runner struct {
	sc  *Scenario
	dir string
	vc  *clock.Virtual

	listener *memnet.Listener
	server   *chat.Server
	sup      *core.Supervisor
	rec      *recorder
	mgr      *journal.Manager
	stores   journal.Stores

	clients    map[string]*simClient
	sentByUser map[string]int
	tr         *transcript
	recovery   *RecoveryStats
	recoveries []RecoveryStats

	// cluster is non-nil when the scenario runs on the multi-node
	// fabric; failovers collects every StepKillNode promotion and
	// leaseRaces every StepSkewRace acquisition attempt.
	cluster    *clusterRuntime
	failovers  []FailoverStats
	leaseRaces []LeaseRaceStats

	// curStep tags drained deliveries with the step that produced them.
	curStep    int
	deliveries []Delivery
	// pipeTotal accumulates the pipeline counters of server incarnations
	// already torn down by a crash; buildResult merges the final one in.
	pipeTotal pipeline.Stats

	// shedByRoom is fed by the chat server's OnShed seam; the mutex is
	// the runner's only concurrently-touched state (sheds happen on the
	// client reader goroutines).
	shedMu     sync.Mutex
	shedByRoom map[string]int
}

func (r *runner) copyShedByRoom() map[string]int {
	r.shedMu.Lock()
	defer r.shedMu.Unlock()
	out := make(map[string]int, len(r.shedByRoom))
	for room, n := range r.shedByRoom {
		out[room] = n
	}
	return out
}

// Run replays the scenario and returns its transcript and statistics.
// dir is the journal data directory (required when sc.Journal; a test
// passes t.TempDir()).
func Run(sc *Scenario, dir string) (*Result, error) {
	if sc.GateBursts && !sc.Async {
		return nil, fmt.Errorf("simulate %s: GateBursts requires Async", sc.Name)
	}
	if sc.Cluster != nil {
		if dir == "" {
			return nil, fmt.Errorf("simulate %s: Cluster requires a data dir", sc.Name)
		}
		// Cluster sessions are journaled by definition: failover is a
		// replay of the shipped WAL.
		sc.Journal = true
	}
	if sc.Journal && dir == "" {
		return nil, fmt.Errorf("simulate %s: Journal requires a data dir", sc.Name)
	}
	if sc.StepInterval <= 0 {
		sc.StepInterval = 2 * time.Second
	}
	r := &runner{
		sc:         sc,
		dir:        dir,
		vc:         clock.NewVirtual(simEpoch),
		clients:    make(map[string]*simClient),
		sentByUser: make(map[string]int),
		tr:         newTranscript(sc),
		shedByRoom: make(map[string]int),
	}
	if err := r.start(); err != nil {
		return nil, err
	}
	for i, st := range sc.Steps {
		if err := r.step(i, st); err != nil {
			return nil, fmt.Errorf("simulate %s step %d: %w", sc.Name, i+1, err)
		}
	}
	return r.finish()
}

// start builds the supervisor (over journaled stores when configured),
// the recorder, and a server listening on a fresh in-memory transport.
// It is called once at scenario start and again after a StepCrash.
func (r *runner) start() error {
	if r.sc.Cluster != nil {
		return r.startCluster()
	}
	cfg := core.Config{Now: r.vc.Now}
	if r.sc.Journal {
		stores, err := journal.LoadStores(r.dir)
		if err != nil {
			return fmt.Errorf("load stores: %w", err)
		}
		mgr, err := journal.Open(r.dir, stores, journal.Options{
			// Per-record sync makes the crash point exact: every
			// mutation the session applied is on disk, so recovery is a
			// deterministic function of the script.
			SyncEveryRecord:    true,
			CheckpointBytes:    -1,
			CheckpointInterval: -1,
			Clock:              r.vc,
		})
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		r.stores, r.mgr = stores, mgr
		cfg.Ontology = stores.Ontology
		cfg.Corpus = stores.Corpus
		cfg.Profiles = stores.Profiles
		cfg.FAQ = stores.FAQ
	}
	sup, err := core.New(cfg)
	if err != nil {
		return fmt.Errorf("build supervisor: %w", err)
	}
	r.sup = sup
	if r.rec == nil {
		r.rec = newRecorder(sup)
	} else {
		r.rec.swap(sup)
	}
	workers := r.sc.Workers
	if workers <= 0 {
		workers = 2 // pinned: GOMAXPROCS would vary by machine
	}
	r.listener = memnet.NewListener()
	r.server = chat.NewServer(chat.ServerOptions{
		Supervisor:     r.rec,
		Async:          r.sc.Async,
		Workers:        workers,
		SuperviseQueue: r.sc.SuperviseQueue,
		SendQueue:      1024, // ample: a sim client must never be "stalled"
		HistorySize:    r.sc.HistorySize,
		ShedPolicy:     r.sc.ShedPolicy,
		RoomHighWater:  r.sc.RoomHighWater,
		OnShed: func(room string) {
			r.shedMu.Lock()
			r.shedByRoom[room]++
			r.shedMu.Unlock()
		},
		Clock: r.vc,
	})
	r.server.Serve(r.listener)
	return nil
}

// settle blocks until the whole stack is idle, then drains every
// delivered message into the clients' inboxes.
func (r *runner) settle() error {
	if cr := r.cluster; cr != nil {
		// Cluster-wide barrier: every node's server idle AND every
		// gateway link parked with a current, live backend — observed in
		// one poll, so nothing is in flight across the relay hop either.
		if !clock.Until(settleTimeout, func() bool {
			return cr.fab.NodesIdle() && cr.gw.Idle()
		}) {
			return fmt.Errorf("cluster did not quiesce")
		}
	} else if !r.server.Quiesce(settleTimeout) {
		return fmt.Errorf("server did not quiesce")
	}
	for _, name := range r.clientNames() {
		c := r.clients[name]
		if !c.alive {
			continue
		}
		if err := c.drainAvailable(); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) clientNames() []string {
	names := make([]string, 0, len(r.clients))
	for name := range r.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// flushInboxes renders every client's drained messages (clients in name
// order, each inbox in arrival order) into both the transcript and the
// structured delivery log, and clears them.
func (r *runner) flushInboxes() {
	for _, name := range r.clientNames() {
		c := r.clients[name]
		for _, m := range c.inbox {
			r.tr.message(c.name, m)
			r.deliveries = append(r.deliveries, Delivery{
				Step: r.curStep, Client: c.name, Type: m.Type,
				Room: m.Room, From: m.From, Agent: m.Agent, Text: m.Text,
			})
		}
		c.inbox = nil
	}
}

func (r *runner) step(i int, st Step) error {
	r.curStep = i
	if st.Kind == StepAdvance {
		r.vc.Advance(st.Advance)
		r.tr.step(i, fmt.Sprintf("advance clock by %s", st.Advance))
		return nil
	}
	r.vc.Advance(r.sc.StepInterval)
	var err error
	switch st.Kind {
	case StepJoin:
		r.tr.step(i, fmt.Sprintf("join %s -> #%s", st.User, st.Room))
		err = r.join(st)
	case StepSay:
		r.tr.step(i, fmt.Sprintf("say %s #%s %q", st.User, st.Room, st.Texts[0]))
		err = r.say(st)
	case StepBurst:
		r.tr.step(i, fmt.Sprintf("burst %s #%s x%d (rapid fire, no settling)", st.User, st.Room, len(st.Texts)))
		err = r.burst(st)
	case StepLeave:
		r.tr.step(i, fmt.Sprintf("leave %s #%s", st.User, st.Room))
		err = r.leave(st, false)
	case StepDrop:
		desc := "drop %s #%s (abrupt disconnect"
		if st.Partial {
			desc += ", torn frame on the wire"
		}
		r.tr.step(i, fmt.Sprintf(desc+")", st.User, st.Room))
		err = r.leave(st, true)
	case StepCrash:
		r.tr.step(i, "crash: process dies, journal unsealed; recover from WAL replay")
		err = r.crash()
	case StepKillNode:
		if st.Stage > 0 {
			r.tr.step(i, fmt.Sprintf("kill node %s: incarnation dies, failover crashes at stage %d and resumes", st.Node, st.Stage))
		} else {
			r.tr.step(i, fmt.Sprintf("kill node %s: incarnation dies, warm standby promoted after lease expiry", st.Node))
		}
		err = r.killNode(st)
	case StepPartition:
		r.tr.step(i, fmt.Sprintf("partition node %s: gateway links severed, resume-reconnect to same owner", st.Node))
		err = r.partitionNode(st)
	case StepCutShip:
		r.tr.step(i, fmt.Sprintf("cut ship %s: WAL stream to standby severed, client edge stays up", st.Node))
		err = r.cutShip(st)
	case StepHealShip:
		r.tr.step(i, fmt.Sprintf("heal ship %s: WAL stream reconnected, backlog ships", st.Node))
		err = r.healShip(st)
	case StepSinkFault:
		r.tr.step(i, fmt.Sprintf("sink fault %s: standby rejects applies until healed", st.Node))
		err = r.sinkFault(st)
	case StepSkewRace:
		r.tr.step(i, fmt.Sprintf("skew race %s: clock offset %s, race every other lineage's leases", st.Node, st.Skew))
		err = r.skewRace(st)
	default:
		err = fmt.Errorf("unknown step kind %d", st.Kind)
	}
	if err != nil {
		return err
	}
	if err := r.settle(); err != nil {
		return err
	}
	r.flushInboxes()
	return nil
}

func (r *runner) join(st Step) error {
	conn, err := r.dialEdge()
	if err != nil {
		return err
	}
	c := &simClient{
		name:    st.User,
		room:    st.Room,
		persona: r.sc.Personas[st.User],
		conn:    conn.(*memnet.Conn),
		codec:   chat.NewCodec(conn),
		alive:   true,
	}
	r.clients[st.User] = c
	if err := c.codec.Write(chat.Message{Type: chat.TypeJoin, Room: st.Room, From: st.User}); err != nil {
		return err
	}
	if err := c.readUntil(func(m chat.Message) bool { return m.Type == chat.TypeWelcome }); err != nil {
		return err
	}
	// The join broadcast reaches the joiner too; seeing it proves the
	// fan-out (to everyone) is underway, which Quiesce then completes.
	return c.readUntil(func(m chat.Message) bool {
		return m.Type == chat.TypeSystem && m.Text == st.User+" joined the room"
	})
}

func (r *runner) say(st Step) error {
	c := r.clients[st.User]
	if c == nil || !c.alive {
		return fmt.Errorf("say from unknown or disconnected user %s", st.User)
	}
	r.rec.expect(st.User, st.Expect[0])
	r.sentByUser[st.User]++
	if err := c.codec.Write(chat.Message{Type: chat.TypeSay, Text: st.Texts[0]}); err != nil {
		return err
	}
	// Reading back the sender's own broadcast echo proves the say has
	// been handled (and, in async mode, submitted for supervision).
	return c.readUntil(func(m chat.Message) bool {
		return m.Type == chat.TypeChat && m.From == st.User && m.Text == st.Texts[0]
	})
}

func (r *runner) burst(st Step) error {
	c := r.clients[st.User]
	if c == nil || !c.alive {
		return fmt.Errorf("burst from unknown or disconnected user %s", st.User)
	}
	srv, err := r.roomServer(st.Room)
	if err != nil {
		return err
	}
	var before pipeline.Stats
	if r.sc.GateBursts {
		before, _ = srv.SupervisionStats()
		r.rec.closeGate()
		defer r.rec.openGate()
	}
	for i, text := range st.Texts {
		r.rec.expect(st.User, st.Expect[i])
		r.sentByUser[st.User]++
		if err := c.codec.Write(chat.Message{Type: chat.TypeSay, Text: text}); err != nil {
			return err
		}
	}
	// All echoes back: every line has been broadcast and its supervision
	// submitted (or refused by admission control).
	echoes := 0
	err = c.readUntil(func(m chat.Message) bool {
		if m.Type == chat.TypeChat && m.From == st.User {
			echoes++
		}
		return echoes == len(st.Texts)
	})
	if err != nil {
		return err
	}
	if r.sc.GateBursts {
		// With the supervisor gated, shedding is decided purely by queue
		// depth. Wait for the admission ledger to account for every line
		// before releasing the gate, so accepted-vs-shed is exact.
		want := int64(len(st.Texts))
		ok := clock.Until(settleTimeout, func() bool {
			st, _ := srv.SupervisionStats()
			return (st.Submitted+st.ShedNew)-(before.Submitted+before.ShedNew) >= want
		})
		if !ok {
			return fmt.Errorf("burst accounting never settled")
		}
		r.rec.openGate()
	}
	return nil
}

// leave disconnects st.User — politely (protocol leave) or abruptly
// (drop, optionally leaving a torn frame on the wire).
func (r *runner) leave(st Step, drop bool) error {
	c := r.clients[st.User]
	if c == nil || !c.alive {
		return fmt.Errorf("leave of unknown or disconnected user %s", st.User)
	}
	var witness *simClient
	for _, name := range r.clientNames() {
		other := r.clients[name]
		if other.alive && other.name != st.User && other.room == st.Room {
			witness = other
			break
		}
	}
	if drop {
		if st.Partial {
			// A torn frame: the client died mid-message.
			if _, err := c.conn.Write([]byte(`{"type":"say","text":"i was about to sa`)); err != nil {
				return err
			}
		}
		_ = c.conn.Close()
	} else {
		if err := c.codec.Write(chat.Message{Type: chat.TypeLeave}); err != nil {
			return err
		}
	}
	c.alive = false
	if witness != nil {
		return witness.readUntil(func(m chat.Message) bool {
			return m.Type == chat.TypeSystem && m.Text == st.User+" left the room"
		})
	}
	// Last member out: nothing observable remains, the membership table
	// is the only signal.
	srv, err := r.roomServer(st.Room)
	if err != nil {
		return err
	}
	if !clock.Until(settleTimeout, func() bool {
		for _, name := range srv.Members(st.Room) {
			if name == st.User {
				return false
			}
		}
		return true
	}) {
		return fmt.Errorf("departure of %s never observed", st.User)
	}
	return nil
}

// crash kills the session the hard way — journal left unsealed, every
// connection cut — then rebuilds the supervisor from WAL replay and
// restarts the server. The recorder (and its session-wide verdict log)
// survives; the knowledge stores must come back via recovery.
func (r *runner) crash() error {
	if r.cluster != nil {
		return fmt.Errorf("StepCrash is not supported in cluster mode (use StepKillNode)")
	}
	if r.mgr == nil {
		return fmt.Errorf("StepCrash requires Scenario.Journal")
	}
	if err := r.settle(); err != nil {
		return err
	}
	preCorpus := r.stores.Corpus.Len()
	preFAQ := r.stores.FAQ.Len()
	preJournal := r.mgr.Stats()
	_ = r.server.Close()
	if pst, ok := r.server.SupervisionStats(); ok {
		// This incarnation's pipeline dies with the crash; bank its
		// counters so the session-wide totals survive.
		r.pipeTotal = r.pipeTotal.Merge(pst)
	}
	r.mgr.Abandon()
	for _, name := range r.clientNames() {
		c := r.clients[name]
		if c.alive {
			c.alive = false
			_ = c.conn.Close()
			r.tr.note(fmt.Sprintf("%s: connection lost in crash", c.name))
		}
	}
	r.mgr = nil
	if err := r.start(); err != nil {
		return err
	}
	rs := r.mgr.Stats().Replay
	r.recovery = &RecoveryStats{
		ReplayedRecords:   rs.Applied,
		CorpusBefore:      preCorpus,
		CorpusAfter:       r.stores.Corpus.Len(),
		FAQBefore:         preFAQ,
		FAQAfter:          r.stores.FAQ.Len(),
		PreCrashLSN:       preJournal.LastLSN,
		PreCrashSyncedLSN: preJournal.SyncedLSN,
		ReplayLastLSN:     rs.LastLSN,
		ReplayErrors:      rs.Errors,
	}
	r.recoveries = append(r.recoveries, *r.recovery)
	r.tr.note(fmt.Sprintf("recovery: replayed %d WAL records; corpus %d -> %d, faq %d -> %d",
		rs.Applied, preCorpus, r.recovery.CorpusAfter, preFAQ, r.recovery.FAQAfter))
	return nil
}

// finish tears the session down and assembles the result.
func (r *runner) finish() (*Result, error) {
	if err := r.settle(); err != nil {
		return nil, err
	}
	r.curStep = len(r.sc.Steps)
	r.flushInboxes()
	var pst pipeline.Stats
	var hasPipe bool
	var jstats *journal.Stats
	if cr := r.cluster; cr != nil {
		for _, n := range cr.live() {
			if st, ok := n.server.SupervisionStats(); ok {
				pst = pst.Merge(st)
				hasPipe = true
			}
		}
	} else {
		pst, hasPipe = r.server.SupervisionStats()
		if r.mgr != nil {
			st := r.mgr.Stats()
			jstats = &st
		}
	}
	res := buildResult(r, pst, hasPipe, jstats)
	r.tr.summary(res)
	res.Transcript = r.tr.bytes()

	if cr := r.cluster; cr != nil {
		if err := cr.gw.Close(); err != nil {
			return nil, fmt.Errorf("gateway close: %w", err)
		}
		if err := cr.fab.Close(); err != nil {
			return nil, fmt.Errorf("fabric close: %w", err)
		}
		if errs := cr.fab.ShipErrors(); len(errs) > 0 {
			return nil, fmt.Errorf("wal shipping: %w", errs[0])
		}
		return res, nil
	}
	if err := r.server.Close(); err != nil {
		return nil, fmt.Errorf("server close: %w", err)
	}
	if r.mgr != nil {
		if err := r.mgr.Close(); err != nil {
			return nil, fmt.Errorf("journal close: %w", err)
		}
	}
	return res, nil
}
