package simulate

import (
	"sync"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/corpus"
	"semagent/internal/workload"
)

// VerdictEntry is one supervised message with its ground truth. The
// full per-message log is exported on Result.VerdictLog so the chaos
// invariant checkers (internal/simulate/gen) can audit every verdict
// against the script — no verdict may exist for a never-sent message.
type VerdictEntry struct {
	Room, User, Text string
	Expect           workload.Kind
	Verdict          corpus.Verdict
	// Agents are the responder names of the interventions this message
	// drew (in response order).
	Agents []string
}

// recorder wraps the core Supervisor as the chat.Supervisor: it matches
// every processed message against the ground-truth expectation queued
// when the script sent it, logs the verdict, and (when gated) holds
// processing shut so a flooding burst's shed decisions depend only on
// queue depth. The recorder survives a mid-session crash/recovery —
// only its inner supervisor is swapped — so the verdict log spans the
// whole session.
type recorder struct {
	mu      sync.Mutex
	inner   *core.Supervisor
	gate    chan struct{}
	expects map[string][]workload.Kind // per-user FIFO of ground truth
	log     []VerdictEntry
	// resolve, when set, routes each message to the supervisor owning
	// its room (cluster mode: one supervisor per node, DESIGN.md D15).
	// It overrides inner, which stays nil in cluster mode.
	resolve func(room string) *core.Supervisor
}

func newRecorder(sup *core.Supervisor) *recorder {
	return &recorder{inner: sup, expects: make(map[string][]workload.Kind)}
}

// swap installs the post-recovery supervisor.
func (r *recorder) swap(sup *core.Supervisor) {
	r.mu.Lock()
	r.inner = sup
	r.mu.Unlock()
}

// expect queues ground truth for the next message user sends. Message
// order is preserved per room (pipeline sharding) and each user speaks
// in one room at a time, so a per-user FIFO matches exactly.
func (r *recorder) expect(user string, kind workload.Kind) {
	r.mu.Lock()
	r.expects[user] = append(r.expects[user], kind)
	r.mu.Unlock()
}

// closeGate makes Process block until openGate; openGate releases it.
func (r *recorder) closeGate() {
	r.mu.Lock()
	r.gate = make(chan struct{})
	r.mu.Unlock()
}

func (r *recorder) openGate() {
	r.mu.Lock()
	if r.gate != nil {
		close(r.gate)
		r.gate = nil
	}
	r.mu.Unlock()
}

// Process implements chat.Supervisor.
func (r *recorder) Process(room, user, text string) []chat.Response {
	r.mu.Lock()
	gate := r.gate
	sup := r.inner
	// The expectation is consumed up front: even if the supervisor
	// errors below, the per-user FIFO must stay aligned with the
	// message stream or every later verdict would be scored against
	// the wrong ground truth.
	entry := VerdictEntry{Room: room, User: user, Text: text, Verdict: corpus.VerdictUnknown}
	if q := r.expects[user]; len(q) > 0 {
		entry.Expect = q[0]
		r.expects[user] = q[1:]
	}
	resolve := r.resolve
	r.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if resolve != nil {
		sup = resolve(room)
	}
	if sup == nil {
		// Owner died between enqueue and processing (cluster mode); the
		// expectation was already consumed, so the entry still lands in
		// the log with VerdictUnknown.
		r.mu.Lock()
		r.log = append(r.log, entry)
		r.mu.Unlock()
		return nil
	}

	a, err := sup.Process(room, user, text)
	if err == nil {
		entry.Verdict = a.Verdict
		for _, resp := range a.Responses {
			entry.Agents = append(entry.Agents, resp.Agent)
		}
	}

	r.mu.Lock()
	r.log = append(r.log, entry)
	r.mu.Unlock()
	if err != nil {
		return nil
	}
	return a.Responses
}

// entries returns a copy of the verdict log.
func (r *recorder) entries() []VerdictEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]VerdictEntry, len(r.log))
	copy(out, r.log)
	return out
}

// unsupervised returns, per user, the expectations never consumed —
// messages whose supervision was shed (or cut off by a crash).
func (r *recorder) unsupervised() map[string][]workload.Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]workload.Kind)
	for user, q := range r.expects {
		if len(q) > 0 {
			out[user] = append([]workload.Kind(nil), q...)
		}
	}
	return out
}
