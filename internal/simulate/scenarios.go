package simulate

import (
	"time"

	"semagent/internal/pipeline"
)

// Scenarios builds the golden regression corpus: every scenario is a
// reproducible classroom situation the supervision stack must keep
// handling the same way. The set covers all seven personas and three
// fault injections (abrupt client drop mid-message, journal crash with
// recovery mid-session, and an admission-control shed storm).
func Scenarios() []*Scenario {
	return []*Scenario{
		basicLecture(),
		qaSession(),
		abusiveOutbursts(),
		offtopicDrift(),
		mixedClassroom(),
		rapidFireSpam(),
		shedStorm(),
		lateJoiners(),
		clientDropMidMessage(),
		journalCrashRecovery(),
		quizReview(),
		multiRoomParallel(),
	}
}

// ScenarioByName finds a scenario in the corpus.
func ScenarioByName(name string) *Scenario {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}

// basicLecture: three contributors discuss the course while a lurker
// listens; everything should pass supervision untouched.
func basicLecture() *Scenario {
	sc := &Scenario{
		Name:        "basic-lecture",
		Description: "on-topic contributors and a silent lurker; supervision stays quiet",
		Seed:        101,
	}
	b := newScript(sc)
	b.join("alice", "algo", PersonaContributor)
	b.join("bob", "algo", PersonaContributor)
	b.join("carol", "algo", PersonaContributor)
	b.join("lena", "algo", PersonaLurker)
	for i := 0; i < 4; i++ {
		b.say("alice", "algo")
		b.say("bob", "algo")
		b.say("carol", "algo")
	}
	b.leave("lena", "algo")
	return sc
}

// qaSession: questioners ask, contributors answer on topic — the
// adjacency pairs the corpora generator mines into the FAQ.
func qaSession() *Scenario {
	sc := &Scenario{
		Name:        "qa-session",
		Description: "question/answer adjacency pairs feed QA answering and FAQ mining",
		Seed:        202,
	}
	b := newScript(sc)
	b.join("quinn", "ds-course", PersonaQuestioner)
	b.join("quentin", "ds-course", PersonaQuestioner)
	b.join("amy", "ds-course", PersonaContributor)
	for i := 0; i < 4; i++ {
		b.ask("quinn", "amy", "ds-course")
		b.ask("quentin", "amy", "ds-course")
	}
	// An expired pairing window: the question goes stale before the
	// topical answer arrives, so no pair is mined from it.
	q := b.g.Question(false)
	b.sayText("quinn", "ds-course", q.Text, q.Kind)
	b.advance(3 * time.Minute)
	b.say("amy", "ds-course")
	return sc
}

// abusiveOutbursts: an abusive student heckles a working classroom; the
// Learning_Angel intervenes privately.
func abusiveOutbursts() *Scenario {
	sc := &Scenario{
		Name:        "abusive-outbursts",
		Description: "hostile unparseable outbursts drawing private Learning_Angel comments",
		Seed:        303,
	}
	b := newScript(sc)
	b.join("alice", "algo", PersonaContributor)
	b.join("bob", "algo", PersonaContributor)
	b.join("mallory", "algo", PersonaAbusive)
	for i := 0; i < 3; i++ {
		b.say("alice", "algo")
		b.say("mallory", "algo")
		b.say("bob", "algo")
	}
	b.say("mallory", "algo")
	return sc
}

// offtopicDrift: a drifter keeps producing grammatical nonsense about
// the course domain; the Semantic Agent flags it.
func offtopicDrift() *Scenario {
	sc := &Scenario{
		Name:        "offtopic-drift",
		Description: "grammatical but domain-nonsensical drift flagged by the Semantic Agent",
		Seed:        404,
	}
	b := newScript(sc)
	b.join("alice", "ds-course", PersonaContributor)
	b.join("dora", "ds-course", PersonaDrifter)
	b.join("bob", "ds-course", PersonaContributor)
	for i := 0; i < 4; i++ {
		b.say("alice", "ds-course")
		b.say("dora", "ds-course")
	}
	b.say("bob", "ds-course")
	return sc
}

// mixedClassroom: every persona in one async two-room session — the
// E13 shape at golden size.
func mixedClassroom() *Scenario {
	sc := &Scenario{
		Name:        "mixed-classroom",
		Description: "all seven personas across two rooms on the async sharded pipeline",
		Seed:        505,
		Async:       true,
		Workers:     2,
		HistorySize: 8,
	}
	b := newScript(sc)
	b.join("alice", "room-a", PersonaContributor)
	b.join("dora", "room-a", PersonaDrifter)
	b.join("quinn", "room-a", PersonaQuestioner)
	b.join("lena", "room-a", PersonaLurker)
	b.join("bob", "room-b", PersonaContributor)
	b.join("mallory", "room-b", PersonaAbusive)
	b.join("spike", "room-b", PersonaSpammer)
	for i := 0; i < 3; i++ {
		b.say("alice", "room-a")
		b.say("dora", "room-a")
		b.ask("quinn", "alice", "room-a")
		b.say("bob", "room-b")
		b.say("mallory", "room-b")
		b.say("spike", "room-b")
	}
	b.join("zoe", "room-a", PersonaLateJoiner)
	b.say("zoe", "room-a")
	b.say("alice", "room-a")
	b.drop("zoe", "room-a", false)
	return sc
}

// rapidFireSpam: a spammer floods an async room without admission
// control — backpressure absorbs the burst, nothing is lost.
func rapidFireSpam() *Scenario {
	sc := &Scenario{
		Name:        "rapid-fire-spam",
		Description: "rapid-fire burst under blocking backpressure: every line still supervised",
		Seed:        606,
		Async:       true,
		Workers:     2,
		// A small queue: the burst overruns it and the flooding client's
		// reader is back-pressured, but supervision coverage stays 100%.
		SuperviseQueue: 4,
	}
	b := newScript(sc)
	b.join("alice", "algo", PersonaContributor)
	b.join("spike", "algo", PersonaSpammer)
	b.say("alice", "algo")
	b.burst("spike", "algo", 12)
	b.say("alice", "algo")
	return sc
}

// shedStorm: the same flood with admission control — supervision of the
// excess is deterministically shed, chat delivery never degrades.
func shedStorm() *Scenario {
	sc := &Scenario{
		Name:        "shed-storm",
		Description: "admission control sheds a gated flood at the room watermark (D10)",
		Seed:        707,
		Async:       true,
		Workers:     2,
		ShedPolicy:  pipeline.ShedRejectNew,
		// With supervision gated shut during the burst, exactly
		// RoomHighWater lines are accepted and the rest shed.
		RoomHighWater: 4,
		GateBursts:    true,
	}
	b := newScript(sc)
	b.join("alice", "algo", PersonaContributor)
	b.join("spike", "algo", PersonaSpammer)
	b.say("alice", "algo")
	b.burst("spike", "algo", 20)
	b.say("alice", "algo")
	return sc
}

// lateJoiners: history replay for a late joiner, then churn.
func lateJoiners() *Scenario {
	sc := &Scenario{
		Name:        "late-joiners",
		Description: "history replay catches a late joiner up; a disconnector churns out",
		Seed:        808,
		HistorySize: 6,
	}
	b := newScript(sc)
	b.join("alice", "algo", PersonaContributor)
	b.join("bob", "algo", PersonaContributor)
	for i := 0; i < 4; i++ {
		b.say("alice", "algo")
		b.say("bob", "algo")
	}
	b.join("zoe", "algo", PersonaLateJoiner) // sees the last 6 lines replayed
	b.say("zoe", "algo")
	b.say("alice", "algo")
	b.leave("zoe", "algo")
	b.say("bob", "algo")
	return sc
}

// clientDropMidMessage: a connection dies with a torn frame on the
// wire; the room must observe the departure and stay healthy.
func clientDropMidMessage() *Scenario {
	sc := &Scenario{
		Name:        "client-drop-midmessage",
		Description: "fault: abrupt disconnect with a half-written frame; the room stays healthy",
		Seed:        909,
	}
	b := newScript(sc)
	b.join("alice", "algo", PersonaContributor)
	b.join("ghost", "algo", PersonaLateJoiner)
	b.say("alice", "algo")
	b.say("ghost", "algo")
	b.drop("ghost", "algo", true)
	b.say("alice", "algo")
	b.say("alice", "algo")
	return sc
}

// journalCrashRecovery: the process dies mid-session with the journal
// unsealed; recovery must reproduce every learned fact before class
// resumes.
func journalCrashRecovery() *Scenario {
	sc := &Scenario{
		Name:        "journal-crash-recovery",
		Description: "fault: crash with unsealed WAL mid-session; stores recovered by replay",
		Seed:        1010,
		Journal:     true,
	}
	b := newScript(sc)
	b.join("alice", "ds-course", PersonaContributor)
	b.join("quinn", "ds-course", PersonaQuestioner)
	b.say("alice", "ds-course")
	b.ask("quinn", "alice", "ds-course")
	b.say("alice", "ds-course")
	b.crash()
	b.join("alice", "ds-course", PersonaContributor)
	b.join("quinn", "ds-course", PersonaQuestioner)
	b.say("alice", "ds-course")
	b.ask("quinn", "alice", "ds-course")
	return sc
}

// quizReview: a quiz-style session of checkable questions, including
// one about an unknown term the QA system must refuse.
func quizReview() *Scenario {
	sc := &Scenario{
		Name:        "quiz-review",
		Description: "quiz session: course questions answered, out-of-ontology question refused",
		Seed:        1111,
	}
	b := newScript(sc)
	b.join("tutor", "quiz", PersonaContributor)
	b.join("quinn", "quiz", PersonaQuestioner)
	b.join("quentin", "quiz", PersonaQuestioner)
	for i := 0; i < 3; i++ {
		b.say("quinn", "quiz")
		b.say("quentin", "quiz")
		b.say("tutor", "quiz")
	}
	// An out-of-ontology probe: answering it would be worse than
	// refusing (E4's refusal criterion).
	q := b.g.Question(true)
	b.sayText("quinn", "quiz", q.Text, q.Kind)
	b.say("tutor", "quiz")
	return sc
}

// multiRoomParallel: three rooms running on the sharded pipeline at
// once, one step at a time — per-room order under concurrency.
func multiRoomParallel() *Scenario {
	sc := &Scenario{
		Name:        "multi-room-parallel",
		Description: "three classrooms sharded across the async pipeline",
		Seed:        1212,
		Async:       true,
		Workers:     3,
	}
	b := newScript(sc)
	rooms := []string{"algo", "ds-course", "os"}
	users := map[string][2]string{
		"algo":      {"alice", "quinn"},
		"ds-course": {"bob", "dora"},
		"os":        {"carol", "mallory"},
	}
	b.join("alice", "algo", PersonaContributor)
	b.join("quinn", "algo", PersonaQuestioner)
	b.join("bob", "ds-course", PersonaContributor)
	b.join("dora", "ds-course", PersonaDrifter)
	b.join("carol", "os", PersonaContributor)
	b.join("mallory", "os", PersonaAbusive)
	for i := 0; i < 3; i++ {
		for _, room := range rooms {
			pair := users[room]
			b.say(pair[0], room)
			b.say(pair[1], room)
		}
	}
	return sc
}
