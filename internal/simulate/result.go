package simulate

import (
	"sort"

	"semagent/internal/chat"
	"semagent/internal/cluster"
	"semagent/internal/core"
	"semagent/internal/corpus"
	"semagent/internal/journal"
	"semagent/internal/pipeline"
	"semagent/internal/workload"
)

// PersonaStats scores one persona's session: how much it spoke, how
// much of that was supervised (vs shed), and how the stack's verdicts
// compare to the scripted ground truth. "Flagging" means a syntax- or
// semantic-error verdict — the interventions E13 scores.
type PersonaStats struct {
	Persona    PersonaKind `json:"persona"`
	Sent       int         `json:"sent"`
	Supervised int         `json:"supervised"`
	Shed       int         `json:"shed"`

	// Detection confusion over supervised messages.
	TruePos  int `json:"true_pos"`
	FalsePos int `json:"false_pos"`
	FalseNeg int `json:"false_neg"`
	TrueNeg  int `json:"true_neg"`

	// Question routing.
	Questions int `json:"questions"`
	Answered  int `json:"answered"`
}

// Precision is TP/(TP+FP); 1 when nothing was flagged.
func (s *PersonaStats) Precision() float64 {
	if s.TruePos+s.FalsePos == 0 {
		return 1
	}
	return float64(s.TruePos) / float64(s.TruePos+s.FalsePos)
}

// Recall is TP/(TP+FN); 1 when nothing was there to find.
func (s *PersonaStats) Recall() float64 {
	if s.TruePos+s.FalseNeg == 0 {
		return 1
	}
	return float64(s.TruePos) / float64(s.TruePos+s.FalseNeg)
}

// RecoveryStats reports a StepCrash outcome. The LSN watermarks are
// what the durability invariant audits: everything fsync'd before the
// crash (PreCrashSyncedLSN) must be covered by the replay
// (ReplayLastLSN) with zero apply errors — a lost fsync'd mutation is
// exactly a replay that ends below the pre-crash synced watermark.
type RecoveryStats struct {
	ReplayedRecords int `json:"replayed_records"`
	CorpusBefore    int `json:"corpus_before"`
	CorpusAfter     int `json:"corpus_after"`
	FAQBefore       int `json:"faq_before"`
	FAQAfter        int `json:"faq_after"`

	// PreCrashLSN / PreCrashSyncedLSN are the journal's last assigned
	// and last durably fsync'd LSNs at the moment of the crash.
	PreCrashLSN       uint64 `json:"pre_crash_lsn"`
	PreCrashSyncedLSN uint64 `json:"pre_crash_synced_lsn"`
	// ReplayLastLSN is the highest LSN recovery saw; ReplayErrors counts
	// records that failed to apply.
	ReplayLastLSN uint64 `json:"replay_last_lsn"`
	ReplayErrors  int    `json:"replay_errors"`
}

// FailoverStats reports one StepKillNode outcome: the fabric promotion
// record plus the step at which the kill landed. The failover invariant
// audits it the way the durability invariant audits RecoveryStats: the
// standby's shipped watermark (SinkLastLSN) must cover everything the
// dead node had fsync'd (DeadSyncedLSN) and the promotion replay must
// apply cleanly.
type FailoverStats struct {
	// Step is the 0-based scripted step of the StepKillNode.
	Step int `json:"step"`
	cluster.Promotion
}

// LeaseRaceStats reports one StepSkewRace acquisition attempt: the
// fabric's race record plus the step at which it ran. The
// single-writer invariant audits it: a seizure must bump the epoch and
// fence the deposed owner; a refusal must carry the refusing error.
type LeaseRaceStats struct {
	// Step is the 0-based scripted step of the StepSkewRace.
	Step int `json:"step"`
	cluster.LeaseRace
}

// Delivery is one message observed at a client, in arrival order — the
// structured counterpart of a transcript line. The chaos invariant
// checkers consume these instead of parsing transcript text: per-room
// FIFO is asserted over the Delivery sequence of each client.
type Delivery struct {
	// Step is the 0-based scripted step during which the message was
	// drained (len(Steps) for the final settle).
	Step   int          `json:"step"`
	Client string       `json:"client"`
	Type   chat.MsgType `json:"type"`
	Room   string       `json:"room"`
	From   string       `json:"from,omitempty"`
	Agent  string       `json:"agent,omitempty"`
	Text   string       `json:"text"`
}

// Result is everything a scenario run produced: the byte-exact
// transcript and the aggregate statistics E13 and the golden tests
// consume.
type Result struct {
	Scenario   *Scenario
	Transcript []byte

	// Sent counts scripted chat lines; Supervised the ones that reached
	// the supervisor; Unsupervised the remainder (shed or cut off).
	Sent, Supervised, Unsupervised int

	// Verdicts histograms the supervisor's outcomes.
	Verdicts map[corpus.Verdict]int
	// Interventions counts agent responses by responder name.
	Interventions map[string]int
	// PerPersona scores each persona present in the scenario.
	PerPersona map[PersonaKind]*PersonaStats

	// VerdictLog is the session-wide per-message supervision log in
	// processing order (it survives crash/recovery — the recorder does).
	VerdictLog []VerdictEntry
	// Deliveries is every message every client received, in drain order.
	Deliveries []Delivery
	// UnsupervisedByUser counts, per sender, the scripted messages whose
	// supervision never ran (shed by admission control).
	UnsupervisedByUser map[string]int
	// ShedByRoom counts supervision sheds per room, observed through the
	// chat server's OnShed seam as admission control drops them.
	ShedByRoom map[string]int

	// MinedPairs and FAQLen report the corpora generator's QA mining.
	MinedPairs int
	FAQLen     int

	Pipeline    pipeline.Stats
	HasPipeline bool
	// PipelineTotal accumulates pipeline counters across the whole
	// session, including pipelines torn down by crash/recovery cycles
	// (Pipeline alone covers only the final incarnation).
	PipelineTotal pipeline.Stats
	Journal       *journal.Stats
	// Recovery reports the last crash/recovery cycle; Recoveries all of
	// them in order.
	Recovery   *RecoveryStats
	Recoveries []RecoveryStats
	// Failovers reports every StepKillNode promotion, in step order
	// (cluster mode only).
	Failovers []FailoverStats
	// LeaseRaces reports every StepSkewRace acquisition attempt, in
	// step order (cluster mode only).
	LeaseRaces []LeaseRaceStats
	// ShipHealth is the fabric's final replication-health snapshot,
	// taken after the last settle and before teardown. A healthy run
	// ends with zero lag and no impairment flags on every live node;
	// the ship-resumes-or-surfaces invariant audits exactly that.
	ShipHealth []cluster.NodeHealth

	// report is the instructor-facing analyzer summary (post-recovery
	// only, when the scenario crashed: the analyzer is not journaled).
	report string
}

// Report returns the instructor-facing learning-statistics summary.
func (r *Result) Report() string { return r.report }

// Personas returns the per-persona stats in stable (name) order.
func (r *Result) Personas() []*PersonaStats {
	out := make([]*PersonaStats, 0, len(r.PerPersona))
	for _, s := range r.PerPersona {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Persona < out[j].Persona })
	return out
}

func buildResult(r *runner, pst pipeline.Stats, hasPipe bool, jstats *journal.Stats) *Result {
	res := &Result{
		Scenario:      r.sc,
		Verdicts:      make(map[corpus.Verdict]int),
		Interventions: make(map[string]int),
		PerPersona:    make(map[PersonaKind]*PersonaStats),
		VerdictLog:    r.rec.entries(),
		Deliveries:    r.deliveries,
		ShedByRoom:    r.copyShedByRoom(),
		MinedPairs:    r.minedPairs(),
		FAQLen:        r.faqLen(),
		Pipeline:      pst,
		HasPipeline:   hasPipe,
		PipelineTotal: r.pipeTotal.Merge(pst),
		Journal:       jstats,
		Recovery:      r.recovery,
		Recoveries:    r.recoveries,
		Failovers:     r.failovers,
		LeaseRaces:    r.leaseRaces,
		report:        r.analyzerReport(),
	}
	if r.cluster != nil {
		res.ShipHealth = r.cluster.fab.Health()
	}
	persona := func(user string) *PersonaStats {
		kind := r.sc.Personas[user]
		s := res.PerPersona[kind]
		if s == nil {
			s = &PersonaStats{Persona: kind}
			res.PerPersona[kind] = s
		}
		return s
	}
	// Every participant appears, even all-quiet lurkers.
	for user := range r.sc.Personas {
		persona(user)
	}
	for user, n := range r.sentByUser {
		res.Sent += n
		persona(user).Sent += n
	}
	for _, e := range res.VerdictLog {
		res.Supervised++
		res.Verdicts[e.Verdict]++
		s := persona(e.User)
		s.Supervised++
		for _, agent := range e.Agents {
			res.Interventions[agent]++
		}
		flagged := e.Verdict == corpus.VerdictSyntaxError || e.Verdict == corpus.VerdictSemanticError
		should := ShouldFlag(e.Expect)
		switch {
		case flagged && should:
			s.TruePos++
		case flagged && !should:
			s.FalsePos++
		case !flagged && should:
			s.FalseNeg++
		default:
			s.TrueNeg++
		}
		if e.Expect == workload.KindQuestion {
			s.Questions++
			for _, agent := range e.Agents {
				if agent == core.AgentQA {
					s.Answered++
					break
				}
			}
		}
	}
	res.UnsupervisedByUser = make(map[string]int)
	for user, kinds := range r.rec.unsupervised() {
		res.Unsupervised += len(kinds)
		res.UnsupervisedByUser[user] = len(kinds)
		persona(user).Shed += len(kinds)
	}
	return res
}
