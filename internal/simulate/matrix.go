package simulate

import "fmt"

// Matrix builds the E13 scenario matrix: rooms parallel classrooms,
// each populated with the full persona set, speaking for turns rounds
// on the async sharded pipeline, with a rapid-fire burst and late-join/
// drop churn per room. Unlike the golden corpus (fixed small scripts),
// the matrix scales with its parameters — the experiment harness uses
// it to measure per-persona detection precision/recall at workload
// size.
func Matrix(rooms, turns int, seed int64) *Scenario {
	if rooms <= 0 {
		rooms = 2
	}
	if turns <= 0 {
		turns = 3
	}
	sc := &Scenario{
		Name:        fmt.Sprintf("e13-matrix-%dx%d", rooms, turns),
		Description: "E13 persona matrix: every persona in every room, full supervision coverage",
		Seed:        seed,
		Async:       true,
		Workers:     2,
		HistorySize: 8,
	}
	b := newScript(sc)
	roomName := func(r int) string { return fmt.Sprintf("room-%02d", r) }
	user := func(prefix string, r int) string { return fmt.Sprintf("%s-%02d", prefix, r) }

	for r := 0; r < rooms; r++ {
		room := roomName(r)
		b.join(user("con", r), room, PersonaContributor)
		b.join(user("dri", r), room, PersonaDrifter)
		b.join(user("abu", r), room, PersonaAbusive)
		b.join(user("que", r), room, PersonaQuestioner)
		b.join(user("spa", r), room, PersonaSpammer)
		b.join(user("lur", r), room, PersonaLurker)
	}
	for t := 0; t < turns; t++ {
		for r := 0; r < rooms; r++ {
			room := roomName(r)
			b.say(user("con", r), room)
			if t%3 == 2 {
				// Even good students slip: a labelled grammar mutation
				// (workload §3) keeps the contributor's recall honest —
				// some corruptions (word-order swaps) are genuinely hard
				// for the Learning_Angel, so E13 shows the same misses
				// E2 measures instead of a vacuous 1.000 column.
				s := b.g.SyntaxError()
				b.sayText(user("con", r), room, s.Text, s.Kind)
			}
			b.say(user("dri", r), room)
			b.ask(user("que", r), user("con", r), room)
			b.say(user("abu", r), room)
			b.say(user("spa", r), room)
		}
	}
	// Churn and a rapid-fire burst per room (absorbed by backpressure:
	// coverage stays complete, so the confusion counts score the whole
	// workload).
	for r := 0; r < rooms; r++ {
		room := roomName(r)
		b.join(user("late", r), room, PersonaLateJoiner)
		b.say(user("late", r), room)
		b.burst(user("spa", r), room, 4)
		b.drop(user("late", r), room, false)
	}
	return sc
}
