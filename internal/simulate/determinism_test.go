package simulate

import (
	"bytes"
	"testing"
)

// TestSameSeedByteIdenticalTranscripts is the determinism contract
// (DESIGN.md D11): running any scenario twice — fresh servers, fresh
// goroutines, fresh journal directories — produces byte-identical
// transcripts and identical verdict counts.
func TestSameSeedByteIdenticalTranscripts(t *testing.T) {
	for _, sc := range Scenarios() {
		name := sc.Name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// Rebuild the scenario from scratch both times: nothing may
			// leak between runs through the Scenario value either.
			first, err := Run(ScenarioByName(name), t.TempDir())
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := Run(ScenarioByName(name), t.TempDir())
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !bytes.Equal(first.Transcript, second.Transcript) {
				t.Fatalf("transcripts differ between runs:\n%s",
					diffHint(first.Transcript, second.Transcript))
			}
			if len(first.Verdicts) != len(second.Verdicts) {
				t.Fatalf("verdict histograms differ: %v vs %v", first.Verdicts, second.Verdicts)
			}
			for v, n := range first.Verdicts {
				if second.Verdicts[v] != n {
					t.Errorf("verdict %s: %d vs %d", v, n, second.Verdicts[v])
				}
			}
			if first.Supervised != second.Supervised || first.Unsupervised != second.Unsupervised {
				t.Errorf("coverage differs: %d/%d vs %d/%d",
					first.Supervised, first.Unsupervised, second.Supervised, second.Unsupervised)
			}
		})
	}
}

// TestDifferentSeedsDiverge guards against a simulator that ignores its
// seed: two seeds must produce different dialogue.
func TestDifferentSeedsDiverge(t *testing.T) {
	a := basicLecture()
	b := &Scenario{Name: a.Name, Description: a.Description, Seed: a.Seed + 1}
	bb := newScript(b)
	bb.join("alice", "algo", PersonaContributor)
	bb.join("bob", "algo", PersonaContributor)
	for i := 0; i < 4; i++ {
		bb.say("alice", "algo")
		bb.say("bob", "algo")
	}
	ra, err := Run(a, "")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b, "")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ra.Transcript, rb.Transcript) {
		t.Fatal("different seeds produced identical transcripts")
	}
}
