package simulate

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"semagent/internal/chat"
	"semagent/internal/corpus"
)

// transcript renders a scenario run as a stable, human-readable text:
// a config header, one block per scripted step listing every message
// each participant received, and a closing summary. Byte-identical
// transcripts across runs are the package's core contract, so every
// map printed here is sorted and every timestamp comes off the virtual
// clock.
type transcript struct {
	b strings.Builder
}

func newTranscript(sc *Scenario) *transcript {
	t := &transcript{}
	fmt.Fprintf(&t.b, "# scenario: %s\n", sc.Name)
	fmt.Fprintf(&t.b, "# %s\n", sc.Description)
	fmt.Fprintf(&t.b, "# seed=%d async=%v shed=%s room-highwater=%d history=%d journal=%v step-interval=%s\n",
		sc.Seed, sc.Async, sc.ShedPolicy, sc.RoomHighWater, sc.HistorySize, sc.Journal, sc.StepInterval)
	return t
}

func (t *transcript) step(i int, desc string) {
	fmt.Fprintf(&t.b, "\n-- step %d: %s\n", i+1, desc)
}

func (t *transcript) note(text string) {
	fmt.Fprintf(&t.b, "   * %s\n", text)
}

// message renders one received message under the current step.
func (t *transcript) message(client string, m chat.Message) {
	fmt.Fprintf(&t.b, "   %-8s <- [%s] %s\n", client, stamp(m.Time), renderMessage(m))
}

// stamp renders a virtual timestamp as an offset from the scenario
// epoch ("+4s").
func stamp(ts time.Time) string {
	if ts.IsZero() {
		return "  -  "
	}
	return "+" + ts.Sub(simEpoch).String()
}

func renderMessage(m chat.Message) string {
	switch m.Type {
	case chat.TypeWelcome:
		return fmt.Sprintf("welcome %q", m.Text)
	case chat.TypeChat:
		return fmt.Sprintf("chat %s: %q", m.From, m.Text)
	case chat.TypeSystem:
		return fmt.Sprintf("system %q", m.Text)
	case chat.TypeAgent:
		scope := "room"
		if m.Private {
			scope = "private"
		}
		return fmt.Sprintf("agent %s (%s): %q", m.Agent, scope, m.Text)
	case chat.TypeError:
		return fmt.Sprintf("error %q", m.Text)
	default:
		return fmt.Sprintf("%s %q", m.Type, m.Text)
	}
}

// summary appends the closing statistics block.
func (t *transcript) summary(res *Result) {
	fmt.Fprintf(&t.b, "\n== summary ==\n")
	fmt.Fprintf(&t.b, "sent=%d supervised=%d unsupervised=%d\n", res.Sent, res.Supervised, res.Unsupervised)

	verdictOrder := []corpus.Verdict{
		corpus.VerdictCorrect, corpus.VerdictSyntaxError,
		corpus.VerdictSemanticError, corpus.VerdictQuestion, corpus.VerdictUnknown,
	}
	parts := make([]string, 0, len(verdictOrder))
	for _, v := range verdictOrder {
		if c := res.Verdicts[v]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", v, c))
		}
	}
	fmt.Fprintf(&t.b, "verdicts: %s\n", strings.Join(parts, " "))

	agents := make([]string, 0, len(res.Interventions))
	for a := range res.Interventions {
		agents = append(agents, a)
	}
	sort.Strings(agents)
	parts = parts[:0]
	for _, a := range agents {
		parts = append(parts, fmt.Sprintf("%s=%d", a, res.Interventions[a]))
	}
	fmt.Fprintf(&t.b, "interventions: %s\n", strings.Join(parts, " "))
	fmt.Fprintf(&t.b, "faq: mined-pairs=%d entries=%d\n", res.MinedPairs, res.FAQLen)

	if res.HasPipeline {
		p := res.Pipeline
		fmt.Fprintf(&t.b, "pipeline: submitted=%d completed=%d shed-new=%d shed-oldest=%d\n",
			p.Submitted, p.Completed, p.ShedNew, p.ShedOldest)
	}
	if res.Journal != nil {
		fmt.Fprintf(&t.b, "journal: records=%d last-lsn=%d replayed=%d\n",
			res.Journal.Records, res.Journal.LastLSN, res.Journal.Replay.Applied)
	}
	if res.Recovery != nil {
		fmt.Fprintf(&t.b, "recovery: replayed=%d corpus=%d->%d faq=%d->%d\n",
			res.Recovery.ReplayedRecords, res.Recovery.CorpusBefore, res.Recovery.CorpusAfter,
			res.Recovery.FAQBefore, res.Recovery.FAQAfter)
	}

	fmt.Fprintf(&t.b, "per-persona: (detection precision/recall over supervised messages)\n")
	for _, s := range res.Personas() {
		fmt.Fprintf(&t.b, "  %-12s sent=%-3d supervised=%-3d shed=%-3d tp=%d fp=%d fn=%d tn=%d precision=%.2f recall=%.2f",
			s.Persona, s.Sent, s.Supervised, s.Shed,
			s.TruePos, s.FalsePos, s.FalseNeg, s.TrueNeg, s.Precision(), s.Recall())
		if s.Questions > 0 {
			fmt.Fprintf(&t.b, " questions=%d answered=%d", s.Questions, s.Answered)
		}
		fmt.Fprintf(&t.b, "\n")
	}

	fmt.Fprintf(&t.b, "instructor report:\n")
	for _, line := range strings.Split(strings.TrimRight(res.report, "\n"), "\n") {
		fmt.Fprintf(&t.b, "  | %s\n", line)
	}
}

func (t *transcript) bytes() []byte {
	return []byte(t.b.String())
}
