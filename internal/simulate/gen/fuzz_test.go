package gen

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"semagent/internal/simulate"
)

// validateScript asserts the structural well-formedness every generated
// script must have to be replayable: participants join before they act
// (and re-join after a crash cuts them off), dropped connections never
// speak again without re-joining, crashes only appear in journaled
// scenarios, bursts only in gated ones, and every step carries the
// payload its kind requires.
func validateScript(sc *simulate.Scenario) error {
	alive := make(map[string]string) // user -> room
	joined := make(map[string]string)
	for i, st := range sc.Steps {
		switch st.Kind {
		case simulate.StepJoin:
			if st.User == "" || st.Room == "" {
				return fmt.Errorf("step %d: join without user/room", i)
			}
			if room, ok := alive[st.User]; ok {
				return fmt.Errorf("step %d: %s joined while already connected to %s", i, st.User, room)
			}
			if room, ok := joined[st.User]; ok && room != st.Room {
				return fmt.Errorf("step %d: %s re-joined %s but belongs to %s", i, st.User, st.Room, room)
			}
			joined[st.User] = st.Room
			alive[st.User] = st.Room
		case simulate.StepSay, simulate.StepBurst:
			room, ok := alive[st.User]
			if !ok {
				return fmt.Errorf("step %d: %s speaks without a live connection", i, st.User)
			}
			if room != st.Room {
				return fmt.Errorf("step %d: %s speaks in %s but is connected to %s", i, st.User, st.Room, room)
			}
			if len(st.Texts) == 0 || len(st.Texts) != len(st.Expect) {
				return fmt.Errorf("step %d: %d texts vs %d expectations", i, len(st.Texts), len(st.Expect))
			}
			if st.Kind == simulate.StepSay && len(st.Texts) != 1 {
				return fmt.Errorf("step %d: say carries %d texts", i, len(st.Texts))
			}
			if st.Kind == simulate.StepBurst && !sc.GateBursts {
				return fmt.Errorf("step %d: burst in an ungated scenario", i)
			}
			for _, txt := range st.Texts {
				if txt == "" {
					return fmt.Errorf("step %d: empty chat line", i)
				}
			}
		case simulate.StepLeave, simulate.StepDrop:
			if _, ok := alive[st.User]; !ok {
				return fmt.Errorf("step %d: %s disconnects without a live connection", i, st.User)
			}
			delete(alive, st.User)
		case simulate.StepAdvance:
			if st.Advance <= 0 {
				return fmt.Errorf("step %d: advance of %v", i, st.Advance)
			}
		case simulate.StepCrash:
			if !sc.Journal {
				return fmt.Errorf("step %d: crash in an unjournaled scenario", i)
			}
			alive = make(map[string]string)
		default:
			return fmt.Errorf("step %d: unknown kind %d", i, st.Kind)
		}
	}
	return nil
}

// FuzzScenarioConfig: ANY config — however pathological — must
// normalize into a valid, replayable, seed-deterministic script without
// panicking. This is the contract that lets E14 sweep arbitrary seeds
// and lets a reproducing seed be trusted byte for byte.
func FuzzScenarioConfig(f *testing.F) {
	// Seed corpus: one representative per chaos profile plus the
	// pathological shapes normalize() exists for.
	f.Add(int64(1), 1, 0, 0, 0, 0, int64(0), uint8(0), 0.0, 0.0, 0.0, 0, false)
	f.Add(int64(42), 5, 3, 6, 2, 4, int64(30000), uint8(1), 0.5, 0.5, 0.5, 1, true)
	f.Add(int64(63), 8, 2, 9, 1, 6, int64(5000), uint8(2), 1.0, 1.0, 1.0, 4, true)
	f.Add(int64(-7), -3, 50, 2, 9, 1, int64(-1000), uint8(255), 3.5, -2.0, 0.9, 99, false)
	f.Add(int64(1<<62), 20, 1, 1, 64, 64, int64(86400000), uint8(3), 0.01, 0.99, 0.01, 2, true)

	f.Fuzz(func(t *testing.T, seed int64, rooms, minS, maxS, minU, maxU int,
		meanGapMS int64, arrival uint8, dropF, tornF, stormF float64,
		crashes int, journal bool) {
		if rooms > 20 {
			rooms %= 21 // bound fuzz iteration cost, not generator range
		}
		cfg := Config{
			Seed: seed, Rooms: rooms,
			MinStudents: minS, MaxStudents: maxS,
			MinUtterances: minU, MaxUtterances: maxU,
			MeanGap:      time.Duration(meanGapMS) * time.Millisecond,
			Arrival:      Arrival(arrival),
			DropFraction: dropF, TornFraction: tornF, StormFraction: stormF,
			Crashes: crashes, Journal: journal,
		}
		sc, plan, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", cfg, err)
		}
		if err := validateScript(sc); err != nil {
			t.Fatalf("Generate(%+v) produced an invalid script: %v", cfg, err)
		}
		if plan.Rooms < 1 || plan.Students < plan.Rooms {
			t.Fatalf("implausible plan %+v", plan)
		}
		sc2, plan2, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate (replay): %v", err)
		}
		if plan != plan2 {
			t.Fatalf("same config, different plans: %+v vs %+v", plan, plan2)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Fatalf("same config, different scenarios — seed reproduction broken")
		}
	})
}
