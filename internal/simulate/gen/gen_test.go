package gen

import (
	"reflect"
	"testing"
	"time"

	"semagent/internal/simulate"
)

// TestGenerateDeterministic: the same config must yield a deep-equal
// scenario and plan — the reproducing-seed contract.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 42, Rooms: 5, Arrival: ArrivalBursty,
		DropFraction: 0.5, TornFraction: 0.5, StormFraction: 0.5,
		Crashes: 1,
	}
	sc1, plan1, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sc2, plan2, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate (second): %v", err)
	}
	if !reflect.DeepEqual(sc1, sc2) {
		t.Fatalf("same config produced different scenarios")
	}
	if plan1 != plan2 {
		t.Fatalf("same config produced different plans: %+v vs %+v", plan1, plan2)
	}
	if !sc1.Journal {
		t.Fatalf("Crashes > 0 must force Journal on")
	}
}

// TestGenerateSeedsDiffer: different seeds must explore different
// populations (otherwise the sweep in E14 is one scenario 25 times).
func TestGenerateSeedsDiffer(t *testing.T) {
	a, _, _ := Generate(Config{Seed: 1, Rooms: 3})
	b, _, _ := Generate(Config{Seed: 2, Rooms: 3})
	if reflect.DeepEqual(a.Steps, b.Steps) {
		t.Fatalf("seeds 1 and 2 generated identical scripts")
	}
}

// TestGenerateNormalizes: pathological configs are clamped into range,
// never rejected.
func TestGenerateNormalizes(t *testing.T) {
	sc, plan, err := Generate(Config{
		Seed: 7, Rooms: -4, MinStudents: 50, MaxStudents: 2,
		MinUtterances: 9, MaxUtterances: 1, MeanGap: -time.Second,
		DropFraction: 3.5, Crashes: 99,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if plan.Rooms != 1 {
		t.Fatalf("Rooms = %d, want clamp to 1", plan.Rooms)
	}
	if !sc.Journal {
		t.Fatalf("crashes must force Journal")
	}
	if plan.Crashes > 4 {
		t.Fatalf("Crashes = %d, want clamp to <= 4", plan.Crashes)
	}
}

// runProfile generates, runs and invariant-checks one config.
func runProfile(t *testing.T, cfg Config) (*simulate.Scenario, *simulate.Result, Plan) {
	t.Helper()
	sc, plan, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dir := ""
	if sc.Journal {
		dir = t.TempDir()
	}
	res, err := simulate.Run(sc, dir)
	if err != nil {
		t.Fatalf("Run(%s): %v", sc.Name, err)
	}
	rep := Check(sc, res)
	for _, v := range rep.Violations {
		t.Errorf("%s: invariant %s violated: %s", sc.Name, v.Invariant, v.Detail)
	}
	return sc, res, plan
}

// TestQuietPopulation: a fault-free population supervises everything.
func TestQuietPopulation(t *testing.T) {
	sc, res, _ := runProfile(t, Config{Seed: 11, Rooms: 3})
	if res.Sent == 0 {
		t.Fatalf("scenario %s sent nothing", sc.Name)
	}
	if res.Unsupervised != 0 {
		t.Fatalf("fault-free run left %d messages unsupervised", res.Unsupervised)
	}
}

// TestDropsAndTornFrames: abrupt disconnects (half mid-frame) must not
// break ordering or accounting.
func TestDropsAndTornFrames(t *testing.T) {
	_, _, plan := runProfile(t, Config{
		Seed: 23, Rooms: 6, Arrival: ArrivalPoisson,
		DropFraction: 1, TornFraction: 0.5,
	})
	if plan.Drops == 0 {
		t.Fatalf("DropFraction 1 scheduled no drops")
	}
	if plan.TornDrops == 0 {
		t.Fatalf("TornFraction 0.5 over %d drops scheduled no torn frames (unlucky seed — pick another)", plan.Drops)
	}
}

// TestShedStorms: gated flood bursts must shed, and the shed accounting
// must balance to the message (the shed-exact invariant inside Check).
func TestShedStorms(t *testing.T) {
	_, res, plan := runProfile(t, Config{
		Seed: 31, Rooms: 4, Arrival: ArrivalBursty, StormFraction: 1,
	})
	if plan.Storms != 4 {
		t.Fatalf("StormFraction 1 over 4 rooms scheduled %d storms", plan.Storms)
	}
	if res.PipelineTotal.Shed == 0 {
		t.Fatalf("storms shed nothing — gating is not forcing admission control")
	}
}

// TestCrashRecovery: journal crash + WAL replay mid-population, with
// the durability invariant applicable and clean.
func TestCrashRecovery(t *testing.T) {
	sc, res, plan := runProfile(t, Config{
		Seed: 47, Rooms: 3, Arrival: ArrivalPoisson,
		DropFraction: 0.4, Crashes: 2,
	})
	if plan.Crashes != 2 {
		t.Fatalf("scheduled %d crashes, want 2", plan.Crashes)
	}
	if len(res.Recoveries) != 2 {
		t.Fatalf("observed %d recoveries, want 2", len(res.Recoveries))
	}
	rep := Check(sc, res)
	found := false
	for _, name := range rep.Checked {
		if name == InvDurability {
			found = true
		}
	}
	if !found {
		t.Fatalf("durability not in checked set %v despite %d recoveries", rep.Checked, len(res.Recoveries))
	}
}

// TestKitchenSink: every fault class at once. Journal crashes are a
// single-process fault and node kills a cluster fault — mutually
// exclusive by construction — so covering the full invariant set takes
// one run of each shape; together they must check everything.
func TestKitchenSink(t *testing.T) {
	sc, res, plan := runProfile(t, Config{
		Seed: 63, Rooms: 5, Arrival: ArrivalBursty,
		DropFraction: 0.6, TornFraction: 0.5, StormFraction: 0.6,
		Crashes: 1,
	})
	if plan.Drops == 0 || plan.Storms == 0 || plan.Crashes == 0 {
		t.Fatalf("kitchen sink scheduled too little chaos: %+v", plan)
	}
	if res.Sent == 0 {
		t.Fatalf("no messages sent")
	}
	checked := make(map[string]bool)
	for _, name := range Check(sc, res).Checked {
		checked[name] = true
	}
	csc, cres, cplan := runProfile(t, Config{
		Seed: 63, Rooms: 5, Arrival: ArrivalBursty,
		DropFraction: 0.6, TornFraction: 0.5, StormFraction: 0.6,
		NodeKills: 2, Partitions: 1, ShipCuts: 1,
		PromotionCrashes: 1, LaggedKills: 1, SkewRaces: 1,
	})
	if cplan.NodeKills != 2 || cplan.Partitions != 1 || cplan.Crashes != 0 {
		t.Fatalf("cluster kitchen sink scheduled the wrong chaos: %+v", cplan)
	}
	if cplan.ShipCuts != 1 || cplan.PromotionCrashes != 1 || cplan.LaggedKills != 1 || cplan.SkewRaces != 1 {
		t.Fatalf("adversarial chaos not scheduled: %+v", cplan)
	}
	for _, name := range Check(csc, cres).Checked {
		checked[name] = true
	}
	for _, name := range InvariantNames() {
		if !checked[name] {
			t.Fatalf("invariant %s not covered by either kitchen-sink shape", name)
		}
	}
}

// TestClusterChaos: node kills and partitions over a populated fabric,
// with the failover invariant applicable and clean (via runProfile).
func TestClusterChaos(t *testing.T) {
	sc, res, plan := runProfile(t, Config{
		Seed: 59, Rooms: 6, Arrival: ArrivalPoisson,
		DropFraction: 0.3, NodeKills: 2, Partitions: 1, ClusterNodes: 3,
	})
	if sc.Cluster == nil || sc.Cluster.Nodes != 3 {
		t.Fatalf("cluster config not materialized: %+v", sc.Cluster)
	}
	if plan.NodeKills != 2 || plan.Partitions != 1 {
		t.Fatalf("scheduled %+v, want 2 kills and 1 partition", plan)
	}
	if len(res.Failovers) != 2 {
		t.Fatalf("observed %d failovers, want 2", len(res.Failovers))
	}
	rep := Check(sc, res)
	found := false
	for _, name := range rep.Checked {
		if name == InvFailover {
			found = true
		}
	}
	if !found {
		t.Fatalf("failover invariant not in checked set %v", rep.Checked)
	}
}

// TestRunDeterministic: the same generated scenario replays to the same
// structured observations — transcript bytes, verdict log, deliveries.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 77, Rooms: 3, Arrival: ArrivalPoisson,
		DropFraction: 0.5, StormFraction: 0.5, Crashes: 1,
	}
	run := func() *simulate.Result {
		sc, _, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		res, err := simulate.Run(sc, t.TempDir())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if string(a.Transcript) != string(b.Transcript) {
		t.Fatalf("same seed produced different transcripts")
	}
	if !reflect.DeepEqual(a.VerdictLog, b.VerdictLog) {
		t.Fatalf("same seed produced different verdict logs")
	}
	if !reflect.DeepEqual(a.Deliveries, b.Deliveries) {
		t.Fatalf("same seed produced different delivery logs")
	}
}
