package gen

import (
	"fmt"
	"math/rand"
	"time"

	"semagent/internal/simulate"
)

// scheduleChaos draws the fault schedule for the generated population:
// gated shed storms, abrupt client drops (about half leaving a torn
// half-written frame), and journal crash points. It runs after the
// dialogue is fully scheduled and draws from its own rng stream
// (seed+2), so the fault schedule and the dialogue are independent
// functions of the same master seed — turning a fault class off does
// not reshuffle the conversation it was injected into.
//
// Replayability rules the schedule obeys:
//   - a storm burst fires after its speaker's join;
//   - a drop lands strictly after its victim's last scheduled action
//     (storms included), so no speech is scripted on a dead connection;
//   - crash points land mid-session; lower() re-joins every participant
//     the crash cut off before their next scripted action.
//
// Returns the sorted crash times; drops and storms are appended to the
// event timeline directly.
func (b *builder) scheduleChaos() []time.Duration {
	crng := rand.New(rand.NewSource(b.cfg.Seed + 2))
	span := b.span()
	for _, students := range b.rooms {
		// Shed storm: one participant floods the room with a gated
		// rapid-fire burst, forcing admission control to shed.
		if crng.Float64() < b.cfg.StormFraction {
			storm := students[crng.Intn(len(students))]
			// Prefer a resident spammer — the natural flooder.
			for _, s := range students {
				if s.persona == simulate.PersonaSpammer {
					storm = s
					break
				}
			}
			at := span/4 + time.Duration(crng.Int63n(int64(span/4)+1))
			if min := storm.join + time.Millisecond; at < min {
				at = min
			}
			st := simulate.Step{Kind: simulate.StepBurst, User: storm.name, Room: storm.room}
			for i := 0; i < b.cfg.BurstLen; i++ {
				text, kind := storm.persona.Utter(b.g, crng)
				st.Texts = append(st.Texts, text)
				st.Expect = append(st.Expect, kind)
			}
			b.add(at, st)
			if at > storm.lastAt {
				storm.lastAt = at
			}
			b.plan.Utterances += b.cfg.BurstLen
			b.plan.Storms++
		}
		// Abrupt disconnect: one victim's connection dies after their
		// last scheduled action, optionally mid-frame.
		if crng.Float64() < b.cfg.DropFraction {
			victim := students[crng.Intn(len(students))]
			torn := crng.Float64() < b.cfg.TornFraction
			at := victim.lastAt + b.cfg.MeanGap/4 + time.Duration(crng.Int63n(int64(b.cfg.MeanGap/4)+1))
			b.add(at, simulate.Step{Kind: simulate.StepDrop, User: victim.name, Room: victim.room, Partial: torn})
			victim.lastAt = at
			b.plan.Drops++
			if torn {
				b.plan.TornDrops++
			}
		}
	}
	// Crash points: spread over the mid-session window [0.35, 0.8] of
	// the nominal span with per-crash jitter, kept in order.
	var crashes []time.Duration
	for i := 0; i < b.cfg.Crashes; i++ {
		lo := 0.35 + 0.45*float64(i)/float64(b.cfg.Crashes)
		width := 0.45 / float64(b.cfg.Crashes)
		frac := lo + width*crng.Float64()
		crashes = append(crashes, time.Duration(frac*float64(span)).Truncate(time.Millisecond))
	}
	b.plan.Crashes = len(crashes)

	// Cluster faults ride the ordinary event timeline: a node kill (or
	// partition) settles the stack, fires the fault, and the gateway
	// carries every client across it — no connections are cut, so no
	// re-join lowering is needed (unlike StepCrash). Kill points use the
	// same staggered mid-session window as crashes; targets are drawn
	// uniformly over the lineages, repeats allowed (a lineage can die,
	// promote, and die again).
	for i := 0; i < b.cfg.NodeKills; i++ {
		lo := 0.35 + 0.45*float64(i)/float64(b.cfg.NodeKills)
		width := 0.45 / float64(b.cfg.NodeKills)
		frac := lo + width*crng.Float64()
		at := time.Duration(frac * float64(span)).Truncate(time.Millisecond)
		node := fmt.Sprintf("n%d", crng.Intn(b.cfg.ClusterNodes))
		kill := simulate.Step{Kind: simulate.StepKillNode, Node: node}
		// The first PromotionCrashes kills crash their failover at a
		// deterministic stage (cycling through the four crash points)
		// and must resume; the first LaggedKills kills get a sink fault
		// planted shortly before, so the dead node's standby lags at
		// kill time and the promotion audit must flag the loss. A kill
		// can be both — staged AND lagged — which is the nastiest case.
		if i < b.cfg.PromotionCrashes {
			kill.Stage = 1 + i%4
			b.plan.PromotionCrashes++
		}
		if i < b.cfg.LaggedKills {
			b.add(at-span/10, simulate.Step{Kind: simulate.StepSinkFault, Node: node})
			b.plan.LaggedKills++
		}
		b.add(at, kill)
		b.plan.NodeKills++
	}
	for i := 0; i < b.cfg.Partitions; i++ {
		lo := 0.25 + 0.6*float64(i)/float64(b.cfg.Partitions)
		width := 0.6 / float64(b.cfg.Partitions)
		frac := lo + width*crng.Float64()
		at := time.Duration(frac * float64(span)).Truncate(time.Millisecond)
		node := fmt.Sprintf("n%d", crng.Intn(b.cfg.ClusterNodes))
		b.add(at, simulate.Step{Kind: simulate.StepPartition, Node: node})
		b.plan.Partitions++
	}
	// Asymmetric partitions: sever one lineage's ship stream mid-session
	// and heal it a sixth of a span later. Every cut is paired with its
	// heal — a cut the session never heals is a lagged kill's job, not a
	// ship cut's.
	for i := 0; i < b.cfg.ShipCuts; i++ {
		lo := 0.3 + 0.4*float64(i)/float64(b.cfg.ShipCuts)
		width := 0.4 / float64(b.cfg.ShipCuts)
		frac := lo + width*crng.Float64()
		at := time.Duration(frac * float64(span)).Truncate(time.Millisecond)
		node := fmt.Sprintf("n%d", crng.Intn(b.cfg.ClusterNodes))
		b.add(at, simulate.Step{Kind: simulate.StepCutShip, Node: node})
		b.add(at+span/6, simulate.Step{Kind: simulate.StepHealShip, Node: node})
		b.plan.ShipCuts++
		b.plan.ShipHeals++
	}
	// Clock-skewed lease races: a challenger lineage's clock runs fast —
	// alternately a little (half a default lease) and absurdly (two
	// spans) — and it races Acquire against every other lineage's rooms.
	for i := 0; i < b.cfg.SkewRaces; i++ {
		lo := 0.4 + 0.45*float64(i)/float64(b.cfg.SkewRaces)
		width := 0.45 / float64(b.cfg.SkewRaces)
		frac := lo + width*crng.Float64()
		at := time.Duration(frac * float64(span)).Truncate(time.Millisecond)
		node := fmt.Sprintf("n%d", crng.Intn(b.cfg.ClusterNodes))
		skew := 5 * time.Second // half the default 10s lease
		if i%2 == 1 {
			skew = 2 * span
		}
		b.add(at, simulate.Step{Kind: simulate.StepSkewRace, Node: node, Skew: skew})
		b.plan.SkewRaces++
	}
	return crashes
}
