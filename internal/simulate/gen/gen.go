// Package gen is the population-scale chaos engine over the classroom
// simulator (DESIGN.md D12): a seeded property-based scenario generator
// plus a chaos scheduler, verified by invariant checkers instead of
// golden bytes.
//
// The 12 hand-written scenarios of package simulate pin known behaviour;
// this package explores unknown behaviour. Generate draws a whole
// classroom population from one seed — persona mixes per room, student
// arrival and utterance schedules (uniform, Poisson, or bursty arrival
// processes on the virtual clock), room counts into the thousands — and
// the chaos layer (chaos.go) draws fault injections from the same seed:
// client drops with torn frames, journal crash + WAL-replay recovery,
// and gated admission-control shed storms. A Scenario is pure data by
// the time it runs, so any failure reproduces exactly from the printed
// seed.
//
// Because generated sessions have no hand-written expected transcript,
// correctness is asserted as invariants over the run's structured
// observations (invariants.go): durability, per-room FIFO, exact shed
// accounting, no phantom verdicts, and conservation. Experiment E14
// (internal/eval) sweeps generated scenarios in parallel waves and
// fails CI with the reproducing seed on any violation.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"semagent/internal/ontology"
	"semagent/internal/pipeline"
	"semagent/internal/simulate"
	"semagent/internal/workload"
)

// Arrival selects the utterance arrival process drawn per student.
type Arrival uint8

// Arrival processes.
const (
	// ArrivalUniform spaces utterances evenly with ±25% jitter.
	ArrivalUniform Arrival = iota
	// ArrivalPoisson draws exponential inter-utterance gaps — the
	// classic memoryless chat model.
	ArrivalPoisson
	// ArrivalBursty clusters utterances: short in-cluster gaps with
	// long silences between clusters, the flash-crowd shape that
	// stresses queues hardest.
	ArrivalBursty
	arrivalCount
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case ArrivalUniform:
		return "uniform"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	default:
		return "unknown"
	}
}

// Config parameterizes one generated scenario. Generate normalizes any
// out-of-range field (clamping, swapping inverted ranges, zeroing NaNs)
// instead of failing: the fuzz contract is that every Config yields a
// valid, replayable, seed-deterministic script.
type Config struct {
	Seed int64 `json:"seed"`
	// Rooms is the classroom count (clamped to [1, 100000]).
	Rooms int `json:"rooms"`
	// MinStudents/MaxStudents bound the per-room population draw
	// (defaults 3..6, clamped to [1, 64]).
	MinStudents, MaxStudents int
	// MinUtterances/MaxUtterances bound how much each speaking student
	// says (defaults 2..4, clamped to [0, 64]).
	MinUtterances, MaxUtterances int
	// Arrival is the utterance arrival process (reduced modulo the
	// known processes, so any byte is valid).
	Arrival Arrival
	// MeanGap is the mean virtual time between one student's
	// utterances (default 30s, clamped to [10ms, 10m]).
	MeanGap time.Duration

	// DropFraction is the probability a room loses one client to an
	// abrupt disconnect; TornFraction the probability such a drop
	// leaves a torn half-written frame on the wire.
	DropFraction float64
	TornFraction float64
	// StormFraction is the probability a room hosts a gated shed storm:
	// a rapid-fire burst admission control must shed deterministically.
	StormFraction float64
	// BurstLen is the storm burst length (default 8, clamped [2, 256]).
	BurstLen int
	// RoomHighWater is the admission watermark under storms (default 4,
	// clamped [1, 256]).
	RoomHighWater int
	// Crashes is how many journal-crash + WAL-replay-recovery points to
	// schedule (clamped [0, 4]); any crash forces Journal on.
	Crashes int
	// Journal runs the session over a sync-every-record write-ahead
	// journal.
	Journal bool

	// NodeKills schedules that many node-kill + standby-promotion
	// points on a room-partitioned cluster (clamped [0, 3]); Partitions
	// schedules gateway↔node network partitions (clamped [0, 3]).
	// Either being nonzero switches the run to cluster mode: the
	// scenario gains a Cluster config, Journal turns on (failover
	// replays the shipped WAL) and Crashes zeroes out (StepCrash is a
	// single-process fault).
	NodeKills  int
	Partitions int
	// ClusterNodes is the fabric size in cluster mode (default 2,
	// clamped [2, 8]).
	ClusterNodes int

	// The four adversarial fault classes of ROADMAP item 5 (DESIGN.md
	// D16). Any being nonzero switches the run to cluster mode, exactly
	// like NodeKills/Partitions.
	//
	// ShipCuts schedules asymmetric partitions (clamped [0, 3]): a
	// lineage's WAL ship stream is severed while its client edge stays
	// up, and healed later in the same session.
	ShipCuts int
	// PromotionCrashes upgrades that many node kills to kills during
	// promotion (clamped [0, 3]): the failover crashes at a
	// deterministic stage and must resume. Forces NodeKills up to
	// cover them.
	PromotionCrashes int
	// LaggedKills upgrades that many node kills to lagged-standby kills
	// (clamped [0, 3]): a sink fault wedges the standby before the
	// kill, so the promotion audit must flag the loss. Forces NodeKills
	// up to cover them.
	LaggedKills int
	// SkewRaces schedules clock-skewed lease races (clamped [0, 3]): a
	// lineage with a skewed clock races Acquire against every other
	// lineage's leases; the epoch fence must hold.
	SkewRaces int
}

// clustered reports whether the config runs in cluster mode.
func (c Config) clustered() bool {
	return c.NodeKills > 0 || c.Partitions > 0 ||
		c.ShipCuts > 0 || c.PromotionCrashes > 0 || c.LaggedKills > 0 || c.SkewRaces > 0
}

// Plan summarizes what Generate actually scheduled — the fault and
// population counts E14 reports.
type Plan struct {
	Rooms      int `json:"rooms"`
	Students   int `json:"students"`
	Utterances int `json:"utterances"` // scripted chat lines (bursts included)
	Drops      int `json:"drops"`
	TornDrops  int `json:"torn_drops"`
	Storms     int `json:"storms"`
	Crashes    int `json:"crashes"`
	NodeKills  int `json:"node_kills"`
	Partitions int `json:"partitions"`

	ShipCuts         int `json:"ship_cuts"`
	ShipHeals        int `json:"ship_heals"`
	PromotionCrashes int `json:"promotion_crashes"`
	LaggedKills      int `json:"lagged_kills"`
	SkewRaces        int `json:"skew_races"`
}

// clampInt bounds v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampFrac bounds a probability to [0, 1], treating NaN as 0.
func clampFrac(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// normalize returns a config every field of which is in range.
func (c Config) normalize() Config {
	c.Rooms = clampInt(c.Rooms, 1, 100000)
	if c.MinStudents == 0 && c.MaxStudents == 0 {
		c.MinStudents, c.MaxStudents = 3, 6
	}
	c.MinStudents = clampInt(c.MinStudents, 1, 64)
	c.MaxStudents = clampInt(c.MaxStudents, 1, 64)
	if c.MinStudents > c.MaxStudents {
		c.MinStudents, c.MaxStudents = c.MaxStudents, c.MinStudents
	}
	if c.MinUtterances == 0 && c.MaxUtterances == 0 {
		c.MinUtterances, c.MaxUtterances = 2, 4
	}
	c.MinUtterances = clampInt(c.MinUtterances, 0, 64)
	c.MaxUtterances = clampInt(c.MaxUtterances, 0, 64)
	if c.MinUtterances > c.MaxUtterances {
		c.MinUtterances, c.MaxUtterances = c.MaxUtterances, c.MinUtterances
	}
	c.Arrival = Arrival(uint8(c.Arrival) % uint8(arrivalCount))
	if c.MeanGap == 0 {
		c.MeanGap = 30 * time.Second
	}
	if c.MeanGap < 10*time.Millisecond {
		c.MeanGap = 10 * time.Millisecond
	}
	if c.MeanGap > 10*time.Minute {
		c.MeanGap = 10 * time.Minute
	}
	c.DropFraction = clampFrac(c.DropFraction)
	c.TornFraction = clampFrac(c.TornFraction)
	c.StormFraction = clampFrac(c.StormFraction)
	if c.BurstLen == 0 {
		c.BurstLen = 8
	}
	c.BurstLen = clampInt(c.BurstLen, 2, 256)
	if c.RoomHighWater == 0 {
		c.RoomHighWater = 4
	}
	c.RoomHighWater = clampInt(c.RoomHighWater, 1, 256)
	c.Crashes = clampInt(c.Crashes, 0, 4)
	if c.Crashes > 0 {
		c.Journal = true // StepCrash requires a journal to recover from
	}
	c.NodeKills = clampInt(c.NodeKills, 0, 3)
	c.Partitions = clampInt(c.Partitions, 0, 3)
	c.ShipCuts = clampInt(c.ShipCuts, 0, 3)
	c.PromotionCrashes = clampInt(c.PromotionCrashes, 0, 3)
	c.LaggedKills = clampInt(c.LaggedKills, 0, 3)
	c.SkewRaces = clampInt(c.SkewRaces, 0, 3)
	// Promotion crashes and lagged kills are flavours of node kills;
	// there must be enough kills to host them.
	if c.NodeKills < c.PromotionCrashes {
		c.NodeKills = c.PromotionCrashes
	}
	if c.NodeKills < c.LaggedKills {
		c.NodeKills = c.LaggedKills
	}
	if c.clustered() {
		c.Journal = true // failover is a replay of the shipped WAL
		c.Crashes = 0    // StepCrash is a single-process fault
		if c.ClusterNodes == 0 {
			c.ClusterNodes = 2
		}
		c.ClusterNodes = clampInt(c.ClusterNodes, 2, 8)
	}
	return c
}

// stepInterval is the implicit virtual-clock advance per scripted step;
// event-time gaps beyond it become explicit StepAdvance steps.
const stepInterval = 500 * time.Millisecond

// event is one scheduled script action with its virtual time. seq is
// the draw order, the deterministic tie-break (and the guarantee that a
// student's join sorts before their same-instant first utterance).
type event struct {
	at   time.Duration
	seq  int
	step simulate.Step
}

// student is one generated participant.
type student struct {
	name    string
	room    string
	persona simulate.PersonaKind
	join    time.Duration
	lastAt  time.Duration // latest scheduled event (chaos appends after it)
}

// builder carries the generation state: one workload generator for
// sentence content, one rng for structure (population, schedules), and
// a separate chaos rng (chaos.go) so fault schedules and dialogue are
// independent streams of the same master seed.
type builder struct {
	cfg   Config
	g     *workload.Generator
	rng   *rand.Rand
	seq   int
	evs   []event
	plan  Plan
	rooms [][]*student // per room
}

func (b *builder) add(at time.Duration, step simulate.Step) {
	b.evs = append(b.evs, event{at: at.Truncate(time.Millisecond), seq: b.seq, step: step})
	b.seq++
}

// gap draws one inter-utterance gap for the configured arrival process.
// burstLeft tracks the bursty process's in-cluster countdown.
func (b *builder) gap(burstLeft *int) time.Duration {
	mean := float64(b.cfg.MeanGap)
	var g float64
	switch b.cfg.Arrival {
	case ArrivalPoisson:
		g = b.rng.ExpFloat64() * mean
	case ArrivalBursty:
		if *burstLeft > 0 {
			*burstLeft--
			g = mean / 20 * (0.5 + b.rng.Float64())
		} else {
			*burstLeft = 1 + b.rng.Intn(3)
			g = mean * 2 * (0.5 + b.rng.ExpFloat64())
		}
	default: // uniform
		g = mean * (0.75 + 0.5*b.rng.Float64())
	}
	if g < float64(time.Millisecond) {
		g = float64(time.Millisecond)
	}
	return time.Duration(g)
}

// personaWeights is the classroom mix drawn per student.
var personaWeights = []struct {
	kind   simulate.PersonaKind
	weight int
	code   string
}{
	{simulate.PersonaContributor, 30, "con"},
	{simulate.PersonaDrifter, 15, "dri"},
	{simulate.PersonaAbusive, 10, "abu"},
	{simulate.PersonaQuestioner, 15, "que"},
	{simulate.PersonaSpammer, 10, "spa"},
	{simulate.PersonaLurker, 10, "lur"},
	{simulate.PersonaLateJoiner, 10, "lat"},
}

func (b *builder) drawPersona() (simulate.PersonaKind, string) {
	total := 0
	for _, w := range personaWeights {
		total += w.weight
	}
	n := b.rng.Intn(total)
	for _, w := range personaWeights {
		if n < w.weight {
			return w.kind, w.code
		}
		n -= w.weight
	}
	return simulate.PersonaContributor, "con"
}

// span is the nominal session length schedules are placed within.
func (b *builder) span() time.Duration {
	return b.cfg.MeanGap * time.Duration(b.cfg.MaxUtterances+2)
}

// buildRoom generates one room's population and dialogue schedule.
func (b *builder) buildRoom(r int) {
	room := fmt.Sprintf("room-%05d", r)
	n := b.cfg.MinStudents
	if b.cfg.MaxStudents > b.cfg.MinStudents {
		n += b.rng.Intn(b.cfg.MaxStudents - b.cfg.MinStudents + 1)
	}
	span := b.span()
	students := make([]*student, 0, n)
	for j := 0; j < n; j++ {
		kind, code := b.drawPersona()
		s := &student{
			name:    fmt.Sprintf("r%05d-%s%d", r, code, j),
			room:    room,
			persona: kind,
		}
		// Join times stagger over the opening window; late-joiners
		// arrive mid-session and see the history replay.
		if kind == simulate.PersonaLateJoiner {
			s.join = span/2 + time.Duration(b.rng.Int63n(int64(span/4)+1))
		} else {
			s.join = time.Duration(b.rng.Int63n(int64(span/4) + 1))
		}
		s.lastAt = s.join
		b.add(s.join, simulate.Step{Kind: simulate.StepJoin, User: s.name, Room: room})
		students = append(students, s)
		b.plan.Students++
	}
	// Utterance schedules: each speaking student draws a count and an
	// arrival-process schedule; questioners get a topical peer answer
	// (the adjacency pair the corpora generator mines into the FAQ).
	for j, s := range students {
		if s.persona == simulate.PersonaLurker {
			continue
		}
		count := b.cfg.MinUtterances
		if b.cfg.MaxUtterances > b.cfg.MinUtterances {
			count += b.rng.Intn(b.cfg.MaxUtterances - b.cfg.MinUtterances + 1)
		}
		if s.persona == simulate.PersonaLateJoiner && count > 1 {
			count = 1 // late joiners contribute briefly
		}
		burstLeft := 0
		at := s.join
		for u := 0; u < count; u++ {
			at += b.gap(&burstLeft)
			if s.persona == simulate.PersonaQuestioner {
				q := b.g.Question(false)
				b.say(s, at, q.Text, workload.KindQuestion)
				if len(q.Topics) > 0 && len(students) > 1 {
					// A deterministic peer answers shortly after.
					peer := students[(j+1+b.rng.Intn(len(students)-1))%len(students)]
					if peer == s {
						peer = students[(j+1)%len(students)]
					}
					answerAt := at + b.cfg.MeanGap/10
					if min := peer.join + time.Millisecond; answerAt < min {
						answerAt = min
					}
					b.say(peer, answerAt, fmt.Sprintf("the %s is a useful structure", q.Topics[0]), workload.KindCorrect)
				}
			} else {
				text, kind := s.persona.Utter(b.g, b.rng)
				b.say(s, at, text, kind)
			}
		}
	}
	b.rooms = append(b.rooms, students)
}

// say schedules one labelled chat line and advances the speaker's
// last-event watermark (chaos places drops after it).
func (b *builder) say(s *student, at time.Duration, text string, kind workload.Kind) {
	b.add(at, simulate.Step{
		Kind: simulate.StepSay, User: s.name, Room: s.room,
		Texts: []string{text}, Expect: []workload.Kind{kind},
	})
	if at > s.lastAt {
		s.lastAt = at
	}
	b.plan.Utterances++
}

// Generate materializes a scenario from the config: population and
// dialogue first (this file), then the fault schedule (chaos.go), then
// the merged timeline is lowered to a step script. The same Config
// always yields a deep-equal Scenario.
func Generate(cfg Config) (*simulate.Scenario, Plan, error) {
	cfg = cfg.normalize()
	b := &builder{
		cfg: cfg,
		// Two independent streams, same convention as the hand-written
		// scenario scripts: the workload generator consumes the seed
		// itself, structural draws use seed+1 (chaos uses seed+2).
		g:    workload.NewGenerator(cfg.Seed, ontology.BuildCourseOntology()),
		rng:  rand.New(rand.NewSource(cfg.Seed + 1)),
		plan: Plan{Rooms: cfg.Rooms},
	}
	for r := 0; r < cfg.Rooms; r++ {
		b.buildRoom(r)
	}
	crashes := b.scheduleChaos()

	// Merge the global timeline: virtual time, draw order as tie-break.
	sort.SliceStable(b.evs, func(i, j int) bool {
		if b.evs[i].at != b.evs[j].at {
			return b.evs[i].at < b.evs[j].at
		}
		return b.evs[i].seq < b.evs[j].seq
	})

	name := fmt.Sprintf("gen-s%d-r%d-%s", cfg.Seed, cfg.Rooms, cfg.Arrival)
	if cfg.clustered() {
		name += fmt.Sprintf("-c%d", cfg.ClusterNodes)
	}
	sc := &simulate.Scenario{
		Name: name,
		Description: fmt.Sprintf(
			"generated population: %d rooms, %d students, %s arrivals, %d drops (%d torn), %d storms, %d crashes, %d node kills (%d staged, %d lagged), %d partitions, %d ship cuts, %d skew races",
			b.plan.Rooms, b.plan.Students, cfg.Arrival,
			b.plan.Drops, b.plan.TornDrops, b.plan.Storms, b.plan.Crashes,
			b.plan.NodeKills, b.plan.PromotionCrashes, b.plan.LaggedKills,
			b.plan.Partitions, b.plan.ShipCuts, b.plan.SkewRaces),
		Seed:         cfg.Seed,
		Async:        true,
		Workers:      2, // pinned, like every deterministic scenario
		HistorySize:  8,
		Journal:      cfg.Journal,
		StepInterval: stepInterval,
		Personas:     make(map[string]simulate.PersonaKind),
	}
	if b.plan.Storms > 0 {
		sc.GateBursts = true
		sc.ShedPolicy = pipeline.ShedRejectNew
		sc.RoomHighWater = cfg.RoomHighWater
	}
	if cfg.clustered() {
		sc.Cluster = &simulate.ClusterConfig{Nodes: cfg.ClusterNodes}
	}
	for _, students := range b.rooms {
		for _, s := range students {
			sc.Personas[s.name] = s.persona
		}
	}
	sc.Steps = lower(b.evs, crashes)
	return sc, b.plan, nil
}

// lower converts the sorted event timeline into the final step script:
// inter-event gaps beyond the implicit per-step advance become explicit
// StepAdvance steps, and every participant with scripted actions after
// a crash is re-joined first (the crash cut every connection).
func lower(evs []event, crashes []time.Duration) []simulate.Step {
	var steps []simulate.Step
	prev := time.Duration(0)
	crashIdx := 0
	alive := make(map[string]string) // user -> room while connected
	emit := func(at time.Duration, st simulate.Step) {
		if gap := at - prev; gap > stepInterval {
			steps = append(steps, simulate.Step{Kind: simulate.StepAdvance, Advance: (gap - stepInterval).Truncate(time.Millisecond)})
		}
		steps = append(steps, st)
		if at > prev {
			prev = at
		}
	}
	for _, e := range evs {
		// Fire every crash scheduled before this event.
		for crashIdx < len(crashes) && crashes[crashIdx] <= e.at {
			emit(crashes[crashIdx], simulate.Step{Kind: simulate.StepCrash})
			crashIdx++
			alive = make(map[string]string)
		}
		st := e.step
		switch st.Kind {
		case simulate.StepJoin:
			alive[st.User] = st.Room
		case simulate.StepSay, simulate.StepBurst, simulate.StepLeave, simulate.StepDrop:
			if _, ok := alive[st.User]; !ok {
				// Connection lost to a crash: reconnect before acting.
				emit(e.at, simulate.Step{Kind: simulate.StepJoin, User: st.User, Room: st.Room})
				alive[st.User] = st.Room
			}
			if st.Kind == simulate.StepLeave || st.Kind == simulate.StepDrop {
				delete(alive, st.User)
			}
		}
		if st.Kind == simulate.StepJoin {
			if len(steps) > 0 {
				last := steps[len(steps)-1]
				if last.Kind == simulate.StepJoin && last.User == st.User {
					continue // already re-joined by the crash path above
				}
			}
		}
		emit(e.at, st)
	}
	for crashIdx < len(crashes) {
		emit(crashes[crashIdx], simulate.Step{Kind: simulate.StepCrash})
		crashIdx++
	}
	return steps
}
