package gen

import (
	"fmt"
	"sort"

	"semagent/internal/chat"
	"semagent/internal/simulate"
)

// Invariant names, the property vocabulary E14 reports against.
const (
	// InvDurability: no fsync'd journal mutation is lost across a crash
	// — every recovery replays at least up to the pre-crash durable
	// watermark, with zero apply errors, and no knowledge store shrinks.
	InvDurability = "durability"
	// InvFIFO: per-room FIFO — every client observes each sender's
	// messages in send order, and any two clients that both observe two
	// distinguishable messages observe them in the same order.
	InvFIFO = "room-fifo"
	// InvShedExact: shed accounting is exact — unconsumed ground-truth
	// expectations, the chat server's per-room shed attributions and
	// the pipeline's shed counters all agree.
	InvShedExact = "shed-exact"
	// InvPhantom: no verdict exists for a message the script never sent
	// (matched as a (room, user, text) multiset).
	InvPhantom = "no-phantom-verdict"
	// InvConservation: every scripted message is accounted for — it was
	// either supervised (has a verdict) or shed (left an unconsumed
	// expectation), and pipeline intake/outcome counters balance.
	InvConservation = "conservation"
	// InvFailover: a room's supervision survives its owner's death
	// exactly once per kill — every scripted node kill yields exactly
	// one promotion, the standby's shipped watermark covers everything
	// the dead owner fsync'd (unless the script deliberately impaired
	// the ship stream — then no-silent-loss takes over), the promotion
	// replay applies cleanly, and each moved room's fencing epoch
	// advances by exactly one.
	InvFailover = "failover-exactly-once"
	// InvShipResume: a ship stream either works or says so — at session
	// end no live node may combine nonzero replication lag with a clean
	// bill of health (no cut flag, no failure count, no error), and a
	// stream whose scripted faults were all healed must have caught up
	// completely.
	InvShipResume = "ship-resumes-or-surfaces"
	// InvPromoteOnce: every kill produces exactly one completed
	// promotion — interrupted failovers resume (exactly one resume per
	// scripted crash point) rather than redo or wedge, and no dead
	// incarnation is promoted twice.
	InvPromoteOnce = "promotion-completes-exactly-once"
	// InvNoSilentLoss: the failover audit tells the truth — Lossy is
	// set iff the standby's watermark trails the dead owner's fsync'd
	// watermark, and a kill whose ship stream was never impaired must
	// not lose anything.
	InvNoSilentLoss = "no-silent-loss"
	// InvSingleWriter: under clock skew the epoch fence holds — every
	// seized lease bumps the epoch by exactly one and fences the
	// deposed owner; every refused race leaves the epoch untouched and
	// carries the refusing error.
	InvSingleWriter = "single-writer-under-skew"
)

// InvariantNames lists every invariant in report order.
func InvariantNames() []string {
	return []string{
		InvDurability, InvFIFO, InvShedExact, InvPhantom, InvConservation, InvFailover,
		InvShipResume, InvPromoteOnce, InvNoSilentLoss, InvSingleWriter,
	}
}

// ClusterOnly reports whether an invariant can only be audited on a
// clustered run — single-node sweeps (E14) have no ship streams,
// promotions, or lease races to check, so these belong to E16/E17.
func ClusterOnly(name string) bool {
	switch name {
	case InvFailover, InvShipResume, InvPromoteOnce, InvNoSilentLoss, InvSingleWriter:
		return true
	}
	return false
}

// Violation is one invariant breach with enough detail to debug from
// the reproducing seed.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Report is the outcome of checking one run: which invariants were
// applicable (a crash-free run cannot check durability; an inline run
// has no pipeline counters to cross-check) and every breach found.
type Report struct {
	Checked    []string    `json:"checked"`
	Violations []Violation `json:"violations,omitempty"`
}

// Check audits a completed run against every applicable invariant. It
// reads only exported Scenario/Result data, so tests can tamper with a
// copy of the observations to prove each checker actually fires.
func Check(sc *simulate.Scenario, res *simulate.Result) Report {
	rep := Report{Checked: []string{InvFIFO, InvPhantom, InvConservation}}
	rep.Violations = append(rep.Violations, checkFIFO(sc, res)...)
	rep.Violations = append(rep.Violations, checkPhantom(sc, res)...)
	rep.Violations = append(rep.Violations, checkConservation(res)...)
	if res.HasPipeline {
		rep.Checked = append(rep.Checked, InvShedExact)
		rep.Violations = append(rep.Violations, checkShedExact(sc, res)...)
	}
	if len(res.Recoveries) > 0 {
		rep.Checked = append(rep.Checked, InvDurability)
		rep.Violations = append(rep.Violations, checkDurability(res)...)
	}
	if sc.Cluster != nil {
		if scriptedKills(sc) > 0 {
			rep.Checked = append(rep.Checked, InvFailover, InvPromoteOnce, InvNoSilentLoss)
			rep.Violations = append(rep.Violations, checkFailover(sc, res)...)
			rep.Violations = append(rep.Violations, checkPromoteOnce(sc, res)...)
			rep.Violations = append(rep.Violations, checkNoSilentLoss(sc, res)...)
		}
		if len(res.ShipHealth) > 0 {
			rep.Checked = append(rep.Checked, InvShipResume)
			rep.Violations = append(rep.Violations, checkShipResume(sc, res)...)
		}
		if scriptedSkewRaces(sc) > 0 {
			rep.Checked = append(rep.Checked, InvSingleWriter)
			rep.Violations = append(rep.Violations, checkSingleWriter(res)...)
		}
	}
	sort.Strings(rep.Checked)
	return rep
}

// scriptedKills counts the StepKillNode steps in the script.
func scriptedKills(sc *simulate.Scenario) int {
	kills := 0
	for _, st := range sc.Steps {
		if st.Kind == simulate.StepKillNode {
			kills++
		}
	}
	return kills
}

// scriptedSkewRaces counts the StepSkewRace steps in the script.
func scriptedSkewRaces(sc *simulate.Scenario) int {
	races := 0
	for _, st := range sc.Steps {
		if st.Kind == simulate.StepSkewRace {
			races++
		}
	}
	return races
}

// lossyKills walks the script tracking each lineage's ship-stream
// impairment (cuts and sink faults set it, heals clear it, a kill
// consumes it — the successor starts a fresh stream) and returns the
// step indices of kills where standby loss is *permitted*. Permitted,
// not expected: an impaired stream with nothing left to ship still
// loses nothing.
func lossyKills(sc *simulate.Scenario) map[int]bool {
	impaired := make(map[string]bool)
	out := make(map[int]bool)
	for i, st := range sc.Steps {
		switch st.Kind {
		case simulate.StepCutShip, simulate.StepSinkFault:
			impaired[st.Node] = true
		case simulate.StepHealShip:
			impaired[st.Node] = false
		case simulate.StepKillNode:
			out[i] = impaired[st.Node]
			impaired[st.Node] = false
		}
	}
	return out
}

// stagedKills maps kill step index -> armed failover crash stage.
func stagedKills(sc *simulate.Scenario) map[int]int {
	out := make(map[int]int)
	for i, st := range sc.Steps {
		if st.Kind == simulate.StepKillNode && st.Stage > 0 {
			out[i] = st.Stage
		}
	}
	return out
}

// checkFailover audits every node-kill promotion: exactly one
// promotion per scripted kill, no fsync'd record beyond the standby's
// watermark, a clean replay, and monotone single-step epoch fencing —
// the same room never survives one death twice.
func checkFailover(sc *simulate.Scenario, res *simulate.Result) []Violation {
	var out []Violation
	if kills := scriptedKills(sc); len(res.Failovers) != kills {
		out = append(out, Violation{InvFailover, fmt.Sprintf(
			"%d node kills scripted but %d promotions recorded", kills, len(res.Failovers))})
	}
	// (room, pre-move epoch) pairs must be globally unique: a second
	// promotion of the same room at the same epoch would mean its
	// supervision "survived" one death twice.
	seen := make(map[string]bool)
	lossy := lossyKills(sc)
	for i, fo := range res.Failovers {
		if fo.ReplayErrors > 0 {
			out = append(out, Violation{InvFailover, fmt.Sprintf(
				"failover %d (%s -> %s): %d journal records failed to apply on promotion replay",
				i, fo.Dead, fo.Promoted, fo.ReplayErrors)})
		}
		if lossy[fo.Step] {
			// The script impaired this stream on purpose: the watermark
			// may trail, but replay must still cover everything the sink
			// DID receive (no-silent-loss audits the truthfulness).
			if fo.ReplayLastLSN < fo.SinkLastLSN {
				out = append(out, Violation{InvFailover, fmt.Sprintf(
					"failover %d (%s -> %s): promotion replay stopped at LSN %d below the standby's own watermark %d",
					i, fo.Dead, fo.Promoted, fo.ReplayLastLSN, fo.SinkLastLSN)})
			}
		} else {
			if fo.SinkLastLSN < fo.DeadSyncedLSN {
				out = append(out, Violation{InvFailover, fmt.Sprintf(
					"failover %d (%s -> %s): standby watermark %d below the dead owner's fsync'd %d — durable mutations lost",
					i, fo.Dead, fo.Promoted, fo.SinkLastLSN, fo.DeadSyncedLSN)})
			}
			if fo.ReplayLastLSN < fo.DeadSyncedLSN {
				out = append(out, Violation{InvFailover, fmt.Sprintf(
					"failover %d (%s -> %s): promotion replay stopped at LSN %d but LSN %d was fsync'd before the kill",
					i, fo.Dead, fo.Promoted, fo.ReplayLastLSN, fo.DeadSyncedLSN)})
			}
		}
		inMove := make(map[string]bool)
		for _, mv := range fo.Moves {
			if mv.EpochAfter != mv.EpochBefore+1 {
				out = append(out, Violation{InvFailover, fmt.Sprintf(
					"failover %d: room %s fencing epoch jumped %d -> %d, want exactly +1",
					i, mv.Room, mv.EpochBefore, mv.EpochAfter)})
			}
			if inMove[mv.Room] {
				out = append(out, Violation{InvFailover, fmt.Sprintf(
					"failover %d: room %s moved twice in one promotion", i, mv.Room)})
			}
			inMove[mv.Room] = true
			key := fmt.Sprintf("%s@%d", mv.Room, mv.EpochBefore)
			if seen[key] {
				out = append(out, Violation{InvFailover, fmt.Sprintf(
					"room %s at epoch %d survived two separate owner deaths", mv.Room, mv.EpochBefore)})
			}
			seen[key] = true
		}
	}
	return out
}

// checkPromoteOnce audits promotion multiplicity: one completed
// promotion per dead incarnation, and the resume counter must match
// the script — exactly one resume for a kill with an armed crash
// point, zero otherwise. A resume on a clean kill means the failover
// restarted work it had completed; a missing resume on a staged kill
// means the crash point never fired (or the promotion wedged and a
// fresh one was minted instead).
func checkPromoteOnce(sc *simulate.Scenario, res *simulate.Result) []Violation {
	var out []Violation
	staged := stagedKills(sc)
	seenDead := make(map[string]bool)
	for i, fo := range res.Failovers {
		dead := string(fo.Dead)
		if seenDead[dead] {
			out = append(out, Violation{InvPromoteOnce, fmt.Sprintf(
				"failover %d: dead incarnation %s promoted more than once", i, fo.Dead)})
		}
		seenDead[dead] = true
		wantResumes := 0
		if staged[fo.Step] > 0 {
			wantResumes = 1
		}
		if fo.Resumes != wantResumes {
			out = append(out, Violation{InvPromoteOnce, fmt.Sprintf(
				"failover %d (%s -> %s): %d promotion resumes recorded, want %d (crash stage %d scripted at step %d)",
				i, fo.Dead, fo.Promoted, fo.Resumes, wantResumes, staged[fo.Step], fo.Step)})
		}
	}
	return out
}

// checkNoSilentLoss audits the failover audit itself: the Lossy flag
// must equal the watermark comparison it claims to summarize, and a
// kill whose ship stream the script never impaired must not have lost
// anything — loss is only ever permitted where a fault was injected,
// and even there it must be declared.
func checkNoSilentLoss(sc *simulate.Scenario, res *simulate.Result) []Violation {
	var out []Violation
	lossy := lossyKills(sc)
	for i, fo := range res.Failovers {
		actualLoss := fo.SinkLastLSN < fo.DeadSyncedLSN
		if fo.Lossy != actualLoss {
			out = append(out, Violation{InvNoSilentLoss, fmt.Sprintf(
				"failover %d (%s -> %s): audit says lossy=%v but sink watermark %d vs dead fsync'd %d says %v",
				i, fo.Dead, fo.Promoted, fo.Lossy, fo.SinkLastLSN, fo.DeadSyncedLSN, actualLoss)})
		}
		if !lossy[fo.Step] && actualLoss {
			out = append(out, Violation{InvNoSilentLoss, fmt.Sprintf(
				"failover %d (%s -> %s): standby lost records (%d < %d) with no scripted ship impairment",
				i, fo.Dead, fo.Promoted, fo.SinkLastLSN, fo.DeadSyncedLSN)})
		}
	}
	return out
}

// checkShipResume audits the final replication-health snapshot: a live
// node with nonzero lag must be flagged as impaired (cut, failing or
// erroring) — the silent stall this invariant is named for — and a
// lineage whose scripted faults were all healed must have caught up
// completely by the final settle.
func checkShipResume(sc *simulate.Scenario, res *simulate.Result) []Violation {
	var out []Violation
	// Re-walk the script to find lineages still impaired at session end.
	impaired := make(map[string]bool)
	for _, st := range sc.Steps {
		switch st.Kind {
		case simulate.StepCutShip, simulate.StepSinkFault:
			impaired[st.Node] = true
		case simulate.StepHealShip:
			impaired[st.Node] = false
		case simulate.StepKillNode:
			impaired[st.Node] = false
		}
	}
	for _, h := range res.ShipHealth {
		if !h.Live {
			continue // dead-awaiting-failover: audited by the promotion
		}
		surfaced := h.ShipCut || h.ShipFailures > 0 || h.ShipErr != ""
		if h.Lag > 0 && !surfaced {
			out = append(out, Violation{InvShipResume, fmt.Sprintf(
				"node %s: standby lags %d records (synced %d, sink %d) with a clean health report — silent ship stall",
				h.Node, h.Lag, h.SyncedLSN, h.SinkLSN)})
		}
		if !impaired[h.Base] && (h.Lag > 0 || h.ShipCut || h.ShipErr != "") {
			out = append(out, Violation{InvShipResume, fmt.Sprintf(
				"node %s: ship stream was healed (or never impaired) but ended lag=%d cut=%v err=%q — stream did not resume",
				h.Node, h.Lag, h.ShipCut, h.ShipErr)})
		}
	}
	return out
}

// checkSingleWriter audits every clock-skewed lease race: a seizure
// must bump the fencing epoch by exactly one AND verifiably fence the
// deposed owner; a refusal must leave the epoch untouched and name the
// refusing error. Whichever clock the challenger believed, at most one
// node may hold a writable claim.
func checkSingleWriter(res *simulate.Result) []Violation {
	var out []Violation
	for i, lr := range res.LeaseRaces {
		if lr.Seized {
			if lr.EpochAfter != lr.EpochBefore+1 {
				out = append(out, Violation{InvSingleWriter, fmt.Sprintf(
					"race %d: %s seized %s with epoch %d -> %d, want exactly +1",
					i, lr.Challenger, lr.Room, lr.EpochBefore, lr.EpochAfter)})
			}
			if !lr.OldOwnerFenced {
				out = append(out, Violation{InvSingleWriter, fmt.Sprintf(
					"race %d: %s seized %s from %s but the deposed owner was NOT fenced — two writable claims",
					i, lr.Challenger, lr.Room, lr.Owner)})
			}
		} else {
			if lr.EpochAfter != lr.EpochBefore {
				out = append(out, Violation{InvSingleWriter, fmt.Sprintf(
					"race %d: refused race on %s moved the epoch %d -> %d",
					i, lr.Room, lr.EpochBefore, lr.EpochAfter)})
			}
			if lr.Refused == "" {
				out = append(out, Violation{InvSingleWriter, fmt.Sprintf(
					"race %d: race on %s neither seized nor carries a refusal error", i, lr.Room)})
			}
		}
	}
	return out
}

// scriptedSends walks the script and returns, per room, each sender's
// chat lines in send order (bursts expand in burst order).
func scriptedSends(sc *simulate.Scenario) map[string]map[string][]string {
	sends := make(map[string]map[string][]string)
	for _, st := range sc.Steps {
		if st.Kind != simulate.StepSay && st.Kind != simulate.StepBurst {
			continue
		}
		room := sends[st.Room]
		if room == nil {
			room = make(map[string][]string)
			sends[st.Room] = room
		}
		room[st.User] = append(room[st.User], st.Texts...)
	}
	return sends
}

// userRoom maps each participant to the room their script joins (the
// generator keeps every user in one room for the whole session).
func userRoom(sc *simulate.Scenario) map[string]string {
	rooms := make(map[string]string)
	for _, st := range sc.Steps {
		if st.Kind == simulate.StepJoin {
			if _, ok := rooms[st.User]; !ok {
				rooms[st.User] = st.Room
			}
		}
	}
	return rooms
}

// checkDurability audits every crash/recovery cycle: replay must cover
// the pre-crash durable (fsync'd) watermark with zero apply errors, and
// the rebuilt knowledge stores must not shrink.
func checkDurability(res *simulate.Result) []Violation {
	var out []Violation
	for i, rec := range res.Recoveries {
		if rec.ReplayErrors > 0 {
			out = append(out, Violation{InvDurability, fmt.Sprintf(
				"recovery %d: %d journal records failed to apply on replay", i, rec.ReplayErrors)})
		}
		if rec.ReplayLastLSN < rec.PreCrashSyncedLSN {
			out = append(out, Violation{InvDurability, fmt.Sprintf(
				"recovery %d: replay stopped at LSN %d but LSN %d was fsync'd before the crash — durable mutations lost",
				i, rec.ReplayLastLSN, rec.PreCrashSyncedLSN)})
		}
		if rec.CorpusAfter < rec.CorpusBefore {
			out = append(out, Violation{InvDurability, fmt.Sprintf(
				"recovery %d: corpus shrank across recovery (%d -> %d)", i, rec.CorpusBefore, rec.CorpusAfter)})
		}
		if rec.FAQAfter < rec.FAQBefore {
			out = append(out, Violation{InvDurability, fmt.Sprintf(
				"recovery %d: FAQ shrank across recovery (%d -> %d)", i, rec.FAQBefore, rec.FAQAfter)})
		}
	}
	return out
}

// checkFIFO audits per-room message ordering over the delivery log.
//
// Core check (always sound): for every client, the chat messages it
// received from one sender in one room must form a subsequence of that
// sender's scripted send sequence — same order, no duplicates, no
// inventions. Clients may legitimately miss a prefix (joined late,
// bounded history replay) or a suffix (dropped), but never reorder.
//
// Cross-receiver check: two clients must agree on the relative order of
// any two messages they both received. Restricted to senders whose
// scripted lines are pairwise distinct — repeated texts (spam floods)
// make message identity ambiguous under history truncation, so a
// repeated line cannot be attributed to a unique send.
func checkFIFO(sc *simulate.Scenario, res *simulate.Result) []Violation {
	var out []Violation
	sends := scriptedSends(sc)

	// Senders with pairwise-distinct texts, per room: eligible for the
	// cross-receiver order check under unambiguous identity.
	distinct := make(map[string]map[string]bool)
	for room, bySender := range sends {
		distinct[room] = make(map[string]bool)
		for sender, texts := range bySender {
			seen := make(map[string]bool, len(texts))
			ok := true
			for _, t := range texts {
				if seen[t] {
					ok = false
					break
				}
				seen[t] = true
			}
			distinct[room][sender] = ok
		}
	}

	type msgID struct {
		sender string
		idx    int
	}
	// Per (client, room): cursor per sender for the subsequence check,
	// and the identified message sequence for the cross-receiver check.
	type key struct{ client, room string }
	cursors := make(map[key]map[string]int)
	idSeqs := make(map[key][]msgID)
	for _, d := range res.Deliveries {
		if d.Type != chat.TypeChat || d.From == "" {
			continue
		}
		k := key{d.Client, d.Room}
		cur := cursors[k]
		if cur == nil {
			cur = make(map[string]int)
			cursors[k] = cur
		}
		seq := sends[d.Room][d.From]
		// Greedy subsequence match: find this text at or after the
		// sender cursor. Failure means a reorder, a duplicate delivery
		// or an invented message.
		pos := cur[d.From]
		found := -1
		for i := pos; i < len(seq); i++ {
			if seq[i] == d.Text {
				found = i
				break
			}
		}
		if found < 0 {
			out = append(out, Violation{InvFIFO, fmt.Sprintf(
				"client %s in %s: message %q from %s out of order (or not a pending send) after %d matched",
				d.Client, d.Room, d.Text, d.From, pos)})
			continue
		}
		cur[d.From] = found + 1
		if distinct[d.Room][d.From] {
			idSeqs[k] = append(idSeqs[k], msgID{d.From, found})
		}
	}

	// Cross-receiver order consistency, per room.
	byRoom := make(map[string][]key)
	for k := range idSeqs {
		byRoom[k.room] = append(byRoom[k.room], k)
	}
	for room, keys := range byRoom {
		sort.Slice(keys, func(i, j int) bool { return keys[i].client < keys[j].client })
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				a, b := idSeqs[keys[i]], idSeqs[keys[j]]
				posA := make(map[msgID]int, len(a))
				for p, id := range a {
					posA[id] = p
				}
				last := -1
				for _, id := range b {
					p, ok := posA[id]
					if !ok {
						continue
					}
					if p < last {
						out = append(out, Violation{InvFIFO, fmt.Sprintf(
							"room %s: clients %s and %s disagree on the order of %s's message %d",
							room, keys[i].client, keys[j].client, id.sender, id.idx)})
					} else {
						last = p
					}
				}
			}
		}
	}
	return out
}

// checkPhantom audits the verdict log against the script: every verdict
// must correspond to a scripted (room, user, text) send, and no send
// may draw more verdicts than the script issued it.
func checkPhantom(sc *simulate.Scenario, res *simulate.Result) []Violation {
	var out []Violation
	budget := make(map[string]int)
	mk := func(room, user, text string) string { return room + "\x00" + user + "\x00" + text }
	for _, st := range sc.Steps {
		if st.Kind != simulate.StepSay && st.Kind != simulate.StepBurst {
			continue
		}
		for _, t := range st.Texts {
			budget[mk(st.Room, st.User, t)]++
		}
	}
	for _, e := range res.VerdictLog {
		k := mk(e.Room, e.User, e.Text)
		if budget[k] == 0 {
			out = append(out, Violation{InvPhantom, fmt.Sprintf(
				"verdict %q for message %q from %s in %s exceeds the scripted sends of that message",
				e.Verdict, e.Text, e.User, e.Room)})
			continue
		}
		budget[k]--
	}
	return out
}

// checkShedExact cross-checks the three independent shed observers: the
// recorder's unconsumed expectations (ground truth), the chat server's
// per-room OnShed attributions, and the pipeline's admission counters.
// Scenario crashes settle in-flight work first, so the equalities are
// exact, not bounds.
func checkShedExact(sc *simulate.Scenario, res *simulate.Result) []Violation {
	var out []Violation
	pt := res.PipelineTotal
	roomOf := userRoom(sc)

	var roomSum int64
	for _, n := range res.ShedByRoom {
		roomSum += int64(n)
	}
	if roomSum != pt.Shed {
		out = append(out, Violation{InvShedExact, fmt.Sprintf(
			"per-room shed attributions sum to %d but the pipeline shed %d", roomSum, pt.Shed)})
	}
	if int64(res.Unsupervised) != pt.Shed {
		out = append(out, Violation{InvShedExact, fmt.Sprintf(
			"%d scripted messages went unsupervised but the pipeline shed %d", res.Unsupervised, pt.Shed)})
	}
	// Per-room: unconsumed expectations, attributed to rooms via the
	// script's user->room mapping, must match OnShed's attribution.
	wantByRoom := make(map[string]int)
	for user, n := range res.UnsupervisedByUser {
		wantByRoom[roomOf[user]] += n
	}
	rooms := make(map[string]bool)
	for r := range wantByRoom {
		rooms[r] = true
	}
	for r := range res.ShedByRoom {
		rooms[r] = true
	}
	sorted := make([]string, 0, len(rooms))
	for r := range rooms {
		sorted = append(sorted, r)
	}
	sort.Strings(sorted)
	for _, r := range sorted {
		if wantByRoom[r] != res.ShedByRoom[r] {
			out = append(out, Violation{InvShedExact, fmt.Sprintf(
				"room %s: %d unconsumed expectations vs %d shed attributions",
				r, wantByRoom[r], res.ShedByRoom[r])})
		}
	}
	return out
}

// checkConservation audits that every scripted message is accounted
// for: supervised exactly once, or shed and counted as such — nothing
// vanishes, nothing is double-counted.
func checkConservation(res *simulate.Result) []Violation {
	var out []Violation
	if res.Sent != len(res.VerdictLog)+res.Unsupervised {
		out = append(out, Violation{InvConservation, fmt.Sprintf(
			"%d messages sent but %d supervised + %d unsupervised",
			res.Sent, len(res.VerdictLog), res.Unsupervised)})
	}
	if res.HasPipeline {
		pt := res.PipelineTotal
		if int64(res.Sent) != pt.Submitted+pt.ShedNew {
			out = append(out, Violation{InvConservation, fmt.Sprintf(
				"%d messages sent but pipeline accepted %d + refused %d at admission",
				res.Sent, pt.Submitted, pt.ShedNew)})
		}
		if pt.Submitted != pt.Completed+pt.ShedOldest {
			out = append(out, Violation{InvConservation, fmt.Sprintf(
				"pipeline accepted %d tasks but completed %d + evicted %d",
				pt.Submitted, pt.Completed, pt.ShedOldest)})
		}
	}
	return out
}
