package gen

import (
	"testing"

	"semagent/internal/chat"
	"semagent/internal/cluster"
	"semagent/internal/corpus"
	"semagent/internal/simulate"
)

// The meta-tests: every invariant checker is itself tested by injecting
// the violation class it exists to catch into a copy of a real run's
// observations and asserting the checker fires. A checker that passes
// HEAD but would also pass a broken system is worthless — this is the
// proof each one has teeth.

// tamperBase runs one kitchen-sink population (storms + drops + crash)
// and asserts it is clean, so any violation found after tampering was
// introduced by the tamper.
func tamperBase(t *testing.T) (*simulate.Scenario, *simulate.Result) {
	t.Helper()
	sc, res, _ := runProfile(t, Config{
		Seed: 63, Rooms: 5, Arrival: ArrivalBursty,
		DropFraction: 0.6, TornFraction: 0.5, StormFraction: 0.6,
		Crashes: 1,
	})
	if t.Failed() {
		t.Fatalf("baseline run must be violation-free before tampering")
	}
	return sc, res
}

// hasViolation reports whether rep contains a violation of the named
// invariant.
func hasViolation(rep Report, invariant string) bool {
	for _, v := range rep.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// shallowCopy clones the Result fields the checkers read, deep enough
// that tampering the copy cannot leak into sibling subtests.
func shallowCopy(res *simulate.Result) *simulate.Result {
	cp := *res
	cp.VerdictLog = append([]simulate.VerdictEntry(nil), res.VerdictLog...)
	cp.Deliveries = append([]simulate.Delivery(nil), res.Deliveries...)
	cp.Recoveries = append([]simulate.RecoveryStats(nil), res.Recoveries...)
	cp.ShedByRoom = make(map[string]int, len(res.ShedByRoom))
	for k, v := range res.ShedByRoom {
		cp.ShedByRoom[k] = v
	}
	cp.UnsupervisedByUser = make(map[string]int, len(res.UnsupervisedByUser))
	for k, v := range res.UnsupervisedByUser {
		cp.UnsupervisedByUser[k] = v
	}
	cp.Failovers = make([]simulate.FailoverStats, len(res.Failovers))
	for i, fo := range res.Failovers {
		cp.Failovers[i] = fo
		cp.Failovers[i].Moves = append([]cluster.RoomMove(nil), fo.Moves...)
	}
	cp.LeaseRaces = append([]simulate.LeaseRaceStats(nil), res.LeaseRaces...)
	cp.ShipHealth = append([]cluster.NodeHealth(nil), res.ShipHealth...)
	return &cp
}

func TestCheckersFire(t *testing.T) {
	sc, res := tamperBase(t)

	t.Run("durability/lost-fsync-record", func(t *testing.T) {
		cp := shallowCopy(res)
		// Recovery claims to have replayed short of the durable
		// watermark: an fsync'd mutation vanished.
		cp.Recoveries[0].ReplayLastLSN = cp.Recoveries[0].PreCrashSyncedLSN - 1
		if !hasViolation(Check(sc, cp), InvDurability) {
			t.Fatalf("durability checker ignored a replay below the fsync watermark")
		}
	})

	t.Run("durability/replay-errors", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Recoveries[0].ReplayErrors = 3
		if !hasViolation(Check(sc, cp), InvDurability) {
			t.Fatalf("durability checker ignored replay apply errors")
		}
	})

	t.Run("durability/store-shrank", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Recoveries[0].CorpusAfter = cp.Recoveries[0].CorpusBefore - 1
		if !hasViolation(Check(sc, cp), InvDurability) {
			t.Fatalf("durability checker ignored a corpus that shrank across recovery")
		}
	})

	t.Run("room-fifo/reordered-messages", func(t *testing.T) {
		cp := shallowCopy(res)
		i, j := findReorderableDeliveries(t, sc, cp)
		cp.Deliveries[i], cp.Deliveries[j] = cp.Deliveries[j], cp.Deliveries[i]
		if !hasViolation(Check(sc, cp), InvFIFO) {
			t.Fatalf("FIFO checker ignored two same-sender messages delivered out of order")
		}
	})

	t.Run("room-fifo/duplicate-delivery", func(t *testing.T) {
		cp := shallowCopy(res)
		i, _ := findReorderableDeliveries(t, sc, cp)
		cp.Deliveries = append(cp.Deliveries, cp.Deliveries[i])
		if !hasViolation(Check(sc, cp), InvFIFO) {
			t.Fatalf("FIFO checker ignored a duplicated delivery")
		}
	})

	t.Run("shed-exact/undercounted-room", func(t *testing.T) {
		cp := shallowCopy(res)
		room := someShedRoom(t, cp)
		cp.ShedByRoom[room]--
		if !hasViolation(Check(sc, cp), InvShedExact) {
			t.Fatalf("shed checker ignored an undercounted room attribution")
		}
	})

	t.Run("shed-exact/pipeline-mismatch", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.PipelineTotal.Shed++
		cp.PipelineTotal.ShedNew++
		if !hasViolation(Check(sc, cp), InvShedExact) {
			t.Fatalf("shed checker ignored pipeline counters disagreeing with ground truth")
		}
	})

	t.Run("no-phantom-verdict/never-sent", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.VerdictLog = append(cp.VerdictLog, simulate.VerdictEntry{
			Room: "room-00000", User: "r00000-con0",
			Text:    "this message was never scripted",
			Verdict: corpus.VerdictCorrect,
		})
		if !hasViolation(Check(sc, cp), InvPhantom) {
			t.Fatalf("phantom checker ignored a verdict for a never-sent message")
		}
	})

	t.Run("no-phantom-verdict/double-verdict", func(t *testing.T) {
		cp := shallowCopy(res)
		if len(cp.VerdictLog) == 0 {
			t.Fatalf("baseline has no verdicts to duplicate")
		}
		cp.VerdictLog = append(cp.VerdictLog, cp.VerdictLog[0])
		if !hasViolation(Check(sc, cp), InvPhantom) {
			t.Fatalf("phantom checker ignored the same send drawing two verdicts")
		}
	})

	t.Run("conservation/vanished-message", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Sent++
		if !hasViolation(Check(sc, cp), InvConservation) {
			t.Fatalf("conservation checker ignored a sent message with no outcome")
		}
	})

	t.Run("conservation/pipeline-leak", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.PipelineTotal.Completed--
		if !hasViolation(Check(sc, cp), InvConservation) {
			t.Fatalf("conservation checker ignored an accepted task that never completed")
		}
	})
}

// TestFailoverCheckerFires: the failover invariant's meta-tests run on
// a cluster-shaped baseline (node kills are incompatible with
// StepCrash, so they cannot share tamperBase).
func TestFailoverCheckerFires(t *testing.T) {
	sc, res, _ := runProfile(t, Config{
		Seed: 59, Rooms: 6, Arrival: ArrivalPoisson,
		NodeKills: 2, Partitions: 1, ClusterNodes: 3,
	})
	if t.Failed() {
		t.Fatalf("baseline cluster run must be violation-free before tampering")
	}
	if len(res.Failovers) == 0 {
		t.Fatalf("baseline run recorded no failovers")
	}
	firstWithMoves := -1
	for i, fo := range res.Failovers {
		if len(fo.Moves) > 0 {
			firstWithMoves = i
			break
		}
	}

	t.Run("lost-promotion", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Failovers = cp.Failovers[:len(cp.Failovers)-1]
		if !hasViolation(Check(sc, cp), InvFailover) {
			t.Fatalf("failover checker ignored a scripted kill with no promotion")
		}
	})

	t.Run("standby-behind-fsync", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Failovers[0].SinkLastLSN = cp.Failovers[0].DeadSyncedLSN - 1
		if !hasViolation(Check(sc, cp), InvFailover) {
			t.Fatalf("failover checker ignored a standby watermark below the dead owner's fsync")
		}
	})

	t.Run("replay-errors", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Failovers[0].ReplayErrors = 2
		if !hasViolation(Check(sc, cp), InvFailover) {
			t.Fatalf("failover checker ignored promotion replay errors")
		}
	})

	t.Run("short-replay", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Failovers[0].ReplayLastLSN = cp.Failovers[0].DeadSyncedLSN - 1
		if !hasViolation(Check(sc, cp), InvFailover) {
			t.Fatalf("failover checker ignored a promotion replay below the fsync watermark")
		}
	})

	t.Run("epoch-jump", func(t *testing.T) {
		if firstWithMoves < 0 {
			t.Skip("no failover moved a room on this seed")
		}
		cp := shallowCopy(res)
		cp.Failovers[firstWithMoves].Moves[0].EpochAfter += 1
		if !hasViolation(Check(sc, cp), InvFailover) {
			t.Fatalf("failover checker ignored a fencing epoch that jumped by more than one")
		}
	})

	t.Run("double-survival", func(t *testing.T) {
		if firstWithMoves < 0 {
			t.Skip("no failover moved a room on this seed")
		}
		cp := shallowCopy(res)
		fo := &cp.Failovers[firstWithMoves]
		fo.Moves = append(fo.Moves, fo.Moves[0])
		if !hasViolation(Check(sc, cp), InvFailover) {
			t.Fatalf("failover checker ignored one room surviving the same death twice")
		}
	})
}

// TestAdversarialCheckersFire: meta-tests for the four adversarial
// invariants (ship-resume, promote-once, no-silent-loss,
// single-writer). The baseline schedules every adversarial fault class
// at once so each checker is applicable, then each subtest injects the
// exact lie its checker exists to catch.
func TestAdversarialCheckersFire(t *testing.T) {
	sc, res, plan := runProfile(t, Config{
		Seed: 63, Rooms: 4, Arrival: ArrivalPoisson,
		NodeKills: 2, PromotionCrashes: 1, LaggedKills: 1,
		ShipCuts: 1, SkewRaces: 2, ClusterNodes: 3,
	})
	if t.Failed() {
		t.Fatalf("baseline adversarial run must be violation-free before tampering")
	}
	if plan.PromotionCrashes != 1 || plan.LaggedKills != 1 || plan.ShipCuts != 1 || plan.SkewRaces != 2 {
		t.Fatalf("adversarial chaos not fully scheduled: %+v", plan)
	}
	if len(res.Failovers) == 0 || len(res.ShipHealth) == 0 {
		t.Fatalf("baseline recorded %d failovers and %d health entries — nothing to tamper",
			len(res.Failovers), len(res.ShipHealth))
	}
	liveAt := -1
	for i, h := range res.ShipHealth {
		if h.Live {
			liveAt = i
			break
		}
	}
	if liveAt < 0 {
		t.Fatalf("no live node in the final health snapshot")
	}

	t.Run("ship-resume/silent-stall", func(t *testing.T) {
		cp := shallowCopy(res)
		// A lagging standby whose health report claims nothing is wrong:
		// the exact silent death the invariant exists for.
		h := &cp.ShipHealth[liveAt]
		h.Lag, h.ShipCut, h.ShipFailures, h.ShipErr = 7, false, 0, ""
		h.SinkLSN = h.SyncedLSN - 7
		if !hasViolation(Check(sc, cp), InvShipResume) {
			t.Fatalf("ship-resume checker ignored a lagging standby with a clean health report")
		}
	})

	t.Run("ship-resume/healed-stream-still-cut", func(t *testing.T) {
		cp := shallowCopy(res)
		// The script healed every cut, yet a node ends the session with
		// its stream still severed.
		cp.ShipHealth[liveAt].ShipCut = true
		if !hasViolation(Check(sc, cp), InvShipResume) {
			t.Fatalf("ship-resume checker ignored a healed stream that stayed cut")
		}
	})

	t.Run("promote-once/phantom-resume", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Failovers[0].Resumes++
		if !hasViolation(Check(sc, cp), InvPromoteOnce) {
			t.Fatalf("promote-once checker ignored a resume count disagreeing with the script")
		}
	})

	t.Run("promote-once/double-promotion", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Failovers = append(cp.Failovers, cp.Failovers[0])
		if !hasViolation(Check(sc, cp), InvPromoteOnce) {
			t.Fatalf("promote-once checker ignored the same dead incarnation promoted twice")
		}
	})

	t.Run("no-silent-loss/lying-audit", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.Failovers[0].Lossy = !cp.Failovers[0].Lossy
		if !hasViolation(Check(sc, cp), InvNoSilentLoss) {
			t.Fatalf("no-silent-loss checker ignored a Lossy flag contradicting the watermarks")
		}
	})

	t.Run("no-silent-loss/unimpaired-loss", func(t *testing.T) {
		// Find a kill the script never impaired and make it lose data —
		// truthfully flagged, but loss without an injected fault.
		lossy := lossyKills(sc)
		clean := -1
		for i, fo := range res.Failovers {
			if !lossy[fo.Step] {
				clean = i
				break
			}
		}
		if clean < 0 {
			t.Skip("every kill on this seed was impaired")
		}
		cp := shallowCopy(res)
		cp.Failovers[clean].SinkLastLSN = cp.Failovers[clean].DeadSyncedLSN - 1
		cp.Failovers[clean].Lossy = true
		if !hasViolation(Check(sc, cp), InvNoSilentLoss) {
			t.Fatalf("no-silent-loss checker ignored data loss on an unimpaired kill")
		}
	})

	t.Run("single-writer/unfenced-seizure", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.LeaseRaces = append(cp.LeaseRaces, simulate.LeaseRaceStats{
			Step: 0,
			LeaseRace: cluster.LeaseRace{
				Room: "room-00000", Challenger: "n1", Owner: "n0",
				Seized: true, EpochBefore: 3, EpochAfter: 4,
				OldOwnerFenced: false,
			},
		})
		if !hasViolation(Check(sc, cp), InvSingleWriter) {
			t.Fatalf("single-writer checker ignored a seizure that left the old owner unfenced")
		}
	})

	t.Run("single-writer/epoch-jump", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.LeaseRaces = append(cp.LeaseRaces, simulate.LeaseRaceStats{
			Step: 0,
			LeaseRace: cluster.LeaseRace{
				Room: "room-00000", Challenger: "n1", Owner: "n0",
				Seized: true, EpochBefore: 3, EpochAfter: 6,
				OldOwnerFenced: true,
			},
		})
		if !hasViolation(Check(sc, cp), InvSingleWriter) {
			t.Fatalf("single-writer checker ignored a seizure whose epoch jumped by more than one")
		}
	})

	t.Run("single-writer/silent-refusal", func(t *testing.T) {
		cp := shallowCopy(res)
		cp.LeaseRaces = append(cp.LeaseRaces, simulate.LeaseRaceStats{
			Step: 0,
			LeaseRace: cluster.LeaseRace{
				Room: "room-00000", Challenger: "n1", Owner: "n0",
				Seized: false, EpochBefore: 3, EpochAfter: 3,
			},
		})
		if !hasViolation(Check(sc, cp), InvSingleWriter) {
			t.Fatalf("single-writer checker ignored a race that neither seized nor explains why not")
		}
	})
}

// findReorderableDeliveries picks two chat deliveries to the same
// client, in the same room, from the same sender, with different texts,
// where the sender's scripted lines are pairwise distinct — a pair
// whose swap is unambiguously a FIFO violation.
func findReorderableDeliveries(t *testing.T, sc *simulate.Scenario, res *simulate.Result) (int, int) {
	t.Helper()
	sends := scriptedSends(sc)
	distinctSender := func(room, sender string) bool {
		seen := make(map[string]bool)
		for _, txt := range sends[room][sender] {
			if seen[txt] {
				return false
			}
			seen[txt] = true
		}
		return true
	}
	type key struct{ client, room, from string }
	first := make(map[key]int)
	for i, d := range res.Deliveries {
		if d.Type != chat.TypeChat || d.From == "" {
			continue
		}
		k := key{d.Client, d.Room, d.From}
		if j, ok := first[k]; ok {
			if res.Deliveries[j].Text != d.Text && distinctSender(d.Room, d.From) {
				return j, i
			}
			continue
		}
		first[k] = i
	}
	t.Fatalf("no reorderable delivery pair in baseline run — grow the scenario")
	return 0, 0
}

// someShedRoom returns a room with a nonzero shed attribution.
func someShedRoom(t *testing.T, res *simulate.Result) string {
	t.Helper()
	for room, n := range res.ShedByRoom {
		if n > 0 {
			return room
		}
	}
	t.Fatalf("baseline run shed nothing — storms did not fire")
	return ""
}
