package simulate

import (
	"math/rand"
	"testing"

	"semagent/internal/corpus"
	"semagent/internal/ontology"
	"semagent/internal/workload"
)

func TestPersonaUtterancesCarryGroundTruth(t *testing.T) {
	g := workload.NewGenerator(1, ontology.BuildCourseOntology())
	rng := rand.New(rand.NewSource(2))
	wantKind := map[PersonaKind]workload.Kind{
		PersonaContributor: workload.KindCorrect,
		PersonaDrifter:     workload.KindSemanticError,
		PersonaAbusive:     workload.KindSyntaxError,
		PersonaQuestioner:  workload.KindQuestion,
		PersonaSpammer:     workload.KindSyntaxError,
		PersonaLateJoiner:  workload.KindCorrect,
	}
	for p, want := range wantKind {
		text, kind := p.Utter(g, rng)
		if text == "" {
			t.Errorf("%s produced empty text", p)
		}
		if kind != want {
			t.Errorf("%s kind = %v, want %v", p, kind, want)
		}
	}
}

func TestShedStormShedsExactlyAtWatermark(t *testing.T) {
	res, err := Run(shedStorm(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Scenario
	var burst int
	for _, st := range sc.Steps {
		if st.Kind == StepBurst {
			burst = len(st.Texts)
		}
	}
	if burst == 0 {
		t.Fatal("scenario has no burst")
	}
	wantShed := burst - sc.RoomHighWater
	if res.Unsupervised != wantShed {
		t.Errorf("unsupervised = %d, want %d (burst %d - watermark %d)",
			res.Unsupervised, wantShed, burst, sc.RoomHighWater)
	}
	if got := res.Pipeline.ShedNew; got != int64(wantShed) {
		t.Errorf("pipeline shed-new = %d, want %d", got, wantShed)
	}
	spam := res.PerPersona[PersonaSpammer]
	if spam == nil || spam.Shed != wantShed {
		t.Errorf("spammer shed = %+v, want %d", spam, wantShed)
	}
	// Chat delivery never degraded: every line was still broadcast, so
	// sent == supervised + unsupervised.
	if res.Sent != res.Supervised+res.Unsupervised {
		t.Errorf("sent %d != supervised %d + unsupervised %d",
			res.Sent, res.Supervised, res.Unsupervised)
	}
}

func TestRapidFireBackpressureLosesNothing(t *testing.T) {
	res, err := Run(rapidFireSpam(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsupervised != 0 {
		t.Errorf("unsupervised = %d, want 0 under blocking backpressure", res.Unsupervised)
	}
	if res.Sent != res.Supervised {
		t.Errorf("sent %d != supervised %d", res.Sent, res.Supervised)
	}
}

func TestCrashRecoveryReproducesStores(t *testing.T) {
	res, err := Run(journalCrashRecovery(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec == nil {
		t.Fatal("no recovery stats recorded")
	}
	if rec.CorpusAfter != rec.CorpusBefore {
		t.Errorf("corpus %d -> %d across crash, want identical", rec.CorpusBefore, rec.CorpusAfter)
	}
	if rec.FAQAfter != rec.FAQBefore {
		t.Errorf("faq %d -> %d across crash, want identical", rec.FAQBefore, rec.FAQAfter)
	}
	if rec.ReplayedRecords == 0 {
		t.Error("recovery replayed zero WAL records")
	}
}

func TestInterventionsLandWhereExpected(t *testing.T) {
	res, err := Run(abusiveOutbursts(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ab := res.PerPersona[PersonaAbusive]
	if ab == nil || ab.TruePos == 0 {
		t.Fatalf("abusive persona stats = %+v, want detections", ab)
	}
	if res.Verdicts[corpus.VerdictSyntaxError] == 0 {
		t.Error("no syntax-error verdicts in the abusive scenario")
	}

	res, err = Run(offtopicDrift(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dr := res.PerPersona[PersonaDrifter]
	if dr == nil || dr.TruePos == 0 {
		t.Fatalf("drifter persona stats = %+v, want detections", dr)
	}
	if res.Verdicts[corpus.VerdictSemanticError] == 0 {
		t.Error("no semantic-error verdicts in the drift scenario")
	}
}

func TestQASessionMinesFAQ(t *testing.T) {
	res, err := Run(qaSession(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.MinedPairs == 0 {
		t.Error("qa-session mined no FAQ pairs")
	}
	q := res.PerPersona[PersonaQuestioner]
	if q == nil || q.Questions == 0 {
		t.Fatalf("questioner stats = %+v, want questions", q)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(&Scenario{Name: "bad", GateBursts: true}, ""); err == nil {
		t.Error("GateBursts without Async accepted")
	}
	if _, err := Run(&Scenario{Name: "bad", Journal: true}, ""); err == nil {
		t.Error("Journal without dir accepted")
	}
}

func TestPersonaStatsRates(t *testing.T) {
	s := &PersonaStats{TruePos: 3, FalsePos: 1, FalseNeg: 2}
	if got := s.Precision(); got != 0.75 {
		t.Errorf("precision = %v", got)
	}
	if got := s.Recall(); got != 0.6 {
		t.Errorf("recall = %v", got)
	}
	empty := &PersonaStats{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty stats should score 1.0")
	}
}
