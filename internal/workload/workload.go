// Package workload generates deterministic, labelled synthetic
// classroom dialogue. The paper deployed its system on real students
// and reported no measurements; the generator replaces the students
// with scripted learners whose mistakes carry ground-truth labels, so
// the reproduction can score precision and recall (see DESIGN.md §3).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"semagent/internal/ontology"
)

// Kind is the ground-truth label of a generated sample.
type Kind int8

// Sample kinds.
const (
	KindCorrect Kind = iota + 1
	KindSyntaxError
	KindSemanticError
	KindQuestion
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCorrect:
		return "correct"
	case KindSyntaxError:
		return "syntax-error"
	case KindSemanticError:
		return "semantic-error"
	case KindQuestion:
		return "question"
	default:
		return "unknown"
	}
}

// Sample is one labelled utterance.
type Sample struct {
	Text string
	Kind Kind
	// Mutation tags the syntax corruption applied ("agreement",
	// "duplicate-determiner", "word-order", "extra-word").
	Mutation string
	// Template tags question samples ("what-is", "does-have", ...).
	Template string
	// Negated marks negative-polarity sentences.
	Negated bool
	// Topics are the ontology terms embedded in the sample.
	Topics []string
	// WantYes is the ground truth for yes/no questions.
	WantYes bool
	// InOntology is false for questions about unknown terms.
	InOntology bool
}

// Generator produces samples deterministically from a seed.
type Generator struct {
	rng  *rand.Rand
	onto *ontology.Ontology

	relatedPairs   [][2]string // (concept, operation) within the distance threshold
	unrelatedPairs [][2]string // (concept, operation) beyond threshold
	// hasPairs/notHasPairs carry the crisp "concept offers operation"
	// ground truth (inheritance-aware) used for yes/no questions.
	hasPairs      [][2]string
	notHasPairs   [][2]string
	verbOps       []string // operations usable as verbs
	concepts      []string
	properties    map[string][]string // concept -> properties
	allProperties []string
}

// NewGenerator builds a generator over the ontology.
func NewGenerator(seed int64, onto *ontology.Ontology) *Generator {
	g := &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		onto:       onto,
		properties: make(map[string][]string),
	}
	opSet := map[string]bool{
		"push": true, "pop": true, "insert": true, "delete": true,
		"enqueue": true, "dequeue": true, "search": true, "sort": true,
		"traverse": true,
	}
	items := onto.Items()
	var ops []string
	for _, it := range items {
		switch it.Kind {
		case ontology.KindConcept:
			// Multi-word concepts work fine in templates.
			g.concepts = append(g.concepts, it.Name)
		case ontology.KindOperation:
			ops = append(ops, it.Name)
			if opSet[it.Name] {
				g.verbOps = append(g.verbOps, it.Name)
			}
		case ontology.KindProperty:
			if !strings.Contains(it.Name, " ") {
				g.allProperties = append(g.allProperties, it.Name)
			}
		}
	}
	for _, c := range g.concepts {
		offered := make(map[string]bool)
		for _, op := range onto.OperationsOf(c) {
			offered[op.Name] = true
		}
		for _, op := range ops {
			if strings.Contains(op, " ") {
				continue // keep templates fluent
			}
			d := onto.Distance(c, op)
			switch {
			case d <= ontology.DefaultRelatedThreshold:
				// Direct operations (d=1) and operations inherited
				// through one is-a hop (d=2) are both valid usage.
				g.relatedPairs = append(g.relatedPairs, [2]string{c, op})
			default:
				g.unrelatedPairs = append(g.unrelatedPairs, [2]string{c, op})
			}
			switch {
			case offered[op]:
				g.hasPairs = append(g.hasPairs, [2]string{c, op})
			case d > ontology.DefaultRelatedThreshold:
				// Crisply false: not offered and not even nearby.
				g.notHasPairs = append(g.notHasPairs, [2]string{c, op})
			}
		}
		for _, r := range onto.Neighbors(itemID(onto, c)) {
			if r.Kind == ontology.RelHasProperty {
				if to, ok := onto.ByID(r.To); ok && !strings.Contains(to.Name, " ") {
					g.properties[c] = append(g.properties[c], to.Name)
				}
			}
		}
	}
	return g
}

func itemID(onto *ontology.Ontology, name string) int {
	it, ok := onto.Lookup(name)
	if !ok {
		return -1
	}
	return it.ID
}

func (g *Generator) pick(list []string) string {
	return list[g.rng.Intn(len(list))]
}

func (g *Generator) pickPair(pairs [][2]string) [2]string {
	return pairs[g.rng.Intn(len(pairs))]
}

// ---- correct sentences ------------------------------------------------

// generalSubjects/verbs/objects build in-dictionary filler sentences for
// chit-chat turns with no ontology content.
var (
	generalSubjectsSing = []string{"the teacher", "the student", "the cat", "the program"}
	generalSubjectsPl   = []string{"the teachers", "the students", "the cats", "the programs"}
	generalVerbsSing    = []string{"explains", "understands", "likes", "reviews"}
	generalVerbsPl      = []string{"explain", "understand", "like", "review"}
	generalObjects      = []string{"the lesson", "the course", "the homework", "the example", "the question"}
)

// Correct generates a grammatical, semantically valid sentence.
func (g *Generator) Correct() Sample {
	switch g.rng.Intn(6) {
	case 0: // concept has operation (related)
		p := g.pickPair(g.relatedPairs)
		return Sample{
			Text:   fmt.Sprintf("the %s has a %s operation", p[0], p[1]),
			Kind:   KindCorrect,
			Topics: []string{p[0], p[1]},
		}
	case 1: // verb-operation applied to its concept
		for tries := 0; tries < 16; tries++ {
			p := g.pickPair(g.relatedPairs)
			if isVerbOp(g.verbOps, p[1]) {
				return Sample{
					Text:   fmt.Sprintf("i %s the data into the %s", p[1], p[0]),
					Kind:   KindCorrect,
					Topics: []string{p[0], p[1]},
				}
			}
		}
		fallthrough
	case 2: // negated unrelated pair — the paper's flagship correct case
		p := g.pickPair(g.unrelatedPairs)
		return Sample{
			Text:    fmt.Sprintf("the %s doesn't have a %s method", p[0], p[1]),
			Kind:    KindCorrect,
			Negated: true,
			Topics:  []string{p[0], p[1]},
		}
	case 3: // property assertion
		for tries := 0; tries < 16; tries++ {
			c := g.pick(g.concepts)
			if props := g.properties[c]; len(props) > 0 {
				prop := props[g.rng.Intn(len(props))]
				return Sample{
					Text:   fmt.Sprintf("the %s is a %s structure", c, prop),
					Kind:   KindCorrect,
					Topics: []string{c, prop},
				}
			}
		}
		fallthrough
	case 4: // general chit-chat (singular)
		return Sample{
			Text: fmt.Sprintf("%s %s %s",
				g.pick(generalSubjectsSing), g.pick(generalVerbsSing), g.pick(generalObjects)),
			Kind: KindCorrect,
		}
	default: // general chit-chat (plural)
		return Sample{
			Text: fmt.Sprintf("%s %s %s",
				g.pick(generalSubjectsPl), g.pick(generalVerbsPl), g.pick(generalObjects)),
			Kind: KindCorrect,
		}
	}
}

func isVerbOp(verbOps []string, op string) bool {
	for _, v := range verbOps {
		if v == op {
			return true
		}
	}
	return false
}

// ---- syntax errors ----------------------------------------------------

// SyntaxError corrupts a correct sentence with one labelled mutation.
func (g *Generator) SyntaxError() Sample {
	base := g.Correct()
	tokens := strings.Fields(base.Text)
	switch g.rng.Intn(4) {
	case 0: // subject-verb agreement break
		for i, t := range tokens {
			switch t {
			case "has":
				tokens[i] = "have"
				return mutated(base, tokens, "agreement")
			case "is":
				tokens[i] = "are"
				return mutated(base, tokens, "agreement")
			case "explains", "understands", "likes", "reviews":
				tokens[i] = strings.TrimSuffix(t, "s")
				return mutated(base, tokens, "agreement")
			case "explain", "understand", "like", "review":
				tokens[i] = t + "s"
				return mutated(base, tokens, "agreement")
			}
		}
		fallthrough
	case 1: // duplicated determiner
		for i, t := range tokens {
			if t == "the" || t == "a" {
				out := make([]string, 0, len(tokens)+1)
				out = append(out, tokens[:i+1]...)
				out = append(out, t)
				out = append(out, tokens[i+1:]...)
				return mutated(base, out, "duplicate-determiner")
			}
		}
		fallthrough
	case 2: // adjacent swap around the verb
		if len(tokens) >= 3 {
			i := 1 + g.rng.Intn(len(tokens)-2)
			tokens[i], tokens[i+1] = tokens[i+1], tokens[i]
			return mutated(base, tokens, "word-order")
		}
		fallthrough
	default: // spurious extra word
		i := g.rng.Intn(len(tokens) + 1)
		extra := []string{"the", "very", "is", "do"}[g.rng.Intn(4)]
		out := make([]string, 0, len(tokens)+1)
		out = append(out, tokens[:i]...)
		out = append(out, extra)
		out = append(out, tokens[i:]...)
		return mutated(base, out, "extra-word")
	}
}

func mutated(base Sample, tokens []string, mutation string) Sample {
	return Sample{
		Text:     strings.Join(tokens, " "),
		Kind:     KindSyntaxError,
		Mutation: mutation,
		Topics:   base.Topics,
		Negated:  base.Negated,
	}
}

// ---- semantic errors ----------------------------------------------------

// SemanticError generates a grammatical but domain-nonsensical sentence:
// either an affirmative unrelated pair or a negated related pair.
func (g *Generator) SemanticError() Sample {
	if g.rng.Intn(3) == 0 {
		// Negated related pair: "the stack doesn't have a pop method".
		p := g.pickPair(g.relatedPairs)
		return Sample{
			Text:    fmt.Sprintf("the %s doesn't have a %s method", p[0], p[1]),
			Kind:    KindSemanticError,
			Negated: true,
			Topics:  []string{p[0], p[1]},
		}
	}
	p := g.pickPair(g.unrelatedPairs)
	if isVerbOp(g.verbOps, p[1]) && g.rng.Intn(2) == 0 {
		// "i push the data into a tree" — the paper's own example.
		return Sample{
			Text:   fmt.Sprintf("i %s the data into the %s", p[1], p[0]),
			Kind:   KindSemanticError,
			Topics: []string{p[0], p[1]},
		}
	}
	return Sample{
		Text:   fmt.Sprintf("the %s has a %s operation", p[0], p[1]),
		Kind:   KindSemanticError,
		Topics: []string{p[0], p[1]},
	}
}

// ---- questions ----------------------------------------------------------

// unknownTerms are deliberately out-of-ontology subjects.
var unknownTerms = []string{"zorklist", "flumtree", "quuxtable", "blorfheap"}

// Question generates an interrogative sample. outOfOntology forces an
// unanswerable subject.
func (g *Generator) Question(outOfOntology bool) Sample {
	if outOfOntology {
		return Sample{
			Text:       fmt.Sprintf("what is a %s?", g.pick(unknownTerms)),
			Kind:       KindQuestion,
			Template:   "what-is",
			InOntology: false,
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		c := g.pick(g.concepts)
		return Sample{
			Text: fmt.Sprintf("what is a %s?", c), Kind: KindQuestion,
			Template: "what-is", Topics: []string{c}, InOntology: true,
		}
	case 1:
		if g.rng.Intn(2) == 0 {
			p := g.pickPair(g.hasPairs)
			return Sample{
				Text: fmt.Sprintf("does a %s have a %s method?", p[0], p[1]), Kind: KindQuestion,
				Template: "does-have", Topics: []string{p[0], p[1]}, WantYes: true, InOntology: true,
			}
		}
		p := g.pickPair(g.notHasPairs)
		return Sample{
			Text: fmt.Sprintf("does a %s have a %s method?", p[0], p[1]), Kind: KindQuestion,
			Template: "does-have", Topics: []string{p[0], p[1]}, WantYes: false, InOntology: true,
		}
	case 2:
		p := g.pickPair(g.hasPairs)
		return Sample{
			Text: fmt.Sprintf("which data structure has the %s operation?", p[1]), Kind: KindQuestion,
			Template: "which-has", Topics: []string{p[1]}, InOntology: true,
		}
	case 3:
		a, b := g.pick(g.concepts), g.pick(g.concepts)
		return Sample{
			Text: fmt.Sprintf("is a %s a %s?", a, b), Kind: KindQuestion,
			Template: "is-a", Topics: []string{a, b},
			WantYes: g.onto.IsA(a, b), InOntology: true,
		}
	default:
		a, b := g.pick(g.concepts), g.pick(g.concepts)
		return Sample{
			Text: fmt.Sprintf("what is the relation between a %s and a %s?", a, b), Kind: KindQuestion,
			Template: "relations-of", Topics: []string{a, b}, InOntology: true,
		}
	}
}

// ---- mixed workloads ------------------------------------------------------

// Mix describes sample-kind proportions (weights need not sum to 1).
type Mix struct {
	Correct       float64
	SyntaxError   float64
	SemanticError float64
	Question      float64
	// OutOfOntology is the fraction of questions about unknown terms.
	OutOfOntology float64
}

// DefaultMix resembles a supervised classroom: mostly correct talk with
// a realistic error and question rate.
func DefaultMix() Mix {
	return Mix{Correct: 0.5, SyntaxError: 0.2, SemanticError: 0.15, Question: 0.15, OutOfOntology: 0.2}
}

// Generate produces n samples with the given mix.
func (g *Generator) Generate(n int, mix Mix) []Sample {
	total := mix.Correct + mix.SyntaxError + mix.SemanticError + mix.Question
	if total <= 0 {
		total = 1
		mix.Correct = 1
	}
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		r := g.rng.Float64() * total
		switch {
		case r < mix.Correct:
			out = append(out, g.Correct())
		case r < mix.Correct+mix.SyntaxError:
			out = append(out, g.SyntaxError())
		case r < mix.Correct+mix.SyntaxError+mix.SemanticError:
			out = append(out, g.SemanticError())
		default:
			out = append(out, g.Question(g.rng.Float64() < mix.OutOfOntology))
		}
	}
	return out
}

// ScriptedMessage is one turn of a simulated classroom session.
type ScriptedMessage struct {
	Room   string
	User   string
	Sample Sample
}

// Session scripts a classroom dialogue: users in rooms, questions often
// answered by a peer on the same topic (exercising the QA mining of the
// corpora generator).
func (g *Generator) Session(rooms, usersPerRoom, messages int) []ScriptedMessage {
	if rooms <= 0 {
		rooms = 1
	}
	if usersPerRoom <= 0 {
		usersPerRoom = 2
	}
	out := make([]ScriptedMessage, 0, messages)
	mix := DefaultMix()
	for i := 0; i < messages; i++ {
		room := fmt.Sprintf("room-%d", i%rooms)
		user := fmt.Sprintf("student-%d-%d", i%rooms, g.rng.Intn(usersPerRoom))
		s := g.Generate(1, mix)[0]
		out = append(out, ScriptedMessage{Room: room, User: user, Sample: s})
		// Questions get answered by a classmate ~70% of the time.
		if s.Kind == KindQuestion && s.InOntology && len(s.Topics) > 0 && g.rng.Float64() < 0.7 {
			answerer := fmt.Sprintf("student-%d-%d", i%rooms, g.rng.Intn(usersPerRoom))
			if answerer == user {
				answerer += "b"
			}
			topic := s.Topics[0]
			answer := Sample{
				Text:   fmt.Sprintf("the %s is a useful structure", topic),
				Kind:   KindCorrect,
				Topics: []string{topic},
			}
			if len(g.properties[topic]) > 0 {
				answer.Text = fmt.Sprintf("the %s is a %s structure", topic, g.properties[topic][0])
			}
			out = append(out, ScriptedMessage{Room: room, User: answerer, Sample: answer})
			i++
		}
	}
	return out
}
