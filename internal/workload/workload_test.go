package workload

import (
	"testing"

	"semagent/internal/ontology"
)

func newGen(t *testing.T, seed int64) *Generator {
	t.Helper()
	return NewGenerator(seed, ontology.BuildCourseOntology())
}

func TestDeterminism(t *testing.T) {
	g1 := newGen(t, 42)
	g2 := newGen(t, 42)
	for i := 0; i < 50; i++ {
		a := g1.Generate(1, DefaultMix())[0]
		b := g2.Generate(1, DefaultMix())[0]
		if a.Text != b.Text || a.Kind != b.Kind {
			t.Fatalf("sample %d diverged: %q vs %q", i, a.Text, b.Text)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g1 := newGen(t, 1)
	g2 := newGen(t, 2)
	same := 0
	for i := 0; i < 30; i++ {
		if g1.Correct().Text == g2.Correct().Text {
			same++
		}
	}
	if same == 30 {
		t.Error("different seeds produced identical streams")
	}
}

func TestCorrectSamplesAreLabelled(t *testing.T) {
	g := newGen(t, 7)
	for i := 0; i < 100; i++ {
		s := g.Correct()
		if s.Kind != KindCorrect {
			t.Fatalf("kind = %s", s.Kind)
		}
		if s.Text == "" {
			t.Fatal("empty text")
		}
	}
}

func TestSyntaxErrorsCarryMutationTags(t *testing.T) {
	g := newGen(t, 7)
	tags := make(map[string]int)
	for i := 0; i < 200; i++ {
		s := g.SyntaxError()
		if s.Kind != KindSyntaxError {
			t.Fatalf("kind = %s", s.Kind)
		}
		if s.Mutation == "" {
			t.Fatalf("no mutation tag for %q", s.Text)
		}
		tags[s.Mutation]++
	}
	if len(tags) < 3 {
		t.Errorf("mutation diversity too low: %v", tags)
	}
}

func TestSemanticErrorsUseOntologyPairs(t *testing.T) {
	g := newGen(t, 7)
	onto := ontology.BuildCourseOntology()
	for i := 0; i < 100; i++ {
		s := g.SemanticError()
		if s.Kind != KindSemanticError {
			t.Fatalf("kind = %s", s.Kind)
		}
		if len(s.Topics) != 2 {
			t.Fatalf("topics = %v", s.Topics)
		}
		related := onto.Related(s.Topics[0], s.Topics[1], 0)
		if s.Negated && !related {
			t.Errorf("negated semantic error must use a related pair: %q", s.Text)
		}
		if !s.Negated && related {
			t.Errorf("affirmative semantic error must use an unrelated pair: %q", s.Text)
		}
	}
}

func TestQuestionsCoverTemplates(t *testing.T) {
	g := newGen(t, 7)
	templates := make(map[string]int)
	for i := 0; i < 300; i++ {
		s := g.Question(false)
		if s.Kind != KindQuestion || !s.InOntology {
			t.Fatalf("bad question sample: %+v", s)
		}
		templates[s.Template]++
	}
	for _, want := range []string{"what-is", "does-have", "which-has", "is-a", "relations-of"} {
		if templates[want] == 0 {
			t.Errorf("template %q never generated (%v)", want, templates)
		}
	}
	oo := g.Question(true)
	if oo.InOntology {
		t.Error("out-of-ontology question mislabelled")
	}
}

func TestGenerateMixProportions(t *testing.T) {
	g := newGen(t, 11)
	samples := g.Generate(1000, DefaultMix())
	counts := make(map[Kind]int)
	for _, s := range samples {
		counts[s.Kind]++
	}
	if counts[KindCorrect] < 300 || counts[KindSyntaxError] < 80 ||
		counts[KindSemanticError] < 50 || counts[KindQuestion] < 50 {
		t.Errorf("mix far from expectation: %v", counts)
	}
}

func TestSessionAnswersFollowQuestions(t *testing.T) {
	g := newGen(t, 13)
	script := g.Session(2, 3, 200)
	if len(script) < 200 {
		t.Fatalf("script too short: %d", len(script))
	}
	answered := 0
	for i := 0; i < len(script)-1; i++ {
		if script[i].Sample.Kind == KindQuestion && script[i].Sample.InOntology {
			next := script[i+1]
			if next.Room == script[i].Room && next.User != script[i].User &&
				next.Sample.Kind == KindCorrect {
				answered++
			}
		}
	}
	if answered == 0 {
		t.Error("no question was followed by a peer answer")
	}
}
