package stats

import (
	"strings"
	"testing"
	"time"

	"semagent/internal/corpus"
	"semagent/internal/qa"
	"semagent/internal/sentence"
)

func ev(room, user, text string, verdict corpus.Verdict, topics ...string) Event {
	return Event{
		Time:    time.Now(),
		Room:    room,
		User:    user,
		Text:    text,
		Tokens:  strings.Fields(strings.ToLower(text)),
		Verdict: verdict,
		Pattern: sentence.Simple,
		Topics:  topics,
	}
}

func TestAnalyzerAggregates(t *testing.T) {
	a := NewAnalyzer()
	a.Record(ev("r1", "alice", "the stack has push", corpus.VerdictCorrect, "stack", "push"))
	a.Record(ev("r1", "bob", "the stack have push", corpus.VerdictSyntaxError, "stack", "push"))
	a.Record(ev("r2", "carol", "the tree has pop", corpus.VerdictSemanticError, "tree", "pop"))
	a.Record(ev("r1", "alice", "what is a stack", corpus.VerdictQuestion, "stack"))

	if a.Total() != 4 {
		t.Errorf("total = %d", a.Total())
	}
	vc := a.VerdictCounts()
	if vc[corpus.VerdictCorrect] != 1 || vc[corpus.VerdictSyntaxError] != 1 ||
		vc[corpus.VerdictSemanticError] != 1 || vc[corpus.VerdictQuestion] != 1 {
		t.Errorf("verdicts = %v", vc)
	}
	if got := a.ErrorRate(); got != 0.5 {
		t.Errorf("error rate = %v", got)
	}
	top := a.TopTopics(1)
	if len(top) != 1 || top[0].Name != "stack" || top[0].Count != 3 {
		t.Errorf("top topics = %v", top)
	}
	hard := a.HardestTopics(4)
	if len(hard) == 0 {
		t.Fatal("no hardest topics")
	}
	for _, r := range hard {
		if r.Name == "stack" && r.Count != 1 {
			t.Errorf("stack errors = %d, want 1", r.Count)
		}
	}
}

func TestAnalyzerEmpty(t *testing.T) {
	a := NewAnalyzer()
	if a.ErrorRate() != 0 {
		t.Error("empty analyzer must report 0 error rate")
	}
	if rep := a.Report(); !strings.Contains(rep, "0 messages") {
		t.Errorf("report = %q", rep)
	}
}

func TestReportMentionsKeyNumbers(t *testing.T) {
	a := NewAnalyzer()
	a.Record(ev("r1", "alice", "x", corpus.VerdictCorrect, "stack"))
	ev2 := ev("r1", "bob", "y", corpus.VerdictSyntaxError, "stack")
	ev2.Tags = []string{"agreement"}
	a.Record(ev2)
	rep := a.Report()
	for _, want := range []string{"2 messages", "2 learners", "agreement", "stack"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCorporaGeneratorRecordsAndMines(t *testing.T) {
	store := corpus.NewStore()
	faq := qa.NewFAQ()
	g := NewCorporaGenerator(store, faq)

	q := ev("r1", "alice", "what is a stack", corpus.VerdictQuestion, "stack")
	ans := ev("r1", "bob", "a stack is a lifo structure", corpus.VerdictCorrect, "stack", "lifo")
	g.Consume(q)
	g.Consume(ans)

	if store.Len() != 2 {
		t.Errorf("corpus records = %d, want 2", store.Len())
	}
	if g.MinedPairs() != 1 {
		t.Errorf("mined pairs = %d, want 1", g.MinedPairs())
	}
	entry, ok := faq.Lookup("what is a stack")
	if !ok {
		t.Fatal("mined pair missing from FAQ")
	}
	if !strings.Contains(entry.Answer, "lifo") {
		t.Errorf("mined answer = %q", entry.Answer)
	}
}

func TestMiningRequiresDifferentUserAndSharedTopic(t *testing.T) {
	store := corpus.NewStore()
	faq := qa.NewFAQ()
	g := NewCorporaGenerator(store, faq)

	// Same user answering their own question: not mined; question stays
	// pending for a later answer by someone else.
	g.Consume(ev("r1", "alice", "what is a stack", corpus.VerdictQuestion, "stack"))
	g.Consume(ev("r1", "alice", "a stack is a lifo structure", corpus.VerdictCorrect, "stack"))
	if g.MinedPairs() != 0 {
		t.Errorf("self-answer mined: %d", g.MinedPairs())
	}

	// Different user but unrelated topic: not mined, and the pending
	// question is consumed only on a topical answer.
	g.Consume(ev("r1", "bob", "a queue is a fifo structure", corpus.VerdictCorrect, "queue"))
	if g.MinedPairs() != 0 {
		t.Errorf("off-topic answer mined: %d", g.MinedPairs())
	}

	// Topical answer by another user: mined.
	g.Consume(ev("r1", "bob", "a stack is a lifo structure", corpus.VerdictCorrect, "stack"))
	if g.MinedPairs() != 1 {
		t.Errorf("mined pairs = %d, want 1", g.MinedPairs())
	}
}

func TestMiningWindowExpires(t *testing.T) {
	store := corpus.NewStore()
	faq := qa.NewFAQ()
	g := NewCorporaGenerator(store, faq)
	g.Window = time.Minute

	q := ev("r1", "alice", "what is a stack", corpus.VerdictQuestion, "stack")
	q.Time = time.Now().Add(-5 * time.Minute)
	g.Consume(q)
	g.Consume(ev("r1", "bob", "a stack is a lifo structure", corpus.VerdictCorrect, "stack"))
	if g.MinedPairs() != 0 {
		t.Errorf("stale question mined: %d", g.MinedPairs())
	}
}

func TestMiningPerRoomIsolation(t *testing.T) {
	store := corpus.NewStore()
	faq := qa.NewFAQ()
	g := NewCorporaGenerator(store, faq)

	g.Consume(ev("r1", "alice", "what is a stack", corpus.VerdictQuestion, "stack"))
	// Answer lands in a different room: must not pair.
	g.Consume(ev("r2", "bob", "a stack is a lifo structure", corpus.VerdictCorrect, "stack"))
	if g.MinedPairs() != 0 {
		t.Errorf("cross-room answer mined: %d", g.MinedPairs())
	}
}
