// Package stats implements the Learning Statistic Analyzer and Corpora
// Generator of the paper's architecture (Fig. 3): it records,
// classifies and analyzes the learners' dialogue, generates QA pairs by
// mining question/answer adjacency, updates the learner corpus, and
// renders the reports instructors use to "revise or enhance their
// content of teaching materials".
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"semagent/internal/corpus"
	"semagent/internal/metrics"
	"semagent/internal/qa"
	"semagent/internal/sentence"
)

// Event is one supervised utterance entering the analyzer.
type Event struct {
	Time    time.Time
	Room    string
	User    string
	Text    string
	Tokens  []string
	Verdict corpus.Verdict
	Pattern sentence.Pattern
	// Tags are fine-grained error labels from the Learning_Angel.
	Tags []string
	// Topics are the ontology terms mentioned.
	Topics []string
}

// Analyzer aggregates dialogue statistics.
type Analyzer struct {
	mu sync.Mutex

	total      int
	byVerdict  map[corpus.Verdict]int
	byPattern  map[sentence.Pattern]int
	byTag      map[string]int
	byTopic    map[string]int
	topicError map[string]int // errors per topic
	byUser     map[string]*userAgg
	byRoom     map[string]int
	firstSeen  time.Time
	lastSeen   time.Time

	// ops is the latest operational metrics snapshot (D10): the
	// chatserver's periodic ticker folds the live registry in, so the
	// instructor report shows load, latency and shed state alongside
	// the learning statistics.
	ops    metrics.Snapshot
	hasOps bool
}

type userAgg struct {
	messages int
	errors   int
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		byVerdict:  make(map[corpus.Verdict]int),
		byPattern:  make(map[sentence.Pattern]int),
		byTag:      make(map[string]int),
		byTopic:    make(map[string]int),
		topicError: make(map[string]int),
		byUser:     make(map[string]*userAgg),
		byRoom:     make(map[string]int),
	}
}

// Record consumes one event.
func (a *Analyzer) Record(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total++
	a.byVerdict[e.Verdict]++
	a.byPattern[e.Pattern]++
	a.byRoom[e.Room]++
	for _, t := range e.Tags {
		a.byTag[t]++
	}
	isErr := e.Verdict == corpus.VerdictSyntaxError || e.Verdict == corpus.VerdictSemanticError
	for _, t := range e.Topics {
		a.byTopic[t]++
		if isErr {
			a.topicError[t]++
		}
	}
	u := a.byUser[e.User]
	if u == nil {
		u = &userAgg{}
		a.byUser[e.User] = u
	}
	u.messages++
	if isErr {
		u.errors++
	}
	if a.firstSeen.IsZero() || e.Time.Before(a.firstSeen) {
		a.firstSeen = e.Time
	}
	if e.Time.After(a.lastSeen) {
		a.lastSeen = e.Time
	}
}

// Total returns the number of recorded events.
func (a *Analyzer) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// VerdictCounts returns a copy of the per-verdict histogram.
func (a *Analyzer) VerdictCounts() map[corpus.Verdict]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[corpus.Verdict]int, len(a.byVerdict))
	for k, v := range a.byVerdict {
		out[k] = v
	}
	return out
}

// PatternCounts returns a copy of the per-pattern histogram.
func (a *Analyzer) PatternCounts() map[sentence.Pattern]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[sentence.Pattern]int, len(a.byPattern))
	for k, v := range a.byPattern {
		out[k] = v
	}
	return out
}

// ErrorRate is the fraction of events with a syntax or semantic error.
func (a *Analyzer) ErrorRate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total == 0 {
		return 0
	}
	errs := a.byVerdict[corpus.VerdictSyntaxError] + a.byVerdict[corpus.VerdictSemanticError]
	return float64(errs) / float64(a.total)
}

// Ranked is a (name, count) row of a ranking.
type Ranked struct {
	Name  string
	Count int
}

// TopMistakes returns the most frequent error tags.
func (a *Analyzer) TopMistakes(n int) []Ranked {
	a.mu.Lock()
	defer a.mu.Unlock()
	return rank(a.byTag, n)
}

// TopTopics returns the most discussed ontology terms.
func (a *Analyzer) TopTopics(n int) []Ranked {
	a.mu.Lock()
	defer a.mu.Unlock()
	return rank(a.byTopic, n)
}

// HardestTopics returns topics ranked by error count — the signal that
// tells instructors which course material learners struggle with.
func (a *Analyzer) HardestTopics(n int) []Ranked {
	a.mu.Lock()
	defer a.mu.Unlock()
	return rank(a.topicError, n)
}

func rank(m map[string]int, n int) []Ranked {
	out := make([]Ranked, 0, len(m))
	for k, v := range m {
		out = append(out, Ranked{Name: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// RecordOps stores the latest operational metrics snapshot for the
// report. Call it periodically (the chatserver does) so instructors —
// and anyone reading the session summary — see the service's load and
// latency state next to the learning statistics.
func (a *Analyzer) RecordOps(snap metrics.Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ops = snap
	a.hasOps = true
}

// OpsSnapshot returns the last recorded operational snapshot, if any.
func (a *Analyzer) OpsSnapshot() (metrics.Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ops, a.hasOps
}

// Report renders a teacher-facing summary.
func (a *Analyzer) Report() string {
	a.mu.Lock()
	total := a.total
	verdicts := make(map[corpus.Verdict]int, len(a.byVerdict))
	for k, v := range a.byVerdict {
		verdicts[k] = v
	}
	users := len(a.byUser)
	rooms := len(a.byRoom)
	ops, hasOps := a.ops, a.hasOps
	a.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "Learning statistics: %d messages from %d learners in %d rooms\n", total, users, rooms)
	order := []corpus.Verdict{
		corpus.VerdictCorrect, corpus.VerdictSyntaxError,
		corpus.VerdictSemanticError, corpus.VerdictQuestion, corpus.VerdictUnknown,
	}
	for _, v := range order {
		if c := verdicts[v]; c > 0 {
			fmt.Fprintf(&b, "  %-15s %d\n", v.String()+":", c)
		}
	}
	fmt.Fprintf(&b, "  error rate:     %.1f%%\n", a.ErrorRate()*100)
	if top := a.TopMistakes(3); len(top) > 0 {
		b.WriteString("  frequent mistakes:")
		for _, r := range top {
			fmt.Fprintf(&b, " %s(%d)", r.Name, r.Count)
		}
		b.WriteByte('\n')
	}
	if top := a.HardestTopics(3); len(top) > 0 {
		b.WriteString("  hardest topics:")
		for _, r := range top {
			fmt.Fprintf(&b, " %s(%d)", r.Name, r.Count)
		}
		b.WriteByte('\n')
	}
	if hasOps {
		b.WriteString(renderOps(ops))
	}
	return b.String()
}

// renderOps formats the operational snapshot: every counter and gauge
// as a name=value pair, every histogram as count plus p50/p95/p99.
func renderOps(snap metrics.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Operational snapshot (%s):\n", snap.Time.Format(time.RFC3339))
	for _, fam := range snap.Families {
		for _, s := range fam.Series {
			name := fam.Name
			if len(s.Labels) > 0 {
				parts := make([]string, 0, len(s.Labels))
				for _, l := range s.Labels {
					parts = append(parts, l.Name+"="+l.Value)
				}
				name += "{" + strings.Join(parts, ",") + "}"
			}
			switch fam.Kind {
			case metrics.KindHistogram:
				fmt.Fprintf(&b, "  %-52s n=%d p50=%s p95=%s p99=%s\n", name, s.Count,
					time.Duration(s.P50).Round(time.Microsecond),
					time.Duration(s.P95).Round(time.Microsecond),
					time.Duration(s.P99).Round(time.Microsecond))
			default:
				fmt.Fprintf(&b, "  %-52s %d\n", name, s.Value)
			}
		}
	}
	return b.String()
}

// CorporaGenerator turns supervised dialogue into learner-corpus records
// and mines QA pairs into the FAQ: a question is paired with the next
// utterance in the same room from a different user that shares a topic
// with it (the paper's "technologies of data mining to collect the
// question and answer pairs from the learner").
type CorporaGenerator struct {
	mu     sync.Mutex
	corpus *corpus.Store
	faq    *qa.FAQ
	// pending holds the last unanswered question per room.
	pending map[string]*Event
	// Window is how long a question stays eligible for pairing.
	Window time.Duration

	minedPairs int
}

// NewCorporaGenerator wires the corpus store and FAQ to update.
func NewCorporaGenerator(store *corpus.Store, faq *qa.FAQ) *CorporaGenerator {
	return &CorporaGenerator{
		corpus:  store,
		faq:     faq,
		pending: make(map[string]*Event),
		Window:  2 * time.Minute,
	}
}

// MinedPairs reports how many QA pairs were mined from dialogue.
func (g *CorporaGenerator) MinedPairs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.minedPairs
}

// Consume records the event into the corpus and advances QA mining.
func (g *CorporaGenerator) Consume(e Event) int64 {
	var id int64
	if g.corpus != nil {
		id = g.corpus.Add(corpus.Record{
			Time:    e.Time,
			Room:    e.Room,
			User:    e.User,
			Text:    e.Text,
			Tokens:  e.Tokens,
			Verdict: e.Verdict,
			Topics:  e.Topics,
			Tags:    e.Tags,
		})
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if e.Verdict == corpus.VerdictQuestion {
		ev := e
		g.pending[e.Room] = &ev
		return id
	}
	q := g.pending[e.Room]
	if q == nil {
		return id
	}
	if e.User == q.User {
		return id // same speaker continuing, keep waiting
	}
	if g.Window > 0 && e.Time.Sub(q.Time) > g.Window {
		delete(g.pending, e.Room)
		return id
	}
	// An answer must be a correct statement sharing a topic with the
	// question.
	if e.Verdict == corpus.VerdictCorrect && sharesTopic(q.Topics, e.Topics) {
		if g.faq != nil {
			g.faq.Record(q.Text, e.Text, qa.TemplateNone)
		}
		g.minedPairs++
		delete(g.pending, e.Room)
	}
	return id
}

func sharesTopic(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	for _, t := range b {
		if set[t] {
			return true
		}
	}
	return false
}
