package eval

import (
	"encoding/json"
	"testing"
	"time"
)

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 8 true positives, 2 false positives, 9 true negatives, 1 false negative.
	for i := 0; i < 8; i++ {
		c.Observe(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Observe(true, false)
	}
	for i := 0; i < 9; i++ {
		c.Observe(false, false)
	}
	c.Observe(false, true)

	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); got < 0.888 || got > 0.889 {
		t.Errorf("recall = %v", got)
	}
	if got := c.Accuracy(); got != 0.85 {
		t.Errorf("accuracy = %v", got)
	}
	if c.F1() <= 0 || c.F1() > 1 {
		t.Errorf("f1 = %v", c.F1())
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero matrix should report zeros, not NaN")
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if got := l.Quantile(0.5); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := l.Quantile(0.99); got < 95*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	var empty Latencies
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty latencies should report zero")
	}
}

func TestRunE1ParserQuality(t *testing.T) {
	res, err := RunE1(150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 150 {
		t.Errorf("total = %d", res.Total)
	}
	// Generated sentences are grammatical by construction; the parser
	// must accept nearly all of them (E1's headline number).
	if rate := res.ParseRate(); rate < 0.95 {
		t.Errorf("parse rate = %.3f, want >= 0.95", rate)
	}
	if res.MetaViolations != 0 {
		t.Errorf("meta-rule violations = %d, want 0", res.MetaViolations)
	}
}

func TestRunE2SyntaxDetection(t *testing.T) {
	res, err := RunE2(200, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != 200 {
		t.Errorf("total = %d", res.Confusion.Total())
	}
	// The detector must beat chance decisively on both axes.
	if res.Confusion.Precision() < 0.8 {
		t.Errorf("precision = %.3f: %s", res.Confusion.Precision(), res.Confusion)
	}
	if res.Confusion.Recall() < 0.6 {
		t.Errorf("recall = %.3f: %s", res.Confusion.Recall(), res.Confusion)
	}
	if res.SuggestionRate <= 0 {
		t.Error("suggestion rate is zero despite corpus warm-up")
	}
}

func TestRunE2NullBudgetAblation(t *testing.T) {
	// D1: a zero null budget (stock link grammar) must not beat the
	// fault-tolerant configuration on F1 by a large margin — the
	// enhanced parser exists to locate errors, not to change detection.
	strict, err := RunE2(120, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	tolerant, err := RunE2(120, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tolerant.Confusion.Accuracy() < strict.Confusion.Accuracy()-0.15 {
		t.Errorf("tolerant parser collapsed: strict=%.3f tolerant=%.3f",
			strict.Confusion.Accuracy(), tolerant.Confusion.Accuracy())
	}
}

func TestRunE3SemanticAccuracy(t *testing.T) {
	res, err := RunE3(300, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() == 0 {
		t.Fatal("no judged samples")
	}
	// The ontology-distance checker should be near-perfect on the
	// synthetic truth table built from its own ontology.
	if acc := res.Confusion.Accuracy(); acc < 0.9 {
		t.Errorf("accuracy = %.3f: %s", acc, res.Confusion)
	}
	// All four truth-table cells must be exercised.
	for _, cell := range []string{"affirm-related", "affirm-unrelated", "negate-related", "negate-unrelated"} {
		if res.Cells[cell] == nil || res.Cells[cell].Total() == 0 {
			t.Errorf("cell %s not exercised", cell)
		}
	}
}

func TestRunE4QAAnswering(t *testing.T) {
	res, err := RunE4(200, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.AnswerRate(); rate < 0.9 {
		t.Errorf("in-ontology answer rate = %.3f", rate)
	}
	if res.OutOfOntologyAsked == 0 {
		t.Error("no out-of-ontology probes")
	}
	if res.OutOfOntologyAnswered > res.OutOfOntologyAsked/5 {
		t.Errorf("answered %d/%d out-of-ontology questions",
			res.OutOfOntologyAnswered, res.OutOfOntologyAsked)
	}
	// Yes/no questions must be answered correctly, not just answered.
	for _, row := range res.Rows {
		if row.Checkable > 0 {
			correctRate := float64(row.Correct) / float64(row.Checkable)
			if correctRate < 0.85 {
				t.Errorf("template %s: correct rate %.3f (%d/%d)",
					row.Template, correctRate, row.Correct, row.Checkable)
			}
		}
	}
}

func TestRunE5FAQGrowth(t *testing.T) {
	rows, err := RunE5([]int{50, 200}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].FAQEntries < rows[0].FAQEntries {
		t.Errorf("FAQ shrank with more dialogue: %+v", rows)
	}
	if rows[1].FAQEntries == 0 {
		t.Error("no FAQ entries after 200 messages")
	}
}

func TestRunE6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("network experiment")
	}
	for _, mode := range []E6Mode{E6Off, E6Inline, E6Async} {
		res, err := RunE6(E6Config{Rooms: 1, ClientsPerRoom: 3, MessagesEach: 4, Mode: mode, Seed: 7})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if res.Messages != 12 {
			t.Errorf("mode %s: messages = %d", mode, res.Messages)
		}
		if res.Throughput <= 0 || res.P50 <= 0 {
			t.Errorf("mode %s: degenerate result %+v", mode, res)
		}
	}
}

func TestRunE7Ablation(t *testing.T) {
	res, err := RunE7(200, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's stated reason for choosing the ontology method is
	// maintenance cost: the lexicalized baseline must be strictly
	// larger to maintain.
	if res.SLG.MaintenanceSize <= res.Onto.MaintenanceSize {
		t.Errorf("maintenance: slg=%d onto=%d", res.SLG.MaintenanceSize, res.Onto.MaintenanceSize)
	}
	// And the ontology method must not lose accuracy for it.
	if res.Onto.Confusion.Accuracy() < res.SLG.Confusion.Accuracy()-0.05 {
		t.Errorf("accuracy: onto=%.3f slg=%.3f",
			res.Onto.Confusion.Accuracy(), res.SLG.Confusion.Accuracy())
	}
}

func TestRunE8SuggestionsImproveWithCorpus(t *testing.T) {
	rows, err := RunE8([]int{0, 200}, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].HitRate > 0 {
		t.Errorf("empty corpus produced suggestions: %+v", rows[0])
	}
	if rows[1].HitRate <= rows[0].HitRate {
		t.Errorf("suggestions did not improve with corpus: %+v", rows)
	}
}

func TestRunE10SnapshotReadPath(t *testing.T) {
	res, err := RunE10(E10Config{Workers: []int{1, 2}, QueriesPerWorker: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 4 {
		t.Fatalf("arms = %d, want 4 (2 paths x 2 widths)", len(res.Arms))
	}
	for _, arm := range res.Arms {
		if arm.Queries != arm.Workers*500 {
			t.Errorf("%s-%dw queries = %d", arm.Path, arm.Workers, arm.Queries)
		}
		if arm.QueriesPerSec <= 0 {
			t.Errorf("%s-%dw throughput not positive", arm.Path, arm.Workers)
		}
	}
	if res.Snapshot.Items == 0 || res.Snapshot.TableEntries == 0 {
		t.Errorf("snapshot stats empty: %+v", res.Snapshot)
	}
	// The result must be JSON-marshalable: the harness emits it for the
	// perf trajectory (-json).
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back E10Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Snapshot.Items != res.Snapshot.Items || len(back.Arms) != len(res.Arms) {
		t.Errorf("JSON round trip lost data")
	}
}

func TestRunE11JournalOverheadAndRecovery(t *testing.T) {
	res, err := RunE11(E11Config{Rooms: 2, MessagesPerRoom: 8, Seed: 11, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("arms = %d, want 3", len(res.Arms))
	}
	total := res.Config.Rooms * res.Config.MessagesPerRoom
	for _, arm := range res.Arms {
		if arm.Messages != total {
			t.Errorf("%s: messages = %d, want %d", arm.Name, arm.Messages, total)
		}
		if arm.Throughput <= 0 {
			t.Errorf("%s: throughput = %f", arm.Name, arm.Throughput)
		}
	}
	for _, arm := range res.Arms[1:] {
		if arm.Records == 0 {
			t.Errorf("%s: no WAL records appended", arm.Name)
		}
		// The crash-recovery proof: the corpus survives in full.
		if arm.RecoveredCorpus != total {
			t.Errorf("%s: recovered corpus = %d, want %d", arm.Name, arm.RecoveredCorpus, total)
		}
	}
	if res.Arms[2].Fsyncs < res.Arms[2].Records {
		t.Errorf("fsync-per-record arm: %d fsyncs for %d records", res.Arms[2].Fsyncs, res.Arms[2].Records)
	}
}
