package eval

import (
	"fmt"
	"time"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/linkgrammar"
	"semagent/internal/loadgen"
	"semagent/internal/pipeline"
)

// e12Supervisor builds the experiment's supervisor: parse cache off,
// because the generator's limited sentence variety would otherwise make
// supervision all cache hits — real classroom text at MOOC scale is
// diverse, and a cache-miss parse is the representative unit of work
// the admission controller must protect.
func e12Supervisor() (*core.Supervisor, error) {
	return core.New(core.Config{ParserOptions: linkgrammar.Options{CacheSize: -1}})
}

// e12Process runs one message through the real pipeline plus the
// configured stage cost. The sleep models the analysis weight of a
// production deployment (bigger ontologies, longer utterances, per-user
// model updates) without burning CPU: it pins supervision capacity well
// below the TCP layer's ceiling, so the experiment measures the
// admission controller at its watermarks rather than the loopback
// socket stack — and it makes capacity deterministic enough that
// "offer 5× capacity" means the same thing on a laptop and in CI.
func e12Process(sup *core.Supervisor, stageCost time.Duration, room, user, text string) {
	_, _ = sup.Process(room, user, text)
	if stageCost > 0 {
		time.Sleep(stageCost)
	}
}

// E12Config sizes experiment E12 (DESIGN.md D10): overload behaviour of
// the supervised chat server under open-loop offered load at multiples
// of its measured supervision capacity, with and without admission
// control.
type E12Config struct {
	// Rooms / ClientsPerRoom shape the load population (defaults 4, 2).
	Rooms          int `json:"rooms"`
	ClientsPerRoom int `json:"clients_per_room"`
	// Duration is each arm's offered-load window (default 1200ms).
	Duration time.Duration `json:"duration"`
	// Seed drives the workload generator.
	Seed int64 `json:"seed"`
	// Multipliers are the offered-load multiples of measured capacity
	// (default 1×, 2×, 5×), each run with shedding on.
	Multipliers []float64
	// RoomHighWater / GlobalHighWater are the admission watermarks of
	// the shedding arms (defaults 16 and 256).
	RoomHighWater   int `json:"room_high_water"`
	GlobalHighWater int `json:"global_high_water"`
	// Workers sizes the supervision pool (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// SkipBlocking drops the blocking contrast arm (the highest
	// multiplier with admission control off), which is slow by design.
	SkipBlocking bool `json:"skip_blocking,omitempty"`
	// CalibrationMessages sizes the in-process capacity measurement
	// (default 256).
	CalibrationMessages int `json:"calibration_messages"`
	// StageCost is added to every supervised message (calibration and
	// server arms alike) as a sleep — the modeled analysis weight of a
	// production deployment (see e12Process). Default 1.5ms; negative
	// disables it.
	StageCost time.Duration `json:"stage_cost"`
}

func (c *E12Config) fill() {
	if c.Rooms <= 0 {
		c.Rooms = 4
	}
	if c.ClientsPerRoom <= 0 {
		c.ClientsPerRoom = 2
	}
	if c.Duration <= 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{1, 2, 5}
	}
	if c.RoomHighWater <= 0 {
		c.RoomHighWater = 16
	}
	if c.GlobalHighWater <= 0 {
		c.GlobalHighWater = 256
	}
	if c.CalibrationMessages <= 0 {
		c.CalibrationMessages = 256
	}
	switch {
	case c.StageCost == 0:
		c.StageCost = 1500 * time.Microsecond
	case c.StageCost < 0:
		c.StageCost = 0
	}
}

// E12Arm is one offered-load level's measurements.
type E12Arm struct {
	Name       string
	Multiplier float64
	Shedding   bool
	// OfferedRate is the open-loop target; SentRate what the generator
	// actually wrote (they diverge only when the server back-pressures
	// the sockets — the blocking arm's signature).
	OfferedRate, SentRate float64
	// EchoGoodput is broadcast deliveries confirmed per second;
	// SupervisedRate is supervision completions per second (the
	// "goodput" of the agent itself).
	EchoGoodput, SupervisedRate float64
	// ShedCount / ShedFraction quantify admission-control drops against
	// everything offered to the pipeline.
	ShedCount    int64
	ShedFraction float64
	Timeouts     int
	// End-to-end say-to-own-broadcast latency.
	P50, P95, P99, Mean time.Duration
	Pipeline            pipeline.Stats
}

// E12Result aggregates the experiment.
type E12Result struct {
	Config E12Config
	// CapacityMsgsPerSec is the in-process supervision throughput the
	// multipliers are anchored to: sharded pipeline, cache-miss parses
	// plus the configured StageCost per message (e12Supervisor /
	// e12Process), measured without chat overhead.
	CapacityMsgsPerSec float64
	Arms               []E12Arm
	// Headline numbers: p99 end-to-end latency at the highest
	// multiplier with shedding on vs the blocking contrast arm, the
	// supervised goodput at that load as a fraction of capacity, and
	// whether the shed arm's p99 stayed under BoundedP99Limit.
	P99AtMaxShed      time.Duration
	P99AtMaxBlocking  time.Duration
	GoodputVsCapacity float64
	BoundedP99        bool
}

// BoundedP99Limit is the "bounded tail" bar for the shedding arm: with
// admission control on, the echo path never waits for supervision, so
// p99 at 5× capacity must stay within interactive range rather than
// growing with the backlog.
const BoundedP99Limit = 250 * time.Millisecond

// RunE12 measures supervision capacity in-process, then drives the TCP
// chat server at Multipliers× that capacity with admission control on
// (oldest-drop), plus one blocking contrast arm at the highest
// multiplier. The paper's agent must answer "what happens at 5× load":
// with shedding, excess supervision is dropped deterministically and
// chat latency stays flat; without it, backpressure stalls the rooms
// and tail latency grows with the queue.
func RunE12(cfg E12Config) (*E12Result, error) {
	cfg.fill()
	res := &E12Result{Config: cfg}

	capacity, err := e12Capacity(cfg)
	if err != nil {
		return nil, fmt.Errorf("capacity calibration: %w", err)
	}
	res.CapacityMsgsPerSec = capacity

	maxMult := cfg.Multipliers[0]
	for _, m := range cfg.Multipliers {
		if m > maxMult {
			maxMult = m
		}
	}
	for _, m := range cfg.Multipliers {
		arm, err := runE12Arm(cfg, fmt.Sprintf("shed-%gx", m), m, capacity, true)
		if err != nil {
			return nil, fmt.Errorf("arm %gx shed: %w", m, err)
		}
		res.Arms = append(res.Arms, *arm)
		if m == maxMult {
			res.P99AtMaxShed = arm.P99
			if capacity > 0 {
				res.GoodputVsCapacity = arm.SupervisedRate / capacity
			}
		}
	}
	if !cfg.SkipBlocking {
		arm, err := runE12Arm(cfg, fmt.Sprintf("block-%gx", maxMult), maxMult, capacity, false)
		if err != nil {
			return nil, fmt.Errorf("arm %gx blocking: %w", maxMult, err)
		}
		res.Arms = append(res.Arms, *arm)
		res.P99AtMaxBlocking = arm.P99
	}
	res.BoundedP99 = res.P99AtMaxShed > 0 && res.P99AtMaxShed < BoundedP99Limit
	return res, nil
}

// e12Capacity measures the supervision pipeline's in-process throughput
// on cache-miss parses — the denominator every offered-load multiplier
// is anchored to.
func e12Capacity(cfg E12Config) (float64, error) {
	sup, err := e12Supervisor()
	if err != nil {
		return 0, err
	}
	msgs := E9Workload(E9Config{
		Rooms:           cfg.Rooms,
		MessagesPerRoom: cfg.CalibrationMessages / cfg.Rooms,
		Seed:            cfg.Seed,
	})
	// Warm pass: vocabulary teaching and allocator steady state,
	// excluded from timing.
	for _, m := range msgs {
		if _, err := sup.Process(m.Room, m.User, m.Text); err != nil {
			return 0, err
		}
	}
	pipe := pipeline.New(pipeline.Config{Workers: cfg.Workers, Block: true})
	start := time.Now()
	for _, m := range msgs {
		m := m
		if err := pipe.Submit(m.Room, func() { e12Process(sup, cfg.StageCost, m.Room, m.User, m.Text) }); err != nil {
			pipe.Close()
			return 0, err
		}
	}
	pipe.Close()
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, fmt.Errorf("zero elapsed")
	}
	return float64(len(msgs)) / elapsed.Seconds(), nil
}

func runE12Arm(cfg E12Config, name string, mult, capacity float64, shedding bool) (*E12Arm, error) {
	sup, err := e12Supervisor()
	if err != nil {
		return nil, err
	}
	base := sup.ChatSupervisor()
	opts := chat.ServerOptions{
		Supervisor: chat.SupervisorFunc(func(room, user, text string) []chat.Response {
			resp := base.Process(room, user, text)
			if cfg.StageCost > 0 {
				time.Sleep(cfg.StageCost)
			}
			return resp
		}),
		Async:   true,
		Workers: cfg.Workers,
	}
	if shedding {
		opts.ShedPolicy = pipeline.ShedOldest
		opts.RoomHighWater = cfg.RoomHighWater
		opts.GlobalHighWater = cfg.GlobalHighWater
	}
	server := chat.NewServer(opts)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer server.Close()

	rate := mult * capacity
	if rate <= 0 {
		return nil, fmt.Errorf("offered rate %v", rate)
	}
	armStart := time.Now()
	lg, err := loadgen.Run(loadgen.Config{
		Addr:  addr.String(),
		Rooms: cfg.Rooms, ClientsPerRoom: cfg.ClientsPerRoom,
		Rate:        rate,
		Duration:    cfg.Duration,
		Seed:        cfg.Seed + 100,
		EchoTimeout: 3 * time.Second,
	})
	if err != nil {
		return nil, err
	}

	st, _ := server.SupervisionStats()
	arm := &E12Arm{
		Name:        name,
		Multiplier:  mult,
		Shedding:    shedding,
		OfferedRate: rate,
		SentRate:    lg.SendRate,
		EchoGoodput: lg.Goodput,
		ShedCount:   st.Shed,
		Timeouts:    lg.Timeouts,
		P50:         lg.P50, P95: lg.P95, P99: lg.P99, Mean: lg.Mean,
		Pipeline: st,
	}
	// Rate over the whole arm (offered window + straggler grace), not
	// just the window: the blocking arm keeps completing its backlog
	// long after the generator stopped, and crediting that drain to the
	// shorter window would report goodput above capacity.
	if armElapsed := time.Since(armStart); armElapsed > 0 {
		arm.SupervisedRate = float64(st.Completed) / armElapsed.Seconds()
	}
	if offeredToPipe := st.Submitted + st.ShedNew; offeredToPipe > 0 {
		arm.ShedFraction = float64(st.Shed) / float64(offeredToPipe)
	}
	return arm, nil
}
