package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"semagent/internal/simulate"
	"semagent/internal/simulate/gen"
)

// E17Config parameterizes the adversarial failover experiment: a
// deterministic all-classes drill (asymmetric ship partitions, staged
// promotion crashes, lagged standbys and clock-skewed lease races in
// ONE population, run twice and required byte-identical) plus a
// generated chaos sweep rotating a profile per fault class, audited
// against the four adversarial invariants.
type E17Config struct {
	// Seed drives the drill population and derives every sweep wave's
	// seed.
	Seed int64 `json:"seed"`
	// Rooms is the chaos-sweep population (default 24).
	Rooms int `json:"rooms"`
	// RoomsPerWave bounds one fabric's room count (default 6; the wave
	// count is floored at 4 so every adversarial profile appears).
	RoomsPerWave int `json:"rooms_per_wave"`
	// Nodes is the fabric width (default 3).
	Nodes int `json:"nodes"`

	// Parallel bounds concurrently running sweep waves (default
	// GOMAXPROCS). Excluded from the artifact: parallelism cannot
	// change the results, only the wall clock.
	Parallel int `json:"-"`
}

// E17Faults aggregates the adversarial fault injections and their
// observed outcomes.
type E17Faults struct {
	ShipCuts    int `json:"ship_cuts"`
	ShipHeals   int `json:"ship_heals"`
	PromoCrash  int `json:"promotion_crashes"`
	LaggedKills int `json:"lagged_kills"`
	SkewRaces   int `json:"skew_races"`
	NodeKills   int `json:"node_kills"`
	Partitions  int `json:"partitions"`
	// Observed outcomes.
	Seizures        int `json:"seizures"`
	Refusals        int `json:"refusals"`
	LossyPromotions int `json:"lossy_promotions"`
	Resumes         int `json:"promotion_resumes"`
}

// E17Wave reports one generated adversarial population.
type E17Wave struct {
	Index      int             `json:"index"`
	Seed       int64           `json:"seed"`
	Profile    string          `json:"profile"`
	Rooms      int             `json:"rooms"`
	Students   int             `json:"students"`
	Messages   int             `json:"messages"`
	Supervised int             `json:"supervised"`
	Failovers  int             `json:"failovers"`
	Races      int             `json:"races"`
	Faults     E17Faults       `json:"faults"`
	Checked    []string        `json:"checked"`
	Violations []gen.Violation `json:"violations,omitempty"`
}

// E17Drill is the all-classes determinism drill: the same adversarial
// population replayed twice must produce byte-identical JSON
// aggregates.
type E17Drill struct {
	Seed       int64           `json:"seed"`
	Messages   int             `json:"messages"`
	Supervised int             `json:"supervised"`
	Failovers  int             `json:"failovers"`
	Races      int             `json:"races"`
	Faults     E17Faults       `json:"faults"`
	Checked    []string        `json:"checked"`
	Violations []gen.Violation `json:"violations,omitempty"`
	// Identical reports whether the replay's marshaled aggregates
	// matched run one byte for byte.
	Identical bool `json:"identical"`
}

// E17Result is the machine-readable outcome (evalharness -exp E17
// -json; the cluster CI job's artifact).
type E17Result struct {
	Config E17Config `json:"config"`

	Drill E17Drill `json:"drill"`

	// Sweep.
	Waves           int            `json:"waves"`
	Rooms           int            `json:"rooms"`
	Students        int            `json:"students"`
	Messages        int            `json:"messages"`
	Supervised      int            `json:"supervised"`
	Failovers       int            `json:"failovers"`
	Races           int            `json:"races"`
	Faults          E17Faults      `json:"faults"`
	InvariantChecks map[string]int `json:"invariant_checks"`
	WaveResults     []E17Wave      `json:"wave_results"`
	Violations      []E14Violation `json:"violations"`
}

// Failed returns an error when the drill broke determinism, any
// invariant was violated, or a fault class scheduled nothing.
func (r *E17Result) Failed() error {
	repro := fmt.Sprintf("reproduce with: evalharness -exp E17 -json -seed %d -rooms %d", r.Config.Seed, r.Config.Rooms)
	if !r.Drill.Identical {
		return fmt.Errorf("E17: two runs of the all-classes drill (seed %d) were not byte-identical — %s", r.Drill.Seed, repro)
	}
	if len(r.Drill.Violations) > 0 {
		v := r.Drill.Violations[0]
		return fmt.Errorf("E17: drill violated %s: %s — %s", v.Invariant, v.Detail, repro)
	}
	if len(r.Violations) > 0 {
		v := r.Violations[0]
		return fmt.Errorf("E17: %d invariant violation(s); first: wave %d (seed %d) violated %s: %s — %s",
			len(r.Violations), v.Wave, v.Seed, v.Invariant, v.Detail, repro)
	}
	f := r.Faults
	if f.ShipCuts == 0 || f.PromoCrash == 0 || f.LaggedKills == 0 || f.SkewRaces == 0 {
		return fmt.Errorf("E17: a fault class scheduled nothing (%+v) — the sweep is not adversarial — %s", f, repro)
	}
	return nil
}

// e17Profiles rotate over the wave index so every sweep of >= 4 waves
// exercises each adversarial class, one per wave, against a realistic
// population.
var e17Profiles = []struct {
	name string
	cfg  func(c *gen.Config)
}{
	{"asym-partition", func(c *gen.Config) {
		c.Arrival = gen.ArrivalPoisson
		c.DropFraction = 0.3
		c.ShipCuts, c.NodeKills = 2, 1
	}},
	{"promo-crash", func(c *gen.Config) {
		c.Arrival = gen.ArrivalUniform
		c.DropFraction = 0.3
		c.NodeKills, c.PromotionCrashes = 2, 2
	}},
	{"lagged-kill", func(c *gen.Config) {
		c.Arrival = gen.ArrivalBursty
		c.DropFraction, c.TornFraction = 0.3, 0.5
		c.NodeKills, c.LaggedKills = 2, 1
	}},
	{"skew-race", func(c *gen.Config) {
		c.Arrival = gen.ArrivalPoisson
		c.StormFraction = 0.4
		c.SkewRaces, c.NodeKills = 2, 1
	}},
}

// RunE17 runs the all-classes determinism drill and the adversarial
// chaos sweep.
func RunE17(cfg E17Config) (*E17Result, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Rooms <= 0 {
		cfg.Rooms = 24
	}
	if cfg.RoomsPerWave <= 0 {
		cfg.RoomsPerWave = 6
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	out := &E17Result{
		Config:          cfg,
		InvariantChecks: make(map[string]int),
		Violations:      []E14Violation{},
	}
	if err := runE17Drill(cfg, out); err != nil {
		return nil, err
	}
	if err := runE17Sweep(cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// e17Summarize folds one run's plan and result into a wave record.
func e17Summarize(idx int, profile string, gcfg gen.Config, plan gen.Plan, res *simulate.Result, rep gen.Report) E17Wave {
	wave := E17Wave{
		Index:      idx,
		Seed:       gcfg.Seed,
		Profile:    profile,
		Rooms:      plan.Rooms,
		Students:   plan.Students,
		Messages:   res.Sent,
		Supervised: res.Supervised,
		Failovers:  len(res.Failovers),
		Races:      len(res.LeaseRaces),
		Faults: E17Faults{
			ShipCuts:    plan.ShipCuts,
			ShipHeals:   plan.ShipHeals,
			PromoCrash:  plan.PromotionCrashes,
			LaggedKills: plan.LaggedKills,
			SkewRaces:   plan.SkewRaces,
			NodeKills:   plan.NodeKills,
			Partitions:  plan.Partitions,
		},
		Checked:    rep.Checked,
		Violations: rep.Violations,
	}
	for _, fo := range res.Failovers {
		if fo.Lossy {
			wave.Faults.LossyPromotions++
		}
		wave.Faults.Resumes += fo.Resumes
	}
	for _, lr := range res.LeaseRaces {
		if lr.Seized {
			wave.Faults.Seizures++
		} else {
			wave.Faults.Refusals++
		}
	}
	return wave
}

// runE17Wave generates, replays and audits one adversarial population,
// returning the transcript alongside the summary so the drill can
// compare replays byte for byte.
func runE17Wave(idx int, profile string, gcfg gen.Config) (E17Wave, []byte, error) {
	sc, plan, err := gen.Generate(gcfg)
	if err != nil {
		return E17Wave{}, nil, fmt.Errorf("generate: %w", err)
	}
	dir, err := os.MkdirTemp("", "e17-wave-*")
	if err != nil {
		return E17Wave{}, nil, fmt.Errorf("data dir: %w", err)
	}
	defer os.RemoveAll(dir)
	res, err := simulate.Run(sc, dir)
	if err != nil {
		return E17Wave{}, nil, fmt.Errorf("run %s: %w", sc.Name, err)
	}
	rep := gen.Check(sc, res)
	return e17Summarize(idx, profile, gcfg, plan, res, rep), res.Transcript, nil
}

// runE17Drill runs ONE population carrying all four adversarial
// classes, twice, and requires the replay's JSON aggregates (every
// count, watermark, race outcome and invariant verdict) byte-identical.
// Chaos this nasty must not cost determinism — that is the whole point
// of the virtual-clock fabric. Raw transcript bytes are NOT compared:
// reconnect-window join-notice interleaving is scheduling-dependent
// (same reason E16 scores the window by count, never by content).
func runE17Drill(cfg E17Config, out *E17Result) error {
	gcfg := gen.Config{
		Seed:         cfg.Seed,
		Rooms:        4,
		Arrival:      gen.ArrivalBursty,
		DropFraction: 0.4,
		ClusterNodes: cfg.Nodes,
		NodeKills:    2, PromotionCrashes: 1, LaggedKills: 1,
		ShipCuts: 1, SkewRaces: 2,
	}
	one, _, err := runE17Wave(0, "all-classes", gcfg)
	if err != nil {
		return fmt.Errorf("E17 drill: %w", err)
	}
	two, _, err := runE17Wave(0, "all-classes", gcfg)
	if err != nil {
		return fmt.Errorf("E17 drill replay: %w", err)
	}
	j1, err := json.Marshal(one)
	if err != nil {
		return err
	}
	j2, err := json.Marshal(two)
	if err != nil {
		return err
	}
	out.Drill = E17Drill{
		Seed:       gcfg.Seed,
		Messages:   one.Messages,
		Supervised: one.Supervised,
		Failovers:  one.Failovers,
		Races:      one.Races,
		Faults:     one.Faults,
		Checked:    one.Checked,
		Violations: one.Violations,
		Identical:  bytes.Equal(j1, j2),
	}
	return nil
}

func runE17Sweep(cfg E17Config, out *E17Result) error {
	waves := (cfg.Rooms + cfg.RoomsPerWave - 1) / cfg.RoomsPerWave
	if waves < len(e17Profiles) {
		waves = len(e17Profiles)
	}
	if waves > cfg.Rooms {
		waves = cfg.Rooms
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > waves {
		parallel = waves
	}
	out.Waves = waves
	out.WaveResults = make([]E17Wave, waves)

	type waveErr struct {
		idx int
		err error
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Mutex
		firstE  *waveErr
	)
	sem := make(chan struct{}, parallel)
	base, rem := cfg.Rooms/waves, cfg.Rooms%waves
	for i := 0; i < waves; i++ {
		rooms := base
		if i < rem {
			rooms++
		}
		profile := e17Profiles[i%len(e17Profiles)]
		gcfg := gen.Config{
			Seed:         int64(splitmix64(uint64(cfg.Seed)+0xE17+uint64(i)*0x9E3779B97F4A7C15) &^ (1 << 63)),
			Rooms:        rooms,
			ClusterNodes: cfg.Nodes,
		}
		profile.cfg(&gcfg)

		wg.Add(1)
		sem <- struct{}{}
		go func(i int, gcfg gen.Config, profile string) {
			defer wg.Done()
			defer func() { <-sem }()
			wave, _, err := runE17Wave(i, profile, gcfg)
			if err != nil {
				errOnce.Lock()
				if firstE == nil {
					firstE = &waveErr{i, err}
				}
				errOnce.Unlock()
				return
			}
			out.WaveResults[i] = wave
		}(i, gcfg, profile.name)
	}
	wg.Wait()
	if firstE != nil {
		return fmt.Errorf("E17 wave %d: %w", firstE.idx, firstE.err)
	}

	for _, w := range out.WaveResults {
		out.Rooms += w.Rooms
		out.Students += w.Students
		out.Messages += w.Messages
		out.Supervised += w.Supervised
		out.Failovers += w.Failovers
		out.Races += w.Races
		out.Faults.ShipCuts += w.Faults.ShipCuts
		out.Faults.ShipHeals += w.Faults.ShipHeals
		out.Faults.PromoCrash += w.Faults.PromoCrash
		out.Faults.LaggedKills += w.Faults.LaggedKills
		out.Faults.SkewRaces += w.Faults.SkewRaces
		out.Faults.NodeKills += w.Faults.NodeKills
		out.Faults.Partitions += w.Faults.Partitions
		out.Faults.Seizures += w.Faults.Seizures
		out.Faults.Refusals += w.Faults.Refusals
		out.Faults.LossyPromotions += w.Faults.LossyPromotions
		out.Faults.Resumes += w.Faults.Resumes
		for _, name := range w.Checked {
			out.InvariantChecks[name]++
		}
		for _, v := range w.Violations {
			out.Violations = append(out.Violations, E14Violation{
				Wave: w.Index, Seed: w.Seed, Invariant: v.Invariant, Detail: v.Detail,
			})
		}
	}
	sort.Slice(out.Violations, func(i, j int) bool {
		a, b := out.Violations[i], out.Violations[j]
		if a.Wave != b.Wave {
			return a.Wave < b.Wave
		}
		return a.Invariant < b.Invariant
	})
	return nil
}
