// Package eval implements the evaluation harness of DESIGN.md §4: one
// runner per experiment E1–E8, each regenerating the measurements the
// paper's figures imply, plus the shared metric types.
package eval

import (
	"fmt"
	"time"

	"semagent/internal/quantile"
)

// Confusion is a binary confusion matrix; by convention "positive"
// means "error detected/present".
type Confusion struct {
	TP, FP, TN, FN int
}

// Add merges another matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Observe records one (predicted, actual) pair.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Total is the number of observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision = TP / (TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall = TP / (TP+FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy = (TP+TN) / total.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// String renders the headline numbers.
func (c Confusion) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f Acc=%.3f (TP=%d FP=%d TN=%d FN=%d)",
		c.Precision(), c.Recall(), c.F1(), c.Accuracy(), c.TP, c.FP, c.TN, c.FN)
}

// Latencies collects durations and reports quantiles.
type Latencies struct {
	samples []time.Duration
}

// Record adds one sample.
func (l *Latencies) Record(d time.Duration) { l.samples = append(l.samples, d) }

// Len is the number of samples.
func (l *Latencies) Len() int { return len(l.samples) }

// Quantile returns the q-quantile (0 <= q <= 1).
func (l *Latencies) Quantile(q float64) time.Duration {
	return quantile.Duration(l.samples, q)
}

// Mean returns the average.
func (l *Latencies) Mean() time.Duration {
	return quantile.Mean(l.samples)
}
