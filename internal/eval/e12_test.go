package eval

import (
	"encoding/json"
	"testing"
	"time"
)

// TestRunE12Smoke runs a scaled-down E12 and checks the structural
// invariants: capacity measured, one arm per multiplier plus the
// blocking contrast, shed accounting consistent, latency quantiles
// populated, and the result round-trips through JSON (the CI artifact
// path). Absolute performance bars live in DESIGN.md §E12, recorded on
// dedicated hardware — CI machines are too noisy to gate on them here.
func TestRunE12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("E12 drives real TCP load; skipped in -short")
	}
	res, err := RunE12(E12Config{
		Rooms: 2, ClientsPerRoom: 2,
		Duration:            400 * time.Millisecond,
		Seed:                12,
		Multipliers:         []float64{1, 3},
		CalibrationMessages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityMsgsPerSec <= 0 {
		t.Fatalf("capacity = %v, want > 0", res.CapacityMsgsPerSec)
	}
	if len(res.Arms) != 3 { // 2 shed arms + 1 blocking contrast
		t.Fatalf("arms = %d, want 3", len(res.Arms))
	}
	for _, arm := range res.Arms {
		if arm.SentRate <= 0 {
			t.Errorf("%s: nothing sent", arm.Name)
		}
		if arm.P99 <= 0 {
			t.Errorf("%s: p99 not recorded", arm.Name)
		}
		if arm.Shedding {
			st := arm.Pipeline
			if st.Shed != st.ShedNew+st.ShedOldest {
				t.Errorf("%s: shed %d != new %d + oldest %d", arm.Name, st.Shed, st.ShedNew, st.ShedOldest)
			}
			if st.Blocked != 0 {
				t.Errorf("%s: %d blocked submits under admission control", arm.Name, st.Blocked)
			}
		}
	}
	// The overloaded shed arm must actually shed, and its tail must stay
	// interactive while the blocking contrast arm's grows with its
	// backlog — the D10 claim, at smoke scale.
	over := res.Arms[1]
	if over.ShedCount == 0 {
		t.Errorf("%s at %gx capacity shed nothing", over.Name, over.Multiplier)
	}
	if !res.BoundedP99 {
		t.Errorf("p99 at max shed load = %v, want < %v", res.P99AtMaxShed, BoundedP99Limit)
	}
	if res.P99AtMaxBlocking <= res.P99AtMaxShed {
		t.Errorf("blocking p99 %v <= shedding p99 %v — contrast arm shows no backlog",
			res.P99AtMaxBlocking, res.P99AtMaxShed)
	}
	// JSON round-trip: the CI artifact path.
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back E12Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.CapacityMsgsPerSec != res.CapacityMsgsPerSec || len(back.Arms) != len(res.Arms) {
		t.Error("JSON round-trip lost data")
	}
}
