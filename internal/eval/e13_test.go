package eval

import (
	"encoding/json"
	"testing"
)

func TestE13MatrixScoresEveryPersona(t *testing.T) {
	res, err := RunE13(E13Config{Rooms: 2, Turns: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 || res.Supervised == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.Messages != res.Supervised {
		t.Errorf("matrix must keep full coverage: sent %d, supervised %d", res.Messages, res.Supervised)
	}
	byPersona := make(map[string]E13PersonaRow, len(res.Rows))
	for _, row := range res.Rows {
		byPersona[row.Persona] = row
	}
	for _, p := range []string{"contributor", "drifter", "abusive", "questioner", "spammer", "lurker", "late-joiner"} {
		if _, ok := byPersona[p]; !ok {
			t.Errorf("persona %s missing from E13 rows", p)
		}
	}
	if row := byPersona["abusive"]; row.Recall == 0 {
		t.Errorf("abusive recall = 0: %+v", row)
	}
	if row := byPersona["questioner"]; row.Questions == 0 {
		t.Errorf("questioner asked nothing: %+v", row)
	}
	if res.MicroRecall == 0 {
		t.Error("micro recall = 0")
	}

	// The result must be JSON-encodable (the -json trajectory artifact).
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestE13Deterministic(t *testing.T) {
	a, err := RunE13(E13Config{Rooms: 2, Turns: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE13(E13Config{Rooms: 2, Turns: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same-seed E13 runs differ:\n%s\n%s", aj, bj)
	}
}
