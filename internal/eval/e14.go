package eval

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"semagent/internal/simulate"
	"semagent/internal/simulate/gen"
)

// E14Config parameterizes the population-scale chaos sweep: the
// property-based scenario generator (internal/simulate/gen, DESIGN.md
// D12) draws whole classroom populations plus fault schedules from one
// seed, replays them through the full supervision stack on the virtual
// clock, and audits every run against the chaos invariants instead of
// golden transcripts.
type E14Config struct {
	// Rooms is the total classroom population, split across waves
	// (default 1000).
	Rooms int `json:"rooms"`
	// Seed is the master seed; every wave seed derives from it, so the
	// whole sweep reproduces from this one number.
	Seed int64 `json:"seed"`
	// RoomsPerWave bounds one simulated server's room count (default
	// 50; the wave count is also floored at 4 so every chaos profile —
	// drops, storms, crashes — appears in every sweep).
	RoomsPerWave int `json:"rooms_per_wave"`

	// Parallel bounds concurrently running waves (default GOMAXPROCS).
	// Excluded from the JSON artifact: parallelism cannot change the
	// results, only the wall clock.
	Parallel int `json:"-"`
}

// E14Faults aggregates the fault injections the sweep explored.
type E14Faults struct {
	Drops           int `json:"drops"`
	TornDrops       int `json:"torn_drops"`
	Storms          int `json:"storms"`
	Crashes         int `json:"crashes"`
	ReplayedRecords int `json:"replayed_records"`
}

// E14Wave reports one generated population: its chaos profile, scale,
// outcome counters and invariant audit.
type E14Wave struct {
	Index      int             `json:"index"`
	Seed       int64           `json:"seed"`
	Profile    string          `json:"profile"`
	Rooms      int             `json:"rooms"`
	Students   int             `json:"students"`
	Messages   int             `json:"messages"`
	Supervised int             `json:"supervised"`
	Shed       int             `json:"shed"`
	Faults     E14Faults       `json:"faults"`
	Checked    []string        `json:"checked"`
	Violations []gen.Violation `json:"violations,omitempty"`
}

// E14Violation is one invariant breach with its reproducing wave seed.
type E14Violation struct {
	Wave      int    `json:"wave"`
	Seed      int64  `json:"seed"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// E14Result is the machine-readable sweep outcome (evalharness -exp
// E14 -json; the chaos-soak artifact in CI). It carries no wall-clock
// fields: the same config must reproduce the same bytes.
type E14Result struct {
	Config E14Config `json:"config"`

	Waves      int `json:"waves"`
	Rooms      int `json:"rooms"`
	Students   int `json:"students"`
	Messages   int `json:"messages"`
	Supervised int `json:"supervised"`
	Shed       int `json:"shed"`

	Faults E14Faults `json:"faults"`
	// InvariantChecks counts, per invariant, the waves it was audited
	// in (durability requires a crash wave, shed-exact a pipeline).
	InvariantChecks map[string]int `json:"invariant_checks"`

	WaveResults []E14Wave      `json:"wave_results"`
	Violations  []E14Violation `json:"violations"`
}

// Failed returns an error when any invariant was violated, carrying
// the first reproducing wave seed — the CI soak job surfaces it.
func (r *E14Result) Failed() error {
	if len(r.Violations) == 0 {
		return nil
	}
	v := r.Violations[0]
	return fmt.Errorf("E14: %d invariant violation(s); first: wave %d (seed %d) violated %s: %s — reproduce with: evalharness -exp E14 -json -seed %d -rooms %d",
		len(r.Violations), v.Wave, v.Seed, v.Invariant, v.Detail, r.Config.Seed, r.Config.Rooms)
}

// splitmix64 is the wave-seed derivation: a well-mixed 64-bit permuted
// stream so neighbouring master seeds explore unrelated populations.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// waveProfiles rotate over the wave index so every sweep of >= 4 waves
// exercises every fault class — and therefore every invariant.
var waveProfiles = []struct {
	name string
	cfg  func(c *gen.Config)
}{
	{"uniform-drops", func(c *gen.Config) {
		c.Arrival = gen.ArrivalUniform
		c.DropFraction, c.TornFraction = 0.5, 0.5
	}},
	{"poisson-drops-storms", func(c *gen.Config) {
		c.Arrival = gen.ArrivalPoisson
		c.DropFraction, c.TornFraction = 0.4, 0.5
		c.StormFraction = 0.5
	}},
	{"bursty-storms", func(c *gen.Config) {
		c.Arrival = gen.ArrivalBursty
		c.StormFraction = 0.75
	}},
	{"poisson-crash", func(c *gen.Config) {
		c.Arrival = gen.ArrivalPoisson
		c.DropFraction, c.TornFraction = 0.3, 0.5
		c.Crashes = 1
	}},
}

// RunE14 sweeps a generated population of cfg.Rooms classrooms split
// into chaos-profiled waves, replays every wave through the full stack
// (waves run concurrently; each wave is internally deterministic and
// results aggregate in wave order, so the outcome is parallelism-
// independent), and audits each against the chaos invariants.
func RunE14(cfg E14Config) (*E14Result, error) {
	if cfg.Rooms <= 0 {
		cfg.Rooms = 1000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.RoomsPerWave <= 0 {
		cfg.RoomsPerWave = 50
	}
	waves := (cfg.Rooms + cfg.RoomsPerWave - 1) / cfg.RoomsPerWave
	if waves < 4 {
		waves = 4
	}
	if waves > cfg.Rooms {
		waves = cfg.Rooms
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > waves {
		parallel = waves
	}

	out := &E14Result{
		Config:          cfg,
		Waves:           waves,
		InvariantChecks: make(map[string]int),
		WaveResults:     make([]E14Wave, waves),
		Violations:      []E14Violation{},
	}

	type waveErr struct {
		idx int
		err error
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Mutex
		firstE  *waveErr
	)
	sem := make(chan struct{}, parallel)
	base, rem := cfg.Rooms/waves, cfg.Rooms%waves
	for i := 0; i < waves; i++ {
		rooms := base
		if i < rem {
			rooms++
		}
		profile := waveProfiles[i%len(waveProfiles)]
		gcfg := gen.Config{
			Seed:  int64(splitmix64(uint64(cfg.Seed)+uint64(i)*0x9E3779B97F4A7C15) &^ (1 << 63)),
			Rooms: rooms,
		}
		profile.cfg(&gcfg)

		wg.Add(1)
		sem <- struct{}{}
		go func(i int, gcfg gen.Config, profile string) {
			defer wg.Done()
			defer func() { <-sem }()
			wave, err := runWave(i, profile, gcfg)
			if err != nil {
				errOnce.Lock()
				if firstE == nil {
					firstE = &waveErr{i, err}
				}
				errOnce.Unlock()
				return
			}
			out.WaveResults[i] = wave
		}(i, gcfg, profile.name)
	}
	wg.Wait()
	if firstE != nil {
		return nil, fmt.Errorf("E14 wave %d: %w", firstE.idx, firstE.err)
	}

	// Aggregate in wave order: the artifact is byte-identical however
	// the waves were scheduled.
	for _, w := range out.WaveResults {
		out.Rooms += w.Rooms
		out.Students += w.Students
		out.Messages += w.Messages
		out.Supervised += w.Supervised
		out.Shed += w.Shed
		out.Faults.Drops += w.Faults.Drops
		out.Faults.TornDrops += w.Faults.TornDrops
		out.Faults.Storms += w.Faults.Storms
		out.Faults.Crashes += w.Faults.Crashes
		out.Faults.ReplayedRecords += w.Faults.ReplayedRecords
		for _, name := range w.Checked {
			out.InvariantChecks[name]++
		}
		for _, v := range w.Violations {
			out.Violations = append(out.Violations, E14Violation{
				Wave: w.Index, Seed: w.Seed, Invariant: v.Invariant, Detail: v.Detail,
			})
		}
	}
	sort.Slice(out.Violations, func(i, j int) bool {
		a, b := out.Violations[i], out.Violations[j]
		if a.Wave != b.Wave {
			return a.Wave < b.Wave
		}
		return a.Invariant < b.Invariant
	})
	return out, nil
}

// runWave generates, replays and audits one population.
func runWave(idx int, profile string, gcfg gen.Config) (E14Wave, error) {
	sc, plan, err := gen.Generate(gcfg)
	if err != nil {
		return E14Wave{}, fmt.Errorf("generate: %w", err)
	}
	dir := ""
	if sc.Journal {
		dir, err = os.MkdirTemp("", "e14-wave-*")
		if err != nil {
			return E14Wave{}, fmt.Errorf("journal dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	res, err := simulate.Run(sc, dir)
	if err != nil {
		return E14Wave{}, fmt.Errorf("run %s: %w", sc.Name, err)
	}
	rep := gen.Check(sc, res)
	wave := E14Wave{
		Index:      idx,
		Seed:       gcfg.Seed,
		Profile:    profile,
		Rooms:      plan.Rooms,
		Students:   plan.Students,
		Messages:   res.Sent,
		Supervised: res.Supervised,
		Shed:       res.Unsupervised,
		Faults: E14Faults{
			Drops:     plan.Drops,
			TornDrops: plan.TornDrops,
			Storms:    plan.Storms,
			Crashes:   plan.Crashes,
		},
		Checked:    rep.Checked,
		Violations: rep.Violations,
	}
	for _, rec := range res.Recoveries {
		wave.Faults.ReplayedRecords += rec.ReplayedRecords
	}
	return wave, nil
}
