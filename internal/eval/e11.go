package eval

import (
	"fmt"
	"os"
	"time"

	"semagent/internal/core"
	"semagent/internal/journal"
	"semagent/internal/pipeline"
)

// E11Config sizes experiment E11 (DESIGN.md D9/§4): the E9 sharded-
// cached workload with the write-ahead journal off, in batched
// group-commit mode, and in fsync-per-record mode — the price of
// durable learning.
type E11Config struct {
	// Rooms is the number of concurrent classrooms (default 8).
	Rooms int `json:"rooms"`
	// MessagesPerRoom is the dialogue length per room (default 64).
	MessagesPerRoom int `json:"messages_per_room"`
	// Workers sizes the pipeline pool (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// Seed drives the workload generator.
	Seed int64 `json:"seed"`
	// Dir is the base directory for per-arm journal dirs (default: the
	// OS temp dir). Each arm gets a fresh directory, removed afterwards.
	Dir string `json:"-"`
}

// E11Arm is one measured journaling configuration.
type E11Arm struct {
	Name       string
	Messages   int
	Elapsed    time.Duration
	Throughput float64 // messages per second
	// OverheadPct is the throughput cost vs the no-journal arm.
	OverheadPct float64
	// Journal counters (zero for the no-journal arm).
	Records     uint64
	Fsyncs      uint64
	Checkpoints uint64
	// RecoveredRecords is the number of WAL records replayed by a fresh
	// recovery after a simulated crash (no final checkpoint) — the
	// proof that the journaled arms actually made the session durable.
	RecoveredRecords int
	// RecoveredCorpus is the corpus size after that recovery.
	RecoveredCorpus int
}

// E11Result holds the three arms plus the headline overheads.
type E11Result struct {
	Config E11Config
	Arms   []E11Arm
	// GroupOverheadPct is the batched group-commit cost vs no journal.
	GroupOverheadPct float64
	// SyncOverheadPct is the fsync-per-record cost vs no journal.
	SyncOverheadPct float64
}

// RunE11 pushes the E9 room-interleaved stream through the sharded-
// cached supervision pipeline three times: journal off, group-commit
// journaling, fsync-per-record journaling. The journaled arms end with
// a simulated crash (no shutdown checkpoint) followed by a recovery
// into fresh stores, verifying that the corpus survived in full.
func RunE11(cfg E11Config) (*E11Result, error) {
	if cfg.Rooms <= 0 {
		cfg.Rooms = 8
	}
	if cfg.MessagesPerRoom <= 0 {
		cfg.MessagesPerRoom = 64
	}
	msgs := E9Workload(E9Config{Rooms: cfg.Rooms, MessagesPerRoom: cfg.MessagesPerRoom, Seed: cfg.Seed})
	res := &E11Result{Config: cfg}

	for _, mode := range []string{"no-journal", "group-commit", "fsync-per-record"} {
		arm, err := runE11Arm(mode, cfg, msgs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode, err)
		}
		res.Arms = append(res.Arms, *arm)
	}

	base := res.Arms[0].Throughput
	if base > 0 {
		for i := range res.Arms[1:] {
			res.Arms[i+1].OverheadPct = 100 * (1 - res.Arms[i+1].Throughput/base)
		}
		res.GroupOverheadPct = res.Arms[1].OverheadPct
		res.SyncOverheadPct = res.Arms[2].OverheadPct
	}
	return res, nil
}

func runE11Arm(mode string, cfg E11Config, msgs []E9Message) (*E11Arm, error) {
	arm := &E11Arm{Name: mode, Messages: len(msgs)}

	var mgr *journal.Manager
	var dir string
	stores := journal.Stores{}
	coreCfg := core.Config{}
	if mode != "no-journal" {
		var err error
		dir, err = os.MkdirTemp(cfg.Dir, "e11-"+mode+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		stores, err = journal.LoadStores(dir)
		if err != nil {
			return nil, err
		}
		mgr, err = journal.Open(dir, stores, journal.Options{
			SyncEveryRecord: mode == "fsync-per-record",
		})
		if err != nil {
			return nil, err
		}
		coreCfg.Ontology = stores.Ontology
		coreCfg.Corpus = stores.Corpus
		coreCfg.Profiles = stores.Profiles
		coreCfg.FAQ = stores.FAQ
	}
	sup, err := core.New(coreCfg)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	pipe := pipeline.New(pipeline.Config{Workers: cfg.Workers, Block: true})
	errCh := make(chan error, 1)
	for _, m := range msgs {
		m := m
		if err := pipe.Submit(m.Room, func() {
			if _, perr := sup.Process(m.Room, m.User, m.Text); perr != nil {
				select {
				case errCh <- perr:
				default:
				}
			}
		}); err != nil {
			pipe.Close()
			return nil, err
		}
	}
	pipe.Close()
	select {
	case perr := <-errCh:
		return nil, perr
	default:
	}
	arm.Elapsed = time.Since(start)
	if arm.Elapsed > 0 {
		arm.Throughput = float64(arm.Messages) / arm.Elapsed.Seconds()
	}

	if mgr != nil {
		// Simulated crash: fsync what the group commit has buffered,
		// then abandon the manager without Close (no final checkpoint),
		// exactly like a SIGKILL after the last commit window.
		if err := mgr.Sync(); err != nil {
			return nil, err
		}
		st := mgr.Stats()
		arm.Records = st.Records
		arm.Fsyncs = st.Fsyncs
		arm.Checkpoints = st.Checkpoints
		mgr.Abandon()

		recovered, err := journal.LoadStores(dir)
		if err != nil {
			return nil, fmt.Errorf("recovery load: %w", err)
		}
		m2, err := journal.Open(dir, recovered, journal.Options{})
		if err != nil {
			return nil, fmt.Errorf("recovery open: %w", err)
		}
		arm.RecoveredRecords = m2.Stats().Replay.Applied
		arm.RecoveredCorpus = recovered.Corpus.Len()
		if err := m2.Close(); err != nil {
			return nil, err
		}
		if arm.RecoveredCorpus != sup.Corpus().Len() {
			return nil, fmt.Errorf("recovery lost records: corpus %d, want %d",
				arm.RecoveredCorpus, sup.Corpus().Len())
		}
	}
	return arm, nil
}
