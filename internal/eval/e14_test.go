package eval

import (
	"encoding/json"
	"testing"

	"semagent/internal/simulate/gen"
)

// TestE14SmallSweep: a bounded sweep must cover every chaos profile,
// audit every invariant class, and hold them all at HEAD.
func TestE14SmallSweep(t *testing.T) {
	res, err := RunE14(E14Config{Rooms: 12, Seed: 3})
	if err != nil {
		t.Fatalf("RunE14: %v", err)
	}
	if res.Waves < 4 {
		t.Fatalf("swept %d waves, want >= 4 (one per chaos profile)", res.Waves)
	}
	if res.Rooms != 12 {
		t.Fatalf("swept %d rooms, want 12", res.Rooms)
	}
	if res.Messages == 0 || res.Students == 0 {
		t.Fatalf("empty sweep: %+v", res)
	}
	if res.Faults.Drops == 0 || res.Faults.Storms == 0 || res.Faults.Crashes == 0 {
		t.Fatalf("profile rotation missed a fault class: %+v", res.Faults)
	}
	for _, name := range gen.InvariantNames() {
		if gen.ClusterOnly(name) {
			// Only clustered scenarios can audit failover, shipping,
			// promotion, and lease invariants; E14's sweep is single-node
			// by design — E16/E17's sweeps own those.
			continue
		}
		if res.InvariantChecks[name] == 0 {
			t.Errorf("invariant %s was never audited: %v", name, res.InvariantChecks)
		}
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations at HEAD: %+v", res.Violations)
	}
	if err := res.Failed(); err != nil {
		t.Fatalf("Failed() = %v on a clean sweep", err)
	}
}

// TestE14Reproducible: the same config yields a byte-identical JSON
// artifact however the waves were scheduled — the reproducing-seed
// contract the CI soak job prints on failure.
func TestE14Reproducible(t *testing.T) {
	run := func(parallel int) []byte {
		res, err := RunE14(E14Config{Rooms: 8, Seed: 5, Parallel: parallel})
		if err != nil {
			t.Fatalf("RunE14: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	serial, parallel := run(1), run(4)
	if string(serial) != string(parallel) {
		t.Fatalf("sweep result depends on scheduling:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// TestE14FailedReportsSeed: a violated sweep must fail with the
// reproducing seed in the message.
func TestE14FailedReportsSeed(t *testing.T) {
	res := &E14Result{
		Config: E14Config{Rooms: 40, Seed: 17},
		Violations: []E14Violation{
			{Wave: 3, Seed: 99, Invariant: gen.InvFIFO, Detail: "x"},
		},
	}
	err := res.Failed()
	if err == nil {
		t.Fatalf("Failed() = nil with violations present")
	}
	for _, want := range []string{"seed 99", "-seed 17", "-rooms 40", gen.InvFIFO} {
		if !contains(err.Error(), want) {
			t.Errorf("Failed() = %q, missing %q", err, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
