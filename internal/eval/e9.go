package eval

import (
	"fmt"
	"time"

	"semagent/internal/core"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
	"semagent/internal/pipeline"
	"semagent/internal/workload"
)

// E9Config sizes experiment E9 (DESIGN.md §4): concurrent classrooms
// through the sharded supervision pipeline, cached vs uncached parses,
// against the single-threaded Process loop as baseline.
type E9Config struct {
	// Rooms is the number of concurrent classrooms (default 8).
	Rooms int
	// MessagesPerRoom is the dialogue length per room (default 64).
	MessagesPerRoom int
	// Workers sizes the pipeline pool (0 = GOMAXPROCS).
	Workers int
	// Seed drives the workload generator.
	Seed int64
}

// E9Arm is one measured configuration.
type E9Arm struct {
	Name       string
	Sharded    bool
	Cached     bool
	Messages   int
	Elapsed    time.Duration
	Throughput float64 // messages per second
	// Cache reports the parse-cache counters for the cached arms.
	Cache linkgrammar.CacheStats
	// Pipeline reports the pool counters for the sharded arms.
	Pipeline pipeline.Stats
}

// E9Result holds the four arms plus headline speedups over the serial
// uncached baseline.
type E9Result struct {
	Config E9Config
	Arms   []E9Arm
	// SpeedupSharded is sharded-uncached vs serial-uncached: pure
	// parallelism win.
	SpeedupSharded float64
	// SpeedupCached is sharded-cached vs serial-uncached: the deployed
	// configuration's total win.
	SpeedupCached float64
}

// E9Message is one chat line of the E9 workload.
type E9Message struct {
	Room, User, Text string
}

// RunE9 generates Rooms independent classroom dialogues, interleaves
// them round-robin (simulating concurrent arrival), and pushes the
// stream through four supervision configurations. Every arm gets a
// fresh Supervisor so stores and caches start cold.
func RunE9(cfg E9Config) (*E9Result, error) {
	if cfg.Rooms <= 0 {
		cfg.Rooms = 8
	}
	if cfg.MessagesPerRoom <= 0 {
		cfg.MessagesPerRoom = 64
	}

	msgs := E9Workload(cfg)
	res := &E9Result{Config: cfg}
	for _, arm := range []struct {
		name            string
		sharded, cached bool
	}{
		{"serial-uncached", false, false},
		{"serial-cached", false, true},
		{"sharded-uncached", true, false},
		{"sharded-cached", true, true},
	} {
		a, err := runE9Arm(arm.name, arm.sharded, arm.cached, cfg, msgs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arm.name, err)
		}
		res.Arms = append(res.Arms, *a)
	}

	base := res.Arms[0].Throughput
	if base > 0 {
		res.SpeedupSharded = res.Arms[2].Throughput / base
		res.SpeedupCached = res.Arms[3].Throughput / base
	}
	return res, nil
}

// E9Workload builds the round-robin interleaved message stream: Rooms
// independent seeded dialogues, one message per room per turn (also
// consumed by BenchmarkE9ShardedSupervision, so benchmark and harness
// measure the same experiment). Zero config fields get RunE9 defaults.
func E9Workload(cfg E9Config) []E9Message {
	if cfg.Rooms <= 0 {
		cfg.Rooms = 8
	}
	if cfg.MessagesPerRoom <= 0 {
		cfg.MessagesPerRoom = 64
	}
	onto := ontology.BuildCourseOntology()
	perRoom := make([][]E9Message, cfg.Rooms)
	for r := range perRoom {
		gen := workload.NewGenerator(cfg.Seed+int64(r), onto)
		room := fmt.Sprintf("room-%d", r)
		for m, s := range gen.Generate(cfg.MessagesPerRoom, workload.DefaultMix()) {
			perRoom[r] = append(perRoom[r], E9Message{
				Room: room,
				User: fmt.Sprintf("user-%d-%d", r, m%4),
				Text: s.Text,
			})
		}
	}
	msgs := make([]E9Message, 0, cfg.Rooms*cfg.MessagesPerRoom)
	for m := 0; m < cfg.MessagesPerRoom; m++ {
		for r := 0; r < cfg.Rooms; r++ {
			msgs = append(msgs, perRoom[r][m])
		}
	}
	return msgs
}

func runE9Arm(name string, sharded, cached bool, cfg E9Config, msgs []E9Message) (*E9Arm, error) {
	popts := linkgrammar.Options{CacheSize: -1}
	if cached {
		popts.CacheSize = 0 // core default: DefaultParseCacheSize
	}
	sup, err := core.New(core.Config{ParserOptions: popts})
	if err != nil {
		return nil, err
	}

	arm := &E9Arm{Name: name, Sharded: sharded, Cached: cached, Messages: len(msgs)}
	start := time.Now()
	if sharded {
		pipe := pipeline.New(pipeline.Config{Workers: cfg.Workers, Block: true})
		errCh := make(chan error, 1)
		for _, m := range msgs {
			m := m
			if err := pipe.Submit(m.Room, func() {
				if _, perr := sup.Process(m.Room, m.User, m.Text); perr != nil {
					select {
					case errCh <- perr:
					default:
					}
				}
			}); err != nil {
				pipe.Close()
				return nil, err
			}
		}
		pipe.Close()
		select {
		case perr := <-errCh:
			return nil, perr
		default:
		}
		arm.Pipeline = pipe.Stats()
	} else {
		for _, m := range msgs {
			if _, err := sup.Process(m.Room, m.User, m.Text); err != nil {
				return nil, err
			}
		}
	}
	arm.Elapsed = time.Since(start)
	if arm.Elapsed > 0 {
		arm.Throughput = float64(arm.Messages) / arm.Elapsed.Seconds()
	}
	arm.Cache = sup.Parser().CacheStats()
	return arm, nil
}
