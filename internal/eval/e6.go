package eval

import (
	"fmt"
	"sync"
	"time"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/ontology"
	"semagent/internal/workload"
)

// E6Mode selects the supervision arm of experiment E6 (Figure 3 /
// design decision D5).
type E6Mode int8

// Supervision arms.
const (
	E6Off    E6Mode = iota + 1 // no supervisor attached
	E6Inline                   // supervisor runs before the broadcast returns
	E6Async                    // supervisor runs in a sidecar goroutine
)

// String names the mode.
func (m E6Mode) String() string {
	switch m {
	case E6Off:
		return "off"
	case E6Inline:
		return "inline"
	case E6Async:
		return "async"
	default:
		return "unknown"
	}
}

// E6Config sizes the end-to-end chat experiment.
type E6Config struct {
	Rooms          int
	ClientsPerRoom int
	MessagesEach   int
	Mode           E6Mode
	Seed           int64
}

// E6Result reports end-to-end throughput and echo latency over TCP
// loopback.
type E6Result struct {
	Config     E6Config
	Messages   int
	Elapsed    time.Duration
	Throughput float64 // messages per second
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Mean       time.Duration
}

// RunE6 runs one arm of the chat experiment: real TCP server, scripted
// clients, latency measured from Say to receiving one's own broadcast.
func RunE6(cfg E6Config) (*E6Result, error) {
	if cfg.Rooms <= 0 {
		cfg.Rooms = 2
	}
	if cfg.ClientsPerRoom <= 0 {
		cfg.ClientsPerRoom = 4
	}
	if cfg.MessagesEach <= 0 {
		cfg.MessagesEach = 10
	}

	opts := chat.ServerOptions{}
	if cfg.Mode != E6Off {
		sup, err := core.New(core.Config{})
		if err != nil {
			return nil, err
		}
		opts.Supervisor = sup.ChatSupervisor()
		opts.Async = cfg.Mode == E6Async
	}
	server := chat.NewServer(opts)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer server.Close()

	// Pre-generate each client's sentences.
	gen := workload.NewGenerator(cfg.Seed, ontology.BuildCourseOntology())
	type clientScript struct {
		room, user string
		lines      []string
	}
	var scripts []clientScript
	for r := 0; r < cfg.Rooms; r++ {
		for c := 0; c < cfg.ClientsPerRoom; c++ {
			cs := clientScript{
				room: fmt.Sprintf("room-%d", r),
				user: fmt.Sprintf("user-%d-%d", r, c),
			}
			for m := 0; m < cfg.MessagesEach; m++ {
				s := gen.Generate(1, workload.DefaultMix())[0]
				// Unique prefix so each client recognizes its own echo.
				cs.lines = append(cs.lines, fmt.Sprintf("%s-%d %s", cs.user, m, s.Text))
			}
			scripts = append(scripts, cs)
		}
	}

	var (
		mu  sync.Mutex
		lat Latencies
	)
	var wg sync.WaitGroup
	start := time.Now()
	errCh := make(chan error, len(scripts))
	for _, cs := range scripts {
		wg.Add(1)
		go func(cs clientScript) {
			defer wg.Done()
			cl, err := chat.Dial(addr.String(), cs.room, cs.user, 5*time.Second)
			if err != nil {
				errCh <- fmt.Errorf("%s dial: %w", cs.user, err)
				return
			}
			defer cl.Close()
			for _, line := range cs.lines {
				sent := time.Now()
				if err := cl.Say(line); err != nil {
					errCh <- fmt.Errorf("%s say: %w", cs.user, err)
					return
				}
				// Wait for own echo.
				deadline := time.After(10 * time.Second)
				for {
					var m chat.Message
					var ok bool
					select {
					case m, ok = <-cl.Receive():
						if !ok {
							errCh <- fmt.Errorf("%s: connection closed mid-run", cs.user)
							return
						}
					case <-deadline:
						errCh <- fmt.Errorf("%s: echo timeout", cs.user)
						return
					}
					if m.Type == chat.TypeChat && m.From == cs.user && m.Text == line {
						mu.Lock()
						lat.Record(time.Since(sent))
						mu.Unlock()
						break
					}
				}
			}
		}(cs)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)

	total := len(scripts) * cfg.MessagesEach
	res := &E6Result{
		Config:   cfg,
		Messages: total,
		Elapsed:  elapsed,
		P50:      lat.Quantile(0.50),
		P95:      lat.Quantile(0.95),
		P99:      lat.Quantile(0.99),
		Mean:     lat.Mean(),
	}
	if elapsed > 0 {
		res.Throughput = float64(total) / elapsed.Seconds()
	}
	return res, nil
}
