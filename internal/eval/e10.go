package eval

import (
	"math/rand"
	"sync"
	"time"

	"semagent/internal/ontology"
)

// E10Config sizes experiment E10 (DESIGN.md §4): the snapshot read path
// against the legacy locked read path, swept over worker counts. This
// is the knowledge-layer ablation behind design decision D8 — PR 1's
// room-sharded pipeline made every worker contend on one ontology
// RWMutex and re-run a map-allocating Dijkstra per keyword pair; the
// immutable compiled snapshot removes both.
type E10Config struct {
	// Workers lists the concurrency levels to sweep (default 1, 4, 16).
	Workers []int `json:"workers"`
	// QueriesPerWorker is each worker's Related+Distance query count
	// (default 20000).
	QueriesPerWorker int `json:"queries_per_worker"`
	// Seed drives the pair selection.
	Seed int64 `json:"seed"`
}

// E10Arm is one measured (path, workers) cell.
type E10Arm struct {
	Path          string // "locked" or "snapshot"
	Workers       int
	Queries       int
	Elapsed       time.Duration
	NsPerQuery    float64
	QueriesPerSec float64
}

// E10Result holds the sweep plus the headline speedups, and is emitted
// as JSON by `evalharness -exp E10 -json` so successive PRs can diff
// the perf trajectory mechanically.
type E10Result struct {
	Config E10Config
	// Snapshot describes the compiled form being measured.
	Snapshot ontology.SnapshotStats
	Arms     []E10Arm
	// Speedup maps worker count -> snapshot-path throughput over
	// locked-path throughput.
	Speedup map[int]float64
}

// e10Pair is one precomputed query of the E10 workload.
type e10Pair struct{ a, b string }

// RunE10 sweeps both read paths over the same precomputed pair stream.
// The workload mixes within-threshold pairs (table hits), distant pairs
// (Dijkstra fallback) and pairs with inflected spellings (fold path),
// mirroring what the Semantic Agent actually asks per sentence.
func RunE10(cfg E10Config) (*E10Result, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4, 16}
	}
	if cfg.QueriesPerWorker <= 0 {
		cfg.QueriesPerWorker = 20000
	}

	onto := ontology.BuildCourseOntology()
	pairs := e10Pairs(onto, cfg.Seed)
	res := &E10Result{
		Config:   cfg,
		Snapshot: onto.Snapshot().Stats(),
		Speedup:  make(map[int]float64),
	}

	for _, workers := range cfg.Workers {
		locked := runE10Arm("locked", workers, cfg.QueriesPerWorker, pairs, func(p e10Pair) {
			lp := onto.LockedReadPath()
			if !lp.Related(p.a, p.b, 0) {
				lp.Distance(p.a, p.b)
			}
		})
		//semalint:allow snapshotonce: the per-arm re-pin is the experiment under measurement; the ontology is not edited mid-run
		snap := onto.Snapshot()
		snapshot := runE10Arm("snapshot", workers, cfg.QueriesPerWorker, pairs, func(p e10Pair) {
			if !snap.Related(p.a, p.b, 0) {
				snap.Distance(p.a, p.b)
			}
		})
		res.Arms = append(res.Arms, locked, snapshot)
		if locked.QueriesPerSec > 0 {
			res.Speedup[workers] = snapshot.QueriesPerSec / locked.QueriesPerSec
		}
	}
	return res, nil
}

// e10Pairs precomputes the query stream: every (concept, feature) and
// (concept, concept) combination the generator would phrase, plus
// inflected variants, shuffled deterministically.
func e10Pairs(onto *ontology.Ontology, seed int64) []e10Pair {
	rng := rand.New(rand.NewSource(seed + 10))
	items := onto.Items()
	var pairs []e10Pair
	for i, a := range items {
		for _, b := range items[i+1:] {
			pairs = append(pairs, e10Pair{a.Name, b.Name})
		}
	}
	// Inflected spellings exercise the fold-on-miss lookup path.
	pairs = append(pairs,
		e10Pair{"stacks", "pops"},
		e10Pair{"trees", "pushed"},
		e10Pair{"queues", "enqueued"},
	)
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs
}

func runE10Arm(path string, workers, perWorker int, pairs []e10Pair, query func(e10Pair)) E10Arm {
	arm := E10Arm{Path: path, Workers: workers, Queries: workers * perWorker}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				query(pairs[(w+i)%len(pairs)])
			}
		}(w)
	}
	wg.Wait()
	arm.Elapsed = time.Since(start)
	if arm.Elapsed > 0 {
		arm.NsPerQuery = float64(arm.Elapsed.Nanoseconds()) / float64(arm.Queries)
		arm.QueriesPerSec = float64(arm.Queries) / arm.Elapsed.Seconds()
	}
	return arm
}
