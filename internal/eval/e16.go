package eval

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"sync"

	"semagent/internal/chat"
	"semagent/internal/cluster"
	"semagent/internal/simulate"
	"semagent/internal/simulate/gen"
)

// E16Config parameterizes the cluster failover experiment: a
// deterministic three-arm drill (golden single-node session vs the
// identical session on the fabric, with and without a mid-session
// owner kill) plus a generated chaos sweep of node kills and
// partitions audited against the failover invariant.
type E16Config struct {
	// Seed drives the drill script and derives every sweep wave's seed.
	Seed int64 `json:"seed"`
	// Rooms is the chaos-sweep population (default 40).
	Rooms int `json:"rooms"`
	// RoomsPerWave bounds one fabric's room count (default 10; the wave
	// count is floored at 4 so every cluster fault profile appears).
	RoomsPerWave int `json:"rooms_per_wave"`
	// Nodes is the fabric width for sweep waves (default 3).
	Nodes int `json:"nodes"`

	// Parallel bounds concurrently running sweep waves (default
	// GOMAXPROCS). Excluded from the artifact: parallelism cannot
	// change the results, only the wall clock.
	Parallel int `json:"-"`
}

// E16Arm summarizes one drill arm's session.
type E16Arm struct {
	Sent       int `json:"sent"`
	Supervised int `json:"supervised"`
	Deliveries int `json:"deliveries"`
	Verdicts   int `json:"verdicts"`
}

// E16Faults aggregates the sweep's fault injections.
type E16Faults struct {
	Drops      int `json:"drops"`
	TornDrops  int `json:"torn_drops"`
	Storms     int `json:"storms"`
	NodeKills  int `json:"node_kills"`
	Partitions int `json:"partitions"`
	// PromotedReplays counts WAL records replayed by standby promotions.
	PromotedReplays int `json:"promoted_replays"`
}

// E16Wave reports one generated cluster population.
type E16Wave struct {
	Index      int             `json:"index"`
	Seed       int64           `json:"seed"`
	Profile    string          `json:"profile"`
	Rooms      int             `json:"rooms"`
	Students   int             `json:"students"`
	Messages   int             `json:"messages"`
	Supervised int             `json:"supervised"`
	Failovers  int             `json:"failovers"`
	Faults     E16Faults       `json:"faults"`
	Checked    []string        `json:"checked"`
	Violations []gen.Violation `json:"violations,omitempty"`
}

// E16Result is the machine-readable outcome (evalharness -exp E16
// -json; the cluster CI job's artifact). It carries only deterministic
// aggregates: reconnect-window delivery interleaving is scheduling-
// dependent, so the window is scored by count, never by content.
type E16Result struct {
	Config E16Config `json:"config"`

	// Drill.
	KillStep int    `json:"kill_step"`
	Golden   E16Arm `json:"golden"`
	Cluster  E16Arm `json:"cluster"`
	Failover E16Arm `json:"failover"`
	// WindowDeliveries counts the reconnect-window messages (welcomes
	// and join notices as the gateway relinks the dead owner's rooms)
	// observed at the kill step — the only step allowed to differ from
	// the golden arm.
	WindowDeliveries int `json:"window_deliveries"`
	// Promotion is the failover arm's standby promotion record.
	Promotion cluster.Promotion `json:"promotion"`
	// Divergences lists every way an arm failed to match the golden
	// transcript (empty on pass).
	Divergences []string `json:"divergences"`

	// Sweep.
	Waves           int            `json:"waves"`
	Rooms           int            `json:"rooms"`
	Students        int            `json:"students"`
	Messages        int            `json:"messages"`
	Supervised      int            `json:"supervised"`
	Failovers       int            `json:"failovers"`
	Faults          E16Faults      `json:"faults"`
	InvariantChecks map[string]int `json:"invariant_checks"`
	WaveResults     []E16Wave      `json:"wave_results"`
	Violations      []E14Violation `json:"violations"`
}

// Failed returns an error when the drill diverged or any sweep
// invariant was violated, carrying the reproducing command.
func (r *E16Result) Failed() error {
	repro := fmt.Sprintf("reproduce with: evalharness -exp E16 -json -seed %d -rooms %d", r.Config.Seed, r.Config.Rooms)
	if len(r.Divergences) > 0 {
		return fmt.Errorf("E16: failover drill diverged from the golden transcript: %s — %s", r.Divergences[0], repro)
	}
	if len(r.Violations) > 0 {
		v := r.Violations[0]
		return fmt.Errorf("E16: %d invariant violation(s); first: wave %d (seed %d) violated %s: %s — %s",
			len(r.Violations), v.Wave, v.Seed, v.Invariant, v.Detail, repro)
	}
	return nil
}

// e16Profiles rotate over the wave index so every sweep of >= 4 waves
// exercises single kills, kill+partition mixes, chained kills and
// pure partitions.
var e16Profiles = []struct {
	name string
	cfg  func(c *gen.Config)
}{
	{"poisson-kill", func(c *gen.Config) {
		c.Arrival = gen.ArrivalPoisson
		c.DropFraction = 0.3
		c.NodeKills = 1
	}},
	{"kill-partition", func(c *gen.Config) {
		c.Arrival = gen.ArrivalUniform
		c.DropFraction, c.TornFraction = 0.4, 0.5
		c.NodeKills, c.Partitions = 1, 1
	}},
	{"double-kill", func(c *gen.Config) {
		c.Arrival = gen.ArrivalBursty
		c.StormFraction = 0.5
		c.NodeKills = 2
	}},
	{"partition-only", func(c *gen.Config) {
		c.Arrival = gen.ArrivalPoisson
		c.DropFraction = 0.3
		c.Partitions = 2
	}},
}

// RunE16 runs the failover drill and the cluster chaos sweep.
func RunE16(cfg E16Config) (*E16Result, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Rooms <= 0 {
		cfg.Rooms = 40
	}
	if cfg.RoomsPerWave <= 0 {
		cfg.RoomsPerWave = 10
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	out := &E16Result{
		Config:          cfg,
		Divergences:     []string{},
		InvariantChecks: make(map[string]int),
		Violations:      []E14Violation{},
	}
	if err := runE16Drill(cfg, out); err != nil {
		return nil, err
	}
	if err := runE16Sweep(cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// runDrillArm replays one drill arm.
func runDrillArm(seed int64, mode simulate.DrillMode) (*simulate.Result, int, error) {
	sc, kill := simulate.FailoverDrill(seed, mode)
	dir := ""
	if sc.Cluster != nil {
		var err error
		dir, err = os.MkdirTemp("", "e16-drill-*")
		if err != nil {
			return nil, 0, fmt.Errorf("drill dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	res, err := simulate.Run(sc, dir)
	if err != nil {
		return nil, 0, fmt.Errorf("drill %v: %w", mode, err)
	}
	return res, kill, nil
}

func armStats(res *simulate.Result) E16Arm {
	return E16Arm{
		Sent:       res.Sent,
		Supervised: res.Supervised,
		Deliveries: len(res.Deliveries),
		Verdicts:   len(res.VerdictLog),
	}
}

// deliveryKey strips the step tag: arms are compared step by step, and
// within one step the identifying tuple is everything but the index.
type deliveryKey struct {
	Client string
	Type   chat.MsgType
	Room   string
	From   string
	Agent  string
	Text   string
}

func byStep(res *simulate.Result) map[int][]deliveryKey {
	out := make(map[int][]deliveryKey)
	for _, d := range res.Deliveries {
		out[d.Step] = append(out[d.Step], deliveryKey{
			Client: d.Client, Type: d.Type, Room: d.Room,
			From: d.From, Agent: d.Agent, Text: d.Text,
		})
	}
	return out
}

// compareArms diffs an arm against the golden arm step by step. When
// windowStep >= 0 that step is the failover arm's reconnect window: it
// is scored by count (returned) and by content class — only welcomes
// and system join notices may appear; a chat or agent message inside
// the window would mean user-visible content was duplicated or
// reordered by the failover.
func compareArms(arm string, golden, other *simulate.Result, windowStep int) (int, []string) {
	var divs []string
	g, o := byStep(golden), byStep(other)
	steps := len(golden.Scenario.Steps) + 1 // +1: the final settle bucket
	window := 0
	for s := 0; s <= steps; s++ {
		if s == windowStep {
			if n := len(g[s]); n != 0 {
				divs = append(divs, fmt.Sprintf("%s: golden arm has %d deliveries at the kill step", arm, n))
			}
			window = len(o[s])
			for _, d := range o[s] {
				if d.Type != chat.TypeWelcome && d.Type != chat.TypeSystem {
					divs = append(divs, fmt.Sprintf("%s: step %d reconnect window leaked a %s message %q to %s",
						arm, s, d.Type, d.Text, d.Client))
				}
			}
			continue
		}
		if !reflect.DeepEqual(g[s], o[s]) {
			divs = append(divs, fmt.Sprintf("%s: step %d deliveries differ (golden %d, %s %d)",
				arm, s, len(g[s]), arm, len(o[s])))
		}
	}
	if !reflect.DeepEqual(golden.VerdictLog, other.VerdictLog) {
		divs = append(divs, fmt.Sprintf("%s: supervision verdict log differs from golden", arm))
	}
	return window, divs
}

func runE16Drill(cfg E16Config, out *E16Result) error {
	golden, kill, err := runDrillArm(cfg.Seed, simulate.DrillGolden)
	if err != nil {
		return err
	}
	clusterRes, _, err := runDrillArm(cfg.Seed, simulate.DrillCluster)
	if err != nil {
		return err
	}
	failover, _, err := runDrillArm(cfg.Seed, simulate.DrillFailover)
	if err != nil {
		return err
	}
	out.KillStep = kill
	out.Golden = armStats(golden)
	out.Cluster = armStats(clusterRes)
	out.Failover = armStats(failover)

	// Transparency: the fabric behind the gateway is invisible — every
	// step, including the aligned advance at the kill index, matches.
	if _, divs := compareArms("cluster", golden, clusterRes, -1); len(divs) > 0 {
		out.Divergences = append(out.Divergences, divs...)
	}
	// Failover: everything outside the reconnect window matches.
	window, divs := compareArms("failover", golden, failover, kill)
	out.WindowDeliveries = window
	out.Divergences = append(out.Divergences, divs...)
	if window == 0 {
		out.Divergences = append(out.Divergences, "failover: kill step produced no reconnect window (did the kill happen?)")
	}
	if len(failover.Failovers) != 1 {
		out.Divergences = append(out.Divergences, fmt.Sprintf("failover: %d promotions recorded, want 1", len(failover.Failovers)))
	} else {
		out.Promotion = failover.Failovers[0].Promotion
		p := out.Promotion
		if p.SinkLastLSN < p.DeadSyncedLSN {
			out.Divergences = append(out.Divergences, fmt.Sprintf(
				"failover: standby watermark %d below the dead owner's fsync watermark %d", p.SinkLastLSN, p.DeadSyncedLSN))
		}
		if p.ReplayErrors != 0 {
			out.Divergences = append(out.Divergences, fmt.Sprintf("failover: promotion replay had %d errors", p.ReplayErrors))
		}
	}

	// Replay the failover arm once more: the aggregates — the entire
	// JSON artifact — must reproduce bit for bit from the same seed.
	again, _, err := runDrillArm(cfg.Seed, simulate.DrillFailover)
	if err != nil {
		return err
	}
	w2, _ := compareArms("failover", golden, again, kill)
	if armStats(again) != out.Failover || w2 != window {
		out.Divergences = append(out.Divergences, "failover: two identical runs produced different aggregates")
	}
	return nil
}

func runE16Sweep(cfg E16Config, out *E16Result) error {
	waves := (cfg.Rooms + cfg.RoomsPerWave - 1) / cfg.RoomsPerWave
	if waves < len(e16Profiles) {
		waves = len(e16Profiles)
	}
	if waves > cfg.Rooms {
		waves = cfg.Rooms
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > waves {
		parallel = waves
	}
	out.Waves = waves
	out.WaveResults = make([]E16Wave, waves)

	type waveErr struct {
		idx int
		err error
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Mutex
		firstE  *waveErr
	)
	sem := make(chan struct{}, parallel)
	base, rem := cfg.Rooms/waves, cfg.Rooms%waves
	for i := 0; i < waves; i++ {
		rooms := base
		if i < rem {
			rooms++
		}
		profile := e16Profiles[i%len(e16Profiles)]
		gcfg := gen.Config{
			Seed:         int64(splitmix64(uint64(cfg.Seed)+uint64(i)*0x9E3779B97F4A7C15) &^ (1 << 63)),
			Rooms:        rooms,
			ClusterNodes: cfg.Nodes,
		}
		profile.cfg(&gcfg)

		wg.Add(1)
		sem <- struct{}{}
		go func(i int, gcfg gen.Config, profile string) {
			defer wg.Done()
			defer func() { <-sem }()
			wave, err := runE16Wave(i, profile, gcfg)
			if err != nil {
				errOnce.Lock()
				if firstE == nil {
					firstE = &waveErr{i, err}
				}
				errOnce.Unlock()
				return
			}
			out.WaveResults[i] = wave
		}(i, gcfg, profile.name)
	}
	wg.Wait()
	if firstE != nil {
		return fmt.Errorf("E16 wave %d: %w", firstE.idx, firstE.err)
	}

	for _, w := range out.WaveResults {
		out.Rooms += w.Rooms
		out.Students += w.Students
		out.Messages += w.Messages
		out.Supervised += w.Supervised
		out.Failovers += w.Failovers
		out.Faults.Drops += w.Faults.Drops
		out.Faults.TornDrops += w.Faults.TornDrops
		out.Faults.Storms += w.Faults.Storms
		out.Faults.NodeKills += w.Faults.NodeKills
		out.Faults.Partitions += w.Faults.Partitions
		out.Faults.PromotedReplays += w.Faults.PromotedReplays
		for _, name := range w.Checked {
			out.InvariantChecks[name]++
		}
		for _, v := range w.Violations {
			out.Violations = append(out.Violations, E14Violation{
				Wave: w.Index, Seed: w.Seed, Invariant: v.Invariant, Detail: v.Detail,
			})
		}
	}
	sort.Slice(out.Violations, func(i, j int) bool {
		a, b := out.Violations[i], out.Violations[j]
		if a.Wave != b.Wave {
			return a.Wave < b.Wave
		}
		return a.Invariant < b.Invariant
	})
	return nil
}

// runE16Wave generates, replays and audits one cluster population.
func runE16Wave(idx int, profile string, gcfg gen.Config) (E16Wave, error) {
	sc, plan, err := gen.Generate(gcfg)
	if err != nil {
		return E16Wave{}, fmt.Errorf("generate: %w", err)
	}
	dir, err := os.MkdirTemp("", "e16-wave-*")
	if err != nil {
		return E16Wave{}, fmt.Errorf("data dir: %w", err)
	}
	defer os.RemoveAll(dir)
	res, err := simulate.Run(sc, dir)
	if err != nil {
		return E16Wave{}, fmt.Errorf("run %s: %w", sc.Name, err)
	}
	rep := gen.Check(sc, res)
	wave := E16Wave{
		Index:      idx,
		Seed:       gcfg.Seed,
		Profile:    profile,
		Rooms:      plan.Rooms,
		Students:   plan.Students,
		Messages:   res.Sent,
		Supervised: res.Supervised,
		Failovers:  len(res.Failovers),
		Faults: E16Faults{
			Drops:      plan.Drops,
			TornDrops:  plan.TornDrops,
			Storms:     plan.Storms,
			NodeKills:  plan.NodeKills,
			Partitions: plan.Partitions,
		},
		Checked:    rep.Checked,
		Violations: rep.Violations,
	}
	for _, fo := range res.Failovers {
		wave.Faults.PromotedReplays += fo.ReplayApplied
	}
	return wave, nil
}
