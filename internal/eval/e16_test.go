package eval

import (
	"encoding/json"
	"testing"
)

// e16TestConfig keeps the sweep small: 4 waves of 2 rooms each, plus
// the fixed three-arm drill.
var e16TestConfig = E16Config{Seed: 7, Rooms: 8, RoomsPerWave: 2, Nodes: 2}

func TestE16DrillAndSweep(t *testing.T) {
	res, err := RunE16(e16TestConfig)
	if err != nil {
		t.Fatalf("RunE16: %v", err)
	}
	if err := res.Failed(); err != nil {
		t.Fatalf("E16 failed: %v", err)
	}
	if res.WindowDeliveries == 0 {
		t.Fatalf("kill produced no reconnect window")
	}
	if res.Golden != res.Cluster {
		t.Fatalf("cluster transparency arm diverged: golden %+v cluster %+v", res.Golden, res.Cluster)
	}
	// The failover arm delivers exactly the golden session plus the
	// reconnect window, and supervises every scripted message.
	if res.Failover.Deliveries != res.Golden.Deliveries+res.WindowDeliveries {
		t.Fatalf("failover deliveries %d, want golden %d + window %d",
			res.Failover.Deliveries, res.Golden.Deliveries, res.WindowDeliveries)
	}
	if res.Failover.Supervised != res.Failover.Sent {
		t.Fatalf("failover arm supervised %d of %d sent", res.Failover.Supervised, res.Failover.Sent)
	}
	if res.Promotion.Dead != "n1" || res.Promotion.SinkLastLSN < res.Promotion.DeadSyncedLSN {
		t.Fatalf("promotion record %+v", res.Promotion)
	}
	if res.Failovers == 0 {
		t.Fatalf("sweep scheduled no node kills")
	}
	if res.InvariantChecks["failover-exactly-once"] == 0 {
		t.Fatalf("sweep never audited the failover invariant: %v", res.InvariantChecks)
	}
}

// TestE16Deterministic is the CI gate's contract: the same config must
// produce a byte-identical JSON artifact across consecutive runs.
func TestE16Deterministic(t *testing.T) {
	run := func() []byte {
		res, err := RunE16(e16TestConfig)
		if err != nil {
			t.Fatalf("RunE16: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same config produced different JSON artifacts:\n%s\n---\n%s", a, b)
	}
}
