package eval

import (
	"fmt"

	"semagent/internal/simulate"
)

// E13Config parameterizes the scenario-matrix experiment: the
// deterministic classroom simulator (package simulate, DESIGN.md D11)
// replays a persona matrix — every student archetype in every room —
// through the full supervision stack and scores detection against the
// script's ground truth.
type E13Config struct {
	// Rooms is the number of parallel classrooms (default 2).
	Rooms int `json:"rooms"`
	// Turns is the speaking rounds per room (default 3).
	Turns int   `json:"turns"`
	Seed  int64 `json:"seed"`
}

// E13PersonaRow is one persona's detection scorecard.
type E13PersonaRow struct {
	Persona    string  `json:"persona"`
	Sent       int     `json:"sent"`
	Supervised int     `json:"supervised"`
	Shed       int     `json:"shed"`
	TruePos    int     `json:"true_pos"`
	FalsePos   int     `json:"false_pos"`
	FalseNeg   int     `json:"false_neg"`
	TrueNeg    int     `json:"true_neg"`
	Precision  float64 `json:"precision"`
	Recall     float64 `json:"recall"`
	Questions  int     `json:"questions,omitempty"`
	Answered   int     `json:"answered,omitempty"`
}

// E13Result is the machine-readable outcome (evalharness -exp E13
// -json; the bench_trajectory artifact in CI).
type E13Result struct {
	Config   E13Config `json:"config"`
	Scenario string    `json:"scenario"`

	Messages   int `json:"messages"`
	Supervised int `json:"supervised"`

	// Verdicts histograms supervision outcomes by verdict name.
	Verdicts map[string]int `json:"verdicts"`
	// Interventions counts agent responses by agent name.
	Interventions map[string]int `json:"interventions"`

	Rows []E13PersonaRow `json:"per_persona"`

	// MicroPrecision / MicroRecall aggregate the confusion counts over
	// all personas (detection = syntax/semantic intervention).
	MicroPrecision float64 `json:"micro_precision"`
	MicroRecall    float64 `json:"micro_recall"`
	// QuestionAnswerRate is answered/asked across questioners.
	QuestionAnswerRate float64 `json:"question_answer_rate"`
	// MinedPairs counts FAQ pairs mined from the dialogue.
	MinedPairs int `json:"mined_pairs"`
}

// RunE13 replays the scenario matrix and scores per-persona detection.
func RunE13(cfg E13Config) (*E13Result, error) {
	if cfg.Rooms <= 0 {
		cfg.Rooms = 2
	}
	if cfg.Turns <= 0 {
		cfg.Turns = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sc := simulate.Matrix(cfg.Rooms, cfg.Turns, cfg.Seed)
	res, err := simulate.Run(sc, "")
	if err != nil {
		return nil, fmt.Errorf("E13 matrix: %w", err)
	}

	out := &E13Result{
		Config:        cfg,
		Scenario:      sc.Name,
		Messages:      res.Sent,
		Supervised:    res.Supervised,
		Verdicts:      make(map[string]int, len(res.Verdicts)),
		Interventions: res.Interventions,
		MinedPairs:    res.MinedPairs,
	}
	for v, n := range res.Verdicts {
		out.Verdicts[v.String()] = n
	}
	var tp, fp, fn, asked, answered int
	for _, s := range res.Personas() {
		out.Rows = append(out.Rows, E13PersonaRow{
			Persona:    string(s.Persona),
			Sent:       s.Sent,
			Supervised: s.Supervised,
			Shed:       s.Shed,
			TruePos:    s.TruePos,
			FalsePos:   s.FalsePos,
			FalseNeg:   s.FalseNeg,
			TrueNeg:    s.TrueNeg,
			Precision:  s.Precision(),
			Recall:     s.Recall(),
			Questions:  s.Questions,
			Answered:   s.Answered,
		})
		tp += s.TruePos
		fp += s.FalsePos
		fn += s.FalseNeg
		asked += s.Questions
		answered += s.Answered
	}
	out.MicroPrecision, out.MicroRecall = 1, 1
	if tp+fp > 0 {
		out.MicroPrecision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		out.MicroRecall = float64(tp) / float64(tp+fn)
	}
	if asked > 0 {
		out.QuestionAnswerRate = float64(answered) / float64(asked)
	}
	return out, nil
}
