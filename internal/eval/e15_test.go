package eval

import "testing"

// TestE15Small runs a miniature sweep end to end: both wire formats
// must complete the workload, produce positive throughput and
// plausible allocation counts, and the result must carry the headline
// ratios the harness prints.
func TestE15Small(t *testing.T) {
	res, err := RunE15(E15Config{
		WorkerSweep:    []int{1, 2},
		Rooms:          2,
		ClientsPerRoom: 2,
		MessagesEach:   15,
		Seed:           7,
	})
	if err != nil {
		t.Fatalf("RunE15: %v", err)
	}
	if len(res.Arms) != 4 {
		t.Fatalf("arms = %d, want 4 (2 wires × 2 worker counts)", len(res.Arms))
	}
	wantWires := []string{"text", "binary", "text", "binary"}
	for i, arm := range res.Arms {
		if arm.Wire != wantWires[i] {
			t.Errorf("arm %d wire = %s, want %s", i, arm.Wire, wantWires[i])
		}
		if arm.Messages != 2*2*15 {
			t.Errorf("arm %d messages = %d, want %d", i, arm.Messages, 60)
		}
		if arm.Throughput <= 0 {
			t.Errorf("arm %d throughput = %f", i, arm.Throughput)
		}
		if arm.AllocsPerMsg <= 0 {
			t.Errorf("arm %d allocs/msg = %f", i, arm.AllocsPerMsg)
		}
	}
	if res.BinarySpeedup <= 0 {
		t.Errorf("binary speedup = %f", res.BinarySpeedup)
	}
}
