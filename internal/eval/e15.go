package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/ontology"
	"semagent/internal/workload"
)

// E15Config sizes experiment E15: the wire-to-verdict throughput and
// allocation comparison of the two chat framings (newline-JSON vs
// length-prefixed binary, DESIGN.md D13) across supervision pool sizes.
type E15Config struct {
	// WorkerSweep lists the async supervision pool sizes to measure
	// (default 1, 4, 16).
	WorkerSweep []int
	// Rooms and ClientsPerRoom shape the population (defaults 4 and 2).
	Rooms, ClientsPerRoom int
	// MessagesEach is each client's script length (default 150).
	MessagesEach int
	// Seed drives the workload generator.
	Seed int64
	// NoBatch disables batched supervision (ServerOptions.BatchSupervise)
	// for both arms; the default measures the deployed fast path.
	NoBatch bool
}

func (c *E15Config) fill() {
	if len(c.WorkerSweep) == 0 {
		c.WorkerSweep = []int{1, 4, 16}
	}
	if c.Rooms <= 0 {
		c.Rooms = 4
	}
	if c.ClientsPerRoom <= 0 {
		c.ClientsPerRoom = 2
	}
	if c.MessagesEach <= 0 {
		c.MessagesEach = 150
	}
}

// E15Arm is one measured wire × workers configuration: real TCP
// loopback, pipelined senders (no per-message echo wait, so the wire
// and the supervision pool — not round-trip latency — set the ceiling),
// and the run only stops its clock after the server has quiesced, so
// Throughput is messages fully supervised per second, wire to verdict.
type E15Arm struct {
	Wire     string
	Workers  int
	Messages int
	Elapsed  time.Duration
	// Throughput is chat messages through supervision per second.
	Throughput float64
	// AllocsPerMsg is the process-wide heap-allocation count per chat
	// message (runtime.MemStats Mallocs delta), covering both ends of
	// the wire and the full supervision pipeline.
	AllocsPerMsg float64
	// BytesPerMsg is the matching cumulative heap bytes per message.
	BytesPerMsg float64
}

// E15Result pairs the arms with headline ratios at the largest pool.
type E15Result struct {
	Config E15Config
	Arms   []E15Arm
	// BinarySpeedup is binary/text throughput at the largest worker
	// count; AllocReduction is 1 - binary/text allocs per message there.
	BinarySpeedup  float64
	AllocReduction float64
}

// RunE15 sweeps wire format × worker count over a live TCP server.
// Every arm gets a fresh server and supervisor (cold stores and
// caches) and replays the same seeded workload.
func RunE15(cfg E15Config) (*E15Result, error) {
	cfg.fill()
	res := &E15Result{Config: cfg}
	for _, workers := range cfg.WorkerSweep {
		for _, wire := range []chat.Wire{chat.WireText, chat.WireBinary} {
			arm, err := runE15Arm(cfg, workers, wire)
			if err != nil {
				return nil, fmt.Errorf("E15 %s/%d workers: %w", wireName(wire), workers, err)
			}
			res.Arms = append(res.Arms, *arm)
		}
	}
	last := len(res.Arms) - 1
	text, bin := res.Arms[last-1], res.Arms[last]
	if text.Throughput > 0 {
		res.BinarySpeedup = bin.Throughput / text.Throughput
	}
	if text.AllocsPerMsg > 0 {
		res.AllocReduction = 1 - bin.AllocsPerMsg/text.AllocsPerMsg
	}
	return res, nil
}

func wireName(w chat.Wire) string {
	if w == chat.WireBinary {
		return "binary"
	}
	return "text"
}

func runE15Arm(cfg E15Config, workers int, wire chat.Wire) (*E15Arm, error) {
	sup, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	server := chat.NewServer(chat.ServerOptions{
		Supervisor:     sup.ChatSupervisor(),
		Async:          true,
		Workers:        workers,
		BatchSupervise: !cfg.NoBatch,
		// Deep client queues: pipelined senders outrun their own read
		// loops in bursts, and a dropped client would end the arm.
		SendQueue: 4096,
	})
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer server.Close()

	// Scripts are generated before the measured window.
	gen := workload.NewGenerator(cfg.Seed, ontology.BuildCourseOntology())
	type script struct {
		room, user string
		lines      []string
	}
	var scripts []script
	for r := 0; r < cfg.Rooms; r++ {
		for c := 0; c < cfg.ClientsPerRoom; c++ {
			sc := script{
				room: fmt.Sprintf("room-%d", r),
				user: fmt.Sprintf("user-%d-%d", r, c),
			}
			for _, s := range gen.Generate(cfg.MessagesEach, workload.DefaultMix()) {
				sc.lines = append(sc.lines, s.Text)
			}
			scripts = append(scripts, sc)
		}
	}
	clients := make([]*chat.Client, len(scripts))
	for i, sc := range scripts {
		cl, err := chat.DialWire(addr.String(), sc.room, sc.user, wire, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w", sc.user, err)
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			_ = cl.Close()
		}
	}()

	total := len(scripts) * cfg.MessagesEach
	arm := &E15Arm{Wire: wireName(wire), Workers: workers, Messages: total}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()

	// Receivers drain every broadcast for the whole arm (they only stop
	// when the connection closes, after measurement); senders finish
	// once their own last echo came back, so wg.Wait() means every chat
	// line was accepted and delivered.
	var wg, rwg sync.WaitGroup
	errCh := make(chan error, 2*len(scripts))
	for i, sc := range scripts {
		cl := clients[i]
		echoDone := make(chan struct{})
		rwg.Add(1)
		go func(user string, want int) {
			defer rwg.Done()
			got := 0
			for m := range cl.Receive() {
				if m.Type == chat.TypeChat && m.From == user {
					if got++; got == want {
						close(echoDone)
					}
				}
			}
		}(sc.user, cfg.MessagesEach)
		// Sender: pipelined, no per-message echo wait.
		wg.Add(1)
		go func(sc script) {
			defer wg.Done()
			for _, line := range sc.lines {
				if err := cl.Say(line); err != nil {
					errCh <- fmt.Errorf("%s say: %w", sc.user, err)
					return
				}
			}
			select {
			case <-echoDone:
			case <-time.After(60 * time.Second):
				errCh <- fmt.Errorf("%s: echo timeout", sc.user)
			}
		}(sc)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	// Echoes delivered ⇒ every say is accepted; quiesce to fold queued
	// supervision (and its agent broadcasts) into the measured window.
	if !server.Quiesce(60 * time.Second) {
		return nil, fmt.Errorf("server did not quiesce")
	}
	arm.Elapsed = time.Since(start)
	runtime.ReadMemStats(&after)

	if arm.Elapsed > 0 {
		arm.Throughput = float64(total) / arm.Elapsed.Seconds()
	}
	arm.AllocsPerMsg = float64(after.Mallocs-before.Mallocs) / float64(total)
	arm.BytesPerMsg = float64(after.TotalAlloc-before.TotalAlloc) / float64(total)

	for _, cl := range clients {
		_ = cl.Close()
	}
	rwg.Wait()
	return arm, nil
}
