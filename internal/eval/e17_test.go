package eval

import (
	"encoding/json"
	"testing"
)

// e17TestConfig keeps the sweep small: 4 waves of 2 rooms each, plus
// the all-classes determinism drill.
var e17TestConfig = E17Config{Seed: 7, Rooms: 8, RoomsPerWave: 2, Nodes: 3}

func TestE17DrillAndSweep(t *testing.T) {
	res, err := RunE17(e17TestConfig)
	if err != nil {
		t.Fatalf("RunE17: %v", err)
	}
	if err := res.Failed(); err != nil {
		t.Fatalf("E17 failed: %v", err)
	}
	if !res.Drill.Identical {
		t.Fatalf("all-classes drill replay was not byte-identical")
	}
	// The drill carries every class at once.
	df := res.Drill.Faults
	if df.ShipCuts == 0 || df.PromoCrash == 0 || df.LaggedKills == 0 || df.SkewRaces == 0 {
		t.Fatalf("drill missing a fault class: %+v", df)
	}
	if res.Drill.Failovers == 0 || res.Drill.Races == 0 {
		t.Fatalf("drill observed %d failovers and %d races — chaos did not land",
			res.Drill.Failovers, res.Drill.Races)
	}
	// A staged kill resumed, a lagged kill was declared lossy, and the
	// races resolved one way or the other.
	if df.Resumes == 0 {
		t.Fatalf("staged promotion crash never resumed: %+v", df)
	}
	if df.Seizures+df.Refusals != res.Drill.Races {
		t.Fatalf("races %d but %d seizures + %d refusals", res.Drill.Races, df.Seizures, df.Refusals)
	}
	// Every adversarial invariant was audited somewhere in the sweep.
	for _, name := range []string{"ship-resumes-or-surfaces", "promotion-completes-exactly-once",
		"no-silent-loss", "single-writer-under-skew"} {
		if res.InvariantChecks[name] == 0 {
			t.Fatalf("sweep never audited %s: %v", name, res.InvariantChecks)
		}
	}
	if res.Failovers == 0 {
		t.Fatalf("sweep scheduled no node kills")
	}
}

// TestE17Deterministic is the CI gate's contract: the same config must
// produce a byte-identical JSON artifact across consecutive runs.
func TestE17Deterministic(t *testing.T) {
	run := func() []byte {
		res, err := RunE17(e17TestConfig)
		if err != nil {
			t.Fatalf("RunE17: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same config produced different JSON artifacts:\n%s\n---\n%s", a, b)
	}
}
